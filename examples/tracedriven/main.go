// Trace-driven study: record each application's access stream once, then
// replay the identical stimulus against several insertion policies — the
// HyCSim methodology the paper uses for its design-space exploration.
// Because every policy sees byte-identical traffic, differences in the
// results are attributable to the policy alone.
//
//	go run ./examples/tracedriven
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const (
		mix     = 4 // Table V mix 5: xalancbmk, leslie3d, bwaves, mcf
		seed    = 11
		scale   = 0.2
		records = 400_000
	)

	// Record one trace per core.
	recApps, err := workload.NewMix(mix, seed, scale)
	if err != nil {
		log.Fatal(err)
	}
	traces := make([][]byte, len(recApps))
	for i, app := range recApps {
		var buf bytes.Buffer
		if err := trace.Record(app, records, &buf); err != nil {
			log.Fatal(err)
		}
		traces[i] = buf.Bytes()
		fmt.Printf("recorded %7d accesses of %-12s (%d bytes, %.2f B/access)\n",
			records, app.Profile().Name, buf.Len(), float64(buf.Len())/records)
	}

	run := func(pol hybrid.Policy, thr hybrid.ThresholdProvider) {
		// Fresh content models with the recording seed keep replayed
		// contents consistent with the recorded addresses.
		contentApps, err := workload.NewMix(mix, seed, scale)
		if err != nil {
			log.Fatal(err)
		}
		progs := make([]hier.Program, len(traces))
		for i, raw := range traces {
			rep, err := trace.Load(bytes.NewReader(raw))
			if err != nil {
				log.Fatal(err)
			}
			progs[i] = trace.NewProgram(rep, contentApps[i])
		}
		llc := hybrid.New(hybrid.Config{
			Sets: 512, SRAMWays: 4, NVMWays: 12,
			Policy: pol, Thresholds: thr,
			Endurance: nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
			Sampler:   stats.NewRNG(77),
		})
		sys := hier.NewFromPrograms(hier.DefaultConfig(), llc, progs)
		sys.Run(1_000_000) // warm up
		r := sys.Run(5_000_000)
		fmt.Printf("%-8s IPC %.4f  hit rate %.4f  NVM bytes %9d\n",
			pol.Name(), r.MeanIPC, r.LLC.HitRate(), r.LLC.NVMBytesWritten)
	}

	fmt.Println("\nreplaying the identical traces under three policies:")
	run(policy.BH{}, nil)
	run(policy.LHybrid{}, nil)
	run(policy.CARWR{}, hybrid.FixedThreshold(58))
}
