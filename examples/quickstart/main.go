// Quickstart: build the paper's default hybrid LLC (4 SRAM + 12 NVM ways)
// with the CP_SD insertion policy, run one SPEC mix for a few million
// cycles, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Start from the scaled default configuration: Table V mix 1, CP_SD
	// policy, 1 MB 16-way LLC, mean endurance 1e10 writes.
	cfg := core.DefaultConfig()
	cfg.MixID = 0
	cfg.PolicyName = "CP_SD"

	sys, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Warm the hierarchy up for 2M cycles, then measure a 10M-cycle
	// window. All simulation is deterministic in cfg.Seed.
	s := core.Measure(sys, 2_000_000, 10_000_000)

	fmt.Println("hybrid LLC quickstart (CP_SD, mix 1)")
	fmt.Printf("  mean IPC            %.4f\n", s.MeanIPC)
	fmt.Printf("  LLC hit rate        %.4f\n", s.HitRate)
	fmt.Printf("  NVM bytes written   %d\n", s.NVMBytesWritten)
	fmt.Printf("  SRAM->NVM migrations %d\n", s.Migrations)

	// The set-dueling controller exposes the CPth it converged to.
	if d, ok := core.Dueling(sys); ok {
		fmt.Printf("  CPth winner         %d\n", d.Winner())
	}
}
