// Policy comparison: run every insertion policy of Table III (plus the CA
// and CA_RWR intermediates) on the same workload mix and print their hit
// rate, IPC and NVM write traffic side by side — the young-cache operating
// point of Fig. 10a.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	const (
		warmup  = 2_000_000
		measure = 8_000_000
	)
	policies := []string{"SRAM16", "BH", "BH_CP", "LHybrid", "TAP", "CA", "CA_RWR", "CP_SD", "CP_SD_Th", "SRAM4"}

	fmt.Println("policy comparison on mix 4 (young cache, 100% NVM capacity)")
	fmt.Printf("%-10s %8s %9s %12s %12s\n", "policy", "IPC", "hit rate", "NVM writes", "NVM bytes")

	var bhBytes uint64
	for _, name := range policies {
		cfg := core.DefaultConfig()
		cfg.MixID = 3
		cfg.PolicyName = name
		cfg.CPth = 58 // fixed threshold for CA / CA_RWR
		cfg.Th = 4    // CP_SD_Th4
		sys, err := cfg.Build()
		if err != nil {
			log.Fatal(err)
		}
		s := core.Measure(sys, warmup, measure)
		fmt.Printf("%-10s %8.4f %9.4f %12d %12d", s.Policy, s.MeanIPC, s.HitRate,
			s.NVMBlockWrites, s.NVMBytesWritten)
		if name == "BH" {
			bhBytes = s.NVMBytesWritten
		}
		if bhBytes > 0 && s.NVMBytesWritten > 0 && name != "BH" {
			fmt.Printf("  (%.1f%% of BH)", 100*float64(s.NVMBytesWritten)/float64(bhBytes))
		}
		fmt.Println()
	}
}
