// Lifetime forecast: run the paper's aging forecast procedure on one
// policy and print the capacity/performance trajectory until the NVM part
// reaches 50% effective capacity — one curve of Fig. 1.
//
//	go run ./examples/lifetimeforecast
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/forecast"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.MixID = 0
	cfg.PolicyName = "CP_SD"
	// A shorter-lived device keeps the example snappy; the trajectory
	// shape is endurance-scale-invariant.
	cfg.EnduranceMean = 1e8

	sys, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	fcfg := forecast.DefaultConfig()
	fcfg.PhaseCycles = 6_000_000
	fcfg.WarmupCycles = 1_000_000
	fcfg.CapacityStep = 0.05

	res := forecast.Run(sys, fcfg)

	fmt.Printf("forecast for %s (mix 1, endurance mean %.0g)\n", res.Policy, cfg.EnduranceMean)
	fmt.Printf("%10s %10s %8s %9s\n", "time", "capacity", "IPC", "hit rate")
	for _, p := range res.Points {
		fmt.Printf("%9.2fd %9.1f%% %8.4f %9.4f\n",
			p.TimeSeconds/86400, p.Capacity*100, p.MeanIPC, p.HitRate)
	}
	if math.IsInf(res.LifetimeSeconds, 1) {
		fmt.Println("lifetime: beyond forecast horizon")
	} else {
		fmt.Printf("lifetime to 50%% capacity: %.1f days (%.2f months)\n",
			res.LifetimeSeconds/86400, res.LifetimeMonths())
	}
}
