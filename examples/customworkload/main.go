// Custom workload: author a synthetic application profile from scratch —
// footprint, access-pattern mixture, compressibility — bind four copies of
// it to the cores, and compare two insertion policies on it. This is the
// path a downstream user takes to model their own workload.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// A write-heavy, moderately compressible key-value-store-like app:
	// small hot set with many stores, large lightly-reused footprint.
	prof := workload.Profile{
		Name:            "kvstore",
		FootprintBlocks: 20000,
		LoopFrac:        0.15, StreamFrac: 0.15, HotFrac: 0.45, RandFrac: 0.25,
		LoopBlocks: 2000, HotBlocks: 1500,
		HotWriteFrac: 0.6, StreamWriteFrac: 0.3, RandWriteFrac: 0.3,
		GapMean:  8,
		ZeroFrac: 0.10, HCRFrac: 0.35, LCRFrac: 0.20,
	}
	if err := prof.Validate(); err != nil {
		log.Fatal(err)
	}

	run := func(pol hybrid.Policy, thr hybrid.ThresholdProvider) {
		// Four instances on disjoint address spaces, one per core.
		var apps []*workload.App
		for i := 0; i < 4; i++ {
			app, err := workload.NewApp(prof, uint64(i+1)*workload.AppSpacing, 7+uint64(i))
			if err != nil {
				log.Fatal(err)
			}
			apps = append(apps, app)
		}
		llc := hybrid.New(hybrid.Config{
			Sets: 1024, SRAMWays: 4, NVMWays: 12,
			Policy: pol, Thresholds: thr,
			Endurance: nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
			Sampler:   stats.NewRNG(99),
		})
		sys := hier.New(hier.DefaultConfig(), llc, apps)
		sys.Run(2_000_000) // warm up
		r := sys.Run(8_000_000)
		fmt.Printf("%-8s IPC %.4f  hit rate %.4f  NVM bytes %d\n",
			pol.Name(), r.MeanIPC, r.LLC.HitRate(), r.LLC.NVMBytesWritten)
	}

	fmt.Println("custom write-heavy workload, BH vs CA_RWR (CPth 58)")
	run(policy.BH{}, nil)
	run(policy.CARWR{}, hybrid.FixedThreshold(58))
}
