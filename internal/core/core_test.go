package core

import (
	"math"
	"testing"
)

func TestDefaultConfigBuilds(t *testing.T) {
	for _, name := range Policies() {
		cfg := QuickConfig()
		cfg.PolicyName = name
		cfg.Th = 4
		sys, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := sys.Run(100_000)
		if r.MeanIPC <= 0 {
			t.Errorf("%s: zero IPC", name)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "NOPE"
	if _, err := cfg.Build(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBadScaleRejected(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 0
	if _, err := cfg.Build(); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestBadMixRejected(t *testing.T) {
	cfg := QuickConfig()
	cfg.MixID = 99
	if _, err := cfg.Build(); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestSRAMBoundGeometry(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "SRAM16"
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.LLC().SRAMWays() != 16 || sys.LLC().NVMWays() != 0 {
		t.Fatalf("SRAM16 geometry %d/%d", sys.LLC().SRAMWays(), sys.LLC().NVMWays())
	}
	cfg.PolicyName = "SRAM4"
	sys, err = cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.LLC().SRAMWays() != 4 || sys.LLC().NVMWays() != 0 {
		t.Fatalf("SRAM4 geometry %d/%d", sys.LLC().SRAMWays(), sys.LLC().NVMWays())
	}
}

func TestNVMLatencyFactor(t *testing.T) {
	cfg := DefaultConfig()
	base := cfg.Latencies()
	if base.LLCNVM != 32 {
		t.Fatalf("base NVM latency %d, want 32", base.LLCNVM)
	}
	cfg.NVMLatencyFactor = 1.5
	lat := cfg.Latencies()
	if lat.LLCNVM != 36 { // 24 + 8*1.5 (paper §V-F: 8 -> 12-cycle D-array)
		t.Fatalf("1.5x NVM latency %d, want 36", lat.LLCNVM)
	}
	if lat.LLCSRAM != base.LLCSRAM {
		t.Fatal("SRAM latency must not change")
	}
}

func TestDuelingAccessor(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "CP_SD"
	sys, _ := cfg.Build()
	if _, ok := Dueling(sys); !ok {
		t.Fatal("CP_SD should expose a dueling controller")
	}
	cfg.PolicyName = "BH"
	sys, _ = cfg.Build()
	if _, ok := Dueling(sys); ok {
		t.Fatal("BH should not have a dueling controller")
	}
}

func TestCPSDThNaming(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "CP_SD_Th"
	cfg.Th = 8
	sys, _ := cfg.Build()
	if got := sys.LLC().Policy().Name(); got != "CP_SD_Th8" {
		t.Fatalf("policy name %q", got)
	}
	d, ok := Dueling(sys)
	if !ok || d.Th != 8 || d.Tw != 5 {
		t.Fatalf("controller Th/Tw = %v/%v", d.Th, d.Tw)
	}
}

func TestPreAge(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "CP_SD"
	sys, _ := cfg.Build()
	PreAge(sys, 0.8)
	got := sys.LLC().EffectiveCapacityFraction()
	if math.Abs(got-0.8) > 0.02 {
		t.Fatalf("pre-aged capacity %v, want ~0.8", got)
	}
	// Phase counters must be clean afterwards so the next forecast phase
	// measures only real traffic.
	if sys.LLC().Array().PhaseBytesWritten() != 0 {
		t.Fatal("pre-age leaked phase counters")
	}
	// System still runs.
	if r := sys.Run(100_000); r.MeanIPC <= 0 {
		t.Fatal("aged system does not run")
	}
}

func TestPreAgeNoopAtFullCapacity(t *testing.T) {
	cfg := QuickConfig()
	sys, _ := cfg.Build()
	PreAge(sys, 1.0)
	if sys.LLC().EffectiveCapacityFraction() != 1.0 {
		t.Fatal("PreAge(1.0) should not age")
	}
}

func TestMeasure(t *testing.T) {
	cfg := QuickConfig()
	sys, _ := cfg.Build()
	s := Measure(sys, 100_000, 400_000)
	if s.Policy != "CP_SD" {
		t.Errorf("policy %q", s.Policy)
	}
	if s.MeanIPC <= 0 || s.Hits == 0 || s.Capacity != 1.0 {
		t.Errorf("summary %+v", s)
	}
	if s.HitRate <= 0 || s.HitRate > 1 {
		t.Errorf("hit rate %v", s.HitRate)
	}
}

func TestMeasureMixes(t *testing.T) {
	cfg := QuickConfig()
	sums, mean, err := MeasureMixes(cfg, []int{0, 1}, 100_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("%d summaries", len(sums))
	}
	wantIPC := (sums[0].MeanIPC + sums[1].MeanIPC) / 2
	if math.Abs(mean.MeanIPC-wantIPC) > 1e-12 {
		t.Errorf("mean IPC %v, want %v", mean.MeanIPC, wantIPC)
	}
	if _, _, err := MeasureMixes(cfg, nil, 1, 1); err == nil {
		t.Error("empty mix list accepted")
	}
}

func TestAllMixes(t *testing.T) {
	// The paper's ten Table V mixes plus the skewed-traffic scenarios
	// (zipfian set pressure, multi-tenant interference).
	if len(AllMixes()) != 12 {
		t.Fatalf("AllMixes = %v", AllMixes())
	}
}

func TestSortedPolicyNames(t *testing.T) {
	names := SortedPolicyNames()
	if len(names) != len(Policies()) {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("not sorted")
		}
	}
}

// TestPolicyOrderingSanity is the repo's headline smoke check: on a real
// (small) run, the policy hit-rate and NVM-write orderings the paper
// relies on must hold: BH is the hit-rate reference, LHybrid/TAP write far
// less NVM than BH, and CP_SD sits between.
func TestPolicyOrderingSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy run")
	}
	measure := func(name string) Summary {
		cfg := QuickConfig()
		cfg.PolicyName = name
		sys, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		return Measure(sys, 1_000_000, 4_000_000)
	}
	bh := measure("BH")
	lh := measure("LHybrid")
	cp := measure("CP_SD")
	if lh.NVMBytesWritten >= bh.NVMBytesWritten {
		t.Errorf("LHybrid NVM bytes %d !< BH %d", lh.NVMBytesWritten, bh.NVMBytesWritten)
	}
	if cp.NVMBytesWritten >= bh.NVMBytesWritten {
		t.Errorf("CP_SD NVM bytes %d !< BH %d", cp.NVMBytesWritten, bh.NVMBytesWritten)
	}
	if cp.HitRate < lh.HitRate*0.95 {
		t.Errorf("CP_SD hit rate %.3f far below LHybrid %.3f", cp.HitRate, lh.HitRate)
	}
}

func TestBankConfig(t *testing.T) {
	cfg := QuickConfig()
	if cfg.LLCBanks != 4 {
		t.Fatalf("default banks = %d, want 4 (Table IV)", cfg.LLCBanks)
	}
	cfg.LLCBanks = 0
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(300_000)
	if sys.BankStallCycles != 0 {
		t.Error("disabled banks recorded stalls")
	}
	cfg.LLCBanks = 4
	sys2, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys2.Run(300_000)
	if sys2.BankStallCycles == 0 {
		t.Error("enabled banks recorded no stalls")
	}
}

func TestPrefetchConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.EnablePrefetcher = true
	cfg.PrefetchDegree = 2
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(400_000)
	var issued uint64
	for _, c := range sys.Cores() {
		if c.Prefetcher() == nil {
			t.Fatal("prefetcher missing")
		}
		issued += c.Prefetcher().Issued
	}
	if issued == 0 {
		t.Error("no prefetches issued")
	}
}

func TestNVMRRIPConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.NVMRRIP = true
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := Measure(sys, 300_000, 600_000)
	if s.Hits == 0 {
		t.Error("RRIP system produced no hits")
	}
	if err := sys.LLC().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBuildPolicyExported(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "LHybrid"
	pol, thr, sram, nvmW, err := BuildPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "LHybrid" || thr != nil || sram != cfg.SRAMWays || nvmW != cfg.NVMWays {
		t.Fatalf("BuildPolicy: %v %v %d %d", pol.Name(), thr, sram, nvmW)
	}
}

func TestMaterializeConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.LLC().Materialized() {
		t.Fatal("materialized mode not active")
	}
}
