package core

import (
	"strings"
	"testing"
)

// TestValidateColoringRejections is the validation table for coloring
// documents: scheme-specific range checks plus the mixed-document rule
// (knobs of an unselected scheme must stay zero, so a typo'd field is an
// error rather than silently ignored).
func TestValidateColoringRejections(t *testing.T) {
	cases := []struct {
		name string
		sets int // 0 = keep QuickConfig's
		cc   ColoringConfig
		want string
	}{
		{"unknown scheme", 0, ColoringConfig{Scheme: "bogus"}, "unknown scheme"},
		{"empty scheme", 0, ColoringConfig{}, "unknown scheme"},
		{"xor non-pow2", 96, ColoringConfig{Scheme: ColoringXOR}, "power-of-two"},
		{"xor mask negative", 0, ColoringConfig{Scheme: ColoringXOR, Mask: -1}, "mask"},
		{"xor mask too big", 0, ColoringConfig{Scheme: ColoringXOR, Mask: 256}, "mask"},
		{"xor with interval", 0, ColoringConfig{Scheme: ColoringXOR, IntervalEpochs: 2}, "does not apply"},
		{"xor with step", 0, ColoringConfig{Scheme: ColoringXOR, Step: 3}, "does not apply"},
		{"rotate step too big", 0, ColoringConfig{Scheme: ColoringRot, Step: 256}, "step"},
		{"rotate step negative", 0, ColoringConfig{Scheme: ColoringRot, Step: -1}, "step"},
		{"rotate with mask", 0, ColoringConfig{Scheme: ColoringRot, Mask: 1}, "does not apply"},
		{"rotate with pairs", 0, ColoringConfig{Scheme: ColoringRot, Pairs: 2}, "does not apply"},
		{"wear pairs too big", 0, ColoringConfig{Scheme: ColoringWear, Pairs: 129}, "pairs"},
		{"wear pairs negative", 0, ColoringConfig{Scheme: ColoringWear, Pairs: -1}, "pairs"},
		{"wear with mask", 0, ColoringConfig{Scheme: ColoringWear, Mask: 1}, "does not apply"},
		{"interval negative", 0, ColoringConfig{Scheme: ColoringWear, IntervalEpochs: -1}, "interval_epochs"},
		{"interval huge", 0, ColoringConfig{Scheme: ColoringWear, IntervalEpochs: MaxColoringInterval + 1}, "interval_epochs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := QuickConfig()
			if tc.sets != 0 {
				cfg.LLCSets = tc.sets
			}
			cc := tc.cc
			cfg.Coloring = &cc
			err := cfg.Validate()
			if err == nil {
				t.Fatal("accepted bad coloring")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := cfg.Build(); err == nil {
				t.Fatal("Build accepted a coloring Validate rejects")
			}
		})
	}
}

// TestBuildColoringSchemes: every valid document builds the matching
// scheme, zero interval/step/pairs default to 1, and a nil document
// builds no mapper at all.
func TestBuildColoringSchemes(t *testing.T) {
	cfg := QuickConfig()
	if m, err := cfg.buildColoring(); err != nil || m != nil {
		t.Fatalf("nil coloring built %v (err %v)", m, err)
	}
	for _, cc := range []ColoringConfig{
		{Scheme: ColoringXOR},
		{Scheme: ColoringXOR, Mask: 21},
		{Scheme: ColoringRot},
		{Scheme: ColoringRot, IntervalEpochs: 4, Step: 37},
		{Scheme: ColoringWear},
		{Scheme: ColoringWear, IntervalEpochs: 2, Pairs: 32},
	} {
		cfg := QuickConfig()
		doc := cc
		cfg.Coloring = &doc
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%+v: %v", cc, err)
		}
		m, err := cfg.buildColoring()
		if err != nil || m == nil {
			t.Fatalf("%+v: mapper %v, err %v", cc, m, err)
		}
		assertBijection(t, m.Map, cfg.LLCSets)
	}
}

func assertBijection(t *testing.T, mapFn func(int) int, sets int) {
	t.Helper()
	seen := make([]bool, sets)
	for l := 0; l < sets; l++ {
		p := mapFn(l)
		if p < 0 || p >= sets {
			t.Fatalf("set %d maps outside [0,%d): %d", l, sets, p)
		}
		if seen[p] {
			t.Fatalf("physical row %d aliased", p)
		}
		seen[p] = true
	}
}

// TestColoringStrictDecode: the strict JSON boundary rejects unknown
// knobs inside the coloring document, and a valid document round-trips
// into the selected scheme.
func TestColoringStrictDecode(t *testing.T) {
	cfg := QuickConfig()
	if err := UnmarshalStrict([]byte(`{"coloring":{"scheme":"wear","interval_epochs":2,"pairs":8}}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Coloring == nil || cfg.Coloring.Scheme != ColoringWear || cfg.Coloring.Pairs != 8 {
		t.Fatalf("decoded coloring %+v", cfg.Coloring)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := QuickConfig()
	if err := UnmarshalStrict([]byte(`{"coloring":{"scheme":"wear","pears":8}}`), &bad); err == nil {
		t.Fatal("unknown coloring field accepted")
	}
}

// FuzzColoringConfigDecode fuzzes the submission boundary: any byte
// sequence either fails strict decode, fails Validate, or yields a
// buildable coloring whose mapping is a bijection. No input may panic,
// and Validate-accepted documents must never fail to build — the simd
// daemon relies on that to reject bad coloring before queueing a job.
func FuzzColoringConfigDecode(f *testing.F) {
	for _, seed := range []string{
		`{"coloring":{"scheme":"wear","interval_epochs":2,"pairs":32}}`,
		`{"coloring":{"scheme":"xor","mask":21}}`,
		`{"coloring":{"scheme":"rotate","interval_epochs":4,"step":37}}`,
		`{"coloring":{"scheme":"xor","mask":-1}}`,
		`{"coloring":{"scheme":"rotate","pairs":3}}`,
		`{"coloring":{"scheme":"bogus"}}`,
		`{"llc_sets":96,"coloring":{"scheme":"xor"}}`,
		`{"coloring":{"scheme":"wear","interval_epochs":9999999}}`,
		`{"coloring":{"scheme":"wear","typo":1}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := QuickConfig()
		if err := UnmarshalStrict(data, &cfg); err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			return // the boundary rejected it; nothing may be built
		}
		m, err := cfg.buildColoring()
		if err != nil {
			t.Fatalf("Validate accepted but buildColoring failed: %v\n%s", err, data)
		}
		if m != nil {
			assertBijection(t, m.Map, cfg.LLCSets)
		}
	})
}
