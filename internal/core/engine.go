package core

import (
	"math"

	"repro/internal/forecast"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// BuildEngine constructs the set-sharded parallel engine described by the
// config (Config.Shards shards; 0 means 1). Every shard clone is built
// through the same policy and LLC constructors as Build, each with a
// fresh, identically seeded endurance sampler, so the clones' endurance
// draws — and therefore the engine's output — are bit-identical for every
// shard count. Callers must Close the engine when done.
func (c Config) BuildEngine() (*shard.Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	shards := c.Shards
	if shards == 0 {
		shards = 1
	}
	apps, err := workload.NewMix(c.MixID, c.Seed, c.Scale)
	if err != nil {
		return nil, err
	}
	// Resolve the policy once up front to surface errors before the
	// builder closure (which cannot fail) runs.
	if _, _, _, _, err := c.buildPolicy(); err != nil {
		return nil, err
	}
	// One shared coloring mapper instance: every clone maps through it
	// (self-advance off) and the router alone advances it at the epoch
	// barrier, so all clones see every remap at the same quiescent
	// point — the bit-exactness invariant for any shard count.
	mapper, err := c.buildColoring()
	if err != nil {
		return nil, err
	}
	newLLC := func(int) *hybrid.LLC {
		pol, thr, sram, nvmW, err := c.buildPolicy()
		if err != nil {
			return nil
		}
		return hybrid.New(hybrid.Config{
			Sets:             c.LLCSets,
			SRAMWays:         sram,
			NVMWays:          nvmW,
			Policy:           pol,
			Thresholds:       thr,
			Endurance:        nvm.EnduranceModel{Mean: c.EnduranceMean, CV: c.EnduranceCV},
			Sampler:          stats.NewRNG(c.Seed ^ 0xE7D5),
			HCROnly:          c.AblationHCROnly,
			NoGetXInvalidate: c.AblationNoInvalidate,
			MaterializeData:  c.MaterializeData,
			NVMReplacement:   replacementOf(c.NVMRRIP),
			SetMapper:        mapper,
		})
	}
	// One more buildPolicy call yields the global threshold provider the
	// epoch barrier merges shard votes into (a fresh dueling controller
	// for dueling policies, a FixedThreshold or nil otherwise).
	_, global, _, _, err := c.buildPolicy()
	if err != nil {
		return nil, err
	}
	hcfg := hier.Config{
		L1Sets: c.L1Sets, L1Ways: c.L1Ways,
		L2Sets: c.L2SizeKB * 1024 / (c.L2Ways * 64), L2Ways: c.L2Ways,
		EpochCycles: c.EpochCycles,
		IssueWidth:  4,
		Lat:         c.Latencies(),
		Banks:       c.LLCBanks,
	}
	return shard.New(shard.Config{
		Shards:   shards,
		Sets:     c.LLCSets,
		Hier:     hcfg,
		NewLLC:   newLLC,
		Global:   global,
		Apps:     apps,
		Coloring: mapper,
	})
}

// MeasureEngine warms the engine up and measures a window (the engine
// counterpart of Measure).
func MeasureEngine(e *shard.Engine, warmupCycles, measureCycles uint64) Summary {
	e.Run(warmupCycles)
	r := e.Run(measureCycles)
	return Summary{
		Policy:          e.PolicyName(),
		MeanIPC:         r.MeanIPC,
		HitRate:         r.LLC.HitRate(),
		Hits:            r.LLC.Hits,
		Misses:          r.LLC.Misses,
		NVMBytesWritten: r.LLC.NVMBytesWritten,
		NVMBlockWrites:  r.LLC.NVMBlockWrites,
		SRAMHits:        r.LLC.SRAMHits,
		NVMHits:         r.LLC.NVMHits,
		Inserts:         r.LLC.Inserts,
		Migrations:      r.LLC.Migrations,
		Capacity:        e.EffectiveCapacityFraction(),
		Metrics:         r.Metrics,
	}
}

// PreAgeEngine is PreAge for the sharded engine: it wears the owned
// frames (in global set-major order, so the aging trajectory matches the
// sequential engine's) to the target capacity and drops unfit entries.
func PreAgeEngine(e *shard.Engine, targetCapacity float64) {
	frames := e.Frames()
	if frames == nil || targetCapacity >= 1 {
		return
	}
	for _, f := range frames {
		f.ResetPhase()
		f.RecordWrite(nvm.FrameBytes) // uniform unit rate
	}
	forecast.AgeFrames(frames, 1.0, targetCapacity, math.MaxFloat64)
	e.ResetPhase()
	e.InvalidateUnfit()
}

// BuildForecastTarget builds the forecast target the config selects:
// the classic sequential hierarchy for Shards <= 1, the sharded engine
// otherwise. The returned closer releases the engine's worker goroutines
// (a no-op for the sequential path) and must be called after the
// forecast completes.
func (c Config) BuildForecastTarget() (forecast.Target, func(), error) {
	if c.Shards <= 1 {
		sys, err := c.Build()
		if err != nil {
			return nil, nil, err
		}
		return forecast.SystemTarget(sys), func() {}, nil
	}
	e, err := c.BuildEngine()
	if err != nil {
		return nil, nil, err
	}
	return e.ForecastTarget(), e.Close, nil
}
