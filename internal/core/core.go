// Package core is the public orchestration layer of the reproduction: it
// turns a declarative Config — mix, policy name, geometry, endurance,
// latency factors — into a runnable simulated system, and provides the
// helpers shared by the command-line tools, the examples and the benchmark
// harness (pre-aging, windowed runs, policy registry).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/check"
	"repro/internal/dueling"
	"repro/internal/forecast"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config declares one simulated machine + workload + policy. The zero
// value is not usable; start from DefaultConfig.
//
// The JSON tags define the configuration wire format shared by
// `hybridsim -config file.json` and the simd job daemon; UnmarshalStrict
// decodes it with unknown fields rejected, overlaying a caller-supplied
// base (typically DefaultConfig) so partial documents stay valid.
type Config struct {
	// Workload.
	MixID int     `json:"mix_id"` // mix index, 0-based (Table V 0..9, skew scenarios beyond)
	Seed  uint64  `json:"seed"`   // workload and endurance sampling seed
	Scale float64 `json:"scale"`  // footprint scale relative to the scaled-down default

	// LLC geometry (Table IV: 4 SRAM + 12 NVM ways).
	LLCSets  int `json:"llc_sets"`
	SRAMWays int `json:"sram_ways"`
	NVMWays  int `json:"nvm_ways"`

	// Private levels.
	L1Sets   int `json:"l1_sets"`
	L1Ways   int `json:"l1_ways"`
	L2SizeKB int `json:"l2_size_kb"` // 128 default; §V-E uses 256
	L2Ways   int `json:"l2_ways"`

	// Policy selection; see Policies() for valid names.
	PolicyName string  `json:"policy"`
	CPth       int     `json:"cpth"` // fixed threshold for CA / CA_RWR
	Th         float64 `json:"th"`   // CP_SD_Th rule parameters (§IV-D)
	Tw         float64 `json:"tw"`

	// NVM device model.
	EnduranceMean float64 `json:"endurance_mean"`
	EnduranceCV   float64 `json:"endurance_cv"`

	// Timing.
	EpochCycles      uint64  `json:"epoch_cycles"`
	NVMLatencyFactor float64 `json:"nvm_latency_factor"` // scales the NVM data-array latency (§V-F)

	// Ablations of individual design choices (bench_test.go's ablation
	// benches quantify each against the full design).
	AblationHCROnly      bool `json:"ablation_hcr_only"`      // original BDI: discard LCR encodings
	AblationNoInvalidate bool `json:"ablation_no_invalidate"` // keep the LLC copy on GetX hits
	AblationNoMigration  bool `json:"ablation_no_migration"`  // drop read-reused SRAM victims

	// MaterializeData runs the bit-exact Fig-5 NVM data path for every
	// block (validation mode, ~10x slower; compressing policies only).
	MaterializeData bool `json:"materialize_data"`

	// EnablePrefetcher turns on the per-core L2 stride prefetcher
	// (degree PrefetchDegree, default 1), restoring TAP's demand/prefetch
	// block classes.
	EnablePrefetcher bool `json:"enable_prefetcher"`
	PrefetchDegree   int  `json:"prefetch_degree"`

	// NVMRRIP switches the NVM-part replacement from the paper's fit-LRU
	// to fit-RRIP (SRRIP) — an extension for scan-resistant victim
	// selection.
	NVMRRIP bool `json:"nvm_rrip"`

	// Tournament declares the bracket the TOURNAMENT policy runs: an
	// N-way generalization of the paper's set dueling where each
	// candidate is a whole insertion policy (plus optional per-candidate
	// CPth) sampled on its own share of sets. nil selects
	// DefaultTournament; ignored by every other policy. The pointer is
	// omitted from the canonical form when nil, so pre-tournament cache
	// keys and golden configs are unchanged.
	Tournament *TournamentConfig `json:"tournament,omitempty"`

	// Coloring selects inter-set wear-leveling (cache coloring): a
	// bijective logical-set→physical-row remap applied to every LLC
	// lookup, with rotation/wear-feedback schemes advancing at epoch
	// boundaries (at the shard router's barrier under sharding, so any
	// shard count stays bit-identical). nil disables coloring; the
	// pointer is omitted from the canonical form when nil, so
	// pre-coloring cache keys and golden configs are unchanged.
	Coloring *ColoringConfig `json:"coloring,omitempty"`

	// LLCBanks is the number of address-interleaved LLC banks whose
	// data-array occupancy is modelled (Table IV: 4). 0 disables bank
	// contention.
	LLCBanks int `json:"llc_banks"`

	// CheckEvery, when non-zero, attaches the runtime invariant checker
	// to every system this config builds: the full suite (LLC structure,
	// LRU stack, fault-map consistency, stats conservation, metrics
	// registry agreement) runs every CheckEvery LLC accesses. Violations
	// accumulate on the checker, reachable via hier.System.AccessProbe.
	CheckEvery uint64 `json:"check_every"`

	// Shards selects the set-sharded parallel engine (internal/shard):
	// the LLC's sets are split into this many contiguous shards applied
	// by worker goroutines, bit-identical to Shards=1 by construction.
	// 0 or 1 builds the engine single-sharded (inline, no goroutines).
	// Only BuildEngine, MeasureEngine, BuildForecastTarget and
	// NewRunHandle honor it; Build always constructs the classic
	// sequential system. Shards > 1 is incompatible with
	// EnablePrefetcher and CheckEvery.
	Shards int `json:"shards"`
}

// DefaultConfig returns the scaled default system: 1 MB 16-way LLC
// (4 SRAM + 12 NVM ways), 128 KB L2, CP_SD policy, mix 0.
func DefaultConfig() Config {
	return Config{
		MixID:            0,
		Seed:             1,
		Scale:            0.25,
		LLCSets:          1024,
		SRAMWays:         4,
		NVMWays:          12,
		L1Sets:           128,
		L1Ways:           4,
		L2SizeKB:         128,
		L2Ways:           16,
		PolicyName:       "CP_SD",
		CPth:             58,
		Th:               4, // §IV-D operating point; only used by CP_SD_Th
		Tw:               5,
		EnduranceMean:    1e10,
		EnduranceCV:      0.2,
		EpochCycles:      2_000_000,
		NVMLatencyFactor: 1.0,
		LLCBanks:         4,
	}
}

// QuickConfig returns a smaller configuration suitable for tests and the
// benchmark harness: 256-set LLC, proportionally smaller footprints and
// L2, shorter epochs. Working sets still overflow the LLC so policies
// remain differentiated.
func QuickConfig() Config {
	c := DefaultConfig()
	c.LLCSets = 256
	c.Scale = 0.15
	c.L2SizeKB = 64
	c.EpochCycles = 500_000
	return c
}

// Latencies derives the hierarchy latencies from the config, applying the
// NVM latency factor to the NVM data-array portion (8 cycles of the
// 32-cycle load-use delay, Table IV).
func (c Config) Latencies() hier.Latencies {
	lat := hier.DefaultLatencies()
	f := c.NVMLatencyFactor
	if f <= 0 {
		f = 1
	}
	base := lat.LLCNVM - 8 // tag + routing portion
	lat.LLCNVM = base + int(math.Round(8*f))
	return lat
}

// Build constructs the simulated system described by the config. The
// config is validated first; a CheckEvery > 0 config comes back with the
// invariant checker already attached.
func (c Config) Build() (*hier.System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	apps, err := workload.NewMix(c.MixID, c.Seed, c.Scale)
	if err != nil {
		return nil, err
	}
	progs := make([]hier.Program, len(apps))
	for i, a := range apps {
		progs[i] = a
	}
	return c.BuildFromPrograms(progs)
}

// BuildFromPrograms constructs the simulated system with caller-supplied
// per-core stimulus programs — typically trace replays loaded through
// cliutil.LoadMixPrograms — instead of the mix's synthetic applications.
// Everything else (policy, LLC, hierarchy, invariant checker) is built
// exactly as Build does it, so a replayed trace recorded from the same
// mix/seed/scale reproduces the direct run bit for bit.
func (c Config) BuildFromPrograms(progs []hier.Program) (*hier.System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: no programs")
	}
	pol, thr, sram, nvmW, err := c.buildPolicy()
	if err != nil {
		return nil, err
	}
	mapper, err := c.buildColoring()
	if err != nil {
		return nil, err
	}
	llc := hybrid.New(hybrid.Config{
		Sets:             c.LLCSets,
		SRAMWays:         sram,
		NVMWays:          nvmW,
		Policy:           pol,
		Thresholds:       thr,
		Endurance:        nvm.EnduranceModel{Mean: c.EnduranceMean, CV: c.EnduranceCV},
		Sampler:          stats.NewRNG(c.Seed ^ 0xE7D5),
		HCROnly:          c.AblationHCROnly,
		NoGetXInvalidate: c.AblationNoInvalidate,
		MaterializeData:  c.MaterializeData,
		NVMReplacement:   replacementOf(c.NVMRRIP),
		SetMapper:        mapper,
		SetMapperAdvance: true,
	})
	hcfg := hier.Config{
		L1Sets: c.L1Sets, L1Ways: c.L1Ways,
		L2Sets: c.L2SizeKB * 1024 / (c.L2Ways * 64), L2Ways: c.L2Ways,
		EpochCycles:    c.EpochCycles,
		IssueWidth:     4,
		Lat:            c.Latencies(),
		Prefetch:       c.EnablePrefetcher,
		PrefetchDegree: c.PrefetchDegree,
		Banks:          c.LLCBanks,
	}
	sys := hier.NewFromPrograms(hcfg, llc, progs)
	if c.CheckEvery > 0 {
		check.Attach(sys, check.Options{Every: c.CheckEvery})
	}
	return sys, nil
}

func replacementOf(rrip bool) hybrid.Replacement {
	if rrip {
		return hybrid.FitRRIP
	}
	return hybrid.FitLRU
}

// Dueling returns the system's dueling controller, if its policy uses one.
func Dueling(sys *hier.System) (*dueling.Controller, bool) {
	d, ok := sys.LLC().Thresholds().(*dueling.Controller)
	return d, ok
}

// PreAge wears the system's NVM array uniformly until its effective
// capacity reaches the target fraction, then drops LLC entries whose
// frames can no longer hold them. It reproduces the paper's aged-cache
// operating points (Fig 8a, Fig 9: 100/90/80% capacities).
func PreAge(sys *hier.System, targetCapacity float64) {
	arr := sys.LLC().Array()
	if arr == nil || targetCapacity >= 1 {
		return
	}
	for _, f := range arr.Frames() {
		f.ResetPhase()
		f.RecordWrite(nvm.FrameBytes) // uniform unit rate
	}
	forecast.Age(arr, 1.0, targetCapacity, math.MaxFloat64)
	arr.ResetPhase()
	sys.LLC().InvalidateUnfit()
}

// Summary condenses one measured run window.
type Summary struct {
	Policy          string
	MeanIPC         float64
	HitRate         float64
	Hits            uint64
	Misses          uint64
	NVMBytesWritten uint64
	NVMBlockWrites  uint64
	SRAMHits        uint64
	NVMHits         uint64
	Inserts         uint64
	Migrations      uint64
	Capacity        float64

	// Metrics is the full registry delta of the measured window — every
	// counter and gauge of the system, under their hierarchical names.
	Metrics metrics.Snapshot
}

// Measure warms the system up and measures a window, returning a summary.
func Measure(sys *hier.System, warmupCycles, measureCycles uint64) Summary {
	sys.Run(warmupCycles)
	r := sys.Run(measureCycles)
	return Summary{
		Policy:          sys.LLC().Policy().Name(),
		MeanIPC:         r.MeanIPC,
		HitRate:         r.LLC.HitRate(),
		Hits:            r.LLC.Hits,
		Misses:          r.LLC.Misses,
		NVMBytesWritten: r.LLC.NVMBytesWritten,
		NVMBlockWrites:  r.LLC.NVMBlockWrites,
		SRAMHits:        r.LLC.SRAMHits,
		NVMHits:         r.LLC.NVMHits,
		Inserts:         r.LLC.Inserts,
		Migrations:      r.LLC.Migrations,
		Capacity:        sys.LLC().EffectiveCapacityFraction(),
		Metrics:         r.Metrics,
	}
}

// MeasureMixes runs the same config across several mixes and returns the
// per-mix summaries plus the across-mix means of IPC, hit rate and NVM
// bytes (the paper averages its ten multiprogrammed mixes).
func MeasureMixes(base Config, mixes []int, warmup, measure uint64) ([]Summary, Summary, error) {
	if len(mixes) == 0 {
		return nil, Summary{}, fmt.Errorf("core: no mixes")
	}
	out := make([]Summary, 0, len(mixes))
	var mean Summary
	for _, m := range mixes {
		cfg := base
		cfg.MixID = m
		sys, err := cfg.Build()
		if err != nil {
			return nil, Summary{}, err
		}
		s := Measure(sys, warmup, measure)
		out = append(out, s)
		mean.MeanIPC += s.MeanIPC
		mean.HitRate += s.HitRate
		mean.Hits += s.Hits
		mean.Misses += s.Misses
		mean.NVMBytesWritten += s.NVMBytesWritten
		mean.NVMBlockWrites += s.NVMBlockWrites
	}
	n := float64(len(mixes))
	mean.Policy = out[0].Policy
	mean.MeanIPC /= n
	mean.HitRate /= n
	mean.Hits = uint64(float64(mean.Hits) / n)
	mean.Misses = uint64(float64(mean.Misses) / n)
	mean.NVMBytesWritten = uint64(float64(mean.NVMBytesWritten) / n)
	mean.NVMBlockWrites = uint64(float64(mean.NVMBlockWrites) / n)
	return out, mean, nil
}

// AllMixes returns every registered mix index: the paper's Table V set
// (0..9) plus the skewed-traffic scenario mixes.
func AllMixes() []int {
	out := make([]int, len(workload.Mixes()))
	for i := range out {
		out[i] = i
	}
	return out
}

// SortedPolicyNames returns the policy registry sorted alphabetically
// (diagnostic helper for CLIs).
func SortedPolicyNames() []string {
	ps := Policies()
	sort.Strings(ps)
	return ps
}

// BuildPolicy resolves the config's policy selection into the policy
// value, its threshold provider (nil when not applicable) and the
// SRAM/NVM way split. Exported for experiment code that assembles custom
// systems (e.g. homogeneous per-application studies).
func BuildPolicy(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
	return c.buildPolicy()
}
