package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hybrid"
)

// TestEveryRegisteredPolicyBuilds pins the registry against the drift
// hazard the old switch had: every name Policies() advertises must
// actually resolve through BuildPolicy, and the built policy/threshold
// pair must be internally consistent.
func TestEveryRegisteredPolicyBuilds(t *testing.T) {
	for _, name := range Policies() {
		cfg := QuickConfig()
		cfg.PolicyName = name
		cfg.Th = 4
		pol, thr, sram, nvmW, err := BuildPolicy(cfg)
		if err != nil {
			t.Fatalf("%s: BuildPolicy: %v", name, err)
		}
		if pol == nil {
			t.Fatalf("%s: nil policy", name)
		}
		if sram+nvmW < 1 {
			t.Fatalf("%s: empty way split %d+%d", name, sram, nvmW)
		}
		if pol.UsesThreshold() && thr == nil {
			t.Fatalf("%s: threshold-using policy without a provider", name)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: valid config rejected: %v", name, err)
		}
	}
}

// TestEveryValidConfigRoundTrips drives each registered policy's config
// through MarshalCanonical -> UnmarshalStrict and requires the decoded
// config to be identical — the property the simd result cache keys on.
func TestEveryValidConfigRoundTrips(t *testing.T) {
	for _, name := range Policies() {
		cfg := QuickConfig()
		cfg.PolicyName = name
		cfg.Th = 4
		if name == "TOURNAMENT" {
			cfg.Tournament = &TournamentConfig{
				Candidates: []TournamentCandidate{
					{Policy: "CA_RWR", CPth: 40}, {Policy: "SRRIP"}, {Policy: "BRRIP"},
				},
				SamplerDivisor: 16,
			}
		}
		blob, err := cfg.MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Config
		if err := UnmarshalStrict(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("%s: round-trip mismatch:\n got %+v\nwant %+v", name, back, cfg)
		}
		// The canonical form must be stable under a second pass (cache-key
		// determinism).
		blob2, err := back.MarshalCanonical()
		if err != nil || string(blob) != string(blob2) {
			t.Fatalf("%s: canonical form unstable (%v)", name, err)
		}
	}
}

// TestCanonicalFormBackwardCompatible pins that configs without a
// tournament bracket marshal without the field at all, so every
// pre-tournament cache key and golden document is unchanged.
func TestCanonicalFormBackwardCompatible(t *testing.T) {
	blob, err := DefaultConfig().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "tournament") {
		t.Fatalf("nil bracket leaked into canonical form: %s", blob)
	}
}

func TestTournamentEligibleSubset(t *testing.T) {
	want := []string{"CA", "CA_RWR", "SRRIP", "BRRIP", "PAR"}
	if got := TournamentEligible(); !reflect.DeepEqual(got, want) {
		t.Fatalf("eligible = %v, want %v", got, want)
	}
	all := Policies()
	for _, e := range TournamentEligible() {
		found := false
		for _, p := range all {
			if p == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("eligible policy %q not registered", e)
		}
	}
}

func TestTournamentValidation(t *testing.T) {
	base := QuickConfig()
	base.PolicyName = "TOURNAMENT"
	cases := []struct {
		name string
		tc   *TournamentConfig
		want string
	}{
		{"one candidate", &TournamentConfig{Candidates: []TournamentCandidate{{Policy: "CA"}}}, "at least 2"},
		{"unknown candidate", &TournamentConfig{Candidates: []TournamentCandidate{{Policy: "CA"}, {Policy: "NOPE"}}}, "not eligible"},
		{"global candidate", &TournamentConfig{Candidates: []TournamentCandidate{{Policy: "CA"}, {Policy: "BH"}}}, "not eligible"},
		{"dueling candidate", &TournamentConfig{Candidates: []TournamentCandidate{{Policy: "CA"}, {Policy: "CP_SD"}}}, "not eligible"},
		{"too many for divisor", &TournamentConfig{
			Candidates:     []TournamentCandidate{{Policy: "CA"}, {Policy: "CA_RWR"}, {Policy: "SRRIP"}},
			SamplerDivisor: 2,
		}, "exceed sampler divisor"},
		{"divisor over sets", &TournamentConfig{
			Candidates:     []TournamentCandidate{{Policy: "CA"}, {Policy: "SRRIP"}},
			SamplerDivisor: 100_000,
		}, "LLC sets"},
		{"bad candidate cpth", &TournamentConfig{
			Candidates: []TournamentCandidate{{Policy: "CA", CPth: 65}, {Policy: "SRRIP"}},
		}, "outside [1,64]"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Tournament = tc.tc
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if _, err := cfg.Build(); err == nil {
			t.Errorf("%s: Build accepted an invalid bracket", tc.name)
		}
	}
	// nil bracket is valid (DefaultTournament) and must build.
	cfg := base
	cfg.Tournament = nil
	if err := cfg.Validate(); err != nil {
		t.Fatalf("nil bracket rejected: %v", err)
	}
}

func TestDRRIPIsCannedTournament(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "DRRIP"
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := Dueling(sys)
	if !ok {
		t.Fatal("DRRIP should expose a dueling controller")
	}
	list := d.CandidateList()
	if len(list) != 2 || list[0].Name != "SRRIP" || list[1].Name != "BRRIP" {
		t.Fatalf("DRRIP candidates %+v", list)
	}
	if d.Th != 0 || d.Tw != 0 {
		t.Fatalf("DRRIP must select on hits alone, got Th/Tw %v/%v", d.Th, d.Tw)
	}
	if _, ok := sys.LLC().Policy().(hybrid.SetPolicyResolver); !ok {
		t.Fatal("DRRIP policy must resolve per set")
	}
}

func TestTournamentBuildResolvesBracket(t *testing.T) {
	cfg := QuickConfig()
	cfg.PolicyName = "TOURNAMENT"
	cfg.Tournament = &TournamentConfig{
		Candidates: []TournamentCandidate{
			{Policy: "CA_RWR", CPth: 40}, {Policy: "SRRIP"}, {Policy: "PAR"},
		},
		SamplerDivisor: 16,
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := Dueling(sys)
	if !ok {
		t.Fatal("tournament should expose its controller")
	}
	list := d.CandidateList()
	if len(list) != 3 {
		t.Fatalf("%d candidates", len(list))
	}
	if list[0].Name != "CA_RWR@40" || list[0].CPth != 40 {
		t.Fatalf("per-candidate CPth label lost: %+v", list[0])
	}
	if list[1].Name != "SRRIP" || list[1].CPth != cfg.CPth {
		t.Fatalf("inherited CPth wrong: %+v", list[1])
	}
	if d.Divisor() != 16 {
		t.Fatalf("divisor %d", d.Divisor())
	}
	// Sampler sets resolve to their pinned candidate's policy.
	res := sys.LLC().Policy().(hybrid.SetPolicyResolver)
	if got := res.PolicyFor(1).Name(); got != "SRRIP" {
		t.Fatalf("set 1 policy %q, want SRRIP", got)
	}
	if got := res.PolicyFor(0).Name(); got != "CA_RWR" {
		t.Fatalf("set 0 policy %q, want CA_RWR", got)
	}
	// CPthFor follows the candidate.
	if d.CPthFor(0) != 40 || d.CPthFor(1) != cfg.CPth {
		t.Fatalf("per-set CPth (%d, %d)", d.CPthFor(0), d.CPthFor(1))
	}
	// The system runs and stays structurally sound.
	sys.Run(500_000)
	if err := sys.LLC().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
