package core

import (
	"strings"
	"testing"

	"repro/internal/check"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error
	}{
		{"mix-low", func(c *Config) { c.MixID = -1 }, "mix id"},
		{"mix-high", func(c *Config) { c.MixID = 12 }, "mix id"},
		{"scale", func(c *Config) { c.Scale = 0 }, "scale"},
		{"llc-sets", func(c *Config) { c.LLCSets = 0 }, "LLC sets"},
		{"way-split", func(c *Config) { c.SRAMWays, c.NVMWays = 0, 0 }, "way split"},
		{"neg-ways", func(c *Config) { c.NVMWays = -1 }, "way split"},
		{"l1", func(c *Config) { c.L1Ways = 0 }, "L1 geometry"},
		{"l2", func(c *Config) { c.L2SizeKB = 0 }, "L2 geometry"},
		{"l2-too-small", func(c *Config) { c.L2SizeKB, c.L2Ways = 1, 32 }, "cannot hold"},
		{"policy", func(c *Config) { c.PolicyName = "NOPE" }, "unknown policy"},
		{"cpth-low", func(c *Config) { c.PolicyName, c.CPth = "CA", 0 }, "CPth"},
		{"cpth-high", func(c *Config) { c.PolicyName, c.CPth = "CA_RWR", 65 }, "CPth"},
		{"th", func(c *Config) { c.Th = -1 }, "Th"},
		{"endurance", func(c *Config) { c.EnduranceMean = 0 }, "endurance mean"},
		{"cv", func(c *Config) { c.EnduranceCV = -0.1 }, "endurance CV"},
		{"epoch", func(c *Config) { c.EpochCycles = 0 }, "epoch"},
		{"nvmlat", func(c *Config) { c.NVMLatencyFactor = -1 }, "latency factor"},
		{"prefetch", func(c *Config) { c.PrefetchDegree = -1 }, "prefetch"},
		{"banks", func(c *Config) { c.LLCBanks = -1 }, "bank"},
		// Upper bounds: out-of-range geometry must fail at the submission
		// boundary (the simd allowlist hardening), not OOM inside Build.
		{"llc-sets-huge", func(c *Config) { c.LLCSets = MaxLLCSets + 1 }, "LLC sets"},
		{"ways-huge", func(c *Config) { c.SRAMWays, c.NVMWays = 100, 100 }, "exceeds"},
		{"l1-sets-huge", func(c *Config) { c.L1Sets = MaxL1Sets + 1 }, "L1 geometry"},
		{"l1-ways-huge", func(c *Config) { c.L1Ways = MaxL1Ways + 1 }, "L1 geometry"},
		{"l2-huge", func(c *Config) { c.L2SizeKB = MaxL2SizeKB + 1 }, "L2 geometry"},
		{"l2-ways-huge", func(c *Config) { c.L2Ways = MaxL2Ways + 1 }, "L2 geometry"},
		{"scale-huge", func(c *Config) { c.Scale = MaxScale + 1 }, "scale"},
		{"epoch-huge", func(c *Config) { c.EpochCycles = MaxEpochCycles + 1 }, "epoch"},
		{"endurance-huge", func(c *Config) { c.EnduranceMean = 2e18 }, "endurance mean"},
		{"cv-huge", func(c *Config) { c.EnduranceCV = 11 }, "endurance CV"},
		{"nvmlat-huge", func(c *Config) { c.NVMLatencyFactor = MaxNVMLatencyFactor + 1 }, "latency factor"},
		{"prefetch-huge", func(c *Config) { c.PrefetchDegree = MaxPrefetchDegree + 1 }, "prefetch"},
		{"banks-huge", func(c *Config) { c.LLCBanks = MaxLLCBanks + 1 }, "bank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("accepted bad config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := cfg.Build(); err == nil {
				t.Fatal("Build accepted a config Validate rejects")
			}
		})
	}
}

func TestValidateReportsAllErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	cfg.EpochCycles = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"scale", "epoch"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func TestCheckEveryAttachesChecker(t *testing.T) {
	cfg := QuickConfig()
	cfg.CheckEvery = 1000
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	chk, ok := sys.AccessProbe().(*check.Checker)
	if !ok {
		t.Fatalf("probe is %T, want *check.Checker", sys.AccessProbe())
	}
	sys.Run(100_000)
	if chk.Runs() == 0 {
		t.Fatal("checker never ran")
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}

	cfg.CheckEvery = 0
	sys, err = cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.AccessProbe() != nil {
		t.Fatal("checker attached despite CheckEvery=0")
	}
}
