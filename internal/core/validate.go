package core

import (
	"errors"
	"fmt"

	"repro/internal/workload"
)

// Validate reports every configuration error at once (errors.Join), so a
// CLI user fixing a config sees the full list rather than one complaint
// per run. Build calls it before constructing anything; the command-line
// tools call it right after flag parsing so bad flags fail before any
// simulation work starts.
func (c Config) Validate() error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("core: "+format, args...))
	}

	if n := len(workload.Mixes()); c.MixID < 0 || c.MixID >= n {
		bad("mix id %d out of range [0,%d)", c.MixID, n)
	}
	if c.Scale <= 0 {
		bad("non-positive scale %v", c.Scale)
	}
	if c.LLCSets < 1 {
		bad("LLC sets %d < 1", c.LLCSets)
	}
	if c.SRAMWays < 0 || c.NVMWays < 0 || c.SRAMWays+c.NVMWays < 1 {
		bad("bad LLC way split %d SRAM + %d NVM", c.SRAMWays, c.NVMWays)
	}
	if c.L1Sets < 1 || c.L1Ways < 1 {
		bad("bad L1 geometry %dx%d", c.L1Sets, c.L1Ways)
	}
	if c.L2Ways < 1 || c.L2SizeKB < 1 {
		bad("bad L2 geometry %d KB, %d ways", c.L2SizeKB, c.L2Ways)
	} else if c.L2SizeKB*1024/(c.L2Ways*64) < 1 {
		bad("L2 of %d KB cannot hold %d ways of 64B blocks", c.L2SizeKB, c.L2Ways)
	}
	spec, known := specOf(c.PolicyName)
	if !known {
		bad("unknown policy %q (valid: %v)", c.PolicyName, Policies())
	}
	if known && spec.UsesCPth && (c.CPth < 1 || c.CPth > 64) {
		bad("CPth %d outside [1,64]", c.CPth)
	}
	if c.PolicyName == "TOURNAMENT" && c.Tournament != nil {
		if err := c.validateTournament(c.Tournament); err != nil {
			errs = append(errs, err)
		}
	}
	if c.Th < 0 || c.Tw < 0 {
		bad("negative CP_SD_Th parameters Th=%v Tw=%v", c.Th, c.Tw)
	}
	if c.EnduranceMean <= 0 {
		bad("non-positive endurance mean %v", c.EnduranceMean)
	}
	if c.EnduranceCV < 0 {
		bad("negative endurance CV %v", c.EnduranceCV)
	}
	if c.EpochCycles < 1 {
		bad("epoch of %d cycles", c.EpochCycles)
	}
	if c.NVMLatencyFactor < 0 {
		bad("negative NVM latency factor %v", c.NVMLatencyFactor)
	}
	if c.PrefetchDegree < 0 {
		bad("negative prefetch degree %d", c.PrefetchDegree)
	}
	if c.LLCBanks < 0 {
		bad("negative LLC bank count %d", c.LLCBanks)
	}
	if c.Shards < 0 {
		bad("negative shard count %d", c.Shards)
	}
	if c.Shards > 1 {
		if c.Shards > c.LLCSets {
			bad("%d shards exceed %d LLC sets", c.Shards, c.LLCSets)
		}
		if c.EnablePrefetcher {
			bad("%d shards incompatible with the L2 prefetcher (prefetch tags need sequential LLC answers)", c.Shards)
		}
		if c.CheckEvery > 0 {
			bad("%d shards incompatible with CheckEvery (the invariant checker probes the sequential LLC)", c.Shards)
		}
	}
	return errors.Join(errs...)
}
