package core

import (
	"errors"
	"fmt"

	"repro/internal/workload"
)

// Geometry and parameter ceilings enforced by Validate. The lower
// bounds catch nonsense; these upper bounds catch resource abuse — a
// submitted config allocates memory proportional to its geometry inside
// the worker, so the simd daemon must reject an absurd document at the
// API boundary (allowlist hardening), not OOM at Build time. The limits
// are an order of magnitude past any configuration the paper's
// methodology needs.
const (
	MaxLLCSets          = 1 << 20
	MaxLLCWays          = 128 // SRAM + NVM ways per set
	MaxL1Sets           = 1 << 18
	MaxL1Ways           = 128
	MaxL2SizeKB         = 1 << 20 // 1 GB
	MaxL2Ways           = 128
	MaxScale            = 1024
	MaxEpochCycles      = uint64(1) << 44 // 1<<40 is a legitimate "one endless epoch" idiom
	MaxEnduranceMean    = 1e18
	MaxEnduranceCV      = 10
	MaxNVMLatencyFactor = 1024
	MaxPrefetchDegree   = 64
	MaxLLCBanks         = 1024
)

// Validate reports every configuration error at once (errors.Join), so a
// CLI user fixing a config sees the full list rather than one complaint
// per run. Build calls it before constructing anything; the command-line
// tools call it right after flag parsing, and the simd daemon before a
// job or sweep child is queued, so bad geometry fails at the submission
// boundary instead of inside a worker.
func (c Config) Validate() error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("core: "+format, args...))
	}

	if n := len(workload.Mixes()); c.MixID < 0 || c.MixID >= n {
		bad("mix id %d out of range [0,%d)", c.MixID, n)
	}
	if c.Scale <= 0 || c.Scale > MaxScale {
		bad("scale %v outside (0,%d]", c.Scale, MaxScale)
	}
	if c.LLCSets < 1 || c.LLCSets > MaxLLCSets {
		bad("LLC sets %d outside [1,%d]", c.LLCSets, MaxLLCSets)
	}
	if c.SRAMWays < 0 || c.NVMWays < 0 || c.SRAMWays+c.NVMWays < 1 {
		bad("bad LLC way split %d SRAM + %d NVM", c.SRAMWays, c.NVMWays)
	} else if c.SRAMWays+c.NVMWays > MaxLLCWays {
		bad("LLC way split %d SRAM + %d NVM exceeds %d ways", c.SRAMWays, c.NVMWays, MaxLLCWays)
	}
	if c.L1Sets < 1 || c.L1Ways < 1 || c.L1Sets > MaxL1Sets || c.L1Ways > MaxL1Ways {
		bad("bad L1 geometry %dx%d (limits %dx%d)", c.L1Sets, c.L1Ways, MaxL1Sets, MaxL1Ways)
	}
	if c.L2Ways < 1 || c.L2SizeKB < 1 || c.L2Ways > MaxL2Ways || c.L2SizeKB > MaxL2SizeKB {
		bad("bad L2 geometry %d KB, %d ways (limits %d KB, %d ways)", c.L2SizeKB, c.L2Ways, MaxL2SizeKB, MaxL2Ways)
	} else if c.L2SizeKB*1024/(c.L2Ways*64) < 1 {
		bad("L2 of %d KB cannot hold %d ways of 64B blocks", c.L2SizeKB, c.L2Ways)
	}
	spec, known := specOf(c.PolicyName)
	if !known {
		bad("unknown policy %q (valid: %v)", c.PolicyName, Policies())
	}
	if known && spec.UsesCPth && (c.CPth < 1 || c.CPth > 64) {
		bad("CPth %d outside [1,64]", c.CPth)
	}
	if c.PolicyName == "TOURNAMENT" && c.Tournament != nil {
		if err := c.validateTournament(c.Tournament); err != nil {
			errs = append(errs, err)
		}
	}
	if c.Coloring != nil {
		if err := c.validateColoring(c.Coloring); err != nil {
			errs = append(errs, err)
		}
	}
	if c.Th < 0 || c.Tw < 0 {
		bad("negative CP_SD_Th parameters Th=%v Tw=%v", c.Th, c.Tw)
	}
	if c.EnduranceMean <= 0 || c.EnduranceMean > MaxEnduranceMean {
		bad("endurance mean %v outside (0,%g]", c.EnduranceMean, float64(MaxEnduranceMean))
	}
	if c.EnduranceCV < 0 || c.EnduranceCV > MaxEnduranceCV {
		bad("endurance CV %v outside [0,%d]", c.EnduranceCV, MaxEnduranceCV)
	}
	if c.EpochCycles < 1 || c.EpochCycles > MaxEpochCycles {
		bad("epoch of %d cycles outside [1,%d]", c.EpochCycles, MaxEpochCycles)
	}
	if c.NVMLatencyFactor < 0 || c.NVMLatencyFactor > MaxNVMLatencyFactor {
		bad("NVM latency factor %v outside [0,%d]", c.NVMLatencyFactor, MaxNVMLatencyFactor)
	}
	if c.PrefetchDegree < 0 || c.PrefetchDegree > MaxPrefetchDegree {
		bad("prefetch degree %d outside [0,%d]", c.PrefetchDegree, MaxPrefetchDegree)
	}
	if c.LLCBanks < 0 || c.LLCBanks > MaxLLCBanks {
		bad("LLC bank count %d outside [0,%d]", c.LLCBanks, MaxLLCBanks)
	}
	if c.Shards < 0 {
		bad("negative shard count %d", c.Shards)
	}
	if c.Shards > 1 {
		if c.Shards > c.LLCSets {
			bad("%d shards exceed %d LLC sets", c.Shards, c.LLCSets)
		}
		if c.EnablePrefetcher {
			bad("%d shards incompatible with the L2 prefetcher (prefetch tags need sequential LLC answers)", c.Shards)
		}
		if c.CheckEvery > 0 {
			bad("%d shards incompatible with CheckEvery (the invariant checker probes the sequential LLC)", c.Shards)
		}
	}
	return errors.Join(errs...)
}
