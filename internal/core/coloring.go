package core

import (
	"errors"
	"fmt"

	"repro/internal/coloring"
	"repro/internal/hybrid"
)

// Coloring scheme names accepted by ColoringConfig.Scheme.
const (
	ColoringXOR  = "xor"
	ColoringRot  = "rotate"
	ColoringWear = "wear"
)

// MaxColoringInterval bounds the rotation/wear-feedback epoch interval
// (resource-abuse ceiling, same spirit as the geometry limits).
const MaxColoringInterval = 1 << 20

// ColoringSchemes lists the valid scheme names.
func ColoringSchemes() []string { return []string{ColoringXOR, ColoringRot, ColoringWear} }

// ColoringConfig declares the inter-set wear-leveling (cache coloring)
// scheme a config runs: a bijective logical-set→physical-row remap
// applied by both the sequential LLC and the shard router (advanced at
// the epoch barrier, so shards=N stays bit-identical to shards=1).
// Fields irrelevant to the selected scheme must stay zero; Validate
// rejects mixed documents so a typo'd knob cannot be silently ignored.
type ColoringConfig struct {
	// Scheme selects the remap family: "xor" (static address-bit
	// coloring), "rotate" (periodic rotation) or "wear" (wear-feedback
	// hottest/coldest row swapping).
	Scheme string `json:"scheme"`
	// Mask is the xor scheme's XOR mask (0 = identity). xor only.
	Mask int `json:"mask,omitempty"`
	// IntervalEpochs is how many epochs pass between mapping advances
	// (rotate/wear; 0 means 1 — every epoch).
	IntervalEpochs int `json:"interval_epochs,omitempty"`
	// Step is the rotate scheme's row advance per interval (0 means 1).
	Step int `json:"step,omitempty"`
	// Pairs is how many hottest/coldest row pairs the wear scheme swaps
	// per advance (0 means 1).
	Pairs int `json:"pairs,omitempty"`
}

// validateColoring checks a coloring document against the config's
// geometry, reporting every problem at once. Called from Validate, so
// the simd daemon rejects invalid coloring specs at the submission
// boundary, before a job or sweep child is queued.
func (c Config) validateColoring(cc *ColoringConfig) error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("core: coloring: "+format, args...))
	}
	zero := func(name string, v int) {
		if v != 0 {
			bad("%q does not apply to scheme %q (got %d)", name, cc.Scheme, v)
		}
	}
	if cc.IntervalEpochs < 0 || cc.IntervalEpochs > MaxColoringInterval {
		bad("interval_epochs %d outside [0,%d]", cc.IntervalEpochs, MaxColoringInterval)
	}
	switch cc.Scheme {
	case ColoringXOR:
		if c.LLCSets&(c.LLCSets-1) != 0 {
			bad("xor needs a power-of-two set count, config has %d", c.LLCSets)
		}
		if cc.Mask < 0 || cc.Mask >= c.LLCSets {
			bad("xor mask %d outside [0,%d)", cc.Mask, c.LLCSets)
		}
		zero("interval_epochs", cc.IntervalEpochs)
		zero("step", cc.Step)
		zero("pairs", cc.Pairs)
	case ColoringRot:
		if c.LLCSets < 2 {
			bad("rotate needs >= 2 sets, config has %d", c.LLCSets)
		}
		if cc.Step < 0 || cc.Step >= c.LLCSets {
			bad("rotate step %d outside [0,%d)", cc.Step, c.LLCSets)
		}
		zero("mask", cc.Mask)
		zero("pairs", cc.Pairs)
	case ColoringWear:
		if c.LLCSets < 2 {
			bad("wear needs >= 2 sets, config has %d", c.LLCSets)
		}
		if cc.Pairs < 0 || cc.Pairs > c.LLCSets/2 {
			bad("wear pairs %d outside [0,%d]", cc.Pairs, c.LLCSets/2)
		}
		zero("mask", cc.Mask)
		zero("step", cc.Step)
	default:
		bad("unknown scheme %q (valid: %v)", cc.Scheme, ColoringSchemes())
	}
	return errors.Join(errs...)
}

// buildColoring constructs the scheme the config selects, or nil when
// coloring is off. Build wires it into the sequential LLC (self-
// advancing); BuildEngine shares ONE instance across every shard clone
// and the router, which alone advances it at the epoch barrier.
func (c Config) buildColoring() (hybrid.SetMapper, error) {
	if c.Coloring == nil {
		return nil, nil
	}
	cc := c.Coloring
	interval := cc.IntervalEpochs
	if interval == 0 {
		interval = 1
	}
	switch cc.Scheme {
	case ColoringXOR:
		return coloring.NewXOR(c.LLCSets, cc.Mask)
	case ColoringRot:
		step := cc.Step
		if step == 0 {
			step = 1
		}
		return coloring.NewRotation(c.LLCSets, interval, step)
	case ColoringWear:
		pairs := cc.Pairs
		if pairs == 0 {
			pairs = 1
		}
		return coloring.NewWearFeedback(c.LLCSets, interval, pairs)
	default:
		return nil, fmt.Errorf("core: coloring: unknown scheme %q (valid: %v)", cc.Scheme, ColoringSchemes())
	}
}
