package core

import (
	"context"
	"fmt"

	"repro/internal/dueling"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/shard"
)

// RunHandle wraps a built simulation — sequential or set-sharded,
// selected by Config.Shards — behind one uniform surface, so callers that
// drive long runs (the simd job daemon, cmd/hybridsim) need a single code
// path for both engines. Close must be called when done; it releases the
// sharded engine's worker goroutines and is a no-op for the sequential
// system.
type RunHandle struct {
	cfg    Config
	sys    *hier.System  // front-end (the engine's front for sharded runs)
	engine *shard.Engine // non-nil when the sharded engine is driving
}

// NewRunHandle builds the simulation the config describes: the classic
// sequential system for Shards <= 1, the set-sharded parallel engine
// otherwise (bit-identical by PR 4's equivalence proof).
func (c Config) NewRunHandle() (*RunHandle, error) {
	if c.Shards > 1 {
		e, err := c.BuildEngine()
		if err != nil {
			return nil, err
		}
		return &RunHandle{cfg: c, sys: e.System(), engine: e}, nil
	}
	sys, err := c.Build()
	if err != nil {
		return nil, err
	}
	return &RunHandle{cfg: c, sys: sys}, nil
}

// NewRunHandleFromPrograms builds a sequential handle over caller-supplied
// per-core programs (trace replays). The sharded engine constructs its
// own per-shard stimulus, so Shards > 1 is rejected here.
func (c Config) NewRunHandleFromPrograms(progs []hier.Program) (*RunHandle, error) {
	if c.Shards > 1 {
		return nil, fmt.Errorf("core: trace-driven programs replay through the sequential engine; got %d shards", c.Shards)
	}
	sys, err := c.BuildFromPrograms(progs)
	if err != nil {
		return nil, err
	}
	return &RunHandle{cfg: c, sys: sys}, nil
}

// Close releases the handle's resources (the sharded engine's workers).
func (h *RunHandle) Close() {
	if h.engine != nil {
		h.engine.Close()
	}
}

// Config returns the config the handle was built from.
func (h *RunHandle) Config() Config { return h.cfg }

// System returns the hierarchy front-end (the engine's front system when
// sharded); its registry and epoch ring carry the run's telemetry.
func (h *RunHandle) System() *hier.System { return h.sys }

// Sharded reports whether the set-sharded engine is driving.
func (h *RunHandle) Sharded() bool { return h.engine != nil }

// EpochRing returns the per-epoch sample ring of the run.
func (h *RunHandle) EpochRing() *metrics.EpochRing { return h.sys.EpochRing() }

// PolicyName names the insertion policy the handle simulates.
func (h *RunHandle) PolicyName() string {
	if h.engine != nil {
		return h.engine.PolicyName()
	}
	return h.sys.LLC().Policy().Name()
}

// Capacity returns the NVM part's current effective capacity fraction.
func (h *RunHandle) Capacity() float64 {
	if h.engine != nil {
		return h.engine.EffectiveCapacityFraction()
	}
	return h.sys.LLC().EffectiveCapacityFraction()
}

// Frames returns the NVM frames in stable set-major order (nil for
// SRAM-only configurations) — the order forecast.AgeFrames needs for a
// bit-identical aging trajectory regardless of the engine kind. The
// frames are live simulation state: callers must only touch them while
// the handle is quiescent (between MeasureCtx calls).
func (h *RunHandle) Frames() []*nvm.Frame {
	if h.engine != nil {
		return h.engine.Frames()
	}
	if arr := h.sys.LLC().Array(); arr != nil {
		return arr.Frames()
	}
	return nil
}

// ResetPhase clears the per-frame phase write counters, starting a fresh
// measurement window for the analytic aging model (a no-op for SRAM-only
// configurations).
func (h *RunHandle) ResetPhase() {
	if h.engine != nil {
		h.engine.ResetPhase()
		return
	}
	if arr := h.sys.LLC().Array(); arr != nil {
		arr.ResetPhase()
	}
}

// PreAge wears the NVM array to the target capacity fraction (PreAge /
// PreAgeEngine depending on the engine kind).
func (h *RunHandle) PreAge(targetCapacity float64) {
	if h.engine != nil {
		PreAgeEngine(h.engine, targetCapacity)
		return
	}
	PreAge(h.sys, targetCapacity)
}

// DuelingWinner returns the set-dueling controller's current winner, when
// the policy uses one.
func (h *RunHandle) DuelingWinner() (int, bool) {
	var d *dueling.Controller
	var ok bool
	if h.engine != nil {
		d, ok = h.engine.Dueling()
	} else {
		d, ok = Dueling(h.sys)
	}
	if !ok {
		return 0, false
	}
	return d.Winner(), true
}

// RunHooks observe a windowed run while it executes. All callbacks fire
// on the simulation goroutine between run chunks — an epoch at most after
// the event they report — and must not block for long.
type RunHooks struct {
	// OnEpoch receives each newly closed epoch sample, in order, exactly
	// once (including warm-up epochs). The simd daemon streams these to
	// live clients.
	OnEpoch func(metrics.Sample)
	// OnProgress reports cycles completed out of the total requested
	// window (warm-up + measurement).
	OnProgress func(done, total uint64)
	// OnCheckpoint fires after every completed run chunk, once the
	// chunk's epochs have been delivered — the point at which the run's
	// observable state (progress, epoch count) is consistent and safe to
	// persist. The simd job store journals these so a killed daemon
	// knows how far each job had come; the simulator's bit-exact
	// determinism means recovery re-executes from the config and
	// provably re-reaches the same checkpoint.
	OnCheckpoint func(Checkpoint)
}

// Checkpoint is a consistent progress mark of a chunked run: the cycles
// completed of the requested window and the epochs closed so far.
type Checkpoint struct {
	Cycles      uint64 // completed cycles of the window (clamped to Total)
	TotalCycles uint64 // requested window: warm-up + measurement
	Epochs      int    // epoch samples recorded since the run began
}

// MeasureCtx is the cancellable, observable form of Measure: it warms the
// simulation up and measures a window, running in epoch-sized chunks so
// the context is honoured and the hooks fire at epoch boundaries. The
// chunking is invisible to the result — the scheduler steps the
// furthest-behind core against absolute cycle targets, so the step
// sequence, and therefore the summary, is bit-identical to the one-shot
// Measure (pinned by TestMeasureCtxMatchesMeasure). On cancellation the
// context error is returned and the simulation stops at the next chunk
// boundary with its state intact (checkpoint-cancel).
func (h *RunHandle) MeasureCtx(ctx context.Context, warmupCycles, measureCycles uint64, hooks RunHooks) (Summary, error) {
	total := warmupCycles + measureCycles
	start := h.sys.Now()
	ring := h.sys.EpochRing()
	seen := ring.Total()
	epoch0 := seen
	emit := func() {
		if hooks.OnEpoch != nil {
			if t := ring.Total(); t > seen {
				samples := ring.Samples()
				n := t - seen
				if n > len(samples) {
					n = len(samples) // ring overwrote part of the backlog
				}
				for _, s := range samples[len(samples)-n:] {
					hooks.OnEpoch(s)
				}
				seen = t
			}
		}
		// The scheduler can overshoot a chunk target by a few cycles;
		// clamp so the final report is exactly total/total.
		done := h.sys.Now() - start
		if done > total {
			done = total
		}
		if hooks.OnProgress != nil {
			hooks.OnProgress(done, total)
		}
		if hooks.OnCheckpoint != nil {
			// After epoch delivery: the checkpoint's epoch count never
			// runs ahead of what OnEpoch observers have seen.
			hooks.OnCheckpoint(Checkpoint{
				Cycles:      done,
				TotalCycles: total,
				Epochs:      ring.Total() - epoch0,
			})
		}
	}
	chunk := h.sys.Config().EpochCycles
	runTo := func(target uint64) error {
		for {
			now := h.sys.Now()
			if now >= target {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			step := chunk
			if remaining := target - now; step > remaining {
				step = remaining
			}
			h.sys.Run(step)
			emit()
		}
	}

	if err := runTo(h.sys.Now() + warmupCycles); err != nil {
		return Summary{}, err
	}

	// Measured window: bracket the chunked runs with a registry snapshot
	// and per-core instruction/cycle marks, mirroring what hier.Run does
	// internally for a single window.
	cores := h.sys.Cores()
	insts0 := make([]uint64, len(cores))
	cycles0 := make([]uint64, len(cores))
	for i, c := range cores {
		insts0[i], cycles0[i] = c.Insts(), c.Cycles()
	}
	before := h.sys.Metrics().Snapshot()
	if err := runTo(h.sys.Now() + measureCycles); err != nil {
		return Summary{}, err
	}
	delta := h.sys.Metrics().Snapshot().Delta(before)

	var sum float64
	for i, c := range cores {
		ipc := 0.0
		if d := c.Cycles() - cycles0[i]; d > 0 {
			ipc = float64(c.Insts()-insts0[i]) / float64(d)
		}
		sum += ipc
	}
	st := hybrid.StatsFromSnapshot(delta)
	return Summary{
		Policy:          h.PolicyName(),
		MeanIPC:         sum / float64(len(cores)),
		HitRate:         st.HitRate(),
		Hits:            st.Hits,
		Misses:          st.Misses,
		NVMBytesWritten: st.NVMBytesWritten,
		NVMBlockWrites:  st.NVMBlockWrites,
		SRAMHits:        st.SRAMHits,
		NVMHits:         st.NVMHits,
		Inserts:         st.Inserts,
		Migrations:      st.Migrations,
		Capacity:        h.Capacity(),
		Metrics:         delta,
	}, nil
}
