package core

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// UnmarshalStrict decodes a JSON configuration document into cfg,
// rejecting unknown fields and trailing garbage. cfg is an overlay base:
// fields absent from the document keep their current values, so callers
// seed it with DefaultConfig (the convention of `hybridsim -config` and
// the simd job API) and ship partial documents like
//
//	{"policy": "CA_RWR", "cpth": 40, "shards": 4}
//
// The strictness matters operationally — a typoed field name fails loudly
// instead of silently simulating the default.
func UnmarshalStrict(data []byte, cfg *Config) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("core: config: %w", err)
	}
	// A second value in the stream is a malformed document, not a config.
	if dec.More() {
		return fmt.Errorf("core: config: trailing data after JSON document")
	}
	return nil
}

// MarshalCanonical renders the config as its canonical JSON document:
// every field present, declaration order, no indentation. The simd result
// cache hashes this form, so two configs compare equal exactly when their
// simulations are identical by construction.
func (c Config) MarshalCanonical() ([]byte, error) {
	return json.Marshal(c)
}
