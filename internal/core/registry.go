package core

import (
	"fmt"

	"repro/internal/dueling"
	"repro/internal/hybrid"
	"repro/internal/policy"
)

// PolicySpec is one row of the policy registry: the single source of
// truth a policy name resolves through. Policies(), config validation,
// buildPolicy and the tournament bracket machinery all derive from the
// table, so a policy added here is immediately selectable from every
// command, JSON config and simd job — and nothing else needs editing.
type PolicySpec struct {
	// Name is the selectable identifier (Config.PolicyName).
	Name string
	// Build resolves the config into the policy value, its threshold
	// provider (nil when not applicable) and the SRAM/NVM way split.
	Build func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error)
	// Candidate, when non-nil, marks the policy tournament-eligible and
	// builds the bare per-set policy a bracket candidate delegates to.
	// Eligible policies must be non-global and agree on compression and
	// disabling granularity (policy.NewTournament enforces it).
	Candidate func(c Config) hybrid.Policy
	// UsesCPth marks policies whose steering consults the compression
	// threshold, so validation bounds Config.CPth for them.
	UsesCPth bool
}

// registry lists the selectable policies in presentation order: the
// paper's Table III set first, then the RRIP-family extensions and the
// tournament meta-policies. Populated in init: the tournament builders
// consult the table themselves (candidate lookup), which a composite
// literal would turn into an initialization cycle.
var registry []PolicySpec

func init() {
	registry = []PolicySpec{
		{Name: "SRAM16", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.SRAMOnly{}, nil, c.SRAMWays + c.NVMWays, 0, nil
		}},
		{Name: "SRAM4", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.SRAMOnly{}, nil, c.SRAMWays, 0, nil
		}},
		{Name: "BH", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.BH{}, nil, c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "BH_CP", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.BHCP{}, nil, c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "CA", UsesCPth: true,
			Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
				return policy.CA{}, hybrid.FixedThreshold(c.CPth), c.SRAMWays, c.NVMWays, nil
			},
			Candidate: func(c Config) hybrid.Policy { return policy.CA{} }},
		{Name: "CA_RWR", UsesCPth: true,
			Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
				return policy.CARWR{NoMigration: c.AblationNoMigration},
					hybrid.FixedThreshold(c.CPth), c.SRAMWays, c.NVMWays, nil
			},
			Candidate: func(c Config) hybrid.Policy {
				return policy.CARWR{NoMigration: c.AblationNoMigration}
			}},
		{Name: "CP_SD", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.CARWR{PolicyName: "CP_SD", NoMigration: c.AblationNoMigration},
				dueling.New(c.LLCSets, 0, 0), c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "CP_SD_Th", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			name := fmt.Sprintf("CP_SD_Th%g", c.Th)
			return policy.CARWR{PolicyName: name, NoMigration: c.AblationNoMigration},
				dueling.New(c.LLCSets, c.Th, c.Tw), c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "LHybrid", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.LHybrid{}, nil, c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "TAP", Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
			return policy.TAP{HThresh: 1}, nil, c.SRAMWays, c.NVMWays, nil
		}},
		{Name: "SRRIP", UsesCPth: true,
			Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
				return policy.NewSRRIP(), hybrid.FixedThreshold(c.CPth), c.SRAMWays, c.NVMWays, nil
			},
			Candidate: func(c Config) hybrid.Policy { return policy.NewSRRIP() }},
		{Name: "BRRIP", UsesCPth: true,
			Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
				return policy.NewBRRIP(c.LLCSets), hybrid.FixedThreshold(c.CPth), c.SRAMWays, c.NVMWays, nil
			},
			Candidate: func(c Config) hybrid.Policy { return policy.NewBRRIP(c.LLCSets) }},
		{Name: "PAR", UsesCPth: true,
			Build: func(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
				return policy.NewPAR(c.LLCSets), hybrid.FixedThreshold(c.CPth), c.SRAMWays, c.NVMWays, nil
			},
			Candidate: func(c Config) hybrid.Policy { return policy.NewPAR(c.LLCSets) }},
		{Name: "DRRIP", UsesCPth: true, Build: buildDRRIP},
		{Name: "TOURNAMENT", UsesCPth: true, Build: buildNamedTournament},
	}
}

// specOf returns the registry row for a name.
func specOf(name string) (PolicySpec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return PolicySpec{}, false
}

// Policies lists the selectable policy names in presentation order,
// derived from the registry.
func Policies() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// TournamentEligible lists the policies usable as tournament bracket
// candidates, in registry order.
func TournamentEligible() []string {
	var out []string
	for _, s := range registry {
		if s.Candidate != nil {
			out = append(out, s.Name)
		}
	}
	return out
}

// buildPolicy resolves the policy name through the registry into a policy
// value, a threshold provider (nil when not applicable) and the LLC way
// split.
func (c Config) buildPolicy() (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
	s, ok := specOf(c.PolicyName)
	if !ok {
		return nil, nil, 0, 0, fmt.Errorf("core: unknown policy %q (valid: %v)", c.PolicyName, Policies())
	}
	return s.Build(c)
}

// TournamentCandidate selects one bracket competitor: a tournament-
// eligible policy name plus an optional per-candidate compression
// threshold (0 inherits Config.CPth).
type TournamentCandidate struct {
	Policy string `json:"policy"`
	CPth   int    `json:"cpth,omitempty"`
}

// TournamentConfig declares a user-defined bracket for the TOURNAMENT
// policy: the candidate list and the sampler-set share. It rides the
// Config wire format, so simd jobs and JSON configs can submit brackets
// directly (strict-decoded, cache-keyed like every other field).
type TournamentConfig struct {
	// Candidates lists the competitors in bracket order (2 or more; at
	// most SamplerDivisor).
	Candidates []TournamentCandidate `json:"candidates"`
	// SamplerDivisor splits the sets into this many equal classes; each
	// candidate samples on one class (a 1/SamplerDivisor set fraction),
	// the rest follow the epoch winner. 0 selects the paper's 32.
	SamplerDivisor int `json:"sampler_divisor,omitempty"`
}

// DefaultTournament is the bracket TOURNAMENT runs when the config does
// not declare one: the paper's best classic policy against the full
// RRIP-family substrate, all at the config's CPth.
func DefaultTournament() *TournamentConfig {
	return &TournamentConfig{Candidates: []TournamentCandidate{
		{Policy: "CA_RWR"}, {Policy: "SRRIP"}, {Policy: "BRRIP"}, {Policy: "PAR"},
	}}
}

// candidateLabel names a bracket entry in reports: the policy name alone
// when it inherits the config threshold, name@CPth otherwise.
func candidateLabel(tc TournamentCandidate) string {
	if tc.CPth == 0 {
		return tc.Policy
	}
	return fmt.Sprintf("%s@%d", tc.Policy, tc.CPth)
}

// buildTournament assembles an N-way policy tournament from an explicit
// bracket: one dueling controller arbitrating the candidates by their
// sampler votes, and a policy.Tournament resolving every set to its
// candidate's insertion policy. The controller doubles as the threshold
// provider, so each candidate's sets run that candidate's CPth.
func (c Config) buildTournament(name string, tc *TournamentConfig) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
	if err := c.validateTournament(tc); err != nil {
		return nil, nil, 0, 0, err
	}
	dcands := make([]dueling.Candidate, len(tc.Candidates))
	pols := make([]hybrid.Policy, len(tc.Candidates))
	for i, cand := range tc.Candidates {
		spec, _ := specOf(cand.Policy)
		cpth := cand.CPth
		if cpth == 0 {
			cpth = c.CPth
		}
		dcands[i] = dueling.Candidate{Name: candidateLabel(cand), CPth: cpth, Payload: i}
		pols[i] = spec.Candidate(c)
	}
	ctrl := dueling.NewTournament(c.LLCSets, dcands, tc.SamplerDivisor, c.Th, c.Tw)
	t, err := policy.NewTournament(name, ctrl, pols)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return t, ctrl, c.SRAMWays, c.NVMWays, nil
}

// validateTournament checks a bracket without building it; Validate and
// buildTournament share it so bad brackets fail with the full error list
// before any construction (and never reach the dueling constructor's
// panics).
func (c Config) validateTournament(tc *TournamentConfig) error {
	if tc == nil {
		return fmt.Errorf("core: TOURNAMENT needs a tournament bracket")
	}
	div := tc.SamplerDivisor
	if div == 0 {
		div = dueling.GroupDivisor
	}
	if len(tc.Candidates) < 2 {
		return fmt.Errorf("core: tournament bracket has %d candidates, want at least 2", len(tc.Candidates))
	}
	if len(tc.Candidates) > div {
		return fmt.Errorf("core: %d tournament candidates exceed sampler divisor %d", len(tc.Candidates), div)
	}
	if div > c.LLCSets {
		return fmt.Errorf("core: sampler divisor %d exceeds %d LLC sets", div, c.LLCSets)
	}
	for i, cand := range tc.Candidates {
		spec, ok := specOf(cand.Policy)
		if !ok || spec.Candidate == nil {
			return fmt.Errorf("core: tournament candidate %d: policy %q not eligible (valid: %v)",
				i, cand.Policy, TournamentEligible())
		}
		if cand.CPth < 0 || cand.CPth > 64 {
			return fmt.Errorf("core: tournament candidate %d: CPth %d outside [1,64]", i, cand.CPth)
		}
	}
	return nil
}

// buildNamedTournament builds the TOURNAMENT policy from Config.Tournament
// (DefaultTournament when absent).
func buildNamedTournament(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
	tc := c.Tournament
	if tc == nil {
		tc = DefaultTournament()
	}
	return c.buildTournament("TOURNAMENT", tc)
}

// buildDRRIP builds dynamic RRIP as a canned two-way tournament: SRRIP
// against BRRIP, duelling on the paper's sampler machinery with plain
// max-hits selection — the classic DRRIP set-dueling monitor expressed
// in the N-way substrate.
func buildDRRIP(c Config) (hybrid.Policy, hybrid.ThresholdProvider, int, int, error) {
	drrip := c
	drrip.Th, drrip.Tw = 0, 0 // DRRIP selects on hits alone
	return drrip.buildTournament("DRRIP", &TournamentConfig{Candidates: []TournamentCandidate{
		{Policy: "SRRIP"}, {Policy: "BRRIP"},
	}})
}
