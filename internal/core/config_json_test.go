package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	want := DefaultConfig()
	want.PolicyName = "CP_SD_Th"
	want.Th, want.Tw = 8, 25
	want.CPth = 42
	want.Shards = 4
	want.AblationHCROnly = true

	blob, err := want.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := UnmarshalStrict(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestUnmarshalStrictRejectsUnknownFields(t *testing.T) {
	cfg := DefaultConfig()
	err := UnmarshalStrict([]byte(`{"policy": "CA", "no_such_knob": 1}`), &cfg)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "no_such_knob") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestUnmarshalStrictRejectsTrailingData(t *testing.T) {
	cfg := DefaultConfig()
	if err := UnmarshalStrict([]byte(`{"policy": "CA"} {"policy": "BH"}`), &cfg); err == nil {
		t.Fatal("trailing JSON document accepted")
	}
}

// TestUnmarshalStrictOverlay pins the partial-document semantics the
// hybridsim -config flag and the simd POST body rely on: absent fields
// keep the pre-seeded values.
func TestUnmarshalStrictOverlay(t *testing.T) {
	cfg := DefaultConfig()
	if err := UnmarshalStrict([]byte(`{"policy": "CA_RWR", "cpth": 40}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.PolicyName != "CA_RWR" || cfg.CPth != 40 {
		t.Fatalf("overlay did not apply: %+v", cfg)
	}
	def := DefaultConfig()
	if cfg.LLCSets != def.LLCSets || cfg.Seed != def.Seed || cfg.EpochCycles != def.EpochCycles {
		t.Fatalf("overlay clobbered defaults: %+v", cfg)
	}
}

// TestConfigJSONTagsComplete guards the wire schema: every exported
// Config field must carry a JSON tag, so nothing silently falls back to
// the Go field name (which UnmarshalStrict would then reject from
// documents written against the documented snake_case schema).
func TestConfigJSONTagsComplete(t *testing.T) {
	blob, err := json.Marshal(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for key := range m {
		for _, r := range key {
			if r >= 'A' && r <= 'Z' {
				t.Errorf("field %q marshals under its Go name (missing json tag)", key)
			}
		}
	}
}
