package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
)

// summariesBitIdentical compares every summary field, floats by bit
// pattern — the chunked MeasureCtx must not merely approximate the
// one-shot Measure, it must reproduce it exactly.
func summariesBitIdentical(t *testing.T, want, got Summary) {
	t.Helper()
	if want.Policy != got.Policy {
		t.Errorf("policy %q != %q", got.Policy, want.Policy)
	}
	floats := [][2]float64{
		{want.MeanIPC, got.MeanIPC},
		{want.HitRate, got.HitRate},
		{want.Capacity, got.Capacity},
	}
	for _, f := range floats {
		if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
			t.Errorf("float mismatch: want %v got %v", f[0], f[1])
		}
	}
	counts := [][2]uint64{
		{want.Hits, got.Hits},
		{want.Misses, got.Misses},
		{want.SRAMHits, got.SRAMHits},
		{want.NVMHits, got.NVMHits},
		{want.Inserts, got.Inserts},
		{want.Migrations, got.Migrations},
		{want.NVMBlockWrites, got.NVMBlockWrites},
		{want.NVMBytesWritten, got.NVMBytesWritten},
	}
	for i, c := range counts {
		if c[0] != c[1] {
			t.Errorf("counter %d: want %d got %d", i, c[0], c[1])
		}
	}
}

// TestMeasureCtxMatchesMeasure pins the determinism claim the simd
// result cache and the chunked-run hooks rest on: running the window in
// epoch-sized chunks with cancellation checks produces a bit-identical
// summary to the one-shot Measure. The window deliberately does not
// divide evenly into QuickConfig's epoch size.
func TestMeasureCtxMatchesMeasure(t *testing.T) {
	const warmup, measure = 300_000, 1_100_000
	cfg := QuickConfig()

	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := Measure(sys, warmup, measure)

	h, err := cfg.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got, err := h.MeasureCtx(context.Background(), warmup, measure, RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	summariesBitIdentical(t, want, got)
}

// TestMeasureCtxShardedMatches runs the same check through the sharded
// engine handle: the chunked MeasureCtx must reproduce the one-shot
// MeasureEngine bit for bit. (The engine is its own reference — its
// router answers front-end accesses as misses, so engine timing is
// deliberately a different, N-invariant model from the sequential
// system's; PR 4's equivalence holds across shard counts, not across
// engine kinds.)
func TestMeasureCtxShardedMatches(t *testing.T) {
	const warmup, measure = 300_000, 1_100_000
	cfg := QuickConfig()
	cfg.Shards = 2

	e, err := cfg.BuildEngine()
	if err != nil {
		t.Fatal(err)
	}
	want := MeasureEngine(e, warmup, measure)
	e.Close()

	h, err := cfg.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.Sharded() {
		t.Fatal("expected the sharded engine")
	}
	got, err := h.MeasureCtx(context.Background(), warmup, measure, RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	summariesBitIdentical(t, want, got)
}

func TestMeasureCtxHooks(t *testing.T) {
	cfg := QuickConfig() // 500k-cycle epochs
	h, err := cfg.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var epochs []int
	var lastDone, lastTotal uint64
	_, err = h.MeasureCtx(context.Background(), 200_000, 1_300_000, RunHooks{
		OnEpoch:    func(s metrics.Sample) { epochs = append(epochs, s.Epoch) },
		OnProgress: func(done, total uint64) { lastDone, lastTotal = done, total },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1.5M cycles of 500k-cycle epochs close at least 2 epochs (the last
	// partial epoch stays open).
	if len(epochs) < 2 {
		t.Fatalf("want >= 2 epoch callbacks, got %d (%v)", len(epochs), epochs)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			t.Fatalf("epoch sequence not contiguous: %v", epochs)
		}
	}
	if lastTotal != 1_500_000 || lastDone != lastTotal {
		t.Fatalf("final progress %d/%d, want %d/%d", lastDone, lastTotal, lastTotal, lastTotal)
	}
}

// TestMeasureCtxCheckpoints pins the durable-progress hook the simd job
// store journals: checkpoints fire per chunk, monotonically, after the
// chunk's epochs were delivered (the epoch count never runs ahead of
// OnEpoch), and the final checkpoint reports the full window.
func TestMeasureCtxCheckpoints(t *testing.T) {
	cfg := QuickConfig() // 500k-cycle epochs
	h, err := cfg.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var cps []Checkpoint
	delivered := 0
	_, err = h.MeasureCtx(context.Background(), 200_000, 1_300_000, RunHooks{
		OnEpoch: func(metrics.Sample) { delivered++ },
		OnCheckpoint: func(cp Checkpoint) {
			if cp.Epochs > delivered {
				t.Fatalf("checkpoint claims %d epochs, only %d delivered", cp.Epochs, delivered)
			}
			cps = append(cps, cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("want >= 3 checkpoints over a 1.5M-cycle window, got %d", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].Cycles < cps[i-1].Cycles || cps[i].Epochs < cps[i-1].Epochs {
			t.Fatalf("checkpoints not monotonic: %+v -> %+v", cps[i-1], cps[i])
		}
	}
	last := cps[len(cps)-1]
	if last.TotalCycles != 1_500_000 || last.Cycles != last.TotalCycles {
		t.Fatalf("final checkpoint %+v, want %d/%d", last, 1_500_000, 1_500_000)
	}
}

func TestMeasureCtxCancellation(t *testing.T) {
	cfg := QuickConfig()
	h, err := cfg.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	_, err = h.MeasureCtx(ctx, 0, 50_000_000, RunHooks{
		OnEpoch: func(metrics.Sample) {
			fired++
			if fired == 2 {
				cancel() // checkpoint-cancel mid-run
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	now := h.System().Now()
	if now == 0 || now >= 50_000_000 {
		t.Fatalf("expected a partial run, stopped at cycle %d", now)
	}

	// A pre-canceled context stops before simulating anything further.
	before := h.System().Now()
	if _, err := h.MeasureCtx(ctx, 0, 1_000_000, RunHooks{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if h.System().Now() != before {
		t.Fatalf("pre-canceled run advanced the clock %d -> %d", before, h.System().Now())
	}
}
