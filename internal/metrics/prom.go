package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format version 0.0.4 that WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// AcceptsPrometheus reports whether an HTTP Accept header asks for the
// Prometheus text exposition format: either the versioned text/plain
// media type a Prometheus server sends ("text/plain; version=0.0.4") or
// an OpenMetrics request, which this writer answers with the 0.0.4
// format it also parses.
func AcceptsPrometheus(accept string) bool {
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// PrometheusName maps a hierarchical dotted metric path onto a
// Prometheus metric name: segments joined by "_" under the given
// prefix. Registry names are already lowercase [a-z0-9_.], which the
// Prometheus data model accepts verbatim once the dots are replaced.
func PrometheusName(prefix, name string) string {
	return prefix + strings.ReplaceAll(name, ".", "_")
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter as a `counter` family and every
// gauge as a `gauge` family, names mapped via PrometheusName and sorted,
// so repeated scrapes of the same state are byte-identical. Non-finite
// gauge values use the format's NaN/+Inf/-Inf spellings.
func WritePrometheus(w io.Writer, prefix string, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(prefix, n)
		if _, err := fmt.Fprintf(w, "# HELP %s Counter %s.\n# TYPE %s counter\n%s %d\n",
			pn, n, pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(prefix, n)
		if _, err := fmt.Fprintf(w, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %s\n",
			pn, n, pn, pn, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a gauge value the way the exposition format spells
// floats: Go 'g' formatting for finite values, NaN/+Inf/-Inf otherwise.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
