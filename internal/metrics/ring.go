package metrics

// Sample is one recorded epoch: its index, the wall-clock cycle at which
// it closed, and one value per ring column.
type Sample struct {
	Epoch  int
	Cycles uint64
	Values []float64
}

// EpochRing records a fixed number of per-epoch samples, overwriting the
// oldest once full, so arbitrarily long simulations keep a bounded,
// retrievable time series. Recording happens at epoch boundaries only —
// it is off the simulation hot path and may allocate.
type EpochRing struct {
	columns []string
	samples []Sample
	head    int // next write position once the ring is full
	total   int // samples ever recorded
}

// DefaultEpochRingCapacity bounds the series kept by default: enough for
// 2 G cycles of 2 M-cycle epochs.
const DefaultEpochRingCapacity = 1024

// NewEpochRing builds a ring keeping up to capacity samples of the given
// columns. A non-positive capacity selects DefaultEpochRingCapacity.
func NewEpochRing(capacity int, columns ...string) *EpochRing {
	if capacity <= 0 {
		capacity = DefaultEpochRingCapacity
	}
	if len(columns) == 0 {
		panic("metrics: epoch ring needs at least one column")
	}
	for _, c := range columns {
		if !ValidName(c) {
			panic("metrics: invalid epoch ring column " + c)
		}
	}
	return &EpochRing{
		columns: append([]string(nil), columns...),
		samples: make([]Sample, 0, capacity),
	}
}

// Columns returns the ring's column names.
func (r *EpochRing) Columns() []string { return append([]string(nil), r.columns...) }

// Capacity returns the maximum number of retained samples.
func (r *EpochRing) Capacity() int { return cap(r.samples) }

// Len returns the number of currently retained samples.
func (r *EpochRing) Len() int { return len(r.samples) }

// Total returns the number of samples ever recorded, including ones the
// ring has since overwritten.
func (r *EpochRing) Total() int { return r.total }

// Record appends one epoch sample; values must match the ring's columns.
func (r *EpochRing) Record(epoch int, cycles uint64, values ...float64) {
	if len(values) != len(r.columns) {
		panic("metrics: epoch sample arity mismatch")
	}
	s := Sample{Epoch: epoch, Cycles: cycles, Values: append([]float64(nil), values...)}
	r.total++
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, s)
		return
	}
	r.samples[r.head] = s
	r.head = (r.head + 1) % len(r.samples)
}

// Samples returns the retained samples oldest-first, as a copy.
func (r *EpochRing) Samples() []Sample {
	out := make([]Sample, 0, len(r.samples))
	out = append(out, r.samples[r.head:]...)
	out = append(out, r.samples[:r.head]...)
	return out
}

// Series extracts one column oldest-first (nil for an unknown column).
func (r *EpochRing) Series(column string) []float64 {
	idx := -1
	for i, c := range r.columns {
		if c == column {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, 0, len(r.samples))
	for _, s := range r.Samples() {
		out = append(out, s.Values[idx])
	}
	return out
}
