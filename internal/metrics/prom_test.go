package metrics

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition bytes for a small
// snapshot: deterministic ordering, dotted-to-underscore name mapping,
// HELP/TYPE per family, non-finite gauge spellings.
func TestWritePrometheusFormat(t *testing.T) {
	s := Snapshot{
		Counters: map[string]uint64{
			"server.jobs.completed": 7,
			"fleet.leases.expired":  0,
		},
		Gauges: map[string]float64{
			"server.queue.depth": 3,
			"llc.capacity":       0.5,
			"wear.gini":          math.NaN(),
			"forecast.months":    math.Inf(1),
		},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "simd_", s); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP simd_fleet_leases_expired Counter fleet.leases.expired.",
		"# TYPE simd_fleet_leases_expired counter",
		"simd_fleet_leases_expired 0",
		"# HELP simd_server_jobs_completed Counter server.jobs.completed.",
		"# TYPE simd_server_jobs_completed counter",
		"simd_server_jobs_completed 7",
		"# HELP simd_forecast_months Gauge forecast.months.",
		"# TYPE simd_forecast_months gauge",
		"simd_forecast_months +Inf",
		"# HELP simd_llc_capacity Gauge llc.capacity.",
		"# TYPE simd_llc_capacity gauge",
		"simd_llc_capacity 0.5",
		"# HELP simd_server_queue_depth Gauge server.queue.depth.",
		"# TYPE simd_server_queue_depth gauge",
		"simd_server_queue_depth 3",
		"# HELP simd_wear_gini Gauge wear.gini.",
		"# TYPE simd_wear_gini gauge",
		"simd_wear_gini NaN",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusParseable checks every emitted line against the
// exposition grammar: comments, or `name value` samples whose names are
// valid Prometheus metric identifiers.
func TestWritePrometheusParseable(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 42
	r.Counter("a.b.c_total", &c)
	g := 1.25
	r.Gauge("x.y_9", &g)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "simd_", r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]* (NaN|[+-]Inf|[0-9.eE+-]+)$`)
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
	}
}

// TestAcceptsPrometheus pins the negotiation triggers.
func TestAcceptsPrometheus(t *testing.T) {
	for _, accept := range []string{
		"text/plain; version=0.0.4",
		"text/plain;version=0.0.4;q=0.5, */*;q=0.1",
		"application/openmetrics-text; version=1.0.0",
	} {
		if !AcceptsPrometheus(accept) {
			t.Errorf("Accept %q should select the Prometheus format", accept)
		}
	}
	for _, accept := range []string{"", "text/plain", "application/json", "text/csv"} {
		if AcceptsPrometheus(accept) {
			t.Errorf("Accept %q should not select the Prometheus format", accept)
		}
	}
}
