package metrics

import (
	"reflect"
	"testing"
)

func TestCounterReadsThroughPointer(t *testing.T) {
	r := NewRegistry()
	var hits uint64
	r.Counter("llc.hits", &hits)
	hits = 7
	if v, ok := r.CounterValue("llc.hits"); !ok || v != 7 {
		t.Fatalf("CounterValue = %d, %v; want 7, true", v, ok)
	}
	hits++
	if v, _ := r.CounterValue("llc.hits"); v != 8 {
		t.Fatalf("counter did not track the field: %d", v)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	var a, b uint64
	var g float64
	r.Counter("x.a", &a)
	r.Counter("x.b", &b)
	r.Gauge("x.g", &g)

	a, b, g = 10, 3, 0.5
	before := r.Snapshot()
	a, b, g = 25, 3, 0.9
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counter("x.a") != 15 || d.Counter("x.b") != 0 {
		t.Fatalf("delta counters = %v", d.Counters)
	}
	if d.Gauge("x.g") != 0.9 {
		t.Fatalf("delta gauge = %v, want the later value", d.Gauge("x.g"))
	}
	// Snapshots are value captures: later mutation must not leak in.
	a = 99
	if after.Counter("x.a") != 25 {
		t.Fatal("snapshot aliased live counter")
	}
}

func TestDeltaClampsOnReset(t *testing.T) {
	r := NewRegistry()
	var a uint64 = 50
	r.Counter("x.a", &a)
	before := r.Snapshot()
	a = 10 // owner reset mid-window
	if d := r.Snapshot().Delta(before); d.Counter("x.a") != 0 {
		t.Fatalf("shrunk counter delta = %d, want clamp to 0", d.Counter("x.a"))
	}
}

func TestFuncBackedAndFilter(t *testing.T) {
	r := NewRegistry()
	var writes uint64
	r.Counter("llc.nvm.block_writes", &writes)
	r.CounterFunc("llc.nvm.derived", func() uint64 { return writes * 2 })
	r.GaugeFunc("core0.ipc", func() float64 { return 1.5 })
	writes = 4

	s := r.Snapshot()
	if s.Counter("llc.nvm.derived") != 8 {
		t.Fatalf("derived counter = %d", s.Counter("llc.nvm.derived"))
	}
	sub := s.Filter("llc.nvm")
	want := []string{"llc.nvm.block_writes", "llc.nvm.derived"}
	if got := sub.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered names = %v, want %v", got, want)
	}
	if len(s.Filter("llc.nv").Counters) != 0 {
		t.Fatal("prefix filter matched a partial segment")
	}
}

func TestNameValidation(t *testing.T) {
	valid := []string{"a", "llc.nvm.block_writes", "core0.ipc", "x_1.y"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false", n)
		}
	}
	invalid := []string{"", ".", "a.", ".a", "a..b", "A.b", "a-b", "a b"}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true", n)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	var v uint64
	r.Counter("dup", &v)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.GaugeFunc("dup", func() float64 { return 0 })
}

func TestEpochRingWraparound(t *testing.T) {
	ring := NewEpochRing(3, "ipc", "bytes")
	for e := 0; e < 5; e++ {
		ring.Record(e, uint64(e)*100, float64(e), float64(e)*10)
	}
	if ring.Len() != 3 || ring.Total() != 5 || ring.Capacity() != 3 {
		t.Fatalf("len/total/cap = %d/%d/%d", ring.Len(), ring.Total(), ring.Capacity())
	}
	got := ring.Samples()
	for i, wantEpoch := range []int{2, 3, 4} {
		if got[i].Epoch != wantEpoch {
			t.Fatalf("sample %d epoch = %d, want %d (oldest-first)", i, got[i].Epoch, wantEpoch)
		}
	}
	if s := ring.Series("bytes"); !reflect.DeepEqual(s, []float64{20, 30, 40}) {
		t.Fatalf("series = %v", s)
	}
	if ring.Series("nope") != nil {
		t.Fatal("unknown column returned a series")
	}
}

func TestEpochRingDefaults(t *testing.T) {
	ring := NewEpochRing(0, "ipc")
	if ring.Capacity() != DefaultEpochRingCapacity {
		t.Fatalf("capacity = %d", ring.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	ring.Record(0, 0, 1, 2)
}
