// Package metrics is the simulation's telemetry substrate: a hierarchical
// registry of counters and gauges with cheap snapshot/delta semantics and
// a per-epoch sample ring.
//
// The registry is deliberately read-through: a counter is registered as a
// pointer to the owner's own uint64 field, so the simulation hot path
// keeps incrementing a plain struct field (zero extra work, zero
// allocations) while the registry provides the uniform, hierarchically
// named view that reporting, windowed deltas and the epoch series are
// built from. Derived values register as functions and are evaluated at
// snapshot time.
//
// Names are dot-separated lowercase paths, e.g. "llc.nvm.block_writes",
// "core0.ipc", "dueling.cpth". The dots carry the hierarchy; there is no
// tree structure to maintain, and Snapshot.Filter selects subtrees by
// prefix.
//
// A Registry is owned by a single simulated system and is not safe for
// concurrent mutation with reads; the experiment runners that parallelise
// across simulations give each simulation its own registry.
package metrics

import (
	"fmt"
	"sort"
)

// Registrable is implemented by components that can attach their metrics
// to a registry (e.g. the set-dueling controller, the NVM array). It lets
// owners wire subcomponents without knowing their concrete types.
type Registrable interface {
	RegisterMetrics(r *Registry)
}

type counterEntry struct {
	name string
	read func() uint64
}

type gaugeEntry struct {
	name string
	read func() float64
}

// Registry holds the named counters and gauges of one simulated system.
// The zero value is not usable; use NewRegistry.
type Registry struct {
	names    map[string]struct{}
	counters []counterEntry
	gauges   []gaugeEntry
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) claim(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid name %q", name))
	}
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.names[name] = struct{}{}
}

// ValidName reports whether name is a well-formed metric path: non-empty
// dot-separated segments of lowercase letters, digits and underscores.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	segLen := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.':
			if segLen == 0 {
				return false
			}
			segLen = 0
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			segLen++
		default:
			return false
		}
	}
	return segLen > 0
}

// Counter registers v as a monotonically increasing counter. The owner
// keeps incrementing *v directly; the registry only reads it.
func (r *Registry) Counter(name string, v *uint64) {
	r.CounterFunc(name, func() uint64 { return *v })
}

// CounterFunc registers a derived counter evaluated at snapshot time.
func (r *Registry) CounterFunc(name string, read func() uint64) {
	r.claim(name)
	r.counters = append(r.counters, counterEntry{name, read})
}

// Gauge registers v as a point-in-time value read through the pointer.
func (r *Registry) Gauge(name string, v *float64) {
	r.GaugeFunc(name, func() float64 { return *v })
}

// GaugeFunc registers a derived gauge evaluated at snapshot time.
func (r *Registry) GaugeFunc(name string, read func() float64) {
	r.claim(name)
	r.gauges = append(r.gauges, gaugeEntry{name, read})
}

// OnSnapshot registers a hook run at the start of every Snapshot. A
// component whose derived metrics share one expensive computation (e.g.
// a pass over all NVM frames) recomputes it once here and lets its
// gauges read the cached result.
func (r *Registry) OnSnapshot(hook func()) {
	r.hooks = append(r.hooks, hook)
}

// CounterReader returns a function reading one registered counter, for
// callers that sample a few counters frequently (e.g. at every epoch
// boundary) and must not pay for a full snapshot. OnSnapshot hooks do
// not run; derived counters that depend on them are the caller's risk.
func (r *Registry) CounterReader(name string) (func() uint64, bool) {
	for _, c := range r.counters {
		if c.name == name {
			return c.read, true
		}
	}
	return nil, false
}

// Has reports whether a metric with the given name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.names[name]
	return ok
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CounterValue evaluates one registered counter by name.
func (r *Registry) CounterValue(name string) (uint64, bool) {
	for _, c := range r.counters {
		if c.name == name {
			return c.read(), true
		}
	}
	return 0, false
}

// GaugeValue evaluates one registered gauge by name. It does not run the
// OnSnapshot hooks, so hook-maintained gauges return the value cached by
// the most recent Snapshot; take a Snapshot first when freshness matters.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	for _, g := range r.gauges {
		if g.name == name {
			return g.read(), true
		}
	}
	return 0, false
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	for _, hook := range r.hooks {
		hook()
	}
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
	}
	for _, c := range r.counters {
		s.Counters[c.name] = c.read()
	}
	for _, g := range r.gauges {
		s.Gauges[g.name] = g.read()
	}
	return s
}

// Snapshot is a point-in-time capture of a registry. Snapshots are plain
// values: they stay valid after the registry moves on.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]float64
}

// Counter returns the captured value of a counter (zero when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the captured value of a gauge (zero when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Delta returns a snapshot whose counters hold s minus prev (counters
// absent from prev pass through unchanged) and whose gauges keep the
// later value from s. Counters that shrank — a mid-window reset — clamp
// to zero rather than wrapping.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]float64, len(s.Gauges)),
	}
	for name, v := range s.Counters {
		if p, ok := prev.Counters[name]; ok && p <= v {
			out.Counters[name] = v - p
		} else if ok {
			out.Counters[name] = 0
		} else {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	return out
}

// Filter returns the subtree of the snapshot whose names equal prefix or
// start with prefix + ".".
func (s Snapshot) Filter(prefix string) Snapshot {
	match := func(name string) bool {
		if name == prefix {
			return true
		}
		return len(name) > len(prefix) && name[:len(prefix)] == prefix && name[len(prefix)] == '.'
	}
	out := Snapshot{Counters: make(map[string]uint64), Gauges: make(map[string]float64)}
	for name, v := range s.Counters {
		if match(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if match(name) {
			out.Gauges[name] = v
		}
	}
	return out
}

// Names returns the snapshot's metric names, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		out = append(out, n)
	}
	for n := range s.Gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
