// Package check is the runtime invariant checker for the hybrid LLC and
// its NVM array. The fault-injection campaigns of package faultinject
// push the simulated cache into heavily degraded states the normal test
// suite never reaches; this package re-verifies the structural
// invariants there, either as standalone suites (LLC, Array,
// MetricsConsistency) or continuously during a run through a Checker
// attached as the hierarchy's access probe.
package check

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bdi"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/report"
)

// Violation is one broken invariant: which one, and the evidence.
type Violation struct {
	Invariant string // short invariant name, e.g. "strict-fit"
	Detail    string
}

// String renders "invariant: detail".
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violatef(inv, format string, args ...interface{}) Violation {
	return Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)}
}

// LLC verifies the cache directory: the structural invariants of
// hybrid.CheckInvariants, set occupancy bounds, LRU stack
// well-formedness (valid entries carry distinct timestamps in (0,
// Tick]), statistics conservation across the insert/migration paths,
// and — with strictFit, which is only guaranteed right after an
// InvalidateUnfit pass — every NVM-resident block fitting its frame's
// live capacity.
func LLC(l *hybrid.LLC, strictFit bool) []Violation {
	var vs []Violation
	if err := l.CheckInvariants(); err != nil {
		vs = append(vs, Violation{Invariant: "structure", Detail: err.Error()})
	}
	ways := l.SRAMWays() + l.NVMWays()
	tick := l.Tick()
	seen := make(map[uint64]string)
	for set := 0; set < l.Sets(); set++ {
		if occ := l.Occupancy(set); occ > ways {
			vs = append(vs, violatef("occupancy", "set %d holds %d entries in %d ways", set, occ, ways))
		}
		for w := 0; w < ways; w++ {
			e := l.ViewEntry(set, w)
			if !e.Valid {
				continue
			}
			if e.Last == 0 || e.Last > tick {
				vs = append(vs, violatef("lru-stack",
					"set %d way %d timestamp %d outside (0, %d]", set, w, e.Last, tick))
			}
			if prev, dup := seen[e.Last]; dup {
				vs = append(vs, violatef("lru-stack",
					"timestamp %d shared by %s and set %d way %d", e.Last, prev, set, w))
			}
			seen[e.Last] = fmt.Sprintf("set %d way %d", set, w)
			if strictFit && e.Part == hybrid.NVM {
				f := l.Array().Frame(set, w-l.SRAMWays())
				if cap := f.EffectiveCapacity(); e.CB > cap {
					vs = append(vs, violatef("strict-fit",
						"set %d way %d stores %d bytes in a frame with %d live data bytes", set, w, e.CB, cap))
				}
			}
		}
	}
	vs = append(vs, statsConservation(&l.Stats)...)
	return vs
}

// statsConservation checks the counter relations the insert, migration
// and bypass paths must preserve. Reinserts (in-place updates that no
// longer fit) bump Inserts without a partition counter, migrations bump
// NVMInserts without Inserts, and NVM-only configs can bypass entirely —
// hence inequalities, not equalities.
func statsConservation(s *hybrid.Stats) []Violation {
	var vs []Violation
	if s.SRAMInserts+s.NVMInserts > s.Inserts+s.Migrations {
		vs = append(vs, violatef("migration-conservation",
			"partition inserts %d+%d exceed inserts %d + migrations %d",
			s.SRAMInserts, s.NVMInserts, s.Inserts, s.Migrations))
	}
	if s.Migrations > s.NVMInserts {
		vs = append(vs, violatef("migration-conservation",
			"migrations %d exceed NVM inserts %d", s.Migrations, s.NVMInserts))
	}
	if s.InsertHCR+s.InsertLCR+s.InsertIncomp > s.Inserts {
		vs = append(vs, violatef("insert-classes",
			"class counters %d+%d+%d exceed inserts %d",
			s.InsertHCR, s.InsertLCR, s.InsertIncomp, s.Inserts))
	}
	if s.NVMFallbacks > s.Inserts {
		vs = append(vs, violatef("insert-classes",
			"fallbacks %d exceed inserts %d", s.NVMFallbacks, s.Inserts))
	}
	return vs
}

// Array verifies the NVM array's fault bookkeeping: the fault map agrees
// with the disabled-byte count, live frames keep at least MinECB bytes,
// dead frames report zero capacity, and effective capacity never exceeds
// the block size. A nil array (SRAM-only config) passes vacuously.
func Array(arr *nvm.Array) []Violation {
	if arr == nil {
		return nil
	}
	var vs []Violation
	for i, f := range arr.Frames() {
		if got, want := f.FaultMap().Count(), f.FaultyBytes(); got != want {
			vs = append(vs, violatef("fault-map",
				"frame %d map counts %d faulty bytes, frame reports %d", i, got, want))
		}
		if f.Dead() {
			if f.LiveBytes() != 0 || f.EffectiveCapacity() != 0 {
				vs = append(vs, violatef("dead-frame",
					"frame %d dead but reports %d live bytes, capacity %d",
					i, f.LiveBytes(), f.EffectiveCapacity()))
			}
			continue
		}
		if live := nvm.FrameBytes - f.FaultyBytes(); live < nvm.MinECB {
			vs = append(vs, violatef("dead-frame",
				"frame %d alive with %d bytes, below MinECB %d", i, live, nvm.MinECB))
		}
		if cap := f.EffectiveCapacity(); cap > bdi.BlockSize {
			vs = append(vs, violatef("frame-capacity",
				"frame %d capacity %d exceeds block size %d", i, cap, bdi.BlockSize))
		}
	}
	return vs
}

// MetricsConsistency verifies that the registry's llc.* counters read
// exactly the Stats fields they were registered against — the registry
// is read-through, so any disagreement means a counter was rebound or a
// snapshot path corrupted.
func MetricsConsistency(l *hybrid.LLC) []Violation {
	var vs []Violation
	snap := l.Metrics().Snapshot()
	want := hybrid.StatValues(&l.Stats)
	for _, name := range hybrid.StatNames() {
		if got := snap.Counter(name); got != want[name] {
			vs = append(vs, violatef("metrics-registry",
				"%s reads %d, Stats field holds %d", name, got, want[name]))
		}
	}
	return vs
}

// Options configures a Checker.
type Options struct {
	// Every runs the suites every N observed accesses; 0 disables the
	// periodic trigger (RunNow still works).
	Every uint64
	// StrictFit enforces the cb <= frame-capacity invariant; enable it
	// only at quiesce points right after LLC.InvalidateUnfit.
	StrictFit bool
	// Limit caps stored violations (default 64); further ones are
	// counted but dropped.
	Limit int
}

// Checker runs the invariant suites periodically during a simulation,
// wired in as the hierarchy's access probe. It accumulates violations
// instead of failing fast, so a long campaign reports everything it saw.
type Checker struct {
	llc        *hybrid.LLC
	opts       Options
	accesses   uint64
	runs       uint64
	violations []Violation
	dropped    int
	prev       metrics.Snapshot
	hasPrev    bool
}

// New builds a Checker for an LLC. Zero Options.Limit defaults to 64.
func New(llc *hybrid.LLC, opts Options) *Checker {
	if opts.Limit <= 0 {
		opts.Limit = 64
	}
	return &Checker{llc: llc, opts: opts}
}

// Attach builds a Checker for the system's LLC and installs it as the
// access probe, so it runs every Options.Every LLC-bound accesses.
func Attach(sys *hier.System, opts Options) *Checker {
	c := New(sys.LLC(), opts)
	sys.SetAccessProbe(c)
	return c
}

// OnAccess implements hier.AccessProbe.
func (c *Checker) OnAccess() {
	c.accesses++
	if c.opts.Every != 0 && c.accesses%c.opts.Every == 0 {
		c.RunNow()
	}
}

// RunNow runs every suite once, records new violations, and returns the
// violations found by this run only.
func (c *Checker) RunNow() []Violation {
	c.runs++
	vs := LLC(c.llc, c.opts.StrictFit)
	vs = append(vs, Array(c.llc.Array())...)
	vs = append(vs, MetricsConsistency(c.llc)...)
	// Registry deltas must be monotonic between runs: counters only grow.
	snap := c.llc.Metrics().Snapshot()
	if c.hasPrev {
		for _, name := range hybrid.StatNames() {
			if now, then := snap.Counter(name), c.prev.Counter(name); now < then {
				vs = append(vs, violatef("metrics-monotonic",
					"%s fell from %d to %d between checks", name, then, now))
			}
		}
	}
	c.prev, c.hasPrev = snap, true
	for _, v := range vs {
		if len(c.violations) >= c.opts.Limit {
			c.dropped++
			continue
		}
		c.violations = append(c.violations, v)
	}
	return vs
}

// Accesses returns the number of accesses observed.
func (c *Checker) Accesses() uint64 { return c.accesses }

// Runs returns the number of suite executions.
func (c *Checker) Runs() uint64 { return c.runs }

// Violations returns all recorded violations (up to Options.Limit).
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped returns the number of violations discarded past the limit.
func (c *Checker) Dropped() int { return c.dropped }

// Err summarises the recorded violations as one error, nil when clean.
func (c *Checker) Err() error {
	total := len(c.violations) + c.dropped
	if total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s) in %d run(s)", total, c.runs)
	for _, v := range c.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if c.dropped > 0 {
		fmt.Fprintf(&b, "\n  ... %d more dropped", c.dropped)
	}
	return errors.New(b.String())
}

// ReportInto adds the checker's outcome to a report: summary fields and,
// when violations exist, a table listing them.
func (c *Checker) ReportInto(rep *report.Report) {
	rep.AddField("check_runs", c.runs)
	rep.AddField("check_accesses", c.accesses)
	rep.AddField("check_violations", len(c.violations)+c.dropped)
	if len(c.violations) == 0 {
		return
	}
	t := report.New("invariant_violations", "invariant", "detail")
	for _, v := range c.violations {
		t.AddRow(v.Invariant, v.Detail)
	}
	if c.dropped > 0 {
		t.AddRow("(dropped)", fmt.Sprintf("%d further violations past limit %d", c.dropped, c.opts.Limit))
	}
	rep.AddTable(t)
}
