package check_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/report"
	"repro/internal/stats"
)

func newReport() *report.Report { return report.NewReport("test") }

// newLLC builds a standalone LLC with the named policy on the quick
// geometry, bypassing the full hierarchy.
func newLLC(t *testing.T, policyName string) *hybrid.LLC {
	t.Helper()
	cfg := core.QuickConfig()
	cfg.PolicyName = policyName
	pol, thr, sram, nvmW, err := core.BuildPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return hybrid.New(hybrid.Config{
		Sets:       cfg.LLCSets,
		SRAMWays:   sram,
		NVMWays:    nvmW,
		Policy:     pol,
		Thresholds: thr,
		Endurance:  nvm.EnduranceModel{Mean: cfg.EnduranceMean, CV: cfg.EnduranceCV},
		Sampler:    stats.NewRNG(7),
	})
}

func fill(l *hybrid.LLC, n int) {
	for b := uint64(0); b < uint64(n); b++ {
		l.GetS(b)
		l.Insert(b, b%3 == 0, hybrid.BlockTag{}, nil)
	}
}

func TestCleanLLCPasses(t *testing.T) {
	for _, p := range []string{"CP_SD", "CA", "BH", "SRAM4"} {
		l := newLLC(t, p)
		fill(l, 20000)
		if vs := check.LLC(l, true); len(vs) != 0 {
			t.Errorf("%s: LLC suite: %v", p, vs)
		}
		if vs := check.Array(l.Array()); len(vs) != 0 {
			t.Errorf("%s: Array suite: %v", p, vs)
		}
		if vs := check.MetricsConsistency(l); len(vs) != 0 {
			t.Errorf("%s: metrics suite: %v", p, vs)
		}
	}
}

func TestStrictFitCatchesShrunkFrame(t *testing.T) {
	l := newLLC(t, "CA") // byte-disabling granularity
	// Compressible content (shared high bytes per word) steers blocks
	// into the NVM part: cb ~ 16 bytes, under the CA threshold.
	content := make([]byte, 64)
	for w := 0; w < 8; w++ {
		binary.LittleEndian.PutUint64(content[w*8:], 0x0123456789ab0000+uint64(w))
	}
	for b := uint64(0); b < 20000; b++ {
		l.GetS(b)
		l.Insert(b, false, hybrid.BlockTag{}, content)
	}
	nvmResident := 0
	for set := 0; set < l.Sets(); set++ {
		for w := l.SRAMWays(); w < l.SRAMWays()+l.NVMWays(); w++ {
			if l.ViewEntry(set, w).Valid {
				nvmResident++
			}
		}
	}
	if nvmResident == 0 {
		t.Fatal("setup placed nothing in NVM")
	}
	// Shrink frames under their resident blocks: disable bytes in every
	// NVM frame until some stored block no longer fits.
	for _, f := range l.Array().Frames() {
		for i := 0; i < nvm.DataBytes-4 && !f.Dead(); i++ {
			f.InjectFault(i)
		}
	}
	if vs := check.LLC(l, true); len(vs) == 0 {
		t.Fatal("strict-fit missed blocks in shrunk frames")
	} else {
		found := false
		for _, v := range vs {
			if v.Invariant == "strict-fit" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no strict-fit violation in %v", vs)
		}
	}
	// InvalidateUnfit is the documented quiesce point: after it, strict
	// mode must pass again.
	l.InvalidateUnfit()
	if vs := check.LLC(l, true); len(vs) != 0 {
		t.Fatalf("violations after InvalidateUnfit: %v", vs)
	}
}

func TestStatsConservationViolations(t *testing.T) {
	l := newLLC(t, "CP_SD")
	fill(l, 5000)
	l.Stats.Migrations = l.Stats.NVMInserts + 1
	vs := check.LLC(l, false)
	found := false
	for _, v := range vs {
		if v.Invariant == "migration-conservation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted migration counter not flagged: %v", vs)
	}
}

func TestCheckerMonotonicity(t *testing.T) {
	l := newLLC(t, "CP_SD")
	fill(l, 2000)
	c := check.New(l, check.Options{})
	if vs := c.RunNow(); len(vs) != 0 {
		t.Fatalf("clean LLC flagged: %v", vs)
	}
	l.ResetStats() // counters jump backwards
	vs := c.RunNow()
	found := false
	for _, v := range vs {
		if v.Invariant == "metrics-monotonic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter reset not flagged: %v", vs)
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "metrics-monotonic") {
		t.Fatalf("Err() = %v", c.Err())
	}
}

func TestCheckerLimit(t *testing.T) {
	l := newLLC(t, "CP_SD")
	fill(l, 2000)
	c := check.New(l, check.Options{Limit: 2})
	l.Stats.Migrations = l.Stats.NVMInserts + 1
	for i := 0; i < 5; i++ {
		c.RunNow()
	}
	if len(c.Violations()) != 2 || c.Dropped() != 3 {
		t.Fatalf("stored %d, dropped %d", len(c.Violations()), c.Dropped())
	}
}

func TestAttachRunsDuringSimulation(t *testing.T) {
	cfg := core.QuickConfig()
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := check.Attach(sys, check.Options{Every: 500})
	sys.Run(200_000)
	if c.Runs() == 0 {
		t.Fatal("probe never ran the suites")
	}
	if c.Accesses() == 0 {
		t.Fatal("probe observed no accesses")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("violations during healthy run:\n%v", err)
	}
}

func TestReportInto(t *testing.T) {
	l := newLLC(t, "CP_SD")
	fill(l, 1000)
	c := check.New(l, check.Options{})
	c.RunNow()
	rep := newReport()
	c.ReportInto(rep)
	if len(rep.Fields()) != 3 || len(rep.Tables()) != 0 {
		t.Fatalf("clean report: %d fields %d tables", len(rep.Fields()), len(rep.Tables()))
	}
	l.Stats.Migrations = l.Stats.NVMInserts + 1
	c.RunNow()
	rep = newReport()
	c.ReportInto(rep)
	if len(rep.Tables()) != 1 {
		t.Fatalf("violation table missing: %d tables", len(rep.Tables()))
	}
}
