package check_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hybrid"
)

// TestGracefulDegradation kills NVM frames down to half capacity in
// steps, running the workload between steps, and asserts the system
// degrades gracefully: the fit-constrained replacement never places a
// block in a disabled frame and every invariant holds at each plateau.
func TestGracefulDegradation(t *testing.T) {
	cases := []struct {
		policy  string
		targets []float64
	}{
		{"CP_SD", []float64{0.9, 0.7, 0.5}},
		{"CA", []float64{0.8, 0.5}},
		{"BH", []float64{0.75, 0.5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.policy, func(t *testing.T) {
			cfg := core.QuickConfig()
			cfg.PolicyName = tc.policy
			sys, err := cfg.Build()
			if err != nil {
				t.Fatal(err)
			}
			llc := sys.LLC()
			chk := check.Attach(sys, check.Options{Every: 2000})
			sys.Run(150_000) // warm the cache at full capacity

			var steps []faultinject.Step
			for _, target := range tc.targets {
				steps = append(steps, faultinject.Step{Kind: faultinject.ToCapacity, Target: target})
			}
			camp, err := faultinject.NewCampaign(llc.Array(), faultinject.Spec{Seed: 99, Steps: steps})
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range tc.targets {
				res, ok := camp.Next()
				if !ok {
					t.Fatal("campaign exhausted early")
				}
				if res.Capacity > target {
					t.Fatalf("campaign left capacity %.3f above target %.2f", res.Capacity, target)
				}
				llc.InvalidateUnfit()
				if vs := check.LLC(llc, true); len(vs) != 0 {
					t.Fatalf("at capacity %.2f after invalidate: %v", target, vs)
				}
				sys.Run(100_000)
				assertNoDisabledFrameUse(t, llc, target)
			}
			if res, ok := camp.Next(); ok {
				t.Fatalf("campaign had leftover step %+v", res)
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("periodic checker at 50%% capacity:\n%v", err)
			}
			if vs := check.Array(llc.Array()); len(vs) != 0 {
				t.Fatalf("array inconsistent after campaign: %v", vs)
			}
			// The degraded cache must still serve the workload.
			if llc.Stats.Hits == 0 {
				t.Fatal("no hits on degraded cache")
			}
		})
	}
}

// assertNoDisabledFrameUse fails if any valid NVM-resident entry sits in
// a dead frame — i.e. the fit-constrained victim selection (fit-LRU or
// the global BH list) picked a disabled frame for an insertion.
func assertNoDisabledFrameUse(t *testing.T, llc *hybrid.LLC, target float64) {
	t.Helper()
	for set := 0; set < llc.Sets(); set++ {
		for w := llc.SRAMWays(); w < llc.SRAMWays()+llc.NVMWays(); w++ {
			e := llc.ViewEntry(set, w)
			if !e.Valid {
				continue
			}
			if llc.Array().Frame(set, w-llc.SRAMWays()).Dead() {
				t.Fatal(fmt.Sprintf(
					"capacity %.2f: block %#x resident in dead frame (set %d way %d)",
					target, e.Block, set, w))
			}
		}
	}
}
