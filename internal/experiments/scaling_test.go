package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParallelScalingBench(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.EnduranceMean = 60_000 // faults happen, so digests compare real wear
	opt := ScalingOptions{
		Base:    cfg,
		Shards:  []int{2, 4}, // shards=1 baseline is prepended automatically
		Warmup:  100_000,
		Measure: 300_000,
	}
	rows, err := ParallelScalingBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Shards != 1 {
		t.Fatalf("rows %+v, want shards=1 baseline prepended", rows)
	}
	if !ScalingEquivalent(rows) {
		t.Fatalf("fault digests diverge across shard counts: %+v", rows)
	}
	for _, r := range rows {
		if r.Accesses == 0 || r.WallNs <= 0 || r.NsPerAccess <= 0 || r.Speedup <= 0 {
			t.Errorf("shards=%d: incomplete row %+v", r.Shards, r)
		}
		if r.Accesses != rows[0].Accesses {
			t.Errorf("shards=%d: %d accesses, want %d (identical simulation)", r.Shards, r.Accesses, rows[0].Accesses)
		}
		// The serial baseline is pinned to one proc; parallel rows get the
		// machine's full width.
		want := runtime.GOMAXPROCS(0)
		if r.Shards == 1 {
			want = 1
		}
		if r.Gomaxprocs != want {
			t.Errorf("shards=%d: ran at gomaxprocs %d, want %d", r.Shards, r.Gomaxprocs, want)
		}
	}
	rep := ParallelScalingReport(opt, rows)
	var sb strings.Builder
	if err := rep.Write(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digests_equivalent") {
		t.Error("report lacks the equivalence verdict field")
	}
}
