package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dueling"
	"repro/internal/forecast"
)

func TestFig2Profile(t *testing.T) {
	rows := Fig2CompressionProfile(1500)
	if len(rows) != 21 { // 20 apps + average
		t.Fatalf("%d rows", len(rows))
	}
	var avg ClassRow
	for _, r := range rows {
		if r.App == "average" {
			avg = r
		}
		if s := r.HCR + r.LCR + r.Incompressible; math.Abs(s-1) > 1e-9 {
			t.Errorf("%s fractions sum to %v", r.App, s)
		}
	}
	// Paper: ~78%% compressible on average (49 HCR + 29 LCR).
	if c := avg.HCR + avg.LCR; c < 0.6 || c > 0.9 {
		t.Errorf("average compressible %.3f outside [0.6,0.9]", c)
	}
	// xz17 must be (nearly) incompressible, GemsFDTD06 highly compressible.
	for _, r := range rows {
		switch r.App {
		case "xz17":
			if r.Incompressible < 0.9 {
				t.Errorf("xz17 incompressible %.3f", r.Incompressible)
			}
		case "GemsFDTD06":
			if r.HCR < 0.85 {
				t.Errorf("GemsFDTD06 HCR %.3f", r.HCR)
			}
		}
	}
}

func TestTables(t *testing.T) {
	t1 := Table1BDI()
	for _, want := range []string{"Zeros", "B8D1", "Uncompressed", "HCR", "LCR"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2CARWR(37)
	if !strings.Contains(t2, "read") || !strings.Contains(t2, "NVM") {
		t.Errorf("Table II malformed:\n%s", t2)
	}
	if rows := Table3Policies(); len(rows) != 6 {
		t.Errorf("Table III has %d rows", len(rows))
	}
	t4 := Table4System(core.DefaultConfig())
	if !strings.Contains(t4, "Hybrid LLC") || !strings.Contains(t4, "endurance") {
		t.Errorf("Table IV malformed:\n%s", t4)
	}
	t5 := Table5Mixes()
	if !strings.Contains(t5, "mix 10") || !strings.Contains(t5, "zeusmp06") {
		t.Errorf("Table V malformed:\n%s", t5)
	}
}

func TestOverheadTable(t *testing.T) {
	rows := OverheadTable()
	if len(rows) != 2 {
		t.Fatal("want two granularities")
	}
	if rows[1].FractionOfNVMData != 0.125 {
		t.Errorf("byte-disabling overhead %v, want 0.125 (paper ~12.3%%)", rows[1].FractionOfNVMData)
	}
	if rows[0].FractionOfNVMData >= rows[1].FractionOfNVMData {
		t.Error("frame disabling must be cheaper than byte disabling")
	}
}

func quickBase() core.Config {
	c := core.QuickConfig()
	c.EpochCycles = 250_000
	return c
}

func TestFig6And7Shape(t *testing.T) {
	sweep, taskResults, err := Fig6And7CPthSweep(quickBase(), []int{0}, 300_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	if fails := cliutil.Failures(taskResults); len(fails) != 0 {
		t.Fatalf("task failures: %+v", fails)
	}
	if len(sweep.Rows) != len(dueling.DefaultCandidates) {
		t.Fatalf("%d rows", len(sweep.Rows))
	}
	if sweep.BHHits == 0 || sweep.BHNVMBytes == 0 {
		t.Fatal("BH reference empty")
	}
	// Fig 7 headline shape: NVM bytes written increase with CPth.
	first := sweep.Rows[0]
	last := sweep.Rows[len(sweep.Rows)-1]
	if last.CANVMBytes <= first.CANVMBytes {
		t.Errorf("CA NVM bytes should grow with CPth: %v -> %v", first.CANVMBytes, last.CANVMBytes)
	}
	// CA_RWR writes less than CA at the top threshold (write-reuse blocks
	// diverted to SRAM, §IV-B).
	if last.CARWRNVMBytes >= last.CANVMBytes {
		t.Errorf("CA_RWR bytes %v !< CA %v at CPth=64", last.CARWRNVMBytes, last.CANVMBytes)
	}
	// All policies write no more NVM bytes than BH.
	for _, r := range sweep.Rows {
		if sweep.NormalizedBytes(r.CARWRNVMBytes) > 1.05 {
			t.Errorf("CPth %d: CA_RWR normalized bytes %.2f > 1", r.CPth, sweep.NormalizedBytes(r.CARWRNVMBytes))
		}
	}
	if sweep.CPSDHits == 0 || sweep.CPSDBytes == 0 {
		t.Fatal("CP_SD line empty")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8OptimalCPth(quickBase(), []int{0, 3}, []float64{1.0, 0.8}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByCapacity) != 2 {
		t.Fatalf("%d capacity rows", len(res.ByCapacity))
	}
	for i, dist := range res.ByCapacity {
		var sum float64
		for _, f := range dist {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("capacity %v distribution sums to %v", res.Capacities[i], sum)
		}
	}
	if len(res.ByMix) != 2 || res.ByMix[0] == nil {
		t.Fatal("per-mix distributions missing")
	}
}

func TestFig9Shape(t *testing.T) {
	pts, _, err := Fig9ThTradeoff(quickBase(), []int{0}, []float64{0, 8}, []float64{1.0}, 5, 300_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	p0, p8 := pts[0], pts[1]
	if p0.Th != 0 || p8.Th != 8 {
		t.Fatal("point order wrong")
	}
	// Th=8 must not write more NVM bytes than Th=0 (it only ever trades
	// hits for fewer writes).
	if p8.NVMBytes > p0.NVMBytes*1.02 {
		t.Errorf("Th8 bytes %.3f > Th0 %.3f", p8.NVMBytes, p0.NVMBytes)
	}
}

func TestEpochSizeSweep(t *testing.T) {
	rows, err := EpochSizeSweep(quickBase(), []int{0}, []uint64{250_000, 1_000_000}, 300_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].HitRate <= 0 || rows[1].HitRate <= 0 {
		t.Fatalf("rows %+v", rows)
	}
}

func TestForecastComparisonQuick(t *testing.T) {
	base := quickBase()
	base.EnduranceMean = 2e4 // ages fast enough for the test
	fcfg := forecast.DefaultConfig()
	fcfg.WarmupCycles = 200_000
	fcfg.PhaseCycles = 800_000
	fcfg.CapacityStep = 0.125
	fcfg.MaxPhases = 8
	specs := []ForecastSpec{
		{"BH", func(c *core.Config) { c.PolicyName = "BH" }},
		{"CP_SD", func(c *core.Config) { c.PolicyName = "CP_SD" }},
	}
	fs, taskResults, err := ForecastComparison(base, specs, []int{0}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := cliutil.Failures(taskResults); len(fails) != 0 {
		t.Fatalf("task failures: %+v", fails)
	}
	if len(fs) != 2 {
		t.Fatalf("%d forecasts", len(fs))
	}
	bh, ok := FindSpec(fs, "BH")
	if !ok || len(bh.PerMix) != 1 {
		t.Fatal("BH forecast missing")
	}
	if bh.InitialIPC <= 0 {
		t.Fatal("no initial IPC")
	}
	if bh.IPCAt(0) <= 0 {
		t.Fatal("IPCAt(0) empty")
	}
	if _, ok := FindSpec(fs, "nope"); ok {
		t.Fatal("FindSpec false positive")
	}
}

func TestStandardSpecsCoverPaperCurves(t *testing.T) {
	labels := map[string]bool{}
	for _, s := range StandardForecastSpecs() {
		labels[s.Label] = true
	}
	for _, want := range []string{"SRAM16", "SRAM4", "BH", "BH_CP", "LHybrid", "TAP", "CP_SD", "CP_SD_Th4", "CP_SD_Th8"} {
		if !labels[want] {
			t.Errorf("missing curve %s", want)
		}
	}
	if len(CoreForecastSpecs()) != 4 {
		t.Errorf("core specs = %d", len(CoreForecastSpecs()))
	}
}

func TestNormalizeTo(t *testing.T) {
	if NormalizeTo(5, 10) != 0.5 || NormalizeTo(5, 0) != 0 {
		t.Fatal("NormalizeTo wrong")
	}
}

func TestEnergyComparison(t *testing.T) {
	rows, _, err := EnergyComparison(quickBase(), []string{"BH", "LHybrid", "CP_SD"}, []int{0}, 300_000, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var bh, lh, cp *EnergyRow
	for i := range rows {
		switch rows[i].Policy {
		case "BH":
			bh = &rows[i]
		case "LHybrid":
			lh = &rows[i]
		case "CP_SD":
			cp = &rows[i]
		}
		if rows[i].Breakdown.Total() <= 0 || rows[i].PerKI <= 0 {
			t.Fatalf("row %+v has no energy", rows[i])
		}
	}
	if bh.RelativeToBH != 1 {
		t.Errorf("BH relative = %v", bh.RelativeToBH)
	}
	// NVM-write-avoiding policies must not exceed BH energy: LHybrid and
	// CP_SD both cut the expensive NVM write traffic drastically.
	if lh.RelativeToBH > 1.0 {
		t.Errorf("LHybrid energy %.3f of BH; expected at or below 1", lh.RelativeToBH)
	}
	if cp.RelativeToBH > 1.0 {
		t.Errorf("CP_SD energy %.3f of BH; expected at or below 1", cp.RelativeToBH)
	}
}

func TestPerAppStudy(t *testing.T) {
	cfg := quickBase()
	cfg.Scale = 0.08 // keep the 20-app sweep fast
	rows, taskResults, err := PerAppStudy(cfg, "CA", 200_000, 800_000)
	if err != nil {
		t.Fatal(err)
	}
	if fails := cliutil.Failures(taskResults); len(fails) != 0 {
		t.Fatalf("task failures: %+v", fails)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20 applications", len(rows))
	}
	byName := map[string]AppRow{}
	for _, r := range rows {
		byName[r.App] = r
		if r.HitRate < 0 || r.HitRate > 1 || r.NVMShare < 0 || r.NVMShare > 1 {
			t.Fatalf("row out of range: %+v", r)
		}
	}
	// §IV-A pathology under CA: incompressible apps barely touch NVM,
	// fully compressible ones put almost everything there.
	if xz := byName["xz17"]; xz.NVMShare > 0.15 {
		t.Errorf("xz17 NVM share %.3f under CA; should be near zero", xz.NVMShare)
	}
	if gems := byName["GemsFDTD06"]; gems.NVMShare < 0.7 {
		t.Errorf("GemsFDTD06 NVM share %.3f under CA; should be near one", gems.NVMShare)
	}
	if _, _, err := PerAppStudy(cfg, "NOPE", 1, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
