package experiments

import (
	"fmt"

	"repro/internal/cliutil"
)

// runTasks fans sweep work out on the shared hardened pool (package
// cliutil): default worker count, no per-task deadline, continue on
// error. Every experiment configuration is an independent, deterministic
// simulation, so results are identical to the serial order as long as
// each task writes only to its own index — which is how all callers use
// it. Failures (including recovered panics) come back as structured
// records instead of aborting the sweep.
func runTasks(tasks []cliutil.Task) []cliutil.TaskResult {
	return cliutil.RunTasks(tasks, cliutil.PoolConfig{})
}

// forEachIndex runs fn(i) for i in [0, n) on the pool and returns the
// joined failures (nil when all succeeded). Unlike the pre-pool version
// it does not stop at the first error: every index runs.
func forEachIndex(n int, fn func(i int) error) error {
	tasks := make([]cliutil.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("index %d", i), Run: func() error { return fn(i) }}
	}
	return cliutil.ErrOf(runTasks(tasks))
}
