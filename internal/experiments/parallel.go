package experiments

import (
	"runtime"
	"sync"
)

// forEachIndex runs fn(i) for i in [0, n) on up to GOMAXPROCS workers and
// returns the first error. Every experiment configuration is an
// independent, deterministic simulation, so results are identical to the
// serial order as long as each fn writes only to its own index — which is
// how all callers use it.
func forEachIndex(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstErr != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
