package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cliutil"
)

func TestForEachIndexVisitsAll(t *testing.T) {
	var mask [100]int32
	if err := forEachIndex(100, func(i int) error {
		atomic.AddInt32(&mask[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range mask {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachIndexPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndex(50, func(i int) error {
		if i == 13 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachIndexZero(t *testing.T) {
	if err := forEachIndex(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachIndexContinuesPastError: unlike the pre-pool version, one
// failing index must not prevent the rest from running.
func TestForEachIndexContinuesPastError(t *testing.T) {
	var ran int32
	err := forEachIndex(20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran != 20 {
		t.Fatalf("only %d of 20 indices ran", ran)
	}
}

// TestPerAppStudySurvivesInjectedPanic: a deliberately crashing task
// (injected via the shared REPRO_FAULT_PANIC_TASK hook) must not take
// down the sweep — the other applications still produce rows and the
// crash comes back as a structured failure record.
func TestPerAppStudySurvivesInjectedPanic(t *testing.T) {
	t.Setenv(cliutil.PanicTaskEnv, "app=xz17")
	cfg := quickBase()
	cfg.Scale = 0.05
	rows, results, err := PerAppStudy(cfg, "CA", 50_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("%d rows survived, want 19", len(rows))
	}
	for _, r := range rows {
		if r.App == "xz17" {
			t.Fatal("crashed task produced a row")
		}
	}
	fails := cliutil.Failures(results)
	if len(fails) != 1 || fails[0].Name != "app=xz17" || !fails[0].Panicked {
		t.Fatalf("failures: %+v", fails)
	}
}

func TestSelectForecastSpecs(t *testing.T) {
	if specs, err := SelectForecastSpecs("standard"); err != nil || len(specs) != 9 {
		t.Fatalf("standard: %d specs, err=%v", len(specs), err)
	}
	if specs, err := SelectForecastSpecs("core"); err != nil || len(specs) != 4 {
		t.Fatalf("core: %d specs, err=%v", len(specs), err)
	}
	specs, err := SelectForecastSpecs("BH, CP_SD")
	if err != nil || len(specs) != 2 || specs[0].Label != "BH" || specs[1].Label != "CP_SD" {
		t.Fatalf("list: %+v err=%v", specs, err)
	}
	if _, err := SelectForecastSpecs("NOPE"); err == nil {
		t.Error("unknown curve accepted")
	}
	if _, err := SelectForecastSpecs(""); err == nil {
		t.Error("empty selector accepted")
	}
}

// TestParallelDeterminism: the parallel harness must produce identical
// results to a repeated run — each simulation is self-contained.
func TestParallelDeterminism(t *testing.T) {
	run := func() CPthSweep {
		s, _, err := Fig6And7CPthSweep(quickBase(), []int{0}, 150_000, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.BHHits != b.BHHits || a.CPSDHits != b.CPSDHits || a.CPSDBytes != b.CPSDBytes {
		t.Fatal("parallel sweep not reproducible")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
