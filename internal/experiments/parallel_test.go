package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachIndexVisitsAll(t *testing.T) {
	var mask [100]int32
	if err := forEachIndex(100, func(i int) error {
		atomic.AddInt32(&mask[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range mask {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachIndexPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndex(50, func(i int) error {
		if i == 13 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachIndexZero(t *testing.T) {
	if err := forEachIndex(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterminism: the parallel harness must produce identical
// results to a repeated run — each simulation is self-contained.
func TestParallelDeterminism(t *testing.T) {
	run := func() CPthSweep {
		s, err := Fig6And7CPthSweep(quickBase(), []int{0}, 150_000, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.BHHits != b.BHHits || a.CPSDHits != b.CPSDHits || a.CPSDBytes != b.CPSDBytes {
		t.Fatal("parallel sweep not reproducible")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
