package experiments

import (
	"math"
	"testing"
)

func TestParetoFrontierExact(t *testing.T) {
	pts := []ParetoPoint{
		{Lifetime: 10, IPC: 1.0}, // dominated by 2 on both axes
		{Lifetime: 20, IPC: 1.2}, // frontier
		{Lifetime: 30, IPC: 0.8}, // frontier: best lifetime
		{Lifetime: 5, IPC: 1.5},  // frontier: best IPC
		{Lifetime: 20, IPC: 1.2}, // duplicate of 1: non-strict tie, kept
	}
	keep := ParetoFrontier(pts)
	want := []bool{false, true, true, true, true}
	for i := range want {
		if keep[i] != want[i] {
			t.Errorf("point %d: keep=%v want %v", i, keep[i], want[i])
		}
	}
}

func TestParetoFrontierMargins(t *testing.T) {
	// With zero margins 1 dominates 0; a 10% margin on each side leaves
	// 20·0.9 = 18 < 11·1.1 = 12.1? no — 18 > 12.1 still dominates on
	// lifetime, but IPC 1.0·0.9 = 0.9 < 1.0·1.1 = 1.1 no longer does.
	pts := []ParetoPoint{
		{Lifetime: 11, IPC: 1.0, LifetimeMargin: 0.1, IPCMargin: 0.1},
		{Lifetime: 20, IPC: 1.0, LifetimeMargin: 0.1, IPCMargin: 0.1},
	}
	keep := ParetoFrontier(pts)
	if !keep[0] || !keep[1] {
		t.Fatalf("equal-IPC points with symmetric margins must both survive: %v", keep)
	}
	exact := ParetoFrontier([]ParetoPoint{
		{Lifetime: 11, IPC: 1.0},
		{Lifetime: 20, IPC: 1.0},
	})
	if exact[0] || !exact[1] {
		t.Fatalf("zero margins must screen the shorter-lived equal-IPC point: %v", exact)
	}
}

func TestParetoFrontierDominationBeyondMargins(t *testing.T) {
	// 2× on both axes clears 10% margins comfortably.
	pts := []ParetoPoint{
		{Lifetime: 10, IPC: 0.5, LifetimeMargin: 0.1, IPCMargin: 0.1},
		{Lifetime: 20, IPC: 1.0, LifetimeMargin: 0.1, IPCMargin: 0.1},
	}
	keep := ParetoFrontier(pts)
	if keep[0] {
		t.Fatal("dominated-beyond-margins point survived")
	}
	if !keep[1] {
		t.Fatal("dominating point screened")
	}
}

func TestParetoFrontierCensoredLifetimes(t *testing.T) {
	inf := math.Inf(1)
	pts := []ParetoPoint{
		{Lifetime: inf, IPC: 1.0, LifetimeMargin: 0.5, IPCMargin: 0.01},
		{Lifetime: inf, IPC: 2.0, LifetimeMargin: 0.5, IPCMargin: 0.01},
		{Lifetime: 100, IPC: 0.5, LifetimeMargin: 0.01, IPCMargin: 0.01},
	}
	keep := ParetoFrontier(pts)
	// Censored lifetimes survive margin scaling (Inf·(1−m) stays Inf), so
	// the higher-IPC censored point screens both the lower-IPC censored
	// point and the finite point.
	if keep[0] {
		t.Fatal("lower-IPC censored point must be screened by the higher-IPC one")
	}
	if !keep[1] {
		t.Fatal("best censored point screened")
	}
	if keep[2] {
		t.Fatal("finite point dominated on both axes survived")
	}
}

// TestParetoFrontierMarginAsymmetry pins the planner-safety property: a
// margin ≥ 1 (the redistributed-lifetime bound) makes a point's
// lower-bounded lifetime non-positive, so it can never dominate anything
// — but its own inflated upper bound still protects it.
func TestParetoFrontierMarginAsymmetry(t *testing.T) {
	pts := []ParetoPoint{
		{Lifetime: 1000, IPC: 2.0, LifetimeMargin: 1.2, IPCMargin: 0.01},
		{Lifetime: 1, IPC: 1.0, LifetimeMargin: 0.01, IPCMargin: 0.01},
	}
	keep := ParetoFrontier(pts)
	if !keep[0] || !keep[1] {
		t.Fatalf("a redistributed-bound point must neither screen nor be screened: %v", keep)
	}
}
