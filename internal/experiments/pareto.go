package experiments

// This file is the one Pareto-frontier implementation both consumers of
// the lifetime × IPC plane share: cmd/forecast's frontier column (exact,
// zero margins) and the simd sweep planner's analytic screening
// (margin-aware — a config is only screened when another config
// dominates it by more than the estimates' combined error bounds).
// cmd/tournament's RankLeague stays a total order (standings need ranks,
// not a frontier); this is the set-valued counterpart.

import "math"

// ParetoPoint is one candidate on the lifetime × IPC plane. Lifetime is
// in months; math.Inf(1) encodes a censored (never-dies) lifetime. The
// margins are relative error bounds applied symmetrically: a point's
// metrics are trusted only down to v·(1−margin) and up to v·(1+margin).
// Zero margins give the exact frontier.
type ParetoPoint struct {
	Lifetime       float64
	IPC            float64
	LifetimeMargin float64
	IPCMargin      float64
}

// dominates reports whether d safely dominates c: d's lower-bounded
// metrics are at least c's upper-bounded metrics on both axes, strictly
// on at least one. Infinite lifetimes survive the margin scaling
// (Inf·(1−m) = Inf for m < 1) and tie non-strictly with each other, so
// two censored points are separated by IPC alone.
func dominates(d, c ParetoPoint) bool {
	dl, di := d.Lifetime*(1-d.LifetimeMargin), d.IPC*(1-d.IPCMargin)
	cl, ci := c.Lifetime*(1+c.LifetimeMargin), c.IPC*(1+c.IPCMargin)
	if math.IsInf(d.Lifetime, 1) {
		dl = math.Inf(1)
	}
	if math.IsInf(c.Lifetime, 1) {
		cl = math.Inf(1)
	}
	return dl >= cl && di >= ci && (dl > cl || di > ci)
}

// ParetoFrontier reports, for each point, whether it is on the frontier:
// no other point safely dominates it. Points another point dominates
// only within the margins are kept — with honest error bounds a point on
// the true frontier is never marked dominated. O(n²), fine for the
// sweep- and curve-sized inputs this repo ranks.
func ParetoFrontier(points []ParetoPoint) []bool {
	keep := make([]bool, len(points))
	for i, c := range points {
		keep[i] = true
		for j, d := range points {
			if i == j {
				continue
			}
			if dominates(d, c) {
				keep[i] = false
				break
			}
		}
	}
	return keep
}
