package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/forecast"
)

// ForecastSpec names one curve of Figs. 1/10/11 and how to derive its
// configuration from the base.
type ForecastSpec struct {
	Label  string
	Mutate func(*core.Config)
}

// StandardForecastSpecs returns the paper's Fig. 1 / Fig. 10a curve set:
// the two SRAM bounds, BH, BH_CP, LHybrid, TAP, CP_SD and the Th4/Th8
// rule variants.
func StandardForecastSpecs() []ForecastSpec {
	return []ForecastSpec{
		{"SRAM16", func(c *core.Config) { c.PolicyName = "SRAM16" }},
		{"SRAM4", func(c *core.Config) { c.PolicyName = "SRAM4" }},
		{"BH", func(c *core.Config) { c.PolicyName = "BH" }},
		{"BH_CP", func(c *core.Config) { c.PolicyName = "BH_CP" }},
		{"LHybrid", func(c *core.Config) { c.PolicyName = "LHybrid" }},
		{"TAP", func(c *core.Config) { c.PolicyName = "TAP" }},
		{"CP_SD", func(c *core.Config) { c.PolicyName = "CP_SD" }},
		{"CP_SD_Th4", func(c *core.Config) { c.PolicyName = "CP_SD_Th"; c.Th = 4; c.Tw = 5 }},
		{"CP_SD_Th8", func(c *core.Config) { c.PolicyName = "CP_SD_Th"; c.Th = 8; c.Tw = 5 }},
	}
}

// CoreForecastSpecs is the subset used by quick harness runs.
func CoreForecastSpecs() []ForecastSpec {
	all := StandardForecastSpecs()
	out := make([]ForecastSpec, 0, 5)
	for _, s := range all {
		switch s.Label {
		case "SRAM16", "BH", "LHybrid", "CP_SD":
			out = append(out, s)
		}
	}
	return out
}

// SelectForecastSpecs resolves a CLI curve selector — "standard", "core",
// or a comma-separated list of curve labels — to forecast specs.
func SelectForecastSpecs(arg string) ([]ForecastSpec, error) {
	switch arg {
	case "standard":
		return StandardForecastSpecs(), nil
	case "core":
		return CoreForecastSpecs(), nil
	}
	all := StandardForecastSpecs()
	var out []ForecastSpec
	for _, tok := range strings.Split(arg, ",") {
		label := strings.TrimSpace(tok)
		found := false
		for _, s := range all {
			if s.Label == label {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, len(all))
			for i, s := range all {
				valid[i] = s.Label
			}
			return nil, fmt.Errorf("unknown curve %q (valid: %s)", label, strings.Join(valid, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty curve list")
	}
	return out, nil
}

// PolicyForecast aggregates one policy's forecast across mixes.
type PolicyForecast struct {
	Label  string
	PerMix []forecast.Result

	// MeanLifetimeMonths averages the finite per-mix lifetimes;
	// CensoredMixes counts mixes whose capacity never reached the target
	// within the forecast horizon (their lifetime is a lower bound).
	MeanLifetimeMonths float64
	CensoredMixes      int

	// InitialIPC is the across-mix mean IPC of the first forecast point
	// (the young-cache operating point of Fig. 10's left edge).
	InitialIPC float64
}

// ForecastComparison runs the forecast for each spec across the mixes.
// The (spec, mix) simulations are independent and run in parallel on the
// hardened pool: a failed cell is excluded from its policy's aggregates
// and reported in the returned task records instead of aborting the
// whole comparison. When base.Shards > 1 each cell runs on the
// set-sharded engine (bit-identical output for every shard count).
func ForecastComparison(base core.Config, specs []ForecastSpec, mixes []int, fcfg forecast.Config) ([]PolicyForecast, []cliutil.TaskResult, error) {
	results := make([]forecast.Result, len(specs)*len(mixes))
	tasks := make([]cliutil.Task, len(results))
	for i := range tasks {
		i := i
		spec := specs[i/len(mixes)]
		m := mixes[i%len(mixes)]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("curve=%s/mix=%d", spec.Label, m+1), Run: func() error {
			cfg := base
			cfg.MixID = m
			spec.Mutate(&cfg)
			target, done, err := cfg.BuildForecastTarget()
			if err != nil {
				return err
			}
			defer done()
			results[i] = forecast.RunTarget(target, fcfg)
			return nil
		}}
	}
	taskResults := runTasks(tasks)
	return aggregateForecasts(specs, mixes, results, taskResults), taskResults, nil
}

// aggregateForecasts folds per-cell forecast results into per-policy
// aggregates, dropping failed cells. Shared by the full forecast
// comparison and its analytic fast-path counterpart, which synthesizes
// one-point forecast.Results from calibrations.
func aggregateForecasts(specs []ForecastSpec, mixes []int, results []forecast.Result, taskResults []cliutil.TaskResult) []PolicyForecast {
	out := make([]PolicyForecast, 0, len(specs))
	for si, spec := range specs {
		pf := PolicyForecast{Label: spec.Label}
		var lifeSum float64
		var lifeN int
		var ipcSum float64
		var okMixes int
		for mi := range mixes {
			cell := si*len(mixes) + mi
			if taskResults[cell].Failed() {
				continue
			}
			res := results[cell]
			pf.PerMix = append(pf.PerMix, res)
			okMixes++
			if math.IsInf(res.LifetimeSeconds, 1) {
				pf.CensoredMixes++
			} else {
				lifeSum += res.LifetimeMonths()
				lifeN++
			}
			if len(res.Points) > 0 {
				ipcSum += res.Points[0].MeanIPC
			}
		}
		if lifeN > 0 {
			pf.MeanLifetimeMonths = lifeSum / float64(lifeN)
		} else {
			pf.MeanLifetimeMonths = math.Inf(1)
		}
		if okMixes > 0 {
			pf.InitialIPC = ipcSum / float64(okMixes)
		}
		out = append(out, pf)
	}
	return out
}

// IPCAt returns the across-mix mean IPC of a policy at an absolute time,
// using step interpolation (last measured point at or before t). Mixes
// whose trajectory ended before t contribute their final point, matching
// the paper's practice of plotting until 50% capacity.
func (pf *PolicyForecast) IPCAt(seconds float64) float64 {
	if len(pf.PerMix) == 0 {
		return 0
	}
	var sum float64
	for _, res := range pf.PerMix {
		sum += ipcAt(res, seconds)
	}
	return sum / float64(len(pf.PerMix))
}

func ipcAt(res forecast.Result, seconds float64) float64 {
	if len(res.Points) == 0 {
		return 0
	}
	last := res.Points[0].MeanIPC
	for _, p := range res.Points {
		if p.TimeSeconds > seconds {
			break
		}
		last = p.MeanIPC
	}
	return last
}

// NormalizeTo divides a value by a bound, guarding zero.
func NormalizeTo(v, bound float64) float64 {
	if bound == 0 {
		return 0
	}
	return v / bound
}

// FindSpec returns the forecast with the given label.
func FindSpec(fs []PolicyForecast, label string) (PolicyForecast, bool) {
	for _, f := range fs {
		if f.Label == label {
			return f, true
		}
	}
	return PolicyForecast{}, false
}
