// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from configuration to a
// structured result; the cmd tools and the benchmark harness render these
// to text. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdi"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/workload"
)

// ClassRow is one bar of Fig. 2: an application's block population by
// compression class, as measured by the real BDI compressor over the
// application's generated contents.
type ClassRow struct {
	App            string
	HCR            float64
	LCR            float64
	Incompressible float64
}

// Fig2CompressionProfile measures the compression-class distribution of
// every profiled application plus the average row (paper: 49% HCR,
// 29% LCR, 22% incompressible on average).
func Fig2CompressionProfile(samplesPerApp int) []ClassRow {
	profs := workload.Profiles()
	names := make([]string, 0, len(profs))
	for n, p := range profs {
		if p.Synthetic {
			continue // not part of the paper's Fig. 2 application set
		}
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]ClassRow, 0, len(names)+1)
	var avg ClassRow
	for _, name := range names {
		app, err := workload.NewApp(profs[name], 0, 42)
		if err != nil {
			panic(err) // profiles are validated by construction
		}
		var hcr, lcr, inc int
		for b := 0; b < samplesPerApp; b++ {
			c := bdi.Compress(app.Content(uint64(b % profs[name].FootprintBlocks)))
			switch bdi.ClassOf(c.Enc) {
			case bdi.ClassHCR:
				hcr++
			case bdi.ClassLCR:
				lcr++
			default:
				inc++
			}
		}
		n := float64(samplesPerApp)
		row := ClassRow{App: name, HCR: float64(hcr) / n, LCR: float64(lcr) / n,
			Incompressible: float64(inc) / n}
		rows = append(rows, row)
		avg.HCR += row.HCR
		avg.LCR += row.LCR
		avg.Incompressible += row.Incompressible
	}
	k := float64(len(names))
	rows = append(rows, ClassRow{App: "average", HCR: avg.HCR / k, LCR: avg.LCR / k,
		Incompressible: avg.Incompressible / k})
	return rows
}

// Table1BDI renders the BDI encoding table (Table I).
func Table1BDI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %6s %5s %6s\n", "Encoding", "Base", "Delta", "Size", "Class")
	for _, s := range bdi.Specs() {
		base, delta := "-", "-"
		if s.Base > 0 {
			base = fmt.Sprintf("%d", s.Base)
		}
		if s.Delta > 0 {
			delta = fmt.Sprintf("%d", s.Delta)
		}
		fmt.Fprintf(&b, "%-14s %5s %6s %5d %6s\n", s.Name, base, delta, s.Size,
			bdi.ClassOf(s.Enc))
	}
	return b.String()
}

// Table2CARWR renders the CA_RWR decision matrix (Table II) by querying
// the actual policy implementation.
func Table2CARWR(cpth int) string {
	p := policy.CARWR{}
	var b strings.Builder
	fmt.Fprintf(&b, "CA_RWR insertion targets (CPth = %d)\n", cpth)
	fmt.Fprintf(&b, "%-12s %-14s %-14s\n", "Reuse", "small block", "big block")
	for _, r := range []hybrid.ReuseClass{hybrid.ReuseNone, hybrid.ReuseRead, hybrid.ReuseWrite} {
		small := p.Target(hybrid.InsertInfo{CBSize: cpth, CPth: cpth, Tag: hybrid.BlockTag{Reuse: r}})
		big := p.Target(hybrid.InsertInfo{CBSize: 64, CPth: cpth, Tag: hybrid.BlockTag{Reuse: r}})
		fmt.Fprintf(&b, "%-12s %-14s %-14s\n", r, small, big)
	}
	return b.String()
}

// Table3Row is one line of the policy summary (Table III).
type Table3Row struct {
	Name        string
	Granularity nvm.Granularity
	Compression bool
	NVMAware    bool
}

// Table3Policies returns the tested-policy summary of Table III.
func Table3Policies() []Table3Row {
	return []Table3Row{
		{"BH", nvm.FrameDisabling, false, false},
		{"BH_CP", nvm.ByteDisabling, true, false},
		{"LHybrid", nvm.FrameDisabling, false, true},
		{"TAP", nvm.FrameDisabling, false, true},
		{"CP_SD", nvm.ByteDisabling, true, true},
		{"CP_SD_Th", nvm.ByteDisabling, true, true},
	}
}

// Table4System renders the system specification (Table IV) for a config.
func Table4System(cfg core.Config) string {
	lat := cfg.Latencies()
	var b strings.Builder
	fmt.Fprintf(&b, "Cores            4, out-of-order, 3.5 GHz (issue width 4 effective)\n")
	fmt.Fprintf(&b, "L1               %d sets x %d ways (64 B lines), %d-cycle load-use\n",
		cfg.L1Sets, cfg.L1Ways, lat.L1Hit)
	fmt.Fprintf(&b, "L2               %d KB, %d ways, %d-cycle load-use\n",
		cfg.L2SizeKB, cfg.L2Ways, lat.L2Hit)
	fmt.Fprintf(&b, "Hybrid LLC       %d sets: %d SRAM ways (%d-cycle), %d NVM ways (%d-cycle +%d decomp)\n",
		cfg.LLCSets, cfg.SRAMWays, lat.LLCSRAM, cfg.NVMWays, lat.LLCNVM, lat.Decompress)
	fmt.Fprintf(&b, "NVM endurance    mean %.2g writes, cv %.2f\n", cfg.EnduranceMean, cfg.EnduranceCV)
	fmt.Fprintf(&b, "Main memory      %d-cycle access\n", lat.Memory)
	fmt.Fprintf(&b, "Epoch            %d cycles (set dueling)\n", cfg.EpochCycles)
	return b.String()
}

// Table5Mixes renders the workload mixes (Table V).
func Table5Mixes() string {
	var b strings.Builder
	for i, mix := range workload.Mixes() {
		fmt.Fprintf(&b, "mix %-2d  %s\n", i+1, strings.Join(mix, " "))
	}
	return b.String()
}

// OverheadRow quantifies the §V-G metadata overhead discussion.
type OverheadRow struct {
	Scheme            string
	BitsPerFrame      int
	FractionOfNVMData float64 // fault-map bits over NVM data-array bits
}

// OverheadTable returns the fault-map storage overhead for both disabling
// granularities (paper: byte-level fault map = 12.3% of the NVM data
// array; our frame stores 66 B so the exact figure is 66/(66*8) = 12.5%).
func OverheadTable() []OverheadRow {
	return []OverheadRow{
		{"frame-disabling (BH, LHybrid, TAP)", 1, 1.0 / float64(nvm.FrameBytes*8)},
		{"byte-disabling (BH_CP, CP_SD)", nvm.FrameBytes, 1.0 / 8.0},
	}
}
