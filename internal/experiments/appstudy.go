package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AppRow is one application's behaviour under a policy when run
// homogeneously (four copies, one per core) — the per-benchmark view
// behind §IV-A's observations: with CA, fully-incompressible applications
// (xz17, milc06) push everything into SRAM and over-reference it, while
// fully-compressible ones (GemsFDTD06, zeusmp06) do the opposite.
type AppRow struct {
	App            string
	HitRate        float64
	MeanIPC        float64
	NVMBytes       uint64
	NVMShare       float64 // fraction of LLC insertions placed in NVM
	CompressibleFr float64 // fraction of inserted blocks that compressed
}

// PerAppStudy runs each profiled application homogeneously under the given
// policy configuration and reports the per-app placement behaviour. Rows
// are sorted by application name. An invalid policy fails fast; a failure
// inside one application's simulation drops that row and is reported in
// the returned task records while the remaining applications complete.
func PerAppStudy(base core.Config, policyName string, warmup, measure uint64) ([]AppRow, []cliutil.TaskResult, error) {
	probe := base
	probe.PolicyName = policyName
	if _, _, _, _, err := core.BuildPolicy(probe); err != nil {
		return nil, nil, err
	}

	profs := workload.Profiles()
	names := make([]string, 0, len(profs))
	for n, p := range profs {
		if p.Synthetic {
			continue // the per-app figures cover the paper's Table V apps
		}
		names = append(names, n)
	}
	sort.Strings(names)

	rows := make([]AppRow, len(names))
	tasks := make([]cliutil.Task, len(names))
	for i := range tasks {
		i := i
		name := names[i]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("app=%s", name), Run: func() error {
			cfg := base
			cfg.PolicyName = policyName
			sys, err := buildHomogeneous(cfg, profs[name])
			if err != nil {
				return err
			}
			sys.Run(warmup)
			r := sys.Run(measure)
			row := AppRow{
				App:      name,
				HitRate:  r.LLC.HitRate(),
				MeanIPC:  r.MeanIPC,
				NVMBytes: r.LLC.NVMBytesWritten,
			}
			if ins := r.LLC.SRAMInserts + r.LLC.NVMInserts; ins > 0 {
				row.NVMShare = float64(r.LLC.NVMInserts) / float64(ins)
			}
			if tot := r.LLC.InsertHCR + r.LLC.InsertLCR + r.LLC.InsertIncomp; tot > 0 {
				row.CompressibleFr = float64(r.LLC.InsertHCR+r.LLC.InsertLCR) / float64(tot)
			}
			rows[i] = row
			return nil
		}}
	}
	results := runTasks(tasks)
	var out []AppRow
	for i, r := range results {
		if !r.Failed() {
			out = append(out, rows[i])
		}
	}
	return out, results, nil
}

// buildHomogeneous constructs a system running four copies of one profile,
// reusing the config's geometry and policy selection.
func buildHomogeneous(cfg core.Config, prof workload.Profile) (*hier.System, error) {
	pol, thr, sram, nvmW, err := core.BuildPolicy(cfg)
	if err != nil {
		return nil, err
	}
	apps := make([]*workload.App, 4)
	for i := range apps {
		p := prof.Scale(cfg.Scale)
		apps[i], err = workload.NewApp(p, uint64(i+1)*workload.AppSpacing, cfg.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
	}
	llc := hybrid.New(hybrid.Config{
		Sets: cfg.LLCSets, SRAMWays: sram, NVMWays: nvmW,
		Policy: pol, Thresholds: thr,
		Endurance: nvm.EnduranceModel{Mean: cfg.EnduranceMean, CV: cfg.EnduranceCV},
		Sampler:   stats.NewRNG(cfg.Seed ^ 0xE7D5),
	})
	hcfg := hier.Config{
		L1Sets: cfg.L1Sets, L1Ways: cfg.L1Ways,
		L2Sets: cfg.L2SizeKB * 1024 / (cfg.L2Ways * 64), L2Ways: cfg.L2Ways,
		EpochCycles: cfg.EpochCycles, IssueWidth: 4,
		Lat: cfg.Latencies(), Banks: cfg.LLCBanks,
	}
	return hier.New(hcfg, llc, apps), nil
}
