package experiments

import (
	"fmt"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dueling"
)

// CPthRow is one x-position of Figs. 6 and 7: the CA and CA_RWR policies
// evaluated at a fixed compression threshold, averaged over mixes.
type CPthRow struct {
	CPth          int
	CAHits        float64
	CARWRHits     float64
	CANVMBytes    float64
	CARWRNVMBytes float64
}

// CPthSweep is the full Fig. 6 + Fig. 7 dataset. Hits and NVM bytes are
// raw per-window means; normalise against BH for the paper's axes.
type CPthSweep struct {
	Rows       []CPthRow
	BHHits     float64
	BHNVMBytes float64
	CPSDHits   float64
	CPSDBytes  float64
}

// NormalizedHitRate returns row hits normalised to BH (Fig. 6 y-axis).
func (s *CPthSweep) NormalizedHitRate(hits float64) float64 {
	if s.BHHits == 0 {
		return 0
	}
	return hits / s.BHHits
}

// NormalizedBytes returns NVM bytes normalised to BH (Fig. 7 y-axis).
func (s *CPthSweep) NormalizedBytes(bytes float64) float64 {
	if s.BHNVMBytes == 0 {
		return 0
	}
	return bytes / s.BHNVMBytes
}

// Fig6And7CPthSweep evaluates CA and CA_RWR at every candidate CPth, plus
// the BH reference and the CP_SD adaptive line, averaged across mixes.
// Per-threshold failures do not abort the sweep: failed rows are dropped
// from the result and returned as structured task records; only the
// reference lines (BH, CP_SD), which the normalisation needs, are fatal.
func Fig6And7CPthSweep(base core.Config, mixes []int, warmup, measure uint64) (CPthSweep, []cliutil.TaskResult, error) {
	var out CPthSweep
	bh := base
	bh.PolicyName = "BH"
	_, bhMean, err := core.MeasureMixes(bh, mixes, warmup, measure)
	if err != nil {
		return out, nil, err
	}
	out.BHHits = float64(bhMean.Hits)
	out.BHNVMBytes = float64(bhMean.NVMBytesWritten)

	rows := make([]CPthRow, len(dueling.DefaultCandidates))
	tasks := make([]cliutil.Task, len(dueling.DefaultCandidates))
	for i := range tasks {
		i := i
		cpth := dueling.DefaultCandidates[i]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("cpth=%d", cpth), Run: func() error {
			row := CPthRow{CPth: cpth}
			ca := base
			ca.PolicyName, ca.CPth = "CA", cpth
			_, m, err := core.MeasureMixes(ca, mixes, warmup, measure)
			if err != nil {
				return err
			}
			row.CAHits = float64(m.Hits)
			row.CANVMBytes = float64(m.NVMBytesWritten)

			rwr := base
			rwr.PolicyName, rwr.CPth = "CA_RWR", cpth
			_, m, err = core.MeasureMixes(rwr, mixes, warmup, measure)
			if err != nil {
				return err
			}
			row.CARWRHits = float64(m.Hits)
			row.CARWRNVMBytes = float64(m.NVMBytesWritten)
			rows[i] = row
			return nil
		}}
	}
	results := runTasks(tasks)
	for i, r := range results {
		if !r.Failed() {
			out.Rows = append(out.Rows, rows[i])
		}
	}

	sd := base
	sd.PolicyName = "CP_SD"
	_, m, err := core.MeasureMixes(sd, mixes, warmup, measure)
	if err != nil {
		return out, results, err
	}
	out.CPSDHits = float64(m.Hits)
	out.CPSDBytes = float64(m.NVMBytesWritten)
	return out, results, nil
}

// Fig8Result is the optimal-CPth epoch distribution of Fig. 8.
type Fig8Result struct {
	Candidates []int
	// Capacities lists the NVM capacity operating points of Fig. 8a;
	// ByCapacity[i][k] is the fraction of epochs in which candidate k had
	// the most hits at capacity Capacities[i], pooled over mixes.
	Capacities []float64
	ByCapacity [][]float64
	// Mixes lists mix ids; ByMix[i][k] is the same distribution per mix
	// at 100% capacity (Fig. 8b).
	Mixes []int
	ByMix [][]float64
}

// Fig8OptimalCPth measures, per set-dueling epoch, which CPth candidate
// achieved the most hits in its sampler sets, across NVM capacities and
// mixes.
func Fig8OptimalCPth(base core.Config, mixes []int, capacities []float64, warmupEpochs, epochs int) (Fig8Result, error) {
	res := Fig8Result{
		Candidates: append([]int(nil), dueling.DefaultCandidates...),
		Capacities: capacities,
		Mixes:      mixes,
	}
	nc := len(res.Candidates)
	res.ByMix = make([][]float64, len(mixes))
	for _, capacity := range capacities {
		counts := make([]float64, nc)
		total := 0.0
		for mi, m := range mixes {
			cfg := base
			cfg.MixID = m
			cfg.PolicyName = "CP_SD"
			sys, err := cfg.Build()
			if err != nil {
				return res, err
			}
			core.PreAge(sys, capacity)
			d, ok := core.Dueling(sys)
			if !ok {
				return res, fmt.Errorf("experiments: CP_SD system has no dueling controller")
			}
			d.RecordPerEpoch = true
			sys.Run(uint64(warmupEpochs+epochs) * cfg.EpochCycles)
			eh := d.EpochHits
			if len(eh) > epochs {
				eh = eh[len(eh)-epochs:]
			}
			mixCounts := make([]float64, nc)
			for _, hits := range eh {
				best := 0
				for k := 1; k < nc; k++ {
					if hits[k] > hits[best] {
						best = k
					}
				}
				counts[best]++
				mixCounts[best]++
				total++
			}
			if capacity == 1.0 {
				normalize(mixCounts)
				res.ByMix[mi] = mixCounts
			}
		}
		normalize(counts)
		_ = total
		res.ByCapacity = append(res.ByCapacity, counts)
	}
	return res, nil
}

func normalize(xs []float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range xs {
		xs[i] /= sum
	}
}

// ThPoint is one marker of Fig. 9: hits and NVM bytes written of CP_SD_Th
// at a given Th and NVM capacity, normalised to BH at 100% capacity.
type ThPoint struct {
	Th       float64
	Capacity float64
	Hits     float64 // normalised to BH @ 100%
	NVMBytes float64 // normalised to BH @ 100%
}

// Fig9ThTradeoff sweeps Th at Tw=tw across capacities. Th=0 reproduces
// plain CP_SD. Failed (Th, capacity) points are dropped from the result
// and returned as structured task records; the BH reference is fatal.
func Fig9ThTradeoff(base core.Config, mixes []int, ths []float64, capacities []float64, tw float64, warmup, measure uint64) ([]ThPoint, []cliutil.TaskResult, error) {
	bh := base
	bh.PolicyName = "BH"
	_, bhMean, err := core.MeasureMixes(bh, mixes, warmup, measure)
	if err != nil {
		return nil, nil, err
	}
	bhHits := float64(bhMean.Hits)
	bhBytes := float64(bhMean.NVMBytesWritten)

	pts := make([]ThPoint, len(capacities)*len(ths))
	tasks := make([]cliutil.Task, len(pts))
	for i := range tasks {
		i := i
		capacity := capacities[i/len(ths)]
		th := ths[i%len(ths)]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("th=%g/cap=%g", th, capacity), Run: func() error {
			var hits, bytes float64
			for _, m := range mixes {
				cfg := base
				cfg.MixID = m
				if th == 0 {
					cfg.PolicyName = "CP_SD"
				} else {
					cfg.PolicyName = "CP_SD_Th"
					cfg.Th, cfg.Tw = th, tw
				}
				sys, err := cfg.Build()
				if err != nil {
					return err
				}
				core.PreAge(sys, capacity)
				s := core.Measure(sys, warmup, measure)
				hits += float64(s.Hits)
				bytes += float64(s.NVMBytesWritten)
			}
			n := float64(len(mixes))
			pts[i] = ThPoint{
				Th:       th,
				Capacity: capacity,
				Hits:     hits / n / bhHits,
				NVMBytes: bytes / n / bhBytes,
			}
			return nil
		}}
	}
	results := runTasks(tasks)
	var out []ThPoint
	for i, r := range results {
		if !r.Failed() {
			out = append(out, pts[i])
		}
	}
	return out, results, nil
}

// EpochSizeRow is one point of the §IV-C epoch-size sensitivity study.
type EpochSizeRow struct {
	EpochCycles uint64
	Hits        float64 // mean hits per cycle across mixes (comparable rate)
	HitRate     float64
}

// EpochSizeSweep evaluates CP_SD under different set-dueling epoch sizes
// (the paper selects 2M cycles).
func EpochSizeSweep(base core.Config, mixes []int, sizes []uint64, warmup, measure uint64) ([]EpochSizeRow, error) {
	var out []EpochSizeRow
	for _, sz := range sizes {
		cfg := base
		cfg.PolicyName = "CP_SD"
		cfg.EpochCycles = sz
		_, m, err := core.MeasureMixes(cfg, mixes, warmup, measure)
		if err != nil {
			return nil, err
		}
		out = append(out, EpochSizeRow{
			EpochCycles: sz,
			Hits:        float64(m.Hits) / float64(measure),
			HitRate:     m.HitRate,
		})
	}
	return out, nil
}
