package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/report"
)

// This file is the hot-path performance baseline: per mix×policy it
// measures what one LLC access costs the simulator itself — wall time,
// heap allocations and allocated bytes — so the zero-allocation work on
// the bdi/hybrid/nvm hot paths stays locked in. cmd/bench drives it and
// writes the result as BENCH_hotpath.json; compare runs with benchstat
// or by diffing the JSON.

// HotPathOptions selects the sweep: base geometry plus the mixes and
// policies to cross.
type HotPathOptions struct {
	Base     core.Config
	Mixes    []int // 0-based
	Policies []string
	Warmup   uint64 // cycles before the measured window
	Measure  uint64 // measured cycles
}

// HotPathRow is one mix×policy measurement. Ns/allocs/bytes are per LLC
// access, derived from wall time and runtime.MemStats deltas across the
// measured window.
type HotPathRow struct {
	Mix             int // 0-based
	Policy          string
	Accesses        uint64
	NsPerAccess     float64
	AllocsPerAccess float64
	BytesPerAccess  float64
	MeanIPC         float64
	HitRate         float64
}

// HotPathBench runs the mix×policy cross on the cliutil pool and returns
// the per-cell rows plus the raw task records (failed cells are dropped
// from rows but reported in the records). MemStats is process-global, so
// the pool is pinned to one worker: cells run sequentially and never
// see each other's allocations.
func HotPathBench(opt HotPathOptions) ([]HotPathRow, []cliutil.TaskResult, error) {
	if len(opt.Mixes) == 0 || len(opt.Policies) == 0 {
		return nil, nil, fmt.Errorf("experiments: hot-path bench needs at least one mix and one policy")
	}
	type cell struct{ mix, pol int }
	cells := make([]cell, 0, len(opt.Mixes)*len(opt.Policies))
	for _, m := range opt.Mixes {
		for p := range opt.Policies {
			cells = append(cells, cell{mix: m, pol: p})
		}
	}
	rows := make([]HotPathRow, len(cells))
	ok := make([]bool, len(cells))
	tasks := make([]cliutil.Task, len(cells))
	for i := range tasks {
		i := i
		c := cells[i]
		name := fmt.Sprintf("mix=%d policy=%s", c.mix+1, opt.Policies[c.pol])
		tasks[i] = cliutil.Task{Name: name, Run: func() error {
			row, err := measureHotPath(opt, c.mix, opt.Policies[c.pol])
			if err != nil {
				return err
			}
			rows[i] = row
			ok[i] = true
			return nil
		}}
	}
	results := cliutil.RunTasks(tasks, cliutil.PoolConfig{Workers: 1})
	out := rows[:0]
	for i := range rows {
		if ok[i] {
			out = append(out, rows[i])
		}
	}
	return out, results, nil
}

// measureHotPath builds one system, warms it to steady state (cache
// contents and all scratch buffers populated) and times the measured
// window. The explicit GC before the window keeps a collection triggered
// by warmup garbage from landing mid-measurement.
func measureHotPath(opt HotPathOptions, mix int, policyName string) (HotPathRow, error) {
	cfg := opt.Base
	cfg.MixID = mix
	cfg.PolicyName = policyName
	sys, err := cfg.Build()
	if err != nil {
		return HotPathRow{}, err
	}
	sys.Run(opt.Warmup)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	a0 := sys.Accesses()
	t0 := time.Now()
	r := sys.Run(opt.Measure)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	da := sys.Accesses() - a0
	if da == 0 {
		return HotPathRow{}, fmt.Errorf("experiments: no LLC accesses in %d measured cycles", opt.Measure)
	}
	return HotPathRow{
		Mix:             mix,
		Policy:          policyName,
		Accesses:        da,
		NsPerAccess:     float64(elapsed.Nanoseconds()) / float64(da),
		AllocsPerAccess: float64(m1.Mallocs-m0.Mallocs) / float64(da),
		BytesPerAccess:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(da),
		MeanIPC:         r.MeanIPC,
		HitRate:         r.LLC.HitRate(),
	}, nil
}

// HotPathReport assembles the sweep into the shared report sink. The
// "hotpath" table is the schema consumers script against:
// mix (1-based), policy, accesses, ns_per_access, allocs_per_access,
// bytes_per_access, mean_ipc, hit_rate.
func HotPathReport(opt HotPathOptions, rows []HotPathRow, results []cliutil.TaskResult) *report.Report {
	rep := report.NewReport("hot-path performance baseline")
	rep.AddField("warmup_cycles", opt.Warmup)
	rep.AddField("measure_cycles", opt.Measure)
	rep.AddField("llc_sets", opt.Base.LLCSets)
	rep.AddField("seed", opt.Base.Seed)
	rep.AddField("go_version", runtime.Version())
	rep.AddField("gomaxprocs", runtime.GOMAXPROCS(0))
	tab := report.New("hotpath",
		"mix", "policy", "accesses", "ns_per_access",
		"allocs_per_access", "bytes_per_access", "mean_ipc", "hit_rate")
	for _, r := range rows {
		tab.AddRow(r.Mix+1, r.Policy, report.FormatCount(r.Accesses), r.NsPerAccess,
			r.AllocsPerAccess, r.BytesPerAccess, r.MeanIPC, r.HitRate)
	}
	rep.AddTable(tab)
	cliutil.AddRunSummary(rep, results)
	return rep
}
