package experiments

import (
	"fmt"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/energy"
)

// EnergyRow is one policy's energy profile over a measurement window.
type EnergyRow struct {
	Policy       string
	Breakdown    energy.Breakdown
	PerKI        float64 // mJ per kilo-instruction
	MeanIPC      float64
	RelativeToBH float64 // total energy vs the BH baseline (set when BH ran)
}

// EnergyComparison measures the energy of each named policy on the same
// mixes. It mirrors the motivation of TAP ([32] reports −25% LLC energy
// vs LRU): NVM-conservative policies avoid expensive NVM writes, and
// compression shrinks each write that remains.
// A failed policy is dropped from the result (and from the BH
// normalisation) and reported in the returned task records.
func EnergyComparison(base core.Config, policies []string, mixes []int, warmup, measure uint64) ([]EnergyRow, []cliutil.TaskResult, error) {
	model := energy.Default()
	rows := make([]EnergyRow, len(policies))
	tasks := make([]cliutil.Task, len(policies))
	for pi := range tasks {
		pi := pi
		name := policies[pi]
		tasks[pi] = cliutil.Task{Name: fmt.Sprintf("policy=%s", name), Run: func() error {
			var agg energy.Breakdown
			var instr uint64
			var ipc float64
			for _, m := range mixes {
				cfg := base
				cfg.MixID = m
				cfg.PolicyName = name
				cfg.Th = 4
				sys, err := cfg.Build()
				if err != nil {
					return err
				}
				sys.Run(warmup)
				r := sys.Run(measure)
				g := energy.Geometry{
					Sets:     sys.LLC().Sets(),
					SRAMWays: sys.LLC().SRAMWays(),
					NVMWays:  sys.LLC().NVMWays(),
				}
				b := model.Window(r.LLC, r.Cycles, g)
				agg.SRAMDynamic += b.SRAMDynamic
				agg.NVMDynamic += b.NVMDynamic
				agg.TagDynamic += b.TagDynamic
				agg.SRAMLeak += b.SRAMLeak
				agg.NVMLeak += b.NVMLeak
				for _, n := range r.Insts {
					instr += n
				}
				ipc += r.MeanIPC / float64(len(mixes))
			}
			rows[pi] = EnergyRow{
				Policy:    name,
				Breakdown: agg,
				PerKI:     energy.PerKiloInstr(agg, instr),
				MeanIPC:   ipc,
			}
			return nil
		}}
	}
	results := runTasks(tasks)
	var out []EnergyRow
	for pi, r := range results {
		if !r.Failed() {
			out = append(out, rows[pi])
		}
	}
	var bhTotal float64
	for _, row := range out {
		if row.Policy == "BH" {
			bhTotal = row.Breakdown.Total()
		}
	}
	if bhTotal > 0 {
		for i := range out {
			out[i].RelativeToBH = out[i].Breakdown.Total() / bhTotal
		}
	}
	return out, results, nil
}
