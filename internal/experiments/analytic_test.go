package experiments

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/forecast"
)

// TestAnalyticDifferentialAccuracy is the differential accuracy suite:
// the analytic estimator against the full forecast over three seeded
// mixes × three policies, every cell required to respect the estimate's
// own reported error bounds. The calibration window is deliberately
// SHORTER than the forecast's phase window — with equal windows the
// young-IPC comparison is bit-exact and the suite would pin nothing.
func TestAnalyticDifferentialAccuracy(t *testing.T) {
	base := quickBase()
	base.EnduranceMean = 2e4
	fcfg := forecast.DefaultConfig()
	fcfg.WarmupCycles = 200_000
	fcfg.PhaseCycles = 800_000
	fcfg.CapacityStep = 0.125
	fcfg.MaxPhases = 8
	specs := []ForecastSpec{
		{"BH", func(c *core.Config) { c.PolicyName = "BH" }},
		{"LHybrid", func(c *core.Config) { c.PolicyName = "LHybrid" }},
		{"CP_SD", func(c *core.Config) { c.PolicyName = "CP_SD" }},
	}
	// Mix 5 is excluded deliberately: LHybrid's write behavior there
	// changes qualitatively as the array ages (the forecast censors only
	// after re-measuring an aged cache), which no young-window model can
	// see — the estimator's validity domain is cells whose censoring
	// verdict is age-stable.
	mixes := []int{0, 3, 6}

	cells, taskResults, err := AnalyticValidation(base, specs, mixes, fcfg, 200_000, 600_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fails := cliutil.Failures(taskResults); len(fails) != 0 {
		t.Fatalf("task failures: %+v", fails)
	}
	if len(cells) != len(specs)*len(mixes) {
		t.Fatalf("%d cells, want %d", len(cells), len(specs)*len(mixes))
	}
	redistributed := 0
	for _, c := range cells {
		t.Logf("%-8s mix=%d  ipc_err=%.4f (bound %.3f)  life_err=%.4f (bound %.3f)  redistributed=%v censored=%v/%v",
			c.Policy, c.Mix+1, c.IPCRelErr, c.Est.IPCErrorBound,
			c.LifetimeRelErr, c.Est.LifetimeErrorBound,
			c.Est.Redistributed, c.SimCensored, c.Est.Censored)
		if !c.WithinBounds() {
			t.Errorf("%s mix=%d outside its own bounds: ipc %.4f > %.3f or lifetime %.4f > %.3f",
				c.Policy, c.Mix+1, c.IPCRelErr, c.Est.IPCErrorBound,
				c.LifetimeRelErr, c.Est.LifetimeErrorBound)
		}
		if c.Est.YoungIPC <= 0 {
			t.Errorf("%s mix=%d degenerate estimate: %+v", c.Policy, c.Mix+1, c.Est)
		}
		if c.Est.Redistributed {
			redistributed++
			if c.Est.LifetimeErrorBound < analytic.RedistributedLifetimeBound {
				t.Errorf("%s mix=%d redistributed estimate carries bound %.3f < %.3f",
					c.Policy, c.Mix+1, c.Est.LifetimeErrorBound, analytic.RedistributedLifetimeBound)
			}
		}
	}
	// LHybrid concentrates its young writes on too few frames to reach
	// the target at frozen rates — the suite must exercise the fallback.
	if redistributed == 0 {
		t.Error("no cell exercised the uniform-redistribution fallback")
	}
}

// TestAnalyticComparisonQuick pins the fast-path counterpart of
// ForecastComparison (cmd/forecast -analytic): same aggregate shape,
// one calibration per cell.
func TestAnalyticComparisonQuick(t *testing.T) {
	base := quickBase()
	base.EnduranceMean = 2e4
	specs := []ForecastSpec{
		{"BH", func(c *core.Config) { c.PolicyName = "BH" }},
		{"SRAM16", func(c *core.Config) { c.PolicyName = "SRAM16" }},
	}
	fs, taskResults, err := AnalyticComparison(base, specs, []int{0}, 200_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if fails := cliutil.Failures(taskResults); len(fails) != 0 {
		t.Fatalf("task failures: %+v", fails)
	}
	if len(fs) != 2 {
		t.Fatalf("%d forecasts", len(fs))
	}
	bh, ok := FindSpec(fs, "BH")
	if !ok || len(bh.PerMix) != 1 {
		t.Fatal("BH aggregate missing")
	}
	if bh.InitialIPC <= 0 {
		t.Fatal("no initial IPC")
	}
	if math.IsInf(bh.MeanLifetimeMonths, 1) || bh.MeanLifetimeMonths <= 0 {
		t.Fatalf("BH lifetime %v", bh.MeanLifetimeMonths)
	}
	sram, ok := FindSpec(fs, "SRAM16")
	if !ok {
		t.Fatal("SRAM16 aggregate missing")
	}
	if sram.CensoredMixes != 1 || !math.IsInf(sram.MeanLifetimeMonths, 1) {
		t.Fatalf("SRAM bound must be censored: %+v", sram)
	}
}
