package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// LeagueSpecs builds one forecast spec per registered policy name, for
// the tournament league table. Unlike the fixed Fig-10 curve set, any
// registry policy qualifies — including the RRIP family and the
// tournament meta-policies — so the league grows automatically with the
// registry.
func LeagueSpecs(names []string) ([]ForecastSpec, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("empty league")
	}
	valid := core.Policies()
	specs := make([]ForecastSpec, 0, len(names))
	for _, name := range names {
		ok := false
		for _, p := range valid {
			if p == name {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown policy %q (valid: %v)", name, valid)
		}
		name := name
		specs = append(specs, ForecastSpec{Label: name, Mutate: func(c *core.Config) {
			c.PolicyName = name
		}})
	}
	return specs, nil
}

// DefaultLeague is the standings the tournament command contests by
// default: the paper's dueling baseline against the whole RRIP-family
// substrate and both tournament meta-policies.
func DefaultLeague() []string {
	return []string{"CP_SD", "CA_RWR", "SRRIP", "BRRIP", "PAR", "DRRIP", "TOURNAMENT"}
}

// LeagueRow is one line of the ranked standings.
type LeagueRow struct {
	Rank   int
	Policy string
	// MeanLifetimeMonths and CensoredMixes aggregate the lifetime axis;
	// InitialIPC the performance axis (young-cache across-mix mean).
	MeanLifetimeMonths float64
	CensoredMixes      int
	InitialIPC         float64
	// NormIPC is InitialIPC over the league's best InitialIPC.
	NormIPC float64
}

// RankLeague orders the forecasts into standings: longest mean lifetime
// first (censored-everywhere entries, whose lifetime is unbounded below,
// outrank finite ones; more censored mixes break lifetime ties), then
// higher initial IPC, then name for stability. IPC is normalised to the
// league's best.
func RankLeague(fs []PolicyForecast) []LeagueRow {
	rows := make([]LeagueRow, len(fs))
	best := 0.0
	for i, pf := range fs {
		rows[i] = LeagueRow{
			Policy:             pf.Label,
			MeanLifetimeMonths: pf.MeanLifetimeMonths,
			CensoredMixes:      pf.CensoredMixes,
			InitialIPC:         pf.InitialIPC,
		}
		if pf.InitialIPC > best {
			best = pf.InitialIPC
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		li, lj := rows[i].MeanLifetimeMonths, rows[j].MeanLifetimeMonths
		switch {
		case li != lj: // +Inf compares equal to itself, so this also orders Inf > finite
			return li > lj
		case rows[i].CensoredMixes != rows[j].CensoredMixes:
			return rows[i].CensoredMixes > rows[j].CensoredMixes
		case rows[i].InitialIPC != rows[j].InitialIPC:
			return rows[i].InitialIPC > rows[j].InitialIPC
		default:
			return rows[i].Policy < rows[j].Policy
		}
	})
	for i := range rows {
		rows[i].Rank = i + 1
		rows[i].NormIPC = NormalizeTo(rows[i].InitialIPC, best)
	}
	return rows
}
