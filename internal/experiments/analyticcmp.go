package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/forecast"
)

// This file connects the analytic fast path to the experiment harness:
// AnalyticComparison is the fast-path counterpart of ForecastComparison
// (one calibration per cell instead of a full forecast — cmd/forecast
// -analytic), and AnalyticValidation is the cross-validation that fits
// and polices the estimator's error bounds by running both paths per
// cell (the differential accuracy suite pins it).

// AnalyticSpecFor derives the estimate spec for a config and a
// calibration window, with the paper's 50% capacity target.
func AnalyticSpecFor(cfg core.Config, warmupCycles, calibrationCycles uint64) analytic.Spec {
	return analytic.Spec{
		Config:            cfg,
		WarmupCycles:      warmupCycles,
		CalibrationCycles: calibrationCycles,
		TargetCapacity:    0.5,
	}
}

// synthResult lifts a calibration into a one-point forecast.Result so
// the analytic comparison reuses every forecast aggregate and renderer
// (PolicyForecast, IPCAt, the cmd/forecast tables).
func synthResult(label string, cal *analytic.Calibration) forecast.Result {
	res := forecast.Result{
		Policy: label,
		Points: []forecast.Point{{
			Capacity:    1,
			MeanIPC:     cal.YoungIPC,
			HitRate:     cal.HitRate,
			NVMByteRate: cal.NVMByteRate,
		}},
		LifetimeSeconds: cal.LifetimeSeconds,
	}
	if cal.Censored {
		res.LifetimeSeconds = math.Inf(1)
	}
	return res
}

// AnalyticComparison is ForecastComparison on the fast path: one
// calibration simulation per (spec, mix) cell, closed-form aging, no
// iterative forecast. Cells run in parallel on the hardened pool; a
// failed cell is dropped from its policy's aggregates and reported in
// the task records.
func AnalyticComparison(base core.Config, specs []ForecastSpec, mixes []int, warmupCycles, calibrationCycles uint64) ([]PolicyForecast, []cliutil.TaskResult, error) {
	results := make([]forecast.Result, len(specs)*len(mixes))
	tasks := make([]cliutil.Task, len(results))
	for i := range tasks {
		i := i
		spec := specs[i/len(mixes)]
		m := mixes[i%len(mixes)]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("curve=%s/mix=%d", spec.Label, m+1), Run: func() error {
			cfg := base
			cfg.MixID = m
			spec.Mutate(&cfg)
			cal, err := analytic.Calibrate(context.Background(), AnalyticSpecFor(cfg, warmupCycles, calibrationCycles))
			if err != nil {
				return err
			}
			results[i] = synthResult(spec.Label, cal)
			return nil
		}}
	}
	taskResults := runTasks(tasks)
	return aggregateForecasts(specs, mixes, results, taskResults), taskResults, nil
}

// AnalyticCell is one cross-validated (policy, mix) cell: the exact
// forecast's answer, the analytic estimate, and the relative errors
// between them.
type AnalyticCell struct {
	Policy string
	Mix    int // 0-based

	// The slow path's ground truth.
	SimLifetimeMonths float64
	SimCensored       bool
	SimYoungIPC       float64

	// The fast path's answer (bounds filled from the validation table).
	Est analytic.Estimate

	// Relative errors |analytic − forecast| / forecast. LifetimeRelErr
	// is 0 when both paths censor (they agree the config never dies) and
	// +Inf when exactly one censors — a censoring disagreement can never
	// pass a finite bound.
	IPCRelErr      float64
	LifetimeRelErr float64
}

// WithinBounds reports whether the cell's errors respect the estimate's
// own reported bounds.
func (c AnalyticCell) WithinBounds() bool {
	return c.IPCRelErr <= c.Est.IPCErrorBound && c.LifetimeRelErr <= c.Est.LifetimeErrorBound
}

// relErr is the relative error of est against the reference ref.
func relErr(est, ref float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-ref) / ref
}

// AnalyticValidation cross-validates the analytic estimator against the
// full forecast over a mix × policy matrix: each cell runs both paths
// (in parallel across cells on the hardened pool) and reports the
// relative errors. The bounds table (nil selects the defaults) fills
// each estimate's reported bounds, so callers can assert
// cell.WithinBounds — exactly what the differential accuracy suite does.
func AnalyticValidation(base core.Config, specs []ForecastSpec, mixes []int, fcfg forecast.Config, warmupCycles, calibrationCycles uint64, bounds *analytic.BoundsTable) ([]AnalyticCell, []cliutil.TaskResult, error) {
	if bounds == nil {
		bounds = analytic.NewBoundsTable(analytic.DefaultBounds())
	}
	cells := make([]AnalyticCell, len(specs)*len(mixes))
	ok := make([]bool, len(cells))
	tasks := make([]cliutil.Task, len(cells))
	for i := range tasks {
		i := i
		spec := specs[i/len(mixes)]
		m := mixes[i%len(mixes)]
		tasks[i] = cliutil.Task{Name: fmt.Sprintf("curve=%s/mix=%d", spec.Label, m+1), Run: func() error {
			cfg := base
			cfg.MixID = m
			spec.Mutate(&cfg)

			target, done, err := cfg.BuildForecastTarget()
			if err != nil {
				return err
			}
			sim := forecast.RunTarget(target, fcfg)
			done()

			cal, err := analytic.Calibrate(context.Background(), AnalyticSpecFor(cfg, warmupCycles, calibrationCycles))
			if err != nil {
				return err
			}

			cell := AnalyticCell{
				Policy:            cal.Policy,
				Mix:               m,
				SimCensored:       math.IsInf(sim.LifetimeSeconds, 1),
				SimLifetimeMonths: sim.LifetimeMonths(),
				Est:               cal.Estimate(bounds.For(cal.Policy, m)),
			}
			if len(sim.Points) > 0 {
				cell.SimYoungIPC = sim.Points[0].MeanIPC
			}
			cell.IPCRelErr = relErr(cell.Est.YoungIPC, cell.SimYoungIPC)
			switch {
			case cell.SimCensored && cell.Est.Censored:
				cell.LifetimeRelErr = 0
			case cell.SimCensored != cell.Est.Censored:
				cell.LifetimeRelErr = math.Inf(1)
			default:
				cell.LifetimeRelErr = relErr(cell.Est.LifetimeMonths, cell.SimLifetimeMonths)
			}
			cells[i] = cell
			ok[i] = true
			return nil
		}}
	}
	taskResults := runTasks(tasks)
	out := cells[:0]
	for i := range cells {
		if ok[i] {
			out = append(out, cells[i])
		}
	}
	return out, taskResults, nil
}
