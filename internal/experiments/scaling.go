package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// ScalingOptions configures the parallel-engine scaling bench: one
// fixed workload/policy measured through the set-sharded engine at a
// series of shard counts. Runs execute strictly sequentially (never on
// the task pool) so each wall-clock sample has the whole machine.
type ScalingOptions struct {
	Base    core.Config // Shards is overridden per row
	Shards  []int       // defaults to DefaultShardCounts()
	Warmup  uint64      // cycles before the timed window
	Measure uint64      // timed cycles
}

// DefaultShardCounts returns the shard counts of the scaling curve:
// 1..GOMAXPROCS, thinned to {1, 2, 3, 4, 6, 8, ...} so the curve stays
// readable on many-core machines while always containing the paper
// point of interest (4 shards) when the machine has the cores for it.
func DefaultShardCounts() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// ScalingRow is one shard-count measurement. FaultDigest is the engine's
// end-of-run NVM fault/wear fingerprint: every row of a correct curve
// carries the same digest — it is the bench's built-in equivalence
// witness, checked by ScalingEquivalent and asserted in CI.
type ScalingRow struct {
	Shards int
	// Gomaxprocs is the GOMAXPROCS the row actually ran under: the
	// shards=1 baseline is pinned to 1 (a genuinely serial reference),
	// every parallel row gets the machine's full width. Recording it per
	// row keeps the scaling claim honest — a curve whose parallel rows
	// say gomaxprocs=1 measured goroutine overhead, not speedup.
	Gomaxprocs  int
	Accesses    uint64
	WallNs      int64
	NsPerAccess float64
	Speedup     float64 // wall time of the shards=1 row over this row's
	MeanIPC     float64
	HitRate     float64
	FaultDigest string // %016x fingerprint, identical across rows
}

// ParallelScalingBench measures the sharded engine's wall-clock scaling
// curve. The first row is always shards=1 (prepended when absent) so
// every speedup has its in-run baseline.
func ParallelScalingBench(opt ScalingOptions) ([]ScalingRow, error) {
	shards := opt.Shards
	if len(shards) == 0 {
		shards = DefaultShardCounts()
	}
	if shards[0] != 1 {
		shards = append([]int{1}, shards...)
	}
	if opt.Measure == 0 {
		return nil, fmt.Errorf("experiments: scaling bench needs a measure window")
	}
	rows := make([]ScalingRow, 0, len(shards))
	fullProcs := runtime.GOMAXPROCS(0)
	var baseWall int64
	for _, n := range shards {
		procs := fullProcs
		if n == 1 {
			procs = 1
		}
		prev := runtime.GOMAXPROCS(procs)
		cfg := opt.Base
		cfg.Shards = n
		e, err := cfg.BuildEngine()
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return nil, fmt.Errorf("experiments: shards=%d: %w", n, err)
		}
		e.Run(opt.Warmup)
		start := time.Now()
		r := e.Run(opt.Measure)
		e.Sync()
		wall := time.Since(start).Nanoseconds()
		digest := e.FaultDigest()
		e.Close()
		runtime.GOMAXPROCS(prev)

		accesses := r.LLC.GetS + r.LLC.GetX
		row := ScalingRow{
			Shards:      n,
			Gomaxprocs:  procs,
			Accesses:    accesses,
			WallNs:      wall,
			MeanIPC:     r.MeanIPC,
			HitRate:     r.LLC.HitRate(),
			FaultDigest: fmt.Sprintf("%016x", digest),
		}
		if accesses > 0 {
			row.NsPerAccess = float64(wall) / float64(accesses)
		}
		if n == 1 {
			baseWall = wall
		}
		if baseWall > 0 && wall > 0 {
			row.Speedup = float64(baseWall) / float64(wall)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalingEquivalent reports whether every row carries the same fault
// digest — i.e. whether all shard counts computed the same simulation.
func ScalingEquivalent(rows []ScalingRow) bool {
	for _, r := range rows[1:] {
		if r.FaultDigest != rows[0].FaultDigest {
			return false
		}
	}
	return len(rows) > 0
}

// ParallelScalingReport renders the curve as BENCH_parallel.json's
// report: run parameters, one table row per shard count, and the
// equivalence verdict as a top-level field.
func ParallelScalingReport(opt ScalingOptions, rows []ScalingRow) *report.Report {
	rep := report.NewReport("set-sharded engine scaling curve")
	rep.AddField("policy", opt.Base.PolicyName)
	rep.AddField("mix", opt.Base.MixID+1)
	rep.AddField("llc_sets", opt.Base.LLCSets)
	rep.AddField("seed", opt.Base.Seed)
	rep.AddField("warmup_cycles", opt.Warmup)
	rep.AddField("measure_cycles", opt.Measure)
	rep.AddField("go_version", runtime.Version())
	rep.AddField("gomaxprocs", runtime.GOMAXPROCS(0))
	rep.AddField("digests_equivalent", ScalingEquivalent(rows))
	tab := report.New("parallel",
		"shards", "gomaxprocs", "accesses", "wall_ns", "ns_per_access",
		"speedup", "mean_ipc", "hit_rate", "fault_digest")
	for _, r := range rows {
		tab.AddRow(r.Shards, r.Gomaxprocs, report.FormatCount(r.Accesses), r.WallNs,
			r.NsPerAccess, r.Speedup, r.MeanIPC, r.HitRate, r.FaultDigest)
	}
	rep.AddTable(tab)
	return rep
}
