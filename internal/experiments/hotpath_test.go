package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

func TestHotPathBench(t *testing.T) {
	cfg := core.QuickConfig()
	opt := HotPathOptions{
		Base:     cfg,
		Mixes:    []int{0},
		Policies: []string{"BH", "CP_SD"},
		Warmup:   30_000,
		Measure:  30_000,
	}
	rows, results, err := HotPathBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Accesses == 0 {
			t.Errorf("%s: zero accesses", r.Policy)
		}
		if r.NsPerAccess <= 0 {
			t.Errorf("%s: ns/access %v", r.Policy, r.NsPerAccess)
		}
		if r.AllocsPerAccess < 0 || r.BytesPerAccess < 0 {
			t.Errorf("%s: negative alloc rate (%v allocs, %v B)",
				r.Policy, r.AllocsPerAccess, r.BytesPerAccess)
		}
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Errorf("%s: hit rate %v", r.Policy, r.HitRate)
		}
	}
	for _, res := range results {
		if res.Failed() {
			t.Errorf("task %s failed: %v", res.Name, res.Err)
		}
	}

	rep := HotPathReport(opt, rows, results)
	var b strings.Builder
	if err := rep.Write(&b, report.JSON); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"hotpath"`, "ns_per_access", "allocs_per_access", "bytes_per_access", "CP_SD"} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

func TestHotPathBenchRejectsEmpty(t *testing.T) {
	if _, _, err := HotPathBench(HotPathOptions{Base: core.QuickConfig()}); err == nil {
		t.Fatal("empty cross accepted")
	}
}
