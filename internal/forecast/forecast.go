// Package forecast implements the paper's aging forecast procedure
// (§V-A, adapted from [15]): it alternates full-hierarchy simulation
// phases, which measure per-frame NVM byte-write rates, with analytic
// prediction phases that advance wall-clock time, wearing out bitcells
// and updating the fault maps, until the NVM part loses half of its
// effective capacity. The output is the temporal evolution of performance
// (IPC), hit rate and capacity — the curves of Figs. 1, 10 and 11.
package forecast

import (
	"container/heap"
	"math"

	"repro/internal/hier"
	"repro/internal/nvm"
)

// SecondsPerMonth converts forecast times to the paper's month axis.
const SecondsPerMonth = 365.25 * 24 * 3600 / 12

// Config controls the forecast loop.
type Config struct {
	// ClockHz is the core clock (Table IV: 3.5 GHz).
	ClockHz float64
	// WarmupCycles are simulated before each measurement window.
	WarmupCycles uint64
	// PhaseCycles is the measured simulation window per phase.
	PhaseCycles uint64
	// CapacityStep is the capacity-fraction drop per prediction phase
	// (e.g. 0.025 resolves the 1.0 -> 0.5 trajectory in 20 phases).
	CapacityStep float64
	// TargetCapacity stops the forecast (paper: 0.5).
	TargetCapacity float64
	// MaxPhases bounds the loop for policies that barely write NVM.
	MaxPhases int
	// MaxPredictSeconds bounds one prediction phase; with no NVM write
	// traffic the capacity would never drop.
	MaxPredictSeconds float64
	// InterSetRotation enables Start-Gap-style set-level wear leveling:
	// the logical-to-physical set mapping rotates by one row per
	// prediction phase, spreading set-skewed write traffic across all
	// physical frame rows over the device lifetime.
	InterSetRotation bool
}

// DefaultConfig returns forecast parameters for the scaled system.
func DefaultConfig() Config {
	return Config{
		ClockHz:           3.5e9,
		WarmupCycles:      2_000_000,
		PhaseCycles:       10_000_000,
		CapacityStep:      0.025,
		TargetCapacity:    0.5,
		MaxPhases:         40,
		MaxPredictSeconds: 20 * 12 * SecondsPerMonth, // 20 years
	}
}

// Point is one sample of the forecast trajectory, taken at the start of a
// simulation phase.
type Point struct {
	TimeSeconds    float64
	Capacity       float64 // NVM effective capacity fraction at measurement
	MeanIPC        float64
	HitRate        float64
	NVMByteRate    float64 // NVM bytes written per second of machine time
	LiveFrames     int
	EntriesDropped int // LLC entries invalidated by aging before this phase
}

// Result is a full forecast trajectory for one policy/workload.
type Result struct {
	Policy          string
	Points          []Point
	LifetimeSeconds float64 // time at which capacity reached the target; +Inf if never
}

// LifetimeMonths converts the lifetime to months (+Inf preserved).
func (r Result) LifetimeMonths() float64 { return r.LifetimeSeconds / SecondsPerMonth }

// Window summarises one measured run window of a forecast target — the
// subset of hier.RunStats the forecast loop consumes.
type Window struct {
	Cycles          uint64
	MeanIPC         float64
	HitRate         float64
	NVMBytesWritten uint64
}

// Target abstracts the simulated system the forecast ages: the classic
// sequential hierarchy (SystemTarget) or internal/shard's set-sharded
// engine. Frames returns the NVM frames the forecast ages, in a stable
// set-major order (nil for SRAM-only configurations); the order matters
// because the aging heap breaks simultaneous-death ties by insertion
// order, so identical frame orders give bit-identical trajectories.
type Target interface {
	// PolicyName labels the result.
	PolicyName() string
	// Run advances the simulation by the given cycles and summarises.
	Run(cycles uint64) Window
	// Frames returns the NVM frames in stable set-major order, or nil.
	Frames() []*nvm.Frame
	// ResetPhase clears the per-frame phase write counters.
	ResetPhase()
	// CapacityFraction is the NVM part's effective capacity (0..1).
	CapacityFraction() float64
	// LiveFrames counts frames that can still hold a block.
	LiveFrames() int
	// InvalidateUnfit drops LLC entries their aged frames can't hold.
	InvalidateUnfit() int
	// AdvanceWearCounter rotates the global wear-leveling counter.
	AdvanceWearCounter(n int)
	// RotateSets applies inter-set wear leveling (Config.InterSetRotation).
	RotateSets(n int) int
}

// sysTarget adapts *hier.System to Target.
type sysTarget struct{ sys *hier.System }

// SystemTarget wraps the sequential hierarchy as a forecast target.
func SystemTarget(sys *hier.System) Target { return sysTarget{sys} }

func (t sysTarget) PolicyName() string { return t.sys.LLC().Policy().Name() }

func (t sysTarget) Run(cycles uint64) Window {
	st := t.sys.Run(cycles)
	return Window{
		Cycles:          st.Cycles,
		MeanIPC:         st.MeanIPC,
		HitRate:         st.LLC.HitRate(),
		NVMBytesWritten: st.LLC.NVMBytesWritten,
	}
}

func (t sysTarget) Frames() []*nvm.Frame {
	if arr := t.sys.LLC().Array(); arr != nil {
		return arr.Frames()
	}
	return nil
}

func (t sysTarget) ResetPhase()               { t.sys.LLC().Array().ResetPhase() }
func (t sysTarget) CapacityFraction() float64 { return t.sys.LLC().Array().EffectiveCapacityFraction() }
func (t sysTarget) LiveFrames() int           { return t.sys.LLC().Array().LiveFrames() }
func (t sysTarget) InvalidateUnfit() int      { return t.sys.LLC().InvalidateUnfit() }
func (t sysTarget) AdvanceWearCounter(n int)  { t.sys.LLC().Array().Counter().Advance(n) }
func (t sysTarget) RotateSets(n int) int      { return t.sys.LLC().RotateNVMSets(n) }

// Run executes the forecast on a sequential system until its LLC's NVM
// capacity reaches cfg.TargetCapacity.
func Run(sys *hier.System, cfg Config) Result {
	return RunTarget(SystemTarget(sys), cfg)
}

// RunTarget executes the forecast loop against any target.
func RunTarget(t Target, cfg Config) Result {
	res := Result{Policy: t.PolicyName(), LifetimeSeconds: math.Inf(1)}
	frames := t.Frames()
	if frames == nil {
		// SRAM-only configuration: a single phase measures steady-state
		// performance; there is nothing to age.
		t.Run(cfg.WarmupCycles)
		st := t.Run(cfg.PhaseCycles)
		res.Points = append(res.Points, Point{
			Capacity: 1, MeanIPC: st.MeanIPC, HitRate: st.HitRate,
		})
		return res
	}

	elapsed := 0.0
	dropped := 0
	for phase := 0; phase < cfg.MaxPhases; phase++ {
		t.Run(cfg.WarmupCycles)
		t.ResetPhase()
		st := t.Run(cfg.PhaseCycles)
		phaseSeconds := float64(st.Cycles) / cfg.ClockHz
		cap := t.CapacityFraction()
		res.Points = append(res.Points, Point{
			TimeSeconds:    elapsed,
			Capacity:       cap,
			MeanIPC:        st.MeanIPC,
			HitRate:        st.HitRate,
			NVMByteRate:    float64(st.NVMBytesWritten) / phaseSeconds,
			LiveFrames:     t.LiveFrames(),
			EntriesDropped: dropped,
		})
		if cap <= cfg.TargetCapacity {
			res.LifetimeSeconds = elapsed
			break
		}
		stop := cap - cfg.CapacityStep
		if stop < cfg.TargetCapacity {
			stop = cfg.TargetCapacity
		}
		dt, newCap := AgeFrames(frames, phaseSeconds, stop, cfg.MaxPredictSeconds)
		elapsed += dt
		dropped = t.InvalidateUnfit()
		// Rotate the global wear-leveling counter, as hardware does over
		// long periods (§III-B1).
		t.AdvanceWearCounter(7)
		if cfg.InterSetRotation {
			t.RotateSets(1)
		}
		if newCap <= cfg.TargetCapacity {
			res.LifetimeSeconds = elapsed
			// One final measurement at the target capacity.
			t.Run(cfg.WarmupCycles)
			t.ResetPhase()
			st := t.Run(cfg.PhaseCycles)
			res.Points = append(res.Points, Point{
				TimeSeconds: elapsed, Capacity: newCap, MeanIPC: st.MeanIPC,
				HitRate:    st.HitRate,
				LiveFrames: t.LiveFrames(), EntriesDropped: dropped,
			})
			break
		}
		if dt >= cfg.MaxPredictSeconds {
			// Write traffic too low to ever reach the target.
			break
		}
	}
	return res
}

// frameAger tracks one frame's analytic aging between simulation phases.
type frameAger struct {
	f     *nvm.Frame
	rate  float64 // bytes written per second (from the last phase)
	lastT float64 // time up to which wear has been applied
}

// nextDeath returns the absolute time of the frame's next byte death, or
// +Inf when it will never die at the current rate.
func (fa *frameAger) nextDeath() float64 {
	if fa.f.Dead() || fa.rate <= 0 {
		return math.Inf(1)
	}
	live := float64(fa.f.LiveBytes())
	need := (fa.f.NextLimit() - fa.f.Wear()) * live / fa.rate
	if need < 0 {
		need = 0
	}
	return fa.lastT + need
}

// advanceTo applies wear up to absolute time T, handling the rate-per-byte
// increase as bytes die (the frame's byte traffic concentrates on the
// remaining live bytes).
func (fa *frameAger) advanceTo(T float64) {
	for !fa.f.Dead() && fa.rate > 0 && fa.lastT < T {
		d := fa.nextDeath()
		if d > T {
			live := float64(fa.f.LiveBytes())
			fa.f.AddWear(fa.rate * (T - fa.lastT) / live)
			break
		}
		fa.f.AdvanceTo(fa.f.NextLimit())
		fa.lastT = d
	}
	fa.lastT = T
}

// event queue over frame death times.
type ageEvent struct {
	t   float64
	idx int
}

type ageHeap []ageEvent

func (h ageHeap) Len() int            { return len(h) }
func (h ageHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h ageHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ageHeap) Push(x interface{}) { *h = append(*h, x.(ageEvent)) }
func (h *ageHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Age advances the array's wear analytically; see AgeFrames.
func Age(arr *nvm.Array, phaseSeconds, stopCapacity, maxSeconds float64) (elapsed, capacity float64) {
	return AgeFrames(arr.Frames(), phaseSeconds, stopCapacity, maxSeconds)
}

// AgeFrames advances the frames' wear analytically, assuming each frame
// keeps receiving bytes at the rate observed over the last simulation
// phase (PhaseWritten / phaseSeconds), until their combined effective
// capacity fraction falls to stopCapacity or maxSeconds elapse. It
// returns the elapsed time and the resulting capacity fraction.
//
// The computation is exact: within a frame, wear accrues linearly at
// rate/liveBytes and jumps discretely as bytes die; across frames, a
// priority queue processes byte deaths in global time order, breaking
// simultaneous-death ties by the frames' slice order — so a fixed frame
// order gives a bit-identical trajectory regardless of how the frames
// are partitioned across shard arrays.
func AgeFrames(frames []*nvm.Frame, phaseSeconds, stopCapacity, maxSeconds float64) (elapsed, capacity float64) {
	rates := make([]float64, len(frames))
	for i, f := range frames {
		rates[i] = float64(f.PhaseWritten()) / phaseSeconds
	}
	return AgeFramesAtRates(frames, rates, stopCapacity, maxSeconds)
}

// AgeFramesAtRates is AgeFrames with the per-frame byte rates supplied
// by the caller instead of read from the frames' phase counters. The
// analytic fast path (internal/analytic) uses it to age under model
// rates — e.g. the uniform-redistribution fallback for policies whose
// calibration window concentrates writes on too few frames to ever
// reach the target capacity at frozen per-frame rates.
func AgeFramesAtRates(frames []*nvm.Frame, rates []float64, stopCapacity, maxSeconds float64) (elapsed, capacity float64) {
	agers := make([]frameAger, len(frames))
	h := make(ageHeap, 0, len(frames))
	totalUnits := float64(len(frames) * nvm.DataBytes)
	capUnits := 0
	for i, f := range frames {
		agers[i] = frameAger{f: f, rate: rates[i]}
		capUnits += f.EffectiveCapacity()
		if d := agers[i].nextDeath(); !math.IsInf(d, 1) {
			h = append(h, ageEvent{d, i})
		}
	}
	heap.Init(&h)

	T := 0.0
	for float64(capUnits)/totalUnits > stopCapacity && h.Len() > 0 {
		ev := heap.Pop(&h).(ageEvent)
		if ev.t > maxSeconds {
			T = maxSeconds
			h = h[:0]
			break
		}
		fa := &agers[ev.idx]
		before := fa.f.EffectiveCapacity()
		fa.f.AdvanceTo(fa.f.NextLimit())
		fa.lastT = ev.t
		capUnits -= before - fa.f.EffectiveCapacity()
		T = ev.t
		if d := fa.nextDeath(); !math.IsInf(d, 1) {
			heap.Push(&h, ageEvent{d, ev.idx})
		}
	}
	if h.Len() == 0 && float64(capUnits)/totalUnits > stopCapacity {
		// No more deaths possible at these rates within the horizon.
		if T < maxSeconds {
			T = maxSeconds
		}
	}
	// Apply partial wear to every frame up to T.
	for i := range agers {
		agers[i].advanceTo(T)
	}
	return T, capacityOfFrames(frames)
}

// capacityOfFrames is the effective capacity fraction of a frame slice,
// computed exactly like nvm.Array.EffectiveCapacityFraction (integer sum,
// one division — bit-identical however the frames are partitioned).
func capacityOfFrames(frames []*nvm.Frame) float64 {
	if len(frames) == 0 {
		return 0
	}
	have := 0
	for _, f := range frames {
		have += f.EffectiveCapacity()
	}
	return float64(have) / float64(len(frames)*nvm.DataBytes)
}
