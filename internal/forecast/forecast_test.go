package forecast

import (
	"math"
	"testing"

	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func agedArray(t *testing.T, sets, ways int, gran nvm.Granularity, mean float64) *nvm.Array {
	t.Helper()
	return nvm.NewArray(sets, ways, nvm.EnduranceModel{Mean: mean, CV: 0.2}, stats.NewRNG(7), gran)
}

func TestAgeZeroRatesNeverKills(t *testing.T) {
	arr := agedArray(t, 8, 4, nvm.ByteDisabling, 1000)
	// No PhaseWritten: all rates zero.
	elapsed, cap := Age(arr, 1.0, 0.5, 3600)
	if elapsed != 3600 {
		t.Fatalf("elapsed = %v, want full horizon", elapsed)
	}
	if cap != 1.0 {
		t.Fatalf("capacity = %v, want 1.0", cap)
	}
}

func TestAgeUniformWearTiming(t *testing.T) {
	arr := agedArray(t, 4, 4, nvm.ByteDisabling, 1000)
	// Every frame gets 66 bytes per second: one write of a full block per
	// second -> per-byte wear rate 1/s. Weakest bytes (endurance ~ a few
	// hundred) should die after a few hundred seconds.
	for _, f := range arr.Frames() {
		f.RecordWrite(0) // ensure non-dead
	}
	for _, f := range arr.Frames() {
		for i := 0; i < 1; i++ {
			f.ResetPhase()
		}
	}
	// Manually set phase counters via RecordWrite of 66 bytes over a
	// 1-second phase.
	for _, f := range arr.Frames() {
		f.RecordWrite(nvm.FrameBytes)
	}
	elapsed, cap := Age(arr, 1.0, 0.9, 1e9)
	if cap > 0.9+1e-9 {
		t.Fatalf("capacity %v did not reach 0.9", cap)
	}
	// Endurance mean 1000, cv 0.2: deaths concentrate around wear ~1000
	// at ~66 bytes/s over 66 bytes = 1 wear/s -> elapsed in the hundreds.
	if elapsed < 100 || elapsed > 2000 {
		t.Fatalf("elapsed %v implausible for mean-1000 endurance at 1 wear/s", elapsed)
	}
}

func TestAgeStopsAtRequestedCapacity(t *testing.T) {
	arr := agedArray(t, 8, 4, nvm.ByteDisabling, 1000)
	for _, f := range arr.Frames() {
		f.RecordWrite(660)
	}
	_, cap := Age(arr, 1.0, 0.75, 1e12)
	if cap > 0.75+0.01 {
		t.Fatalf("capacity %v, want <= ~0.75", cap)
	}
	// Should not wildly overshoot either: one event granularity.
	if cap < 0.70 {
		t.Fatalf("capacity %v overshot the stop point", cap)
	}
}

func TestAgeFrameDisablingFasterCapacityLoss(t *testing.T) {
	frameArr := agedArray(t, 8, 4, nvm.FrameDisabling, 1000)
	byteArr := agedArray(t, 8, 4, nvm.ByteDisabling, 1000)
	for _, f := range frameArr.Frames() {
		f.RecordWrite(660)
	}
	for _, f := range byteArr.Frames() {
		f.RecordWrite(660)
	}
	tf, _ := Age(frameArr, 1.0, 0.5, 1e12)
	tb, _ := Age(byteArr, 1.0, 0.5, 1e12)
	if tf >= tb {
		t.Fatalf("frame disabling (%.0fs) should reach 50%% before byte disabling (%.0fs)", tf, tb)
	}
}

func TestAgeMonotonicCapacity(t *testing.T) {
	arr := agedArray(t, 8, 4, nvm.ByteDisabling, 1000)
	for _, f := range arr.Frames() {
		f.RecordWrite(660)
	}
	prev := 1.0
	for stop := 0.95; stop >= 0.5; stop -= 0.05 {
		_, cap := Age(arr, 1.0, stop, 1e12)
		if cap > prev+1e-9 {
			t.Fatalf("capacity rose from %v to %v", prev, cap)
		}
		prev = cap
		for _, f := range arr.Frames() {
			f.ResetPhase()
			f.RecordWrite(660)
		}
	}
}

func TestAgeHonoursMaxSeconds(t *testing.T) {
	arr := agedArray(t, 4, 4, nvm.ByteDisabling, 1e12) // effectively immortal
	for _, f := range arr.Frames() {
		f.RecordWrite(66)
	}
	elapsed, cap := Age(arr, 1.0, 0.5, 1000)
	if elapsed > 1000+1e-6 {
		t.Fatalf("elapsed %v exceeded horizon", elapsed)
	}
	if cap < 0.999 {
		t.Fatalf("immortal array lost capacity: %v", cap)
	}
}

func forecastSystem(t *testing.T, pol hybrid.Policy, thr hybrid.ThresholdProvider, mean float64) *hier.System {
	t.Helper()
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	llc := hybrid.New(hybrid.Config{
		Sets: 256, SRAMWays: 4, NVMWays: 12,
		Policy: pol, Thresholds: thr,
		Endurance: nvm.EnduranceModel{Mean: mean, CV: 0.2},
		Sampler:   stats.NewRNG(3),
	})
	cfg := hier.DefaultConfig()
	cfg.EpochCycles = 250_000
	return hier.New(cfg, llc, apps)
}

func quickForecastConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 250_000
	cfg.PhaseCycles = 1_000_000
	cfg.CapacityStep = 0.1
	cfg.MaxPhases = 12
	return cfg
}

func TestRunReachesTarget(t *testing.T) {
	// Endurance low enough that the forecast reaches 50% within MaxPhases.
	sys := forecastSystem(t, policy.BH{}, nil, 2e4)
	res := Run(sys, quickForecastConfig())
	if math.IsInf(res.LifetimeSeconds, 1) {
		t.Fatalf("BH with 2e4 endurance should reach 50%% capacity; points: %d", len(res.Points))
	}
	if len(res.Points) < 2 {
		t.Fatalf("only %d points", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	if last.Capacity > 0.55 {
		t.Errorf("final capacity %v, want ~0.5", last.Capacity)
	}
	// Time axis strictly increasing; capacity non-increasing.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].TimeSeconds < res.Points[i-1].TimeSeconds {
			t.Fatal("time went backwards")
		}
		if res.Points[i].Capacity > res.Points[i-1].Capacity+1e-9 {
			t.Fatal("capacity increased over time")
		}
	}
	if res.Policy != "BH" {
		t.Errorf("policy name %q", res.Policy)
	}
}

func TestRunPerformanceDegradesWithCapacity(t *testing.T) {
	sys := forecastSystem(t, policy.BH{}, nil, 2e4)
	res := Run(sys, quickForecastConfig())
	if len(res.Points) < 3 {
		t.Skip("too few points")
	}
	// The robust aging signal is the hit rate: capacity loss costs hits.
	// (IPC can move slightly either way at small scales because dead NVM
	// frames also relieve bank write-port contention.)
	first := res.Points[0].HitRate
	last := res.Points[len(res.Points)-1].HitRate
	if last >= first {
		t.Errorf("hit rate did not degrade as NVM capacity dropped: %.4f -> %.4f", first, last)
	}
	firstIPC := res.Points[0].MeanIPC
	lastIPC := res.Points[len(res.Points)-1].MeanIPC
	if lastIPC > firstIPC*1.10 {
		t.Errorf("IPC rose sharply (%.4f -> %.4f) despite capacity loss", firstIPC, lastIPC)
	}
}

func TestRunSRAMOnly(t *testing.T) {
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	llc := hybrid.New(hybrid.Config{
		Sets: 256, SRAMWays: 16, NVMWays: 0,
		Policy: policy.SRAMOnly{}, Sampler: stats.NewRNG(3),
	})
	sys := hier.New(hier.DefaultConfig(), llc, apps)
	res := Run(sys, quickForecastConfig())
	if !math.IsInf(res.LifetimeSeconds, 1) {
		t.Fatal("SRAM-only lifetime should be infinite")
	}
	if len(res.Points) != 1 || res.Points[0].MeanIPC <= 0 {
		t.Fatalf("SRAM-only forecast should yield one steady-state point, got %+v", res.Points)
	}
}

func TestLifetimeMonths(t *testing.T) {
	r := Result{LifetimeSeconds: SecondsPerMonth * 3}
	if math.Abs(r.LifetimeMonths()-3) > 1e-9 {
		t.Fatalf("months = %v", r.LifetimeMonths())
	}
}

func TestLHybridOutlivesBH(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-forecast comparison")
	}
	cfg := quickForecastConfig()
	bh := Run(forecastSystem(t, policy.BH{}, nil, 2e4), cfg)
	lh := Run(forecastSystem(t, policy.LHybrid{}, nil, 2e4), cfg)
	lhLife := lh.LifetimeSeconds
	bhLife := bh.LifetimeSeconds
	if !math.IsInf(lhLife, 1) && lhLife <= bhLife {
		t.Errorf("LHybrid lifetime (%.0fs) should exceed BH (%.0fs)", lhLife, bhLife)
	}
}

// TestAgeScaleInvariance: doubling every frame's write rate must halve the
// time to reach a given capacity (wear accrual is linear in rate).
func TestAgeScaleInvariance(t *testing.T) {
	mk := func(mult int) *nvm.Array {
		arr := nvm.NewArray(8, 4, nvm.EnduranceModel{Mean: 1000, CV: 0.2},
			stats.NewRNG(11), nvm.ByteDisabling)
		for _, f := range arr.Frames() {
			f.RecordWrite(66 * mult)
		}
		return arr
	}
	t1, _ := Age(mk(1), 1.0, 0.8, 1e12)
	t2, _ := Age(mk(2), 1.0, 0.8, 1e12)
	if t1 <= 0 || t2 <= 0 {
		t.Fatal("no aging happened")
	}
	ratio := t1 / t2
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("rate doubling changed time by %.4fx, want 2x", ratio)
	}
}

// TestRunWithInterSetRotation: the rotation option must not break the
// forecast and must keep capacity monotone.
func TestRunWithInterSetRotation(t *testing.T) {
	sys := forecastSystem(t, policy.CARWR{PolicyName: "CP_SD"}, nil, 2e4)
	cfg := quickForecastConfig()
	cfg.InterSetRotation = true
	res := Run(sys, cfg)
	if len(res.Points) < 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Capacity > res.Points[i-1].Capacity+1e-9 {
			t.Fatal("capacity increased under rotation")
		}
	}
	if sys.LLC().Array().SetRemap() == 0 {
		t.Error("rotation never advanced")
	}
}
