package hybrid

import (
	"errors"
	"fmt"

	"repro/internal/bdi"
	"repro/internal/ecc"
	"repro/internal/nvm"
)

// This file implements the complete NVM block write and read data path of
// Fig. 5: compression, extended-compressed-block (ECB) formation with the
// 4-bit CE field and the (527,516) SECDED code, scattering over the
// frame's live bytes via the rearrangement circuitry, and the inverse read
// path with single-error correction. The performance simulator accounts
// sizes and wear without materialising bytes; DataPath is the functional
// reference used by integration tests, fault-injection studies and the
// examples, and it is what a hardware implementation would realise.

// ErrUncorrectable is returned when SECDED detects a multi-bit error; the
// microarchitecture reacts by disabling the frame (§III-B).
var ErrUncorrectable = errors.New("hybrid: uncorrectable NVM error")

// StoredBlock is the physical image of one compressed block inside an NVM
// frame: the scattered RECB plus the write mask used for selective
// writing. The CE and SECDED bits travel inside the ECB payload.
type StoredBlock struct {
	RECB    [nvm.FrameBytes]byte
	Mask    nvm.FaultMap // positions actually written (selective write mask)
	FMap    nvm.FaultMap // frame fault map at write time (drives the gather)
	ECBLen  int
	Counter int // wear-leveling counter at write time
}

// DataPath bundles the compressor and SECDED code of the NVM pipeline.
// The scratch buffers below are owned by the data path and reused across
// calls, so steady-state writes and reads perform zero allocations; a
// DataPath must therefore not be shared between goroutines, matching the
// one-LLC-per-system ownership everywhere else.
type DataPath struct {
	code *ecc.Code

	cmpBuf     [bdi.BlockSize]byte // compression payload scratch
	vecBuf     [65]byte            // 516-bit SECDED data vector
	ecbBuf     [nvm.FrameBytes]byte
	cw         *ecc.Codeword // encode/decode codeword, reused
	decodedBuf []byte        // corrected data vector from DecodeInto
	payloadBuf [bdi.BlockSize]byte
	blockBuf   [bdi.BlockSize]byte // decompressed block (aliased by ReadBlock results)
}

// NewDataPath builds the reference data path with the paper's (527,516)
// SECDED code.
func NewDataPath() *DataPath {
	return &DataPath{code: ecc.NVMData(), decodedBuf: make([]byte, 65)}
}

// ecbBytes is the ECB size for a given compressed payload: CB plus the
// 2-byte metadata region holding CE (4 bits) and SECDED (11 bits).
func ecbBytes(cbSize int) int { return cbSize + nvm.MetaBytes }

// WriteBlock compresses a 64-byte block, forms the ECB and scatters it
// over the frame's live bytes at the current wear-leveling counter. It
// fails if the frame cannot hold the compressed block.
func (d *DataPath) WriteBlock(block []byte, f *nvm.Frame, counter int) (StoredBlock, error) {
	var out StoredBlock
	c := bdi.CompressInto(d.cmpBuf[:], block)
	if !f.Fits(c.Size()) {
		return out, fmt.Errorf("hybrid: %v block (%dB) does not fit frame capacity %d",
			c.Enc, c.Size(), f.EffectiveCapacity())
	}
	ecb := d.formECB(c)
	fmap := f.FaultMap()
	recb, mask, err := nvm.Scatter(ecb, fmap, counter)
	if err != nil {
		return out, err
	}
	out.RECB = recb
	out.Mask = mask
	out.FMap = fmap
	out.ECBLen = len(ecb)
	out.Counter = counter
	f.RecordWrite(len(ecb))
	return out, nil
}

// formECB lays out the extended compressed block:
//
//	byte 0:            CE (4 bits, low nibble) | SECDED bits 0-3 (high nibble)
//	byte 1:            SECDED bits 4-10 (7 bits, bit 7 zero)
//	bytes 2..2+|CB|-1: compressed payload
//
// The SECDED code protects 516 bits: the CE nibble plus the CB padded with
// zeros to 512 bits, exactly as in §III-B1.
func (d *DataPath) formECB(c bdi.Compressed) []byte {
	data := d.vecBuf[:] // 516 bits: 4 CE + 512 block
	for i := range data {
		data[i] = 0
	}
	data[0] = uint8(c.Enc) & 0x0F
	for i, v := range c.Data {
		// Payload starts at bit 4.
		data[i] |= v << 4
		data[i+1] = v >> 4
	}
	d.cw = d.code.EncodeInto(d.cw, data)
	check := extractCheckBits(d.cw, d.code)
	ecb := d.ecbBuf[:ecbBytes(c.Size())]
	ecb[0] = uint8(c.Enc)&0x0F | (uint8(check)&0x0F)<<4
	ecb[1] = uint8(check >> 4)
	copy(ecb[2:], c.Data)
	return ecb
}

// extractCheckBits collects the Hamming check bits plus overall parity
// into an 11-bit integer.
func extractCheckBits(w *ecc.Codeword, code *ecc.Code) uint16 {
	var bits uint16
	n := 0
	bits |= uint16(w.Bit(0)) << n // overall parity
	n++
	for k := 0; (1 << uint(k)) <= code.DataBits()+code.CheckBits(); k++ {
		bits |= uint16(w.Bit(1<<uint(k))) << n
		n++
	}
	return bits
}

// ReadBlock gathers the ECB back from the stored frame image using the
// fault map recorded at write time, verifies and corrects it with SECDED,
// and decompresses the payload. Bytes that failed after the write surface
// as bit errors, which is exactly what SECDED catches. The returned slice
// aliases the data path's scratch and is only valid until the next call.
func (d *DataPath) ReadBlock(st StoredBlock) ([]byte, ecc.Status, error) {
	ecb, err := nvm.GatherInto(d.ecbBuf[:], st.RECB, st.FMap, st.Counter, st.ECBLen)
	if err != nil {
		return nil, ecc.Detected, err
	}
	enc := bdi.Encoding(ecb[0] & 0x0F)
	check := uint16(ecb[0]>>4) | uint16(ecb[1])<<4
	cb := ecb[2:]

	// Rebuild the 516-bit data vector and codeword.
	data := d.vecBuf[:]
	for i := range data {
		data[i] = 0
	}
	data[0] = uint8(enc) & 0x0F
	for i, v := range cb {
		data[i] |= v << 4
		data[i+1] = v >> 4
	}
	d.cw = d.code.EncodeInto(d.cw, data)
	w := d.cw
	// Replace the computed check bits with the stored ones; a mismatch is
	// an error syndrome.
	stored := check
	n := 0
	setBit := func(pos int, v uint16) {
		if w.Bit(pos) != int(v&1) {
			w.FlipBit(pos)
		}
	}
	setBit(0, stored>>n)
	n++
	for k := 0; (1 << uint(k)) <= d.code.DataBits()+d.code.CheckBits(); k++ {
		setBit(1<<uint(k), stored>>n)
		n++
	}
	corrected, status, _ := d.code.DecodeInto(d.decodedBuf, w)
	if status == ecc.Detected {
		return nil, status, ErrUncorrectable
	}
	d.decodedBuf = corrected
	// Extract CE and payload from the (possibly corrected) data bits.
	encC := bdi.Encoding(corrected[0] & 0x0F)
	if !bdi.Valid(encC) {
		return nil, ecc.Detected, fmt.Errorf("hybrid: corrupt CE field %d", encC)
	}
	spec := bdi.SpecOf(encC)
	payload := d.payloadBuf[:spec.Size]
	for i := range payload {
		payload[i] = corrected[i]>>4 | corrected[i+1]<<4
	}
	blockBytes, err := bdi.DecompressInto(d.blockBuf[:], bdi.Compressed{Enc: encC, Data: payload})
	if err != nil {
		return nil, status, err
	}
	return blockBytes, status, nil
}

// MeaningfulBits returns the number of information-carrying bits in the
// stored image: 4 CE + 11 SECDED + 8 per payload byte. Bit 15 of the ECB
// (the high bit of the second metadata byte) is an unwritten filler
// bitcell and carries nothing.
func (st *StoredBlock) MeaningfulBits() int { return st.ECBLen*8 - 1 }

// FlipStoredBit injects a single-bit error into a stored block's physical
// image (fault-injection hook for tests and wear studies). i indexes the
// meaningful bits of the ECB in order (see MeaningfulBits); the filler bit
// is skipped because hardware never senses it. The physical location is
// found through the same index vector the crossbar uses, so rotation and
// faulty-byte skips are honoured.
func (st *StoredBlock) FlipStoredBit(i int) {
	if i >= 15 {
		i++ // skip the unused filler bit at ECB bit position 15
	}
	iv, err := nvm.BuildIndexVector(st.FMap, st.Counter, st.ECBLen)
	if err != nil {
		return // stored image inconsistent; nothing sensible to flip
	}
	byteIdx := i / 8
	for pos, k := range iv {
		if k == byteIdx {
			st.RECB[pos] ^= 1 << (uint(i) % 8)
			return
		}
	}
}
