package hybrid

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestRegistryMirrorsStats: the registry counters are read-through views
// of the Stats fields — incrementing the struct is enough.
func TestRegistryMirrorsStats(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(58), 16, 2, 4)
	reg := l.Metrics()
	for _, name := range StatNames() {
		if !reg.Has(name) {
			t.Errorf("counter %s not registered", name)
		}
	}
	l.Stats.Hits = 41
	l.Stats.Misses = 9
	if v, _ := reg.CounterValue("llc.hits"); v != 41 {
		t.Errorf("llc.hits = %d", v)
	}
	if g, ok := reg.GaugeValue("llc.hit_rate"); !ok || g != 0.82 {
		t.Errorf("llc.hit_rate = %v, %v", g, ok)
	}
	// The NVM array registered its subtree on the same registry.
	if !reg.Has("nvm.array.bytes_written") {
		t.Error("nvm.array subtree missing")
	}
}

// TestStatsFromSnapshotRoundTrip: converting a snapshot back to a Stats
// block reproduces every field, so RunStats.LLC cannot drift from the
// registry view.
func TestStatsFromSnapshotRoundTrip(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(58), 16, 2, 4)
	want := Stats{}
	for i, f := range statsFields {
		*f.get(&l.Stats) = uint64(100 + i)
		*f.get(&want) = uint64(100 + i)
	}
	got := StatsFromSnapshot(l.Metrics().Snapshot())
	if got != want {
		t.Fatalf("round trip lost fields:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestStatNamesHierarchy pins the naming convention: all LLC counters sit
// under llc.*, with partition-specific ones under llc.sram.* / llc.nvm.*.
func TestStatNamesHierarchy(t *testing.T) {
	for _, name := range StatNames() {
		if !strings.HasPrefix(name, "llc.") {
			t.Errorf("%s escapes the llc. namespace", name)
		}
		if !metrics.ValidName(name) {
			t.Errorf("%s is not a valid metric name", name)
		}
	}
	l := newLLC(t, testCP, FixedThreshold(58), 16, 2, 4)
	snap := l.Metrics().Snapshot()
	if n := len(snap.Filter("llc.nvm").Counters); n < 4 {
		t.Errorf("llc.nvm subtree has only %d counters", n)
	}
}

// TestSharedRegistryConfig: a caller-supplied registry receives the LLC's
// metrics, letting one registry serve a whole simulated system.
func TestSharedRegistryConfig(t *testing.T) {
	reg := metrics.NewRegistry()
	l := New(Config{
		Sets: 16, SRAMWays: 2, NVMWays: 4,
		Policy: testBH, Endurance: testEndurance,
		Sampler: stats.NewRNG(99), Metrics: reg,
	})
	if l.Metrics() != reg {
		t.Fatal("LLC did not adopt the supplied registry")
	}
	if !reg.Has("llc.hits") {
		t.Fatal("supplied registry missing LLC counters")
	}
}
