// Package hybrid implements the paper's hybrid NVM-SRAM last-level cache:
// a set-associative cache whose ways are split between SRAM frames (fast,
// wear-free, uncompressed) and NVM frames (dense, wear-limited, optionally
// storing BDI-compressed blocks over byte-level fault maps). Insertion
// policies steer incoming blocks into one of the two parts (§IV); the NVM
// replacement uses Fit-LRU over the frames the compressed block fits in
// (§III-B1).
package hybrid

import (
	"fmt"

	"repro/internal/nvm"
)

// Partition identifies one of the LLC's two technology parts.
type Partition uint8

// Partitions.
const (
	SRAM Partition = iota
	NVM
)

// String names the partition.
func (p Partition) String() string {
	switch p {
	case SRAM:
		return "SRAM"
	case NVM:
		return "NVM"
	}
	return fmt.Sprintf("Partition(%d)", uint8(p))
}

// ReuseClass is the paper's three-way block classification (§IV-B):
// blocks with no demonstrated reuse, read-reused blocks and write-reused
// blocks. Read-reuse corresponds to LHybrid's loop-blocks.
type ReuseClass uint8

// Reuse classes.
const (
	ReuseNone ReuseClass = iota
	ReuseRead
	ReuseWrite
)

// String names the reuse class.
func (r ReuseClass) String() string {
	switch r {
	case ReuseNone:
		return "none"
	case ReuseRead:
		return "read"
	case ReuseWrite:
		return "write"
	}
	return fmt.Sprintf("ReuseClass(%d)", uint8(r))
}

// BlockTag is the policy metadata that travels with a block between the
// LLC and the private levels: the CA_RWR reuse class, the LHybrid
// loop-block bit, and the TAP LLC-hit counter. It packs into the single
// flags byte of a cache line.
type BlockTag struct {
	Reuse      ReuseClass // CA_RWR class
	LB         bool       // LHybrid loop-block
	Hits       uint8      // TAP LLC-hit counter, saturating at 7
	Prefetched bool       // block was brought in by the prefetcher (TAP's prefetch class)
}

// Pack encodes the tag into one byte: bits 0-1 reuse, bit 2 LB,
// bits 3-5 hit counter, bit 6 prefetched.
func (t BlockTag) Pack() uint8 {
	h := t.Hits
	if h > 7 {
		h = 7
	}
	v := uint8(t.Reuse) & 3
	if t.LB {
		v |= 1 << 2
	}
	if t.Prefetched {
		v |= 1 << 6
	}
	return v | h<<3
}

// UnpackTag decodes a tag packed with Pack.
func UnpackTag(v uint8) BlockTag {
	return BlockTag{
		Reuse:      ReuseClass(v & 3),
		LB:         v&(1<<2) != 0,
		Hits:       (v >> 3) & 7,
		Prefetched: v&(1<<6) != 0,
	}
}

// InsertInfo carries everything a policy may consult when steering an
// incoming block (§IV, Table II).
type InsertInfo struct {
	Set    int
	Block  uint64 // block address (phase detectors classify its stream)
	Dirty  bool
	CBSize int // BDI-compressed size in bytes (64 when not compressible)
	Tag    BlockTag
	CPth   int // compression threshold in effect for this set
}

// Small reports whether the block is a "small block" under the threshold:
// compressed size lower than or equal to CPth (§IV-A).
func (i InsertInfo) Small() bool { return i.CBSize <= i.CPth }

// Policy is an LLC insertion policy. The paper's policies are stateless
// values describing behaviour, with all state in the LLC entries and
// block tags; RRIP-family extensions may carry per-set state of their own
// (deterministic, event-driven, and keyed by set so the set-sharded
// engine stays bit-identical).
type Policy interface {
	// Name returns the paper's identifier for the policy (e.g. "CP_SD").
	Name() string
	// Compressed reports whether the NVM part stores BDI-compressed
	// blocks (requires byte-level disabling).
	Compressed() bool
	// Granularity is the hard-fault disabling granularity (Table III).
	Granularity() nvm.Granularity
	// Global reports whether replacement is a single LRU (or Fit-LRU)
	// list across both parts, as in BH and BH_CP, making Target unused.
	Global() bool
	// Target steers an incoming block to a partition. Only called when
	// Global is false.
	Target(info InsertInfo) Partition
	// MigrateReadReuse reports whether an SRAM victim with read reuse is
	// migrated to the NVM part on eviction (CA_RWR family, §IV-B).
	MigrateReadReuse() bool
	// LHybridMigrate reports whether SRAM replacement prefers migrating
	// the most-recent loop-block to NVM (LHybrid, §II-C).
	LHybridMigrate() bool
	// UsesThreshold reports whether Target consults CPth, so the LLC can
	// feed set-dueling counters only for policies that need them.
	UsesThreshold() bool
}

// SetPolicyResolver is implemented by meta-policies that present a
// different underlying policy per set — the N-way policy tournament,
// where sampler sets each run one candidate and follower sets run the
// epoch winner. When the LLC's policy implements it, every per-insert
// decision (Target, migration behaviour, insertion RRPV, NVM victim
// scheme) is taken from PolicyFor(set) instead of the top-level policy.
// Whole-cache properties (Compressed, Granularity, Global) remain the
// meta-policy's own and must agree across all resolved policies.
type SetPolicyResolver interface {
	// PolicyFor returns the policy governing a set. It must be
	// deterministic given the controller state (sampler assignment plus
	// adopted winner) so sharded execution resolves identically.
	PolicyFor(set int) Policy
}

// RRIPInserter is implemented by RRIP-family insertion policies
// (SRRIP/BRRIP and derivatives). A policy that implements it switches the
// NVM part of its sets to fit-RRIP victim selection, and InsertRRPV
// supplies the re-reference prediction value new NVM-resident blocks are
// inserted with (0 = near-immediate re-reference, 3 = distant). The
// compressed size class typically modulates the value: highly compressed
// blocks fit even aged frames and are cheap to retain.
type RRIPInserter interface {
	// InsertRRPV returns the insertion RRPV (0..3) for an incoming block.
	// Implementations may keep deterministic per-set state (BRRIP's
	// insertion counter, phase classifiers), advanced only from this
	// call and Target.
	InsertRRPV(info InsertInfo) uint8
}

// SetMapper remaps the logical set index (block mod sets) to the
// physical directory/frame row the LLC actually uses — inter-set
// wear-leveling (cache coloring). The mapping must be a bijection on
// [0, sets) between Epoch calls. The internal/coloring schemes
// implement it; the interface lives here so the LLC does not depend on
// that package.
//
// Epoch is called exactly once per epoch boundary — by the LLC itself
// when Config.SetMapperAdvance is set (the sequential engine), or by
// the shard router at the quiescent epoch barrier (all clones share
// one mapper instance and the router advances it once, keeping
// shards=N bit-identical to shards=1). A true return means the mapping
// changed and the caller must flush every directory keyed by physical
// row (LLC.FlushDirectory).
type SetMapper interface {
	// Map returns the physical row for a logical set index.
	Map(logical int) int
	// Epoch advances the mapper's epoch counter with the cumulative
	// per-physical-row wear (nil without an NVM part) and reports
	// whether the mapping changed.
	Epoch(rowWear []float64) bool
}

// ThresholdProvider supplies the per-set compression threshold and absorbs
// the set-dueling counters (§IV-C). The dueling package implements it; a
// FixedThreshold suffices for CA and CA_RWR.
type ThresholdProvider interface {
	// CPthFor returns the threshold in effect for the set.
	CPthFor(set int) int
	// RecordHit accounts one LLC hit in the set.
	RecordHit(set int)
	// RecordNVMBytes accounts n bytes written to the set's NVM frames.
	RecordNVMBytes(set int, n int)
	// EndEpoch closes the current epoch and applies the selection rule.
	EndEpoch()
}

// FixedThreshold is a ThresholdProvider that always returns the same CPth
// and ignores the counters.
type FixedThreshold int

// CPthFor returns the fixed threshold.
func (f FixedThreshold) CPthFor(int) int { return int(f) }

// RecordHit is a no-op.
func (FixedThreshold) RecordHit(int) {}

// RecordNVMBytes is a no-op.
func (FixedThreshold) RecordNVMBytes(int, int) {}

// EndEpoch is a no-op.
func (FixedThreshold) EndEpoch() {}
