package hybrid

import (
	"testing"

	"repro/internal/bdi"
	"repro/internal/nvm"
	"repro/internal/stats"
)

// lcrBlock returns content compressing into the LCR range (B8D4, 40B).
func lcrBlock() []byte {
	b := make([]byte, 64)
	base := uint64(1) << 50
	for i := 0; i < 8; i++ {
		v := base + uint64(i)<<27
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(v >> (8 * uint(j)))
		}
	}
	return b
}

func newAblLLC(t *testing.T, mod func(*Config)) *LLC {
	t.Helper()
	cfg := Config{
		Sets: 8, SRAMWays: 2, NVMWays: 4,
		Policy:     testCP,
		Thresholds: FixedThreshold(58),
		Endurance:  testEndurance,
		Sampler:    stats.NewRNG(31),
	}
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg)
}

func TestHCROnlyAblation(t *testing.T) {
	content := lcrBlock()
	if got := bdi.CompressedSize(content); got != 40 {
		t.Fatalf("setup: block compresses to %d, want 40", got)
	}
	full := newAblLLC(t, nil)
	full.Insert(1, false, BlockTag{}, content)
	if full.Stats.NVMBytesWritten != 40+nvm.MetaBytes {
		t.Fatalf("full design wrote %d bytes, want %d", full.Stats.NVMBytesWritten, 40+nvm.MetaBytes)
	}
	abl := newAblLLC(t, func(c *Config) { c.HCROnly = true })
	abl.Insert(1, false, BlockTag{}, content)
	// With LCR discarded the block is "big" under CPth 58 -> SRAM, and if
	// it reaches NVM it would cost the full 66 bytes.
	if p, _ := abl.PartitionOf(1); p != SRAM {
		t.Fatalf("HCR-only ablation placed LCR block in %v", p)
	}
	if abl.Stats.NVMBytesWritten != 0 {
		t.Fatal("HCR-only ablation should not have written NVM")
	}
	// HCR blocks are unaffected by the ablation.
	abl.Insert(2, false, BlockTag{}, compressibleBlock())
	if p, _ := abl.PartitionOf(2); p != NVM {
		t.Fatal("HCR block should still go to NVM under the ablation")
	}
}

func TestNoGetXInvalidateAblation(t *testing.T) {
	l := newAblLLC(t, func(c *Config) { c.NoGetXInvalidate = true })
	l.Insert(5, true, BlockTag{}, compressibleBlock())
	r := l.GetX(5)
	if !r.Hit || !r.Dirty {
		t.Fatalf("GetX result %+v", r)
	}
	if !l.Contains(5) {
		t.Fatal("ablation should keep the LLC copy on GetX")
	}
	if l.Stats.InvalidatedOnGetX != 0 {
		t.Fatal("invalidate counter must stay zero under the ablation")
	}
	// The retained copy is clean (ownership moved to L2): evicting it
	// must not write back.
	p, _ := l.PartitionOf(5)
	_ = p
	set := l.SetOf(5)
	for w := 0; w < l.ways(); w++ {
		e := l.entryAt(set, w)
		if e.valid && e.block == 5 && e.dirty {
			t.Fatal("retained copy should be marked clean")
		}
	}
}

func TestNoMigrationLeavesVictimsEvicted(t *testing.T) {
	noMig := basePolicy{name: "CARWR-nomig", compressed: true, gran: nvm.ByteDisabling,
		migrateRR: false, usesThr: true, target: caRWRTarget}
	cfg := Config{
		Sets: 1, SRAMWays: 1, NVMWays: 2,
		Policy: noMig, Thresholds: FixedThreshold(37),
		Endurance: testEndurance, Sampler: stats.NewRNG(31),
	}
	l := New(cfg)
	l.Insert(10, false, BlockTag{}, incompressibleBlock()) // big -> SRAM
	l.GetS(10)                                             // read-reuse
	l.Insert(11, false, BlockTag{}, incompressibleBlock()) // evicts 10
	if l.Contains(10) {
		t.Fatal("no-migration ablation must evict, not migrate")
	}
	if l.Stats.Migrations != 0 {
		t.Fatal("migration counter should be zero")
	}
}

func TestRotateNVMSetsFlushes(t *testing.T) {
	l := newAblLLC(t, nil)
	l.Insert(1, false, BlockTag{}, compressibleBlock())                   // NVM
	l.Insert(2, true, BlockTag{Reuse: ReuseWrite}, incompressibleBlock()) // SRAM (write reuse)
	if p, _ := l.PartitionOf(1); p != NVM {
		t.Fatal("setup: block 1 should be in NVM")
	}
	flushed := l.RotateNVMSets(1)
	if flushed != 1 {
		t.Fatalf("flushed %d entries, want 1", flushed)
	}
	if l.Contains(1) {
		t.Fatal("NVM entry should be flushed by rotation")
	}
	if !l.Contains(2) {
		t.Fatal("SRAM entry must survive rotation")
	}
	if l.Array().SetRemap() != 1 {
		t.Fatal("rotation not applied to the array")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRotateNVMSetsDirtyWriteback(t *testing.T) {
	l := newAblLLC(t, nil)
	l.Insert(1, true, BlockTag{}, compressibleBlock()) // dirty, NVM (small)
	if p, _ := l.PartitionOf(1); p != NVM {
		t.Skip("block not in NVM under this policy path")
	}
	w0 := l.Stats.Writebacks
	l.RotateNVMSets(1)
	if l.Stats.Writebacks != w0+1 {
		t.Fatal("dirty flushed entry must write back")
	}
}

func TestRRIPVictimSelection(t *testing.T) {
	cfg := Config{
		Sets: 1, SRAMWays: 0, NVMWays: 3,
		Policy:         testCP,
		Thresholds:     FixedThreshold(64),
		Endurance:      testEndurance,
		Sampler:        stats.NewRNG(8),
		NVMReplacement: FitRRIP,
	}
	l := New(cfg)
	// Fill all three ways (all inserts land in NVM; SRAMWays=0).
	l.Insert(0, false, BlockTag{}, compressibleBlock())
	l.Insert(1, false, BlockTag{}, compressibleBlock())
	l.Insert(2, false, BlockTag{}, compressibleBlock())
	// Promote block 1 (rrpv 0); 0 and 2 stay at insertion rrpv 2.
	l.GetS(1)
	// Next insert must evict one of the unpromoted blocks, never block 1.
	l.Insert(3, false, BlockTag{}, compressibleBlock())
	if !l.Contains(1) {
		t.Fatal("RRIP evicted the promoted block")
	}
	if l.Contains(0) && l.Contains(2) {
		t.Fatal("nothing was evicted")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRRIPAgingTerminates(t *testing.T) {
	cfg := Config{
		Sets: 1, SRAMWays: 0, NVMWays: 2,
		Policy:         testCP,
		Thresholds:     FixedThreshold(64),
		Endurance:      testEndurance,
		Sampler:        stats.NewRNG(8),
		NVMReplacement: FitRRIP,
	}
	l := New(cfg)
	l.Insert(0, false, BlockTag{}, compressibleBlock())
	l.Insert(1, false, BlockTag{}, compressibleBlock())
	l.GetS(0)
	l.GetS(1) // both promoted to rrpv 0: eviction requires aging rounds
	l.Insert(2, false, BlockTag{}, compressibleBlock())
	if l.Occupancy(0) != 2 {
		t.Fatal("insert after full promotion failed")
	}
}

func TestReplacementString(t *testing.T) {
	if FitLRU.String() != "fit-LRU" || FitRRIP.String() != "fit-RRIP" {
		t.Error("replacement names")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown replacement should render")
	}
}
