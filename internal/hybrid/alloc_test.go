package hybrid_test

// Alloc-regression pins for the two non-bdi hot paths named in the perf
// baseline: a steady-state LLC access (lookup, insert, victim selection,
// fit checks) and an NVM frame write through the full Fig-5 data path.
// The tests fail with the measured count so a regression is
// self-explaining. They run under -race in CI.

import (
	"encoding/binary"
	"testing"

	"repro/internal/bdi"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
)

// contentFor builds a deterministic compressible 64-byte block for address a.
func contentFor(a uint64) []byte {
	b := make([]byte, bdi.BlockSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], a<<32+uint64(i*3))
	}
	return b
}

func TestSteadyStateLLCAccessZeroAllocs(t *testing.T) {
	llc := hybrid.New(hybrid.Config{
		Sets: 64, SRAMWays: 4, NVMWays: 12,
		Policy:    policy.CA{},
		Endurance: nvm.EnduranceModel{Mean: 1e12, CV: 0.2},
		Sampler:   stats.NewRNG(7),
	})
	// A conflicting working set larger than one set's capacity, so the
	// measured loop exercises hits, misses, fresh inserts with victim
	// selection, and in-place dirty updates.
	const n = 24
	blocks := make([]uint64, n)
	contents := make([][]byte, n)
	for i := range blocks {
		blocks[i] = uint64(i) * 64 // all map to set 0 (64 sets, stride 64)
		contents[i] = contentFor(blocks[i])
	}
	for i := range blocks { // warm up: populate the set and the scratch
		llc.Insert(blocks[i], false, hybrid.BlockTag{}, contents[i])
	}
	i := 0
	if allocs := testing.AllocsPerRun(400, func() {
		b := blocks[i%n]
		llc.GetS(b)
		llc.Insert(b, i%3 == 0, hybrid.BlockTag{}, contents[i%n])
		llc.GetX(blocks[(i*7)%n])
		i++
	}); allocs != 0 {
		t.Errorf("steady-state LLC access allocates %.1f times per run, want 0", allocs)
	}
}

func TestNVMFrameWriteZeroAllocs(t *testing.T) {
	f := nvm.NewFrame(nvm.EnduranceModel{Mean: 1e12, CV: 0.1}, stats.NewRNG(3), nvm.ByteDisabling)
	d := hybrid.NewDataPath()
	content := contentFor(42)
	if _, err := d.WriteBlock(content, f, 5); err != nil { // warm the codeword scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(400, func() {
		if _, err := d.WriteBlock(content, f, 5); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("NVM frame write allocates %.1f times per run, want 0", allocs)
	}
	// The read path shares the scratch discipline.
	st, err := d.WriteBlock(content, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadBlock(st); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(400, func() {
		if _, _, err := d.ReadBlock(st); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("NVM frame read allocates %.1f times per run, want 0", allocs)
	}
}
