package hybrid

import (
	"fmt"

	"repro/internal/bdi"
	"repro/internal/metrics"
	"repro/internal/nvm"
)

// Config describes an LLC instance.
type Config struct {
	Sets     int
	SRAMWays int
	NVMWays  int
	Policy   Policy
	// Thresholds supplies per-set CPth values; use FixedThreshold for CA
	// and CA_RWR, a dueling.Controller for CP_SD. May be nil when the
	// policy does not consult thresholds.
	Thresholds ThresholdProvider
	Endurance  nvm.EnduranceModel
	Sampler    nvm.Sampler

	// HCROnly ablates the paper's modified BDI back to the original one:
	// low-compression-ratio encodings are discarded, so blocks that only
	// compress above the HCR limit are stored uncompressed (§II-B argues
	// keeping LCR encodings; this flag quantifies that choice).
	HCROnly bool

	// NoGetXInvalidate ablates the invalidate-on-GetX-hit coherence flow
	// of §III-A: the LLC keeps its (now stale) copy, and the dirty block
	// overwrites it in place when evicted from L2.
	NoGetXInvalidate bool

	// MaterializeData runs the full Fig-5 data path (SECDED + scatter)
	// for every NVM block, verifying reads bit-exactly. Validation mode:
	// roughly 10x slower. Requires a compressing policy.
	MaterializeData bool

	// NVMReplacement selects the victim-choice scheme inside the NVM
	// part. The paper uses (Fit-)LRU; FitRRIP is an extension using
	// 2-bit re-reference prediction values (SRRIP), which resists
	// thrashing better on scan-heavy workloads.
	NVMReplacement Replacement

	// Metrics is the registry the LLC attaches its counters to; nil
	// makes the LLC create its own. One registry serves one LLC — the
	// counter names collide otherwise.
	Metrics *metrics.Registry

	// SetMapper remaps the logical set index to the physical
	// directory/frame row (inter-set wear leveling, internal/coloring).
	// nil is the identity mapping — the classic path, byte for byte.
	SetMapper SetMapper

	// SetMapperAdvance makes the LLC advance the mapper at its own
	// EndEpoch boundaries and flush the directory when the mapping
	// changes. The sequential engine sets it; the shard engine leaves
	// it false and advances the single shared mapper once per epoch at
	// the router's barrier instead.
	SetMapperAdvance bool
}

// Replacement selects the NVM-part victim scheme.
type Replacement uint8

// Replacement schemes.
const (
	// FitLRU is the paper's scheme: LRU among fitting frames (§III-B1).
	FitLRU Replacement = iota
	// FitRRIP is SRRIP restricted to fitting frames: insert at RRPV 2,
	// promote to 0 on hit, evict the first fitting entry with RRPV 3,
	// aging all candidates when none qualifies.
	FitRRIP
)

// String names the scheme.
func (r Replacement) String() string {
	switch r {
	case FitLRU:
		return "fit-LRU"
	case FitRRIP:
		return "fit-RRIP"
	}
	return fmt.Sprintf("Replacement(%d)", uint8(r))
}

// Stats aggregates LLC activity counters. All counters are cumulative
// until ResetStats.
type Stats struct {
	GetS, GetX        uint64 // requests from the private levels
	Hits, Misses      uint64
	SRAMHits          uint64
	NVMHits           uint64
	Inserts           uint64
	SRAMInserts       uint64
	NVMInserts        uint64
	NVMBlockWrites    uint64 // block writes into NVM frames (inserts + updates)
	NVMBytesWritten   uint64 // ECB bytes written into NVM frames
	Migrations        uint64 // SRAM->NVM migrations (CA_RWR / LHybrid)
	Writebacks        uint64 // dirty LLC evictions sent to memory
	NVMFallbacks      uint64 // NVM-targeted blocks placed in SRAM for lack of fit
	InPlaceUpdates    uint64 // dirty L2 evictions updating an existing LLC copy
	InsertHCR         uint64 // inserted blocks by compression class
	InsertLCR         uint64
	InsertIncomp      uint64
	InvalidatedOnGetX uint64
	// DataPathErrors counts materialized-mode verification failures;
	// always zero for a correct data path.
	DataPathErrors uint64
}

// HitRate returns hits over total requests.
func (s *Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type entry struct {
	valid bool
	dirty bool
	block uint64
	cb    uint8 // compressed size of the stored block
	rrpv  uint8 // re-reference prediction value (RRIP NVM replacement)
	tag   BlockTag
	last  uint64
}

// LLC is the hybrid last-level cache. Ways [0, SRAMWays) are SRAM;
// ways [SRAMWays, SRAMWays+NVMWays) map to NVM frames.
type LLC struct {
	sets, sramWays, nvmWays int
	entries                 []entry
	arr                     *nvm.Array
	pol                     Policy
	thr                     ThresholdProvider
	tick                    uint64
	hcrOnly                 bool
	noGetXInval             bool
	data                    *dataStore
	nvmRepl                 Replacement
	resolver                SetPolicyResolver // non-nil for tournament meta-policies
	polRRIP                 RRIPInserter      // non-nil when pol itself is RRIP-family
	reg                     *metrics.Registry
	// capScratch caches each way's effective capacity for the duration of
	// one victim-selection pass, so the fit-check loops resolve each frame
	// (and its set remap) once instead of per candidate comparison. Owned
	// by the LLC; only valid inside a single insert.
	capScratch []int

	mapper        SetMapper
	mapperAdvance bool
	rowWear       []float64 // scratch for RowWear

	Stats Stats
}

// AccessResult reports the outcome of a GetS/GetX request.
type AccessResult struct {
	Hit   bool
	Part  Partition // where the block was found (valid on hit)
	Dirty bool      // for GetX hits: ownership of dirty data moves to L2
	Tag   BlockTag  // updated tag to be stored alongside the block in L2
}

// InsertOutcome reports what an Insert did, so the hierarchy's timing
// model can account bank/write-port occupancy.
type InsertOutcome struct {
	Wrote bool      // a data-array write happened (fresh fill or dirty update)
	Part  Partition // which partition was written
}

// New builds an LLC.
func New(cfg Config) *LLC {
	if cfg.Sets <= 0 || cfg.SRAMWays < 0 || cfg.NVMWays < 0 || cfg.SRAMWays+cfg.NVMWays == 0 {
		panic(fmt.Sprintf("hybrid: invalid geometry %d sets, %d+%d ways",
			cfg.Sets, cfg.SRAMWays, cfg.NVMWays))
	}
	if cfg.Policy == nil {
		panic("hybrid: nil policy")
	}
	thr := cfg.Thresholds
	if thr == nil {
		thr = FixedThreshold(bdi.BlockSize)
	}
	l := &LLC{
		sets:        cfg.Sets,
		sramWays:    cfg.SRAMWays,
		nvmWays:     cfg.NVMWays,
		entries:     make([]entry, cfg.Sets*(cfg.SRAMWays+cfg.NVMWays)),
		pol:         cfg.Policy,
		thr:         thr,
		hcrOnly:     cfg.HCROnly,
		noGetXInval: cfg.NoGetXInvalidate,
		nvmRepl:     cfg.NVMReplacement,
		capScratch:  make([]int, cfg.SRAMWays+cfg.NVMWays),
	}
	l.resolver, _ = cfg.Policy.(SetPolicyResolver)
	l.polRRIP, _ = cfg.Policy.(RRIPInserter)
	l.mapper = cfg.SetMapper
	l.mapperAdvance = cfg.SetMapperAdvance
	if cfg.NVMWays > 0 {
		l.arr = nvm.NewArray(cfg.Sets, cfg.NVMWays, cfg.Endurance, cfg.Sampler, cfg.Policy.Granularity())
	}
	if cfg.MaterializeData {
		if cfg.NVMWays == 0 {
			panic("hybrid: MaterializeData needs NVM ways")
		}
		l.initMaterialize()
	}
	l.reg = cfg.Metrics
	if l.reg == nil {
		l.reg = metrics.NewRegistry()
	}
	l.registerMetrics(l.reg)
	return l
}

// Sets returns the number of sets.
func (l *LLC) Sets() int { return l.sets }

// SRAMWays returns the number of SRAM ways per set.
func (l *LLC) SRAMWays() int { return l.sramWays }

// NVMWays returns the number of NVM ways per set.
func (l *LLC) NVMWays() int { return l.nvmWays }

// Policy returns the insertion policy in use.
func (l *LLC) Policy() Policy { return l.pol }

// Thresholds returns the threshold provider in use.
func (l *LLC) Thresholds() ThresholdProvider { return l.thr }

// Array returns the NVM array (nil for SRAM-only configurations); the
// forecast procedure ages it between simulation phases.
func (l *LLC) Array() *nvm.Array { return l.arr }

// CompressionEnabled reports whether insertions need block contents.
func (l *LLC) CompressionEnabled() bool { return l.pol.Compressed() }

// SetOf maps a block address to the physical set (directory/frame row)
// holding it: the logical index (block mod sets) pushed through the
// coloring mapper when one is configured.
func (l *LLC) SetOf(block uint64) int {
	s := int(block % uint64(l.sets))
	if l.mapper != nil {
		s = l.mapper.Map(s)
	}
	return s
}

func (l *LLC) ways() int { return l.sramWays + l.nvmWays }

// policyFor resolves the policy governing a set: the tournament
// candidate assigned to (or adopted by) the set for meta-policies, the
// configured policy otherwise. Every per-insert decision goes through it.
func (l *LLC) policyFor(set int) Policy {
	if l.resolver != nil {
		return l.resolver.PolicyFor(set)
	}
	return l.pol
}

// rripFor returns the RRIP inserter governing a set, nil when the set's
// policy is not RRIP-family.
func (l *LLC) rripFor(set int) RRIPInserter {
	if l.resolver != nil {
		ri, _ := l.resolver.PolicyFor(set).(RRIPInserter)
		return ri
	}
	return l.polRRIP
}

func (l *LLC) entryAt(set, way int) *entry { return &l.entries[set*l.ways()+way] }

func (l *LLC) partOf(way int) Partition {
	if way < l.sramWays {
		return SRAM
	}
	return NVM
}

func (l *LLC) frameOf(set, way int) *nvm.Frame {
	return l.arr.Frame(set, way-l.sramWays)
}

func (l *LLC) touch(e *entry) {
	l.tick++
	e.last = l.tick
}

func (l *LLC) find(block uint64) (set, way int, e *entry) {
	set = l.SetOf(block)
	for w := 0; w < l.ways(); w++ {
		c := l.entryAt(set, w)
		if c.valid && c.block == block {
			return set, w, c
		}
	}
	return set, -1, nil
}

// GetS handles a read request from a private level that missed in L2.
// On a hit the block stays in the LLC; its tag is updated per §IV-B
// (read-reuse if clean, write-reuse if dirty; LHybrid LB promotion on clean
// hits; TAP hit counter).
func (l *LLC) GetS(block uint64) AccessResult {
	l.Stats.GetS++
	set, way, e := l.find(block)
	if e == nil {
		l.Stats.Misses++
		return AccessResult{}
	}
	l.Stats.Hits++
	l.thr.RecordHit(set)
	part := l.partOf(way)
	if part == SRAM {
		l.Stats.SRAMHits++
	} else {
		l.Stats.NVMHits++
	}
	l.verifyMaterialized(set, way)
	if e.dirty {
		e.tag.Reuse = ReuseWrite
	} else {
		e.tag.Reuse = ReuseRead
		e.tag.LB = true // LHybrid: clean read-hit promotes to loop-block
	}
	if e.tag.Hits < 7 {
		e.tag.Hits++
	}
	e.rrpv = 0 // RRIP: near-immediate re-reference
	l.touch(e)
	return AccessResult{Hit: true, Part: part, Tag: e.tag}
}

// GetX handles a request with write permission. A hit returns the block to
// the private levels and invalidates the LLC copy (§III-A); the block is
// tagged write-reused and loses its loop-block status.
func (l *LLC) GetX(block uint64) AccessResult {
	l.Stats.GetX++
	set, way, e := l.find(block)
	if e == nil {
		l.Stats.Misses++
		return AccessResult{}
	}
	l.Stats.Hits++
	l.thr.RecordHit(set)
	part := l.partOf(way)
	if part == SRAM {
		l.Stats.SRAMHits++
	} else {
		l.Stats.NVMHits++
	}
	l.verifyMaterialized(set, way)
	tag := e.tag
	tag.Reuse = ReuseWrite
	tag.LB = false
	if tag.Hits < 7 {
		tag.Hits++
	}
	res := AccessResult{Hit: true, Part: part, Dirty: e.dirty, Tag: tag}
	if l.noGetXInval {
		// Ablation: keep the (stale) copy; the private levels own the
		// dirty data and will overwrite it on eviction.
		e.tag = tag
		e.dirty = false
		l.touch(e)
		return res
	}
	l.Stats.InvalidatedOnGetX++
	l.clearMaterialized(set, way)
	*e = entry{}
	return res
}

// Insert handles a block evicted from L2 (clean or dirty). content provides
// the block's bytes for compression; it may be nil when the policy does not
// compress, in which case the block is treated as stored uncompressed.
// Non-inclusive flow (§III-A): if the block is already present and the
// incoming copy is clean, nothing happens; if dirty, the LLC copy is
// updated in place.
func (l *LLC) Insert(block uint64, dirty bool, tag BlockTag, content []byte) InsertOutcome {
	set, way, e := l.find(block)
	cb := bdi.BlockSize
	if l.pol.Compressed() && content != nil {
		cb = bdi.SizeOf(content)
		if l.hcrOnly && cb > bdi.HCRLimit {
			cb = bdi.BlockSize // original BDI: LCR encodings discarded
		}
	}
	if e != nil {
		if !dirty {
			return InsertOutcome{} // already present and up to date
		}
		l.updateInPlace(set, way, e, dirty, tag, cb, content)
		return InsertOutcome{Wrote: true, Part: l.partOf(way)}
	}
	l.Stats.Inserts++
	switch {
	case cb <= bdi.HCRLimit && l.pol.Compressed():
		l.Stats.InsertHCR++
	case cb < bdi.BlockSize && l.pol.Compressed():
		l.Stats.InsertLCR++
	default:
		l.Stats.InsertIncomp++
	}
	nvmBefore := l.Stats.NVMInserts
	l.insertFresh(set, block, dirty, tag, cb, content)
	if l.Stats.NVMInserts > nvmBefore {
		return InsertOutcome{Wrote: true, Part: NVM}
	}
	return InsertOutcome{Wrote: true, Part: SRAM}
}

// insertFresh runs the policy's steering decision and places a block that
// is not currently in the LLC.
func (l *LLC) insertFresh(set int, block uint64, dirty bool, tag BlockTag, cb int, content []byte) {
	pol := l.policyFor(set)
	info := InsertInfo{Set: set, Block: block, Dirty: dirty, CBSize: cb, Tag: tag}
	if pol.UsesThreshold() {
		info.CPth = l.thr.CPthFor(set)
	}
	if l.pol.Global() {
		l.insertGlobal(set, block, dirty, tag, cb, content)
		return
	}
	if pol.Target(info) == NVM && l.nvmWays > 0 {
		if l.insertNVM(set, block, dirty, tag, cb, content) {
			return
		}
		l.Stats.NVMFallbacks++ // no NVM frame fits: place in SRAM (§IV-B)
	}
	l.insertSRAM(set, block, dirty, tag, cb, content)
}

// updateInPlace rewrites an existing LLC copy with fresh dirty data. If the
// block now compresses to a size that no longer fits its NVM frame, it is
// reinserted through the normal policy path.
func (l *LLC) updateInPlace(set, way int, e *entry, dirty bool, tag BlockTag, cb int, content []byte) {
	if l.partOf(way) == NVM {
		f := l.frameOf(set, way)
		if !f.Fits(cb) {
			// The rewritten block no longer fits its aged frame: reinsert
			// through the normal policy path.
			block := e.block
			*e = entry{}
			l.clearMaterialized(set, way)
			l.Stats.Inserts++
			l.insertFresh(set, block, dirty, tag, cb, content)
			return
		}
		l.recordNVMWrite(set, f, cb)
	}
	l.rememberContent(set, way, content)
	l.Stats.InPlaceUpdates++
	e.dirty = true
	e.cb = uint8(cb)
	e.tag = tag
	l.touch(e)
}

func (l *LLC) recordNVMWrite(set int, f *nvm.Frame, cb int) {
	ecb := cb + nvm.MetaBytes
	if l.data == nil {
		f.RecordWrite(ecb) // in materialized mode the data path wears the frame
	}
	l.Stats.NVMBlockWrites++
	l.Stats.NVMBytesWritten += uint64(ecb)
	l.thr.RecordNVMBytes(set, ecb)
}

// insertNVM places the block into an NVM frame using the configured
// fit-constrained replacement: the victim is chosen among frames whose
// effective capacity fits the compressed block (§III-B1). Returns false
// when no frame fits.
func (l *LLC) insertNVM(set int, block uint64, dirty bool, tag BlockTag, cb int, content []byte) bool {
	victim := l.chooseNVMVictim(set, cb)
	if victim < 0 {
		return false
	}
	rrpv := uint8(2) // SRRIP "long" insertion, the FitRRIP default
	if ri := l.rripFor(set); ri != nil {
		rrpv = ri.InsertRRPV(InsertInfo{Set: set, Block: block, Dirty: dirty, CBSize: cb, Tag: tag, CPth: l.thr.CPthFor(set)})
	}
	l.evict(set, victim)
	e := l.entryAt(set, victim)
	*e = entry{valid: true, dirty: dirty, block: block, cb: uint8(cb), tag: tag, rrpv: rrpv}
	l.touch(e)
	l.Stats.NVMInserts++
	l.recordNVMWrite(set, l.frameOf(set, victim), cb)
	l.rememberContent(set, victim, content)
	return true
}

// nvmCaps refreshes capScratch with each NVM way's effective capacity for
// the current set. Capacities only change when a write lands, so one
// snapshot is valid for a whole victim-selection pass.
func (l *LLC) nvmCaps(set int) []int {
	caps := l.capScratch
	for w := l.sramWays; w < l.ways(); w++ {
		caps[w] = l.frameOf(set, w).EffectiveCapacity()
	}
	return caps
}

// chooseNVMVictim picks the NVM way to fill for a cb-sized block, or -1
// when no frame fits.
func (l *LLC) chooseNVMVictim(set, cb int) int {
	switch {
	case l.nvmRepl == FitRRIP || l.rripFor(set) != nil:
		return l.chooseNVMVictimRRIP(set, cb)
	default:
		caps := l.nvmCaps(set)
		victim := -1
		victimTick := ^uint64(0)
		for w := l.sramWays; w < l.ways(); w++ {
			if cb > caps[w] {
				continue
			}
			e := l.entryAt(set, w)
			if !e.valid {
				return w
			}
			if e.last < victimTick {
				victim, victimTick = w, e.last
			}
		}
		return victim
	}
}

// chooseNVMVictimRRIP implements SRRIP over the fitting frames: prefer an
// invalid way, then the first fitting entry with RRPV 3; if none, age
// every fitting entry and retry.
func (l *LLC) chooseNVMVictimRRIP(set, cb int) int {
	caps := l.nvmCaps(set)
	anyFit := false
	for w := l.sramWays; w < l.ways(); w++ {
		if cb <= caps[w] {
			anyFit = true
			if !l.entryAt(set, w).valid {
				return w
			}
		}
	}
	if !anyFit {
		return -1
	}
	for {
		for w := l.sramWays; w < l.ways(); w++ {
			if cb > caps[w] {
				continue
			}
			if l.entryAt(set, w).rrpv >= 3 {
				return w
			}
		}
		for w := l.sramWays; w < l.ways(); w++ {
			if cb <= caps[w] {
				if e := l.entryAt(set, w); e.valid && e.rrpv < 3 {
					e.rrpv++
				}
			}
		}
	}
}

// insertSRAM places the block into an SRAM way, applying the policy's
// migration behaviour when a victim must be chosen.
func (l *LLC) insertSRAM(set int, block uint64, dirty bool, tag BlockTag, cb int, content []byte) {
	if l.sramWays == 0 {
		// Degenerate configuration (NVM-only): retry NVM ignoring the
		// policy target; if nothing fits the block bypasses the LLC.
		l.insertNVM(set, block, dirty, tag, cb, content)
		return
	}
	way := -1
	for w := 0; w < l.sramWays; w++ {
		if !l.entryAt(set, w).valid {
			way = w
			break
		}
	}
	if way < 0 {
		pol := l.policyFor(set)
		way = l.chooseSRAMVictim(set)
		v := l.entryAt(set, way)
		migrated := false
		switch {
		case pol.LHybridMigrate() && v.tag.LB:
			migrated = l.migrate(set, way)
		case pol.MigrateReadReuse() && v.tag.Reuse == ReuseRead:
			migrated = l.migrate(set, way)
		}
		if !migrated {
			l.evict(set, way)
		}
	}
	e := l.entryAt(set, way)
	*e = entry{valid: true, dirty: dirty, block: block, cb: uint8(cb), tag: tag}
	l.touch(e)
	l.Stats.SRAMInserts++
	l.rememberContent(set, way, content)
}

// chooseSRAMVictim picks the SRAM way to vacate. For LHybrid the most
// recent loop-block is preferred (it is migrated, not evicted); otherwise
// the LRU way is chosen.
func (l *LLC) chooseSRAMVictim(set int) int {
	if l.policyFor(set).LHybridMigrate() {
		best, bestTick := -1, uint64(0)
		for w := 0; w < l.sramWays; w++ {
			e := l.entryAt(set, w)
			if e.valid && e.tag.LB && e.last >= bestTick {
				best, bestTick = w, e.last
			}
		}
		if best >= 0 {
			return best
		}
	}
	lru, lruTick := 0, ^uint64(0)
	for w := 0; w < l.sramWays; w++ {
		if e := l.entryAt(set, w); e.last < lruTick {
			lru, lruTick = w, e.last
		}
	}
	return lru
}

// migrate moves the entry at (set, way) from SRAM into the NVM part,
// freeing the way. Returns false (entry evicted normally) when the block
// fits no NVM frame.
func (l *LLC) migrate(set, way int) bool {
	e := l.entryAt(set, way)
	cb := int(e.cb)
	if !l.pol.Compressed() {
		cb = bdi.BlockSize
	}
	content := l.contentAt(set, way)
	if l.nvmWays == 0 || !l.insertNVM(set, e.block, e.dirty, e.tag, cb, content) {
		return false
	}
	l.Stats.Migrations++
	l.clearMaterialized(set, way)
	*e = entry{}
	return true
}

// evict clears (set, way), writing dirty data back to memory.
func (l *LLC) evict(set, way int) {
	e := l.entryAt(set, way)
	if e.valid && e.dirty {
		l.Stats.Writebacks++
	}
	l.clearMaterialized(set, way)
	*e = entry{}
}

// insertGlobal implements the NVM-unaware BH/BH_CP replacement: one
// (Fit-)LRU list across both parts. The victim is the LRU entry among the
// frames the incoming block fits in; SRAM frames always fit.
func (l *LLC) insertGlobal(set int, block uint64, dirty bool, tag BlockTag, cb int, content []byte) {
	var caps []int
	if l.nvmWays > 0 {
		caps = l.nvmCaps(set)
	}
	victim := -1
	victimTick := ^uint64(0)
	for w := 0; w < l.ways(); w++ {
		if l.partOf(w) == NVM && cb > caps[w] {
			continue
		}
		e := l.entryAt(set, w)
		if !e.valid {
			victim = w
			break
		}
		if e.last < victimTick {
			victim, victimTick = w, e.last
		}
	}
	if victim < 0 {
		return // nothing fits anywhere: bypass
	}
	l.evict(set, victim)
	e := l.entryAt(set, victim)
	*e = entry{valid: true, dirty: dirty, block: block, cb: uint8(cb), tag: tag}
	l.touch(e)
	if l.partOf(victim) == NVM {
		l.Stats.NVMInserts++
		l.recordNVMWrite(set, l.frameOf(set, victim), cb)
	} else {
		l.Stats.SRAMInserts++
	}
	l.rememberContent(set, victim, content)
}

// InvalidateUnfit drops NVM-resident entries whose frame can no longer
// hold them (the frame died or shrank below the stored compressed size).
// The forecast procedure calls this after aging the array between phases;
// dirty casualties are counted as writebacks (scrubbed to memory before
// the frame is disabled). It returns the number of entries dropped.
func (l *LLC) InvalidateUnfit() int {
	if l.arr == nil {
		return 0
	}
	dropped := 0
	for set := 0; set < l.sets; set++ {
		for w := l.sramWays; w < l.ways(); w++ {
			e := l.entryAt(set, w)
			if !e.valid {
				continue
			}
			if !l.frameOf(set, w).Fits(int(e.cb)) {
				if e.dirty {
					l.Stats.Writebacks++
				}
				l.clearMaterialized(set, w)
				*e = entry{}
				dropped++
			}
		}
	}
	return dropped
}

// RotateNVMSets advances the NVM array's inter-set wear-leveling rotation
// by n rows and flushes all NVM-resident entries, whose physical frames
// have changed (the hardware scheme migrates the lines; we model the
// migration as a refill, writing dirty casualties back to memory). It
// returns the number of entries flushed.
func (l *LLC) RotateNVMSets(n int) int {
	if l.arr == nil || n == 0 {
		return 0
	}
	l.arr.AdvanceSetRemap(n)
	flushed := 0
	for set := 0; set < l.sets; set++ {
		for w := l.sramWays; w < l.ways(); w++ {
			e := l.entryAt(set, w)
			if !e.valid {
				continue
			}
			if e.dirty {
				l.Stats.Writebacks++
			}
			l.clearMaterialized(set, w)
			*e = entry{}
			flushed++
		}
	}
	return flushed
}

// EndEpoch forwards the epoch boundary to the threshold provider and,
// when the LLC owns its coloring mapper (SetMapperAdvance), advances
// it — flushing exactly the physical rows whose mapping changed, since
// only those rows' resident blocks moved under them.
func (l *LLC) EndEpoch() {
	l.thr.EndEpoch()
	if l.mapper != nil && l.mapperAdvance {
		old := l.SnapshotMapping(nil)
		if l.mapper.Epoch(l.RowWear()) {
			l.FlushRows(ChangedRows(old, l.mapper))
		}
	}
}

// SnapshotMapping records the mapper's current logical→physical row
// mapping into dst (grown as needed). Callers snapshot before advancing
// the mapper and diff with ChangedRows to flush only the stale rows.
func (l *LLC) SnapshotMapping(dst []int) []int {
	if cap(dst) < l.sets {
		dst = make([]int, l.sets)
	}
	dst = dst[:l.sets]
	for s := 0; s < l.sets; s++ {
		dst[s] = l.mapper.Map(s)
	}
	return dst
}

// ChangedRows diffs a pre-advance mapping snapshot against the mapper's
// current mapping and returns every physical row that hosts different
// logical sets than before — the old and new images of each remapped
// logical set (deduplicated, ascending). Those rows hold stale blocks;
// all other rows still satisfy SetOf(block) == row and keep their
// contents across the remap.
func ChangedRows(old []int, m SetMapper) []int {
	stale := make([]bool, len(old))
	for s, prev := range old {
		now := m.Map(s)
		if now != prev {
			stale[prev] = true
			stale[now] = true
		}
	}
	var rows []int
	for r, s := range stale {
		if s {
			rows = append(rows, r)
		}
	}
	return rows
}

// RowWear returns the cumulative per-physical-row wear (each row's
// frame wear summed across its NVM ways), nil for SRAM-only
// configurations. The returned slice is owned by the LLC and reused.
func (l *LLC) RowWear() []float64 {
	if l.arr == nil {
		return nil
	}
	if l.rowWear == nil {
		l.rowWear = make([]float64, l.sets)
	}
	return nvm.RowWearInto(l.rowWear, l.arr.Frames(), l.sets, l.arr.Ways())
}

// FlushDirectory invalidates every directory entry, SRAM and NVM alike,
// writing dirty casualties back to memory — the refill model of a
// hardware set-remap event (the coloring migration moves whole rows, so
// unlike RotateNVMSets the SRAM ways move too). It returns the number
// of entries flushed.
func (l *LLC) FlushDirectory() int {
	flushed := 0
	for set := 0; set < l.sets; set++ {
		flushed += l.flushRow(set)
	}
	return flushed
}

// FlushRows invalidates the directory entries of the listed physical
// rows only — the selective form of FlushDirectory the coloring remap
// uses, so a pairs-bounded wear-feedback swap pays for the rows it
// moved instead of the whole cache. Returns the number of entries
// flushed.
func (l *LLC) FlushRows(rows []int) int {
	flushed := 0
	for _, set := range rows {
		flushed += l.flushRow(set)
	}
	return flushed
}

func (l *LLC) flushRow(set int) int {
	flushed := 0
	for w := 0; w < l.ways(); w++ {
		e := l.entryAt(set, w)
		if !e.valid {
			continue
		}
		if e.dirty {
			l.Stats.Writebacks++
		}
		l.clearMaterialized(set, w)
		*e = entry{}
		flushed++
	}
	return flushed
}

// ResetStats clears the statistics block.
func (l *LLC) ResetStats() { l.Stats = Stats{} }

// EffectiveCapacityFraction returns the NVM part's remaining capacity
// fraction (1.0 for SRAM-only configurations).
func (l *LLC) EffectiveCapacityFraction() float64 {
	if l.arr == nil {
		return 1
	}
	return l.arr.EffectiveCapacityFraction()
}

// Occupancy returns the number of valid entries in a set, for tests.
func (l *LLC) Occupancy(set int) int {
	n := 0
	for w := 0; w < l.ways(); w++ {
		if l.entryAt(set, w).valid {
			n++
		}
	}
	return n
}

// Contains reports whether a block is present, for tests.
func (l *LLC) Contains(block uint64) bool {
	_, _, e := l.find(block)
	return e != nil
}

// CheckInvariants verifies the LLC's structural invariants: no duplicate
// blocks, correct set mapping, statistics consistency, and (after an
// InvalidateUnfit pass) every NVM-resident block fitting its frame. It is
// exported for integration tests and returns the first violation found.
func (l *LLC) CheckInvariants() error {
	for set := 0; set < l.sets; set++ {
		seen := make(map[uint64]int, l.ways())
		for w := 0; w < l.ways(); w++ {
			e := l.entryAt(set, w)
			if !e.valid {
				continue
			}
			if prev, dup := seen[e.block]; dup {
				return fmt.Errorf("hybrid: block %#x in set %d ways %d and %d", e.block, set, prev, w)
			}
			seen[e.block] = w
			if l.SetOf(e.block) != set {
				return fmt.Errorf("hybrid: block %#x stored in wrong set %d", e.block, set)
			}
			if e.cb == 0 || int(e.cb) > bdi.BlockSize {
				return fmt.Errorf("hybrid: block %#x has invalid compressed size %d", e.block, e.cb)
			}
			if l.partOf(w) == NVM && l.frameOf(set, w).Dead() {
				return fmt.Errorf("hybrid: block %#x resident in dead frame (set %d way %d)", e.block, set, w)
			}
		}
	}
	s := &l.Stats
	if s.Hits+s.Misses != s.GetS+s.GetX {
		return fmt.Errorf("hybrid: hits+misses (%d) != requests (%d)", s.Hits+s.Misses, s.GetS+s.GetX)
	}
	if s.SRAMHits+s.NVMHits != s.Hits {
		return fmt.Errorf("hybrid: partition hits (%d) != hits (%d)", s.SRAMHits+s.NVMHits, s.Hits)
	}
	return nil
}

// Tick returns the LLC's LRU clock: the timestamp handed to the most
// recently touched entry. Valid entries always carry Last values in
// (0, Tick].
func (l *LLC) Tick() uint64 { return l.tick }

// EntryView is a read-only projection of one directory entry, exposed for
// the external invariant suites (package check) without opening up the
// mutable entry array.
type EntryView struct {
	Valid bool
	Dirty bool
	Block uint64
	CB    int    // stored compressed size in data bytes
	Last  uint64 // LRU timestamp (value of Tick when last touched)
	Part  Partition
}

// ViewEntry returns a read-only view of the directory entry at (set, way).
// Ways [0, SRAMWays) are SRAM; [SRAMWays, SRAMWays+NVMWays) map to NVM
// frames reachable through Array().Frame(set, way-SRAMWays).
func (l *LLC) ViewEntry(set, way int) EntryView {
	e := l.entryAt(set, way)
	return EntryView{
		Valid: e.valid,
		Dirty: e.dirty,
		Block: e.block,
		CB:    int(e.cb),
		Last:  e.last,
		Part:  l.partOf(way),
	}
}

// PartitionOf returns the partition currently holding block.
func (l *LLC) PartitionOf(block uint64) (Partition, bool) {
	_, way, e := l.find(block)
	if e == nil {
		return 0, false
	}
	return l.partOf(way), true
}
