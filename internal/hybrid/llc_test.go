package hybrid

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nvm"
	"repro/internal/stats"
)

// Test policies: minimal local implementations so the hybrid package does
// not depend on internal/policy (which imports hybrid).

type basePolicy struct {
	name       string
	compressed bool
	global     bool
	gran       nvm.Granularity
	migrateRR  bool
	lhMigrate  bool
	usesThr    bool
	target     func(InsertInfo) Partition
}

func (p basePolicy) Name() string                 { return p.name }
func (p basePolicy) Compressed() bool             { return p.compressed }
func (p basePolicy) Granularity() nvm.Granularity { return p.gran }
func (p basePolicy) Global() bool                 { return p.global }
func (p basePolicy) MigrateReadReuse() bool       { return p.migrateRR }
func (p basePolicy) LHybridMigrate() bool         { return p.lhMigrate }
func (p basePolicy) UsesThreshold() bool          { return p.usesThr }
func (p basePolicy) Target(i InsertInfo) Partition {
	if p.target == nil {
		return SRAM
	}
	return p.target(i)
}

func caRWRTarget(i InsertInfo) Partition {
	switch i.Tag.Reuse {
	case ReuseRead:
		return NVM
	case ReuseWrite:
		return SRAM
	}
	if i.Small() {
		return NVM
	}
	return SRAM
}

var (
	testBH = basePolicy{name: "BH", global: true, gran: nvm.FrameDisabling}
	testCP = basePolicy{name: "CARWR", compressed: true, gran: nvm.ByteDisabling,
		migrateRR: true, usesThr: true, target: caRWRTarget}
)

var testEndurance = nvm.EnduranceModel{Mean: 1e9, CV: 0.2}

func newLLC(t testing.TB, pol Policy, thr ThresholdProvider, sets, sram, nw int) *LLC {
	t.Helper()
	return New(Config{
		Sets: sets, SRAMWays: sram, NVMWays: nw,
		Policy: pol, Thresholds: thr,
		Endurance: testEndurance, Sampler: stats.NewRNG(99),
	})
}

// compressibleBlock returns content that BDI compresses to 16 bytes (B8D1).
func compressibleBlock() []byte {
	b := make([]byte, 64)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], 1<<40+uint64(i))
	}
	return b
}

// incompressibleBlock returns content BDI cannot compress.
func incompressibleBlock() []byte {
	b := make([]byte, 64)
	s := stats.NewRNG(1234)
	for i := range b {
		b[i] = byte(s.Uint32())
	}
	return b
}

func TestTagPackUnpack(t *testing.T) {
	for _, tag := range []BlockTag{
		{}, {Reuse: ReuseRead}, {Reuse: ReuseWrite, LB: true, Hits: 3},
		{Hits: 7}, {Reuse: ReuseWrite, Hits: 9}, // saturates
	} {
		got := UnpackTag(tag.Pack())
		want := tag
		if want.Hits > 7 {
			want.Hits = 7
		}
		if got != want {
			t.Errorf("roundtrip %+v -> %+v", tag, got)
		}
	}
}

func TestTagPackProperty(t *testing.T) {
	f := func(v uint8) bool {
		// unpack∘pack∘unpack = unpack (pack is a left inverse on the
		// 7-bit-used domain..
		tag := UnpackTag(v & 0x7F)
		return UnpackTag(tag.Pack()) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissThenInsertThenHit(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	if r := l.GetS(5); r.Hit {
		t.Fatal("empty LLC should miss")
	}
	l.Insert(5, false, BlockTag{}, compressibleBlock())
	r := l.GetS(5)
	if !r.Hit {
		t.Fatal("inserted block should hit")
	}
	if r.Part != NVM {
		t.Fatalf("small clean no-reuse block should be in NVM, got %v", r.Part)
	}
	if r.Tag.Reuse != ReuseRead || !r.Tag.LB || r.Tag.Hits != 1 {
		t.Fatalf("clean hit should set read-reuse + LB + hits=1, got %+v", r.Tag)
	}
	if l.Stats.Hits != 1 || l.Stats.Misses != 1 {
		t.Fatalf("stats %d/%d", l.Stats.Hits, l.Stats.Misses)
	}
}

func TestBigBlockGoesToSRAM(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(7, false, BlockTag{}, incompressibleBlock())
	p, ok := l.PartitionOf(7)
	if !ok || p != SRAM {
		t.Fatalf("incompressible block in %v", p)
	}
	if l.Stats.InsertIncomp != 1 {
		t.Fatal("incompressible class not counted")
	}
}

func TestWriteReuseGoesToSRAM(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(3, true, BlockTag{Reuse: ReuseWrite}, compressibleBlock())
	if p, _ := l.PartitionOf(3); p != SRAM {
		t.Fatalf("write-reuse block in %v, want SRAM (Table II)", p)
	}
}

func TestReadReuseBigBlockGoesToNVM(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(3, false, BlockTag{Reuse: ReuseRead}, incompressibleBlock())
	if p, _ := l.PartitionOf(3); p != NVM {
		t.Fatalf("read-reuse block in %v, want NVM regardless of size (Table II)", p)
	}
}

func TestGetXInvalidates(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(9, true, BlockTag{}, compressibleBlock())
	r := l.GetX(9)
	if !r.Hit || !r.Dirty {
		t.Fatalf("GetX hit should transfer dirty data: %+v", r)
	}
	if r.Tag.Reuse != ReuseWrite || r.Tag.LB {
		t.Fatalf("GetX should tag write-reuse and clear LB: %+v", r.Tag)
	}
	if l.Contains(9) {
		t.Fatal("GetX hit must invalidate the LLC copy (§III-A)")
	}
	if l.Stats.InvalidatedOnGetX != 1 {
		t.Fatal("invalidate counter not bumped")
	}
}

func TestDirtyHitClassifiesWriteReuse(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(9, true, BlockTag{}, compressibleBlock())
	r := l.GetS(9)
	if r.Tag.Reuse != ReuseWrite {
		t.Fatalf("GetS hit on dirty block should classify write-reuse, got %v", r.Tag.Reuse)
	}
	if r.Tag.LB {
		t.Fatal("dirty block must not become a loop-block")
	}
}

func TestCleanReinsertIsNoop(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(4, false, BlockTag{}, compressibleBlock())
	w0 := l.Stats.NVMBytesWritten
	l.Insert(4, false, BlockTag{}, compressibleBlock())
	if l.Stats.NVMBytesWritten != w0 {
		t.Fatal("reinserting a clean present block must not rewrite NVM")
	}
	if l.Stats.Inserts != 1 {
		t.Fatalf("inserts = %d, want 1", l.Stats.Inserts)
	}
}

func TestDirtyUpdateInPlace(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 16, 4, 12)
	l.Insert(4, false, BlockTag{}, compressibleBlock())
	w0 := l.Stats.NVMBytesWritten
	l.Insert(4, true, BlockTag{Reuse: ReuseWrite}, compressibleBlock())
	if l.Stats.InPlaceUpdates != 1 {
		t.Fatal("dirty reinsert should update in place")
	}
	if l.Stats.NVMBytesWritten <= w0 {
		t.Fatal("in-place NVM update must count written bytes")
	}
}

func TestNVMBytesAccounting(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(64), 16, 4, 12)
	l.Insert(1, false, BlockTag{}, compressibleBlock()) // B8D1: 16 bytes
	want := uint64(16 + nvm.MetaBytes)
	if l.Stats.NVMBytesWritten != want {
		t.Fatalf("NVM bytes = %d, want %d (CB+meta)", l.Stats.NVMBytesWritten, want)
	}
}

func TestFitLRUSkipsSmallFrames(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(64), 1, 1, 2)
	// Age way 1 (NVM index 1) so it only fits tiny blocks.
	f := l.Array().Frame(0, 1)
	for f.EffectiveCapacity() > 8 {
		f.AdvanceTo(f.NextLimit())
	}
	if f.Dead() {
		t.Skip("frame died entirely under sampled endurance; geometry-specific")
	}
	// A 16-byte block fits only frame 0; insert twice - second insert must
	// evict the first (both target frame 0), leaving frame 1 empty.
	l.Insert(100, false, BlockTag{}, compressibleBlock())
	l.Insert(101, false, BlockTag{}, compressibleBlock())
	if l.Contains(100) {
		t.Fatal("fit-LRU should have evicted block 100 from the only fitting frame")
	}
	if !l.Contains(101) {
		t.Fatal("block 101 missing")
	}
}

func TestNVMFallbackToSRAM(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(64), 1, 1, 2)
	for w := 0; w < 2; w++ {
		f := l.Array().Frame(0, w)
		f.AddWear(math.MaxFloat64 / 2)
	}
	l.Insert(50, false, BlockTag{}, compressibleBlock())
	if p, ok := l.PartitionOf(50); !ok || p != SRAM {
		t.Fatalf("block should fall back to SRAM, got %v ok=%v", p, ok)
	}
	if l.Stats.NVMFallbacks != 1 {
		t.Fatal("fallback counter not bumped")
	}
}

func TestReadReuseMigrationOnSRAMEvict(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 1, 1, 2)
	// Fill the single SRAM way with a read-reused big block.
	l.Insert(10, false, BlockTag{Reuse: ReuseNone}, incompressibleBlock())
	if p, _ := l.PartitionOf(10); p != SRAM {
		t.Fatal("setup: block 10 should be in SRAM")
	}
	// Mark it read-reused via a GetS hit.
	l.GetS(10)
	// Insert another big block: SRAM victim (10) has read reuse -> migrate.
	l.Insert(11, false, BlockTag{}, incompressibleBlock())
	if p, ok := l.PartitionOf(10); !ok || p != NVM {
		t.Fatalf("block 10 should have migrated to NVM, got %v ok=%v", p, ok)
	}
	if p, _ := l.PartitionOf(11); p != SRAM {
		t.Fatal("block 11 should occupy the freed SRAM way")
	}
	if l.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d", l.Stats.Migrations)
	}
}

func TestGlobalLRUBH(t *testing.T) {
	l := newLLC(t, testBH, nil, 1, 1, 2)
	l.Insert(1, false, BlockTag{}, nil)
	l.Insert(2, false, BlockTag{}, nil)
	l.Insert(3, false, BlockTag{}, nil)
	if l.Occupancy(0) != 3 {
		t.Fatalf("occupancy = %d, want 3 (global fill)", l.Occupancy(0))
	}
	l.GetS(1)
	l.GetS(2) // 3 is now LRU
	l.Insert(4, false, BlockTag{}, nil)
	if l.Contains(3) {
		t.Fatal("global LRU should evict block 3")
	}
}

func TestBHWritesFullBlocksToNVM(t *testing.T) {
	l := newLLC(t, testBH, nil, 1, 0, 1)
	l.Insert(1, false, BlockTag{}, nil)
	if l.Stats.NVMBytesWritten != nvm.FrameBytes {
		t.Fatalf("BH NVM write = %d bytes, want %d", l.Stats.NVMBytesWritten, nvm.FrameBytes)
	}
}

func TestGlobalSkipsDeadFrames(t *testing.T) {
	l := newLLC(t, testBH, nil, 1, 1, 2)
	for w := 0; w < 2; w++ {
		l.Array().Frame(0, w).AddWear(math.MaxFloat64 / 2)
	}
	l.Insert(1, false, BlockTag{}, nil)
	l.Insert(2, false, BlockTag{}, nil)
	if l.Occupancy(0) != 1 {
		t.Fatalf("only the SRAM way should be usable, occupancy = %d", l.Occupancy(0))
	}
	if p, _ := l.PartitionOf(2); p != SRAM {
		t.Fatal("surviving block should be in SRAM")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	l := newLLC(t, testBH, nil, 1, 1, 0) // single SRAM way
	l.Insert(1, true, BlockTag{}, nil)
	l.Insert(2, false, BlockTag{}, nil)
	if l.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", l.Stats.Writebacks)
	}
}

func TestLHybridMigrationPrefersMostRecentLB(t *testing.T) {
	lh := basePolicy{name: "LHybrid", gran: nvm.FrameDisabling, lhMigrate: true,
		target: func(i InsertInfo) Partition {
			if i.Tag.LB {
				return NVM
			}
			return SRAM
		}}
	l := newLLC(t, lh, nil, 1, 2, 2)
	// Two NLB blocks fill SRAM.
	l.Insert(1, false, BlockTag{}, nil)
	l.Insert(2, false, BlockTag{}, nil)
	// Promote both to LB via clean hits; block 2 is more recent.
	l.GetS(1)
	l.GetS(2)
	// New NLB insert must migrate most-recent LB (2) to NVM.
	l.Insert(3, false, BlockTag{}, nil)
	if p, ok := l.PartitionOf(2); !ok || p != NVM {
		t.Fatalf("most-recent LB should migrate to NVM, got %v ok=%v", p, ok)
	}
	if p, _ := l.PartitionOf(1); p != SRAM {
		t.Fatal("older LB should stay in SRAM")
	}
	if p, _ := l.PartitionOf(3); p != SRAM {
		t.Fatal("incoming NLB should take the freed SRAM way")
	}
}

func TestThresholdSmallBoundary(t *testing.T) {
	// CPth = 16 admits exactly the 16-byte block.
	l := newLLC(t, testCP, FixedThreshold(16), 4, 2, 2)
	l.Insert(1, false, BlockTag{}, compressibleBlock())
	if p, _ := l.PartitionOf(1); p != NVM {
		t.Fatal("block with CB size == CPth should be small (<=)")
	}
	l2 := newLLC(t, testCP, FixedThreshold(15), 4, 2, 2)
	l2.Insert(1, false, BlockTag{}, compressibleBlock())
	if p, _ := l2.PartitionOf(1); p != SRAM {
		t.Fatal("block with CB size > CPth should be big")
	}
}

func TestSRAMOnlyConfig(t *testing.T) {
	l := newLLC(t, testBH, nil, 4, 4, 0)
	if l.Array() != nil {
		t.Fatal("SRAM-only LLC should have no NVM array")
	}
	if l.EffectiveCapacityFraction() != 1 {
		t.Fatal("SRAM-only capacity should be 1")
	}
	for b := uint64(0); b < 32; b++ {
		l.Insert(b, false, BlockTag{}, nil)
	}
	total := 0
	for s := 0; s < 4; s++ {
		total += l.Occupancy(s)
	}
	if total != 16 {
		t.Fatalf("occupancy %d, want 16", total)
	}
}

func TestResetStats(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 4, 2, 2)
	l.Insert(1, false, BlockTag{}, compressibleBlock())
	l.GetS(1)
	l.ResetStats()
	if l.Stats.Hits != 0 || l.Stats.Inserts != 0 {
		t.Fatal("stats not cleared")
	}
	if !l.Contains(1) {
		t.Fatal("contents must survive stats reset")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, bad := range []Config{
		{Sets: 0, SRAMWays: 1, Policy: testBH},
		{Sets: 4, SRAMWays: 0, NVMWays: 0, Policy: testBH},
		{Sets: 4, SRAMWays: 1, NVMWays: 1},
	} {
		func() {
			defer func() { recover() }()
			New(bad)
			t.Errorf("config %+v did not panic", bad)
		}()
	}
}

func TestPartitionString(t *testing.T) {
	if SRAM.String() != "SRAM" || NVM.String() != "NVM" {
		t.Error("partition names")
	}
	if Partition(7).String() == "" {
		t.Error("unknown partition should render")
	}
	if ReuseRead.String() != "read" || ReuseWrite.String() != "write" || ReuseNone.String() != "none" {
		t.Error("reuse names")
	}
	if ReuseClass(9).String() == "" {
		t.Error("unknown reuse should render")
	}
}

// Invariant property: after arbitrary operation sequences, no block appears
// twice, occupancy <= ways, and every NVM-resident compressed size fits the
// pristine frame capacity.
func TestLLCInvariants(t *testing.T) {
	f := func(ops []uint32) bool {
		l := newLLC(t, testCP, FixedThreshold(40), 4, 2, 4)
		content := [][]byte{compressibleBlock(), incompressibleBlock()}
		for _, op := range ops {
			block := uint64(op % 64)
			switch (op >> 8) % 4 {
			case 0:
				l.GetS(block)
			case 1:
				l.GetX(block)
			case 2:
				l.Insert(block, false, BlockTag{}, content[op%2])
			case 3:
				l.Insert(block, op&4 != 0, UnpackTag(uint8(op>>16)&0x3F), content[op%2])
			}
		}
		for set := 0; set < 4; set++ {
			if l.Occupancy(set) > 6 {
				return false
			}
			seen := map[uint64]bool{}
			for w := 0; w < 6; w++ {
				e := l.entryAt(set, w)
				if !e.valid {
					continue
				}
				if seen[e.block] || l.SetOf(e.block) != set {
					return false
				}
				seen[e.block] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLLCInsertCompressed(b *testing.B) {
	l := newLLC(b, testCP, FixedThreshold(37), 1024, 4, 12)
	content := compressibleBlock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Insert(uint64(i), false, BlockTag{}, content)
	}
}

func BenchmarkLLCGetSHit(b *testing.B) {
	l := newLLC(b, testCP, FixedThreshold(37), 1024, 4, 12)
	content := compressibleBlock()
	for i := uint64(0); i < 1024; i++ {
		l.Insert(i, false, BlockTag{}, content)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.GetS(uint64(i) % 1024)
	}
}

func TestAccessorsAndFixedThreshold(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 8, 4, 12)
	if l.Sets() != 8 || l.SRAMWays() != 4 || l.NVMWays() != 12 {
		t.Error("geometry accessors wrong")
	}
	if l.Policy().Name() != "CARWR" {
		t.Error("policy accessor wrong")
	}
	if !l.CompressionEnabled() {
		t.Error("CARWR should compress")
	}
	thr := l.Thresholds()
	if thr.CPthFor(3) != 37 {
		t.Error("threshold accessor wrong")
	}
	// FixedThreshold counters are no-ops.
	thr.RecordHit(0)
	thr.RecordNVMBytes(0, 10)
	thr.EndEpoch()
	l.EndEpoch()
	st := &Stats{Hits: 3, Misses: 1}
	if st.HitRate() != 0.75 {
		t.Error("stats hit rate wrong")
	}
	if (&Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestInvalidateUnfitDropsShrunkEntries(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(64), 1, 1, 2)
	l.Insert(1, true, BlockTag{}, incompressibleBlock()) // 64B, NVM (small<=64)
	if p, _ := l.PartitionOf(1); p != NVM {
		t.Skip("block not in NVM under sampled endurance")
	}
	// Shrink the frame below 64B capacity.
	set := l.SetOf(1)
	for w := 0; w < 2; w++ {
		f := l.Array().Frame(set, w)
		for f.EffectiveCapacity() > 32 && !f.Dead() {
			f.AdvanceTo(f.NextLimit())
		}
	}
	wb := l.Stats.Writebacks
	dropped := l.InvalidateUnfit()
	if dropped == 0 {
		t.Fatal("shrunk frame entry not dropped")
	}
	if l.Stats.Writebacks != wb+1 {
		t.Error("dirty dropped entry must write back")
	}
	if l.Contains(1) {
		t.Error("entry still present")
	}
	// Idempotent.
	if l.InvalidateUnfit() != 0 {
		t.Error("second pass dropped more")
	}
}

func TestInvalidateUnfitSRAMOnly(t *testing.T) {
	l := newLLC(t, testBH, nil, 4, 4, 0)
	if l.InvalidateUnfit() != 0 {
		t.Error("SRAM-only InvalidateUnfit should be 0")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertOutcome(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(58), 8, 2, 4)
	out := l.Insert(1, false, BlockTag{}, compressibleBlock())
	if !out.Wrote || out.Part != NVM {
		t.Fatalf("small-block insert outcome %+v", out)
	}
	out = l.Insert(2, false, BlockTag{}, incompressibleBlock())
	if !out.Wrote || out.Part != SRAM {
		t.Fatalf("big-block insert outcome %+v", out)
	}
	// Clean reinsert of a present block: no write.
	out = l.Insert(1, false, BlockTag{}, compressibleBlock())
	if out.Wrote {
		t.Fatalf("clean reinsert outcome %+v", out)
	}
	// Dirty update in place: write in the holding partition.
	out = l.Insert(1, true, BlockTag{}, compressibleBlock())
	if !out.Wrote || out.Part != NVM {
		t.Fatalf("dirty update outcome %+v", out)
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	l := newLLC(t, testCP, FixedThreshold(37), 4, 2, 2)
	l.Insert(1, false, BlockTag{}, compressibleBlock())
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: duplicate the block into another way of the same set.
	set := l.SetOf(1)
	for w := 0; w < 4; w++ {
		e := l.entryAt(set, w)
		if !e.valid {
			*e = entry{valid: true, block: 1, cb: 16}
			break
		}
	}
	if err := l.CheckInvariants(); err == nil {
		t.Fatal("duplicate block not detected")
	}
}
