package hybrid

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bdi"
	"repro/internal/ecc"
	"repro/internal/nvm"
	"repro/internal/stats"
)

func freshFrame() *nvm.Frame {
	return nvm.NewFrame(nvm.EnduranceModel{Mean: 1e9, CV: 0.2}, stats.NewRNG(77), nvm.ByteDisabling)
}

func TestDataPathRoundtripClean(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	for _, content := range [][]byte{compressibleBlock(), incompressibleBlock(), make([]byte, 64)} {
		st, err := d.WriteBlock(content, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, status, err := d.ReadBlock(st)
		if err != nil || status != ecc.OK {
			t.Fatalf("read: status=%v err=%v", status, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("roundtrip mismatch:\n in  %x\n out %x", content, got)
		}
	}
}

func TestDataPathRoundtripWithFaultyBytes(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	// Disable a handful of bytes, as aging would.
	for _, b := range []int{2, 5, 17, 40, 65} {
		f.InjectFault(b)
	}
	content := compressibleBlock()
	st, err := d.WriteBlock(content, f, 13)
	if err != nil {
		t.Fatal(err)
	}
	// The scatter must avoid the faulty positions entirely.
	for _, b := range []int{2, 5, 17, 40, 65} {
		if st.Mask.Get(b) {
			t.Fatalf("write mask covers faulty byte %d", b)
		}
	}
	got, status, err := d.ReadBlock(st)
	if err != nil || status != ecc.OK {
		t.Fatalf("read: status=%v err=%v", status, err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("roundtrip through faulty frame mismatch")
	}
}

func TestDataPathWriteAccountsWear(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	before := f.PhaseWritten()
	st, err := d.WriteBlock(compressibleBlock(), f, 0) // B8D1 -> 16B CB, 18B ECB
	if err != nil {
		t.Fatal(err)
	}
	if st.ECBLen != 16+nvm.MetaBytes {
		t.Fatalf("ECB length %d, want %d", st.ECBLen, 16+nvm.MetaBytes)
	}
	if f.PhaseWritten()-before != uint64(st.ECBLen) {
		t.Fatalf("wear accounted %d bytes, want %d", f.PhaseWritten()-before, st.ECBLen)
	}
	if nvm.MaskBits(st.Mask) != st.ECBLen {
		t.Fatalf("selective write touched %d bytes, want %d", nvm.MaskBits(st.Mask), st.ECBLen)
	}
}

func TestDataPathRejectsOversizedBlock(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	for f.EffectiveCapacity() > 32 {
		f.AdvanceTo(f.NextLimit())
	}
	if f.Dead() {
		t.Skip("frame died under sampled endurance")
	}
	if _, err := d.WriteBlock(incompressibleBlock(), f, 0); err == nil {
		t.Fatal("64B block accepted by a 32B-capacity frame")
	}
}

func TestDataPathSingleBitErrorCorrected(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	content := compressibleBlock()
	for bit := 0; bit < 18*8-1; bit += 7 {
		st, err := d.WriteBlock(content, f, 3)
		if err != nil {
			t.Fatal(err)
		}
		st.FlipStoredBit(bit)
		got, status, err := d.ReadBlock(st)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if status != ecc.Corrected {
			t.Fatalf("bit %d: status %v, want Corrected", bit, status)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestDataPathDoubleBitErrorDetected(t *testing.T) {
	d := NewDataPath()
	f := freshFrame()
	content := incompressibleBlock()
	st, err := d.WriteBlock(content, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.FlipStoredBit(3)
	st.FlipStoredBit(100)
	_, status, err := d.ReadBlock(st)
	if status != ecc.Detected || err == nil {
		t.Fatalf("double error: status=%v err=%v, want Detected", status, err)
	}
}

// Property: the full write/read data path is the identity for arbitrary
// content, counters and pre-existing fault patterns, with zero or one
// injected bit error.
func TestDataPathProperty(t *testing.T) {
	d := NewDataPath()
	f2 := func(seed uint64, counter uint8, nFaults uint8, flip uint16, doFlip bool) bool {
		r := stats.NewRNG(seed)
		f := nvm.NewFrame(nvm.EnduranceModel{Mean: 1e9, CV: 0.2}, r, nvm.ByteDisabling)
		for i := 0; i < int(nFaults%20); i++ {
			f.InjectFault(r.Intn(nvm.FrameBytes))
		}
		content := make([]byte, bdi.BlockSize)
		switch seed % 3 {
		case 0:
			for i := range content {
				content[i] = byte(r.Uint32())
			}
		case 1: // compressible
			v := r.Uint64()
			for i := 0; i < 64; i += 8 {
				for j := 0; j < 8; j++ {
					content[i+j] = byte(v >> (8 * uint(j)))
				}
			}
		case 2: // zeros
		}
		st, err := d.WriteBlock(content, f, int(counter)%nvm.FrameBytes)
		if err != nil {
			// Only acceptable when the block genuinely doesn't fit.
			return bdi.CompressedSize(content) > f.EffectiveCapacity()
		}
		if doFlip {
			st.FlipStoredBit(int(flip) % st.MeaningfulBits())
		}
		got, status, err := d.ReadBlock(st)
		if err != nil {
			return false
		}
		if doFlip && status != ecc.Corrected {
			return false
		}
		return bytes.Equal(got, content)
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestDataPathSizesMatchSimulator: the ECB size the functional data path
// writes equals what the performance simulator accounts (cb + MetaBytes),
// for every encoding class.
func TestDataPathSizesMatchSimulator(t *testing.T) {
	d := NewDataPath()
	contents := map[string][]byte{
		"zeros":  make([]byte, 64),
		"hcr":    compressibleBlock(),
		"incomp": incompressibleBlock(),
	}
	for name, content := range contents {
		f := freshFrame()
		st, err := d.WriteBlock(content, f, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := bdi.CompressedSize(content) + nvm.MetaBytes
		if st.ECBLen != want {
			t.Errorf("%s: data path ECB %dB, simulator accounts %dB", name, st.ECBLen, want)
		}
	}
}

func BenchmarkDataPathWrite(b *testing.B) {
	d := NewDataPath()
	f := nvm.NewFrame(nvm.EnduranceModel{Mean: 1e15, CV: 0.2}, stats.NewRNG(1), nvm.ByteDisabling)
	content := compressibleBlock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.WriteBlock(content, f, i%nvm.FrameBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataPathRead(b *testing.B) {
	d := NewDataPath()
	f := nvm.NewFrame(nvm.EnduranceModel{Mean: 1e15, CV: 0.2}, stats.NewRNG(1), nvm.ByteDisabling)
	st, err := d.WriteBlock(compressibleBlock(), f, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.ReadBlock(st); err != nil {
			b.Fatal(err)
		}
	}
}
