package hybrid

import (
	"bytes"
	"fmt"
)

// Materialized-data mode: when Config.MaterializeData is set, every NVM
// insertion runs the full Fig-5 data path (compress -> ECB -> SECDED ->
// scatter) and stores the physical frame image; every NVM hit gathers,
// checks and decompresses it, verifying the result against the block's
// true contents. This validates, under live traffic, aging and rotating
// wear-leveling counters, that the performance simulator's size/wear
// accounting corresponds to a bit-exact hardware data path.
//
// The mode costs roughly an order of magnitude in simulation speed and is
// meant for validation runs and tests, not for the forecast sweeps.

// dataStore holds the side state of materialized mode. Contents and images
// are stored in flat per-slot arrays whose buffers are reused across fills,
// so a steady-state materialized insert allocates nothing; hasContent /
// hasImage carry the validity that nil-ing the slices used to.
type dataStore struct {
	path       *DataPath
	contents   [][]byte // per entry slot: true block contents (buffer reused)
	hasContent []bool
	images     []StoredBlock // per entry slot: NVM physical image
	hasImage   []bool
}

// initMaterialize validates and installs the mode.
func (l *LLC) initMaterialize() {
	if !l.pol.Compressed() {
		panic("hybrid: MaterializeData requires a compressing policy")
	}
	if l.hcrOnly {
		panic("hybrid: MaterializeData is incompatible with the HCROnly ablation")
	}
	n := l.sets * l.ways()
	l.data = &dataStore{
		path:       NewDataPath(),
		contents:   make([][]byte, n),
		hasContent: make([]bool, n),
		images:     make([]StoredBlock, n),
		hasImage:   make([]bool, n),
	}
}

// Materialized reports whether the LLC runs the full data path.
func (l *LLC) Materialized() bool { return l.data != nil }

// slot returns the flat entry index.
func (l *LLC) slot(set, way int) int { return set*l.ways() + way }

// rememberContent records the true contents for a freshly filled slot; for
// NVM slots it also writes the physical image through the data path (which
// applies the frame wear itself).
func (l *LLC) rememberContent(set, way int, content []byte) {
	if l.data == nil {
		return
	}
	idx := l.slot(set, way)
	l.data.hasImage[idx] = false
	l.data.hasContent[idx] = false
	if content == nil {
		l.Stats.DataPathErrors++ // materialized insert must carry content
		return
	}
	buf := l.data.contents[idx]
	if cap(buf) < len(content) {
		buf = make([]byte, len(content))
	}
	buf = buf[:len(content)]
	copy(buf, content)
	l.data.contents[idx] = buf
	l.data.hasContent[idx] = true
	if l.partOf(way) != NVM {
		return
	}
	st, err := l.data.path.WriteBlock(content, l.frameOf(set, way), l.arr.Counter().Value())
	if err != nil {
		l.Stats.DataPathErrors++
		return
	}
	l.data.images[idx] = st
	l.data.hasImage[idx] = true
}

// contentAt returns the remembered contents of a slot (nil outside
// materialized mode).
func (l *LLC) contentAt(set, way int) []byte {
	if l.data == nil {
		return nil
	}
	idx := l.slot(set, way)
	if !l.data.hasContent[idx] {
		return nil
	}
	return l.data.contents[idx]
}

// clearMaterialized drops side state for a vacated slot.
func (l *LLC) clearMaterialized(set, way int) {
	if l.data == nil {
		return
	}
	idx := l.slot(set, way)
	l.data.hasImage[idx] = false
	l.data.hasContent[idx] = false
}

// verifyMaterialized runs the read data path for an NVM hit and compares
// the reconstructed block against the remembered true contents.
// Mismatches increment Stats.DataPathErrors; a correct implementation
// never produces any.
func (l *LLC) verifyMaterialized(set, way int) {
	if l.data == nil || l.partOf(way) != NVM {
		return
	}
	idx := l.slot(set, way)
	if !l.data.hasImage[idx] || !l.data.hasContent[idx] {
		l.Stats.DataPathErrors++
		return
	}
	got, _, err := l.data.path.ReadBlock(l.data.images[idx])
	if err != nil || !bytes.Equal(got, l.data.contents[idx]) {
		l.Stats.DataPathErrors++
	}
}

// VerifyAllResident runs the read data path over every NVM-resident block
// and returns an error for the first mismatch (test hook).
func (l *LLC) VerifyAllResident() error {
	if l.data == nil {
		return fmt.Errorf("hybrid: LLC not in materialized mode")
	}
	for set := 0; set < l.sets; set++ {
		for w := l.sramWays; w < l.ways(); w++ {
			e := l.entryAt(set, w)
			if !e.valid {
				continue
			}
			idx := l.slot(set, w)
			if !l.data.hasImage[idx] || !l.data.hasContent[idx] {
				return fmt.Errorf("hybrid: block %#x missing materialized state", e.block)
			}
			want := l.data.contents[idx]
			got, _, err := l.data.path.ReadBlock(l.data.images[idx])
			if err != nil {
				return fmt.Errorf("hybrid: block %#x read path: %v", e.block, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("hybrid: block %#x contents diverge", e.block)
			}
		}
	}
	return nil
}
