package hybrid

import "repro/internal/metrics"

// This file adapts the LLC's Stats block to the metrics registry. The
// Stats struct stays the hot-path storage — policies and tests keep
// reading and incrementing plain fields — while the registry reads each
// field through a pointer under a hierarchical name, so snapshots,
// windowed deltas and the per-epoch series all come from one place.

// statsFields maps every Stats counter to its registry name. The table is
// the single source of truth for both registration and the snapshot-to-
// Stats conversion, so the two cannot drift.
var statsFields = []struct {
	name string
	get  func(*Stats) *uint64
}{
	{"llc.gets", func(s *Stats) *uint64 { return &s.GetS }},
	{"llc.getx", func(s *Stats) *uint64 { return &s.GetX }},
	{"llc.hits", func(s *Stats) *uint64 { return &s.Hits }},
	{"llc.misses", func(s *Stats) *uint64 { return &s.Misses }},
	{"llc.sram.hits", func(s *Stats) *uint64 { return &s.SRAMHits }},
	{"llc.nvm.hits", func(s *Stats) *uint64 { return &s.NVMHits }},
	{"llc.inserts", func(s *Stats) *uint64 { return &s.Inserts }},
	{"llc.sram.inserts", func(s *Stats) *uint64 { return &s.SRAMInserts }},
	{"llc.nvm.inserts", func(s *Stats) *uint64 { return &s.NVMInserts }},
	{"llc.nvm.block_writes", func(s *Stats) *uint64 { return &s.NVMBlockWrites }},
	{"llc.nvm.bytes_written", func(s *Stats) *uint64 { return &s.NVMBytesWritten }},
	{"llc.migrations", func(s *Stats) *uint64 { return &s.Migrations }},
	{"llc.writebacks", func(s *Stats) *uint64 { return &s.Writebacks }},
	{"llc.nvm.fallbacks", func(s *Stats) *uint64 { return &s.NVMFallbacks }},
	{"llc.inplace_updates", func(s *Stats) *uint64 { return &s.InPlaceUpdates }},
	{"llc.inserts_hcr", func(s *Stats) *uint64 { return &s.InsertHCR }},
	{"llc.inserts_lcr", func(s *Stats) *uint64 { return &s.InsertLCR }},
	{"llc.inserts_incomp", func(s *Stats) *uint64 { return &s.InsertIncomp }},
	{"llc.getx_invalidates", func(s *Stats) *uint64 { return &s.InvalidatedOnGetX }},
	{"llc.datapath_errors", func(s *Stats) *uint64 { return &s.DataPathErrors }},
}

// StatNames returns the registry names of all LLC counters, in
// registration order.
func StatNames() []string {
	out := make([]string, len(statsFields))
	for i, f := range statsFields {
		out[i] = f.name
	}
	return out
}

// StatsFromSnapshot reconstructs a Stats block from the "llc." counters
// of a snapshot (typically a window delta).
func StatsFromSnapshot(s metrics.Snapshot) Stats {
	var out Stats
	for _, f := range statsFields {
		*f.get(&out) = s.Counter(f.name)
	}
	return out
}

// StatValues returns the current value of every registered counter field
// keyed by its registry name. The invariant checker compares these
// against a live registry snapshot.
func StatValues(s *Stats) map[string]uint64 {
	out := make(map[string]uint64, len(statsFields))
	for _, f := range statsFields {
		out[f.name] = *f.get(s)
	}
	return out
}

// registerMetrics attaches the LLC's counters, derived gauges and
// subcomponents (NVM array, threshold provider) to the registry.
func (l *LLC) registerMetrics(reg *metrics.Registry) {
	for _, f := range statsFields {
		reg.Counter(f.name, f.get(&l.Stats))
	}
	reg.GaugeFunc("llc.hit_rate", func() float64 { return l.Stats.HitRate() })
	if l.arr != nil {
		l.arr.RegisterMetrics(reg)
	}
	if sub, ok := l.thr.(metrics.Registrable); ok {
		sub.RegisterMetrics(reg)
	}
}

// Metrics returns the registry holding the LLC's counters (and those of
// every component wired to the same simulated system).
func (l *LLC) Metrics() *metrics.Registry { return l.reg }
