package hybrid

import (
	"testing"

	"repro/internal/nvm"
	"repro/internal/stats"
)

func newMatLLC(t testing.TB) *LLC {
	t.Helper()
	return New(Config{
		Sets: 16, SRAMWays: 2, NVMWays: 6,
		Policy:          testCP,
		Thresholds:      FixedThreshold(58),
		Endurance:       nvm.EnduranceModel{Mean: 1e9, CV: 0.2},
		Sampler:         stats.NewRNG(17),
		MaterializeData: true,
	})
}

func TestMaterializedBasicFlow(t *testing.T) {
	l := newMatLLC(t)
	if !l.Materialized() {
		t.Fatal("mode not active")
	}
	content := compressibleBlock()
	l.Insert(3, false, BlockTag{}, content)
	if p, _ := l.PartitionOf(3); p != NVM {
		t.Fatal("setup: block should be in NVM")
	}
	l.GetS(3) // triggers a read-path verification
	if l.Stats.DataPathErrors != 0 {
		t.Fatalf("data path errors: %d", l.Stats.DataPathErrors)
	}
	if err := l.VerifyAllResident(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializedMigration(t *testing.T) {
	l := newMatLLC(t)
	// Big block to SRAM, promote to read-reuse, force migration.
	inc := incompressibleBlock()
	l.Insert(16, false, BlockTag{}, inc) // set 0 SRAM
	l.GetS(16)
	l.Insert(32, false, BlockTag{}, incompressibleBlock())
	l.Insert(48, false, BlockTag{}, incompressibleBlock()) // SRAM full -> migrate 16
	if l.Stats.Migrations == 0 {
		t.Skip("migration did not trigger under this geometry")
	}
	if p, _ := l.PartitionOf(16); p != NVM {
		t.Fatal("block 16 should have migrated")
	}
	l.GetS(16)
	if l.Stats.DataPathErrors != 0 {
		t.Fatalf("migrated block failed verification: %d errors", l.Stats.DataPathErrors)
	}
}

func TestMaterializedDirtyUpdate(t *testing.T) {
	l := newMatLLC(t)
	l.Insert(5, false, BlockTag{}, compressibleBlock())
	// Dirty update with different content.
	newContent := make([]byte, 64)
	for i := range newContent {
		newContent[i] = byte(i * 3)
	}
	l.Insert(5, true, BlockTag{Reuse: ReuseWrite}, newContent)
	l.GetS(5)
	if l.Stats.DataPathErrors != 0 {
		t.Fatalf("in-place update broke verification: %d", l.Stats.DataPathErrors)
	}
	if err := l.VerifyAllResident(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializedWearMatchesECB(t *testing.T) {
	l := newMatLLC(t)
	l.Insert(7, false, BlockTag{}, compressibleBlock()) // B8D1: 16+2 ECB
	var total uint64
	for _, f := range l.Array().Frames() {
		total += f.PhaseWritten()
	}
	if total != 18 {
		t.Fatalf("frame wear %d bytes, want 18 (no double counting)", total)
	}
	if l.Stats.NVMBytesWritten != 18 {
		t.Fatalf("stats bytes %d, want 18", l.Stats.NVMBytesWritten)
	}
}

func TestMaterializedPanicsForNonCompressed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-compressed policy accepted")
		}
	}()
	New(Config{
		Sets: 4, SRAMWays: 1, NVMWays: 2,
		Policy: testBH, Endurance: testEndurance,
		Sampler: stats.NewRNG(1), MaterializeData: true,
	})
}

func TestMaterializedPanicsWithHCROnly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HCROnly + materialize accepted")
		}
	}()
	New(Config{
		Sets: 4, SRAMWays: 1, NVMWays: 2,
		Policy: testCP, Endurance: testEndurance,
		Sampler: stats.NewRNG(1), MaterializeData: true, HCROnly: true,
	})
}
