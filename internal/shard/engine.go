// Package shard implements a deterministic set-sharded execution engine
// for the hybrid LLC. The LLC's sets are partitioned into N contiguous
// shards; each shard owns a full-geometry LLC clone (its own data path,
// scratch buffers and identically seeded endurance sampler stream, so all
// clones draw the same per-byte limits and set indices need no
// translation) plus its own dueling controller and metrics registry
// sub-tree. The hierarchy front-end runs unchanged on one goroutine and
// routes each LLC access by set index to the owning shard; worker
// goroutines apply the routed events in FIFO order.
//
// The headline guarantee is bit-identical output: for a fixed seed, mix
// and policy, shards=N produces byte-for-byte the same metrics snapshot,
// epoch series, fault-map digest and forecast curve as shards=1. That
// holds because (1) routed accesses always answer as misses with a zero
// tag, making core timing — and therefore the per-shard event streams —
// independent of LLC state and of N; (2) per-set LLC state only depends
// on its own set's event order, which FIFO application preserves; (3) the
// epoch barrier merges sampler votes and reads metrics in ascending shard
// order with exact integer arithmetic; and (4) every float accumulation
// over frames iterates them in global set-major order regardless of N.
// The differential shard-equivalence suite enforces this under -race.
package shard

import (
	"fmt"

	"repro/internal/dueling"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/workload"
)

// Config assembles one sharded engine.
type Config struct {
	// Shards is the number of set shards (>= 1). 1 runs the router
	// inline on the front-end goroutine — the differential reference.
	Shards int
	// Sets is the LLC set count shared by every shard clone.
	Sets int
	// Hier configures the front-end (private caches, timing, epochs).
	// Prefetching must be off: prefetch tags are assigned front-end-side
	// from LLC answers the router never gives.
	Hier hier.Config
	// NewLLC builds the shard'th full-geometry LLC clone. It must
	// construct a fresh, identically seeded endurance sampler per call
	// and register into a fresh metrics registry (hybrid.Config.Metrics
	// nil), so every clone draws identical per-byte limits and the
	// per-shard registries stay disjoint.
	NewLLC func(shard int) *hybrid.LLC
	// Global is the epoch-merge CPth provider: a *dueling.Controller for
	// dueling policies (same geometry as the shard controllers), nil or
	// a FixedThreshold otherwise.
	Global hybrid.ThresholdProvider
	// Coloring is the shared inter-set coloring mapper. Every shard
	// clone must be built with the SAME instance as its
	// hybrid.Config.SetMapper (self-advance off); the router routes
	// events through it and advances it exactly once per epoch at the
	// quiescent barrier — reassigning pending fetches to their new
	// owners and flushing every clone's directory when the mapping
	// changes, which keeps shards=N bit-identical to shards=1. nil
	// disables coloring.
	Coloring hybrid.SetMapper
	// Apps are the per-core programs (one per core, at most 256).
	Apps []*workload.App
}

// Engine couples the front-end system with the shard router.
type Engine struct {
	sys    *hier.System
	router *Router
	closed bool
}

// New builds and starts a sharded engine (worker goroutines spawn only
// for Shards > 1; stop them with Close).
func New(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: %d shards, want >= 1", cfg.Shards)
	}
	if cfg.Sets < 1 {
		return nil, fmt.Errorf("shard: %d sets, want >= 1", cfg.Sets)
	}
	if cfg.Shards > cfg.Sets {
		return nil, fmt.Errorf("shard: %d shards exceed %d sets", cfg.Shards, cfg.Sets)
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("shard: no applications")
	}
	if len(cfg.Apps) > 256 {
		return nil, fmt.Errorf("shard: %d cores exceed the 256-core event encoding", len(cfg.Apps))
	}
	if cfg.Hier.Prefetch {
		return nil, fmt.Errorf("shard: the L2 prefetcher requires the sequential engine (shards=1 via hier)")
	}
	if cfg.NewLLC == nil {
		return nil, fmt.Errorf("shard: nil NewLLC builder")
	}

	r := &Router{
		sets:    cfg.Sets,
		ownerOf: make([]uint16, cfg.Sets),
		apps:    cfg.Apps,
		scheme:  cfg.Coloring,
	}
	// Pre-size the pending maps for the total private L2 capacity split
	// across shards, so the steady state never grows them.
	pendCap := cfg.Hier.L2Sets*cfg.Hier.L2Ways*len(cfg.Apps)/cfg.Shards + 16
	for i := 0; i < cfg.Shards; i++ {
		lo := i * cfg.Sets / cfg.Shards
		hi := (i + 1) * cfg.Sets / cfg.Shards
		for s := lo; s < hi; s++ {
			r.ownerOf[s] = uint16(i)
		}
		llc := cfg.NewLLC(i)
		if llc == nil || llc.Sets() != cfg.Sets {
			return nil, fmt.Errorf("shard: NewLLC(%d) geometry mismatch", i)
		}
		ctrl, _ := llc.Thresholds().(*dueling.Controller)
		w := &shardWorker{
			llc:      llc,
			ctrl:     ctrl,
			lo:       lo,
			hi:       hi,
			pending:  make(map[pendKey]pendVal, pendCap),
			apps:     cfg.Apps,
			compress: llc.CompressionEnabled(),
		}
		r.shards = append(r.shards, w)
	}
	r.compress = r.shards[0].compress

	r.global = cfg.Global
	if r.global == nil {
		r.global = hybrid.FixedThreshold(64)
	}
	r.globalCtrl, _ = r.global.(*dueling.Controller)
	if r.globalCtrl != nil {
		for i, w := range r.shards {
			if w.ctrl == nil {
				return nil, fmt.Errorf("shard: global dueling controller but shard %d LLC has none", i)
			}
		}
	}

	// Owned physical frames in global set-major order: set s contributes
	// the frames of its owning shard's array row s.
	if arr0 := r.shards[0].llc.Array(); arr0 != nil {
		r.frameWays = arr0.Ways()
		r.frames = make([]*nvm.Frame, 0, cfg.Sets*arr0.Ways())
		for s := 0; s < cfg.Sets; s++ {
			arr := r.shards[r.ownerOf[s]].llc.Array()
			r.frames = append(r.frames, arr.FramesRows(s, s+1)...)
		}
	}
	r.buildRegistry()

	if cfg.Shards > 1 {
		r.parallel = true
		r.ack = make(chan struct{}, cfg.Shards)
		for _, w := range r.shards {
			w.work = make(chan *batch, queueDepth)
			w.free = make(chan *batch, queueDepth-1)
			for k := 0; k < queueDepth-1; k++ {
				w.free <- &batch{}
			}
			w.cur = &batch{}
			w.ack = r.ack
			r.wg.Add(1)
			go func(w *shardWorker) {
				defer r.wg.Done()
				w.run()
			}(w)
		}
	}

	hcfg := cfg.Hier
	hcfg.Shards = cfg.Shards
	progs := make([]hier.Program, len(cfg.Apps))
	for i, a := range cfg.Apps {
		progs[i] = a
	}
	sys := hier.NewWithTarget(hcfg, r, progs)
	return &Engine{sys: sys, router: r}, nil
}

// System returns the front-end hierarchy.
func (e *Engine) System() *hier.System { return e.sys }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.router.shards) }

// Run advances the engine by the given wall-clock cycles; the returned
// stats read the merged registry (quiesced at the window edges).
func (e *Engine) Run(cycles uint64) hier.RunStats { return e.sys.Run(cycles) }

// StepAccesses executes exactly n accesses without snapshotting (the
// allocation-free drive path; see hier.System.StepAccesses).
func (e *Engine) StepAccesses(n int) { e.sys.StepAccesses(n) }

// Sync blocks until every routed access has fully executed.
func (e *Engine) Sync() { e.router.Sync() }

// Metrics returns the merged registry (read it only via Snapshot, or
// after Sync, while no Run is in flight).
func (e *Engine) Metrics() *metrics.Registry { return e.router.reg }

// Snapshot quiesces the engine and snapshots the merged registry.
func (e *Engine) Snapshot() metrics.Snapshot {
	e.router.Sync()
	return e.router.reg.Snapshot()
}

// EpochSamples returns the per-epoch series recorded by the front-end.
func (e *Engine) EpochSamples() []metrics.Sample { return e.sys.EpochSamples() }

// PolicyName names the insertion policy the shard LLCs run.
func (e *Engine) PolicyName() string { return e.router.shards[0].llc.Policy().Name() }

// CompressionEnabled reports whether the shard LLCs compress blocks.
func (e *Engine) CompressionEnabled() bool { return e.router.compress }

// Dueling returns the global (merged) dueling controller, if the policy
// duels.
func (e *Engine) Dueling() (*dueling.Controller, bool) {
	return e.router.globalCtrl, e.router.globalCtrl != nil
}

// ShardLLC exposes shard i's LLC clone (tests and invariant checks).
func (e *Engine) ShardLLC(i int) *hybrid.LLC { return e.router.shards[i].llc }

// ShardRange returns the set rows [lo, hi) owned by shard i.
func (e *Engine) ShardRange(i int) (lo, hi int) {
	w := e.router.shards[i]
	return w.lo, w.hi
}

// CheckInvariants quiesces the engine and checks every shard LLC.
func (e *Engine) CheckInvariants() error {
	e.router.Sync()
	for i, w := range e.router.shards {
		if err := w.llc.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Frames returns the owned physical NVM frames in global set-major order
// (nil for SRAM-only configurations). The forecast ages exactly these.
func (e *Engine) Frames() []*nvm.Frame { return e.router.frames }

// FaultDigest quiesces the engine and fingerprints the owned frames'
// fault and wear state in global set order.
func (e *Engine) FaultDigest() uint64 {
	e.router.Sync()
	return nvm.FaultDigestFrames(e.router.frames)
}

// EffectiveCapacityFraction is the merged NVM effective capacity (1 for
// SRAM-only configurations, matching hybrid.LLC).
func (e *Engine) EffectiveCapacityFraction() float64 {
	if e.router.frames == nil {
		return e.router.shards[0].llc.EffectiveCapacityFraction()
	}
	have := 0
	for _, f := range e.router.frames {
		have += f.EffectiveCapacity()
	}
	return float64(have) / float64(len(e.router.frames)*nvm.DataBytes)
}

// LiveFrames counts owned frames that can still hold a block.
func (e *Engine) LiveFrames() int {
	n := 0
	for _, f := range e.router.frames {
		if !f.Dead() {
			n++
		}
	}
	return n
}

// ResetPhase clears every shard array's phase write counters.
func (e *Engine) ResetPhase() {
	for _, w := range e.router.shards {
		if arr := w.llc.Array(); arr != nil {
			arr.ResetPhase()
		}
	}
}

// InvalidateUnfit quiesces the engine and drops entries whose aged frames
// can no longer hold them, across all shards in ascending order.
func (e *Engine) InvalidateUnfit() int {
	e.router.Sync()
	n := 0
	for _, w := range e.router.shards {
		n += w.llc.InvalidateUnfit()
	}
	return n
}

// AdvanceWearCounter rotates every shard's global wear-leveling counter
// in lockstep, keeping the clones' rearrangement offsets identical.
func (e *Engine) AdvanceWearCounter(n int) {
	for _, w := range e.router.shards {
		if arr := w.llc.Array(); arr != nil {
			arr.Counter().Advance(n)
		}
	}
}

// Close quiesces the engine and stops the worker goroutines. The engine
// must not be run afterwards. Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.router.Sync()
	e.router.close()
	e.router.wg.Wait()
}
