package shard_test

// The differential shard-equivalence suite: the headline guarantee of the
// set-sharded engine is that shards=N is bit-identical to shards=1 — the
// same metrics snapshot (every counter and gauge, including the float
// wear aggregates), the same per-epoch sample series, the same NVM
// fault-map digest and the same forecast trajectory, byte for byte. The
// suite runs a matrix of policies × seeded mixes × shard counts
// (including a non-power-of-two set count, where the contiguous ranges
// have unequal sizes) against the shards=1 reference. CI runs it under
// -race, so it doubles as the transport's race proof.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/metrics"
)

// equivCycles spans several 100k-cycle epochs so the epoch barrier (vote
// merge + winner adoption) is exercised repeatedly, not just at the end.
const equivCycles = 800_000

// equivConfig builds a small, fault-active configuration: low endurance
// makes frames fail during the window, so the fault digest compares real
// wear-out divergence, not just pristine arrays.
func equivConfig(policy string, mix int, seed uint64, sets, shards int) core.Config {
	c := core.QuickConfig()
	c.PolicyName = policy
	c.MixID = mix
	c.Seed = seed
	c.LLCSets = sets
	c.Shards = shards
	c.EpochCycles = 100_000
	c.EnduranceMean = 60_000
	c.EnduranceCV = 0.3
	return c
}

// engineState is everything the equivalence suite compares.
type engineState struct {
	snapshot metrics.Snapshot
	epochs   []metrics.Sample
	digest   uint64
	capacity float64
}

func runEngine(t *testing.T, cfg core.Config) engineState {
	t.Helper()
	e, err := cfg.BuildEngine()
	if err != nil {
		t.Fatalf("BuildEngine(shards=%d): %v", cfg.Shards, err)
	}
	defer e.Close()
	e.Run(equivCycles)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("shards=%d: invariants violated after run: %v", cfg.Shards, err)
	}
	return engineState{
		snapshot: e.Snapshot(),
		epochs:   e.EpochSamples(),
		digest:   e.FaultDigest(),
		capacity: e.EffectiveCapacityFraction(),
	}
}

func compareStates(t *testing.T, ref, got engineState, shards int) {
	t.Helper()
	if !reflect.DeepEqual(ref.snapshot.Counters, got.snapshot.Counters) {
		for name, want := range ref.snapshot.Counters {
			if have := got.snapshot.Counters[name]; have != want {
				t.Errorf("shards=%d: counter %s = %d, want %d", shards, name, have, want)
			}
		}
		for name := range got.snapshot.Counters {
			if _, ok := ref.snapshot.Counters[name]; !ok {
				t.Errorf("shards=%d: extra counter %s", shards, name)
			}
		}
	}
	if !reflect.DeepEqual(ref.snapshot.Gauges, got.snapshot.Gauges) {
		for name, want := range ref.snapshot.Gauges {
			if have := got.snapshot.Gauges[name]; math.Float64bits(have) != math.Float64bits(want) {
				t.Errorf("shards=%d: gauge %s = %v, want bit-identical %v", shards, name, have, want)
			}
		}
		for name := range got.snapshot.Gauges {
			if _, ok := ref.snapshot.Gauges[name]; !ok {
				t.Errorf("shards=%d: extra gauge %s", shards, name)
			}
		}
	}
	if !reflect.DeepEqual(ref.epochs, got.epochs) {
		t.Errorf("shards=%d: epoch sample series diverged (%d vs %d samples)",
			shards, len(got.epochs), len(ref.epochs))
	}
	if got.digest != ref.digest {
		t.Errorf("shards=%d: fault digest %#x, want %#x", shards, got.digest, ref.digest)
	}
	if math.Float64bits(got.capacity) != math.Float64bits(ref.capacity) {
		t.Errorf("shards=%d: capacity %v, want bit-identical %v", shards, got.capacity, ref.capacity)
	}
}

// TestShardEquivalence is the differential matrix: three policies (plain
// set dueling, the Th/Tw-rule variant, and a non-dueling baseline), three
// seeded mixes, shard counts {2, 3, 8} against the shards=1 reference.
// The 3-shard column on 96 sets exercises unequal contiguous ranges on a
// non-power-of-two set count.
func TestShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	workloads := []struct {
		mix  int
		seed uint64
	}{
		{0, 1},
		{3, 7},
		{6, 42},
	}
	for _, policy := range []string{"CP_SD", "CP_SD_Th", "LHybrid"} {
		for _, wl := range workloads {
			for _, sets := range []int{96, 128} {
				ref := runEngine(t, equivConfig(policy, wl.mix, wl.seed, sets, 1))
				for _, shards := range []int{2, 3, 8} {
					got := runEngine(t, equivConfig(policy, wl.mix, wl.seed, sets, shards))
					t.Run("", func(t *testing.T) {
						t.Logf("policy=%s mix=%d seed=%d sets=%d shards=%d",
							policy, wl.mix, wl.seed, sets, shards)
						compareStates(t, ref, got, shards)
					})
				}
			}
		}
	}
}

// TestShardForecastEquivalence pins the other half of the headline
// guarantee: the forecast curve — phase measurements, aged capacities,
// the predicted lifetime — is bit-identical across shard counts, because
// the engine exposes its frames in global set-major order and the aging
// heap's tie-breaking follows that order.
func TestShardForecastEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("forecast differential is not short")
	}
	fcfg := forecast.Config{
		ClockHz:           3.5e9,
		WarmupCycles:      100_000,
		PhaseCycles:       300_000,
		CapacityStep:      0.05,
		TargetCapacity:    0.8,
		MaxPhases:         4,
		MaxPredictSeconds: 3600,
	}
	var ref forecast.Result
	for i, shards := range []int{1, 4} {
		cfg := equivConfig("CP_SD", 0, 1, 96, shards)
		e, err := cfg.BuildEngine()
		if err != nil {
			t.Fatalf("BuildEngine(shards=%d): %v", shards, err)
		}
		res := forecast.RunTarget(e.ForecastTarget(), fcfg)
		e.Close()
		if i == 0 {
			ref = res
			if len(ref.Points) == 0 {
				t.Fatal("reference forecast produced no points")
			}
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("shards=%d: forecast diverged from shards=1:\n got %+v\nwant %+v",
				shards, res, ref)
		}
	}
}

// TestShardEngineRejects pins the construction-time guards.
func TestShardEngineRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"negative", func(c *core.Config) { c.Shards = -1 }},
		{"more shards than sets", func(c *core.Config) { c.Shards = 97 }},
		{"prefetcher", func(c *core.Config) { c.Shards = 2; c.EnablePrefetcher = true }},
		{"invariant checker", func(c *core.Config) { c.Shards = 2; c.CheckEvery = 1000 }},
	} {
		cfg := equivConfig("CP_SD", 0, 1, 96, 1)
		tc.mutate(&cfg)
		if _, err := cfg.BuildEngine(); err == nil {
			t.Errorf("%s: BuildEngine accepted invalid config", tc.name)
		}
	}
}

// TestShardRanges pins the contiguous partition: ranges cover [0, sets)
// without gaps or overlap, including the unequal split of a
// non-power-of-two set count.
func TestShardRanges(t *testing.T) {
	cfg := equivConfig("CP_SD", 0, 1, 96, 5)
	e, err := cfg.BuildEngine()
	if err != nil {
		t.Fatalf("BuildEngine: %v", err)
	}
	defer e.Close()
	next := 0
	for i := 0; i < e.Shards(); i++ {
		lo, hi := e.ShardRange(i)
		if lo != next || hi <= lo {
			t.Fatalf("shard %d owns [%d,%d), want contiguous from %d", i, lo, hi, next)
		}
		next = hi
	}
	if next != 96 {
		t.Fatalf("ranges end at %d, want 96", next)
	}
}

// TestShardDeterminism re-runs the same sharded configuration twice: the
// parallel engine must be deterministic run-to-run, not just equivalent
// to the sequential one.
func TestShardDeterminism(t *testing.T) {
	cfg := equivConfig("CP_SD_Th", 2, 11, 128, 4)
	a := runEngine(t, cfg)
	b := runEngine(t, cfg)
	compareStates(t, a, b, 4)
}
