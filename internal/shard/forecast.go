package shard

import (
	"repro/internal/forecast"
	"repro/internal/nvm"
)

// engineTarget adapts *Engine to forecast.Target. The frames it exposes
// are the router's global set-major slice, so the aging heap's tie-break
// order — and therefore the whole forecast trajectory — is identical for
// every shard count.
type engineTarget struct{ e *Engine }

// ForecastTarget wraps the engine for forecast.RunTarget.
func (e *Engine) ForecastTarget() forecast.Target { return engineTarget{e} }

func (t engineTarget) PolicyName() string { return t.e.PolicyName() }

func (t engineTarget) Run(cycles uint64) forecast.Window {
	st := t.e.Run(cycles)
	return forecast.Window{
		Cycles:          st.Cycles,
		MeanIPC:         st.MeanIPC,
		HitRate:         st.LLC.HitRate(),
		NVMBytesWritten: st.LLC.NVMBytesWritten,
	}
}

func (t engineTarget) Frames() []*nvm.Frame { return t.e.Frames() }

func (t engineTarget) ResetPhase() { t.e.ResetPhase() }

func (t engineTarget) CapacityFraction() float64 { return t.e.EffectiveCapacityFraction() }

func (t engineTarget) LiveFrames() int { return t.e.LiveFrames() }

func (t engineTarget) InvalidateUnfit() int { return t.e.InvalidateUnfit() }

func (t engineTarget) AdvanceWearCounter(n int) { t.e.AdvanceWearCounter(n) }

// RotateSets panics: inter-set rotation moves blocks across shard
// boundaries; run rotation studies with shards=1 (core.Config validation
// rejects the combination up front).
func (t engineTarget) RotateSets(n int) int {
	panic("shard: inter-set rotation crosses shard boundaries; run with shards=1")
}
