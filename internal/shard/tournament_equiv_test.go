package shard_test

// Tournament differential suite: the N-way policy tournament must (a)
// subsume the legacy CP_SD dueling path bit for bit when its bracket is
// CA_RWR at the legacy CPth candidates, and (b) stay bit-identical
// across shard counts and run-to-run for genuinely heterogeneous
// brackets (DRRIP's SRRIP-vs-BRRIP duel, the default mixed bracket with
// per-set RRIP and phase-detector state). CI runs this under -race.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dueling"
)

// legacyBracket rebuilds the paper's CPth candidate list as a TOURNAMENT
// bracket: one CA_RWR candidate per legacy threshold.
func legacyBracket() *core.TournamentConfig {
	tc := &core.TournamentConfig{}
	for _, cpth := range dueling.DefaultCandidates {
		tc.Candidates = append(tc.Candidates, core.TournamentCandidate{Policy: "CA_RWR", CPth: cpth})
	}
	return tc
}

// TestTournamentSubsumesLegacyCPSD is the full-stack differential: a
// TOURNAMENT whose candidates are CA_RWR at the legacy CPth list must
// reproduce the CP_SD engine bit for bit — every counter, gauge, epoch
// sample, fault digest and capacity — at every shard count. The two
// builds share nothing above the dueling substrate: CP_SD goes through
// the classic top-level-policy path (nil resolver), the tournament
// through per-set resolution.
func TestTournamentSubsumesLegacyCPSD(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	ref := runEngine(t, equivConfig("CP_SD", 0, 1, 96, 1))
	for _, shards := range []int{1, 2, 3, 8} {
		cfg := equivConfig("TOURNAMENT", 0, 1, 96, shards)
		cfg.Tournament = legacyBracket()
		cfg.Th, cfg.Tw = 0, 0 // CP_SD selects on hits alone
		got := runEngine(t, cfg)
		compareStates(t, ref, got, shards)
	}
}

// TestTournamentShardEquivalence pins the acceptance guarantee for
// heterogeneous brackets: DRRIP (canned SRRIP-vs-BRRIP) and the default
// TOURNAMENT bracket (CA_RWR/SRRIP/BRRIP/PAR, with BRRIP's per-set
// insertion counters and PAR's phase detector in play) are bit-identical
// across shard counts {1, 2, 3, 8}.
func TestTournamentShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	for _, policy := range []string{"DRRIP", "TOURNAMENT"} {
		ref := runEngine(t, equivConfig(policy, 3, 7, 96, 1))
		for _, shards := range []int{2, 3, 8} {
			got := runEngine(t, equivConfig(policy, 3, 7, 96, shards))
			t.Run("", func(t *testing.T) {
				t.Logf("policy=%s shards=%d", policy, shards)
				compareStates(t, ref, got, shards)
			})
		}
	}
}

// TestTournamentRunToRunDeterminism re-runs the same sharded tournament
// twice; the engine must be deterministic, not merely equivalent.
func TestTournamentRunToRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double run is not short")
	}
	cfg := equivConfig("TOURNAMENT", 6, 42, 128, 8)
	a := runEngine(t, cfg)
	b := runEngine(t, cfg)
	compareStates(t, a, b, 8)
}
