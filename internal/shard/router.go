package shard

import (
	"sync"

	"repro/internal/dueling"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/workload"
)

// Event kinds shipped from the front-end to shard workers. Each event is
// the minimal record a worker needs to replay the front-end's LLC call
// exactly: the fetch kind, the requesting core, and — for inserts — the
// front-end-visible dirtiness plus the content version at eviction time.
type evKind uint8

const (
	evGetS evKind = iota
	evGetX
	evInsert
	// evBarrier makes the worker acknowledge on the router's ack channel
	// once every earlier event has been applied. Shipping it in-band (as
	// a regular event at the tail of a batch) guarantees the worker has
	// drained everything before acking, without a second channel racing
	// the work queue.
	evBarrier
)

type event struct {
	block   uint64
	version uint32
	kind    evKind
	core    uint8
	dirty   bool
}

// batchEvents sizes one transport batch (~4 KB of events): large enough
// to amortize channel synchronization, small enough to keep workers busy.
const batchEvents = 256

// queueDepth is the number of in-flight batches per shard. All batches
// are preallocated and recycled through the free list, so the steady
// state transport allocates nothing.
const queueDepth = 4

type batch struct {
	n  int
	ev [batchEvents]event
}

// pendKey identifies an outstanding private-cache residency: the same
// block can live in two cores' L2s simultaneously (fetched separately,
// with different tags and dirtiness), so the pending map must be keyed by
// (core, block), not by block alone.
type pendKey struct {
	block uint64
	core  uint8
}

// pendVal is what the LLC answered at fetch time; the worker folds it
// into the insert that eventually returns the block.
type pendVal struct {
	tag   hybrid.BlockTag
	dirty bool
}

// shardWorker owns one contiguous set range [lo, hi) of the LLC: a full-
// geometry LLC clone (so all shards draw identical endurance limits from
// identically seeded sampler streams, and set indices need no
// translation), its own dueling controller, pending-fetch map and content
// scratch. In parallel mode a goroutine drains the work channel; with
// shards=1 the router applies events inline on the front-end thread —
// the same apply code either way, which is why shards=N is bit-identical
// to shards=1 by construction.
type shardWorker struct {
	llc    *hybrid.LLC
	ctrl   *dueling.Controller // nil unless the policy duels
	lo, hi int                 // owned set rows

	pending    map[pendKey]pendVal
	contentBuf [64]byte
	apps       []*workload.App
	compress   bool

	work chan *batch
	free chan *batch
	cur  *batch
	ack  chan struct{} // shared with the router
}

// appOf resolves the app owning a block (same scheme as hier.System).
func (w *shardWorker) appOf(block uint64) *workload.App {
	idx := int(block/workload.AppSpacing) - 1
	if idx >= 0 && idx < len(w.apps) && w.apps[idx].Owns(block) {
		return w.apps[idx]
	}
	for _, a := range w.apps {
		if a.Owns(block) {
			return a
		}
	}
	panic("shard: no owner for block")
}

// apply executes one event against the shard's LLC. The reconstruction
// rules mirror hier.System exactly: the fetch stores the LLC's answer;
// the insert ORs the front-end's observed dirtiness into it (every store
// while the block was privately resident folds into the L2 line's dirty
// bit by eviction time) and clears the loop-block tag of dirty blocks.
func (w *shardWorker) apply(e *event) {
	switch e.kind {
	case evGetS:
		res := w.llc.GetS(e.block)
		w.pending[pendKey{e.block, e.core}] = pendVal{res.Tag, res.Dirty}
	case evGetX:
		res := w.llc.GetX(e.block)
		w.pending[pendKey{e.block, e.core}] = pendVal{res.Tag, res.Dirty}
	case evInsert:
		k := pendKey{e.block, e.core}
		p := w.pending[k]
		delete(w.pending, k)
		dirty := e.dirty || p.dirty
		tag := p.tag
		if dirty {
			tag.LB = false // a modified block cannot be a loop-block
		}
		var content []byte
		if w.compress {
			content = w.appOf(e.block).ContentForVersion(w.contentBuf[:], e.block, e.version)
		}
		w.llc.Insert(e.block, dirty, tag, content)
	case evBarrier:
		w.ack <- struct{}{}
	}
}

// run is the worker goroutine: drain batches in FIFO order, recycle them.
// All cross-goroutine state handoff happens through the channels, so the
// engine is race-free by construction (verified under -race in CI).
func (w *shardWorker) run() {
	for b := range w.work {
		for i := 0; i < b.n; i++ {
			w.apply(&b.ev[i])
		}
		b.n = 0
		w.free <- b
	}
}

// Router implements hier.Target by routing each access to the worker
// owning the block's set. Every LLC access is answered as a miss with a
// zero tag before the event is even applied — this is what makes the
// campaign clock deterministic and independent of the shard count: core
// timing never depends on LLC state, so the per-shard event streams are
// identical for every N, and per-set LLC state evolution follows from
// FIFO application alone.
type Router struct {
	shards   []*shardWorker
	ownerOf  []uint16 // set index -> shard index
	sets     int
	parallel bool

	global     hybrid.ThresholdProvider
	globalCtrl *dueling.Controller // non-nil when the policy duels

	apps     []*workload.App
	compress bool // shard LLCs compress (content versions must ship)

	reg *metrics.Registry
	ack chan struct{}
	wg  sync.WaitGroup

	// frames holds the owned physical NVM frames in global set-major
	// order (set s's frames come from the shard owning s); nil when the
	// configuration has no NVM part. Merged array gauges, the forecast
	// and the fault digest iterate it, so their accumulation order is
	// identical for every shard count — the float sums behind wear_mean
	// associate the same way whether one shard owns all sets or eight
	// shards own ranges.
	frames    []*nvm.Frame
	frameWays int // NVM ways per set (0 without an NVM part)
	arrStats  nvm.ArrayStats
	wearVar   nvm.WearVariation

	// scheme is the shared inter-set coloring mapper (nil when coloring
	// is off). Set→shard ownership stays fixed; coloring moves blocks
	// between physical sets, and therefore between shards, at the epoch
	// barrier only.
	scheme  hybrid.SetMapper
	rowWear []float64
	oldMap  []int // pre-advance mapping snapshot, reused every epoch
}

// physSet resolves a block's physical set: the logical index pushed
// through the coloring mapper — the same mapping every shard clone's
// LLC.SetOf applies, so the router always routes an event to the worker
// whose range contains the set the clone will store it in.
func (r *Router) physSet(block uint64) int {
	s := int(block % uint64(r.sets))
	if r.scheme != nil {
		s = r.scheme.Map(s)
	}
	return s
}

// GetS implements hier.Target: enqueue and answer "miss" deterministically.
func (r *Router) GetS(core int, block uint64) hybrid.AccessResult {
	r.push(block, event{block: block, kind: evGetS, core: uint8(core)})
	return hybrid.AccessResult{}
}

// GetX implements hier.Target.
func (r *Router) GetX(core int, block uint64) hybrid.AccessResult {
	r.push(block, event{block: block, kind: evGetX, core: uint8(core)})
	return hybrid.AccessResult{}
}

// Insert implements hier.Target. The front-end's tag and content are
// ignored: in router mode the front-end only ever saw zero tags (every
// access missed), and content is regenerated worker-side from the version
// sampled here, on the front-end thread, where reading the app's version
// table is safe.
func (r *Router) Insert(core int, block uint64, dirty bool, _ hybrid.BlockTag, _ []byte) hybrid.InsertOutcome {
	e := event{block: block, kind: evInsert, core: uint8(core), dirty: dirty}
	if r.compress {
		idx := int(block/workload.AppSpacing) - 1
		if idx >= 0 && idx < len(r.apps) && r.apps[idx].Owns(block) {
			e.version = r.apps[idx].Version(block)
		} else {
			for _, a := range r.apps {
				if a.Owns(block) {
					e.version = a.Version(block)
					break
				}
			}
		}
	}
	r.push(block, e)
	return hybrid.InsertOutcome{}
}

// CompressionEnabled implements hier.Target. It reports false even when
// the shard LLCs compress: the front-end must not generate content (the
// workers regenerate it from shipped versions), and the NVM-hit
// decompression latency never applies because routed accesses always
// answer as misses.
func (r *Router) CompressionEnabled() bool { return false }

// Thresholds implements hier.Target: the globally merged CPth provider.
func (r *Router) Thresholds() hybrid.ThresholdProvider { return r.global }

// Metrics implements hier.Target: the merged registry (see metrics.go).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// push routes one event to the owner of the block's physical set.
func (r *Router) push(block uint64, e event) {
	w := r.shards[r.ownerOf[r.physSet(block)]]
	if !r.parallel {
		w.apply(&e)
		return
	}
	b := w.cur
	b.ev[b.n] = e
	b.n++
	if b.n == batchEvents {
		w.work <- b
		w.cur = <-w.free
	}
}

// Sync implements hier.Target: flush every shard's partial batch with a
// barrier event and wait for all acks. On return every access issued so
// far has fully executed and the channel handoffs order the workers'
// writes before the caller's reads.
func (r *Router) Sync() {
	if !r.parallel {
		return
	}
	for _, w := range r.shards {
		b := w.cur
		b.ev[b.n] = event{kind: evBarrier}
		b.n++
		w.work <- b
		w.cur = <-w.free
	}
	for range r.shards {
		<-r.ack
	}
}

// EndEpoch implements hier.Target: the epoch barrier. After quiescing it
// (a) folds each shard's open sampler votes into the global controller in
// ascending shard order — vote counters are plain sums, so the global
// counters equal the sequential engine's exactly — closes the global
// epoch (applying the plain-winner or Th/Tw rule once, on the combined
// votes) and distributes the winner back so every shard's follower sets
// use it; and (b) rebuilds the merged cross-set NVM-capacity snapshot.
func (r *Router) EndEpoch() {
	r.Sync()
	if r.globalCtrl != nil {
		for _, w := range r.shards {
			r.globalCtrl.MergeFrom(w.ctrl)
		}
		r.globalCtrl.EndEpoch()
		for _, w := range r.shards {
			w.ctrl.AdoptWinner(r.globalCtrl)
		}
	} else {
		r.global.EndEpoch()
	}
	if r.scheme != nil {
		var rw []float64
		if r.frames != nil {
			if r.rowWear == nil {
				r.rowWear = make([]float64, r.sets)
			}
			rw = nvm.RowWearInto(r.rowWear, r.frames, r.sets, r.frameWays)
		}
		// The sequential LLC advances its mapper at the same point of
		// its own EndEpoch, with identical row wear (same frames, same
		// set-major accumulation), so both engines take identical remap
		// decisions every epoch.
		r.oldMap = snapshotMapping(r.oldMap, r.scheme, r.sets)
		if r.scheme.Epoch(rw) {
			r.recolor(hybrid.ChangedRows(r.oldMap, r.scheme))
		}
	}
	r.refreshArrayStats()
}

// snapshotMapping records the scheme's logical→physical mapping before
// the advance, mirroring the sequential LLC's SnapshotMapping.
func snapshotMapping(dst []int, m hybrid.SetMapper, sets int) []int {
	if cap(dst) < sets {
		dst = make([]int, sets)
	}
	dst = dst[:sets]
	for s := 0; s < sets; s++ {
		dst[s] = m.Map(s)
	}
	return dst
}

// recolor applies a mapping change at the quiescent epoch barrier:
// pending fetches whose block now lands in a different shard move to
// their new owner (their stored tag/dirty answer must be found by
// whichever worker replays the eventual insert), then the stale rows of
// every clone's directory are flushed in ascending shard order —
// exactly the rows the sequential LLC flushes after its own mapper
// advance. The pending redistribution is deterministic: entries are
// keyed by (block, core) and the merged result is independent of map
// iteration order.
func (r *Router) recolor(rows []int) {
	if r.parallel {
		type move struct {
			k  pendKey
			v  pendVal
			to int
		}
		var moves []move
		for i, w := range r.shards {
			for k, v := range w.pending {
				to := int(r.ownerOf[r.physSet(k.block)])
				if to == i {
					continue
				}
				moves = append(moves, move{k, v, to})
				delete(w.pending, k)
			}
		}
		for _, m := range moves {
			r.shards[m.to].pending[m.k] = m.v
		}
	}
	for _, w := range r.shards {
		w.llc.FlushRows(rows)
	}
}

// close shuts the worker goroutines down (parallel mode only). Callers
// must Sync first; the engine's Close does.
func (r *Router) close() {
	if !r.parallel {
		return
	}
	for _, w := range r.shards {
		close(w.work)
	}
}
