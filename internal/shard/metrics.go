package shard

import (
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/nvm"
)

// buildRegistry assembles the merged registry the front-end sees: every
// name the sequential engine would register, backed by readers that fold
// the per-shard registries together. Counter merges are uint64 sums in
// ascending shard order — exact, so any shard count yields identical
// values. Float aggregates (the nvm.array gauges) are never recombined
// from per-shard partials; they are recomputed from the router's global
// set-major frame slice so the accumulation order — and therefore every
// rounding step — matches the sequential engine bit for bit.
func (r *Router) buildRegistry() {
	reg := metrics.NewRegistry()
	r.reg = reg

	sum := func(name string) func() uint64 {
		reads := make([]func() uint64, len(r.shards))
		for i, w := range r.shards {
			read, ok := w.llc.Metrics().CounterReader(name)
			if !ok {
				panic(fmt.Sprintf("shard: shard %d registry lacks %q", i, name))
			}
			reads[i] = read
		}
		return func() uint64 {
			var t uint64
			for _, read := range reads {
				t += read()
			}
			return t
		}
	}

	for _, name := range hybrid.StatNames() {
		reg.CounterFunc(name, sum(name))
	}
	hits, misses := sum("llc.hits"), sum("llc.misses")
	reg.GaugeFunc("llc.hit_rate", func() float64 {
		st := hybrid.Stats{Hits: hits(), Misses: misses()}
		return st.HitRate()
	})

	if r.frames != nil {
		// Cache the aggregate once per snapshot/epoch, mirroring
		// nvm.Array.RegisterMetrics.
		reg.OnSnapshot(r.refreshArrayStats)
		st := &r.arrStats
		reg.CounterFunc("nvm.array.bytes_written", func() uint64 { return st.BytesWritten })
		reg.GaugeFunc("nvm.array.phase_bytes_written", func() float64 { return float64(st.PhaseBytesWritten) })
		reg.GaugeFunc("nvm.array.live_frames", func() float64 { return float64(st.LiveFrames) })
		reg.GaugeFunc("nvm.array.dead_frames", func() float64 { return float64(st.DeadFrames) })
		reg.GaugeFunc("nvm.array.faulty_bytes", func() float64 { return float64(st.FaultyBytes) })
		reg.GaugeFunc("nvm.array.capacity_fraction", func() float64 { return st.CapacityFraction })
		reg.GaugeFunc("nvm.array.wear_mean", func() float64 { return st.WearMean })
		reg.GaugeFunc("nvm.array.wear_max", func() float64 { return st.WearMax })
		wv := &r.wearVar
		reg.GaugeFunc("nvm.array.wear_min", func() float64 { return wv.WearMin })
		reg.GaugeFunc("nvm.array.wear_interset_cov", func() float64 { return wv.InterSetCoV })
		reg.GaugeFunc("nvm.array.wear_intraset_cov", func() float64 { return wv.IntraSetCoV })
		reg.GaugeFunc("nvm.array.wear_gini", func() float64 { return wv.Gini })
		// The clones advance their remap and wear-level counters in
		// lockstep (the engine never rotates per shard), so shard 0
		// speaks for all.
		arr0 := r.shards[0].llc.Array()
		reg.GaugeFunc("nvm.array.set_remap", func() float64 { return float64(arr0.SetRemap()) })
		reg.GaugeFunc("nvm.array.wearlevel_counter", func() float64 { return float64(arr0.Counter().Value()) })
	}

	if r.globalCtrl != nil {
		ctrl := r.globalCtrl
		reg.GaugeFunc("dueling.cpth", func() float64 { return float64(ctrl.Winner()) })
		reg.GaugeFunc("dueling.winner_idx", func() float64 { return float64(ctrl.WinnerIndex()) })
		reg.CounterFunc("dueling.epochs", func() uint64 { return uint64(len(ctrl.History)) })
		// Open (intra-epoch) votes live in the shard controllers until
		// the epoch barrier folds them into the global one.
		reg.GaugeFunc("dueling.epoch_hits", func() float64 {
			var t uint64
			for _, w := range r.shards {
				h, _ := w.ctrl.OpenVoteTotals()
				t += h
			}
			gh, _ := ctrl.OpenVoteTotals()
			return float64(t + gh)
		})
		reg.GaugeFunc("dueling.epoch_bytes", func() float64 {
			var t uint64
			for _, w := range r.shards {
				_, b := w.ctrl.OpenVoteTotals()
				t += b
			}
			_, gb := ctrl.OpenVoteTotals()
			return float64(t + gb)
		})
	}
}

// refreshArrayStats recomputes the merged ArrayStats from the global
// set-major frame order — one pass, identical for every shard count.
func (r *Router) refreshArrayStats() {
	if r.frames != nil {
		r.arrStats = statsOfFrames(r.frames)
		// Same function, same global set-major frame order as
		// nvm.Array.WearVariation — bit-identical for every shard count.
		r.wearVar = nvm.WearVariationOf(r.frames, r.sets, r.frameWays)
	}
}

// statsOfFrames mirrors nvm.Array.Stats field for field, over an explicit
// frame slice in the caller's order.
func statsOfFrames(frames []*nvm.Frame) nvm.ArrayStats {
	var st nvm.ArrayStats
	if len(frames) == 0 {
		return st
	}
	have := 0
	for _, f := range frames {
		st.BytesWritten += f.TotalWritten()
		st.PhaseBytesWritten += f.PhaseWritten()
		st.FaultyBytes += f.FaultyBytes()
		have += f.EffectiveCapacity()
		if f.Dead() {
			st.DeadFrames++
		} else {
			st.LiveFrames++
		}
		st.WearMean += f.Wear()
		if f.Wear() > st.WearMax {
			st.WearMax = f.Wear()
		}
	}
	st.WearMean /= float64(len(frames))
	st.CapacityFraction = float64(have) / float64(len(frames)*nvm.DataBytes)
	return st
}
