package shard_test

// Alloc-regression pin for the sharded engine, extending the hot-path
// pins of internal/hybrid: a steady-state access driven through a 4-shard
// engine — front-end step, event batching, channel handoff, worker-side
// replay with content regeneration — must allocate nothing. The batch
// pool, the pending maps and the content scratch are all preallocated;
// this test fails with the measured count if any of them regresses.

import (
	"testing"

	"repro/internal/core"
)

func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.PolicyName = "CP_SD"
	cfg.LLCSets = 128
	cfg.Shards = 4
	// Epochs never close during the measurement: epoch recording (ring
	// samples, vote merges) is off the steady-state path by design.
	cfg.EpochCycles = 1 << 40
	e, err := cfg.BuildEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Warm up: fill the private caches, the shard LLCs, the pending maps
	// and the transport's batch pool.
	e.StepAccesses(200_000)

	if allocs := testing.AllocsPerRun(100, func() {
		e.StepAccesses(500)
	}); allocs != 0 {
		t.Errorf("sharded steady-state access allocates %.1f times per run, want 0", allocs)
	}
}
