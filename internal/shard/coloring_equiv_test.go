package shard_test

// Differential coloring suite: the set-coloring remap must not cost the
// sharded engine its headline bit-identity guarantee. Every scheme runs
// on shard counts {2, 3, 8} against the shards=1 reference — including
// the epoch-advancing schemes, whose remap (and selective row flush)
// happens at the quiescent barrier and must order identically against
// every access stream. The zipfian set-pressure mix drives real inter-set
// skew, so the wear-feedback scheme actually remaps during the window
// instead of degenerating to the identity.

import (
	"testing"

	"repro/internal/core"
)

// coloringConfig is equivConfig plus a coloring document.
func coloringConfig(cc core.ColoringConfig, mix int, seed uint64, sets, shards int) core.Config {
	c := equivConfig("CP_SD", mix, seed, sets, shards)
	c.Coloring = &cc
	return c
}

// TestShardColoringEquivalence runs the scheme matrix. The 96-set rows
// exercise rotation and wear feedback on a non-power-of-two set count,
// where the 3-shard contiguous ranges are unequal.
func TestShardColoringEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	cases := []struct {
		name string
		sets int
		cc   core.ColoringConfig
	}{
		{"xor", 128, core.ColoringConfig{Scheme: core.ColoringXOR, Mask: 21}},
		{"rotate", 128, core.ColoringConfig{Scheme: core.ColoringRot, IntervalEpochs: 1, Step: 37}},
		{"rotate-odd", 96, core.ColoringConfig{Scheme: core.ColoringRot, IntervalEpochs: 2, Step: 35}},
		{"wear", 128, core.ColoringConfig{Scheme: core.ColoringWear, IntervalEpochs: 1, Pairs: 8}},
		{"wear-odd", 96, core.ColoringConfig{Scheme: core.ColoringWear, IntervalEpochs: 1, Pairs: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runEngine(t, coloringConfig(tc.cc, 10, 9, tc.sets, 1))
			for _, shards := range []int{2, 3, 8} {
				got := runEngine(t, coloringConfig(tc.cc, 10, 9, tc.sets, shards))
				compareStates(t, ref, got, shards)
			}
		})
	}
}

// TestIdentityColoringMatchesClassic pins the zero-cost end of the
// design: xor with mask 0 is the identity mapping, and a run with it
// configured must be byte-for-byte the run with coloring off — same
// counters, gauges, epoch series, fault digest and capacity — in both
// the sequential engine and a sharded one.
func TestIdentityColoringMatchesClassic(t *testing.T) {
	if testing.Short() {
		t.Skip("differential check is not short")
	}
	for _, shards := range []int{1, 4} {
		plain := runEngine(t, equivConfig("CP_SD", 0, 1, 128, shards))
		id := runEngine(t, coloringConfig(core.ColoringConfig{Scheme: core.ColoringXOR}, 0, 1, 128, shards))
		compareStates(t, plain, id, shards)
	}
}
