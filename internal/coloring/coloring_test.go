package coloring

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestXORPermutation checks every mask of a small power-of-two geometry:
// each is a bijection, mask 0 is the identity, and Epoch never reports a
// change (static coloring).
func TestXORPermutation(t *testing.T) {
	const sets = 16
	for mask := 0; mask < sets; mask++ {
		x, err := NewXOR(sets, mask)
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if err := CheckPermutation(x); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if x.Epoch(nil) {
			t.Fatalf("mask %d: static xor reported a mapping change", mask)
		}
	}
	id, _ := NewXOR(sets, 0)
	for l := 0; l < sets; l++ {
		if id.Map(l) != l {
			t.Fatalf("identity xor maps %d -> %d", l, id.Map(l))
		}
	}
}

// TestRotationPermutationEveryEpoch is the property the shard barrier
// depends on: after every single Epoch call — advancing or not — the
// mapping is still a bijection. It also pins the advance cadence (true
// exactly every interval epochs) and full row coverage: with
// gcd(step, sets) = 1 a logical set visits every physical row.
func TestRotationPermutationEveryEpoch(t *testing.T) {
	const sets, interval, step = 96, 2, 37 // gcd(37, 96) = 1
	r, err := NewRotation(sets, interval, step)
	if err != nil {
		t.Fatal(err)
	}
	visited := map[int]bool{r.Map(0): true}
	advances := 0
	for epoch := 1; epoch <= 2*interval*sets; epoch++ {
		changed := r.Epoch(nil)
		if want := epoch%interval == 0; changed != want {
			t.Fatalf("epoch %d: changed=%v, want %v", epoch, changed, want)
		}
		if changed {
			advances++
		}
		if err := CheckPermutation(r); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		visited[r.Map(0)] = true
	}
	if advances != 2*sets {
		t.Fatalf("advances = %d, want %d", advances, 2*sets)
	}
	if len(visited) != sets {
		t.Fatalf("logical set 0 visited %d/%d rows", len(visited), sets)
	}
}

// TestWearFeedbackDirectedSwap pins the scheme's core move on a
// hand-checkable geometry: one hot row swaps with the coldest row, and a
// second epoch with no new wear (all deltas zero) changes nothing.
func TestWearFeedbackDirectedSwap(t *testing.T) {
	s, err := NewWearFeedback(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Epoch([]float64{0, 10, 0, 0}) {
		t.Fatal("hot row 1 did not trigger a remap")
	}
	// Row 1 was hottest, row 0 coldest (tie on 0 wear breaks by index):
	// their logical preimages swap.
	want := []int{1, 0, 2, 3}
	got := []int{s.Map(0), s.Map(1), s.Map(2), s.Map(3)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mapping after swap = %v, want %v", got, want)
	}
	if err := CheckPermutation(s); err != nil {
		t.Fatal(err)
	}
	// Same cumulative wear again: every delta is zero, nothing may move.
	if s.Epoch([]float64{0, 10, 0, 0}) {
		t.Fatal("zero-delta epoch reported a change")
	}
	if got := []int{s.Map(0), s.Map(1), s.Map(2), s.Map(3)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-delta epoch moved the mapping to %v", got)
	}
}

// TestWearFeedbackPermutationUnderLoad drives the remapper with a
// pseudo-random wear trajectory and checks the bijection after every
// epoch — including the epochs where Map is consulted between interval
// boundaries and nothing advanced.
func TestWearFeedbackPermutationUnderLoad(t *testing.T) {
	const sets, epochs = 64, 200
	s, err := NewWearFeedback(sets, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	cum := make([]float64, sets)
	changes := 0
	for e := 0; e < epochs; e++ {
		for i := range cum {
			cum[i] += rng.Float64() * float64(1+i%7)
		}
		if s.Epoch(cum) {
			changes++
		}
		if err := CheckPermutation(s); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	if changes == 0 {
		t.Fatal("skewed wear never triggered a remap")
	}
}

// TestWearFeedbackDeterminism re-runs the identical wear trajectory
// through two independent instances: the remap trajectory must match
// epoch by epoch. The scheme consumes no randomness and breaks ties by
// row index, so a seeded simulation replays to the same coloring.
func TestWearFeedbackDeterminism(t *testing.T) {
	const sets, epochs = 48, 120
	build := func() *WearFeedback {
		s, err := NewWearFeedback(sets, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	rngA, rngB := stats.NewRNG(99), stats.NewRNG(99)
	cumA, cumB := make([]float64, sets), make([]float64, sets)
	for e := 0; e < epochs; e++ {
		for i := range cumA {
			cumA[i] += rngA.Float64()
			cumB[i] += rngB.Float64()
		}
		ca, cb := a.Epoch(cumA), b.Epoch(cumB)
		if ca != cb {
			t.Fatalf("epoch %d: change %v vs %v", e, ca, cb)
		}
		for l := 0; l < sets; l++ {
			if a.Map(l) != b.Map(l) {
				t.Fatalf("epoch %d: set %d maps to %d vs %d", e, l, a.Map(l), b.Map(l))
			}
		}
	}
}

// TestWearFeedbackIgnoresMismatchedWear pins the nil/short rowWear
// contract: a configuration without an NVM part passes nil and the
// mapping must stay put.
func TestWearFeedbackIgnoresMismatchedWear(t *testing.T) {
	s, err := NewWearFeedback(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch(nil) || s.Epoch(make([]float64, 4)) {
		t.Fatal("mismatched rowWear advanced the mapping")
	}
	for l := 0; l < 8; l++ {
		if s.Map(l) != l {
			t.Fatalf("mapping moved without wear input: %d -> %d", l, s.Map(l))
		}
	}
}

// TestConstructorRejections is the validation table for all three
// scheme constructors.
func TestConstructorRejections(t *testing.T) {
	cases := []struct {
		name  string
		build func() error
	}{
		{"xor non-pow2", func() error { _, err := NewXOR(96, 1); return err }},
		{"xor zero sets", func() error { _, err := NewXOR(0, 0); return err }},
		{"xor mask negative", func() error { _, err := NewXOR(16, -1); return err }},
		{"xor mask too big", func() error { _, err := NewXOR(16, 16); return err }},
		{"rotate one set", func() error { _, err := NewRotation(1, 1, 1); return err }},
		{"rotate zero interval", func() error { _, err := NewRotation(16, 0, 1); return err }},
		{"rotate zero step", func() error { _, err := NewRotation(16, 1, 0); return err }},
		{"rotate step too big", func() error { _, err := NewRotation(16, 1, 16); return err }},
		{"wear one set", func() error { _, err := NewWearFeedback(1, 1, 1); return err }},
		{"wear zero interval", func() error { _, err := NewWearFeedback(16, 0, 1); return err }},
		{"wear zero pairs", func() error { _, err := NewWearFeedback(16, 1, 0); return err }},
		{"wear too many pairs", func() error { _, err := NewWearFeedback(16, 1, 9); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.build() == nil {
				t.Fatal("invalid geometry accepted")
			}
		})
	}
}

// TestCheckPermutationCatchesAliases proves the checker itself detects a
// broken mapping (it guards the whole property suite).
func TestCheckPermutationCatchesAliases(t *testing.T) {
	if err := CheckPermutation(brokenScheme{}); err == nil {
		t.Fatal("aliasing scheme passed CheckPermutation")
	}
}

type brokenScheme struct{}

func (brokenScheme) Name() string         { return "broken" }
func (brokenScheme) Sets() int            { return 4 }
func (brokenScheme) Map(int) int          { return 0 } // every set aliases row 0
func (brokenScheme) Epoch([]float64) bool { return false }
