// Package coloring implements inter-set wear-leveling for the hybrid
// LLC: bijective logical-set → physical-row remapping schemes ("cache
// coloring" / set remapping). The paper's insertion policies level wear
// within a set; these schemes level it across sets, attacking the
// inter-set write variation Mittal's coloring work (arxiv 1310.8494)
// identifies as the remaining lifetime limiter under skewed traffic.
//
// A scheme maps the logical set index (block mod sets) to the physical
// directory/frame row. The mapping only changes inside Epoch, which the
// owner calls exactly once per epoch boundary: the sequential LLC from
// its own EndEpoch, the shard router once at the quiescent epoch
// barrier (so shards=N stays bit-identical to shards=1 — the remap is
// a global, deterministic event ordered against every access stream).
// When Epoch reports a change the owner must flush its directory, since
// resident blocks' rows moved under them.
//
// All schemes are deterministic: the wear-feedback scheme breaks wear
// ties by row index and consumes no randomness, so a fixed seed yields
// a fixed remap trajectory.
package coloring

import (
	"fmt"
	"sort"
)

// Scheme is a set-index remapping policy. Map must be a bijection on
// [0, Sets()) between any two Epoch calls; Epoch advances the scheme's
// internal epoch counter and reports whether the mapping changed.
type Scheme interface {
	// Name returns the scheme's registry name ("xor", "rotate", "wear").
	Name() string
	// Sets returns the set count the scheme was built for.
	Sets() int
	// Map returns the physical row for a logical set index.
	Map(logical int) int
	// Epoch is called once per epoch boundary with the cumulative
	// per-physical-row wear (nil when the configuration has no NVM
	// part). It returns true iff the mapping changed, in which case the
	// caller must flush any state keyed by physical row.
	Epoch(rowWear []float64) bool
}

// XOR is static address-bit coloring: physical = logical XOR mask. It
// scatters low-index hot sets across the row space once, at zero
// runtime cost, but never adapts. Requires a power-of-two set count
// (the XOR must stay inside [0, sets)). Mask 0 is the identity.
type XOR struct {
	sets, mask int
}

// NewXOR builds a static XOR coloring.
func NewXOR(sets, mask int) (*XOR, error) {
	if sets < 1 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("coloring: xor needs a power-of-two set count, got %d", sets)
	}
	if mask < 0 || mask >= sets {
		return nil, fmt.Errorf("coloring: xor mask %d outside [0,%d)", mask, sets)
	}
	return &XOR{sets: sets, mask: mask}, nil
}

// Name implements Scheme.
func (x *XOR) Name() string { return "xor" }

// Sets implements Scheme.
func (x *XOR) Sets() int { return x.sets }

// Map implements Scheme.
func (x *XOR) Map(logical int) int { return logical ^ x.mask }

// Epoch implements Scheme; a static coloring never changes.
func (x *XOR) Epoch([]float64) bool { return false }

// Rotation shifts the whole mapping by step rows every interval epochs
// (a Start-Gap-style scheme lifted to the set dimension): physical =
// (logical + offset) mod sets. It guarantees every logical set visits
// every row over sets/gcd(step,sets) advances, regardless of traffic.
type Rotation struct {
	sets, interval, step int
	offset               int
	epochs               int
}

// NewRotation builds a periodic rotation advancing by step rows every
// interval epochs.
func NewRotation(sets, interval, step int) (*Rotation, error) {
	if sets < 2 {
		return nil, fmt.Errorf("coloring: rotation needs >= 2 sets, got %d", sets)
	}
	if interval < 1 {
		return nil, fmt.Errorf("coloring: rotation interval %d, want >= 1", interval)
	}
	if step < 1 || step >= sets {
		return nil, fmt.Errorf("coloring: rotation step %d outside [1,%d)", step, sets)
	}
	return &Rotation{sets: sets, interval: interval, step: step}, nil
}

// Name implements Scheme.
func (r *Rotation) Name() string { return "rotate" }

// Sets implements Scheme.
func (r *Rotation) Sets() int { return r.sets }

// Map implements Scheme.
func (r *Rotation) Map(logical int) int {
	p := logical + r.offset
	if p >= r.sets {
		p -= r.sets
	}
	return p
}

// Offset returns the current rotation offset (tests and diagnostics).
func (r *Rotation) Offset() int { return r.offset }

// Epoch implements Scheme: advance the offset every interval epochs.
func (r *Rotation) Epoch([]float64) bool {
	r.epochs++
	if r.epochs%r.interval != 0 {
		return false
	}
	r.offset = (r.offset + r.step) % r.sets
	return true
}

// WearFeedback swaps the preimages of the hottest and coldest physical
// rows every interval epochs, judged by wear accumulated since the
// previous advance (deltas, not cumulative wear — a row that was hot
// long ago but has cooled must not keep ping-ponging). Up to pairs
// hot/cold pairs swap per advance; ties break by row index, so the
// trajectory is a pure function of the wear history.
type WearFeedback struct {
	sets, interval, pairs int
	epochs                int
	perm                  []int // logical -> physical
	inv                   []int // physical -> logical
	prev                  []float64
	delta                 []float64
	order                 []int
}

// NewWearFeedback builds a wear-feedback remapper swapping up to pairs
// hottest/coldest row pairs every interval epochs.
func NewWearFeedback(sets, interval, pairs int) (*WearFeedback, error) {
	if sets < 2 {
		return nil, fmt.Errorf("coloring: wear feedback needs >= 2 sets, got %d", sets)
	}
	if interval < 1 {
		return nil, fmt.Errorf("coloring: wear interval %d, want >= 1", interval)
	}
	if pairs < 1 || pairs > sets/2 {
		return nil, fmt.Errorf("coloring: wear pairs %d outside [1,%d]", pairs, sets/2)
	}
	s := &WearFeedback{
		sets:     sets,
		interval: interval,
		pairs:    pairs,
		perm:     make([]int, sets),
		inv:      make([]int, sets),
		prev:     make([]float64, sets),
		delta:    make([]float64, sets),
		order:    make([]int, sets),
	}
	for i := 0; i < sets; i++ {
		s.perm[i] = i
		s.inv[i] = i
	}
	return s, nil
}

// Name implements Scheme.
func (s *WearFeedback) Name() string { return "wear" }

// Sets implements Scheme.
func (s *WearFeedback) Sets() int { return s.sets }

// Map implements Scheme.
func (s *WearFeedback) Map(logical int) int { return s.perm[logical] }

// Epoch implements Scheme. rowWear is cumulative physical-row wear; the
// scheme differences it against its snapshot from the previous advance.
func (s *WearFeedback) Epoch(rowWear []float64) bool {
	s.epochs++
	if s.epochs%s.interval != 0 || len(rowWear) != s.sets {
		return false
	}
	for i, w := range rowWear {
		s.delta[i] = w - s.prev[i]
		s.prev[i] = w
		s.order[i] = i
	}
	// Ascending by recent wear, ties by row index: order[0] is the
	// coldest row, order[sets-1] the hottest.
	sort.Slice(s.order, func(a, b int) bool {
		ra, rb := s.order[a], s.order[b]
		if s.delta[ra] != s.delta[rb] {
			return s.delta[ra] < s.delta[rb]
		}
		return ra < rb
	})
	changed := false
	for k := 0; k < s.pairs; k++ {
		cold, hot := s.order[k], s.order[s.sets-1-k]
		if cold == hot || s.delta[hot] <= s.delta[cold] {
			break // remaining pairs are even closer in wear
		}
		lh, lc := s.inv[hot], s.inv[cold]
		s.perm[lh], s.perm[lc] = cold, hot
		s.inv[hot], s.inv[cold] = lc, lh
		changed = true
	}
	return changed
}

// CheckPermutation verifies that a scheme's current mapping is a
// bijection on [0, Sets()): every physical row has exactly one logical
// preimage. The property suites call it after every epoch.
func CheckPermutation(s Scheme) error {
	n := s.Sets()
	seen := make([]bool, n)
	for l := 0; l < n; l++ {
		p := s.Map(l)
		if p < 0 || p >= n {
			return fmt.Errorf("coloring: %s maps set %d outside [0,%d)", s.Name(), l, n)
		}
		if seen[p] {
			return fmt.Errorf("coloring: %s aliases physical row %d", s.Name(), p)
		}
		seen[p] = true
	}
	return nil
}
