package bdi

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func block64(fill func(i int) byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = fill(i)
	}
	return b
}

func TestZerosBlock(t *testing.T) {
	c := Compress(make([]byte, BlockSize))
	if c.Enc != EncZeros || c.Size() != 1 {
		t.Fatalf("zeros block: enc=%v size=%d", c.Enc, c.Size())
	}
}

func TestRep8Block(t *testing.T) {
	b := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += 8 {
		binary.LittleEndian.PutUint64(b[i:], 0xDEADBEEFCAFEBABE)
	}
	c := Compress(b)
	if c.Enc != EncRep8 || c.Size() != 8 {
		t.Fatalf("rep8 block: enc=%v size=%d", c.Enc, c.Size())
	}
}

func TestB8D1Block(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint64(1 << 40)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i*7))
	}
	c := Compress(b)
	if c.Enc != EncB8D1 {
		t.Fatalf("enc = %v, want B8D1", c.Enc)
	}
	if c.Size() != 16 {
		t.Fatalf("size = %d, want 16", c.Size())
	}
}

func TestB8D1NegativeDeltas(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint64(1 << 40)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base-uint64(i*15))
	}
	c := Compress(b)
	if c.Enc != EncB8D1 {
		t.Fatalf("enc = %v, want B8D1 (negative deltas)", c.Enc)
	}
	roundtrip(t, b)
}

func TestB4D1Block(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint32(0x10000000)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], base+uint32(i))
	}
	c := Compress(b)
	if c.Enc != EncB4D1 || c.Size() != 20 {
		t.Fatalf("enc=%v size=%d, want B4D1/20", c.Enc, c.Size())
	}
}

func TestB2D1Block(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint16(0x4000)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint16(b[i*2:], base+uint16(i%100))
	}
	c := Compress(b)
	// B2D1 (34) may lose to a smaller base-8/base-4 encoding only if those
	// cover the block; with varying low bytes across 8-byte words they do not.
	if c.Enc != EncB2D1 {
		t.Fatalf("enc=%v, want B2D1", c.Enc)
	}
	roundtrip(t, b)
}

func TestIncompressibleBlock(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := make([]byte, BlockSize)
	r.Read(b)
	c := Compress(b)
	if c.Enc != EncUncompressed || c.Size() != 64 {
		t.Fatalf("random block compressed to %v/%d", c.Enc, c.Size())
	}
	roundtrip(t, b)
}

func TestLCREncodingsReachable(t *testing.T) {
	// Block of 8-byte values with ~28-bit deltas: needs 4-byte deltas (B8D4).
	b := make([]byte, BlockSize)
	base := uint64(1 << 50)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i)<<27)
	}
	c := Compress(b)
	if c.Enc != EncB8D4 {
		t.Fatalf("enc = %v, want B8D4", c.Enc)
	}
	if !c.Enc.IsLCR() {
		t.Error("B8D4 should be LCR")
	}
	roundtrip(t, b)
}

func TestB8D6Reachable(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint64(1 << 60)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i)<<43)
	}
	c := Compress(b)
	if c.Enc != EncB8D6 {
		t.Fatalf("enc = %v, want B8D6", c.Enc)
	}
	roundtrip(t, b)
}

func roundtrip(t *testing.T, b []byte) {
	t.Helper()
	c := Compress(b)
	got, err := Decompress(c)
	if err != nil {
		t.Fatalf("decompress(%v): %v", c.Enc, err)
	}
	if !bytes.Equal(got, b) {
		t.Fatalf("roundtrip mismatch under %v:\n in  %x\n out %x", c.Enc, b, got)
	}
}

// TestRoundtripProperty: compress∘decompress is the identity for arbitrary
// blocks, including adversarial ones near delta-width boundaries.
func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, BlockSize)
		switch kind % 6 {
		case 0: // random
			r.Read(b)
		case 1: // base-8 small deltas
			base := r.Uint64()
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(b[i*8:], base+uint64(r.Intn(256))-128)
			}
		case 2: // base-4
			base := r.Uint32()
			for i := 0; i < 16; i++ {
				binary.LittleEndian.PutUint32(b[i*4:], base+uint32(r.Intn(65536)))
			}
		case 3: // base-2
			base := uint16(r.Uint32())
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint16(b[i*2:], base+uint16(r.Intn(64)))
			}
		case 4: // sparse zeros
			for i := 0; i < 4; i++ {
				b[r.Intn(BlockSize)] = byte(r.Intn(256))
			}
		case 5: // wide base-8 deltas (LCR territory)
			base := r.Uint64()
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(b[i*8:], base+uint64(r.Int63n(1<<40)))
			}
		}
		c := Compress(b)
		got, err := Decompress(c)
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressPicksSmallest: no other encoding that covers the block is
// smaller than the one Compress chose.
func TestCompressPicksSmallest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, BlockSize)
		base := r.Uint64()
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(b[i*8:], base+uint64(r.Int63n(1<<20)))
		}
		chosen := Compress(b)
		for _, enc := range candidateOrder {
			if refCovers(b, enc) {
				if enc.Size() < chosen.Size() {
					return false
				}
				break // candidateOrder is sorted by size
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecsTableMatchesPaper(t *testing.T) {
	sizes := map[Encoding]int{
		EncZeros: 1, EncRep8: 8, EncB8D1: 16, EncB4D1: 20, EncB8D2: 24,
		EncB8D3: 32, EncB2D1: 34, EncB4D2: 36, EncB8D4: 40, EncB8D5: 48,
		EncB4D3: 52, EncB8D6: 56, EncUncompressed: 64,
	}
	for enc, want := range sizes {
		if got := enc.Size(); got != want {
			t.Errorf("%v size = %d, want %d", enc, got, want)
		}
	}
	if len(Specs()) != int(numEncodings) {
		t.Errorf("Specs() has %d entries, want %d", len(Specs()), numEncodings)
	}
}

func TestHCRLCRBoundary(t *testing.T) {
	for e := Encoding(0); e < numEncodings; e++ {
		switch {
		case e == EncUncompressed:
			if e.IsHCR() || e.IsLCR() {
				t.Errorf("%v should be neither HCR nor LCR", e)
			}
			if ClassOf(e) != ClassIncompressible {
				t.Errorf("%v class = %v", e, ClassOf(e))
			}
		case e.Size() <= HCRLimit:
			if !e.IsHCR() || e.IsLCR() || ClassOf(e) != ClassHCR {
				t.Errorf("%v (size %d) misclassified", e, e.Size())
			}
		default:
			if e.IsHCR() || !e.IsLCR() || ClassOf(e) != ClassLCR {
				t.Errorf("%v (size %d) misclassified", e, e.Size())
			}
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(Compressed{EncB8D1, make([]byte, 5)}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := Decompress(Compressed{Encoding(200), make([]byte, 64)}); err == nil {
		t.Error("invalid encoding accepted")
	}
}

func TestCompressPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compress on short block did not panic")
		}
	}()
	Compress(make([]byte, 32))
}

func TestCompressedSizeMatchesCompress(t *testing.T) {
	b := block64(func(i int) byte { return byte(i) })
	if CompressedSize(b) != Compress(b).Size() {
		t.Error("CompressedSize disagrees with Compress")
	}
}

func TestClassString(t *testing.T) {
	if ClassHCR.String() != "HCR" || ClassLCR.String() != "LCR" ||
		ClassIncompressible.String() != "incompressible" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestEncodingString(t *testing.T) {
	if EncB8D1.String() != "B8D1" {
		t.Errorf("B8D1 renders as %q", EncB8D1.String())
	}
	if Encoding(99).String() != "Encoding(99)" {
		t.Errorf("invalid encoding renders as %q", Encoding(99).String())
	}
}

func BenchmarkCompressCompressible(b *testing.B) {
	blk := make([]byte, BlockSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(blk[i*8:], 1<<40+uint64(i*3))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(blk)
	}
}

func BenchmarkCompressIncompressible(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	blk := make([]byte, BlockSize)
	r.Read(blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(blk)
	}
}

func BenchmarkDecompress(b *testing.B) {
	blk := make([]byte, BlockSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(blk[i*8:], 1<<40+uint64(i*3))
	}
	c := Compress(blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}
