// Package bdi implements the Base-Delta-Immediate cache-block compression
// algorithm (Pekhimenko et al., PACT 2012) in the modified form used by
// "Compression-Aware and Performance-Efficient Insertion Policies for
// Long-Lasting Hybrid LLCs" (HPCA 2023, §II-B): in addition to the original
// high-compression-ratio encodings, the low-compression-ratio (LCR)
// encodings with compressed sizes above 37 bytes are kept, because they
// still let partially worn-out NVM frames hold blocks that cannot be
// compressed further.
//
// A 64-byte block is viewed as an array of 8-, 4- or 2-byte values. If all
// values fit in a common base plus small signed deltas, the block is stored
// as base + deltas. All candidate encodings are evaluated (in hardware, in
// parallel) and the smallest is chosen.
package bdi

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BlockSize is the uncompressed cache block size in bytes.
const BlockSize = 64

// HCRLimit is the compressed-size boundary (inclusive) between
// high-compression-ratio (HCR) and low-compression-ratio (LCR) blocks
// (paper §II-B: LCR blocks are those with compressed size greater than 37).
const HCRLimit = 37

// Encoding identifies one BDI compression encoding (the 4-bit CE field).
type Encoding uint8

// The encoding set. Order is part of the on-"wire" format: the CE field
// stored alongside a compressed block is the Encoding value itself.
const (
	EncUncompressed Encoding = iota // raw 64-byte block
	EncZeros                        // all-zero block
	EncRep8                         // one repeated 8-byte value
	EncB8D1                         // base 8 bytes, deltas 1 byte
	EncB4D1                         // base 4 bytes, deltas 1 byte
	EncB8D2                         // base 8 bytes, deltas 2 bytes
	EncB8D3                         // base 8 bytes, deltas 3 bytes
	EncB2D1                         // base 2 bytes, deltas 1 byte
	EncB4D2                         // base 4 bytes, deltas 2 bytes
	EncB8D4                         // base 8 bytes, deltas 4 bytes
	EncB8D5                         // base 8 bytes, deltas 5 bytes
	EncB4D3                         // base 4 bytes, deltas 3 bytes
	EncB8D6                         // base 8 bytes, deltas 6 bytes
	numEncodings
)

// Spec describes the geometry of one encoding.
type Spec struct {
	Enc   Encoding
	Name  string
	Base  int // base width in bytes (0 for special encodings)
	Delta int // delta width in bytes (0 for special encodings)
	Size  int // compressed size in bytes
}

// specs is indexed by Encoding.
var specs = [numEncodings]Spec{
	EncUncompressed: {EncUncompressed, "Uncompressed", 0, 0, 64},
	EncZeros:        {EncZeros, "Zeros", 0, 0, 1},
	EncRep8:         {EncRep8, "Rep8", 8, 0, 8},
	EncB8D1:         {EncB8D1, "B8D1", 8, 1, 8 + 8*1},
	EncB4D1:         {EncB4D1, "B4D1", 4, 1, 4 + 16*1},
	EncB8D2:         {EncB8D2, "B8D2", 8, 2, 8 + 8*2},
	EncB8D3:         {EncB8D3, "B8D3", 8, 3, 8 + 8*3},
	EncB2D1:         {EncB2D1, "B2D1", 2, 1, 2 + 32*1},
	EncB4D2:         {EncB4D2, "B4D2", 4, 2, 4 + 16*2},
	EncB8D4:         {EncB8D4, "B8D4", 8, 4, 8 + 8*4},
	EncB8D5:         {EncB8D5, "B8D5", 8, 5, 8 + 8*5},
	EncB4D3:         {EncB4D3, "B4D3", 4, 3, 4 + 16*3},
	EncB8D6:         {EncB8D6, "B8D6", 8, 6, 8 + 8*6},
}

// candidateOrder lists the delta encodings from smallest to largest
// compressed size; the compressor picks the first that covers the block.
var candidateOrder = []Encoding{
	EncB8D1, EncB4D1, EncB8D2, EncB8D3, EncB2D1, EncB4D2,
	EncB8D4, EncB8D5, EncB4D3, EncB8D6,
}

// Specs returns the full encoding table (Table I of the paper), ordered by
// compressed size.
func Specs() []Spec {
	out := make([]Spec, 0, numEncodings)
	out = append(out, specs[EncZeros], specs[EncRep8])
	for _, e := range candidateOrder {
		out = append(out, specs[e])
	}
	out = append(out, specs[EncUncompressed])
	return out
}

// SpecOf returns the geometry of enc.
func SpecOf(enc Encoding) Spec { return specs[enc] }

// Valid reports whether enc names a defined encoding (a 4-bit CE field can
// hold undefined values after corruption).
func Valid(enc Encoding) bool { return enc < numEncodings }

// String returns the encoding mnemonic.
func (e Encoding) String() string {
	if e >= numEncodings {
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
	return specs[e].Name
}

// Size returns the compressed size of enc in bytes.
func (e Encoding) Size() int { return specs[e].Size }

// IsHCR reports whether enc is a high-compression-ratio encoding
// (compressed size <= HCRLimit).
func (e Encoding) IsHCR() bool { return e != EncUncompressed && specs[e].Size <= HCRLimit }

// IsLCR reports whether enc is a low-compression-ratio encoding: compressed
// but with size above HCRLimit.
func (e Encoding) IsLCR() bool { return e != EncUncompressed && specs[e].Size > HCRLimit }

// Class partitions blocks by compression outcome, as in Fig. 2.
type Class uint8

// Compression classes.
const (
	ClassIncompressible Class = iota
	ClassLCR
	ClassHCR
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassIncompressible:
		return "incompressible"
	case ClassLCR:
		return "LCR"
	case ClassHCR:
		return "HCR"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassOf returns the compression class of enc.
func ClassOf(enc Encoding) Class {
	switch {
	case enc == EncUncompressed:
		return ClassIncompressible
	case specs[enc].Size <= HCRLimit:
		return ClassHCR
	default:
		return ClassLCR
	}
}

// Compressed is the result of compressing one block: the chosen encoding
// and the compressed payload (Data has length Encoding.Size(), except for
// EncUncompressed where it is the original 64 bytes).
type Compressed struct {
	Enc  Encoding
	Data []byte
}

// Size returns the compressed payload size in bytes.
func (c Compressed) Size() int { return len(c.Data) }

// EncodingOf computes the smallest applicable encoding for a 64-byte
// block without materializing any payload bytes. It is the size-only probe
// of the hardware's parallel encoder bank: one pass over the block derives
// the minimal signed delta width for each base size, and the smallest
// covering encoding wins. EncodingOf never allocates; it panics if the
// block is not exactly BlockSize bytes, which would indicate a simulator
// bug rather than a data condition.
func EncodingOf(block []byte) Encoding {
	if len(block) != BlockSize {
		panic(fmt.Sprintf("bdi: block size %d, want %d", len(block), BlockSize))
	}
	// One pass over the 8-byte values covers the zeros, Rep8 and base-8
	// probes; the base-4 and base-2 probes reuse the same loads.
	base8 := int64(binary.LittleEndian.Uint64(block))
	allZero, allRep := true, true
	w8 := 1 // minimal delta width (bytes) covering every base-8 delta
	for i := 0; i < BlockSize; i += 8 {
		v := int64(binary.LittleEndian.Uint64(block[i:]))
		if v != 0 {
			allZero = false
		}
		if v != base8 {
			allRep = false
		}
		if w := deltaWidth(v - base8); w > w8 {
			w8 = w
		}
	}
	if allZero {
		return EncZeros
	}
	if allRep {
		return EncRep8
	}
	base4 := signExtend(int64(binary.LittleEndian.Uint32(block)), 4)
	w4 := 1
	for i := 0; i < BlockSize; i += 4 {
		v := signExtend(int64(binary.LittleEndian.Uint32(block[i:])), 4)
		if w := deltaWidth(v - base4); w > w4 {
			w4 = w
		}
	}
	base2 := signExtend(int64(binary.LittleEndian.Uint16(block)), 2)
	w2 := 1
	for i := 0; i < BlockSize; i += 2 {
		v := signExtend(int64(binary.LittleEndian.Uint16(block[i:])), 2)
		if w := deltaWidth(v - base2); w > w2 {
			w2 = w
		}
	}
	// Pick the smallest covering encoding. The candidate sizes are all
	// distinct, so minimizing size is identical to taking the first
	// covering entry of candidateOrder.
	best, bestSize := EncUncompressed, BlockSize
	if w8 <= 6 {
		best, bestSize = b8Encodings[w8], specs[b8Encodings[w8]].Size
	}
	if w4 <= 3 && specs[b4Encodings[w4]].Size < bestSize {
		best, bestSize = b4Encodings[w4], specs[b4Encodings[w4]].Size
	}
	if w2 <= 1 && specs[EncB2D1].Size < bestSize {
		best = EncB2D1
	}
	return best
}

// b8Encodings and b4Encodings map a required delta width to the encoding
// of that base size.
var (
	b8Encodings = [7]Encoding{0, EncB8D1, EncB8D2, EncB8D3, EncB8D4, EncB8D5, EncB8D6}
	b4Encodings = [4]Encoding{0, EncB4D1, EncB4D2, EncB4D3}
)

// deltaWidth returns the minimal number of bytes whose signed range covers
// d (1..9; values above 8 mean "wider than any encoding").
func deltaWidth(d int64) int {
	// Significant bits of the two's-complement representation: magnitude
	// bits (with negative values folded via complement) plus a sign bit.
	return (bits.Len64(uint64(d^(d>>63))) + 8) / 8
}

// SizeOf returns the compressed size of a block in bytes without building
// payload bytes — the cheap size-only function every insertion-policy
// decision uses. It is equivalent to Compress(block).Size() and allocates
// nothing.
func SizeOf(block []byte) int { return specs[EncodingOf(block)].Size }

// Compress compresses a 64-byte block, choosing the smallest applicable
// encoding. It panics if the block is not exactly BlockSize bytes, which
// would indicate a simulator bug rather than a data condition.
func Compress(block []byte) Compressed { return CompressInto(nil, block) }

// CompressInto compresses a 64-byte block like Compress, writing the
// payload into scratch (grown only when its capacity is insufficient; a
// 64-byte scratch always suffices). The returned Compressed.Data aliases
// scratch's storage, so the caller owns the buffer and must not modify it
// while the Compressed value is in use. With an adequate scratch the call
// performs zero allocations.
func CompressInto(scratch []byte, block []byte) Compressed {
	enc := EncodingOf(block)
	spec := &specs[enc]
	if cap(scratch) < spec.Size {
		scratch = make([]byte, spec.Size)
	}
	data := scratch[:spec.Size]
	switch enc {
	case EncUncompressed:
		copy(data, block)
	case EncZeros:
		data[0] = 0
	case EncRep8:
		copy(data, block[:8])
	default:
		base := signExtend(int64(readUint(block[:spec.Base], spec.Base)), spec.Base)
		writeUint(data, uint64(base), spec.Base)
		n := BlockSize / spec.Base
		for i := 0; i < n; i++ {
			v := signExtend(int64(readUint(block[i*spec.Base:], spec.Base)), spec.Base)
			writeUint(data[spec.Base+i*spec.Delta:], uint64(v-base), spec.Delta)
		}
	}
	return Compressed{enc, data}
}

// CompressedSize returns only the compressed size of block, a convenience
// for policy decisions that do not need the payload.
//
// Deprecated: use SizeOf, which computes the same value without building
// payload bytes.
func CompressedSize(block []byte) int { return SizeOf(block) }

// Decompress reconstructs the original 64-byte block. It returns an error
// if the payload length does not match the encoding, which in hardware
// corresponds to a corrupted CE field.
func Decompress(c Compressed) ([]byte, error) {
	return DecompressInto(nil, c)
}

// DecompressInto reconstructs the original 64-byte block into dst (grown
// only when its capacity is below BlockSize). The returned slice aliases
// dst's storage; with an adequate dst the call performs zero allocations.
func DecompressInto(dst []byte, c Compressed) ([]byte, error) {
	if c.Enc >= numEncodings {
		return nil, fmt.Errorf("bdi: invalid encoding %d", c.Enc)
	}
	spec := &specs[c.Enc]
	if len(c.Data) != spec.Size {
		return nil, fmt.Errorf("bdi: payload %dB does not match encoding %s (%dB)",
			len(c.Data), spec.Name, spec.Size)
	}
	if cap(dst) < BlockSize {
		dst = make([]byte, BlockSize)
	}
	out := dst[:BlockSize]
	switch c.Enc {
	case EncUncompressed:
		copy(out, c.Data)
	case EncZeros:
		for i := range out {
			out[i] = 0
		}
	case EncRep8:
		for i := 0; i < BlockSize; i += 8 {
			copy(out[i:i+8], c.Data)
		}
	default:
		base := int64(readUint(c.Data[:spec.Base], spec.Base))
		base = signExtend(base, spec.Base)
		n := BlockSize / spec.Base
		for i := 0; i < n; i++ {
			d := int64(readUint(c.Data[spec.Base+i*spec.Delta:], spec.Delta))
			d = signExtend(d, spec.Delta)
			writeUint(out[i*spec.Base:], uint64(base+d), spec.Base)
		}
	}
	return out, nil
}

func readUint(b []byte, w int) uint64 {
	switch w {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 3:
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 5, 6, 7:
		var v uint64
		for i := 0; i < w; i++ {
			v |= uint64(b[i]) << (8 * uint(i))
		}
		return v
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic("bdi: unsupported width")
}

func writeUint(b []byte, v uint64, w int) {
	for i := 0; i < w; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// signExtend interprets the low w*8 bits of v as a signed integer.
func signExtend(v int64, w int) int64 {
	shift := uint(64 - 8*w)
	return v << shift >> shift
}
