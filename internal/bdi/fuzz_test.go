package bdi

import (
	"bytes"
	"testing"
)

// FuzzBDIRoundTrip fuzzes the compressor with arbitrary 64-byte blocks:
// compression must always pick a valid encoding, the payload must match
// the encoding's size, and decompression must restore the block exactly.
// Run with `go test -fuzz FuzzBDIRoundTrip ./internal/bdi`; the seed corpus
// covers every encoding class.
func FuzzBDIRoundTrip(f *testing.F) {
	seed := func(fill func(b []byte)) {
		b := make([]byte, BlockSize)
		fill(b)
		f.Add(b)
	}
	seed(func(b []byte) {}) // zeros
	seed(func(b []byte) {
		for i := range b {
			b[i] = 0xAB
		}
	})
	seed(func(b []byte) {
		for i := range b {
			b[i] = byte(i)
		}
	})
	seed(func(b []byte) {
		for i := range b {
			b[i] = byte(i * 37)
		}
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != BlockSize {
			t.Skip()
		}
		c := Compress(data)
		if !Valid(c.Enc) {
			t.Fatalf("invalid encoding %d", c.Enc)
		}
		if len(c.Data) != c.Enc.Size() {
			t.Fatalf("payload %d bytes for %v (size %d)", len(c.Data), c.Enc, c.Enc.Size())
		}
		// The size-only probe and the reference chooser must agree with the
		// payload-building compressor on every fuzz input.
		if got := SizeOf(data); got != c.Size() {
			t.Fatalf("SizeOf = %d, Compress().Size() = %d (%v)", got, c.Size(), c.Enc)
		}
		if got := refEncoding(data); got != c.Enc {
			t.Fatalf("reference encoding %v, Compress chose %v", got, c.Enc)
		}
		out, err := Decompress(c)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("roundtrip mismatch under %v", c.Enc)
		}
	})
}
