package bdi

// Differential tests: the size-only probe (EncodingOf/SizeOf), the
// payload-building compressor (Compress/CompressInto), and an independent
// slow reference implementation must agree on every block, and
// Decompress∘Compress must be the identity for every encoding. The
// reference re-derives coverage from the spec table with explicit signed
// range checks, so a shared bug in the optimized delta-width arithmetic
// cannot hide.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// refCovers reports whether enc (a base+delta encoding) can represent the
// block, using the original range-check formulation.
func refCovers(block []byte, enc Encoding) bool {
	spec := SpecOf(enc)
	if spec.Base == 0 {
		return false
	}
	base := signExtend(int64(readUint(block[:spec.Base], spec.Base)), spec.Base)
	hi := int64(1)<<(uint(spec.Delta*8)-1) - 1
	lo := -hi - 1
	for i := 0; i < BlockSize; i += spec.Base {
		v := signExtend(int64(readUint(block[i:], spec.Base)), spec.Base)
		if d := v - base; d < lo || d > hi {
			return false
		}
	}
	return true
}

// refEncoding is the slow reference chooser: first-covering entry of the
// size-ordered candidate list, with the special encodings checked first.
func refEncoding(block []byte) Encoding {
	zeros := true
	for _, b := range block {
		if b != 0 {
			zeros = false
			break
		}
	}
	if zeros {
		return EncZeros
	}
	rep := true
	for i := 8; i < BlockSize; i++ {
		if block[i] != block[i%8] {
			rep = false
			break
		}
	}
	if rep {
		return EncRep8
	}
	for _, enc := range candidateOrder {
		if refCovers(block, enc) {
			return enc
		}
	}
	return EncUncompressed
}

// corpusBlock deterministically builds a block that exercises encoding enc;
// the construction targets the encoding but the tests never assume it hit.
func corpusBlock(enc Encoding) []byte {
	b := make([]byte, BlockSize)
	switch enc {
	case EncZeros:
		// all zero
	case EncRep8:
		for i := 0; i < BlockSize; i += 8 {
			binary.LittleEndian.PutUint64(b[i:], 0x0123456789ABCDEF)
		}
	case EncUncompressed:
		r := rand.New(rand.NewSource(63))
		r.Read(b)
	default:
		spec := SpecOf(enc)
		// Deltas that need exactly spec.Delta bytes: alternate the extreme
		// positive and negative values of the width so no narrower encoding
		// of the same base covers the block.
		hi := uint64(1)<<(uint(spec.Delta*8)-1) - 1
		n := BlockSize / spec.Base
		base := uint64(1) << uint(spec.Base*8-2)
		for i := 0; i < n; i++ {
			v := base
			if i > 0 {
				if i%2 == 0 {
					v = base + hi
				} else {
					v = base - hi - 1
				}
			}
			writeUint(b[i*spec.Base:], v, spec.Base)
		}
	}
	return b
}

// TestDifferentialAllSpecs drives the corpus block of each of the 13 specs
// through every implementation pair: reference vs EncodingOf, SizeOf vs
// Compress().Size(), and exact round-trip.
func TestDifferentialAllSpecs(t *testing.T) {
	if len(Specs()) != 13 {
		t.Fatalf("spec table has %d entries, want 13", len(Specs()))
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			b := corpusBlock(spec.Enc)
			if got, want := EncodingOf(b), refEncoding(b); got != want {
				t.Errorf("EncodingOf = %v, reference = %v", got, want)
			}
			c := Compress(b)
			if SizeOf(b) != c.Size() {
				t.Errorf("SizeOf = %d, Compress().Size() = %d", SizeOf(b), c.Size())
			}
			if c.Enc != spec.Enc {
				t.Logf("corpus block for %v landed on %v (allowed; smaller covering encoding)", spec.Enc, c.Enc)
			}
			got, err := Decompress(c)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(got, b) {
				t.Errorf("roundtrip mismatch under %v", c.Enc)
			}
		})
	}
}

// TestDifferentialRandomized compares the probe, the compressor, and the
// reference on a large randomized block population spanning every regime
// (random bytes, per-base-size delta clusters at boundary widths, sparse).
func TestDifferentialRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(20230222))
	hit := make(map[Encoding]int)
	for iter := 0; iter < 20000; iter++ {
		b := make([]byte, BlockSize)
		switch iter % 8 {
		case 0:
			r.Read(b)
		case 1: // base-8, delta width drawn 1..8
			base := r.Uint64()
			w := uint(1 + r.Intn(8))
			for i := 0; i < 8; i++ {
				d := uint64(r.Int63()) & (1<<(8*w) - 1)
				binary.LittleEndian.PutUint64(b[i*8:], base+d-(1<<(8*w-1)))
			}
		case 2: // base-4
			base := r.Uint32()
			w := uint(1 + r.Intn(4))
			for i := 0; i < 16; i++ {
				d := uint32(r.Int63()) & (1<<(8*w) - 1)
				binary.LittleEndian.PutUint32(b[i*4:], base+d-(1<<(8*w-1)))
			}
		case 3: // base-2
			base := uint16(r.Uint32())
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint16(b[i*2:], base+uint16(r.Intn(512))-256)
			}
		case 4: // sparse
			for i := 0; i < 1+r.Intn(6); i++ {
				b[r.Intn(BlockSize)] = byte(r.Intn(256))
			}
		case 5: // repeated qword, sometimes perturbed
			v := r.Uint64()
			for i := 0; i < BlockSize; i += 8 {
				binary.LittleEndian.PutUint64(b[i:], v)
			}
			if r.Intn(2) == 0 {
				b[r.Intn(BlockSize)] ^= byte(1 + r.Intn(255))
			}
		case 6: // extreme values: delta wrap-around territory
			for i := 0; i < 8; i++ {
				v := uint64(0)
				switch r.Intn(3) {
				case 0:
					v = 1<<63 - uint64(r.Intn(4))
				case 1:
					v = 1<<63 + uint64(r.Intn(4))
				case 2:
					v = uint64(r.Intn(4))
				}
				binary.LittleEndian.PutUint64(b[i*8:], v)
			}
		case 7: // boundary deltas exactly at ±(2^(8w-1))
			base := r.Uint64()
			w := uint(1 + r.Intn(6))
			for i := 0; i < 8; i++ {
				edge := uint64(1) << (8*w - 1)
				switch r.Intn(4) {
				case 0:
					binary.LittleEndian.PutUint64(b[i*8:], base+edge-1)
				case 1:
					binary.LittleEndian.PutUint64(b[i*8:], base-edge)
				case 2:
					binary.LittleEndian.PutUint64(b[i*8:], base+edge) // just over
				case 3:
					binary.LittleEndian.PutUint64(b[i*8:], base)
				}
			}
		}
		want := refEncoding(b)
		if got := EncodingOf(b); got != want {
			t.Fatalf("iter %d: EncodingOf = %v, reference = %v\nblock %x", iter, got, want, b)
		}
		c := Compress(b)
		if c.Enc != want || SizeOf(b) != c.Size() {
			t.Fatalf("iter %d: Compress enc=%v size=%d, SizeOf=%d, reference=%v",
				iter, c.Enc, c.Size(), SizeOf(b), want)
		}
		got, err := Decompress(c)
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("iter %d: roundtrip failed under %v: %v", iter, c.Enc, err)
		}
		hit[want]++
	}
	// The generator must actually exercise the whole encoding set, or the
	// differential guarantee is hollow.
	for e := Encoding(0); e < numEncodings; e++ {
		if hit[e] == 0 {
			t.Errorf("randomized corpus never produced %v", e)
		}
	}
}

// TestCompressIntoAliasesScratch pins the scratch-buffer contract: with
// adequate capacity the payload lives in the caller's buffer.
func TestCompressIntoAliasesScratch(t *testing.T) {
	scratch := make([]byte, BlockSize)
	for _, spec := range Specs() {
		b := corpusBlock(spec.Enc)
		c := CompressInto(scratch, b)
		if len(c.Data) > 0 && &c.Data[0] != &scratch[0] {
			t.Errorf("%v: payload does not alias scratch", spec.Enc)
		}
		if c.Size() != SizeOf(b) {
			t.Errorf("%v: CompressInto size %d != SizeOf %d", spec.Enc, c.Size(), SizeOf(b))
		}
		// A fresh Compress must agree bit-for-bit with the scratch variant.
		ref := Compress(b)
		if ref.Enc != c.Enc || !bytes.Equal(ref.Data, c.Data) {
			t.Errorf("%v: CompressInto payload differs from Compress", spec.Enc)
		}
	}
	// Undersized scratch must still work (by growing a private buffer).
	c := CompressInto(make([]byte, 2), corpusBlock(EncUncompressed))
	if c.Size() != BlockSize {
		t.Errorf("undersized scratch: size %d", c.Size())
	}
}

// TestDecompressIntoReusesDst pins the decompression scratch contract.
func TestDecompressIntoReusesDst(t *testing.T) {
	dst := make([]byte, BlockSize)
	for _, spec := range Specs() {
		b := corpusBlock(spec.Enc)
		c := Compress(b)
		out, err := DecompressInto(dst, c)
		if err != nil {
			t.Fatalf("%v: %v", spec.Enc, err)
		}
		if &out[0] != &dst[0] {
			t.Errorf("%v: output does not alias dst", spec.Enc)
		}
		if !bytes.Equal(out, b) {
			t.Errorf("%v: roundtrip mismatch", spec.Enc)
		}
	}
}

// Alloc-regression pins. These fail with the measured count so a regression
// is self-explaining; they are part of the tier-1 suite and run under -race.

func TestSizeOfZeroAllocs(t *testing.T) {
	blocks := [][]byte{
		corpusBlock(EncZeros), corpusBlock(EncRep8), corpusBlock(EncB8D1),
		corpusBlock(EncB2D1), corpusBlock(EncUncompressed),
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, b := range blocks {
			SizeOf(b)
		}
	}); n != 0 {
		t.Errorf("SizeOf allocates %.1f times per run, want 0", n)
	}
}

func TestCompressIntoZeroAllocs(t *testing.T) {
	scratch := make([]byte, BlockSize)
	blocks := [][]byte{
		corpusBlock(EncZeros), corpusBlock(EncRep8), corpusBlock(EncB8D1),
		corpusBlock(EncB4D2), corpusBlock(EncUncompressed),
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, b := range blocks {
			CompressInto(scratch, b)
		}
	}); n != 0 {
		t.Errorf("CompressInto with adequate scratch allocates %.1f times per run, want 0", n)
	}
}

func TestDecompressIntoZeroAllocs(t *testing.T) {
	dst := make([]byte, BlockSize)
	cs := []Compressed{
		Compress(corpusBlock(EncZeros)), Compress(corpusBlock(EncRep8)),
		Compress(corpusBlock(EncB8D3)), Compress(corpusBlock(EncUncompressed)),
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, c := range cs {
			if _, err := DecompressInto(dst, c); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("DecompressInto with adequate dst allocates %.1f times per run, want 0", n)
	}
}

func BenchmarkSizeOf(b *testing.B) {
	blk := corpusBlock(EncB8D2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SizeOf(blk)
	}
}

func BenchmarkCompressInto(b *testing.B) {
	blk := corpusBlock(EncB8D2)
	scratch := make([]byte, BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressInto(scratch, blk)
	}
}
