package energy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/nvm"
)

var geo = Geometry{Sets: 1024, SRAMWays: 4, NVMWays: 12}

func TestGeometrySizes(t *testing.T) {
	if geo.SRAMBytes() != 1024*4*64 {
		t.Fatalf("SRAM bytes %v", geo.SRAMBytes())
	}
	if geo.NVMBytes() != 1024*12*nvm.FrameBytes {
		t.Fatalf("NVM bytes %v", geo.NVMBytes())
	}
}

func TestWindowZeroStats(t *testing.T) {
	b := Default().Window(hybrid.Stats{}, 0, geo)
	if b.Total() != 0 {
		t.Fatalf("zero window has energy %v", b.Total())
	}
}

func TestDynamicCharges(t *testing.T) {
	m := Default()
	st := hybrid.Stats{
		GetS: 100, GetX: 20, Hits: 80, Misses: 40,
		SRAMHits: 50, NVMHits: 30,
		Inserts: 40, SRAMInserts: 25, NVMInserts: 15,
		NVMBytesWritten: 15 * 40,
	}
	b := m.Window(st, 0, geo)
	wantSRAM := (50*m.SRAMRead + 25*m.SRAMWrite) * 1e-6
	if math.Abs(b.SRAMDynamic-wantSRAM) > 1e-15 {
		t.Errorf("SRAM dynamic %v, want %v", b.SRAMDynamic, wantSRAM)
	}
	wantNVM := (30*m.NVMRead + 600*m.NVMWriteB) * 1e-6
	if math.Abs(b.NVMDynamic-wantNVM) > 1e-15 {
		t.Errorf("NVM dynamic %v, want %v", b.NVMDynamic, wantNVM)
	}
	wantTag := 160 * m.TagAccess * 1e-6
	if math.Abs(b.TagDynamic-wantTag) > 1e-15 {
		t.Errorf("tag dynamic %v, want %v", b.TagDynamic, wantTag)
	}
	if b.SRAMLeak != 0 || b.NVMLeak != 0 {
		t.Error("leakage with zero cycles should be zero")
	}
}

func TestLeakageScalesWithTimeAndSize(t *testing.T) {
	m := Default()
	b1 := m.Window(hybrid.Stats{}, 3_500_000, geo) // 1 ms
	b2 := m.Window(hybrid.Stats{}, 7_000_000, geo) // 2 ms
	if math.Abs(b2.SRAMLeak-2*b1.SRAMLeak) > 1e-12 {
		t.Error("SRAM leakage not linear in time")
	}
	// SRAM leaks far more per byte than NVM: with 4 SRAM vs 12 NVM ways,
	// SRAM leakage still dominates.
	if b1.SRAMLeak <= b1.NVMLeak {
		t.Errorf("SRAM leak %v should exceed NVM leak %v", b1.SRAMLeak, b1.NVMLeak)
	}
}

func TestCompressionSavesWriteEnergy(t *testing.T) {
	m := Default()
	// Same number of block writes; compressed writes 18 B/block vs 66.
	uncomp := hybrid.Stats{NVMBytesWritten: 1000 * 66}
	comp := hybrid.Stats{NVMBytesWritten: 1000 * 18}
	eu := m.Window(uncomp, 0, geo).NVMDynamic
	ec := m.Window(comp, 0, geo).NVMDynamic
	if ec >= eu*0.5 {
		t.Errorf("compressed write energy %v not well below uncompressed %v", ec, eu)
	}
}

func TestPerKiloInstr(t *testing.T) {
	b := Breakdown{SRAMDynamic: 2}
	if got := PerKiloInstr(b, 1000); math.Abs(got-2) > 1e-12 {
		t.Fatalf("per-KI %v", got)
	}
	if PerKiloInstr(b, 0) != 0 {
		t.Fatal("zero instructions should yield 0")
	}
}

func TestBreakdownString(t *testing.T) {
	s := Breakdown{SRAMDynamic: 1, NVMDynamic: 2}.String()
	if !strings.Contains(s, "total 3.000 mJ") {
		t.Errorf("render: %s", s)
	}
}
