// Package energy models the LLC's dynamic and static energy, the second
// axis (next to lifetime) on which hybrid NVM-SRAM caches are motivated:
// STT-MRAM reads cost roughly as much as SRAM reads, writes are several
// times more expensive, and the NVM part's leakage is near zero while
// SRAM leaks continuously (§I, [32]). The model charges per-event dynamic
// energies plus time-proportional leakage and converts an LLC statistics
// block into an energy breakdown.
//
// Default per-event values follow the NVSim-derived numbers commonly used
// for 1-4 MB LLC banks in the hybrid-cache literature (e.g. the TAP and
// LHybrid papers): they are configurable, and all experiment conclusions
// are drawn from ratios rather than absolute joules.
package energy

import (
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/nvm"
)

// Model holds per-event energies (nanojoules) and leakage power (watts).
type Model struct {
	SRAMRead  float64 // nJ per block read from an SRAM way
	SRAMWrite float64 // nJ per block write into an SRAM way
	NVMRead   float64 // nJ per block read from an NVM way
	NVMWriteB float64 // nJ per byte written into NVM bitcells
	TagAccess float64 // nJ per LLC lookup (tag array is SRAM)

	SRAMLeakPerMB float64 // W per MB of SRAM data array
	NVMLeakPerMB  float64 // W per MB of NVM data array (near zero)

	ClockHz float64 // to convert cycles into seconds for leakage
}

// Default returns the model's default parameters: SRAM 0.58/0.65 nJ per
// read/write, STT-MRAM reads 0.78 nJ, writes ~0.09 nJ/byte (≈5.8 nJ per
// full 66-byte frame write), 1.6 nJ tag lookups at a tenth of the data
// energy, SRAM leakage 1.0 W/MB vs 0.05 W/MB for MRAM.
func Default() Model {
	return Model{
		SRAMRead:      0.58,
		SRAMWrite:     0.65,
		NVMRead:       0.78,
		NVMWriteB:     0.09,
		TagAccess:     0.06,
		SRAMLeakPerMB: 1.0,
		NVMLeakPerMB:  0.05,
		ClockHz:       3.5e9,
	}
}

// Breakdown is the energy of one measurement window, in millijoules.
type Breakdown struct {
	SRAMDynamic float64
	NVMDynamic  float64
	TagDynamic  float64
	SRAMLeak    float64
	NVMLeak     float64
}

// Total returns the window's total energy in millijoules.
func (b Breakdown) Total() float64 {
	return b.SRAMDynamic + b.NVMDynamic + b.TagDynamic + b.SRAMLeak + b.NVMLeak
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.3f mJ (SRAM dyn %.3f, NVM dyn %.3f, tag %.3f, SRAM leak %.3f, NVM leak %.3f)",
		b.Total(), b.SRAMDynamic, b.NVMDynamic, b.TagDynamic, b.SRAMLeak, b.NVMLeak)
}

// Geometry describes the LLC sizes the leakage terms depend on.
type Geometry struct {
	Sets     int
	SRAMWays int
	NVMWays  int
}

// SRAMBytes returns the SRAM data-array size in bytes.
func (g Geometry) SRAMBytes() float64 { return float64(g.Sets * g.SRAMWays * 64) }

// NVMBytes returns the NVM data-array size in bytes (66 B frames).
func (g Geometry) NVMBytes() float64 { return float64(g.Sets * g.NVMWays * nvm.FrameBytes) }

// Window converts an LLC statistics delta plus the elapsed cycles into an
// energy breakdown.
//
// Dynamic events charged:
//   - SRAM hits: one SRAM read each. NVM hits: one NVM read each.
//   - SRAM insertions: one SRAM block write each. (In-place updates of
//     SRAM-resident blocks are not separately counted — the statistics
//     block does not split them by partition — so SRAM write energy is a
//     slight undercount; NVM in-place updates ARE captured, through
//     NVMBytesWritten.)
//   - NVM writes: NVMBytesWritten times the per-byte write energy — this
//     is where compression directly saves energy.
//   - Every GetS/GetX performs a tag lookup; insertions perform another.
func (m Model) Window(st hybrid.Stats, cycles uint64, g Geometry) Breakdown {
	var b Breakdown
	nj := 1e-6 // nJ -> mJ
	b.SRAMDynamic = (float64(st.SRAMHits)*m.SRAMRead + float64(st.SRAMInserts)*m.SRAMWrite) * nj
	b.NVMDynamic = (float64(st.NVMHits)*m.NVMRead + float64(st.NVMBytesWritten)*m.NVMWriteB) * nj
	lookups := float64(st.GetS + st.GetX + st.Inserts)
	b.TagDynamic = lookups * m.TagAccess * nj
	seconds := float64(cycles) / m.ClockHz
	mb := 1.0 / (1 << 20)
	b.SRAMLeak = m.SRAMLeakPerMB * g.SRAMBytes() * mb * seconds * 1e3 // W*s -> mJ
	b.NVMLeak = m.NVMLeakPerMB * g.NVMBytes() * mb * seconds * 1e3
	return b
}

// PerKiloInstr normalises a breakdown to energy per thousand instructions,
// the metric hybrid-cache papers report (mJ/kilo-instruction here).
func PerKiloInstr(b Breakdown, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return b.Total() / float64(instructions) * 1e3
}
