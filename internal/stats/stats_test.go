package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var or uint64
	for i := 0; i < 16; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d far from %d", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	var m Mean
	for i := 0; i < 200000; i++ {
		m.Add(r.Normal(10, 2))
	}
	if math.Abs(m.Mean()-10) > 0.05 {
		t.Errorf("normal mean %.4f, want ~10", m.Mean())
	}
	if math.Abs(m.StdDev()-2) > 0.05 {
		t.Errorf("normal stddev %.4f, want ~2", m.StdDev())
	}
}

func TestTruncNormalRespectsFloor(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.TruncNormal(1, 5, 0.5); v < 0.5 {
			t.Fatalf("truncated sample %v below floor", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(13)
	f := r.Fork()
	if f.Uint64() == r.Uint64() {
		t.Error("forked stream mirrors parent")
	}
}

func TestMeanAccumulator(t *testing.T) {
	var m Mean
	for _, v := range []float64{1, 2, 3, 4, 5} {
		m.Add(v)
	}
	if m.N() != 5 || m.Mean() != 3 {
		t.Fatalf("mean = %v (n=%d), want 3 (n=5)", m.Mean(), m.N())
	}
	if math.Abs(m.Variance()-2) > 1e-12 {
		t.Fatalf("variance = %v, want 2", m.Variance())
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10)
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	h.Add(1000) // overflow
	h.Add(-5)   // clamped to bucket 0
	if h.Total() != 102 {
		t.Fatalf("total = %d, want 102", h.Total())
	}
	if h.Bucket(0) != 11 {
		t.Fatalf("bucket 0 = %d, want 11", h.Bucket(0))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if p := h.Percentile(50); p != 40 {
		t.Fatalf("p50 = %d, want 40", p)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 1) did not panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Error("ratio 10/2 != 5")
	}
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Error("non-positive-only geomean should be 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	xs := []float64{5, 1}
	Median(xs)
	if xs[0] != 5 {
		t.Error("median mutated input")
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		12:      "12.00",
		2500:    "2.50K",
		2.5e6:   "2.50M",
		3.25e9:  "3.25G",
		1.5e12:  "1.50T",
		-2500.0: "-2.50K",
	}
	for in, want := range cases {
		if got := FormatSI(in); got != want {
			t.Errorf("FormatSI(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(21)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
