package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean is a Welford online accumulator for mean and variance.
type Mean struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int64 { return m.n }

// Mean returns the running mean (0 with no observations).
func (m *Mean) Mean() float64 { return m.mean }

// Variance returns the population variance.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Histogram is a fixed-bucket integer histogram over [0, len(buckets)*width).
// Values beyond the last bucket land in the overflow count.
type Histogram struct {
	width    int64
	buckets  []int64
	overflow int64
	total    int64
}

// NewHistogram builds a histogram with n buckets of the given width.
func NewHistogram(n int, width int64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{width: width, buckets: make([]int64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.total++
	if v < 0 {
		v = 0
	}
	i := v / h.width
	if i >= int64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the number of samples beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Percentile returns the lower edge of the bucket containing the p-th
// percentile (p in [0,100]). Overflowed samples report the histogram limit.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(i) * h.width
		}
	}
	return int64(len(h.buckets)) * h.width
}

// Ratio safely divides a by b, returning 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs (0 for empty input). It does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// FormatSI renders v with an SI suffix (K, M, G, T) for human-readable
// experiment output, e.g. 2500000 -> "2.50M".
func FormatSI(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
