// Package stats provides deterministic random number generation and
// lightweight statistical accumulators used across the simulator.
//
// The simulator must be fully reproducible: every stochastic component
// (workload generation, endurance sampling, tie breaking) draws from an
// explicitly seeded RNG so that two runs with the same core.Config produce
// byte-identical results. We implement SplitMix64 for seeding and
// xoshiro256** for the main stream, both public-domain algorithms, rather
// than math/rand, so the stream is stable across Go releases.
package stats

import "math"

// RNG is a deterministic xoshiro256** pseudo random number generator.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, following the
// reference initialisation recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// splitmix64 advances the SplitMix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift rejection method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Rejection sampling to remove modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a sample from the normal distribution with the given mean
// and standard deviation, via the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// TruncNormal returns a normal sample truncated below at lo, by resampling.
// It is used for endurance limits, which are physically non-negative.
func (r *RNG) TruncNormal(mean, stddev, lo float64) float64 {
	for i := 0; i < 1024; i++ {
		if v := r.Normal(mean, stddev); v >= lo {
			return v
		}
	}
	return lo
}

// Perm fills a permutation of [0, n) into a freshly allocated slice using
// the Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG derived from this one's stream, useful for giving
// independent substreams to parallel components while keeping determinism.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
