package analytic

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// quickSpec is a fast calibration over the quick config: small geometry,
// short window, endurance low enough that the closed-form aging pass
// finds a finite lifetime.
func quickSpec() Spec {
	cfg := core.QuickConfig()
	cfg.EpochCycles = 250_000
	cfg.EnduranceMean = 2e4
	return Spec{
		Config:            cfg,
		WarmupCycles:      100_000,
		CalibrationCycles: 300_000,
		TargetCapacity:    0.5,
	}
}

func TestCalibrateDeterminism(t *testing.T) {
	spec := quickSpec()
	a, err := Calibrate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("calibration not deterministic:\n%+v\n%+v", a, b)
	}
	if a.YoungIPC <= 0 || a.HitRate <= 0 {
		t.Fatalf("degenerate operating point: %+v", a)
	}
	if a.Censored {
		t.Fatalf("quick spec unexpectedly censored: %+v", a)
	}
	if a.LifetimeSeconds <= 0 {
		t.Fatalf("non-positive lifetime: %+v", a)
	}
}

// TestCalibrateShardEquivalence pins the planner's cache-key contract:
// the set-sharded engine is bit-identical across shard counts, so every
// sharded calibration of the same spec is byte-for-byte the same and
// shares one content address.
func TestCalibrateShardEquivalence(t *testing.T) {
	spec2 := quickSpec()
	spec2.Config.Shards = 2
	spec4 := quickSpec()
	spec4.Config.Shards = 4

	a, err := Calibrate(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(context.Background(), spec4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shard counts disagree:\n2: %+v\n4: %+v", a, b)
	}
	if spec2.CacheKey() != spec4.CacheKey() {
		t.Fatal("sharded specs differing only in shard count must share a cache key")
	}
	seq := quickSpec()
	if seq.CacheKey() == spec2.CacheKey() {
		t.Fatal("sequential and sharded engines must not share a cache key")
	}
}

func TestCalibrateSRAMOnlyCensored(t *testing.T) {
	spec := quickSpec()
	spec.Config.PolicyName = "SRAM16"
	cal, err := Calibrate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cal.Censored {
		t.Fatalf("SRAM bound must be censored: %+v", cal)
	}
	if cal.LifetimeSeconds != 0 {
		t.Fatalf("censored calibration carries a lifetime: %+v", cal)
	}
}

func TestCacheKeyDistinguishesInputs(t *testing.T) {
	base := quickSpec()
	mutations := map[string]func(*Spec){
		"policy":      func(s *Spec) { s.Config.PolicyName = "BH" },
		"mix":         func(s *Spec) { s.Config.MixID = 3 },
		"warmup":      func(s *Spec) { s.WarmupCycles++ },
		"calibration": func(s *Spec) { s.CalibrationCycles++ },
		"target":      func(s *Spec) { s.TargetCapacity = 0.25 },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if s.CacheKey() == base.CacheKey() {
			t.Errorf("%s: mutation did not change the cache key", name)
		}
	}
	if !strings.HasPrefix(base.CacheKey(), "est-") {
		t.Fatalf("cache key %q lacks the est- artifact prefix", base.CacheKey())
	}
}

func TestSpecValidate(t *testing.T) {
	ok := quickSpec()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.CalibrationCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero calibration window accepted")
	}
	bad = ok
	bad.TargetCapacity = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("target capacity 1 accepted")
	}
	bad = ok
	bad.Config.LLCSets = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCalibrationCodec(t *testing.T) {
	cal, err := Calibrate(context.Background(), quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeCalibration(cal)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCalibration(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cal, back) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", cal, back)
	}
	if _, err := DecodeCalibration([]byte(`{"policy":"BH","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeCalibration(append(append([]byte{}, blob...), "{}"...)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := DecodeCalibration([]byte(`{"young_ipc":1}`)); err == nil {
		t.Fatal("missing policy accepted")
	}
}

func TestEstimatorGetAndLookup(t *testing.T) {
	e := NewEstimator(nil)
	spec := quickSpec()
	key := spec.CacheKey()
	if _, ok := e.Lookup(key); ok {
		t.Fatal("lookup hit on an empty cache")
	}
	est, cached, err := e.Get(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first Get reported cached")
	}
	if est.IPCErrorBound <= 0 || est.LifetimeErrorBound <= 0 {
		t.Fatalf("estimate carries no bounds: %+v", est)
	}
	again, cached, err := e.Get(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second Get missed the cache")
	}
	if !reflect.DeepEqual(est, again) {
		t.Fatalf("cached estimate drifted:\n%+v\n%+v", est, again)
	}
	if e.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", e.Len())
	}
}

// TestEstimatorSingleflightJoin pins the per-key singleflight: a Do
// racing an in-flight calibration blocks on it and shares its result
// instead of simulating again, and a canceled waiter unblocks with the
// context error.
func TestEstimatorSingleflightJoin(t *testing.T) {
	e := NewEstimator(nil)
	call := &calibrateCall{done: make(chan struct{})}
	e.inflight["k"] = call

	got := make(chan *Calibration, 1)
	go func() {
		cal, err := e.Do(context.Background(), "k", quickSpec())
		if err != nil {
			t.Error(err)
		}
		got <- cal
	}()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, "k", quickSpec()); err != context.Canceled {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}

	select {
	case cal := <-got:
		t.Fatalf("joiner returned %+v before the flight landed", cal)
	default:
	}
	want := &Calibration{Policy: "BH"}
	call.cal = want
	close(call.done)
	if cal := <-got; cal != want {
		t.Fatalf("joiner got %+v, want the in-flight result", cal)
	}
}

func TestEstimatorConcurrentGets(t *testing.T) {
	e := NewEstimator(nil)
	spec := quickSpec()
	const n = 8
	ests := make([]Estimate, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, _, err := e.Get(context.Background(), spec)
			if err != nil {
				t.Error(err)
				return
			}
			ests[i] = est
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(ests[0], ests[i]) {
			t.Fatalf("concurrent gets disagree:\n%+v\n%+v", ests[0], ests[i])
		}
	}
	if e.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", e.Len())
	}
}

// TestLookupZeroAlloc pins the fast path POST /v1/estimate rides: a
// cache hit assembles the estimate without touching the heap.
func TestLookupZeroAlloc(t *testing.T) {
	e := NewEstimator(nil)
	spec := quickSpec()
	key := spec.CacheKey()
	if _, _, err := e.Get(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := e.Lookup(key); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v objects per call, want 0", allocs)
	}
}

func TestBoundsTable(t *testing.T) {
	tab := NewBoundsTable(Bounds{IPC: 0.5, Lifetime: 0.5})
	tab.Set("BH", 0, Bounds{IPC: 0.01, Lifetime: 0.1})
	if b := tab.For("BH", 0); b.IPC != 0.01 {
		t.Fatalf("cell lookup returned %+v", b)
	}
	if b := tab.For("BH", 1); b.IPC != 0.5 {
		t.Fatalf("fallback lookup returned %+v", b)
	}
}
