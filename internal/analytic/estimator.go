package analytic

import (
	"context"
	"sync"

	"repro/internal/forecast"
)

// Estimate is the wire form of one analytic answer: the young operating
// point, the closed-form lifetime, and the relative error bounds the
// estimator was validated to stay within for this (policy, mix) cell.
// Consumers that rank or screen on an estimate must inflate by the
// bounds — the sweep planner keeps any config another config does not
// dominate by more than the combined margins.
type Estimate struct {
	Policy string `json:"policy"`
	MixID  int    `json:"mix_id"`

	YoungIPC    float64 `json:"young_ipc"`
	HitRate     float64 `json:"hit_rate"`
	NVMByteRate float64 `json:"nvm_byte_rate"`

	// LifetimeMonths is 0 when Censored (the config never reaches the
	// target capacity within the 20-year horizon; its lifetime is a
	// lower bound, effectively unbounded for ranking purposes).
	// Redistributed marks the uniform-redistribution fallback model (see
	// Calibration.Redistributed); it travels with the wider lifetime
	// bound below.
	LifetimeMonths float64 `json:"lifetime_months"`
	Censored       bool    `json:"censored"`
	Redistributed  bool    `json:"redistributed,omitempty"`

	// IPCErrorBound and LifetimeErrorBound are the relative error bounds
	// (|analytic−forecast|/forecast) this cell's estimates were
	// cross-validated to respect. The differential accuracy suite fails
	// if a seeded cell ever exceeds its own reported bound.
	IPCErrorBound      float64 `json:"ipc_error_bound"`
	LifetimeErrorBound float64 `json:"lifetime_error_bound"`
}

// Bounds is one cell's relative error bounds.
type Bounds struct {
	IPC      float64 `json:"ipc"`
	Lifetime float64 `json:"lifetime"`
}

// DefaultBounds returns the global fallback bounds, fitted by
// cross-validating the analytic estimator against the full forecast
// across the seeded mix × policy matrix (experiments.AnalyticValidation,
// worst observed errors 0.021 IPC / 0.153 lifetime over the BH, LHybrid
// and CP_SD cells that age without the redistribution fallback) and
// inflated by a safety margin of ~2.5×. The young-IPC bound is tight —
// the calibration window measures the same young system the forecast's
// first phase does; the lifetime bound carries the constant-rate
// simplification (the forecast re-measures rates each capacity step,
// the analytic pass extrapolates the first window).
func DefaultBounds() Bounds {
	return Bounds{IPC: 0.06, Lifetime: 0.4}
}

// RedistributedLifetimeBound is the lifetime error bound reported by
// estimates whose calibration used the uniform-redistribution fallback
// (Calibration.Redistributed). The fallback is a coarser model — cross-
// validation observes errors up to ~0.48 on those cells — so its bound
// is deliberately above 1: a relative margin ≥ 1 makes the point's
// lower-bounded lifetime non-positive, which means a redistributed
// estimate can never dominate another config on the lifetime axis (and
// is itself protected by the same inflation). Redistributed lifetimes
// inform, they do not screen.
const RedistributedLifetimeBound = 1.2

// cellKey identifies one (policy, mix) bounds cell.
type cellKey struct {
	policy string
	mix    int
}

// BoundsTable maps (policy, mix) cells to their validated error bounds,
// falling back to a default for cells never cross-validated. The table
// is immutable after construction (Set during setup only) — lookups are
// concurrent and allocation-free.
type BoundsTable struct {
	fallback Bounds
	cells    map[cellKey]Bounds
}

// NewBoundsTable builds a table over the given fallback.
func NewBoundsTable(fallback Bounds) *BoundsTable {
	return &BoundsTable{fallback: fallback, cells: make(map[cellKey]Bounds)}
}

// Set records one cell's bounds. Not safe to call concurrently with
// lookups — populate the table before sharing it.
func (t *BoundsTable) Set(policy string, mix int, b Bounds) {
	t.cells[cellKey{policy, mix}] = b
}

// For returns the bounds for a cell, or the fallback.
func (t *BoundsTable) For(policy string, mix int) Bounds {
	if b, ok := t.cells[cellKey{policy, mix}]; ok {
		return b
	}
	return t.fallback
}

// Estimate assembles the wire answer from a calibration and its bounds.
// A redistributed calibration widens its own lifetime bound to at least
// RedistributedLifetimeBound — the bound travels with the model that
// produced the number, not just the (policy, mix) cell.
func (c *Calibration) Estimate(b Bounds) Estimate {
	if c.Redistributed && b.Lifetime < RedistributedLifetimeBound {
		b.Lifetime = RedistributedLifetimeBound
	}
	return Estimate{
		Policy:             c.Policy,
		MixID:              c.MixID,
		YoungIPC:           c.YoungIPC,
		HitRate:            c.HitRate,
		NVMByteRate:        c.NVMByteRate,
		LifetimeMonths:     c.LifetimeSeconds / forecast.SecondsPerMonth,
		Censored:           c.Censored,
		Redistributed:      c.Redistributed,
		IPCErrorBound:      b.IPC,
		LifetimeErrorBound: b.Lifetime,
	}
}

// Estimator caches calibrations by spec content address and serves
// estimates from them. The cached path is the sub-millisecond fast path
// POST /v1/estimate pins: an RLock, a map probe and a by-value Estimate
// assembly — zero heap allocations (cmd/bench -estimate enforces it).
// Concurrent misses on the same key collapse into one calibration
// (per-key singleflight); misses on different keys calibrate in
// parallel.
type Estimator struct {
	bounds *BoundsTable

	mu       sync.RWMutex
	cache    map[string]*Calibration
	inflight map[string]*calibrateCall
}

type calibrateCall struct {
	done chan struct{}
	cal  *Calibration
	err  error
}

// NewEstimator builds an estimator over a bounds table (nil selects
// DefaultBounds for every cell).
func NewEstimator(bounds *BoundsTable) *Estimator {
	if bounds == nil {
		bounds = NewBoundsTable(DefaultBounds())
	}
	return &Estimator{
		bounds:   bounds,
		cache:    make(map[string]*Calibration),
		inflight: make(map[string]*calibrateCall),
	}
}

// Lookup serves an estimate from the calibration cache; ok is false on
// a miss. This is the zero-allocation fast path.
func (e *Estimator) Lookup(key string) (est Estimate, ok bool) {
	e.mu.RLock()
	cal := e.cache[key]
	e.mu.RUnlock()
	if cal == nil {
		return Estimate{}, false
	}
	return cal.Estimate(e.bounds.For(cal.Policy, cal.MixID)), true
}

// Calibration returns the cached calibration for a key, if any.
func (e *Estimator) Calibration(key string) (*Calibration, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cal, ok := e.cache[key]
	return cal, ok
}

// Put installs an externally obtained calibration (a store artifact) in
// the cache.
func (e *Estimator) Put(key string, cal *Calibration) {
	e.mu.Lock()
	e.cache[key] = cal
	e.mu.Unlock()
}

// EstimateOf assembles the wire answer for a calibration using the
// estimator's bounds table.
func (e *Estimator) EstimateOf(cal *Calibration) Estimate {
	return cal.Estimate(e.bounds.For(cal.Policy, cal.MixID))
}

// Len reports the number of cached calibrations.
func (e *Estimator) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.cache)
}

// Get serves an estimate, calibrating on a cache miss. cached reports
// whether the answer came from the cache (including joining another
// goroutine's in-flight calibration after it lands).
func (e *Estimator) Get(ctx context.Context, spec Spec) (est Estimate, cached bool, err error) {
	key := spec.CacheKey()
	if est, ok := e.Lookup(key); ok {
		return est, true, nil
	}
	cal, err := e.Do(ctx, key, spec)
	if err != nil {
		return Estimate{}, false, err
	}
	return e.EstimateOf(cal), false, nil
}

// Do calibrates the spec under per-key singleflight and caches the
// result, keyed by the caller-computed content address. Concurrent
// callers with the same key share one simulation.
func (e *Estimator) Do(ctx context.Context, key string, spec Spec) (*Calibration, error) {
	e.mu.Lock()
	if cal := e.cache[key]; cal != nil {
		e.mu.Unlock()
		return cal, nil
	}
	if c := e.inflight[key]; c != nil {
		e.mu.Unlock()
		select {
		case <-c.done:
			return c.cal, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &calibrateCall{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	c.cal, c.err = Calibrate(ctx, spec)
	e.mu.Lock()
	delete(e.inflight, key)
	if c.err == nil {
		e.cache[key] = c.cal
	}
	e.mu.Unlock()
	close(c.done)
	return c.cal, c.err
}
