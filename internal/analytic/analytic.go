// Package analytic is the fast path next to the exact forecast: instead
// of the full simulate→predict iteration of internal/forecast (one
// simulation phase per capacity step, ~20 phases to reach 50% capacity),
// it runs ONE short calibration simulation to measure the young-cache
// operating point (IPC, hit rate, per-frame NVM byte-write rates) and
// then ages the array to the target capacity in a single closed-form
// pass of forecast.AgeFrames. The result is a lifetime and young-IPC
// estimate that costs one calibration instead of a full forecast — and,
// once the calibration is cached, nothing at all.
//
// The model's simplification is explicit: it assumes the per-frame write
// rates observed over the calibration window stay constant for the whole
// device lifetime, where the exact procedure re-measures them each
// capacity step as the shrinking array redistributes traffic. That bias
// is what the error bounds carry: every estimate reports the relative
// error bound its (mix, policy) cell was validated to stay within
// against the full forecast (internal/experiments.AnalyticValidation,
// pinned by the differential accuracy suite).
package analytic

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/nvm"
)

// ClockHz converts calibration cycles to machine seconds (Table IV:
// 3.5 GHz, the same clock the forecast loop uses).
const ClockHz = 3.5e9

// HorizonSeconds bounds the closed-form aging pass, mirroring the
// forecast loop's MaxPredictSeconds: a configuration whose write traffic
// would not reach the target capacity within 20 years is reported as
// censored rather than aged forever.
const HorizonSeconds = 20 * 12 * forecast.SecondsPerMonth

// Spec is one estimate query: the simulation config plus the calibration
// window and the capacity the lifetime counts down to. It is the
// POST /v1/estimate body (decoded strictly over DefaultSpec).
type Spec struct {
	// Config is the simulation to estimate; omitted fields keep
	// core.DefaultConfig values. Shards > 1 calibrates on the set-sharded
	// engine (bit-identical rates, so it does not affect the cache key).
	Config core.Config `json:"config"`
	// WarmupCycles run before the calibration window so the measured
	// rates are steady-state, not cold-cache.
	WarmupCycles uint64 `json:"warmup_cycles"`
	// CalibrationCycles is the measured window the write rates and the
	// young IPC come from.
	CalibrationCycles uint64 `json:"calibration_cycles"`
	// TargetCapacity is the effective-capacity fraction the lifetime runs
	// to (paper: 0.5).
	TargetCapacity float64 `json:"target_capacity"`
}

// DefaultSpec returns the spec every estimate query overlays: the
// default config with a 500k-cycle warm-up, a 2M-cycle calibration
// window and the paper's 50% capacity target.
func DefaultSpec() Spec {
	return Spec{
		Config:            core.DefaultConfig(),
		WarmupCycles:      500_000,
		CalibrationCycles: 2_000_000,
		TargetCapacity:    0.5,
	}
}

// Validate checks the spec beyond Config.Validate's rules.
func (s Spec) Validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.CalibrationCycles == 0 {
		return fmt.Errorf("estimate spec: calibration_cycles must be positive")
	}
	if s.TargetCapacity <= 0 || s.TargetCapacity >= 1 {
		return fmt.Errorf("estimate spec: target_capacity %v outside (0,1)", s.TargetCapacity)
	}
	return nil
}

// CacheKey content-addresses the spec's calibration: "est-" plus the
// SHA-256 of the canonical JSON of every calibration-affecting input.
// The shard count is normalised exactly like JobRequest.CacheKey (0 for
// the sequential engine, 2 for any sharded run) — the engines are
// bit-identical across shard counts but not across engine kinds. The
// prefix keeps estimate artifacts distinguishable from job results in
// the store's flat artifact namespace.
func (s Spec) CacheKey() string {
	canon := s.Config
	if canon.Shards > 1 {
		canon.Shards = 2
	} else {
		canon.Shards = 0
	}
	blob, err := json.Marshal(struct {
		Config      core.Config `json:"config"`
		Warmup      uint64      `json:"warmup_cycles"`
		Calibration uint64      `json:"calibration_cycles"`
		Target      float64     `json:"target_capacity"`
	}{canon, s.WarmupCycles, s.CalibrationCycles, s.TargetCapacity})
	if err != nil {
		blob = []byte(fmt.Sprintf("unhashable:%+v", s))
	}
	sum := sha256.Sum256(blob)
	return "est-" + hex.EncodeToString(sum[:])
}

// Calibration is everything one calibration simulation leaves behind:
// the young operating point, the closed-form lifetime, and the spec
// echo that provenances it. Calibrations are immutable once built and
// JSON-serializable, so the estimator cache, the jobstore artifact and
// the wire response all share one representation.
type Calibration struct {
	Policy string `json:"policy"`
	MixID  int    `json:"mix_id"`

	// YoungIPC and HitRate are the calibration window's means — the
	// young-cache operating point of Fig. 10's left edge.
	YoungIPC float64 `json:"young_ipc"`
	HitRate  float64 `json:"hit_rate"`
	// NVMByteRate is NVM bytes written per second of machine time over
	// the calibration window (the aggregate of the per-frame rates the
	// aging pass consumed).
	NVMByteRate float64 `json:"nvm_byte_rate"`

	// LifetimeSeconds is the closed-form time to TargetCapacity at the
	// calibrated rates; 0 when Censored. Censored marks configurations
	// that never reach the target within HorizonSeconds — SRAM-only
	// configs and policies that barely write NVM. (A bool instead of
	// +Inf: JSON cannot encode infinities.)
	LifetimeSeconds float64 `json:"lifetime_seconds"`
	Censored        bool    `json:"censored"`
	// Redistributed marks lifetimes computed under the
	// uniform-redistribution fallback: the calibration window concentrated
	// its writes on so few frames that frozen per-frame rates could never
	// reach the target capacity, so the aggregate rate was spread
	// uniformly across all frames instead — the closed-form analogue of
	// the traffic redistribution the exact forecast observes as dead
	// frames push insertions elsewhere.
	Redistributed bool `json:"redistributed,omitempty"`

	// Spec echo.
	WarmupCycles      uint64  `json:"warmup_cycles"`
	CalibrationCycles uint64  `json:"calibration_cycles"`
	TargetCapacity    float64 `json:"target_capacity"`
}

// LifetimeMonths converts the lifetime to the paper's month axis.
func (c *Calibration) LifetimeMonths() float64 { return c.LifetimeSeconds / forecast.SecondsPerMonth }

// Calibrate runs the spec's calibration simulation and the closed-form
// aging pass. The procedure mirrors one phase of the forecast loop —
// warm up, reset the per-frame phase counters, measure the window — and
// then, where the forecast would age one capacity step and re-measure,
// ages all the way to the target in a single exact AgeFrames pass at
// the measured rates. Deterministic: same spec, same calibration, for
// every shard count (the engines are bit-identical and AgeFrames breaks
// ties by the stable set-major frame order).
func Calibrate(ctx context.Context, spec Spec) (*Calibration, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h, err := spec.Config.NewRunHandle()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if spec.WarmupCycles > 0 {
		if _, err := h.MeasureCtx(ctx, 0, spec.WarmupCycles, core.RunHooks{}); err != nil {
			return nil, err
		}
	}
	h.ResetPhase()
	sum, err := h.MeasureCtx(ctx, 0, spec.CalibrationCycles, core.RunHooks{})
	if err != nil {
		return nil, err
	}
	phaseSeconds := float64(spec.CalibrationCycles) / ClockHz
	cal := &Calibration{
		Policy:            sum.Policy,
		MixID:             spec.Config.MixID,
		YoungIPC:          sum.MeanIPC,
		HitRate:           sum.HitRate,
		NVMByteRate:       float64(sum.NVMBytesWritten) / phaseSeconds,
		WarmupCycles:      spec.WarmupCycles,
		CalibrationCycles: spec.CalibrationCycles,
		TargetCapacity:    spec.TargetCapacity,
	}
	frames := h.Frames()
	if len(frames) == 0 {
		cal.Censored = true // SRAM-only: nothing to wear out
		return cal, nil
	}
	rates := make([]float64, len(frames))
	var aggregate float64
	idleCap := 0 // capacity held by frames the window never wrote
	for i, f := range frames {
		rates[i] = float64(f.PhaseWritten()) / phaseSeconds
		aggregate += rates[i]
		if rates[i] == 0 {
			idleCap += f.EffectiveCapacity()
		}
	}
	// Feasibility: frozen per-frame rates can only ever kill frames the
	// window wrote. If the untouched frames alone hold more than the
	// target capacity, the constant-rate model can never reach it — so
	// spread the aggregate rate uniformly across all frames instead, the
	// closed-form analogue of the traffic redistribution the exact
	// forecast observes as dead frames push insertions onto live ones.
	if aggregate > 0 && float64(idleCap)/float64(len(frames)*nvm.DataBytes) > spec.TargetCapacity {
		uniform := aggregate / float64(len(frames))
		for i := range rates {
			rates[i] = uniform
		}
		cal.Redistributed = true
	}
	elapsed, capacity := forecast.AgeFramesAtRates(frames, rates, spec.TargetCapacity, HorizonSeconds)
	if capacity <= spec.TargetCapacity {
		cal.LifetimeSeconds = elapsed
	} else {
		cal.Censored = true
	}
	return cal, nil
}

// EncodeCalibration renders a calibration as its durable artifact bytes.
func EncodeCalibration(c *Calibration) ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// DecodeCalibration rebuilds a calibration from artifact bytes,
// rejecting documents with unknown fields or trailing garbage (a store
// artifact is trusted data, but a truncated or cross-written file must
// fail loudly, not load as zeros).
func DecodeCalibration(data []byte) (*Calibration, error) {
	var c Calibration
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("calibration artifact: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("calibration artifact: trailing data after JSON document")
	}
	if c.Policy == "" {
		return nil, fmt.Errorf("calibration artifact: missing policy")
	}
	return &c, nil
}
