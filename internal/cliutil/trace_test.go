package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func testApp(t *testing.T, seed uint64) *workload.App {
	t.Helper()
	apps, err := workload.NewMix(0, seed, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return apps[0]
}

// TestTraceGzipRoundTrip records the same access stream plain and
// gzip-compressed, then replays both through the sniffing opener: the
// decoded streams must match record for record regardless of encoding or
// file name.
func TestTraceGzipRoundTrip(t *testing.T) {
	const n = 5000
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.trc")
	zipped := filepath.Join(dir, "a.trc.gz")
	// A gzip stream under a name with no .gz suffix: content sniffing,
	// not the extension, must decide.
	disguised := filepath.Join(dir, "disguised.trc")

	for _, path := range []string{plain, zipped} {
		w, err := CreateTrace(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Record(testApp(t, 7), n, w); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	gz, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(disguised, gz, 0o644); err != nil {
		t.Fatal(err)
	}

	pstat, _ := os.Stat(plain)
	zstat, _ := os.Stat(zipped)
	if zstat.Size() >= pstat.Size() {
		t.Errorf("gzip output (%d bytes) not smaller than plain (%d bytes)", zstat.Size(), pstat.Size())
	}

	ref, err := LoadTrace(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{zipped, disguised} {
		rep, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if rep.Len() != ref.Len() {
			t.Fatalf("%s: %d records, want %d", path, rep.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if got, want := rep.Next(), ref.Next(); got != want {
				t.Fatalf("%s: record %d = %+v, want %+v", path, i, got, want)
			}
		}
		ref, err = LoadTrace(plain) // rewind the reference
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceReplayMatchesGeneration pins the trace-replay guarantee: a
// recorded stream replayed through OpenTraceReader yields exactly the
// accesses a fresh identically-seeded generator produces.
func TestTraceReplayMatchesGeneration(t *testing.T) {
	const n = 3000
	path := filepath.Join(t.TempDir(), "replay.trc.gz")
	w, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Record(testApp(t, 11), n, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, closer, err := OpenTraceReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	fresh := testApp(t, 11)
	for i := 0; i < n; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := fresh.Next(); got != want {
			t.Fatalf("record %d: %+v, want %+v", i, got, want)
		}
	}
}

// TestLoadMixPrograms exercises the per-core loader against tracegen's
// file layout, including the .gz fallback when the plain name is absent.
func TestLoadMixPrograms(t *testing.T) {
	const mixID, seed, scale, n = 0, uint64(3), 0.15, 1000
	dir := t.TempDir()
	prefix := filepath.Join(dir, "mix1")
	apps, err := workload.NewMix(mixID, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range apps {
		name := prefix + ".core" + string(rune('0'+i)) + ".trc"
		if i%2 == 1 {
			name += ".gz" // odd cores only exist compressed
		}
		w, err := CreateTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Record(app, n, w); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	progs, err := LoadMixPrograms(prefix, mixID, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != len(apps) {
		t.Fatalf("%d programs, want %d", len(progs), len(apps))
	}
	ref, err := workload.NewMix(mixID, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		for k := 0; k < n; k++ {
			if got, want := p.Next(), ref[i].Next(); got != want {
				t.Fatalf("core %d record %d: %+v, want %+v", i, k, got, want)
			}
		}
	}

	if _, err := LoadMixPrograms(filepath.Join(dir, "missing"), mixID, seed, scale); err == nil {
		t.Fatal("missing trace files accepted")
	}
}
