package cliutil

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffCeilingDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if got := b.Ceiling(i + 1); got != w {
			t.Errorf("Ceiling(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Attempts below 1 clamp to the first ceiling.
	if got := b.Ceiling(0); got != want[0] {
		t.Errorf("Ceiling(0) = %v, want %v", got, want[0])
	}
}

func TestBackoffCeilingSaturatesWithoutOverflow(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: 100 * time.Hour}
	for attempt := 1; attempt < 200; attempt++ {
		d := b.Ceiling(attempt)
		if d <= 0 || d > 100*time.Hour {
			t.Fatalf("Ceiling(%d) = %v out of (0, Max]", attempt, d)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Ceiling(1); got != 200*time.Millisecond {
		t.Errorf("default base ceiling = %v", got)
	}
	if got := b.Ceiling(20); got != 5*time.Second {
		t.Errorf("default max ceiling = %v", got)
	}
}

func TestBackoffDelayFullJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	rng := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 8; attempt++ {
		ceil := b.Ceiling(attempt)
		for i := 0; i < 100; i++ {
			d := b.Delay(attempt, rng)
			if d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	// The draws must actually spread over the window, not stick to the
	// ceiling (full jitter, not plain exponential backoff).
	low := 0
	for i := 0; i < 200; i++ {
		if b.Delay(4, rng) < b.Ceiling(4)/2 {
			low++
		}
	}
	if low == 0 || low == 200 {
		t.Fatalf("jitter draws not spread: %d/200 below half the ceiling", low)
	}
}
