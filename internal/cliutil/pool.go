package cliutil

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/report"
)

// This file is the hardened fan-out runner shared by the long-running
// experiment drivers (cpthsweep, thsweep, appstudy, forecast,
// faultstudy). Every task runs with a recover() barrier and an optional
// deadline; failures become structured records instead of aborting the
// whole sweep, so an hours-long run always produces a report — with the
// casualties listed in it.

// PanicTaskEnv names the environment variable that makes the pool panic
// inside the task whose Name matches its value. It exists to prove the
// crash-isolation path end to end: run any sweep with the variable set
// and the remaining tasks must complete, with the panic recorded in the
// report's failure table.
const PanicTaskEnv = "REPRO_FAULT_PANIC_TASK"

// Task is one unit of sweep work: a stable name (used in failure
// records) and the function to run.
type Task struct {
	Name string
	Run  func() error
}

// TaskResult records how one task ended. The zero Err means success.
type TaskResult struct {
	Name     string
	Err      error
	Panicked bool   // Err came from a recovered panic
	TimedOut bool   // Err came from the per-task deadline
	Stack    string // goroutine stack for panics (not rendered in tables)
}

// Failed reports whether the task ended in any failure.
func (r TaskResult) Failed() bool { return r.Err != nil }

// Kind names the failure class for reporting.
func (r TaskResult) Kind() string {
	switch {
	case r.Err == nil:
		return "ok"
	case r.Panicked:
		return "panic"
	case r.TimedOut:
		return "timeout"
	case errors.Is(r.Err, ErrSkipped):
		return "skipped"
	default:
		return "error"
	}
}

// ErrSkipped marks tasks never started because StopOnError ended the
// sweep early.
var ErrSkipped = errors.New("cliutil: task skipped after earlier failure")

// PoolConfig tunes RunTasks. The zero value is the hardened default:
// GOMAXPROCS workers, no deadline, continue on error.
type PoolConfig struct {
	// Workers caps concurrent tasks; <= 0 uses GOMAXPROCS.
	Workers int
	// Timeout is the per-task deadline; 0 disables it. A task past its
	// deadline is recorded as TimedOut and abandoned — its goroutine
	// keeps running (Go cannot kill it) but the pool moves on.
	Timeout time.Duration
	// StopOnError stops claiming new tasks after the first failure;
	// unstarted tasks are recorded with ErrSkipped. The default (false)
	// runs everything regardless of failures.
	StopOnError bool
}

// RunTasks executes the tasks on a worker pool and returns one result
// per task, index-aligned with the input — the order is deterministic
// even though execution is concurrent.
func RunTasks(tasks []Task, cfg PoolConfig) []TaskResult {
	results := make([]TaskResult, len(tasks))
	for i, t := range tasks {
		results[i] = TaskResult{Name: t.Name, Err: ErrSkipped}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers == 0 {
		return results
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    int
		stopped bool
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= len(tasks) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				results[i] = runOne(tasks[i], cfg.Timeout)
				if results[i].Failed() && cfg.StopOnError {
					mu.Lock()
					stopped = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// RunTask executes one task behind the pool's recover barrier and
// optional deadline, outside any pool. The simd job manager runs every
// queued job through it, so a panicking simulation becomes a failed job
// record instead of a dead daemon.
func RunTask(t Task, timeout time.Duration) TaskResult { return runOne(t, timeout) }

type taskOutcome struct {
	err      error
	panicked bool
	stack    string
}

// runOne executes a single task behind a recover barrier, honouring the
// per-task deadline.
func runOne(t Task, timeout time.Duration) TaskResult {
	res := TaskResult{Name: t.Name}
	done := make(chan taskOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- taskOutcome{
					err:      fmt.Errorf("panic: %v", r),
					panicked: true,
					stack:    string(debug.Stack()),
				}
			}
		}()
		if want := os.Getenv(PanicTaskEnv); want != "" && want == t.Name {
			panic(fmt.Sprintf("deliberate fault injection (%s=%s)", PanicTaskEnv, want))
		}
		done <- taskOutcome{err: t.Run()}
	}()
	if timeout <= 0 {
		o := <-done
		res.Err, res.Panicked, res.Stack = o.err, o.panicked, o.stack
		return res
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-done:
		res.Err, res.Panicked, res.Stack = o.err, o.panicked, o.stack
	case <-timer.C:
		res.TimedOut = true
		res.Err = fmt.Errorf("exceeded deadline %v (abandoned)", timeout)
	}
	return res
}

// Failures filters the failed results, preserving order.
func Failures(results []TaskResult) []TaskResult {
	var out []TaskResult
	for _, r := range results {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// ErrOf joins the failures into one error (nil when every task
// succeeded), each wrapped with its task name so errors.Is still reaches
// the underlying cause.
func ErrOf(results []TaskResult) error {
	var errs []error
	for _, r := range results {
		if r.Failed() {
			errs = append(errs, fmt.Errorf("%s: %w", r.Name, r.Err))
		}
	}
	return errors.Join(errs...)
}

// FailureTable renders the failed tasks as a report table, or nil when
// the run was clean.
func FailureTable(results []TaskResult) *report.Table {
	fails := Failures(results)
	if len(fails) == 0 {
		return nil
	}
	t := report.New("task_failures", "task", "kind", "error")
	for _, r := range fails {
		t.AddRow(r.Name, r.Kind(), r.Err.Error())
	}
	return t
}

// AddRunSummary records the sweep outcome in a report: task counts as
// fields plus, when tasks failed, the failure table.
func AddRunSummary(rep *report.Report, results []TaskResult) {
	fails := Failures(results)
	rep.AddField("tasks_total", len(results))
	rep.AddField("tasks_failed", len(fails))
	if t := FailureTable(results); t != nil {
		rep.AddTable(t)
	}
}
