package cliutil

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
)

func namedTasks(n int, fn func(i int) error) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{Name: fmt.Sprintf("task-%d", i), Run: func() error { return fn(i) }}
	}
	return tasks
}

func TestRunTasksAllSucceed(t *testing.T) {
	var ran int64
	results := RunTasks(namedTasks(50, func(int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}), PoolConfig{})
	if ran != 50 || len(results) != 50 {
		t.Fatalf("ran %d, %d results", ran, len(results))
	}
	for i, r := range results {
		if r.Failed() || r.Name != fmt.Sprintf("task-%d", i) {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if err := ErrOf(results); err != nil {
		t.Fatal(err)
	}
}

func TestRunTasksContinuesPastFailures(t *testing.T) {
	sentinel := errors.New("boom")
	var ran int64
	results := RunTasks(namedTasks(40, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return sentinel
		}
		return nil
	}), PoolConfig{})
	if ran != 40 {
		t.Fatalf("only %d tasks ran; pool stopped on error", ran)
	}
	fails := Failures(results)
	if len(fails) != 1 || fails[0].Name != "task-3" || fails[0].Kind() != "error" {
		t.Fatalf("failures: %+v", fails)
	}
	if err := ErrOf(results); !errors.Is(err, sentinel) {
		t.Fatalf("ErrOf = %v", err)
	}
}

func TestRunTasksRecoversPanics(t *testing.T) {
	var ran int64
	results := RunTasks(namedTasks(20, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 7 {
			panic("exploded")
		}
		return nil
	}), PoolConfig{})
	if ran != 20 {
		t.Fatalf("only %d tasks ran after a panic", ran)
	}
	fails := Failures(results)
	if len(fails) != 1 || !fails[0].Panicked || fails[0].Kind() != "panic" {
		t.Fatalf("failures: %+v", fails)
	}
	if !strings.Contains(fails[0].Err.Error(), "exploded") {
		t.Fatalf("panic value lost: %v", fails[0].Err)
	}
	if fails[0].Stack == "" {
		t.Fatal("no stack captured")
	}
}

func TestRunTasksDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	tasks := []Task{
		{Name: "fast", Run: func() error { return nil }},
		{Name: "hung", Run: func() error { <-block; return nil }},
		{Name: "fast2", Run: func() error { return nil }},
	}
	results := RunTasks(tasks, PoolConfig{Workers: 1, Timeout: 20 * time.Millisecond})
	if results[0].Failed() || results[2].Failed() {
		t.Fatalf("fast tasks failed: %+v", results)
	}
	if !results[1].TimedOut || results[1].Kind() != "timeout" {
		t.Fatalf("hung task: %+v", results[1])
	}
}

func TestRunTasksStopOnError(t *testing.T) {
	results := RunTasks(namedTasks(30, func(i int) error {
		if i == 0 {
			return errors.New("first")
		}
		return nil
	}), PoolConfig{Workers: 1, StopOnError: true})
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped != 29 {
		t.Fatalf("%d skipped, want 29", skipped)
	}
	if Failures(results)[1].Kind() != "skipped" {
		t.Fatalf("kind = %s", Failures(results)[1].Kind())
	}
}

func TestPanicTaskEnvHook(t *testing.T) {
	t.Setenv(PanicTaskEnv, "task-2")
	results := RunTasks(namedTasks(5, func(int) error { return nil }), PoolConfig{})
	fails := Failures(results)
	if len(fails) != 1 || fails[0].Name != "task-2" || !fails[0].Panicked {
		t.Fatalf("failures: %+v", fails)
	}
	if !strings.Contains(fails[0].Err.Error(), PanicTaskEnv) {
		t.Fatalf("injected panic unlabelled: %v", fails[0].Err)
	}
}

func TestFailureReporting(t *testing.T) {
	results := RunTasks(namedTasks(4, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("odd %d", i)
		}
		return nil
	}), PoolConfig{})
	rep := report.NewReport("sweep")
	AddRunSummary(rep, results)
	fields := rep.Fields()
	if len(fields) != 2 || fields[0].Key != "tasks_total" || fields[1].Key != "tasks_failed" {
		t.Fatalf("fields: %+v", fields)
	}
	if fields[1].Value.(int) != 2 {
		t.Fatalf("tasks_failed = %v", fields[1].Value)
	}
	tables := rep.Tables()
	if len(tables) != 1 || tables[0].Rows() != 2 {
		t.Fatalf("failure table wrong: %+v", tables)
	}
	// A clean run adds no table.
	rep2 := report.NewReport("sweep")
	AddRunSummary(rep2, RunTasks(namedTasks(3, func(int) error { return nil }), PoolConfig{}))
	if len(rep2.Tables()) != 0 {
		t.Fatal("clean run produced a failure table")
	}
	if FailureTable(nil) != nil {
		t.Fatal("nil results produced a table")
	}
}

func TestRunTasksEmpty(t *testing.T) {
	if rs := RunTasks(nil, PoolConfig{}); len(rs) != 0 {
		t.Fatalf("%d results for no tasks", len(rs))
	}
}
