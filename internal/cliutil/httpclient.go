package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// HTTPError is a non-2xx response surfaced as an error, with the status
// and (truncated) body preserved so callers can branch on the code.
type HTTPError struct {
	Status int
	Body   string
}

func (e *HTTPError) Error() string {
	body := e.Body
	if len(body) > 256 {
		body = body[:256] + "..."
	}
	return fmt.Sprintf("http %d: %s", e.Status, strings.TrimSpace(body))
}

// HTTPStatus extracts the status code from an HTTPError, or 0 when err
// is a transport-level failure (no response at all).
func HTTPStatus(err error) int {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status
	}
	return 0
}

// maxHTTPBody bounds a response body read; fleet artifacts are the
// largest legitimate payload and sit far under this.
const maxHTTPBody = 64 << 20

// HTTPClient is a small JSON-over-HTTP client with full-jitter retry on
// transport errors and gateway-class statuses (502/503/504) — the shared
// plumbing for fleet workers talking to a coordinator that may be
// restarting, draining, or briefly unreachable. The zero value (plus a
// Base URL) is usable.
type HTTPClient struct {
	// Base is the server's base URL ("http://host:port"); request paths
	// are appended to it.
	Base string
	// Client is the underlying HTTP client; nil uses a default with a
	// 2-minute overall timeout.
	Client *http.Client
	// Backoff shapes the delay between retries (cliutil defaults apply).
	Backoff Backoff
	// MaxRetries caps re-sends after the first attempt; < 0 disables
	// retries, 0 defaults to 4.
	MaxRetries int
	// Log receives one warning per retried attempt; nil discards.
	Log *slog.Logger
}

func (c *HTTPClient) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *HTTPClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

// retryableStatus reports whether a status code is worth re-sending:
// the gateway-unavailability class a restarting or draining coordinator
// answers with. Client errors (4xx) are final by definition.
func retryableStatus(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// DoJSON sends one JSON request and decodes the JSON response. in == nil
// sends no body; out == nil (or a 204 response) skips decoding. The
// returned status is the final attempt's (0 when no attempt got a
// response); non-2xx statuses return an *HTTPError carrying the body.
// Transport errors and 502/503/504 are retried with full-jitter backoff
// up to MaxRetries times, respecting ctx.
func (c *HTTPClient) DoJSON(ctx context.Context, method, path string, in, out interface{}) (int, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return 0, fmt.Errorf("cliutil: marshal request: %w", err)
		}
	}
	var lastErr error
	lastStatus := 0
	for attempt := 1; ; attempt++ {
		status, err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return status, nil
		}
		lastErr, lastStatus = err, status
		retryable := status == 0 || retryableStatus(status)
		if !retryable || attempt > c.retries() || ctx.Err() != nil {
			return lastStatus, lastErr
		}
		delay := c.Backoff.Delay(attempt, nil)
		if c.Log != nil {
			c.Log.Warn("http request failed, retrying",
				"method", method, "path", path, "status", status,
				"attempt", attempt, "backoff", delay.Round(time.Millisecond), "err", err)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastStatus, lastErr
		}
	}
}

// doOnce runs a single attempt.
func (c *HTTPClient) doOnce(ctx context.Context, method, path string, body []byte, out interface{}) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxHTTPBody))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("cliutil: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, &HTTPError{Status: resp.StatusCode, Body: string(data)}
	}
	if out != nil && resp.StatusCode != http.StatusNoContent && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cliutil: decode response: %w", err)
		}
	}
	return resp.StatusCode, nil
}
