package cliutil

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoJSONRoundTrip checks the basic JSON request/response cycle.
func TestDoJSONRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/echo" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"pong":41}`))
	}))
	defer srv.Close()

	c := &HTTPClient{Base: srv.URL}
	var out struct {
		Pong int `json:"pong"`
	}
	status, err := c.DoJSON(context.Background(), http.MethodPost, "/v1/echo",
		map[string]int{"ping": 1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || out.Pong != 41 {
		t.Fatalf("status=%d pong=%d", status, out.Pong)
	}
}

// TestDoJSONRetriesGatewayErrors checks that 503 responses are retried
// with backoff and the call eventually succeeds.
func TestDoJSONRetriesGatewayErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	c := &HTTPClient{
		Base:    srv.URL,
		Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
	var out struct {
		OK bool `json:"ok"`
	}
	status, err := c.DoJSON(context.Background(), http.MethodGet, "/", nil, &out)
	if err != nil || status != http.StatusOK || !out.OK {
		t.Fatalf("status=%d err=%v out=%+v", status, err, out)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestDoJSONClientErrorsAreFinal checks that a 4xx response is returned
// immediately as an HTTPError without retrying.
func TestDoJSONClientErrorsAreFinal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "lease gone", http.StatusGone)
	}))
	defer srv.Close()

	c := &HTTPClient{Base: srv.URL, Backoff: Backoff{Base: time.Millisecond}}
	status, err := c.DoJSON(context.Background(), http.MethodPost, "/x", nil, nil)
	if status != http.StatusGone {
		t.Fatalf("status = %d, want 410", status)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusGone {
		t.Fatalf("err = %v, want *HTTPError{410}", err)
	}
	if HTTPStatus(err) != http.StatusGone {
		t.Fatalf("HTTPStatus(err) = %d", HTTPStatus(err))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

// TestDoJSONContextCancel checks that cancellation stops the retry loop.
func TestDoJSONContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &HTTPClient{
		Base:       srv.URL,
		Backoff:    Backoff{Base: time.Hour, Max: time.Hour},
		MaxRetries: 10,
	}
	start := time.Now()
	_, err := c.DoJSON(ctx, http.MethodGet, "/", nil, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
