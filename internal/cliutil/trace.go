package cliutil

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"

	"repro/internal/hier"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the shared trace-file opener: every cmd that reads or
// writes recorded traces goes through it, so gzip transparency is decided
// in exactly one place. Reading sniffs the gzip magic (0x1f 0x8b) rather
// than trusting the file name — a renamed .gz still replays; writing
// compresses when the target name ends in ".gz".

// gzipSuffix selects compressed output in CreateTrace.
const gzipSuffix = ".gz"

// traceReadCloser bundles a (possibly gzip-wrapped) stream with every
// closer that must run when the caller is done.
type traceReadCloser struct {
	io.Reader
	closers []io.Closer
}

func (t *traceReadCloser) Close() error {
	var first error
	for i := len(t.closers) - 1; i >= 0; i-- {
		if err := t.closers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenTrace opens a recorded trace file for reading, transparently
// decompressing gzip (detected by content sniffing, so both plain and
// .gz files work regardless of name). The caller must Close the result.
func OpenTrace(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &traceReadCloser{Reader: zr, closers: []io.Closer{f, zr}}, nil
	}
	// Peek errors (empty file, single byte) surface as decode errors with
	// file context once the trace reader hits them.
	return &traceReadCloser{Reader: br, closers: []io.Closer{f}}, nil
}

// OpenTraceReader opens path and wraps the (possibly compressed) stream
// in a decoding *trace.Reader; the returned closer releases the file.
func OpenTraceReader(path string) (*trace.Reader, io.Closer, error) {
	rc, err := OpenTrace(path)
	if err != nil {
		return nil, nil, err
	}
	return trace.NewReader(rc), rc, nil
}

// LoadTrace loads an entire (possibly gzip-compressed) trace file into a
// replayer, adding the file name to any error.
func LoadTrace(path string) (*trace.Replayer, error) {
	rc, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	rep, err := trace.Load(rc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// CreateTrace creates a trace file for writing, gzip-compressing when the
// name ends in ".gz". Closing the result flushes and closes every layer.
func CreateTrace(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(path) >= len(gzipSuffix) && path[len(path)-len(gzipSuffix):] == gzipSuffix {
		return &traceWriteCloser{Writer: gzip.NewWriter(f), file: f}, nil
	}
	return f, nil
}

// traceWriteCloser closes the gzip layer before the file so the trailer
// is flushed.
type traceWriteCloser struct {
	*gzip.Writer
	file *os.File
}

func (t *traceWriteCloser) Close() error {
	zerr := t.Writer.Close()
	ferr := t.file.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// LoadMixPrograms loads the per-core trace files tracegen -mix writes
// (prefix.coreN.trc, falling back to prefix.coreN.trc.gz) and pairs each
// replayer with a content model built from the same mix/seed/scale the
// recording used, yielding per-core programs for trace-driven replay
// (hybridsim -trace). Contents stay consistent with the recorded address
// stream exactly when mix, seed and scale match the tracegen invocation.
func LoadMixPrograms(prefix string, mixID int, seed uint64, scale float64) ([]hier.Program, error) {
	apps, err := workload.NewMix(mixID, seed, scale)
	if err != nil {
		return nil, err
	}
	progs := make([]hier.Program, len(apps))
	for i, app := range apps {
		path := fmt.Sprintf("%s.core%d.trc", prefix, i)
		if _, err := os.Stat(path); err != nil {
			if gz := path + gzipSuffix; fileExists(gz) {
				path = gz
			}
		}
		rep, err := LoadTrace(path)
		if err != nil {
			return nil, err
		}
		progs[i] = trace.NewProgram(rep, app)
	}
	return progs, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
