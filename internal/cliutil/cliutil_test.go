package cliutil

import (
	"testing"
)

func TestParseMixesAll(t *testing.T) {
	mixes, err := ParseMixes("all")
	if err != nil || len(mixes) != 10 || mixes[0] != 0 || mixes[9] != 9 {
		t.Fatalf("mixes=%v err=%v", mixes, err)
	}
}

func TestParseMixesList(t *testing.T) {
	mixes, err := ParseMixes("1, 4,10")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 9}
	for i, v := range want {
		if mixes[i] != v {
			t.Fatalf("mixes=%v, want %v", mixes, want)
		}
	}
}

func TestParseMixesErrors(t *testing.T) {
	for _, bad := range []string{"0", "11", "x", "", "1,,2"} {
		if _, err := ParseMixes(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSelectForecastSpecs(t *testing.T) {
	std, err := SelectForecastSpecs("standard")
	if err != nil || len(std) != 9 {
		t.Fatalf("standard: %d specs, err=%v", len(std), err)
	}
	cr, err := SelectForecastSpecs("core")
	if err != nil || len(cr) != 4 {
		t.Fatalf("core: %d specs, err=%v", len(cr), err)
	}
	list, err := SelectForecastSpecs("BH, CP_SD")
	if err != nil || len(list) != 2 || list[0].Label != "BH" || list[1].Label != "CP_SD" {
		t.Fatalf("list: %v err=%v", list, err)
	}
	if _, err := SelectForecastSpecs("NOPE"); err == nil {
		t.Error("unknown curve accepted")
	}
}
