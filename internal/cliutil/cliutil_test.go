package cliutil

import (
	"testing"
)

func TestParseMixesAll(t *testing.T) {
	mixes, err := ParseMixes("all")
	if err != nil || len(mixes) != 12 || mixes[0] != 0 || mixes[11] != 11 {
		t.Fatalf("mixes=%v err=%v", mixes, err)
	}
}

func TestParseMixesList(t *testing.T) {
	mixes, err := ParseMixes("1, 4,10")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 9}
	for i, v := range want {
		if mixes[i] != v {
			t.Fatalf("mixes=%v, want %v", mixes, want)
		}
	}
}

func TestParseMixesErrors(t *testing.T) {
	for _, bad := range []string{"0", "13", "x", "", "1,,2"} {
		if _, err := ParseMixes(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
