package cliutil

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/stats"
)

// RunReportOptions select the optional sections of a single-run report.
type RunReportOptions struct {
	// CPthWinner is the set-dueling winner to report; negative omits the
	// field (non-dueling policies).
	CPthWinner int
	// Metrics includes the full registry delta of the measured window.
	Metrics bool
	// Epochs, when non-nil, includes the per-epoch series table
	// (hier.EpochColumns layout).
	Epochs []metrics.Sample
}

// RunReport renders the canonical single-run report — the cmd/hybridsim
// output schema — from a config and its measured summary. The simd job
// daemon renders completed jobs through the same function, so a job
// result is byte-identical to the equivalent hybridsim invocation in
// every encoding.
func RunReport(cfg core.Config, s core.Summary, opt RunReportOptions) *report.Report {
	mix := cfg.MixID + 1
	rep := report.NewReport(fmt.Sprintf("hybridsim: %s mix %d", s.Policy, mix))
	rep.AddField("policy", s.Policy)
	rep.AddField("mix", mix)
	rep.AddField("mean_ipc", s.MeanIPC)
	rep.AddField("hit_rate", s.HitRate)
	rep.AddField("hits", s.Hits)
	rep.AddField("misses", s.Misses)
	rep.AddField("sram_hits", s.SRAMHits)
	rep.AddField("nvm_hits", s.NVMHits)
	rep.AddField("inserts", s.Inserts)
	rep.AddField("migrations", s.Migrations)
	rep.AddField("nvm_block_writes", s.NVMBlockWrites)
	rep.AddField("nvm_bytes_written", s.NVMBytesWritten)
	rep.AddField("nvm_bytes_si", stats.FormatSI(float64(s.NVMBytesWritten)))
	rep.AddField("nvm_capacity", s.Capacity)
	if cfg.Shards > 1 {
		rep.AddField("shards", cfg.Shards)
	}
	if opt.CPthWinner >= 0 {
		rep.AddField("cpth_winner", opt.CPthWinner)
	}
	if opt.Metrics {
		rep.AddTable(report.SnapshotTable("window metrics", s.Metrics))
	}
	if opt.Epochs != nil {
		rep.AddTable(report.SamplesTable("epoch series", hier.EpochColumns, opt.Epochs))
	}
	return rep
}
