// Package cliutil holds helpers shared by the command-line tools:
// mix-list parsing and the hardened worker-pool runner the sweep
// drivers fan out on.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseMixes converts a CLI mix selector — "all" or a comma-separated list
// of 1-based mix numbers — into 0-based mix indices.
func ParseMixes(arg string) ([]int, error) {
	if arg == "all" {
		return core.AllMixes(), nil
	}
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 || v > 10 {
			return nil, fmt.Errorf("bad mix %q (want 1-10 or \"all\")", tok)
		}
		out = append(out, v-1)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix list")
	}
	return out, nil
}

// ParseInts converts a comma-separated list of positive integers (e.g. a
// -shards selector) into a slice.
func ParseInts(arg string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q (want a positive integer)", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// ShardIncompat names a flag combination a cmd cannot honor when the
// sharded engine is selected (forecast's -rotate, hybridsim's -trace).
type ShardIncompat struct {
	When bool   // the incompatible flag was set
	Flag string // its name, for the error message
	Why  string // why it cannot combine with -shards > 1
}

// ApplyShards applies the conventional -shards flag to a config and
// validates it, including the shared incompatibility rules (the
// prefetcher and CheckEvery rejections live in core.Config.Validate) and
// any cmd-specific ones. Every sharded cmd funnels its flag through here
// instead of keeping a private copy of the checks.
func ApplyShards(cfg *core.Config, shards int, extra ...ShardIncompat) error {
	cfg.Shards = shards
	if shards > 1 {
		for _, inc := range extra {
			if inc.When {
				return fmt.Errorf("%s %s", inc.Flag, inc.Why)
			}
		}
	}
	return cfg.Validate()
}

// ValidateShardCounts checks every count of a -shards list against the
// base config (bench -parallel sweeps several counts in one run).
func ValidateShardCounts(cfg core.Config, counts []int) error {
	for _, n := range counts {
		c := cfg
		c.Shards = n
		if err := c.Validate(); err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
	}
	return nil
}
