// Package cliutil holds helpers shared by the command-line tools:
// mix-list parsing and the hardened worker-pool runner the sweep
// drivers fan out on.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseMixes converts a CLI mix selector — "all" or a comma-separated list
// of 1-based mix numbers — into 0-based mix indices.
func ParseMixes(arg string) ([]int, error) {
	if arg == "all" {
		return core.AllMixes(), nil
	}
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 || v > 10 {
			return nil, fmt.Errorf("bad mix %q (want 1-10 or \"all\")", tok)
		}
		out = append(out, v-1)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix list")
	}
	return out, nil
}

// ParseInts converts a comma-separated list of positive integers (e.g. a
// -shards selector) into a slice.
func ParseInts(arg string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q (want a positive integer)", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
