// Package cliutil holds small helpers shared by the command-line tools:
// mix-list parsing and policy-curve selection.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

// ParseMixes converts a CLI mix selector — "all" or a comma-separated list
// of 1-based mix numbers — into 0-based mix indices.
func ParseMixes(arg string) ([]int, error) {
	if arg == "all" {
		return core.AllMixes(), nil
	}
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 || v > 10 {
			return nil, fmt.Errorf("bad mix %q (want 1-10 or \"all\")", tok)
		}
		out = append(out, v-1)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix list")
	}
	return out, nil
}

// SelectForecastSpecs resolves a curve selector: "standard", "core", or a
// comma-separated list of curve labels from the standard set.
func SelectForecastSpecs(arg string) ([]experiments.ForecastSpec, error) {
	switch arg {
	case "standard":
		return experiments.StandardForecastSpecs(), nil
	case "core":
		return experiments.CoreForecastSpecs(), nil
	}
	all := experiments.StandardForecastSpecs()
	var out []experiments.ForecastSpec
	for _, want := range strings.Split(arg, ",") {
		want = strings.TrimSpace(want)
		found := false
		for _, s := range all {
			if s.Label == want {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			labels := make([]string, len(all))
			for i, s := range all {
				labels[i] = s.Label
			}
			return nil, fmt.Errorf("unknown curve %q (valid: %s)", want, strings.Join(labels, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty curve list")
	}
	return out, nil
}
