// Package cliutil holds helpers shared by the command-line tools:
// mix-list parsing and the hardened worker-pool runner the sweep
// drivers fan out on.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseMixes converts a CLI mix selector — "all" or a comma-separated list
// of 1-based mix numbers — into 0-based mix indices. The upper bound
// tracks the registered mix table (the paper's ten plus the skewed-
// traffic scenarios), so new mixes are addressable without touching
// every cmd.
func ParseMixes(arg string) ([]int, error) {
	if arg == "all" {
		return core.AllMixes(), nil
	}
	n := len(core.AllMixes())
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 || v > n {
			return nil, fmt.Errorf("bad mix %q (want 1-%d or \"all\")", tok, n)
		}
		out = append(out, v-1)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix list")
	}
	return out, nil
}

// ParseInts converts a comma-separated list of positive integers (e.g. a
// -shards selector) into a slice.
func ParseInts(arg string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q (want a positive integer)", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// ParseColoring converts the conventional -coloring spec string into a
// coloring config: "scheme[:key=value,...]" with scheme one of xor /
// rotate / wear and keys mask, interval, step, pairs. "" and "off"
// disable coloring (nil). Examples: "xor:mask=5",
// "rotate:interval=4,step=1", "wear:interval=2,pairs=8".
func ParseColoring(spec string) (*core.ColoringConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	scheme, rest, _ := strings.Cut(spec, ":")
	cc := &core.ColoringConfig{Scheme: scheme}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("bad coloring option %q (want key=value)", kv)
			}
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("bad coloring value %q for %q", val, key)
			}
			switch strings.TrimSpace(key) {
			case "mask":
				cc.Mask = n
			case "interval":
				cc.IntervalEpochs = n
			case "step":
				cc.Step = n
			case "pairs":
				cc.Pairs = n
			default:
				return nil, fmt.Errorf("unknown coloring option %q (valid: mask, interval, step, pairs)", key)
			}
		}
	}
	return cc, nil
}

// ApplyColoring parses the conventional -coloring flag into the config
// and validates the result, so every cmd shares one spec syntax and one
// rejection path.
func ApplyColoring(cfg *core.Config, spec string) error {
	cc, err := ParseColoring(spec)
	if err != nil {
		return err
	}
	cfg.Coloring = cc
	return cfg.Validate()
}

// ShardIncompat names a flag combination a cmd cannot honor when the
// sharded engine is selected (forecast's -rotate, hybridsim's -trace).
type ShardIncompat struct {
	When bool   // the incompatible flag was set
	Flag string // its name, for the error message
	Why  string // why it cannot combine with -shards > 1
}

// ApplyShards applies the conventional -shards flag to a config and
// validates it, including the shared incompatibility rules (the
// prefetcher and CheckEvery rejections live in core.Config.Validate) and
// any cmd-specific ones. Every sharded cmd funnels its flag through here
// instead of keeping a private copy of the checks.
func ApplyShards(cfg *core.Config, shards int, extra ...ShardIncompat) error {
	cfg.Shards = shards
	if shards > 1 {
		for _, inc := range extra {
			if inc.When {
				return fmt.Errorf("%s %s", inc.Flag, inc.Why)
			}
		}
	}
	return cfg.Validate()
}

// ValidateShardCounts checks every count of a -shards list against the
// base config (bench -parallel sweeps several counts in one run).
func ValidateShardCounts(cfg core.Config, counts []int) error {
	for _, n := range counts {
		c := cfg
		c.Shards = n
		if err := c.Validate(); err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
	}
	return nil
}
