package cliutil

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with full jitter
// (delay drawn uniformly from [0, min(Max, Base*2^(attempt-1))]), the
// scheme that decorrelates a thundering herd of retriers. The simd job
// manager uses it between attempts of a transiently failed job; any
// sweep driver retrying flaky external work can share it.
type Backoff struct {
	// Base is the ceiling of the first retry's delay; <= 0 defaults to
	// 200ms.
	Base time.Duration
	// Max caps the exponential growth; <= 0 defaults to 5s.
	Max time.Duration
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 200 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

// Ceiling returns the un-jittered delay bound for the given retry
// attempt (1-based): min(Max, Base << (attempt-1)), saturating instead
// of overflowing for large attempts.
func (b Backoff) Ceiling(attempt int) time.Duration {
	base, max := b.base(), b.max()
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d < base { // capped, or overflowed negative
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Delay returns the jittered delay for the given retry attempt
// (1-based): a uniform draw from [0, Ceiling(attempt)]. rng is the
// caller's source — it is not locked here, so serialize access when
// retries can race. A nil rng falls back to the global source.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	c := b.Ceiling(attempt)
	if c <= 0 {
		return 0
	}
	if rng == nil {
		return time.Duration(rand.Int63n(int64(c) + 1))
	}
	return time.Duration(rng.Int63n(int64(c) + 1))
}
