package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNVMDataGeometry(t *testing.T) {
	c := NVMData()
	if c.DataBits() != 516 {
		t.Fatalf("data bits = %d, want 516", c.DataBits())
	}
	if c.CheckBits() != 10 {
		t.Fatalf("check bits = %d, want 10", c.CheckBits())
	}
	if c.CodewordBits() != 527 {
		t.Fatalf("codeword bits = %d, want 527 (paper's (527,516))", c.CodewordBits())
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	c := New(32)
	data := []byte{0xAB, 0xCD, 0x12, 0x34}
	w := c.Encode(data)
	got, st, pos := c.Decode(w)
	if st != OK || pos != -1 {
		t.Fatalf("clean decode: status=%v pos=%d", st, pos)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("data mismatch: %x != %x", got, data)
	}
}

func TestSingleBitCorrection(t *testing.T) {
	c := New(64)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for bit := 0; bit < c.CodewordBits(); bit++ {
		w := c.Encode(data)
		w.FlipBit(bit)
		got, st, pos := c.Decode(w)
		if st != Corrected {
			t.Fatalf("bit %d: status=%v, want Corrected", bit, st)
		}
		if pos != bit {
			t.Fatalf("bit %d: reported position %d", bit, pos)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	c := New(64)
	data := []byte{0xFF, 0, 0xAA, 0x55, 9, 8, 7, 6}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		w := c.Encode(data)
		i := r.Intn(c.CodewordBits())
		j := r.Intn(c.CodewordBits())
		for j == i {
			j = r.Intn(c.CodewordBits())
		}
		w.FlipBit(i)
		w.FlipBit(j)
		_, st, _ := c.Decode(w)
		if st != Detected {
			t.Fatalf("bits %d,%d: status=%v, want Detected", i, j, st)
		}
	}
}

func TestNVMCodeSingleCorrection(t *testing.T) {
	c := NVMData()
	data := make([]byte, 65) // 516 bits -> 65 bytes (last 4 bits zero)
	r := rand.New(rand.NewSource(5))
	r.Read(data)
	data[64] &= 0x0F // only 516 valid bits
	for trial := 0; trial < 100; trial++ {
		w := c.Encode(data)
		bit := r.Intn(c.CodewordBits())
		w.FlipBit(bit)
		got, st, _ := c.Decode(w)
		if st != Corrected || !bytes.Equal(got, data) {
			t.Fatalf("trial %d: bit %d not corrected (status %v)", trial, bit, st)
		}
	}
}

// Property: for arbitrary data, encode/decode with zero or one random error
// always recovers the data.
func TestSECDEDProperty(t *testing.T) {
	c := New(128)
	f := func(data [16]byte, flip uint16, doFlip bool) bool {
		d := data[:]
		w := c.Encode(d)
		if doFlip {
			w.FlipBit(int(flip) % c.CodewordBits())
		}
		got, st, _ := c.Decode(w)
		if doFlip && st != Corrected {
			return false
		}
		if !doFlip && st != OK {
			return false
		}
		return bytes.Equal(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBitCount(t *testing.T) {
	// r must satisfy 2^r >= k + r + 1.
	for _, k := range []int{1, 4, 8, 11, 26, 57, 64, 120, 247, 502, 516, 1013} {
		c := New(k)
		r := c.CheckBits()
		if (1 << uint(r)) < k+r+1 {
			t.Errorf("k=%d: r=%d insufficient", k, r)
		}
		if r > 0 && (1<<uint(r-1)) >= k+(r-1)+1 {
			t.Errorf("k=%d: r=%d not minimal", k, r)
		}
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Error("status names wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should render")
	}
}

func TestEncodePanicsOnShortData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with short data did not panic")
		}
	}()
	New(64).Encode([]byte{1})
}

func TestDecodePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decode with wrong-length codeword did not panic")
		}
	}()
	c := New(64)
	w := newCodeword(10)
	c.Decode(w)
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func BenchmarkEncode516(b *testing.B) {
	c := NVMData()
	data := make([]byte, 65)
	rand.New(rand.NewSource(1)).Read(data)
	data[64] &= 0x0F
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecode516(b *testing.B) {
	c := NVMData()
	data := make([]byte, 65)
	rand.New(rand.NewSource(1)).Read(data)
	data[64] &= 0x0F
	w := c.Encode(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Decode(w)
	}
}
