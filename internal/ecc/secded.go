// Package ecc implements Hamming single-error-correcting,
// double-error-detecting (SECDED) codes. The paper's hybrid LLC protects
// the NVM data array with the (527, 516) code: 516 data bits (512 block
// bits + 4-bit compression-encoding field), 10 Hamming check bits and one
// overall parity bit (§III-B). The implementation is generic over the data
// length so the tag array and fault map protection can reuse it.
package ecc

import "fmt"

// Status is the outcome of decoding a SECDED codeword.
type Status uint8

// Decode outcomes.
const (
	// OK means no error was detected.
	OK Status = iota
	// Corrected means a single-bit error was detected and corrected; the
	// returned data is valid. In the LLC this event marks the failing
	// bitcell's byte as worn out in the fault map.
	Corrected
	// Detected means a double-bit error was detected but not corrected;
	// the data is not trustworthy. In the LLC this disables the frame.
	Detected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Code is a SECDED code for a fixed number of data bits.
type Code struct {
	dataBits  int
	checkBits int // Hamming check bits, excluding overall parity
}

// New returns a SECDED code for dataBits data bits. Total codeword length
// is dataBits + CheckBits() + 1 (overall parity).
func New(dataBits int) *Code {
	if dataBits <= 0 {
		panic("ecc: non-positive data length")
	}
	r := 0
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	return &Code{dataBits: dataBits, checkBits: r}
}

// NVMData is the code used for NVM LLC frames: (527, 516).
func NVMData() *Code { return New(516) }

// DataBits returns the number of protected data bits.
func (c *Code) DataBits() int { return c.dataBits }

// CheckBits returns the number of Hamming check bits (excluding the overall
// parity bit).
func (c *Code) CheckBits() int { return c.checkBits }

// CodewordBits returns the total codeword length in bits, including the
// overall parity bit.
func (c *Code) CodewordBits() int { return c.dataBits + c.checkBits + 1 }

// Codeword is a bit vector holding an encoded word. Bit i is stored in
// Bits[i/8] at position i%8.
type Codeword struct {
	Bits []byte
	n    int
}

// Bit returns bit i.
func (w *Codeword) Bit(i int) int { return int(w.Bits[i/8]>>(uint(i)%8)) & 1 }

// FlipBit inverts bit i; used by fault-injection tests and the NVM wear
// model to emulate a failed bitcell.
func (w *Codeword) FlipBit(i int) { w.Bits[i/8] ^= 1 << (uint(i) % 8) }

// Len returns the number of valid bits in the codeword.
func (w *Codeword) Len() int { return w.n }

func newCodeword(n int) *Codeword {
	return &Codeword{Bits: make([]byte, (n+7)/8), n: n}
}

func (w *Codeword) setBit(i, v int) {
	if v != 0 {
		w.Bits[i/8] |= 1 << (uint(i) % 8)
	} else {
		w.Bits[i/8] &^= 1 << (uint(i) % 8)
	}
}

// Encode produces the SECDED codeword for data. The data is given as a byte
// slice holding DataBits bits (LSB-first within each byte); surplus bits in
// the last byte must be zero. Layout: Hamming positions 1..m with check
// bits at power-of-two positions and data elsewhere, plus the overall
// parity stored at index 0.
func (c *Code) Encode(data []byte) *Codeword {
	return c.EncodeInto(nil, data)
}

// EncodeInto encodes like Encode but reuses w's storage when it is non-nil
// and large enough, so steady-state encoding performs zero allocations. It
// returns the codeword actually used (w itself, or a fresh one when w was
// nil or undersized).
func (c *Code) EncodeInto(w *Codeword, data []byte) *Codeword {
	if len(data)*8 < c.dataBits {
		panic(fmt.Sprintf("ecc: need %d data bits, got %d", c.dataBits, len(data)*8))
	}
	m := c.dataBits + c.checkBits
	n := m + 1
	if w == nil || cap(w.Bits) < (n+7)/8 {
		w = newCodeword(n)
	} else {
		w.Bits = w.Bits[:(n+7)/8]
		w.n = n
		// Clear stale bits past position m so codeword bytes compare equal
		// regardless of the buffer's history.
		for i := range w.Bits {
			w.Bits[i] = 0
		}
	}
	// Place data bits at non-power-of-two Hamming positions 1..m.
	di := 0
	for pos := 1; pos <= m; pos++ {
		if isPow2(pos) {
			continue
		}
		bit := int(data[di/8]>>(uint(di)%8)) & 1
		w.setBit(pos, bit)
		di++
	}
	// Compute check bits: check bit at position 2^k covers positions with
	// bit k set in their index.
	for k := 0; (1 << uint(k)) <= m; k++ {
		p := 0
		for pos := 1; pos <= m; pos++ {
			if pos&(1<<uint(k)) != 0 && !isPow2(pos) {
				p ^= w.Bit(pos)
			}
		}
		w.setBit(1<<uint(k), p)
	}
	// Overall parity over positions 1..m, stored at position 0.
	p := 0
	for pos := 1; pos <= m; pos++ {
		p ^= w.Bit(pos)
	}
	w.setBit(0, p)
	return w
}

// Decode checks and corrects a codeword in place, returning the extracted
// data bits, the decode status, and for Corrected the flipped codeword bit
// position (-1 otherwise).
func (c *Code) Decode(w *Codeword) (data []byte, st Status, pos int) {
	return c.DecodeInto(nil, w)
}

// DecodeInto decodes like Decode but writes the extracted data bits into
// dst when its capacity suffices (allocating otherwise), so steady-state
// decoding performs zero allocations. The returned slice aliases dst's
// storage when it was reused.
func (c *Code) DecodeInto(dst []byte, w *Codeword) (data []byte, st Status, pos int) {
	m := c.dataBits + c.checkBits
	if w.n != m+1 {
		panic(fmt.Sprintf("ecc: codeword length %d, want %d", w.n, m+1))
	}
	syndrome := 0
	for k := 0; (1 << uint(k)) <= m; k++ {
		p := 0
		for i := 1; i <= m; i++ {
			if i&(1<<uint(k)) != 0 {
				p ^= w.Bit(i)
			}
		}
		if p != 0 {
			syndrome |= 1 << uint(k)
		}
	}
	parity := 0
	for i := 0; i <= m; i++ {
		parity ^= w.Bit(i)
	}
	pos = -1
	switch {
	case syndrome == 0 && parity == 0:
		st = OK
	case syndrome == 0 && parity != 0:
		// Error in the overall parity bit itself.
		st = Corrected
		pos = 0
		w.FlipBit(0)
	case syndrome != 0 && parity != 0:
		if syndrome > m {
			// Syndrome points outside the codeword: uncorrectable.
			st = Detected
		} else {
			st = Corrected
			pos = syndrome
			w.FlipBit(syndrome)
		}
	default: // syndrome != 0 && parity == 0
		st = Detected
	}
	if st == Detected {
		return nil, st, -1
	}
	nbytes := (c.dataBits + 7) / 8
	if cap(dst) < nbytes {
		dst = make([]byte, nbytes)
	}
	data = dst[:nbytes]
	for i := range data {
		data[i] = 0
	}
	di := 0
	for i := 1; i <= m; i++ {
		if isPow2(i) {
			continue
		}
		if w.Bit(i) != 0 {
			data[di/8] |= 1 << (uint(di) % 8)
		}
		di++
	}
	return data, st, pos
}

func isPow2(x int) bool { return x&(x-1) == 0 }
