package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
)

// ExecuteFunc runs one leased job: it receives the strict-canonical
// request document and returns the encoded artifact bytes. onProgress
// reports chunked-runner progress (measured cycles done / total) and is
// safe to call from the execution goroutine; the worker forwards the
// latest values with each heartbeat. A returned error fails the job; a
// panic inside Execute is recovered by the worker and reported as a
// transient failure.
type ExecuteFunc func(ctx context.Context, request json.RawMessage, onProgress func(done, total uint64)) ([]byte, error)

// Worker is the stateless pull-loop half of the fleet protocol:
// acquire a lease, execute, heartbeat while running, upload, repeat.
// It owns no durable state — every fact that matters lives on the
// coordinator, so a worker process is safe to kill at any instant.
type Worker struct {
	// ID names this worker in leases, journal entries, and logs.
	ID string
	// Client reaches the coordinator (Base must be set).
	Client *cliutil.HTTPClient
	// Execute runs a leased job. Required.
	Execute ExecuteFunc
	// AcquireWait is the long-poll budget per acquire; 0 means 2s.
	AcquireWait time.Duration
	// Backoff paces retries when the coordinator is unreachable or has
	// no work (cliutil defaults apply).
	Backoff cliutil.Backoff
	// Log receives lifecycle events; nil uses slog.Default().
	Log *slog.Logger

	// heartbeatEvery overrides the ttl/3 heartbeat cadence in tests.
	heartbeatEvery time.Duration
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.Default()
}

func (w *Worker) acquireWait() time.Duration {
	if w.AcquireWait > 0 {
		return w.AcquireWait
	}
	return 2 * time.Second
}

// Run pulls and executes jobs until ctx is canceled. Cancellation
// drains: the in-flight job finishes and uploads before Run returns,
// so SIGTERM never wastes a lease. kill abandons immediately — the
// in-flight execution is canceled and its lease left to expire; pass
// context.Background() to disable. Run only returns an error when the
// worker is misconfigured; operational failures are logged and retried.
func (w *Worker) Run(ctx, kill context.Context) error {
	if w.ID == "" || w.Client == nil || w.Execute == nil {
		return fmt.Errorf("fleet: worker needs ID, Client, and Execute")
	}
	log := w.log().With("worker", w.ID)
	log.Info("worker joining", "coordinator", w.Client.Base)
	idle := 0
	for {
		if ctx.Err() != nil || kill.Err() != nil {
			log.Info("worker draining, no lease in flight")
			return nil
		}
		grant, err := w.acquire(ctx)
		if err != nil {
			if ctx.Err() != nil {
				log.Info("worker draining, no lease in flight")
				return nil
			}
			idle++
			delay := w.Backoff.Delay(idle, nil)
			log.Warn("acquire failed, backing off", "err", err, "backoff", delay.Round(time.Millisecond))
			if !sleepCtx(ctx, delay) {
				return nil
			}
			continue
		}
		if grant == nil { // no work
			idle++
			if !sleepCtx(ctx, w.Backoff.Delay(idle, nil)) {
				log.Info("worker draining, no lease in flight")
				return nil
			}
			continue
		}
		idle = 0
		w.runLease(kill, grant, log)
	}
}

// acquire asks for one lease. A nil grant with nil error means the
// coordinator had no runnable work (204).
func (w *Worker) acquire(ctx context.Context) (*Grant, error) {
	var g Grant
	status, err := w.Client.DoJSON(ctx, http.MethodPost, "/v1/leases",
		AcquireRequest{WorkerID: w.ID, WaitMillis: w.acquireWait().Milliseconds()}, &g)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if g.Token == "" {
		return nil, fmt.Errorf("fleet: acquire returned status %d without a lease", status)
	}
	return &g, nil
}

// runLease executes one granted job to resolution: heartbeats while
// Execute runs, then uploads the artifact or reports the failure. The
// lease is already ours, so drain (ctx) does not interrupt this — only
// kill does, by canceling the execution context.
func (w *Worker) runLease(kill context.Context, g *Grant, log *slog.Logger) {
	log = log.With("lease", g.Token, "job", g.JobID, "attempt", g.Attempt)
	if g.Label != "" {
		log = log.With("label", g.Label)
	}
	log.Info("lease acquired", "ttl", time.Duration(g.TTLMillis)*time.Millisecond)

	// execCtx governs the execution; the heartbeat loop cancels it when
	// the coordinator says the lease is gone (our work would be wasted).
	execCtx, cancelExec := context.WithCancel(kill)
	defer cancelExec()

	var progressDone, progressTotal atomic.Uint64
	hbDone := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		w.heartbeatLoop(execCtx, cancelExec, g, &progressDone, &progressTotal, hbDone, log)
	}()

	res := cliutil.RunTask(cliutil.Task{Name: g.JobID, Run: func() error {
		artifact, err := w.Execute(execCtx, g.Request, func(done, total uint64) {
			progressDone.Store(done)
			progressTotal.Store(total)
		})
		if err != nil {
			return err
		}
		return w.upload(g, artifact, log)
	}}, 0)
	close(hbDone)
	hb.Wait()

	if !res.Failed() {
		return
	}
	if kill.Err() != nil {
		log.Warn("execution abandoned", "err", res.Err)
		return
	}
	// Execution (or upload) failed; report it so the coordinator can
	// requeue or fail the job without waiting for lease expiry. Panics
	// and lease-loss cancellations are transient — another worker (or a
	// later attempt) may succeed.
	transient := res.Panicked || execCtx.Err() != nil
	log.Warn("job failed", "err", res.Err, "transient", transient)
	var cr CompleteResponse
	_, err := w.Client.DoJSON(context.Background(), http.MethodPost,
		"/v1/leases/"+g.Token+"/complete",
		CompleteRequest{Error: res.Err.Error(), Transient: transient}, &cr)
	if err != nil {
		log.Warn("failure report not delivered; lease will expire", "err", err)
		return
	}
	log.Info("failure reported", "resolution", cr.Resolution)
}

// upload sends the artifact and logs the coordinator's resolution.
// A duplicate resolution is success: someone else's identical bytes
// won the race.
func (w *Worker) upload(g *Grant, artifact []byte, log *slog.Logger) error {
	sum := sha256.Sum256(artifact)
	req := CompleteRequest{Artifact: artifact, ArtifactSHA: hex.EncodeToString(sum[:])}
	var cr CompleteResponse
	// Deliberately not the drain context: once the work is done the
	// upload should finish even mid-shutdown.
	_, err := w.Client.DoJSON(context.Background(), http.MethodPost,
		"/v1/leases/"+g.Token+"/complete", req, &cr)
	if err != nil {
		if cliutil.HTTPStatus(err) == http.StatusGone {
			log.Warn("lease expired before upload; artifact discarded")
			return nil
		}
		return fmt.Errorf("upload artifact: %w", err)
	}
	log.Info("artifact uploaded", "resolution", cr.Resolution, "sha", req.ArtifactSHA[:12], "bytes", len(artifact))
	return nil
}

// heartbeatLoop renews the lease at a third of its TTL until the job
// finishes (done closed) or the lease is lost, in which case it cancels
// the execution context so the worker stops burning cycles on a job the
// coordinator has already requeued.
func (w *Worker) heartbeatLoop(ctx context.Context, cancelExec context.CancelFunc, g *Grant,
	progressDone, progressTotal *atomic.Uint64, done <-chan struct{}, log *slog.Logger) {
	every := w.heartbeatEvery
	if every <= 0 {
		every = time.Duration(g.TTLMillis) * time.Millisecond / 3
	}
	if every < 50*time.Millisecond {
		every = 50 * time.Millisecond
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var hr HeartbeatResponse
		_, err := w.Client.DoJSON(ctx, http.MethodPost,
			"/v1/leases/"+g.Token+"/heartbeat",
			HeartbeatRequest{
				ProgressCycles: progressDone.Load(),
				TotalCycles:    progressTotal.Load(),
			}, &hr)
		if err == nil {
			continue
		}
		switch cliutil.HTTPStatus(err) {
		case http.StatusGone, http.StatusNotFound:
			log.Warn("lease lost; abandoning execution", "err", err)
			cancelExec()
			return
		default:
			// Transient coordinator trouble: keep ticking, the client
			// already retried with backoff. If it stays down past the
			// TTL the lease expires server-side, which is the designed
			// outcome.
			log.Warn("heartbeat failed", "err", err)
		}
	}
}

// sleepCtx sleeps for d or until ctx is done; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
