package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cliutil"
)

// fakeCoordinator is a minimal in-memory coordinator: a queue of
// grants, a lease table, and recorded completions. It exercises the
// Worker loop without pulling in internal/server.
type fakeCoordinator struct {
	mu          sync.Mutex
	queue       []*Grant
	table       *Table
	completions []CompleteRequest
	heartbeats  int
	goneTokens  map[string]bool // tokens to answer 410 for
}

func newFakeCoordinator(ttl time.Duration) *fakeCoordinator {
	return &fakeCoordinator{table: NewTable(ttl), goneTokens: map[string]bool{}}
}

func (f *fakeCoordinator) push(jobID string, request string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queue = append(f.queue, &Grant{
		JobID:    jobID,
		CacheKey: "key-" + jobID,
		Attempt:  1,
		Request:  json.RawMessage(request),
	})
}

func (f *fakeCoordinator) handler(t *testing.T) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/leases", func(w http.ResponseWriter, r *http.Request) {
		var req AcquireRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		defer f.mu.Unlock()
		if len(f.queue) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		g := f.queue[0]
		f.queue = f.queue[1:]
		l, err := f.table.Grant(g.JobID, req.WorkerID, g.Attempt)
		if err != nil {
			t.Errorf("grant: %v", err)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		g.Token = l.Token
		g.TTLMillis = f.table.TTL().Milliseconds()
		g.Deadline = l.Deadline
		json.NewEncoder(w).Encode(g)
	})
	mux.HandleFunc("POST /v1/leases/{token}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		tok := r.PathValue("token")
		f.mu.Lock()
		gone := f.goneTokens[tok]
		f.heartbeats++
		f.mu.Unlock()
		if gone {
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		dl, err := f.table.Heartbeat(tok)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		json.NewEncoder(w).Encode(HeartbeatResponse{Deadline: dl, TTLMillis: f.table.TTL().Milliseconds()})
	})
	mux.HandleFunc("POST /v1/leases/{token}/complete", func(w http.ResponseWriter, r *http.Request) {
		tok := r.PathValue("token")
		var req CompleteRequest
		json.NewDecoder(r.Body).Decode(&req)
		l, err := f.table.Resolve(tok)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		f.mu.Lock()
		f.completions = append(f.completions, req)
		f.mu.Unlock()
		res := ResolutionCompleted
		if req.Error != "" {
			res = ResolutionFailed
		}
		json.NewEncoder(w).Encode(CompleteResponse{Resolution: res, JobID: l.JobID})
	})
	return mux
}

func (f *fakeCoordinator) completed() []CompleteRequest {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]CompleteRequest(nil), f.completions...)
}

func testWorker(srvURL string, exec ExecuteFunc) *Worker {
	return &Worker{
		ID:      "w-test",
		Client:  &cliutil.HTTPClient{Base: srvURL, Backoff: cliutil.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}},
		Execute: exec,
		Backoff: cliutil.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},

		heartbeatEvery: 20 * time.Millisecond,
	}
}

// TestWorkerExecutesAndUploads runs two queued jobs through the pull
// loop and checks both artifacts arrive with correct hashes.
func TestWorkerExecutesAndUploads(t *testing.T) {
	fc := newFakeCoordinator(time.Minute)
	fc.push("job-1", `{"n":1}`)
	fc.push("job-2", `{"n":2}`)
	srv := httptest.NewServer(fc.handler(t))
	defer srv.Close()

	w := testWorker(srv.URL, func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		onProgress(50, 100)
		return []byte(`{"artifact_for":` + string(req) + `}`), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx, context.Background()) }()

	deadline := time.After(10 * time.Second)
	for len(fc.completed()) < 2 {
		select {
		case <-deadline:
			t.Fatalf("timed out; completions = %+v", fc.completed())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, c := range fc.completed() {
		sum := sha256.Sum256(c.Artifact)
		if hex.EncodeToString(sum[:]) != c.ArtifactSHA {
			t.Fatalf("artifact sha mismatch: %+v", c)
		}
		if !strings.Contains(string(c.Artifact), "artifact_for") {
			t.Fatalf("unexpected artifact %q", c.Artifact)
		}
	}
}

// TestWorkerReportsFailure checks an Execute error is reported as a
// failure completion rather than left to lease expiry.
func TestWorkerReportsFailure(t *testing.T) {
	fc := newFakeCoordinator(time.Minute)
	fc.push("job-1", `{}`)
	srv := httptest.NewServer(fc.handler(t))
	defer srv.Close()

	w := testWorker(srv.URL, func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	})
	ctx, cancel := context.WithCancel(context.Background())
	go w.Run(ctx, context.Background())
	defer cancel()

	deadline := time.After(10 * time.Second)
	for len(fc.completed()) < 1 {
		select {
		case <-deadline:
			t.Fatal("no failure report arrived")
		case <-time.After(5 * time.Millisecond):
		}
	}
	c := fc.completed()[0]
	if c.Error != "boom" || len(c.Artifact) != 0 {
		t.Fatalf("completion = %+v", c)
	}
	if c.Transient {
		t.Fatal("plain error must not be transient")
	}
}

// TestWorkerPanicIsTransient checks a panicking Execute is recovered
// and reported as a transient failure.
func TestWorkerPanicIsTransient(t *testing.T) {
	fc := newFakeCoordinator(time.Minute)
	fc.push("job-1", `{}`)
	srv := httptest.NewServer(fc.handler(t))
	defer srv.Close()

	w := testWorker(srv.URL, func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		panic("engine exploded")
	})
	ctx, cancel := context.WithCancel(context.Background())
	go w.Run(ctx, context.Background())
	defer cancel()

	deadline := time.After(10 * time.Second)
	for len(fc.completed()) < 1 {
		select {
		case <-deadline:
			t.Fatal("no failure report arrived")
		case <-time.After(5 * time.Millisecond):
		}
	}
	c := fc.completed()[0]
	if !c.Transient || !strings.Contains(c.Error, "engine exploded") {
		t.Fatalf("completion = %+v", c)
	}
}

// TestWorkerAbandonsLostLease checks that a 410 heartbeat cancels the
// in-flight execution.
func TestWorkerAbandonsLostLease(t *testing.T) {
	fc := newFakeCoordinator(time.Minute)
	fc.push("job-1", `{}`)
	srv := httptest.NewServer(fc.handler(t))
	defer srv.Close()

	execStarted := make(chan string, 1)
	execCanceled := make(chan struct{})
	w := testWorker(srv.URL, func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		execStarted <- "" // token unknown here; coordinator side records it
		<-ctx.Done()
		close(execCanceled)
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	go w.Run(ctx, context.Background())
	defer cancel()

	select {
	case <-execStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("execution never started")
	}
	// Mark every active token gone; the next heartbeat gets a 410.
	fc.mu.Lock()
	for _, l := range fc.table.Active() {
		fc.goneTokens[l.Token] = true
	}
	fc.mu.Unlock()

	select {
	case <-execCanceled:
	case <-time.After(10 * time.Second):
		t.Fatal("execution not canceled after lease loss")
	}
}

// TestWorkerDrainFinishesInFlight checks that canceling the run context
// mid-job still executes and uploads the in-flight lease.
func TestWorkerDrainFinishesInFlight(t *testing.T) {
	fc := newFakeCoordinator(time.Minute)
	fc.push("job-1", `{}`)
	srv := httptest.NewServer(fc.handler(t))
	defer srv.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	w := testWorker(srv.URL, func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		close(started)
		<-release
		return []byte(`{"ok":true}`), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx, context.Background()) }()

	<-started
	cancel() // drain while the job is executing
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	if got := fc.completed(); len(got) != 1 || got[0].Error != "" {
		t.Fatalf("completions = %+v", got)
	}
}

// TestWorkerBacksOffWhenCoordinatorDown checks Run survives an
// unreachable coordinator and exits cleanly on cancel.
func TestWorkerBacksOffWhenCoordinatorDown(t *testing.T) {
	w := testWorker("http://127.0.0.1:1", func(ctx context.Context, req json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
		t.Error("execute must not run")
		return nil, nil
	})
	w.Client.MaxRetries = -1
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx, context.Background()) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on cancel")
	}
}
