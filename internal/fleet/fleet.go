// Package fleet implements lease-based distributed execution for simd:
// the wire protocol and lease bookkeeping that let stateless workers
// pull jobs from a coordinator's queue over HTTP.
//
// The protocol is deliberately small — three POSTs:
//
//	POST /v1/leases                    acquire the next runnable job
//	POST /v1/leases/{token}/heartbeat  renew the lease, report progress
//	POST /v1/leases/{token}/complete   upload the artifact (or an error)
//
// A lease is a time-bounded claim on one job. The coordinator grants it
// with a deadline; the worker renews by heartbeating. If the worker
// dies (or partitions) and the deadline passes, the coordinator expires
// the lease and requeues the job for the next worker — the journal
// records the transition so crash recovery composes with replay.
//
// Correctness leans on two properties the rest of the codebase already
// provides. The engine is bit-exact, so a job executed anywhere yields
// byte-identical artifacts, and artifacts are content-addressed by the
// canonical config hash. Together these make duplicate completions — a
// worker revived after its lease expired, racing the replacement —
// trivially resolvable: same hash, same bytes, keep the first, thank
// the second. Execution is therefore at-least-once with idempotent
// effects, and the lease table only has to prevent *concurrent* grants
// of the same job, not duplicate *results*.
//
// The package has no dependency on internal/server: the coordinator
// side embeds a Table and maps its errors onto HTTP statuses, while the
// Worker half speaks the wire types below through a cliutil.HTTPClient.
package fleet

import (
	"encoding/json"
	"time"
)

// AcquireRequest asks the coordinator for the next runnable job.
type AcquireRequest struct {
	// WorkerID identifies the requesting worker in journal entries,
	// logs, and /v1/jobs status output. Required.
	WorkerID string `json:"worker_id"`
	// WaitMillis long-polls: the coordinator holds the request up to
	// this long for a job to become runnable before answering 204.
	// Zero returns immediately; the server caps the wait.
	WaitMillis int64 `json:"wait_millis,omitempty"`
}

// Grant is the coordinator's answer to a successful acquire: one job,
// one lease.
type Grant struct {
	// Token names the lease in heartbeat and complete calls. Opaque.
	Token string `json:"token"`
	// JobID is the coordinator's job identifier, for logs and status.
	JobID string `json:"job_id"`
	// CacheKey is the job's content address — SHA-256 of the canonical
	// config. The completed artifact must decode to this key.
	CacheKey string `json:"cache_key"`
	// Sweep and Label locate the job inside a sweep, when it has one.
	Sweep string `json:"sweep,omitempty"`
	Label string `json:"label,omitempty"`
	// Attempt is 1 for a first execution and counts up across
	// requeues, so worker logs can tell a retry from a fresh job.
	Attempt int `json:"attempt"`
	// TTLMillis is the heartbeat budget: miss it and the lease expires.
	TTLMillis int64 `json:"ttl_millis"`
	// Deadline is the current expiry instant (coordinator clock).
	Deadline time.Time `json:"deadline"`
	// Request is the strict-canonical job request document, exactly as
	// the coordinator validated it. The worker re-validates before
	// running — a version-skewed worker must reject, not guess.
	Request json.RawMessage `json:"request"`
}

// HeartbeatRequest renews a lease and reports checkpoint progress.
type HeartbeatRequest struct {
	// ProgressCycles / TotalCycles mirror the chunked runner's
	// progress hook so the coordinator's job status stays live.
	ProgressCycles uint64 `json:"progress_cycles,omitempty"`
	TotalCycles    uint64 `json:"total_cycles,omitempty"`
}

// HeartbeatResponse carries the pushed-back deadline.
type HeartbeatResponse struct {
	Deadline  time.Time `json:"deadline"`
	TTLMillis int64     `json:"ttl_millis"`
}

// CompleteRequest finishes a lease: either an artifact or an error.
type CompleteRequest struct {
	// Artifact is the encoded result document (the same bytes the
	// coordinator would have written locally). Empty when reporting
	// an error.
	Artifact []byte `json:"artifact,omitempty"`
	// ArtifactSHA is the hex SHA-256 of Artifact, computed by the
	// worker; the coordinator re-hashes and rejects mismatches before
	// journaling anything.
	ArtifactSHA string `json:"artifact_sha,omitempty"`
	// Error reports an execution failure instead of an artifact.
	Error string `json:"error,omitempty"`
	// Transient marks the failure as retryable (panic, timeout) so the
	// coordinator can requeue within the retry budget.
	Transient bool `json:"transient,omitempty"`
}

// Resolutions a CompleteResponse can carry.
const (
	// ResolutionCompleted: the artifact was verified and journaled.
	ResolutionCompleted = "completed"
	// ResolutionDuplicate: the job already reached a terminal state
	// (typically a revived worker racing its replacement); the upload
	// was verified and discarded. Not an error.
	ResolutionDuplicate = "duplicate"
	// ResolutionFailed: the reported error was journaled as terminal.
	ResolutionFailed = "failed"
	// ResolutionRequeued: a transient failure within the retry budget;
	// the job went back on the queue.
	ResolutionRequeued = "requeued"
)

// CompleteResponse tells the worker how its completion was resolved.
type CompleteResponse struct {
	Resolution string `json:"resolution"`
	JobID      string `json:"job_id"`
}

// LeaseInfo describes one active lease, for GET /v1/leases.
type LeaseInfo struct {
	Token    string    `json:"token"`
	JobID    string    `json:"job_id"`
	Worker   string    `json:"worker"`
	Attempt  int       `json:"attempt"`
	Granted  time.Time `json:"granted"`
	Deadline time.Time `json:"deadline"`
	Renewals uint64    `json:"renewals"`
}
