package fleet

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Table's notion of time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedTable(ttl time.Duration) (*Table, *fakeClock) {
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	tab := NewTable(ttl)
	tab.now = clk.now
	return tab, clk
}

// TestLeaseLifecycleHappyPath covers grant → heartbeat → resolve.
func TestLeaseLifecycleHappyPath(t *testing.T) {
	tab, clk := newClockedTable(10 * time.Second)
	l, err := tab.Grant("job-1", "w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Token == "" || l.JobID != "job-1" || l.Worker != "w1" || l.Attempt != 1 {
		t.Fatalf("bad lease %+v", l)
	}
	if want := clk.t.Add(10 * time.Second); !l.Deadline.Equal(want) {
		t.Fatalf("deadline %v, want %v", l.Deadline, want)
	}
	if n := tab.ActiveCount(); n != 1 {
		t.Fatalf("active = %d", n)
	}

	clk.advance(4 * time.Second)
	dl, err := tab.Heartbeat(l.Token)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.t.Add(10 * time.Second); !dl.Equal(want) {
		t.Fatalf("renewed deadline %v, want %v", dl, want)
	}

	got, state := tab.Peek(l.Token)
	if state != TokenActive || got.JobID != "job-1" {
		t.Fatalf("peek = %+v, %v", got, state)
	}

	done, err := tab.Resolve(l.Token)
	if err != nil || done.JobID != "job-1" {
		t.Fatalf("resolve = %+v, %v", done, err)
	}
	if n := tab.ActiveCount(); n != 0 {
		t.Fatalf("active after resolve = %d", n)
	}
	if _, state := tab.Peek(l.Token); state != TokenCompleted {
		t.Fatalf("tombstone state = %v, want completed", state)
	}
	s := tab.Stats()
	if s.Granted != 1 || s.Heartbeats != 1 || s.Completed != 1 || s.Expired != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestLeaseExpiry checks that a missed deadline expires the lease, that
// the expired token answers heartbeats with ErrLeaseGone, and that the
// job becomes grantable again.
func TestLeaseExpiry(t *testing.T) {
	tab, clk := newClockedTable(time.Second)
	l, err := tab.Grant("job-1", "w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if exp := tab.ExpireDue(); len(exp) != 0 {
		t.Fatalf("premature expiry: %+v", exp)
	}
	clk.advance(time.Second)
	exp := tab.ExpireDue()
	if len(exp) != 1 || exp[0].Token != l.Token || exp[0].JobID != "job-1" {
		t.Fatalf("expired = %+v", exp)
	}
	if _, err := tab.Heartbeat(l.Token); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after expiry: %v", err)
	}
	if _, err := tab.Resolve(l.Token); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("resolve after expiry: %v", err)
	}
	if _, state := tab.Peek(l.Token); state != TokenExpired {
		t.Fatalf("tombstone = %v, want expired", state)
	}
	// The job is free again: a second worker can take it.
	l2, err := tab.Grant("job-1", "w2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Token == l.Token {
		t.Fatal("token reused across grants")
	}
	if s := tab.Stats(); s.Expired != 1 || s.Granted != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDoubleGrantRefused checks the table refuses to lease a job that
// already has a live lease.
func TestDoubleGrantRefused(t *testing.T) {
	tab, _ := newClockedTable(time.Minute)
	if _, err := tab.Grant("job-1", "w1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Grant("job-1", "w2", 1); !errors.Is(err, ErrJobLeased) {
		t.Fatalf("double grant: %v", err)
	}
}

// TestHeartbeatKeepsLeaseAlive checks renewal pushes the deadline past
// where the original would have expired.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	tab, clk := newClockedTable(time.Second)
	l, _ := tab.Grant("job-1", "w1", 1)
	for i := 0; i < 5; i++ {
		clk.advance(700 * time.Millisecond)
		if _, err := tab.Heartbeat(l.Token); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if exp := tab.ExpireDue(); len(exp) != 0 {
			t.Fatalf("lease expired despite heartbeats: %+v", exp)
		}
	}
}

// TestWorkersConnected checks the liveness window counts and prunes.
func TestWorkersConnected(t *testing.T) {
	tab, clk := newClockedTable(time.Second)
	tab.TouchWorker("w1")
	tab.TouchWorker("w2")
	if n := tab.WorkersConnected(10 * time.Second); n != 2 {
		t.Fatalf("connected = %d, want 2", n)
	}
	clk.advance(8 * time.Second)
	tab.TouchWorker("w2")
	clk.advance(4 * time.Second) // w1 last seen 12s ago, w2 4s ago
	if n := tab.WorkersConnected(10 * time.Second); n != 1 {
		t.Fatalf("connected = %d, want 1", n)
	}
}

// TestActiveListing checks Active returns grant-ordered lease rows.
func TestActiveListing(t *testing.T) {
	tab, clk := newClockedTable(time.Minute)
	tab.Grant("job-a", "w1", 1)
	clk.advance(time.Second)
	tab.Grant("job-b", "w2", 1)
	rows := tab.Active()
	if len(rows) != 2 || rows[0].JobID != "job-a" || rows[1].JobID != "job-b" {
		t.Fatalf("active = %+v", rows)
	}
	if rows[1].Worker != "w2" {
		t.Fatalf("row = %+v", rows[1])
	}
}

// TestTombstoneEviction checks the done FIFO stays bounded.
func TestTombstoneEviction(t *testing.T) {
	tab, _ := newClockedTable(time.Minute)
	var first string
	for i := 0; i < doneTombstones+10; i++ {
		l, err := tab.Grant("job", "w", 1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = l.Token
		}
		if _, err := tab.Resolve(l.Token); err != nil {
			t.Fatal(err)
		}
	}
	if len(tab.done) > doneTombstones {
		t.Fatalf("done grew to %d", len(tab.done))
	}
	if _, state := tab.Peek(first); state != TokenUnknown {
		t.Fatalf("oldest tombstone state = %v, want unknown (evicted)", state)
	}
}
