package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultTTL is the lease heartbeat budget when the coordinator does
// not configure one.
const DefaultTTL = 10 * time.Second

// doneTombstones bounds the FIFO of resolved tokens kept so late
// heartbeats and duplicate completions from revived workers get a
// precise answer ("expired"/"completed") instead of "unknown".
const doneTombstones = 8192

// TokenState classifies what the table knows about a lease token.
type TokenState int

const (
	// TokenUnknown: never granted, or so old its tombstone was evicted.
	TokenUnknown TokenState = iota
	// TokenActive: granted and within its deadline.
	TokenActive
	// TokenExpired: the deadline passed and the job was requeued.
	TokenExpired
	// TokenCompleted: resolved by a completion (artifact or terminal
	// error) before expiring.
	TokenCompleted
)

func (s TokenState) String() string {
	switch s {
	case TokenActive:
		return "active"
	case TokenExpired:
		return "expired"
	case TokenCompleted:
		return "completed"
	}
	return "unknown"
}

// Errors the table's transitions surface; the coordinator maps these
// onto HTTP statuses (410 for gone leases, 409 for double grants).
var (
	ErrLeaseGone   = errors.New("fleet: lease expired or unknown")
	ErrJobLeased   = errors.New("fleet: job already leased")
	ErrLeaseClosed = errors.New("fleet: lease already resolved")
)

// Lease is one live claim: a job granted to a worker until a deadline.
type Lease struct {
	Token    string
	JobID    string
	Worker   string
	Attempt  int
	Granted  time.Time
	Deadline time.Time
	Renewals uint64
}

// Stats is a monotonic snapshot of the table's lifetime counters, fed
// into the metrics registry by the coordinator.
type Stats struct {
	Granted    uint64
	Heartbeats uint64
	Expired    uint64
	Completed  uint64
}

// Table is the coordinator-side lease state machine. It tracks active
// leases by token, remembers resolved tokens long enough to classify
// stragglers, and records per-worker last-contact times for the
// workers-connected gauge. All methods are safe for concurrent use.
//
// The table deliberately knows nothing about jobs beyond their IDs:
// queueing, journaling, and artifact verification stay with the caller.
type Table struct {
	ttl time.Duration
	now func() time.Time // test hook; defaults to time.Now

	mu       sync.Mutex
	active   map[string]*Lease     // token → lease
	byJob    map[string]string     // jobID → token, to refuse double grants
	done     map[string]TokenState // resolved-token tombstones
	doneFIFO []string              // eviction order for done
	lastSeen map[string]time.Time  // workerID → last contact
	stats    Stats
}

// NewTable builds a lease table with the given heartbeat TTL
// (DefaultTTL when ttl <= 0).
func NewTable(ttl time.Duration) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Table{
		ttl:      ttl,
		now:      time.Now,
		active:   make(map[string]*Lease),
		byJob:    make(map[string]string),
		done:     make(map[string]TokenState),
		lastSeen: make(map[string]time.Time),
	}
}

// TTL reports the table's heartbeat budget.
func (t *Table) TTL() time.Duration { return t.ttl }

// newToken mints an unguessable lease token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: crypto/rand unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Grant claims jobID for worker and returns the new lease. It refuses
// to double-grant a job that already has an active lease — the caller
// dispenses jobs from a queue, so this guards against bookkeeping bugs,
// not expected contention.
func (t *Table) Grant(jobID, worker string, attempt int) (*Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if tok, ok := t.byJob[jobID]; ok {
		if l := t.active[tok]; l != nil && now.Before(l.Deadline) {
			return nil, fmt.Errorf("%w: job %s held by %s", ErrJobLeased, jobID, l.Worker)
		}
	}
	l := &Lease{
		Token:    newToken(),
		JobID:    jobID,
		Worker:   worker,
		Attempt:  attempt,
		Granted:  now,
		Deadline: now.Add(t.ttl),
	}
	t.active[l.Token] = l
	t.byJob[jobID] = l.Token
	t.lastSeen[worker] = now
	t.stats.Granted++
	cp := *l
	return &cp, nil
}

// Heartbeat renews the lease's deadline and returns the new one.
// Returns ErrLeaseGone (wrapped with the token's precise state) when
// the lease is no longer active — the worker must abandon the job.
func (t *Table) Heartbeat(token string) (time.Time, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.active[token]
	if !ok {
		return time.Time{}, t.goneLocked(token)
	}
	now := t.now()
	l.Deadline = now.Add(t.ttl)
	l.Renewals++
	t.lastSeen[l.Worker] = now
	t.stats.Heartbeats++
	return l.Deadline, nil
}

// Peek returns a copy of the active lease for token, or its state when
// it is not active. Callers use this to locate the job before running
// verification that must happen outside the table's lock.
func (t *Table) Peek(token string) (*Lease, TokenState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.active[token]; ok {
		cp := *l
		return &cp, TokenActive
	}
	return nil, t.done[token]
}

// Resolve marks an active lease completed and removes it. The caller
// verifies the completion (artifact hash, cache key) *before* calling;
// a failed verification leaves the lease active so the worker can
// retry the upload.
func (t *Table) Resolve(token string) (*Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.active[token]
	if !ok {
		return nil, t.goneLocked(token)
	}
	t.retireLocked(l, TokenCompleted)
	t.lastSeen[l.Worker] = t.now()
	t.stats.Completed++
	cp := *l
	return &cp, nil
}

// ExpireDue removes every lease whose deadline has passed and returns
// them; the caller requeues the jobs and journals the transitions.
func (t *Table) ExpireDue() []*Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []*Lease
	for _, l := range t.active {
		if now.Before(l.Deadline) {
			continue
		}
		t.retireLocked(l, TokenExpired)
		t.stats.Expired++
		cp := *l
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Granted.Before(out[j].Granted) })
	return out
}

// retireLocked moves a lease out of the active set and tombstones its
// token with the given final state. Caller holds t.mu.
func (t *Table) retireLocked(l *Lease, final TokenState) {
	delete(t.active, l.Token)
	if t.byJob[l.JobID] == l.Token {
		delete(t.byJob, l.JobID)
	}
	t.done[l.Token] = final
	t.doneFIFO = append(t.doneFIFO, l.Token)
	for len(t.doneFIFO) > doneTombstones {
		delete(t.done, t.doneFIFO[0])
		t.doneFIFO = t.doneFIFO[1:]
	}
}

// goneLocked builds the error for a non-active token, including its
// tombstoned state when known. Caller holds t.mu.
func (t *Table) goneLocked(token string) error {
	if s := t.done[token]; s != TokenUnknown {
		return fmt.Errorf("%w (%s)", ErrLeaseGone, s)
	}
	return ErrLeaseGone
}

// Active returns the active leases sorted by grant time.
func (t *Table) Active() []LeaseInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LeaseInfo, 0, len(t.active))
	for _, l := range t.active {
		out = append(out, LeaseInfo{
			Token: l.Token, JobID: l.JobID, Worker: l.Worker,
			Attempt: l.Attempt, Granted: l.Granted,
			Deadline: l.Deadline, Renewals: l.Renewals,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Granted.Equal(out[j].Granted) {
			return out[i].Granted.Before(out[j].Granted)
		}
		return out[i].Token < out[j].Token
	})
	return out
}

// ActiveCount reports the number of live leases.
func (t *Table) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// TouchWorker records contact from a worker outside the lease
// lifecycle (an acquire that found no work still proves liveness).
func (t *Table) TouchWorker(worker string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastSeen[worker] = t.now()
}

// WorkersConnected counts workers heard from within the window, and
// prunes entries older than that so the map cannot grow unboundedly.
func (t *Table) WorkersConnected(window time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	cutoff := t.now().Add(-window)
	n := 0
	for w, seen := range t.lastSeen {
		if seen.Before(cutoff) {
			delete(t.lastSeen, w)
			continue
		}
		n++
	}
	return n
}

// Stats returns the lifetime counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
