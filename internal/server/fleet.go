package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/jobstore"
)

// This file is the coordinator half of the fleet protocol: leasing jobs
// off the manager's queue to remote workers, ingesting their uploads,
// and expiring the leases of workers that stop heartbeating. Remote and
// local execution share one queue and one journal; a job neither knows
// nor cares where it runs, and the journal's extra states ("leased",
// "requeued") read as non-terminal on replay, so PR 7's recovery
// re-runs them without any new cases.

// Journal-only lease states. Like stateRetrying they never become a
// Job's lifecycle state — on replay both read as "interrupted, run it
// again", which is exactly the at-least-once contract.
const (
	// stateLeased: the job left the queue on a fleet lease.
	stateLeased = "leased"
	// stateRequeued: the lease expired and the job went back on the
	// queue.
	stateRequeued = "requeued"
)

// Fleet failure modes, mapped onto HTTP statuses by the handlers (204,
// and 400 respectively; fleet.ErrLeaseGone maps to 410).
var (
	// ErrNoWork: no job became runnable within the acquire wait.
	ErrNoWork = errors.New("server: no runnable job")
	// ErrArtifactMismatch: an uploaded artifact failed verification
	// (hash, codec, or cache key). The lease stays active so the worker
	// can retry the upload — a corrupt upload must not poison the job.
	ErrArtifactMismatch = errors.New("server: artifact verification failed")
)

// maxAcquireWait caps the long-poll budget a worker may request.
const maxAcquireWait = 30 * time.Second

// AcquireLease hands the next runnable job to a fleet worker: it pulls
// from the same queue the local pool drains, marks the job running,
// grants a lease, and journals the transition with the worker and
// token. With no runnable job it waits up to wait (capped) before
// returning ErrNoWork; a draining manager refuses with ErrDraining.
func (m *Manager) AcquireLease(ctx context.Context, workerID string, wait time.Duration) (*fleet.Grant, error) {
	if workerID == "" {
		return nil, fmt.Errorf("server: acquire needs a worker_id")
	}
	m.leases.TouchWorker(workerID)
	if wait < 0 {
		wait = 0
	}
	if wait > maxAcquireWait {
		wait = maxAcquireWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		if m.Draining() {
			return nil, ErrDraining
		}
		select {
		case j := <-m.queue:
			g, ok := m.grantJob(j, workerID)
			if !ok { // canceled while queued; take the next one
				continue
			}
			return g, nil
		case <-m.drainc:
			return nil, ErrDraining
		case <-timer.C:
			return nil, ErrNoWork
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// grantJob leases one dequeued job to a worker. False means the job was
// no longer runnable (canceled while queued) and was skipped.
func (m *Manager) grantJob(j *Job, workerID string) (*fleet.Grant, bool) {
	if !j.markRunning() {
		return nil, false
	}
	attempt := j.beginAttempt()
	l, err := m.leases.Grant(j.id, workerID, attempt)
	if err != nil {
		// A job dequeued from the channel cannot hold an active lease
		// (expiry removes the lease before requeueing), so this is a
		// bookkeeping bug; fail the job loudly rather than lose it.
		m.log.Error("lease grant refused", "job", j.id, "worker", workerID, "err", err)
		m.finishJob(j, StateFailed, nil, err, cliutil.TaskResult{})
		return nil, false
	}
	j.setWorker(workerID)
	m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: stateLeased,
		Sweep: j.sweepID, Label: j.label, CacheKey: j.cacheKey,
		Attempt: attempt, Worker: workerID, Lease: l.Token})
	m.log.Info("lease granted", "job", j.id, "sweep", j.sweepID,
		"worker", workerID, "lease", l.Token, "attempt", attempt)
	return &fleet.Grant{
		Token:     l.Token,
		JobID:     j.id,
		CacheKey:  j.cacheKey,
		Sweep:     j.sweepID,
		Label:     j.label,
		Attempt:   attempt,
		TTLMillis: m.leases.TTL().Milliseconds(),
		Deadline:  l.Deadline,
		Request:   marshalRequest(j.req),
	}, true
}

// HeartbeatLease renews a lease and folds the worker's reported
// progress into the job's live status. fleet.ErrLeaseGone tells the
// worker its lease expired (the job is already requeued) and it should
// abandon the run.
func (m *Manager) HeartbeatLease(token string, hb fleet.HeartbeatRequest) (fleet.HeartbeatResponse, error) {
	deadline, err := m.leases.Heartbeat(token)
	if err != nil {
		return fleet.HeartbeatResponse{}, err
	}
	if l, state := m.leases.Peek(token); state == fleet.TokenActive && hb.TotalCycles > 0 {
		if j, ok := m.Job(l.JobID); ok {
			j.setProgress(hb.ProgressCycles, hb.TotalCycles)
		}
	}
	return fleet.HeartbeatResponse{Deadline: deadline, TTLMillis: m.leases.TTL().Milliseconds()}, nil
}

// CompleteLease resolves a lease with either an uploaded artifact or an
// error report. Artifacts are verified — SHA-256 against the declared
// digest, codec decode, cache key against the job's content address —
// *before* the lease is resolved or anything is journaled, so a corrupt
// upload leaves both the lease and the job untouched (the worker can
// retry, or the lease expires and the job requeues). Duplicate
// completions (a revived worker racing the replacement that already
// finished the job) are resolved idempotently: the bytes are verified,
// found to carry the same content address, and discarded.
func (m *Manager) CompleteLease(token string, req fleet.CompleteRequest) (fleet.CompleteResponse, error) {
	l, state := m.leases.Peek(token)
	if l == nil {
		return fleet.CompleteResponse{}, fmt.Errorf("%w (%s)", fleet.ErrLeaseGone, state)
	}
	j, ok := m.Job(l.JobID)
	if !ok {
		m.leases.Resolve(token)
		return fleet.CompleteResponse{}, fmt.Errorf("server: lease %s names unknown job %s", token, l.JobID)
	}

	if req.Error != "" {
		return m.completeRemoteFailure(token, l, j, req), nil
	}

	sum := sha256.Sum256(req.Artifact)
	if got := hex.EncodeToString(sum[:]); got != req.ArtifactSHA {
		return fleet.CompleteResponse{}, fmt.Errorf("%w: artifact sha %s, declared %s",
			ErrArtifactMismatch, got, req.ArtifactSHA)
	}
	res, key, err := decodeResultKeyed(req.Artifact)
	if err != nil {
		return fleet.CompleteResponse{}, fmt.Errorf("%w: %v", ErrArtifactMismatch, err)
	}
	if key != j.cacheKey {
		return fleet.CompleteResponse{}, fmt.Errorf("%w: artifact key %s, job wants %s",
			ErrArtifactMismatch, key, j.cacheKey)
	}
	if _, err := m.leases.Resolve(token); err != nil {
		// The lease expired between Peek and Resolve; the upload is
		// still good bytes for the right key, so fall through and let
		// idempotent completion decide (the requeued copy may not have
		// re-run yet, in which case this upload completes the job).
		m.log.Warn("lease expired during upload", "job", j.id, "lease", token, "err", err)
	}
	resolution := m.completeRemote(j, l, res, req.Artifact, req.ArtifactSHA)
	return fleet.CompleteResponse{Resolution: resolution, JobID: j.id}, nil
}

// completeRemoteFailure resolves a lease whose worker reported an
// execution error: requeue within the retry budget for transient
// failures, terminal failure otherwise.
func (m *Manager) completeRemoteFailure(token string, l *fleet.Lease, j *Job, req fleet.CompleteRequest) fleet.CompleteResponse {
	m.leases.Resolve(token)
	cause := errors.New(req.Error)
	if req.Transient && l.Attempt < m.opts.Retries+1 && m.rootCtx.Err() == nil {
		if m.requeueJob(j, requeueRetry, l.Attempt, l.Worker, token, cause) {
			return fleet.CompleteResponse{Resolution: fleet.ResolutionRequeued, JobID: j.id}
		}
	}
	m.finishJob(j, StateFailed, nil, fmt.Errorf("worker %s: %w", l.Worker, cause), cliutil.TaskResult{})
	return fleet.CompleteResponse{Resolution: fleet.ResolutionFailed, JobID: j.id}
}

// completeRemote ingests a verified remote artifact: blob into the
// store first (journaled completion implies the artifact exists, same
// ordering finishJob keeps), then the in-memory transition. When the
// job is already terminal — the duplicate-completion race — nothing is
// counted or journaled twice; the verified bytes are simply dropped,
// which is safe because content addressing makes them identical to the
// bytes already stored.
func (m *Manager) completeRemote(j *Job, l *fleet.Lease, res *Result, blob []byte, sha string) string {
	if m.store != nil {
		if _, err := m.store.PutArtifact(j.cacheKey, blob); err != nil {
			m.log.Error("remote artifact write failed", "job", j.id, "key", j.cacheKey, "err", err)
			sha = ""
		}
	}
	if !j.finish(StateCompleted, res, nil) {
		m.leasesDup.Add(1)
		m.log.Info("duplicate completion resolved by hash", "job", j.id,
			"worker", l.Worker, "lease", l.Token, "sha", sha)
		return fleet.ResolutionDuplicate
	}
	m.cache.put(j.cacheKey, res)
	m.completed.Add(1)
	m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: string(StateCompleted),
		Sweep: j.sweepID, Label: j.label, CacheKey: j.cacheKey,
		Attempt: j.Attempts(), ArtifactSHA: sha, Worker: l.Worker, Lease: l.Token})
	m.observeDuration(time.Since(l.Granted))
	m.log.Info("job completed remotely", "job", j.id, "sweep", j.sweepID,
		"worker", l.Worker, "lease", l.Token,
		"mean_ipc", res.Summary.MeanIPC, "attempts", j.Attempts())
	return fleet.ResolutionCompleted
}

// Leases lists the active fleet leases (GET /v1/leases).
func (m *Manager) Leases() []fleet.LeaseInfo { return m.leases.Active() }

// leaseExpiryLoop is the missed-heartbeat reaper: it scans the table at
// a quarter of the TTL and requeues the job behind every expired lease.
// It exits on rootCtx and deliberately stays out of m.wg — Drain waits
// on the group before the root context is canceled, and remote jobs
// whose leases expire mid-drain must still be requeued (where the
// draining enqueue converts them to canceled) rather than stranded.
func (m *Manager) leaseExpiryLoop() {
	interval := m.leases.TTL() / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.rootCtx.Done():
			return
		case <-ticker.C:
		}
		for _, l := range m.leases.ExpireDue() {
			j, ok := m.Job(l.JobID)
			if !ok {
				continue
			}
			m.log.Warn("lease expired, requeueing job", "job", j.id, "sweep", j.sweepID,
				"worker", l.Worker, "lease", l.Token, "attempt", l.Attempt)
			m.requeueJob(j, requeueLease, l.Attempt, l.Worker, l.Token,
				fmt.Errorf("lease expired on worker %s", l.Worker))
		}
	}
}

// RunRequestArtifact is the fleet worker's executor: it decodes a
// strict-canonical request document, runs it through the same engine
// path the coordinator's local pool uses, and returns the encoded
// artifact bytes. The engine is bit-exact and the codec deterministic,
// so the bytes are identical to what local execution of the same
// request would have stored — the property that makes remote leases,
// duplicate uploads, and artifact hash checks all compose.
func RunRequestArtifact(ctx context.Context, request json.RawMessage, onProgress func(done, total uint64)) ([]byte, error) {
	req, err := DecodeJobRequest(request)
	if err != nil {
		return nil, err
	}
	h, err := req.Config.NewRunHandle()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if req.Capacity < 1 {
		h.PreAge(req.Capacity)
	}
	sum, err := h.MeasureCtx(ctx, req.WarmupCycles, req.MeasureCycles, core.RunHooks{OnProgress: onProgress})
	if err != nil {
		return nil, err
	}
	winner := -1
	if w, ok := h.DuelingWinner(); ok {
		winner = w
	}
	return encodeResult(req.CacheKey(), &Result{
		Summary:    sum,
		Epochs:     h.EpochRing().Samples(),
		CPthWinner: winner,
	})
}
