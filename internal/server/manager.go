package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/jobstore"
	"repro/internal/metrics"
)

// Submission failure modes, mapped to HTTP statuses by the handlers
// (429 with Retry-After, and 503 respectively).
var (
	ErrQueueFull = errors.New("server: job queue full")
	ErrDraining  = errors.New("server: draining, not accepting jobs")
)

// stateRetrying is a journal-only state: the job failed transiently and
// will run again after backoff. It never becomes a Job's lifecycle
// state — on replay it reads as non-terminal, which is exactly right
// (the job is re-executed).
const stateRetrying = "retrying"

// Options tune a Manager. The zero value picks sensible daemon defaults.
type Options struct {
	// Workers caps concurrently running local simulations; 0 uses
	// GOMAXPROCS. Negative runs no local pool at all — a remote-only
	// coordinator whose queue is drained exclusively by fleet leases.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects submissions with ErrQueueFull (backpressure, not
	// buffering). <= 0 defaults to 64.
	QueueDepth int
	// JobTimeout cancels a run attempt that exceeds it (checkpoint-cancel
	// at the next epoch boundary); 0 disables the deadline. With retries
	// enabled the deadline is per attempt.
	JobTimeout time.Duration
	// CacheSize bounds the content-addressed result cache; <= 0 uses 256.
	// Use NoCache to disable caching.
	CacheSize int
	// Store, when set, makes the manager durable: every state transition
	// is journaled, completed results are written as content-addressed
	// artifacts, and NewManager replays the journal to recover jobs and
	// sweeps a previous process left behind.
	Store *jobstore.Store
	// Retries is how many times a transiently failed attempt (panic,
	// per-attempt timeout) is re-executed before the job fails for good.
	// 0 — the default — preserves fail-fast semantics.
	Retries int
	// RetryBackoff shapes the delay between attempts (full jitter: a
	// uniform draw from [0, Base·2^(attempt-1)] capped at Max). Zero
	// values pick the cliutil defaults.
	RetryBackoff cliutil.Backoff
	// CheckpointEvery throttles journal checkpoint entries per job; 0
	// defaults to 1s, negative journals every epoch checkpoint (tests).
	CheckpointEvery time.Duration
	// LeaseTTL is the fleet lease heartbeat budget: a remote worker that
	// misses it has its lease expired and its job requeued. 0 uses
	// fleet.DefaultTTL.
	LeaseTTL time.Duration
	// Logger receives structured job lifecycle events; nil discards them.
	Logger *slog.Logger
}

// NoCache as Options.CacheSize disables the result cache.
const NoCache = -1

// Manager owns the job queue, the worker pool, the result cache and —
// when a Store is configured — the durability pipeline. Every
// simulation runs behind cliutil's recover barrier, so a panicking run
// becomes a failed job record instead of a dead daemon; with retries
// enabled it becomes a delayed second attempt first.
type Manager struct {
	opts       Options
	log        *slog.Logger
	cache      *resultCache
	est        *analytic.Estimator
	store      *jobstore.Store
	queue      chan *Job
	drainc     chan struct{} // closed when draining starts
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
	reg        *metrics.Registry
	leases     *fleet.Table

	mu       sync.Mutex // guards jobs/order/sweeps/sweepOrder/draining/seq/sweepSeq and queue sends vs drain
	jobs     map[string]*Job
	order    []string
	sweeps   map[string]*Sweep
	sweepOrd []string
	draining bool
	seq      uint64
	sweepSeq uint64

	submitted       atomic.Uint64
	completed       atomic.Uint64
	failed          atomic.Uint64
	canceled        atomic.Uint64
	retried         atomic.Uint64
	recovered       atomic.Uint64
	screened        atomic.Uint64
	cacheHits       atomic.Uint64
	cacheMisses     atomic.Uint64
	queueRejects    atomic.Uint64
	sweepsSubd      atomic.Uint64
	sweepsDone      atomic.Uint64
	estimates       atomic.Uint64
	estCalibrations atomic.Uint64
	estCacheHits    atomic.Uint64
	leasesRequeued  atomic.Uint64 // jobs put back on the queue by lease expiry
	leasesDup       atomic.Uint64 // duplicate completions resolved by hash
	running         atomic.Int64
	meanNanos       atomic.Uint64 // EWMA of job wall time, as float64 bits

	// beforeRun, when set, runs on the worker goroutine after a job is
	// claimed and before it simulates. Tests use it to hold a worker busy
	// deterministically (queue-full and drain scenarios).
	beforeRun func(*Job)
	// beforeAttempt, when set, runs inside the recover barrier at the
	// start of every attempt. Tests use it to inject transient faults
	// (panics) on chosen attempts.
	beforeAttempt func(j *Job, attempt int) error
}

// NewManager starts a manager: its workers are live and pulling from the
// queue when it returns. With Options.Store set it first replays the
// store's journal — completed jobs come back served from their
// artifacts, interrupted jobs and sweeps are re-executed — and an
// unreadable journal is an error (a durable daemon must not silently
// forget history). Stop the manager with Drain (graceful) or Close.
func NewManager(opts Options) (*Manager, error) {
	switch {
	case opts.Workers < 0:
		opts.Workers = 0 // remote-only: fleet leases drain the queue
	case opts.Workers == 0:
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = time.Second
	}
	cacheSize := opts.CacheSize
	switch {
	case cacheSize == NoCache:
		cacheSize = 0
	case cacheSize <= 0:
		cacheSize = 256
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		log:        log,
		cache:      newResultCache(cacheSize),
		store:      opts.Store,
		queue:      make(chan *Job, opts.QueueDepth),
		drainc:     make(chan struct{}),
		rootCtx:    ctx,
		rootCancel: cancel,
		jobs:       make(map[string]*Job),
		sweeps:     make(map[string]*Sweep),
		est:        analytic.NewEstimator(nil),
	}
	m.reg = metrics.NewRegistry()
	counter := func(name string, v *atomic.Uint64) {
		m.reg.CounterFunc(name, v.Load)
	}
	counter("server.jobs.submitted", &m.submitted)
	counter("server.jobs.completed", &m.completed)
	counter("server.jobs.failed", &m.failed)
	counter("server.jobs.canceled", &m.canceled)
	counter("server.jobs.retried", &m.retried)
	counter("server.jobs.recovered", &m.recovered)
	counter("server.cache.hits", &m.cacheHits)
	counter("server.cache.misses", &m.cacheMisses)
	counter("server.queue.rejects", &m.queueRejects)
	counter("server.sweeps.submitted", &m.sweepsSubd)
	counter("server.sweeps.completed", &m.sweepsDone)
	counter("server.jobs.screened", &m.screened)
	counter("server.estimates.requested", &m.estimates)
	counter("server.estimates.calibrations", &m.estCalibrations)
	counter("server.estimates.cache_hits", &m.estCacheHits)
	m.reg.GaugeFunc("server.queue.depth", func() float64 { return float64(len(m.queue)) })
	m.reg.GaugeFunc("server.jobs.running", func() float64 { return float64(m.running.Load()) })
	m.reg.GaugeFunc("server.cache.entries", func() float64 { return float64(m.cache.len()) })
	m.reg.GaugeFunc("server.estimates.cached", func() float64 { return float64(m.est.Len()) })
	if m.store != nil {
		m.reg.GaugeFunc("server.store.artifacts", func() float64 { return float64(m.store.CountArtifacts()) })
	}
	m.leases = fleet.NewTable(opts.LeaseTTL)
	m.reg.CounterFunc("fleet.leases.granted", func() uint64 { return m.leases.Stats().Granted })
	m.reg.CounterFunc("fleet.leases.expired", func() uint64 { return m.leases.Stats().Expired })
	m.reg.CounterFunc("fleet.leases.completed", func() uint64 { return m.leases.Stats().Completed })
	m.reg.CounterFunc("fleet.heartbeats", func() uint64 { return m.leases.Stats().Heartbeats })
	counter("fleet.leases.requeued", &m.leasesRequeued)
	counter("fleet.leases.duplicates", &m.leasesDup)
	m.reg.GaugeFunc("fleet.leases.active", func() float64 { return float64(m.leases.ActiveCount()) })
	workerWindow := 3 * m.leases.TTL()
	if workerWindow < 15*time.Second {
		workerWindow = 15 * time.Second
	}
	m.reg.GaugeFunc("fleet.workers.connected", func() float64 {
		return float64(m.leases.WorkersConnected(workerWindow))
	})
	go m.leaseExpiryLoop()
	m.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go m.worker()
	}
	if m.store != nil {
		if err := m.recoverFromStore(); err != nil {
			m.rootCancel()
			return nil, err
		}
	}
	return m, nil
}

// Registry exposes the manager's operational metrics (the /metrics
// endpoint snapshots it).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Sweep looks a sweep up by ID.
func (m *Manager) Sweep(id string) (*Sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	return s, ok
}

// Sweeps returns every known sweep in submission order.
func (m *Manager) Sweeps() []*Sweep {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Sweep, 0, len(m.sweepOrd))
	for _, id := range m.sweepOrd {
		out = append(out, m.sweeps[id])
	}
	return out
}

// journal appends a store entry; without a store it is a no-op. Journal
// failures are logged, not fatal — the daemon keeps serving, it just
// loses durability for that transition.
func (m *Manager) journal(e jobstore.Entry) {
	if m.store == nil {
		return
	}
	if err := m.store.Append(e); err != nil {
		m.log.Error("journal append failed", "kind", e.Kind, "id", e.ID, "state", e.State, "err", err)
	}
}

// journalJob appends a plain state transition for a job.
func (m *Manager) journalJob(j *Job, state string, err error) {
	e := jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: state,
		Sweep: j.sweepID, Label: j.label, CacheKey: j.cacheKey, Attempt: j.Attempts()}
	if err != nil {
		e.Error = err.Error()
	}
	m.journal(e)
}

// Submit validates nothing (callers decode+validate the request) and
// enqueues a job, serving it straight from the result cache when the
// content address hits. ErrQueueFull and ErrDraining report backpressure
// and shutdown respectively.
func (m *Manager) Submit(req JobRequest) (*Job, error) {
	key := req.CacheKey()
	if res, ok := m.cache.get(key); ok {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return nil, ErrDraining
		}
		j := newCachedJob(m.nextIDLocked(), req, res)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
		m.submitted.Add(1)
		m.cacheHits.Add(1)
		m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: string(StateCompleted),
			CacheKey: key, Request: marshalRequest(req)})
		m.log.Info("job cache hit", "job", j.id, "key", key)
		return j, nil
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	j := newJob(m.nextIDLocked(), req)
	select {
	case m.queue <- j:
	default:
		m.seq-- // ID not spent
		m.mu.Unlock()
		m.queueRejects.Add(1)
		m.log.Warn("job rejected: queue full", "depth", cap(m.queue))
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()
	m.submitted.Add(1)
	m.cacheMisses.Add(1)
	m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: string(StateQueued),
		CacheKey: key, Request: marshalRequest(req)})
	m.log.Info("job queued", "job", j.id, "key", key,
		"policy", j.req.Config.PolicyName, "mix", j.req.Config.MixID+1)
	return j, nil
}

// marshalRequest renders a request for its creation journal entry.
func marshalRequest(req JobRequest) json.RawMessage {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil // recovery will fail the job; better than a corrupt entry
	}
	return blob
}

// SubmitSweep expands a validated spec into child jobs sharing a sweep
// ID and starts the sweep's scheduler, which admits children into the
// execution queue under the spec's concurrency cap. Children whose
// content address hits the cache complete immediately without running.
func (m *Manager) SubmitSweep(spec SweepSpec) (*Sweep, error) {
	children, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	specRaw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("sweep spec: %w", err)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.sweepSeq++
	sw := &Sweep{
		id:      fmt.Sprintf("sweep-%06d", m.sweepSeq),
		spec:    spec,
		specRaw: specRaw,
		created: time.Now(),
		state:   SweepRunning,
	}
	jobs := make([]*Job, 0, len(children))
	var hits int
	for _, c := range children {
		var j *Job
		if res, ok := m.cache.get(c.Request.CacheKey()); ok {
			j = newCachedJob(m.nextIDLocked(), c.Request, res)
			hits++
		} else {
			j = newJob(m.nextIDLocked(), c.Request)
		}
		j.sweepID, j.label = sw.id, c.Label
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		sw.children = append(sw.children, j.id)
		jobs = append(jobs, j)
	}
	m.sweeps[sw.id] = sw
	m.sweepOrd = append(m.sweepOrd, sw.id)
	m.mu.Unlock()

	m.sweepsSubd.Add(1)
	m.submitted.Add(uint64(len(jobs)))
	m.cacheHits.Add(uint64(hits))
	m.cacheMisses.Add(uint64(len(jobs) - hits))
	m.journal(jobstore.Entry{Kind: jobstore.KindSweep, ID: sw.id,
		State: string(SweepRunning), Spec: specRaw, Children: sw.Children()})
	for _, j := range jobs {
		state := string(StateQueued)
		if j.State() == StateCompleted {
			state = string(StateCompleted)
		}
		m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: state,
			Sweep: sw.id, Label: j.label, CacheKey: j.cacheKey, Request: marshalRequest(j.req)})
	}
	m.log.Info("sweep submitted", "sweep", sw.id, "name", spec.Name,
		"children", len(jobs), "cache_hits", hits, "concurrency", spec.concurrency())

	m.wg.Add(1)
	go m.runSweep(sw, jobs)
	return sw, nil
}

// nextIDLocked mints the next job ID; the caller holds m.mu.
func (m *Manager) nextIDLocked() string {
	m.seq++
	return fmt.Sprintf("job-%06d", m.seq)
}

// runSweep is the per-sweep scheduler goroutine: it admits children
// into the execution queue at most `concurrency` at a time (blocking —
// sweeps pace themselves instead of tripping queue backpressure) and
// finalizes the sweep when every child is terminal. A drain cancels
// children not yet admitted; the sweep ends canceled and a restart over
// the same store resumes it.
func (m *Manager) runSweep(sw *Sweep, jobs []*Job) {
	defer m.wg.Done()
	if sw.spec.Plan == PlanAnalytic {
		m.planSweep(sw, jobs)
	}
	sem := make(chan struct{}, sw.spec.concurrency())
	var watchers sync.WaitGroup
	aborted := false
	for _, j := range jobs {
		if aborted {
			m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
			continue
		}
		if j.State().Terminal() { // cache hit or recovered-complete child
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-m.drainc:
			aborted = true
			m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
			continue
		}
		if !m.enqueueBlocking(j) {
			<-sem
			aborted = true
			m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
			continue
		}
		watchers.Add(1)
		go func(j *Job) {
			defer watchers.Done()
			j.awaitTerminal()
			<-sem
		}(j)
	}
	watchers.Wait()
	state := SweepCompleted
	if aborted {
		state = SweepCanceled
	}
	if sw.finalize(state) {
		m.journal(jobstore.Entry{Kind: jobstore.KindSweep, ID: sw.id, State: string(state)})
		if state == SweepCompleted {
			m.sweepsDone.Add(1)
		}
		m.log.Info("sweep finished", "sweep", sw.id, "state", state, "children", len(sw.Children()))
	}
}

// planSweep is the coarse-to-fine screen: it estimates every pending
// child with the analytic fast path (in parallel, at the sweep's own
// concurrency cap) and retires — state "screened", never simulated —
// each child that another child safely dominates on the lifetime × IPC
// plane beyond the estimates' combined error bounds. The planner fails
// open: a child whose estimate errors (or is refused by a drain) is
// simply kept, because screening must never cost a result it cannot
// prove redundant. Estimates are attached to kept children too, so the
// sweep status reports analytic-vs-simulated deltas per child.
func (m *Manager) planSweep(sw *Sweep, jobs []*Job) {
	ests := make([]*analytic.Estimate, len(jobs))
	tasks := make([]cliutil.Task, 0, len(jobs))
	for i, j := range jobs {
		if j.State().Terminal() {
			continue
		}
		i, j := i, j
		tasks = append(tasks, cliutil.Task{Name: "plan/" + j.id, Run: func() error {
			resp, err := m.Estimate(m.rootCtx, sw.spec.planSpec(j.req))
			if err != nil {
				return err
			}
			est := resp.Estimate
			ests[i] = &est
			j.setEstimate(est)
			return nil
		}})
	}
	if len(tasks) == 0 {
		return
	}
	results := cliutil.RunTasks(tasks, cliutil.PoolConfig{Workers: sw.spec.concurrency()})
	for _, r := range results {
		if r.Failed() {
			m.log.Warn("sweep plan estimate failed, keeping child", "sweep", sw.id,
				"task", r.Name, "err", r.Err)
		}
	}

	idx := make([]int, 0, len(jobs))
	pts := make([]experiments.ParetoPoint, 0, len(jobs))
	for i, est := range ests {
		if est == nil {
			continue
		}
		life := est.LifetimeMonths
		if est.Censored {
			life = math.Inf(1)
		}
		pts = append(pts, experiments.ParetoPoint{
			Lifetime:       life,
			IPC:            est.YoungIPC,
			LifetimeMargin: est.LifetimeErrorBound,
			IPCMargin:      est.IPCErrorBound,
		})
		idx = append(idx, i)
	}
	keep := experiments.ParetoFrontier(pts)
	screened := 0
	for k, onFrontier := range keep {
		if onFrontier {
			continue
		}
		m.finishJob(jobs[idx[k]], StateScreened, nil, nil, cliutil.TaskResult{})
		screened++
	}
	m.log.Info("sweep planned", "sweep", sw.id, "estimated", len(pts),
		"screened", screened, "kept", len(pts)-screened)
}

// enqueueBlocking queues a job, waiting for space instead of rejecting;
// it fails only once the manager starts draining.
func (m *Manager) enqueueBlocking(j *Job) bool {
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return false
		}
		select {
		case m.queue <- j:
			m.mu.Unlock()
			return true
		default:
		}
		m.mu.Unlock()
		select {
		case <-m.drainc:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and returns when the workers are idle. If ctx expires first the
// remaining jobs are canceled (they stop at the next epoch boundary) and
// Drain still waits for the workers to observe that before returning the
// context error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainc)
	}
	m.mu.Unlock()
	// A remote-only coordinator has no local pool to drain the queue,
	// and fleet acquires are refused once draining — cancel what queued
	// jobs remain so sweep watchers (and therefore m.wg) can finish.
	// In-flight leases still complete through CompleteLease or expire
	// into a draining requeue, which also cancels.
	if m.opts.Workers == 0 {
		for {
			select {
			case j := <-m.queue:
				m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
				continue
			default:
			}
			break
		}
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Close shuts the manager down without grace: in-flight jobs are
// canceled at their next epoch boundary. Safe to call after Drain.
func (m *Manager) Close() {
	m.rootCancel()
	m.Drain(context.Background())
}

// worker pulls jobs until draining starts, then drains the queue and
// exits. Any job enqueued before the drain flag flipped is in the
// buffer before drainc closes (both happen under m.mu), so graceful
// drains never strand a queued job.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case j := <-m.queue:
			m.runJob(j)
		case <-m.drainc:
			for {
				select {
				case j := <-m.queue:
					m.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// observeDuration folds a completed run's wall time into the EWMA the
// Retry-After estimate reads.
func (m *Manager) observeDuration(d time.Duration) {
	const alpha = 0.3
	for {
		old := m.meanNanos.Load()
		mean := float64(d)
		if old != 0 {
			mean = (1-alpha)*math.Float64frombits(old) + alpha*float64(d)
		}
		if m.meanNanos.CompareAndSwap(old, math.Float64bits(mean)) {
			return
		}
	}
}

// RetryAfterSeconds estimates how long a rejected submitter should wait
// before the queue has space: the backlog ahead of it divided across
// the workers, at the observed mean job duration, clamped to [1, 120].
// Before any job has completed it answers the floor.
func (m *Manager) RetryAfterSeconds() int {
	mean := math.Float64frombits(m.meanNanos.Load())
	if mean <= 0 {
		return 1
	}
	backlog := float64(len(m.queue) + 1)
	workers := m.opts.Workers
	if workers < 1 {
		workers = 1 // remote-only: assume at least one fleet worker
	}
	secs := int(math.Ceil(mean * backlog / float64(workers) / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	if secs > 120 {
		secs = 120
	}
	return secs
}

// runJob executes one attempt of a job behind the recover barrier. A
// transient failure (panic, per-attempt timeout) within the retry
// budget goes back on the queue through requeueJob — the same path
// lease expiry uses — so the worker is free during the backoff and the
// retry/requeue accounting cannot drift between the two.
func (m *Manager) runJob(j *Job) {
	if hook := m.beforeRun; hook != nil {
		hook(j)
	}
	if !j.markRunning() {
		return
	}
	m.running.Add(1)
	defer m.running.Add(-1)
	m.journalJob(j, string(StateRunning), nil)

	attempt := j.beginAttempt()
	start := time.Now()
	ctx := m.rootCtx
	cancel := context.CancelFunc(func() {})
	if m.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.opts.JobTimeout)
	}
	j.cancel = cancel

	var res *Result
	outcome := cliutil.RunTask(cliutil.Task{
		Name: j.id,
		Run: func() error {
			if hook := m.beforeAttempt; hook != nil {
				if err := hook(j, attempt); err != nil {
					return err
				}
			}
			r, err := m.simulate(ctx, j)
			res = r
			return err
		},
	}, 0)
	cancel()

	err := outcome.Err
	if err == nil {
		m.observeDuration(time.Since(start))
		m.finishJob(j, StateCompleted, res, nil, outcome)
		return
	}
	if errors.Is(err, context.Canceled) {
		m.finishJob(j, StateCanceled, nil, err, outcome)
		return
	}
	transient := outcome.Panicked || outcome.TimedOut || errors.Is(err, context.DeadlineExceeded)
	if transient && attempt < m.opts.Retries+1 && m.rootCtx.Err() == nil {
		if m.requeueJob(j, requeueRetry, attempt, "", "", err) {
			return
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("job timeout %v exceeded after %d attempt(s)", m.opts.JobTimeout, attempt)
	}
	m.finishJob(j, StateFailed, nil, err, outcome)
}

// requeueReason distinguishes why a running job goes back on the queue.
type requeueReason int

const (
	// requeueRetry: the attempt failed transiently and the retry budget
	// allows another (jittered backoff applies).
	requeueRetry requeueReason = iota
	// requeueLease: the job's fleet lease expired; requeue immediately
	// (the backoff already happened — it was the missed TTL).
	requeueLease
)

// requeueJob is the single path every requeue takes — local retry
// backoff and fleet lease expiry alike — so the counters, journal
// entries, and backoff accounting cannot drift between them. It flips
// the job running → queued, journals the transition (with the worker
// and lease for expiries), and re-enqueues after the reason's delay
// without holding a pool worker. False means the job was not running
// anymore (already terminal, or racing another requeue) and nothing
// was done.
func (m *Manager) requeueJob(j *Job, reason requeueReason, attempt int, worker, lease string, cause error) bool {
	if !j.markRequeued() {
		return false
	}
	var delay time.Duration
	entry := jobstore.Entry{Kind: jobstore.KindJob, ID: j.id,
		Sweep: j.sweepID, Label: j.label, CacheKey: j.cacheKey,
		Attempt: attempt, Worker: worker, Lease: lease}
	if cause != nil {
		entry.Error = cause.Error()
	}
	switch reason {
	case requeueRetry:
		delay = m.opts.RetryBackoff.Delay(attempt, nil)
		m.retried.Add(1)
		entry.State = stateRetrying
		m.log.Warn("job attempt failed, retrying", "job", j.id, "sweep", j.sweepID,
			"worker", worker, "attempt", attempt, "of", m.opts.Retries+1,
			"backoff", delay.Round(time.Millisecond), "err", cause)
	case requeueLease:
		m.leasesRequeued.Add(1)
		entry.State = stateRequeued
		m.log.Warn("job requeued", "job", j.id, "sweep", j.sweepID,
			"worker", worker, "lease", lease, "attempt", attempt, "err", cause)
	}
	m.journal(entry)

	// The re-enqueue goroutine joins m.wg so Drain waits for it — but
	// only when the manager is not already draining (Add would race
	// Drain's Wait); a draining manager cancels the job on the spot,
	// which is what enqueueBlocking would do anyway.
	m.mu.Lock()
	draining := m.draining
	if !draining {
		m.wg.Add(1)
	}
	m.mu.Unlock()
	if draining {
		m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
		return true
	}
	go func() {
		defer m.wg.Done()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-m.rootCtx.Done():
				m.finishJob(j, StateCanceled, nil, context.Canceled, cliutil.TaskResult{})
				return
			}
		}
		if !m.enqueueBlocking(j) {
			m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
		}
	}()
	return true
}

// finishJob publishes a job's terminal state: counters, cache and
// artifact on success, journal entry always. The artifact is written
// before its journal entry, so a journaled completion implies the
// artifact exists (at-least-once execution, idempotent artifacts) —
// and before j.finish flips the in-memory state, so an observer woken
// by awaitTerminal can already read the artifact.
func (m *Manager) finishJob(j *Job, state JobState, res *Result, err error, outcome cliutil.TaskResult) {
	var sha string
	if state == StateCompleted {
		sha = m.storeResult(j, res)
	}
	if !j.finish(state, res, err) {
		// Already terminal: a racing completion (remote upload vs local
		// re-run) or a cancel chasing a finished job. The first terminal
		// state won; counting or journaling a second would lie.
		return
	}
	switch state {
	case StateCompleted:
		m.cache.put(j.cacheKey, res)
		m.completed.Add(1)
		m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: string(StateCompleted),
			Sweep: j.sweepID, Label: j.label, CacheKey: j.cacheKey,
			Attempt: j.Attempts(), ArtifactSHA: sha})
		m.log.Info("job completed", "job", j.id, "sweep", j.sweepID,
			"mean_ipc", res.Summary.MeanIPC, "epochs", len(res.Epochs), "attempts", j.Attempts())
	case StateCanceled:
		m.canceled.Add(1)
		m.journalJob(j, string(StateCanceled), err)
		m.log.Info("job canceled", "job", j.id, "sweep", j.sweepID)
	case StateScreened:
		m.screened.Add(1)
		m.journalJob(j, string(StateScreened), nil)
		m.log.Info("job screened by analytic planner", "job", j.id, "sweep", j.sweepID, "label", j.label)
	default:
		m.failed.Add(1)
		m.journalJob(j, string(StateFailed), err)
		m.log.Error("job failed", "job", j.id, "sweep", j.sweepID,
			"err", err, "panicked", outcome.Panicked, "attempts", j.Attempts())
	}
}

// storeResult writes the result's artifact and returns its SHA-256, or
// "" when the manager has no store or the write failed (recovery then
// re-runs the job instead of loading a blob that is not there).
func (m *Manager) storeResult(j *Job, res *Result) string {
	if m.store == nil {
		return ""
	}
	blob, err := encodeResult(j.cacheKey, res)
	if err != nil {
		m.log.Error("artifact encode failed", "job", j.id, "key", j.cacheKey, "err", err)
		return ""
	}
	sha, err := m.store.PutArtifact(j.cacheKey, blob)
	if err != nil {
		m.log.Error("artifact write failed", "job", j.id, "key", j.cacheKey, "err", err)
		return ""
	}
	return sha
}

// simulate builds and measures the job's run, streaming epochs and
// progress into the job as it goes and journaling throttled checkpoints.
func (m *Manager) simulate(ctx context.Context, j *Job) (*Result, error) {
	h, err := j.req.Config.NewRunHandle()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if j.req.Capacity < 1 {
		h.PreAge(j.req.Capacity)
	}
	hooks := core.RunHooks{
		OnEpoch:    j.addEpoch,
		OnProgress: j.setProgress,
	}
	if m.store != nil {
		hooks.OnCheckpoint = func(cp core.Checkpoint) {
			if !j.shouldCheckpoint(m.opts.CheckpointEvery) {
				return
			}
			m.journal(jobstore.Entry{Kind: jobstore.KindJob, ID: j.id, State: jobstore.StateCheckpoint,
				Progress: cp.Cycles, Total: cp.TotalCycles})
		}
	}
	sum, err := h.MeasureCtx(ctx, j.req.WarmupCycles, j.req.MeasureCycles, hooks)
	if err != nil {
		return nil, err
	}
	winner := -1
	if w, ok := h.DuelingWinner(); ok {
		winner = w
	}
	return &Result{
		Summary:    sum,
		Epochs:     h.EpochRing().Samples(),
		CPthWinner: winner,
	}, nil
}

// recoverFromStore replays the journal into live state: completed jobs
// come back served from their artifacts (hash-verified when the journal
// recorded a digest), interrupted jobs are re-enqueued to run again from
// their recorded requests — the simulator is bit-exact deterministic, so
// the re-run produces the same artifact bytes — and unfinished sweeps
// resume scheduling, skipping children that already have results.
func (m *Manager) recoverFromStore() error {
	entries, err := jobstore.Replay(m.store.Root())
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	red := jobstore.Reduce(entries)

	sweepState := make(map[string]string, len(red.Sweeps))
	for _, sr := range red.Sweeps {
		sweepState[sr.ID] = sr.State
	}

	var requeue []*Job
	for _, rec := range red.Jobs {
		if n, ok := parseSeq(rec.ID, "job"); ok && n > m.seq {
			m.seq = n
		}
		j, runnable := m.rebuildJob(rec, sweepState[rec.Sweep])
		m.mu.Lock()
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
		m.recovered.Add(1)
		if runnable && rec.Sweep == "" {
			requeue = append(requeue, j) // sweep children are re-admitted by their scheduler
		}
	}

	for _, sr := range red.Sweeps {
		if n, ok := parseSeq(sr.ID, "sweep"); ok && n > m.sweepSeq {
			m.sweepSeq = n
		}
		sw := &Sweep{id: sr.ID, created: time.Now(), children: append([]string(nil), sr.Children...)}
		spec, err := DecodeSweepSpec(sr.Spec)
		switch {
		case err != nil:
			// The journaled spec was validated before it was written, so
			// this is disk-level damage; the sweep cannot resume.
			m.log.Error("recovered sweep has an unreadable spec", "sweep", sr.ID, "err", err)
			sw.state, sw.finished = SweepCanceled, time.Now()
		case sr.State == string(SweepCompleted):
			sw.spec, sw.state, sw.finished = spec, SweepCompleted, time.Now()
		default:
			sw.spec, sw.state = spec, SweepRunning
		}
		m.mu.Lock()
		m.sweeps[sw.id] = sw
		m.sweepOrd = append(m.sweepOrd, sw.id)
		jobs := make([]*Job, 0, len(sw.children))
		for _, id := range sw.children {
			if j, ok := m.jobs[id]; ok {
				jobs = append(jobs, j)
			}
		}
		m.mu.Unlock()
		if sw.State() == SweepRunning {
			m.log.Info("resuming sweep", "sweep", sw.id, "children", len(jobs))
			m.wg.Add(1)
			go m.runSweep(sw, jobs)
		}
	}

	m.log.Info("journal replayed", "entries", len(entries),
		"jobs", len(red.Jobs), "sweeps", len(red.Sweeps), "requeued", len(requeue))

	// Re-enqueue interrupted standalone jobs off the constructor path —
	// there may be more of them than the queue holds.
	if len(requeue) > 0 {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for _, j := range requeue {
				if !m.enqueueBlocking(j) {
					m.finishJob(j, StateCanceled, nil, ErrDraining, cliutil.TaskResult{})
				}
			}
		}()
	}
	return nil
}

// rebuildJob reconstructs one job from its reduced journal record,
// returning it plus whether it still needs to run. Completed jobs load
// their artifact (missing or corrupt → re-run); failed jobs stay
// failed; canceled standalone jobs stay canceled, but canceled children
// of an unfinished sweep re-run — the cancel came from a drain, and the
// resumed sweep still owes their results.
func (m *Manager) rebuildJob(rec *jobstore.JobRecord, ownerState string) (j *Job, runnable bool) {
	req, reqErr := DecodeJobRequest(rec.Request)
	if len(rec.Request) == 0 {
		reqErr = errors.New("journal holds no request document")
	}
	j = newJob(rec.ID, req)
	j.sweepID, j.label, j.recovered = rec.Sweep, rec.Label, true
	j.attempts = rec.Attempt
	if rec.CacheKey != "" {
		j.cacheKey = rec.CacheKey
	}
	if reqErr != nil {
		j.finish(StateFailed, nil, fmt.Errorf("unrecoverable: %w", reqErr))
		return j, false
	}
	switch rec.State {
	case string(StateCompleted):
		data, ok, err := m.store.GetArtifact(j.cacheKey, rec.ArtifactSHA)
		if err == nil && ok {
			if res, derr := decodeResult(data); derr == nil {
				j.completeFromCache(res)
				m.cache.put(j.cacheKey, res)
				return j, false
			} else {
				err = derr
			}
		}
		if err != nil {
			m.log.Warn("completed job's artifact unusable, re-running", "job", j.id, "key", j.cacheKey, "err", err)
		} else {
			m.log.Warn("completed job's artifact missing, re-running", "job", j.id, "key", j.cacheKey)
		}
		return j, true
	case string(StateFailed):
		j.finish(StateFailed, nil, errors.New(rec.Error))
		return j, false
	case string(StateScreened):
		// The planner's verdict is final: the dominating sibling's result
		// is (or will be) in the store, and re-screening after a restart
		// would re-run every calibration for nothing.
		j.finish(StateScreened, nil, nil)
		return j, false
	case string(StateCanceled):
		if rec.Sweep != "" && ownerState != string(SweepCompleted) {
			return j, true // drain-canceled child of a sweep we will resume
		}
		j.finish(StateCanceled, nil, errors.New(rec.Error))
		return j, false
	default: // queued, running, retrying, or a torn creation → run it
		return j, true
	}
}

// parseSeq extracts the numeric suffix of a "prefix-%06d" identifier.
func parseSeq(id, prefix string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(id, prefix+"-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// SweepStatus assembles the wire form of a sweep, optionally with the
// per-child rows.
func (m *Manager) SweepStatus(sw *Sweep, withChildren bool) SweepStatus {
	state, created, finished, name, children := sw.snapshot()
	st := SweepStatus{
		ID:            sw.id,
		Name:          name,
		State:         state,
		CreatedAt:     created,
		TotalChildren: len(children),
	}
	if !finished.IsZero() {
		t := finished
		st.FinishedAt = &t
	}
	var ipcSum float64
	for _, id := range children {
		j, ok := m.Job(id)
		if !ok {
			continue
		}
		cs := j.Status()
		row := SweepChildStatus{ID: cs.ID, Label: cs.Label, State: cs.State,
			CacheHit: cs.CacheHit, Attempts: cs.Attempts, Error: cs.Error}
		if est := j.Estimate(); est != nil {
			ipc, life := est.YoungIPC, est.LifetimeMonths
			row.EstIPC, row.EstLifetimeMonths, row.EstCensored = &ipc, &life, est.Censored
		}
		switch cs.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateCompleted:
			st.Completed++
			if res := j.Result(); res != nil {
				ipc := res.Summary.MeanIPC
				ipcSum += ipc
				row.MeanIPC = &ipc
			}
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		case StateScreened:
			st.Screened++
		}
		if cs.CacheHit {
			st.CacheHits++
		}
		if cs.Attempts > 1 {
			st.Retried++
		}
		if withChildren {
			st.Children = append(st.Children, row)
		}
	}
	if st.Completed > 0 {
		st.MeanIPC = ipcSum / float64(st.Completed)
	}
	return st
}
