package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Submission failure modes, mapped to HTTP statuses by the handlers
// (429 with Retry-After, and 503 respectively).
var (
	ErrQueueFull = errors.New("server: job queue full")
	ErrDraining  = errors.New("server: draining, not accepting jobs")
)

// Options tune a Manager. The zero value picks sensible daemon defaults.
type Options struct {
	// Workers caps concurrently running simulations; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects submissions with ErrQueueFull (backpressure, not
	// buffering). <= 0 defaults to 64.
	QueueDepth int
	// JobTimeout cancels a run that exceeds it (checkpoint-cancel at the
	// next epoch boundary); 0 disables the deadline.
	JobTimeout time.Duration
	// CacheSize bounds the content-addressed result cache; <= 0 uses 256.
	// Use NoCache to disable caching.
	CacheSize int
	// Logger receives structured job lifecycle events; nil discards them.
	Logger *slog.Logger
}

// NoCache as Options.CacheSize disables the result cache.
const NoCache = -1

// Manager owns the job queue, the worker pool and the result cache.
// Every simulation runs behind cliutil's recover barrier, so a panicking
// run becomes a failed job record instead of a dead daemon.
type Manager struct {
	opts       Options
	log        *slog.Logger
	cache      *resultCache
	queue      chan *Job
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
	reg        *metrics.Registry

	mu       sync.Mutex // guards jobs/order/draining/seq and queue sends vs close
	jobs     map[string]*Job
	order    []string
	draining bool
	seq      uint64

	submitted    atomic.Uint64
	completed    atomic.Uint64
	failed       atomic.Uint64
	canceled     atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	queueRejects atomic.Uint64
	running      atomic.Int64

	// beforeRun, when set, runs on the worker goroutine after a job is
	// claimed and before it simulates. Tests use it to hold a worker busy
	// deterministically (queue-full and drain scenarios).
	beforeRun func(*Job)
}

// NewManager starts a manager: its workers are live and pulling from the
// queue when it returns. Stop it with Drain (graceful) or Close.
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	cacheSize := opts.CacheSize
	switch {
	case cacheSize == NoCache:
		cacheSize = 0
	case cacheSize <= 0:
		cacheSize = 256
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		log:        log,
		cache:      newResultCache(cacheSize),
		queue:      make(chan *Job, opts.QueueDepth),
		rootCtx:    ctx,
		rootCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	m.reg = metrics.NewRegistry()
	counter := func(name string, v *atomic.Uint64) {
		m.reg.CounterFunc(name, v.Load)
	}
	counter("server.jobs.submitted", &m.submitted)
	counter("server.jobs.completed", &m.completed)
	counter("server.jobs.failed", &m.failed)
	counter("server.jobs.canceled", &m.canceled)
	counter("server.cache.hits", &m.cacheHits)
	counter("server.cache.misses", &m.cacheMisses)
	counter("server.queue.rejects", &m.queueRejects)
	m.reg.GaugeFunc("server.queue.depth", func() float64 { return float64(len(m.queue)) })
	m.reg.GaugeFunc("server.jobs.running", func() float64 { return float64(m.running.Load()) })
	m.reg.GaugeFunc("server.cache.entries", func() float64 { return float64(m.cache.len()) })
	m.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go m.worker()
	}
	return m
}

// Registry exposes the manager's operational metrics (the /metrics
// endpoint snapshots it).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Submit validates nothing (callers decode+validate the request) and
// enqueues a job, serving it straight from the result cache when the
// content address hits. ErrQueueFull and ErrDraining report backpressure
// and shutdown respectively.
func (m *Manager) Submit(req JobRequest) (*Job, error) {
	key := req.CacheKey()
	if res, ok := m.cache.get(key); ok {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return nil, ErrDraining
		}
		j := newCachedJob(m.nextIDLocked(), req, res)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
		m.submitted.Add(1)
		m.cacheHits.Add(1)
		m.log.Info("job cache hit", "job", j.id, "key", key)
		return j, nil
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	j := newJob(m.nextIDLocked(), req)
	select {
	case m.queue <- j:
	default:
		m.seq-- // ID not spent
		m.mu.Unlock()
		m.queueRejects.Add(1)
		m.log.Warn("job rejected: queue full", "depth", cap(m.queue))
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()
	m.submitted.Add(1)
	m.cacheMisses.Add(1)
	m.log.Info("job queued", "job", j.id, "key", key,
		"policy", j.req.Config.PolicyName, "mix", j.req.Config.MixID+1)
	return j, nil
}

// nextIDLocked mints the next job ID; the caller holds m.mu.
func (m *Manager) nextIDLocked() string {
	m.seq++
	return fmt.Sprintf("job-%06d", m.seq)
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and returns when the workers are idle. If ctx expires first the
// remaining jobs are canceled (they stop at the next epoch boundary) and
// Drain still waits for the workers to observe that before returning the
// context error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Close shuts the manager down without grace: in-flight jobs are
// canceled at their next epoch boundary. Safe to call after Drain.
func (m *Manager) Close() {
	m.rootCancel()
	m.Drain(context.Background())
}

// worker pulls jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job behind the recover barrier and publishes its
// terminal state.
func (m *Manager) runJob(j *Job) {
	if hook := m.beforeRun; hook != nil {
		hook(j)
	}
	if !j.markRunning() {
		return
	}
	m.running.Add(1)
	defer m.running.Add(-1)

	ctx := m.rootCtx
	cancel := context.CancelFunc(func() {})
	if m.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.opts.JobTimeout)
	}
	defer cancel()
	j.cancel = cancel

	var res *Result
	outcome := cliutil.RunTask(cliutil.Task{
		Name: j.id,
		Run: func() error {
			r, err := m.simulate(ctx, j)
			res = r
			return err
		},
	}, 0)

	err := outcome.Err
	switch {
	case err == nil:
		j.finish(StateCompleted, res, nil)
		m.cache.put(j.cacheKey, res)
		m.completed.Add(1)
		m.log.Info("job completed", "job", j.id,
			"mean_ipc", res.Summary.MeanIPC, "epochs", len(res.Epochs))
	case errors.Is(err, context.Canceled):
		j.finish(StateCanceled, nil, err)
		m.canceled.Add(1)
		m.log.Info("job canceled", "job", j.id)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, fmt.Errorf("job timeout %v exceeded", m.opts.JobTimeout))
		m.failed.Add(1)
		m.log.Warn("job timed out", "job", j.id, "timeout", m.opts.JobTimeout)
	default:
		j.finish(StateFailed, nil, err)
		m.failed.Add(1)
		m.log.Error("job failed", "job", j.id, "err", err, "panicked", outcome.Panicked)
	}
}

// simulate builds and measures the job's run, streaming epochs and
// progress into the job as it goes.
func (m *Manager) simulate(ctx context.Context, j *Job) (*Result, error) {
	h, err := j.req.Config.NewRunHandle()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if j.req.Capacity < 1 {
		h.PreAge(j.req.Capacity)
	}
	sum, err := h.MeasureCtx(ctx, j.req.WarmupCycles, j.req.MeasureCycles, core.RunHooks{
		OnEpoch:    j.addEpoch,
		OnProgress: j.setProgress,
	})
	if err != nil {
		return nil, err
	}
	winner := -1
	if w, ok := h.DuelingWinner(); ok {
		winner = w
	}
	return &Result{
		Summary:    sum,
		Epochs:     h.EpochRing().Samples(),
		CPthWinner: winner,
	}, nil
}
