package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fleet"
	"repro/internal/jobstore"
)

// leaseTestBody is a fast submission for lease-lifecycle tests.
const leaseTestBody = `{
  "config": {"llc_sets": 128, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 100000},
  "warmup_cycles": 50000,
  "measure_cycles": 200000
}`

// submitOne decodes and submits a request directly on the manager.
func submitOne(t *testing.T, m *Manager, body string) *Job {
	t.Helper()
	req, err := DecodeJobRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// executeGrant runs a grant's request through the worker executor and
// returns the artifact bytes plus their digest.
func executeGrant(t *testing.T, g *fleet.Grant) ([]byte, string) {
	t.Helper()
	artifact, err := RunRequestArtifact(context.Background(), g.Request, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(artifact)
	return artifact, hex.EncodeToString(sum[:])
}

// TestLeaseLifecycleHTTPHappyPath drives acquire → heartbeat → complete
// over the real HTTP surface.
func TestLeaseLifecycleHTTPHappyPath(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: 8})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	j := submitOne(t, m, leaseTestBody)

	// Acquire.
	resp, err := http.Post(srv.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1","wait_millis":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire: %d %s", resp.StatusCode, body)
	}
	var g fleet.Grant
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatal(err)
	}
	if g.JobID != j.ID() || g.Token == "" || g.Attempt != 1 || g.CacheKey != j.CacheKey() {
		t.Fatalf("grant = %+v", g)
	}
	if st := j.Status(); st.State != StateRunning || st.Worker != "w1" {
		t.Fatalf("status after grant = %+v", st)
	}

	// The lease listing shows it.
	resp, err = http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var active []fleet.LeaseInfo
	if err := json.Unmarshal(body, &active); err != nil {
		t.Fatal(err)
	}
	if len(active) != 1 || active[0].Worker != "w1" || active[0].JobID != j.ID() {
		t.Fatalf("leases = %+v", active)
	}

	// Heartbeat with progress.
	resp, err = http.Post(srv.URL+"/v1/leases/"+g.Token+"/heartbeat", "application/json",
		strings.NewReader(`{"progress_cycles":100,"total_cycles":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: %d", resp.StatusCode)
	}
	if st := j.Status(); st.ProgressCycles != 100 || st.TotalCycles != 1000 {
		t.Fatalf("progress not folded in: %+v", st)
	}

	// Complete with a real artifact.
	artifact, sha := executeGrant(t, &g)
	creq, _ := json.Marshal(fleet.CompleteRequest{Artifact: artifact, ArtifactSHA: sha})
	resp, err = http.Post(srv.URL+"/v1/leases/"+g.Token+"/complete", "application/json",
		strings.NewReader(string(creq)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: %d %s", resp.StatusCode, body)
	}
	var cr fleet.CompleteResponse
	json.Unmarshal(body, &cr)
	if cr.Resolution != fleet.ResolutionCompleted || cr.JobID != j.ID() {
		t.Fatalf("complete response = %+v", cr)
	}
	if st := j.Status(); st.State != StateCompleted {
		t.Fatalf("job not completed: %+v", st)
	}
	if m.completed.Load() != 1 {
		t.Fatalf("completed counter = %d", m.completed.Load())
	}
	// A second completion on the dead token answers 410, not a rewrite.
	resp, err = http.Post(srv.URL+"/v1/leases/"+g.Token+"/complete", "application/json",
		strings.NewReader(string(creq)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("second complete: %d, want 410", resp.StatusCode)
	}
	if m.completed.Load() != 1 {
		t.Fatalf("completed counter drifted to %d", m.completed.Load())
	}
}

// TestLeaseExpiryRequeuesForSecondWorker kills the first worker (by
// never heartbeating) and checks the job requeues, a second worker
// completes it, and the revived first worker's late upload is refused
// without disturbing the single journaled terminal state.
func TestLeaseExpiryRequeuesForSecondWorker(t *testing.T) {
	dir := t.TempDir()
	store, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache,
		Store: store, LeaseTTL: 150 * time.Millisecond})

	j := submitOne(t, m, leaseTestBody)
	g1, err := m.AcquireLease(context.Background(), "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// w1 goes silent; the lease expires and the job is requeued.
	deadline := time.Now().Add(10 * time.Second)
	var g2 *fleet.Grant
	for g2 == nil {
		if time.Now().After(deadline) {
			t.Fatal("job never requeued after lease expiry")
		}
		g2, err = m.AcquireLease(context.Background(), "w2", 200*time.Millisecond)
		if err != nil && !errors.Is(err, ErrNoWork) {
			t.Fatal(err)
		}
	}
	if g2.JobID != j.ID() || g2.Attempt != 2 || g2.Token == g1.Token {
		t.Fatalf("second grant = %+v", g2)
	}
	if m.leasesRequeued.Load() != 1 {
		t.Fatalf("requeued counter = %d", m.leasesRequeued.Load())
	}
	if s := m.leases.Stats(); s.Expired != 1 {
		t.Fatalf("expired stat = %d", s.Expired)
	}

	// w2 completes.
	artifact, sha := executeGrant(t, g2)
	cr, err := m.CompleteLease(g2.Token, fleet.CompleteRequest{Artifact: artifact, ArtifactSHA: sha})
	if err != nil || cr.Resolution != fleet.ResolutionCompleted {
		t.Fatalf("w2 complete = %+v, %v", cr, err)
	}
	if st := j.Status(); st.State != StateCompleted || st.Worker != "w2" {
		t.Fatalf("status = %+v", st)
	}

	// The revived w1 uploads the identical bytes on its expired lease:
	// refused as gone, nothing double-counted.
	if _, err := m.CompleteLease(g1.Token, fleet.CompleteRequest{Artifact: artifact, ArtifactSHA: sha}); !errors.Is(err, fleet.ErrLeaseGone) {
		t.Fatalf("revived upload: %v, want ErrLeaseGone", err)
	}
	if m.completed.Load() != 1 || m.failed.Load() != 0 {
		t.Fatalf("counters completed=%d failed=%d", m.completed.Load(), m.failed.Load())
	}

	// Exactly one journaled terminal state, with the artifact digest.
	entries, err := jobstore.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	terminal := 0
	for _, e := range entries {
		if e.ID != j.ID() {
			continue
		}
		if JobState(e.State).Terminal() {
			terminal++
			if e.State != string(StateCompleted) || e.ArtifactSHA == "" || e.Worker != "w2" {
				t.Fatalf("terminal entry = %+v", e)
			}
		}
	}
	if terminal != 1 {
		t.Fatalf("journal has %d terminal entries, want exactly 1", terminal)
	}
	// And the stored artifact hash-verifies against the upload.
	data, ok, err := store.GetArtifact(j.CacheKey(), sha)
	if err != nil || !ok || string(data) != string(artifact) {
		t.Fatalf("stored artifact ok=%v err=%v match=%v", ok, err, string(data) == string(artifact))
	}
}

// TestDuplicateCompletionIdempotent exercises the revived-worker race
// on the ingestion path itself: a verified upload for a job that
// reached its terminal state a moment earlier is resolved as a
// duplicate by hash — no second count, no second journal entry.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache})
	j := submitOne(t, m, leaseTestBody)
	g, err := m.AcquireLease(context.Background(), "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	artifact, sha := executeGrant(t, g)
	res, key, err := decodeResultKeyed(artifact)
	if err != nil || key != j.CacheKey() {
		t.Fatal(err)
	}

	// The requeued copy of the job completed first (simulated directly:
	// this is the window between Peek and Resolve in CompleteLease).
	if !j.finish(StateCompleted, res, nil) {
		t.Fatal("setup finish failed")
	}
	lease := &fleet.Lease{Token: g.Token, JobID: g.JobID, Worker: "w1", Attempt: g.Attempt, Granted: time.Now()}
	if got := m.completeRemote(j, lease, res, artifact, sha); got != fleet.ResolutionDuplicate {
		t.Fatalf("resolution = %q, want duplicate", got)
	}
	if m.leasesDup.Load() != 1 || m.completed.Load() != 0 {
		t.Fatalf("dup=%d completed=%d", m.leasesDup.Load(), m.completed.Load())
	}
}

// TestCorruptArtifactRejectedWithoutPoisoning uploads garbage, a
// hash-mismatched body, and a wrong-key artifact; each is refused with
// the lease left active, and the honest retry then completes the job.
func TestCorruptArtifactRejectedWithoutPoisoning(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	j := submitOne(t, m, leaseTestBody)
	g, err := m.AcquireLease(context.Background(), "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	artifact, sha := executeGrant(t, g)

	post := func(req fleet.CompleteRequest) (int, string) {
		blob, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/leases/"+g.Token+"/complete", "application/json",
			strings.NewReader(string(blob)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	garbage := []byte(`{"not":"an artifact"}`)
	gsum := sha256.Sum256(garbage)
	cases := []fleet.CompleteRequest{
		// Declared hash does not match the bytes (bit rot in transit).
		{Artifact: artifact, ArtifactSHA: "deadbeef"},
		// Hash matches but the bytes are not a decodable artifact.
		{Artifact: garbage, ArtifactSHA: hex.EncodeToString(gsum[:])},
	}
	for i, c := range cases {
		status, body := post(c)
		if status != http.StatusBadRequest {
			t.Fatalf("case %d: status %d (%s), want 400", i, status, body)
		}
		if _, state := m.leases.Peek(g.Token); state != fleet.TokenActive {
			t.Fatalf("case %d poisoned the lease: %v", i, state)
		}
		if st := j.State(); st != StateRunning {
			t.Fatalf("case %d poisoned the job: %v", i, st)
		}
	}

	// The honest upload still lands on the same lease.
	status, body := post(fleet.CompleteRequest{Artifact: artifact, ArtifactSHA: sha})
	if status != http.StatusOK || !strings.Contains(body, fleet.ResolutionCompleted) {
		t.Fatalf("honest retry: %d %s", status, body)
	}
	if st := j.State(); st != StateCompleted {
		t.Fatalf("job = %v", st)
	}
	if m.failed.Load() != 0 {
		t.Fatalf("failed counter = %d", m.failed.Load())
	}
}

// TestRemoteTransientFailureSharesRetryPath checks a worker-reported
// transient failure rides the same requeue path as local retries: the
// retried counter moves, the job requeues with attempt 2, and
// exhaustion fails it terminally.
func TestRemoteTransientFailureSharesRetryPath(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache,
		Retries: 1, RetryBackoff: cliutil.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}})
	j := submitOne(t, m, leaseTestBody)

	g1, err := m.AcquireLease(context.Background(), "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := m.CompleteLease(g1.Token, fleet.CompleteRequest{Error: "engine panic", Transient: true})
	if err != nil || cr.Resolution != fleet.ResolutionRequeued {
		t.Fatalf("first failure = %+v, %v", cr, err)
	}
	if m.retried.Load() != 1 {
		t.Fatalf("retried counter = %d", m.retried.Load())
	}

	var g2 *fleet.Grant
	deadline := time.Now().Add(10 * time.Second)
	for g2 == nil {
		if time.Now().After(deadline) {
			t.Fatal("retry never requeued")
		}
		g2, err = m.AcquireLease(context.Background(), "w2", 100*time.Millisecond)
		if err != nil && !errors.Is(err, ErrNoWork) {
			t.Fatal(err)
		}
	}
	if g2.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", g2.Attempt)
	}
	// Budget exhausted: the next transient failure is terminal.
	cr, err = m.CompleteLease(g2.Token, fleet.CompleteRequest{Error: "engine panic", Transient: true})
	if err != nil || cr.Resolution != fleet.ResolutionFailed {
		t.Fatalf("second failure = %+v, %v", cr, err)
	}
	if st := j.Status(); st.State != StateFailed || !strings.Contains(st.Error, "engine panic") {
		t.Fatalf("status = %+v", st)
	}
	if m.retried.Load() != 1 || m.failed.Load() != 1 {
		t.Fatalf("retried=%d failed=%d", m.retried.Load(), m.failed.Load())
	}
}

// TestByteIdentityAcrossPlacement is the placement acceptance check:
// the same config run locally on one coordinator and via a remote
// worker lease on another produces the same content address and
// byte-identical stored artifacts.
func TestByteIdentityAcrossPlacement(t *testing.T) {
	// (a) Local execution on a coordinator's own pool.
	localDir := t.TempDir()
	localStore, err := jobstore.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	defer localStore.Close()
	mLocal := newTestManager(t, Options{Workers: 2, QueueDepth: 8, CacheSize: NoCache, Store: localStore})
	jLocal := submitOne(t, mLocal, leaseTestBody)
	jLocal.awaitTerminal()
	if jLocal.State() != StateCompleted {
		t.Fatalf("local job: %v (%v)", jLocal.State(), jLocal.Err())
	}

	// (b) Remote execution through a real fleet.Worker over HTTP.
	remoteDir := t.TempDir()
	remoteStore, err := jobstore.Open(remoteDir)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteStore.Close()
	mRemote := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache, Store: remoteStore})
	srv := httptest.NewServer(NewHandler(mRemote, nil))
	defer srv.Close()
	jRemote := submitOne(t, mRemote, leaseTestBody)

	w := &fleet.Worker{
		ID:          "placement-worker",
		Client:      &cliutil.HTTPClient{Base: srv.URL, Backoff: cliutil.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond}},
		Execute:     RunRequestArtifact,
		AcquireWait: 500 * time.Millisecond,
		Backoff:     cliutil.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	}
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	go func() { wdone <- w.Run(wctx, context.Background()) }()
	jRemote.awaitTerminal()
	wcancel()
	if err := <-wdone; err != nil {
		t.Fatal(err)
	}
	if jRemote.State() != StateCompleted {
		t.Fatalf("remote job: %v (%v)", jRemote.State(), jRemote.Err())
	}

	// Same content address, byte-identical artifacts.
	if jLocal.CacheKey() != jRemote.CacheKey() {
		t.Fatalf("cache keys differ: %s vs %s", jLocal.CacheKey(), jRemote.CacheKey())
	}
	a, ok, err := localStore.GetArtifact(jLocal.CacheKey(), "")
	if err != nil || !ok {
		t.Fatalf("local artifact: ok=%v err=%v", ok, err)
	}
	b, ok, err := remoteStore.GetArtifact(jRemote.CacheKey(), "")
	if err != nil || !ok {
		t.Fatalf("remote artifact: ok=%v err=%v", ok, err)
	}
	if string(a) != string(b) {
		t.Fatalf("artifacts differ across placement: %d vs %d bytes", len(a), len(b))
	}
	if st := jRemote.Status(); st.Worker != "placement-worker" {
		t.Fatalf("remote status = %+v", st)
	}
}

// TestFleetSweepAcrossWorkers fans a sweep out over two real workers
// sharing one remote-only coordinator.
func TestFleetSweepAcrossWorkers(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 16, CacheSize: NoCache})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	sweepBody := `{
	  "name": "fleet-fanout",
	  "base": {"config": {"llc_sets": 128, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 100000},
	           "warmup_cycles": 50000, "measure_cycles": 200000},
	  "axes": [{"field": "cpth", "values": [20, 30, 40]}],
	  "concurrency": 3
	}`
	spec, err := DecodeSweepSpec([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	var cancels []context.CancelFunc
	var dones []chan error
	for _, id := range []string{"wA", "wB"} {
		w := &fleet.Worker{
			ID:          id,
			Client:      &cliutil.HTTPClient{Base: srv.URL, Backoff: cliutil.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond}},
			Execute:     RunRequestArtifact,
			AcquireWait: 500 * time.Millisecond,
			Backoff:     cliutil.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx, context.Background()) }()
		cancels = append(cancels, cancel)
		dones = append(dones, done)
	}

	deadline := time.Now().Add(60 * time.Second)
	for sw.State() == SweepRunning {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", m.SweepStatus(sw, true))
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, c := range cancels {
		c()
	}
	for _, d := range dones {
		if err := <-d; err != nil {
			t.Fatal(err)
		}
	}
	st := m.SweepStatus(sw, true)
	if st.State != SweepCompleted || st.Completed != 3 {
		t.Fatalf("sweep = %+v", st)
	}
	workers := map[string]bool{}
	for _, id := range sw.Children() {
		j, _ := m.Job(id)
		status := j.Status()
		if status.Worker == "" {
			t.Fatalf("child %s has no worker: %+v", id, status)
		}
		workers[status.Worker] = true
	}
	if s := m.leases.Stats(); s.Granted < 3 || s.Completed < 3 {
		t.Fatalf("lease stats = %+v", s)
	}
	t.Logf("children ran on workers: %v", workers)
}

// TestLeasedJobRecoveredAfterRestart journals a lease grant, kills the
// coordinator without resolution, and checks a restart over the same
// store re-runs the job to completion — "leased" reads as interrupted.
func TestLeasedJobRecoveredAfterRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	j1 := submitOne(t, m1, leaseTestBody)
	if _, err := m1.AcquireLease(context.Background(), "w1", time.Second); err != nil {
		t.Fatal(err)
	}
	// Coordinator dies with the lease outstanding.
	m1.Close()
	store.Close()

	store2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2 := newTestManager(t, Options{Workers: 2, QueueDepth: 8, CacheSize: NoCache, Store: store2})
	j2, ok := m2.Job(j1.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID())
	}
	j2.awaitTerminal()
	if j2.State() != StateCompleted {
		t.Fatalf("recovered job = %v (%v)", j2.State(), j2.Err())
	}
	if st := j2.Status(); !st.Recovered {
		t.Fatalf("status = %+v", st)
	}
}

// TestMetricsPrometheusExposition checks content negotiation and the
// exposition grammar, fleet gauges included.
func TestMetricsPrometheusExposition(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: 8})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"simd_fleet_leases_active",
		"simd_fleet_leases_expired",
		"simd_fleet_leases_requeued",
		"simd_fleet_workers_connected",
		"simd_server_jobs_completed",
	} {
		if !strings.Contains(text, "\n"+want+" ") && !strings.HasPrefix(text, want+" ") {
			t.Errorf("exposition missing %s", want)
		}
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]* (NaN|[+-]Inf|[0-9.eE+-]+)$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
	}

	// Without the versioned Accept header the old text table remains.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "# HELP") {
		t.Fatal("default /metrics switched to Prometheus format")
	}

	// ?format=prometheus also selects the exposition.
	resp, err = http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "# TYPE simd_fleet_leases_active gauge") {
		t.Fatalf("format=prometheus: %s", body)
	}
}

// TestAcquireNoWorkAndDraining pins the 204 and 503 answers.
func TestAcquireNoWorkAndDraining(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: 8})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1","wait_millis":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle acquire: %d, want 204", resp.StatusCode)
	}
	if g := m.Registry().Snapshot().Gauges["fleet.workers.connected"]; g != 1 {
		t.Fatalf("workers connected = %v, want 1", g)
	}

	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining acquire: %d, want 503", resp.StatusCode)
	}
}

// TestRemoteOnlyDrainCancelsQueued checks a remote-only coordinator's
// drain does not hang on queued jobs no one will ever lease.
func TestRemoteOnlyDrainCancelsQueued(t *testing.T) {
	m := newTestManager(t, Options{Workers: -1, QueueDepth: 8, CacheSize: NoCache})
	j := submitOne(t, m, leaseTestBody)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("queued job after drain = %v", st)
	}
}
