package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
)

// SweepSpec is the POST /v1/sweeps body: a base job request plus axes of
// overrides whose cross product expands server-side into child jobs.
// One POST replaces a scripted loop of per-job submissions — the shape
// the paper's methodology takes (policy × CPth × mix grids, forecast
// operating points) and the unit of crash recovery: the spec is
// journaled verbatim, and a restarted daemon re-expands it
// deterministically to find the children it still owes.
type SweepSpec struct {
	// Name is an optional human label carried through status output.
	Name string `json:"name,omitempty"`
	// Base is the request every child starts from; fields omitted here
	// keep the job-submission defaults.
	Base JobRequest `json:"base"`
	// Axes are applied as a cross product, first axis slowest — the
	// expansion order is deterministic and part of the recovery
	// contract. An empty axis list expands to the single base job.
	Axes []SweepAxis `json:"axes"`
	// MaxChildren caps the expansion; a spec whose product exceeds it is
	// rejected before anything is queued. <= 0 selects
	// DefaultSweepChildren; the hard ceiling is MaxSweepChildren.
	MaxChildren int `json:"max_children"`
	// Concurrency caps how many of this sweep's children run or wait in
	// the execution queue at once (the rest stay pending in the sweep).
	// <= 0 selects DefaultSweepConcurrency.
	Concurrency int `json:"concurrency"`
	// Plan selects the coarse-to-fine planner. Empty (the default) runs
	// every child; PlanAnalytic first estimates each child with the
	// analytic fast path and fully simulates only the estimated Pareto
	// frontier (lifetime × young IPC) — children another child safely
	// dominates beyond the estimates' combined error bounds finish
	// "screened" without simulating.
	Plan string `json:"plan,omitempty"`
	// PlanCalibrationCycles sizes the planner's per-child calibration
	// window; <= 0 derives it from the base request (a quarter of
	// measure_cycles).
	PlanCalibrationCycles uint64 `json:"plan_calibration_cycles,omitempty"`
}

// PlanAnalytic is the SweepSpec.Plan value that enables analytic
// coarse-to-fine screening.
const PlanAnalytic = "analytic"

// SweepAxis is one override dimension: a field name from the sweep axis
// allowlist and the values it takes.
type SweepAxis struct {
	Field  string            `json:"field"`
	Values []json.RawMessage `json:"values"`
}

// Sweep expansion bounds and defaults.
const (
	DefaultSweepChildren    = 256
	MaxSweepChildren        = 1024
	DefaultSweepConcurrency = 4
	maxSweepConcurrency     = 256
)

// sweepAxisSetters is the allowlist of sweep axis fields: everything a
// child may vary, each with its typed application. Unknown fields are
// rejected at decode time — before any job is queued.
var sweepAxisSetters = map[string]func(*JobRequest, json.RawMessage) error{
	"policy":             func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.PolicyName) },
	"cpth":               func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.CPth) },
	"mix_id":             func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.MixID) },
	"seed":               func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.Seed) },
	"scale":              func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.Scale) },
	"th":                 func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.Th) },
	"tw":                 func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.Tw) },
	"llc_sets":           func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.LLCSets) },
	"sram_ways":          func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.SRAMWays) },
	"nvm_ways":           func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.NVMWays) },
	"l2_size_kb":         func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.L2SizeKB) },
	"epoch_cycles":       func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.EpochCycles) },
	"endurance_mean":     func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.EnduranceMean) },
	"endurance_cv":       func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.EnduranceCV) },
	"nvm_latency_factor": func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.NVMLatencyFactor) },
	"nvm_rrip":           func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.NVMRRIP) },
	"shards":             func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Config.Shards) },
	"tournament": func(r *JobRequest, v json.RawMessage) error {
		// Decode into a fresh bracket — overwriting through the base's
		// pointer would leak one child's bracket into its siblings.
		tc := new(core.TournamentConfig)
		if err := strictUnmarshal(v, tc); err != nil {
			return err
		}
		r.Config.Tournament = tc
		return nil
	},
	"capacity":       func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.Capacity) },
	"warmup_cycles":  func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.WarmupCycles) },
	"measure_cycles": func(r *JobRequest, v json.RawMessage) error { return json.Unmarshal(v, &r.MeasureCycles) },
}

func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// DecodeSweepSpec decodes a sweep submission strictly over the defaults
// (base = the job-submission defaults) and validates its shape. Child
// configs are validated separately by Expand.
func DecodeSweepSpec(data []byte) (SweepSpec, error) {
	spec := SweepSpec{Base: DefaultJobRequest()}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("sweep spec: %w", err)
	}
	if dec.More() {
		return spec, fmt.Errorf("sweep spec: trailing data after JSON document")
	}
	return spec, spec.Validate()
}

// Validate checks the spec's shape: known, unique axis fields with
// values, and bounds on expansion size and concurrency. It does not
// validate child configs — Expand does, per child.
func (s SweepSpec) Validate() error {
	if s.MaxChildren > MaxSweepChildren {
		return fmt.Errorf("sweep spec: max_children %d exceeds the ceiling %d", s.MaxChildren, MaxSweepChildren)
	}
	if s.Concurrency > maxSweepConcurrency {
		return fmt.Errorf("sweep spec: concurrency %d exceeds the ceiling %d", s.Concurrency, maxSweepConcurrency)
	}
	if s.Plan != "" && s.Plan != PlanAnalytic {
		return fmt.Errorf("sweep spec: unknown plan %q (valid: %q)", s.Plan, PlanAnalytic)
	}
	if s.PlanCalibrationCycles > core.MaxEpochCycles {
		return fmt.Errorf("sweep spec: plan_calibration_cycles %d exceeds the ceiling %d", s.PlanCalibrationCycles, core.MaxEpochCycles)
	}
	seen := make(map[string]bool, len(s.Axes))
	for i, ax := range s.Axes {
		if _, ok := sweepAxisSetters[ax.Field]; !ok {
			return fmt.Errorf("sweep spec: axis %d: unknown field %q", i, ax.Field)
		}
		if seen[ax.Field] {
			return fmt.Errorf("sweep spec: axis field %q repeated", ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep spec: axis %q has no values", ax.Field)
		}
	}
	return nil
}

// maxChildren resolves the effective expansion cap.
func (s SweepSpec) maxChildren() int {
	if s.MaxChildren <= 0 {
		return DefaultSweepChildren
	}
	return s.MaxChildren
}

// concurrency resolves the effective per-sweep concurrency cap.
func (s SweepSpec) concurrency() int {
	if s.Concurrency <= 0 {
		return DefaultSweepConcurrency
	}
	return s.Concurrency
}

// planSpec derives the analytic estimate spec the planner runs for one
// child: the child's own config and warm-up, a calibration window of
// plan_calibration_cycles (default: a quarter of the child's measured
// window, at least one cycle), and the paper's 50% capacity target.
func (s SweepSpec) planSpec(req JobRequest) analytic.Spec {
	calib := s.PlanCalibrationCycles
	if calib == 0 {
		calib = req.MeasureCycles / 4
		if calib == 0 {
			calib = 1
		}
	}
	return analytic.Spec{
		Config:            req.Config,
		WarmupCycles:      req.WarmupCycles,
		CalibrationCycles: calib,
		TargetCapacity:    0.5,
	}
}

// SweepChild is one expanded job of a sweep: the request plus the axis
// label naming its position ("policy=CA,cpth=40").
type SweepChild struct {
	Label   string
	Request JobRequest
}

// Expand applies the axes' cross product to the base request and
// validates every child, in deterministic order (first axis slowest).
// The expansion is rejected whole if it exceeds the declared cap or any
// child fails config validation — a sweep never partially queues.
func (s SweepSpec) Expand() ([]SweepChild, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := 1
	cap := s.maxChildren()
	for _, ax := range s.Axes {
		if total > cap/len(ax.Values) && total*len(ax.Values) > cap { // overflow-safe bound
			return nil, fmt.Errorf("sweep spec: expansion exceeds max_children %d", cap)
		}
		total *= len(ax.Values)
	}
	if total > cap {
		return nil, fmt.Errorf("sweep spec: %d children exceed max_children %d", total, cap)
	}

	children := make([]SweepChild, 0, total)
	idx := make([]int, len(s.Axes))
	for {
		req := s.Base
		var label bytes.Buffer
		for a, ax := range s.Axes {
			v := ax.Values[idx[a]]
			if err := sweepAxisSetters[ax.Field](&req, v); err != nil {
				return nil, fmt.Errorf("sweep spec: axis %q value %s: %w", ax.Field, compactRaw(v), err)
			}
			if a > 0 {
				label.WriteByte(',')
			}
			fmt.Fprintf(&label, "%s=%s", ax.Field, compactRaw(v))
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("sweep spec: child %q: %w", label.String(), err)
		}
		children = append(children, SweepChild{Label: label.String(), Request: req})

		// Odometer increment, last axis fastest.
		a := len(s.Axes) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			break
		}
	}
	return children, nil
}

// compactRaw renders an axis value for labels: compact JSON, strings
// unquoted.
func compactRaw(v json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return string(v)
	}
	out := buf.String()
	var s string
	if err := json.Unmarshal(buf.Bytes(), &s); err == nil {
		return s
	}
	return out
}

// SweepState is a sweep's lifecycle position.
type SweepState string

// Sweep lifecycle states. A sweep whose children all reached terminal
// states is completed even when some failed — a poisoned child degrades
// the sweep's aggregate, it does not kill its siblings. Canceled marks
// a sweep interrupted by shutdown; a restart over the same data dir
// resumes it.
const (
	SweepRunning   SweepState = "running"
	SweepCompleted SweepState = "completed"
	SweepCanceled  SweepState = "canceled"
)

// Terminal reports whether the sweep state is final for this process
// (a canceled sweep is resumable by the next one).
func (s SweepState) Terminal() bool { return s == SweepCompleted || s == SweepCanceled }

// Sweep is one submitted batch: the spec, its expanded children (by job
// ID, in expansion order) and the scheduling state.
type Sweep struct {
	id      string
	spec    SweepSpec
	specRaw json.RawMessage
	created time.Time

	mu       sync.Mutex
	state    SweepState
	finished time.Time
	children []string
}

// ID returns the sweep's identifier.
func (s *Sweep) ID() string { return s.id }

// Children returns the sweep's child job IDs in expansion order.
func (s *Sweep) Children() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.children...)
}

// State returns the sweep's current lifecycle state.
func (s *Sweep) State() SweepState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// snapshot returns a consistent view of the sweep's mutable state plus
// its immutable identity fields, for status assembly.
func (s *Sweep) snapshot() (state SweepState, created, finished time.Time, name string, children []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.created, s.finished, s.spec.Name, append([]string(nil), s.children...)
}

// finalize moves the sweep to a terminal state once.
func (s *Sweep) finalize(state SweepState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return false
	}
	s.state = state
	s.finished = time.Now()
	return true
}

// SweepStatus is the wire form of a sweep: identity, lifecycle, child
// state counts and the aggregate over completed children.
type SweepStatus struct {
	ID         string     `json:"id"`
	Name       string     `json:"name,omitempty"`
	State      SweepState `json:"state"`
	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	TotalChildren int `json:"total_children"`
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Canceled      int `json:"canceled"`
	// Screened counts children the analytic planner retired without
	// simulating (another child dominates them beyond the error bounds).
	Screened  int `json:"screened,omitempty"`
	CacheHits int `json:"cache_hits"`
	Retried   int `json:"retried"` // children that needed more than one attempt

	// MeanIPC averages the completed children's mean IPC (0 until one
	// completes) — the sweep's one-number aggregate.
	MeanIPC float64 `json:"mean_ipc"`

	Children []SweepChildStatus `json:"children,omitempty"`
}

// SweepChildStatus is one child row of a sweep status. The Est* fields
// carry the analytic planner's estimate — on screened children they are
// the whole verdict; on simulated children of a planned sweep they sit
// next to the measured result, so the aggregate reports the
// analytic-vs-simulated delta per kept child.
type SweepChildStatus struct {
	ID       string   `json:"id"`
	Label    string   `json:"label,omitempty"`
	State    JobState `json:"state"`
	CacheHit bool     `json:"cache_hit"`
	Attempts int      `json:"attempts,omitempty"`
	MeanIPC  *float64 `json:"mean_ipc,omitempty"` // completed children only

	EstIPC            *float64 `json:"est_ipc,omitempty"`
	EstLifetimeMonths *float64 `json:"est_lifetime_months,omitempty"`
	EstCensored       bool     `json:"est_censored,omitempty"`

	Error string `json:"error,omitempty"`
}
