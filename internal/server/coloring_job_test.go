package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestColoringJobRejectedPreQueue: an invalid coloring document fails at
// the submission boundary — DecodeJobRequest errors and the HTTP front
// door answers 400 with nothing queued — while a valid document is
// accepted. The same Validate call gates sweep children, so a sweep
// cannot fan out jobs the workers would only reject later.
func TestColoringJobRejectedPreQueue(t *testing.T) {
	bad := []string{
		`{"config":{"coloring":{"scheme":"bogus"}}}`,
		`{"config":{"coloring":{"scheme":"wear","pairs":100000}}}`,
		`{"config":{"coloring":{"scheme":"xor","step":3}}}`,          // mixed document
		`{"config":{"llc_sets":768,"coloring":{"scheme":"xor"}}}`,    // non-pow2 geometry
		`{"config":{"coloring":{"scheme":"rotate","interval":"x"}}}`, // unknown knob
	}
	for _, body := range bad {
		if _, err := DecodeJobRequest([]byte(body)); err == nil {
			t.Errorf("decode accepted %s", body)
		}
	}
	if _, err := DecodeJobRequest([]byte(`{"config":{"coloring":{"scheme":"wear","interval_epochs":2,"pairs":32}}}`)); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}

	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, CacheSize: 2})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()
	for _, body := range bad {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if got := m.Registry().Snapshot().Counter("server.jobs.submitted"); got != 0 {
		t.Fatalf("invalid coloring reached the queue: %d jobs submitted", got)
	}
}

// TestColoringCacheKey: the coloring document is a simulation-affecting
// input, so it must split the result cache — and two identical documents
// must share a key even through separate decodes.
func TestColoringCacheKey(t *testing.T) {
	decode := func(body string) JobRequest {
		req, err := DecodeJobRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	plain := decode(`{}`)
	wear := decode(`{"config":{"coloring":{"scheme":"wear","pairs":8}}}`)
	wear2 := decode(`{"config":{"coloring":{"scheme":"wear","pairs":8}}}`)
	xor := decode(`{"config":{"coloring":{"scheme":"xor","mask":21}}}`)
	if wear.CacheKey() == plain.CacheKey() {
		t.Fatal("coloring on/off share a cache key")
	}
	if wear.CacheKey() != wear2.CacheKey() {
		t.Fatal("identical coloring documents hash differently")
	}
	if wear.CacheKey() == xor.CacheKey() {
		t.Fatal("different schemes share a cache key")
	}
}
