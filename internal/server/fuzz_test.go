package server

import (
	"strings"
	"testing"
)

// FuzzSweepSpecDecode fuzzes the sweep submission boundary with
// arbitrary documents: decode + expansion must never panic, and an
// expansion that succeeds must respect the declared child cap — a
// hostile spec can be rejected but can never make the daemon queue an
// unbounded grid.
func FuzzSweepSpecDecode(f *testing.F) {
	f.Add(sweepTestBody)
	f.Add(`{}`)
	f.Add(`{"axes":[]}`)
	f.Add(`{"axes":[{"field":"cpth","values":[20,30,40]}]}`)
	f.Add(`{"axes":[{"field":"policy","values":["CA"]},{"field":"seed","values":[1,2,3]}],"max_children":2}`)
	f.Add(`{"axes":[{"field":"tournament","values":[{"candidates":[{"policy":"CA","cpth":20}]}]}]}`)
	f.Add(`{"axes":[{"field":"llc_sets","values":[1048577]}]}`)
	f.Add(`{"base":{"config":{"policy":"CP_SD"}},"concurrency":-5,"max_children":-1}`)
	f.Add(`{"axes":[{"field":"cpth","values":[` + strings.Repeat("1,", 2000) + `1]}]}`)
	f.Add(`{"axes":[{"field":"capacity","values":[0.5,1]},{"field":"shards","values":[0,4]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := DecodeSweepSpec([]byte(doc))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		children, err := spec.Expand()
		if err != nil {
			return
		}
		if len(children) > spec.maxChildren() || len(children) > MaxSweepChildren {
			t.Fatalf("expansion of %d children escaped the cap %d (spec %q)",
				len(children), spec.maxChildren(), doc)
		}
		for _, c := range children {
			// Every expanded child passed validation; the bounded-geometry
			// allowlist holds behind the fuzzer too.
			if err := c.Request.Validate(); err != nil {
				t.Fatalf("expansion emitted an invalid child: %v (spec %q)", err, doc)
			}
		}
	})
}
