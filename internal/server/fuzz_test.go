package server

import (
	"strings"
	"testing"
)

// FuzzSweepSpecDecode fuzzes the sweep submission boundary with
// arbitrary documents: decode + expansion must never panic, and an
// expansion that succeeds must respect the declared child cap — a
// hostile spec can be rejected but can never make the daemon queue an
// unbounded grid.
func FuzzSweepSpecDecode(f *testing.F) {
	f.Add(sweepTestBody)
	f.Add(`{}`)
	f.Add(`{"axes":[]}`)
	f.Add(`{"axes":[{"field":"cpth","values":[20,30,40]}]}`)
	f.Add(`{"axes":[{"field":"policy","values":["CA"]},{"field":"seed","values":[1,2,3]}],"max_children":2}`)
	f.Add(`{"axes":[{"field":"tournament","values":[{"candidates":[{"policy":"CA","cpth":20}]}]}]}`)
	f.Add(`{"axes":[{"field":"llc_sets","values":[1048577]}]}`)
	f.Add(`{"base":{"config":{"policy":"CP_SD"}},"concurrency":-5,"max_children":-1}`)
	f.Add(`{"axes":[{"field":"cpth","values":[` + strings.Repeat("1,", 2000) + `1]}]}`)
	f.Add(`{"axes":[{"field":"capacity","values":[0.5,1]},{"field":"shards","values":[0,4]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := DecodeSweepSpec([]byte(doc))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		children, err := spec.Expand()
		if err != nil {
			return
		}
		if len(children) > spec.maxChildren() || len(children) > MaxSweepChildren {
			t.Fatalf("expansion of %d children escaped the cap %d (spec %q)",
				len(children), spec.maxChildren(), doc)
		}
		for _, c := range children {
			// Every expanded child passed validation; the bounded-geometry
			// allowlist holds behind the fuzzer too.
			if err := c.Request.Validate(); err != nil {
				t.Fatalf("expansion emitted an invalid child: %v (spec %q)", err, doc)
			}
		}
	})
}

// FuzzEstimateSpecDecode fuzzes the POST /v1/estimate boundary: decode
// must never panic, and a document it accepts must yield a validated
// spec whose cache key is well-formed — the key names a store artifact,
// so a malformed one would let a hostile body write outside the
// estimate namespace. Checked-in seeds live under
// testdata/fuzz/FuzzEstimateSpecDecode.
func FuzzEstimateSpecDecode(f *testing.F) {
	f.Add(estimateTestBody)
	f.Add(`{}`)
	f.Add(`{"config":{"policy":"CP_SD","shards":4},"target_capacity":0.3}`)
	f.Add(`{"calibration_cycles":0}`)
	f.Add(`{"target_capacity":1.5}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := DecodeEstimateSpec([]byte(doc))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v (body %q)", err, doc)
		}
		key := spec.CacheKey()
		if !strings.HasPrefix(key, "est-") || len(key) != len("est-")+64 {
			t.Fatalf("malformed cache key %q (body %q)", key, doc)
		}
		if strings.ContainsAny(key[4:], "/\\.") {
			t.Fatalf("cache key %q escapes the artifact namespace (body %q)", key, doc)
		}
	})
}
