package server

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
)

// This file is the artifact codec: the durable byte form of a Result,
// stored content-addressed (by the request cache key) in the jobstore.
// Two properties matter more than readability:
//
//   - Lossless floats. Every float64 is stored as its IEEE-754 bit
//     pattern (a uint64), so NaN payloads, infinities and the last ulp
//     survive the round trip — a report rendered from a decoded
//     artifact is byte-identical to one rendered from the live Result.
//     encoding/json would reject NaN outright and is only
//     shortest-representation-faithful for the rest.
//   - Deterministic bytes. encoding/json sorts map keys, so encoding
//     the same Result always produces the same blob and the journal's
//     artifact SHA-256 doubles as an equality check across restarts.
const artifactVersion = 1

type artifactDoc struct {
	Version    int              `json:"version"`
	Key        string           `json:"key"`
	Summary    artifactSummary  `json:"summary"`
	Epochs     []artifactSample `json:"epochs"`
	CPthWinner int              `json:"cpth_winner"`
}

// artifactSummary mirrors core.Summary field for field (floats as bit
// patterns, the metrics snapshot split into its two maps).
// TestArtifactCodecCoversSummary pins the field count so a Summary
// change cannot silently drop data from artifacts.
type artifactSummary struct {
	Policy          string            `json:"policy"`
	MeanIPCBits     uint64            `json:"mean_ipc_bits"`
	HitRateBits     uint64            `json:"hit_rate_bits"`
	Hits            uint64            `json:"hits"`
	Misses          uint64            `json:"misses"`
	NVMBytesWritten uint64            `json:"nvm_bytes_written"`
	NVMBlockWrites  uint64            `json:"nvm_block_writes"`
	SRAMHits        uint64            `json:"sram_hits"`
	NVMHits         uint64            `json:"nvm_hits"`
	Inserts         uint64            `json:"inserts"`
	Migrations      uint64            `json:"migrations"`
	CapacityBits    uint64            `json:"capacity_bits"`
	Counters        map[string]uint64 `json:"counters,omitempty"`
	GaugeBits       map[string]uint64 `json:"gauge_bits,omitempty"`
}

type artifactSample struct {
	Epoch     int      `json:"epoch"`
	Cycles    uint64   `json:"cycles"`
	ValueBits []uint64 `json:"value_bits"`
}

// encodeResult renders a completed result as its durable artifact bytes.
func encodeResult(key string, r *Result) ([]byte, error) {
	doc := artifactDoc{
		Version:    artifactVersion,
		Key:        key,
		CPthWinner: r.CPthWinner,
		Summary: artifactSummary{
			Policy:          r.Summary.Policy,
			MeanIPCBits:     math.Float64bits(r.Summary.MeanIPC),
			HitRateBits:     math.Float64bits(r.Summary.HitRate),
			Hits:            r.Summary.Hits,
			Misses:          r.Summary.Misses,
			NVMBytesWritten: r.Summary.NVMBytesWritten,
			NVMBlockWrites:  r.Summary.NVMBlockWrites,
			SRAMHits:        r.Summary.SRAMHits,
			NVMHits:         r.Summary.NVMHits,
			Inserts:         r.Summary.Inserts,
			Migrations:      r.Summary.Migrations,
			CapacityBits:    math.Float64bits(r.Summary.Capacity),
		},
	}
	if n := len(r.Summary.Metrics.Counters); n > 0 {
		doc.Summary.Counters = r.Summary.Metrics.Counters
	}
	if n := len(r.Summary.Metrics.Gauges); n > 0 {
		doc.Summary.GaugeBits = make(map[string]uint64, n)
		for name, v := range r.Summary.Metrics.Gauges {
			doc.Summary.GaugeBits[name] = math.Float64bits(v)
		}
	}
	if r.Epochs != nil {
		doc.Epochs = make([]artifactSample, len(r.Epochs))
		for i, s := range r.Epochs {
			a := artifactSample{Epoch: s.Epoch, Cycles: s.Cycles}
			if s.Values != nil {
				a.ValueBits = make([]uint64, len(s.Values))
				for k, v := range s.Values {
					a.ValueBits[k] = math.Float64bits(v)
				}
			}
			doc.Epochs[i] = a
		}
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("server: encode artifact: %w", err)
	}
	return blob, nil
}

// decodeResultKeyed rebuilds a Result and also returns the cache key
// recorded inside the artifact, so remote-upload ingestion can verify
// the worker ran the job it was leased (the key is the content address
// of the request; an artifact claiming a different key is either a bug
// or a forgery, and is rejected before anything is journaled).
func decodeResultKeyed(data []byte) (*Result, string, error) {
	var doc artifactDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("server: decode artifact: %w", err)
	}
	res, err := decodeResult(data)
	if err != nil {
		return nil, "", err
	}
	return res, doc.Key, nil
}

// decodeResult rebuilds a Result from artifact bytes, rejecting
// documents of a different codec version rather than misreading them.
func decodeResult(data []byte) (*Result, error) {
	var doc artifactDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("server: decode artifact: %w", err)
	}
	if doc.Version != artifactVersion {
		return nil, fmt.Errorf("server: artifact version %d, this build reads %d", doc.Version, artifactVersion)
	}
	res := &Result{
		CPthWinner: doc.CPthWinner,
		Summary: core.Summary{
			Policy:          doc.Summary.Policy,
			MeanIPC:         math.Float64frombits(doc.Summary.MeanIPCBits),
			HitRate:         math.Float64frombits(doc.Summary.HitRateBits),
			Hits:            doc.Summary.Hits,
			Misses:          doc.Summary.Misses,
			NVMBytesWritten: doc.Summary.NVMBytesWritten,
			NVMBlockWrites:  doc.Summary.NVMBlockWrites,
			SRAMHits:        doc.Summary.SRAMHits,
			NVMHits:         doc.Summary.NVMHits,
			Inserts:         doc.Summary.Inserts,
			Migrations:      doc.Summary.Migrations,
			Capacity:        math.Float64frombits(doc.Summary.CapacityBits),
		},
	}
	res.Summary.Metrics = metrics.Snapshot{
		Counters: doc.Summary.Counters,
		Gauges:   make(map[string]float64, len(doc.Summary.GaugeBits)),
	}
	if res.Summary.Metrics.Counters == nil {
		res.Summary.Metrics.Counters = map[string]uint64{}
	}
	for name, bits := range doc.Summary.GaugeBits {
		res.Summary.Metrics.Gauges[name] = math.Float64frombits(bits)
	}
	if doc.Epochs != nil {
		res.Epochs = make([]metrics.Sample, len(doc.Epochs))
		for i, a := range doc.Epochs {
			s := metrics.Sample{Epoch: a.Epoch, Cycles: a.Cycles}
			if a.ValueBits != nil {
				s.Values = make([]float64, len(a.ValueBits))
				for k, bits := range a.ValueBits {
					s.Values[k] = math.Float64frombits(bits)
				}
			}
			res.Epochs[i] = s
		}
	}
	return res, nil
}
