package server

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestArtifactResultRoundTrip pins the codec's lossless-float contract:
// a Result with NaN and infinite gauges, full counters and an epoch
// series decodes back bit-for-bit, and re-encoding reproduces the same
// artifact bytes (encoding/json sorts map keys, so the blob — and its
// journaled SHA-256 — is deterministic).
func TestArtifactResultRoundTrip(t *testing.T) {
	res := &Result{
		Summary: core.Summary{
			Policy:          "CA_RWR",
			MeanIPC:         0.1 + 0.2, // not exactly 0.3: the codec must keep the ulp
			HitRate:         0.875,
			Hits:            7,
			Misses:          1,
			NVMBytesWritten: 4096,
			NVMBlockWrites:  64,
			SRAMHits:        5,
			NVMHits:         2,
			Inserts:         9,
			Migrations:      3,
			Capacity:        0.9375,
			Metrics: metrics.Snapshot{
				Counters: map[string]uint64{"llc.hits": 7, "llc.misses": 1},
				Gauges: map[string]float64{
					"llc.hit_rate":  0.875,
					"weird.nan":     math.NaN(),
					"weird.posinf":  math.Inf(1),
					"weird.neginf":  math.Inf(-1),
					"weird.negzero": math.Copysign(0, -1),
				},
			},
		},
		Epochs: []metrics.Sample{
			{Epoch: 0, Cycles: 100, Values: []float64{1.5, math.NaN()}},
			{Epoch: 1, Cycles: 200, Values: []float64{2.5, 0.25}},
		},
		CPthWinner: 40,
	}
	blob, err := encodeResult("k", res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}

	// NaN != NaN defeats reflect.DeepEqual, so compare bit patterns.
	if got.Summary.Policy != res.Summary.Policy || got.CPthWinner != res.CPthWinner {
		t.Fatalf("scalars changed: %+v", got)
	}
	bitsEq := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s: %x != %x", name, math.Float64bits(a), math.Float64bits(b))
		}
	}
	bitsEq("mean_ipc", got.Summary.MeanIPC, res.Summary.MeanIPC)
	bitsEq("capacity", got.Summary.Capacity, res.Summary.Capacity)
	if !reflect.DeepEqual(got.Summary.Metrics.Counters, res.Summary.Metrics.Counters) {
		t.Errorf("counters changed: %v", got.Summary.Metrics.Counters)
	}
	for name, want := range res.Summary.Metrics.Gauges {
		bitsEq("gauge "+name, got.Summary.Metrics.Gauges[name], want)
	}
	if len(got.Epochs) != len(res.Epochs) {
		t.Fatalf("epochs %d != %d", len(got.Epochs), len(res.Epochs))
	}
	for i, s := range res.Epochs {
		g := got.Epochs[i]
		if g.Epoch != s.Epoch || g.Cycles != s.Cycles || len(g.Values) != len(s.Values) {
			t.Fatalf("epoch %d shape changed: %+v", i, g)
		}
		for k := range s.Values {
			bitsEq("epoch value", g.Values[k], s.Values[k])
		}
	}

	blob2, err := encodeResult("k", got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded result changed the artifact bytes")
	}
}

// TestArtifactCodecCoversSummary pins core.Summary's field count. If
// this fails, a field was added to (or removed from) Summary without
// teaching the artifact codec about it — recovered results would
// silently lose data. Update artifactSummary, encodeResult and
// decodeResult, then this count.
func TestArtifactCodecCoversSummary(t *testing.T) {
	const known = 13
	if n := reflect.TypeOf(core.Summary{}).NumField(); n != known {
		t.Fatalf("core.Summary has %d fields, the artifact codec covers %d — extend internal/server/store.go", n, known)
	}
}

// TestArtifactVersionRejected pins forward-compatibility behaviour: a
// blob from a different codec version is an error, never misread.
func TestArtifactVersionRejected(t *testing.T) {
	if _, err := decodeResult([]byte(`{"version":999,"key":"k"}`)); err == nil {
		t.Fatal("decoded an artifact from the future")
	}
	if _, err := decodeResult([]byte(`not json`)); err == nil {
		t.Fatal("decoded garbage")
	}
}

// TestDecodeResultEmptyMaps pins that a minimal artifact decodes into
// usable (non-nil) metric maps.
func TestDecodeResultEmptyMaps(t *testing.T) {
	blob, err := encodeResult("k", &Result{CPthWinner: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Metrics.Counters == nil || got.Summary.Metrics.Gauges == nil {
		t.Fatal("decoded snapshot has nil maps")
	}
}
