// Package server is the simulation-as-a-service layer: a job manager
// that queues hybrid-LLC simulation runs on a bounded queue, executes
// them on hardened workers (internal/cliutil), caches completed results
// content-addressed by their canonical config, and an HTTP/JSON front-end
// (cmd/simd) with live per-epoch streaming. The paper's methodology —
// CPth sweeps, Th/Tw sweeps, aging forecasts — is many parameterized runs
// of the same engine; this package turns each into a submit/poll/stream
// job instead of a from-scratch CLI process.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
)

// JobRequest is the POST /v1/jobs body. It decodes strictly (unknown
// fields are rejected) over the defaults below, so a partial document —
// often just {"config": {"policy": "CA", "cpth": 40}} — is a complete
// submission.
type JobRequest struct {
	// Config is the simulation to run; omitted fields keep
	// core.DefaultConfig values. Config.Shards > 1 runs the set-sharded
	// engine (bit-identical results, so it does not affect the cache key).
	Config core.Config `json:"config"`
	// WarmupCycles and MeasureCycles bound the run window (defaults
	// mirror cmd/hybridsim: 2M warm-up, 10M measured).
	WarmupCycles  uint64 `json:"warmup_cycles"`
	MeasureCycles uint64 `json:"measure_cycles"`
	// Capacity pre-ages the NVM part to this effective-capacity fraction
	// before the run (1 = unaged, the default).
	Capacity float64 `json:"capacity"`
	// Epochs includes the per-epoch series table in the report; the
	// /epochs stream is available either way.
	Epochs bool `json:"epochs"`
	// Metrics includes the full registry delta table in the report.
	Metrics bool `json:"metrics"`
}

// DefaultJobRequest returns the request every submission overlays:
// DefaultConfig and the hybridsim window defaults.
func DefaultJobRequest() JobRequest {
	return JobRequest{
		Config:        core.DefaultConfig(),
		WarmupCycles:  2_000_000,
		MeasureCycles: 10_000_000,
		Capacity:      1,
	}
}

// DecodeJobRequest decodes a submission body strictly over the defaults.
func DecodeJobRequest(data []byte) (JobRequest, error) {
	req := DefaultJobRequest()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("job request: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("job request: trailing data after JSON document")
	}
	return req, req.Validate()
}

// Validate checks the request beyond Config.Validate's rules.
func (r JobRequest) Validate() error {
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.MeasureCycles == 0 {
		return fmt.Errorf("job request: measure_cycles must be positive")
	}
	if r.Capacity <= 0 || r.Capacity > 1 {
		return fmt.Errorf("job request: capacity %v outside (0,1]", r.Capacity)
	}
	return nil
}

// CacheKey returns the content address of the request's result: the
// SHA-256 of the canonical JSON of every simulation-affecting input.
// Rendering options (epochs/metrics tables) are excluded — they change
// the report, not the simulation. The shard count is normalised before
// hashing: PR 4's differential equivalence suite proves the set-sharded
// engine bit-identical across every shard count >= 1, so submissions
// differing only in engine parallelism share one cached result. What the
// key must still distinguish is the engine kind — shards <= 1 runs the
// classic sequential system, whose timing model (and therefore summary)
// legitimately differs from the router's — so the canonical shard count
// is 0 for sequential runs and 2 for any engine run.
func (r JobRequest) CacheKey() string {
	canon := r.Config
	if canon.Shards > 1 {
		canon.Shards = 2
	} else {
		canon.Shards = 0
	}
	blob, err := json.Marshal(struct {
		Config   core.Config `json:"config"`
		Warmup   uint64      `json:"warmup_cycles"`
		Measure  uint64      `json:"measure_cycles"`
		Capacity float64     `json:"capacity"`
	}{canon, r.WarmupCycles, r.MeasureCycles, r.Capacity})
	if err != nil {
		// Config marshals plain scalars only; failure here is a
		// programming error, but a per-request unique key keeps the
		// daemon correct (the entry just never hits).
		blob = []byte(fmt.Sprintf("unhashable:%+v", r))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states. Screened is the coarse-to-fine planner's
// terminal verdict: the analytic estimator found another child of the
// same sweep that safely dominates this one (beyond the estimates'
// combined error bounds) on the lifetime × IPC plane, so the full
// simulation was never run.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
	StateScreened  JobState = "screened"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled || s == StateScreened
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID          string     `json:"id"`
	State       JobState   `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ProgressCycles of TotalCycles have been simulated (warm-up plus
	// measurement); cache hits report full progress immediately.
	ProgressCycles uint64 `json:"progress_cycles"`
	TotalCycles    uint64 `json:"total_cycles"`
	// Epochs counts set-dueling epochs closed so far (streamable via
	// GET /v1/jobs/{id}/epochs).
	Epochs   int    `json:"epochs"`
	CacheHit bool   `json:"cache_hit"`
	CacheKey string `json:"cache_key"`
	// Attempts counts execution attempts (greater than 1 after a
	// transient failure was retried).
	Attempts int `json:"attempts,omitempty"`
	// Sweep and Label identify the owning batch sweep and this child's
	// position on its axes, for sweep children.
	Sweep string `json:"sweep,omitempty"`
	Label string `json:"label,omitempty"`
	// Worker names the fleet worker that held (or holds) the job's
	// lease; empty for jobs run by the coordinator's own pool.
	Worker string `json:"worker,omitempty"`
	// Recovered marks a job restored from the persistent store's journal
	// after a daemon restart.
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
}

// JobResponse is the GET /v1/jobs/{id} JSON body: the status plus, once
// completed, the report-sink JSON object.
type JobResponse struct {
	JobStatus
	Report json.RawMessage `json:"report,omitempty"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}
