package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Result is everything a completed run leaves behind: the measured
// summary, the retained epoch series, and the set-dueling winner
// (negative for non-dueling policies). Results are immutable once
// published, so the cache and late readers share them freely.
type Result struct {
	Summary    core.Summary
	Epochs     []metrics.Sample
	CPthWinner int
}

// Job is one queued simulation run. All mutable state sits behind the
// mutex; readers get consistent copies and live epoch followers block on
// a closed-and-replaced notify channel.
type Job struct {
	id        string
	req       JobRequest
	cacheKey  string
	sweepID   string // owning sweep, empty for standalone submissions
	label     string // sweep-child axis label ("policy=CA,cpth=40")
	submitted time.Time
	cancel    context.CancelFunc

	mu        sync.Mutex
	state     JobState
	started   time.Time
	finished  time.Time
	done      uint64
	total     uint64
	attempts  int    // execution attempts so far (retries increment)
	worker    string // fleet worker holding (or last holding) the job
	recovered bool
	epochs    []metrics.Sample
	notify    chan struct{}
	result    *Result
	err       error
	cacheHit  bool
	lastCkpt  time.Time          // last journaled checkpoint (throttling)
	estimate  *analytic.Estimate // planner's analytic estimate, when planned
}

func newJob(id string, req JobRequest) *Job {
	return &Job{
		id:        id,
		req:       req,
		cacheKey:  req.CacheKey(),
		submitted: time.Now(),
		state:     StateQueued,
		total:     req.WarmupCycles + req.MeasureCycles,
		notify:    make(chan struct{}),
	}
}

// newCachedJob returns an already-completed job serving a cached result.
func newCachedJob(id string, req JobRequest, res *Result) *Job {
	j := newJob(id, req)
	j.state = StateCompleted
	j.started, j.finished = j.submitted, j.submitted
	j.done = j.total
	j.epochs = res.Epochs
	j.result = res
	j.cacheHit = true
	close(j.notify)
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submission the job runs.
func (j *Job) Request() JobRequest { return j.req }

// CacheKey returns the content address of the job's result.
func (j *Job) CacheKey() string { return j.cacheKey }

// wake closes and replaces the notify channel, releasing every follower.
// Callers hold j.mu.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// markRunning transitions queued → running; it reports false when the
// job is already terminal (e.g. canceled before a worker claimed it).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.wake()
	return true
}

// markRequeued transitions running → queued: the job's lease expired or
// its attempt failed transiently, and it goes back on the queue for the
// next worker. Reports false when the job is not currently running
// (terminal states stay terminal — a requeue must never resurrect a
// completed job).
func (j *Job) markRequeued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return false
	}
	j.state = StateQueued
	j.wake()
	return true
}

// setWorker records which fleet worker holds the job's lease.
func (j *Job) setWorker(worker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.worker = worker
}

// Worker returns the fleet worker holding (or last holding) the job.
func (j *Job) Worker() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.worker
}

// beginAttempt records one more execution attempt, clearing any epochs a
// previous failed attempt streamed (the new run re-emits the series from
// the start; bit-exact determinism makes it the same series).
func (j *Job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	if j.attempts > 1 {
		j.epochs = j.epochs[:0]
	}
	return j.attempts
}

// Attempts returns how many execution attempts the job has made.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// completeFromCache finishes a still-pending job with a shared cached or
// store-recovered result, marking it a cache hit (no simulation ran for
// it in this process).
func (j *Job) completeFromCache(res *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateCompleted
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.done = j.total
	j.epochs = res.Epochs
	j.result = res
	j.cacheHit = true
	j.wake()
}

// awaitTerminal blocks until the job reaches a terminal state. The
// sweep scheduler uses it to pace child admission.
func (j *Job) awaitTerminal() {
	for {
		j.mu.Lock()
		term := j.state.Terminal()
		ch := j.notify
		j.mu.Unlock()
		if term {
			return
		}
		<-ch
	}
}

// shouldCheckpoint reports whether enough time has passed since the
// last journaled checkpoint (negative interval means always), claiming
// the slot when it has.
func (j *Job) shouldCheckpoint(interval time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	if interval >= 0 && now.Sub(j.lastCkpt) < interval {
		return false
	}
	j.lastCkpt = now
	return true
}

// addEpoch appends a newly closed epoch sample (a RunHooks.OnEpoch
// callback) and wakes streaming followers.
func (j *Job) addEpoch(s metrics.Sample) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.epochs = append(j.epochs, s)
	j.wake()
}

// setProgress records cycles simulated so far (RunHooks.OnProgress).
func (j *Job) setProgress(done, total uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.total = done, total
}

// finish moves the job to a terminal state, reporting whether this call
// performed the transition (false: the job was already terminal, and
// nothing changed — the caller must not count or journal a second
// terminal outcome). The final epoch series is replaced by the result's
// (ring-bounded) series on success so polls and streams agree with what
// the report renders.
func (j *Job) finish(state JobState, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.result = res
	j.err = err
	if res != nil {
		j.done = j.total
		j.epochs = res.Epochs
	}
	j.wake()
	return true
}

// setEstimate records the planner's analytic estimate for the child.
func (j *Job) setEstimate(est analytic.Estimate) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.estimate = &est
}

// Estimate returns the planner's analytic estimate, or nil when the job
// was never planned analytically.
func (j *Job) Estimate() *analytic.Estimate {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.estimate
}

// Result returns the completed result, or nil while the job is not
// successfully finished.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		State:          j.state,
		SubmittedAt:    j.submitted,
		ProgressCycles: j.done,
		TotalCycles:    j.total,
		Epochs:         len(j.epochs),
		Attempts:       j.attempts,
		CacheHit:       j.cacheHit,
		CacheKey:       j.cacheKey,
		Sweep:          j.sweepID,
		Label:          j.label,
		Worker:         j.worker,
		Recovered:      j.recovered,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// epochsAfter returns the epoch samples recorded after the first n, a
// channel that closes on the next state change, and whether the job is
// terminal. Streaming handlers loop on it: drain the new samples, then
// either stop (terminal, nothing pending) or block on the channel.
func (j *Job) epochsAfter(n int) ([]metrics.Sample, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []metrics.Sample
	if n < len(j.epochs) {
		out = append(out, j.epochs[n:]...)
	}
	return out, j.notify, j.state.Terminal()
}
