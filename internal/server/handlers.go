package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fleet"
	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/report"
)

// maxBodyBytes bounds a submission body; configs are small JSON
// documents, so anything past this is a client error.
const maxBodyBytes = 1 << 20

// maxArtifactBytes bounds a lease-completion upload: an artifact is the
// epoch ring (bounded) plus a summary, far under this even base64-inflated.
const maxArtifactBytes = 64 << 20

// NewHandler builds the daemon's HTTP surface over a manager:
//
//	POST /v1/jobs             submit a run (202; 200 on a cache hit)
//	GET  /v1/jobs             list job statuses
//	GET  /v1/jobs/{id}        status + report (JSON/CSV/text negotiated)
//	GET  /v1/jobs/{id}/report the bare report artifact, byte-identical
//	                          to the equivalent cmd/hybridsim output
//	GET  /v1/jobs/{id}/epochs live epoch stream (NDJSON; SSE negotiated)
//	POST /v1/estimate         analytic fast-path estimate (synchronous;
//	                          sub-millisecond once calibrated)
//	POST /v1/sweeps           submit a batch sweep (202)
//	GET  /v1/sweeps           list sweep statuses
//	GET  /v1/sweeps/{id}      sweep status with per-child rows
//	POST /v1/leases           fleet worker acquires the next job (204
//	                          when idle; long-polls up to wait_millis)
//	GET  /v1/leases           list active leases
//	POST /v1/leases/{token}/heartbeat  renew a lease, report progress
//	POST /v1/leases/{token}/complete   upload the artifact or an error
//	GET  /healthz             liveness + drain state
//	GET  /metrics             manager operational metrics (Prometheus
//	                          text format when Accept asks for it)
//
// Every request is wrapped in structured logging on log (nil discards).
func NewHandler(m *Manager, log *slog.Logger) http.Handler {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &apiServer{m: m, log: log}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/epochs", s.handleEpochs)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("POST /v1/leases", s.handleAcquireLease)
	mux.HandleFunc("GET /v1/leases", s.handleListLeases)
	mux.HandleFunc("POST /v1/leases/{token}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{token}/complete", s.handleComplete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logging(mux)
}

type apiServer struct {
	m   *Manager
	log *slog.Logger
}

// statusWriter captures the status and byte count for request logging.
// Unwrap exposes the underlying writer so http.NewResponseController can
// still reach Flush through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// logging wraps a handler with structured request logs.
func (s *apiServer) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "bytes", sw.bytes,
			"duration", time.Since(start).Round(time.Microsecond))
	})
}

// wireFormat negotiates the report encoding: an explicit ?format= wins,
// then the Accept header, defaulting to JSON.
func wireFormat(r *http.Request) (report.Format, error) {
	switch q := r.URL.Query().Get("format"); q {
	case "json":
		return report.JSON, nil
	case "csv":
		return report.CSV, nil
	case "text":
		return report.Text, nil
	case "":
	default:
		return report.JSON, fmt.Errorf("unknown format %q (want json, csv or text)", q)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/csv"):
		return report.CSV, nil
	case strings.Contains(accept, "text/plain"):
		return report.Text, nil
	default:
		return report.JSON, nil
	}
}

func contentType(f report.Format) string {
	switch f {
	case report.CSV:
		return "text/csv; charset=utf-8"
	case report.Text:
		return "text/plain; charset=utf-8"
	default:
		return "application/json"
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// jobReport renders a completed job through the shared cliutil.RunReport,
// so every encoding is byte-identical to the equivalent cmd/hybridsim
// invocation.
func jobReport(j *Job) *report.Report {
	res := j.Result()
	req := j.Request()
	opt := cliutil.RunReportOptions{CPthWinner: res.CPthWinner, Metrics: req.Metrics}
	if req.Epochs {
		opt.Epochs = res.Epochs
	}
	return cliutil.RunReport(req.Config, res.Summary, opt)
}

func (s *apiServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Retry-After is derived from the backlog and the observed mean
		// job duration, not a constant: a queue of minute-long runs and a
		// queue of millisecond smoke runs deserve different advice.
		w.Header().Set("Retry-After", strconv.Itoa(s.m.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	if j.State() == StateCompleted { // cache hit: the result is ready now
		writeJSON(w, http.StatusOK, s.jobResponse(j))
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *apiServer) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	statuses := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, statuses)
}

// jobResponse assembles the JSON body for a job, embedding the rendered
// report once completed.
func (s *apiServer) jobResponse(j *Job) JobResponse {
	resp := JobResponse{JobStatus: j.Status()}
	if resp.State == StateCompleted {
		var buf bytes.Buffer
		if err := jobReport(j).WriteJSON(&buf); err == nil {
			resp.Report = json.RawMessage(buf.Bytes())
		}
	}
	return resp
}

func (s *apiServer) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	f, err := wireFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if f == report.JSON {
		writeJSON(w, http.StatusOK, s.jobResponse(j))
		return
	}
	// CSV/text carry only the final report; an unfinished job gets a
	// plain 202 status line instead.
	st := j.Status()
	if st.State != StateCompleted {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st.State.Terminal() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, "job %s %s: %s\n", st.ID, st.State, st.Error)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "job %s %s (%d/%d cycles)\n", st.ID, st.State, st.ProgressCycles, st.TotalCycles)
		return
	}
	w.Header().Set("Content-Type", contentType(f))
	jobReport(j).Write(w, f)
}

// handleReport serves a completed job's report with no envelope: the
// bytes on the wire are exactly what cliutil.RunReport renders, so every
// format — JSON included — is byte-identical to the same run through
// cmd/hybridsim. (The JSON envelope at GET /v1/jobs/{id} embeds the same
// report, but the encoder re-indents it to the envelope's depth.)
func (s *apiServer) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	f, err := wireFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if st := j.Status(); st.State != StateCompleted {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s, no report yet", st.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", contentType(f))
	jobReport(j).Write(w, f)
}

// epochLine renders one sample as a single-line JSON object with values
// keyed by column, in column order (hand-built so the order is stable).
func epochLine(columns []string, s metrics.Sample) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"epoch":%d,"cycles":%d,"values":{`, s.Epoch, s.Cycles)
	for i, c := range columns {
		if i >= len(s.Values) {
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		v := []byte("null")
		if f := s.Values[i]; !math.IsNaN(f) && !math.IsInf(f, 0) {
			v, _ = json.Marshal(f)
		}
		fmt.Fprintf(&b, `"%s":%s`, c, v)
	}
	b.WriteString("}}")
	return b.Bytes()
}

// handleEpochs streams a job's epoch series live: NDJSON by default,
// server-sent events when the client asks for text/event-stream. The
// stream replays every recorded epoch, follows the run until it reaches
// a terminal state, then ends.
func (s *apiServer) handleEpochs(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	columns := hier.EpochColumns
	sent := 0
	for {
		samples, notify, terminal := j.epochsAfter(sent)
		for _, sample := range samples {
			line := epochLine(columns, sample)
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", line)
			} else {
				w.Write(line)
				w.Write([]byte("\n"))
			}
			sent++
		}
		rc.Flush()
		if terminal && len(samples) == 0 {
			if sse {
				fmt.Fprintf(w, "event: done\ndata: %q\n\n", string(j.State()))
				rc.Flush()
			}
			return
		}
		if len(samples) > 0 {
			continue // drain everything pending before blocking
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		}
	}
}

// handleEstimate answers an analytic estimate synchronously: a cached
// calibration (memory or store artifact) is served in well under a
// millisecond; a miss runs the short calibration simulation on this
// request and is refused while draining. The response is a pure
// function of the spec, so repeat queries are byte-identical.
func (s *apiServer) handleEstimate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := DecodeEstimateSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.m.Estimate(r.Context(), spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSubmitSweep decodes a sweep spec strictly, expands it
// server-side and starts the scheduler. Expansion problems (unknown
// axis, over-cap cross product, invalid child config) are client errors
// — nothing queues until the whole sweep is admissible.
func (s *apiServer) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := DecodeSweepSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := s.m.SubmitSweep(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID())
	writeJSON(w, http.StatusAccepted, s.m.SweepStatus(sw, true))
}

func (s *apiServer) handleSweeps(w http.ResponseWriter, r *http.Request) {
	sweeps := s.m.Sweeps()
	statuses := make([]SweepStatus, len(sweeps))
	for i, sw := range sweeps {
		statuses[i] = s.m.SweepStatus(sw, false)
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *apiServer) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.m.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.m.SweepStatus(sw, true))
}

func (s *apiServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.m.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// handleAcquireLease grants the next runnable job to a fleet worker.
// 200 carries the grant; 204 means no work within the wait; 503 means
// draining (the worker's client backs off and retries).
func (s *apiServer) handleAcquireLease(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req fleet.AcquireRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("acquire request: %w", err))
		return
	}
	g, err := s.m.AcquireLease(r.Context(), req.WorkerID, time.Duration(req.WaitMillis)*time.Millisecond)
	switch {
	case errors.Is(err, ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.Canceled):
		return // client went away
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *apiServer) handleListLeases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Leases())
}

// handleHeartbeat renews a lease; 410 tells the worker the lease is
// gone and the run should be abandoned.
func (s *apiServer) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req fleet.HeartbeatRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("heartbeat request: %w", err))
			return
		}
	}
	resp, err := s.m.HeartbeatLease(r.PathValue("token"), req)
	if err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleComplete resolves a lease with an artifact upload or an error
// report. 400 with the lease left active means the upload failed
// verification and can be retried; 410 means the lease is gone.
func (s *apiServer) handleComplete(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req fleet.CompleteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("complete request: %w", err))
		return
	}
	resp, err := s.m.CompleteLease(r.PathValue("token"), req)
	switch {
	case errors.Is(err, fleet.ErrLeaseGone):
		writeError(w, http.StatusGone, err)
		return
	case errors.Is(err, ErrArtifactMismatch):
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *apiServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Prometheus exposition is negotiated first: a scraper's Accept
	// header ("text/plain; version=0.0.4") or ?format=prometheus wins
	// over the human report formats.
	if metrics.AcceptsPrometheus(r.Header.Get("Accept")) || r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		metrics.WritePrometheus(w, "simd_", s.m.Registry().Snapshot())
		return
	}
	f, err := wireFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if f == report.JSON && r.URL.Query().Get("format") == "" &&
		!strings.Contains(r.Header.Get("Accept"), "application/json") {
		f = report.Text // /metrics defaults to the text table
	}
	rep := report.NewReport("simd metrics")
	rep.AddTable(report.SnapshotTable("server", s.m.Registry().Snapshot()))
	w.Header().Set("Content-Type", contentType(f))
	rep.Write(w, f)
}
