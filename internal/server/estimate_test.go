package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/jobstore"
)

// estimateTestBody is a quick calibration: small geometry, short
// window, endurance low enough for a finite closed-form lifetime.
const estimateTestBody = `{
  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000,
             "policy": "BH", "endurance_mean": 20000},
  "warmup_cycles": 100000,
  "calibration_cycles": 300000
}`

func TestEstimateSpecDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"unknown-top-level", `{"calibration_cyclez": 1}`, "unknown field"},
		{"unknown-config", `{"config": {"bogus": 1}}`, "unknown field"},
		{"trailing", `{} {}`, "trailing"},
		{"zero-window", `{"calibration_cycles": 0}`, "calibration_cycles"},
		{"bad-target", `{"target_capacity": 1.5}`, "target_capacity"},
		{"over-ceiling", `{"config": {"llc_sets": 1048577}}`, "sets"},
		{"not-json", `nonsense`, "estimate spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeEstimateSpec([]byte(tc.body)); err == nil {
				t.Fatalf("accepted %s", tc.body)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEstimateSpecDecodeDefaults(t *testing.T) {
	spec, err := DecodeEstimateSpec([]byte(`{"config": {"policy": "BH"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Config.PolicyName != "BH" {
		t.Fatalf("policy %q", spec.Config.PolicyName)
	}
	def := analytic.DefaultSpec()
	if spec.CalibrationCycles != def.CalibrationCycles || spec.WarmupCycles != def.WarmupCycles ||
		spec.TargetCapacity != def.TargetCapacity {
		t.Fatalf("omitted fields drifted from the defaults: %+v", spec)
	}
}

func postEstimate(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEstimateEndpoint pins the synchronous estimate surface: a first
// query calibrates, repeat queries hit the cache and render
// byte-identical bodies.
func TestEstimateEndpoint(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, first := postEstimate(t, srv.URL, estimateTestBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, first)
	}
	var er EstimateResponse
	if err := json.Unmarshal(first, &er); err != nil {
		t.Fatalf("%v\n%s", err, first)
	}
	if er.CacheHit {
		t.Fatal("first estimate reported a cache hit")
	}
	if !strings.HasPrefix(er.CacheKey, "est-") {
		t.Fatalf("cache key %q", er.CacheKey)
	}
	if er.Estimate.Policy != "BH" || er.Estimate.YoungIPC <= 0 {
		t.Fatalf("degenerate estimate: %+v", er.Estimate)
	}
	if er.Estimate.Censored || er.Estimate.LifetimeMonths <= 0 {
		t.Fatalf("expected a finite lifetime: %+v", er.Estimate)
	}
	if er.Estimate.IPCErrorBound <= 0 || er.Estimate.LifetimeErrorBound <= 0 {
		t.Fatalf("estimate carries no bounds: %+v", er.Estimate)
	}
	if er.Calibration == nil || er.Calibration.Policy != "BH" {
		t.Fatalf("missing calibration echo: %+v", er.Calibration)
	}

	resp, second := postEstimate(t, srv.URL, estimateTestBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, second)
	}
	var er2 EstimateResponse
	if err := json.Unmarshal(second, &er2); err != nil {
		t.Fatal(err)
	}
	if !er2.CacheHit {
		t.Fatal("second estimate missed the cache")
	}
	_, third := postEstimate(t, srv.URL, estimateTestBody)
	if !bytes.Equal(second, third) {
		t.Fatalf("repeat responses differ:\n%s\n%s", second, third)
	}

	if got := m.estimates.Load(); got != 3 {
		t.Fatalf("estimates counter %d, want 3", got)
	}
	if got := m.estCalibrations.Load(); got != 1 {
		t.Fatalf("calibrations counter %d, want 1", got)
	}
	if got := m.estCacheHits.Load(); got != 2 {
		t.Fatalf("cache-hit counter %d, want 2", got)
	}

	// Strict-decode rejections map to 400 with the JSON error envelope.
	resp, body := postEstimate(t, srv.URL, `{"bogus": 1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for unknown field: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "unknown field") {
		t.Fatalf("error envelope %s", body)
	}
}

// TestEstimateStoreRoundTrip pins the durable calibration path: a second
// manager over the same store serves the estimate from the artifact
// without recalibrating, and a corrupted artifact recalibrates instead
// of failing.
func TestEstimateStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := newTestManager(t, Options{Workers: 1, Store: st})
	spec, err := DecodeEstimateSpec([]byte(estimateTestBody))
	if err != nil {
		t.Fatal(err)
	}
	first, err := m1.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("fresh store reported a cache hit")
	}
	m1.Close()
	st.Close()

	st2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := newTestManager(t, Options{Workers: 1, Store: st2})
	got, err := m2.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Fatal("store artifact not served as a cache hit")
	}
	if m2.estCalibrations.Load() != 0 {
		t.Fatal("second manager recalibrated despite the artifact")
	}
	if got.Estimate != first.Estimate {
		t.Fatalf("artifact round trip drifted:\n%+v\n%+v", first.Estimate, got.Estimate)
	}

	// Corrupt the artifact on disk (PutArtifact treats re-puts as no-ops):
	// the estimator must recalibrate, not trust it.
	if err := os.WriteFile(filepath.Join(dir, "artifacts", spec.CacheKey()), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m3 := newTestManager(t, Options{Workers: 1, Store: st2})
	redo, err := m3.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if redo.CacheHit {
		t.Fatal("corrupt artifact served as a cache hit")
	}
	if redo.Estimate != first.Estimate {
		t.Fatalf("recalibration drifted:\n%+v\n%+v", first.Estimate, redo.Estimate)
	}
}

// TestEstimateDraining pins drain semantics: cached estimates keep
// serving, new calibrations are refused with 503.
func TestEstimateDraining(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	if resp, body := postEstimate(t, srv.URL, estimateTestBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := postEstimate(t, srv.URL, estimateTestBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached estimate refused while draining: %d", resp.StatusCode)
	}
	fresh := strings.Replace(estimateTestBody, `"warmup_cycles": 100000`, `"warmup_cycles": 150000`, 1)
	resp, body := postEstimate(t, srv.URL, fresh)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new calibration while draining: %d %s", resp.StatusCode, body)
	}
}

// plannerSweepBody is the coarse-to-fine planner's test matrix, tuned so
// margin-aware screening separates exactly one corner. l2_size_kb 64 → 8
// costs ~1.7× IPC (far beyond the combined IPC margin) and endurance_mean
// 60k → 12k costs 5× lifetime, so the (big L2, durable) corner dominates
// the (small L2, fragile) corner on both axes beyond the bounds — but
// neither single-axis neighbour: the same-L2 pairs tie on estimated IPC
// (screening can never separate a tie under symmetric margins), and the
// endurance-matched small-L2 corner keeps enough lifetime (ratio ~1.7 <
// the 2.33 the lifetime margins demand) to survive.
const plannerSweepBody = `{
  "name": "planned",
  "plan": "analytic",
  "plan_calibration_cycles": 300000,
  "base": {
    "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000,
               "policy": "BH"},
    "warmup_cycles": 100000,
    "measure_cycles": 400000
  },
  "axes": [
    {"field": "l2_size_kb", "values": [64, 8]},
    {"field": "endurance_mean", "values": [60000, 12000]}
  ],
  "concurrency": 2
}`

// TestSweepAnalyticPlan drives the planner end to end and differentially
// verifies its safety: the sweep simulates only the estimated frontier,
// reports the screened children in the aggregate, and — checked against
// ground truth from full forecasts of every child — never screens a
// config on the true lifetime × IPC frontier.
func TestSweepAnalyticPlan(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(plannerSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var st SweepStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && st.State == SweepRunning {
		time.Sleep(25 * time.Millisecond)
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("%v\n%s", err, b)
		}
	}
	if st.State != SweepCompleted {
		t.Fatalf("sweep ended %s: %s", st.State, b)
	}
	if st.Screened == 0 {
		t.Fatalf("planner screened nothing: %s", b)
	}
	if st.Screened+st.Completed != st.TotalChildren {
		t.Fatalf("screened %d + completed %d != total %d", st.Screened, st.Completed, st.TotalChildren)
	}
	screened := map[string]bool{}
	for _, c := range st.Children {
		if c.EstIPC == nil || c.EstLifetimeMonths == nil {
			t.Fatalf("child %s carries no estimate: %s", c.Label, b)
		}
		switch c.State {
		case StateScreened:
			screened[c.Label] = true
			if c.MeanIPC != nil {
				t.Fatalf("screened child %s has a simulated result", c.Label)
			}
		case StateCompleted:
			if c.MeanIPC == nil {
				t.Fatalf("completed child %s has no simulated result", c.Label)
			}
		default:
			t.Fatalf("child %s in state %s", c.Label, c.State)
		}
	}

	// Ground truth: the full forecast for every child config, exact
	// frontier (zero margins). Anything on the true frontier must have
	// been simulated, not screened.
	spec, err := DecodeSweepSpec([]byte(plannerSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	children, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	fcfg := forecast.DefaultConfig()
	fcfg.WarmupCycles = 100_000
	fcfg.PhaseCycles = 400_000
	fcfg.CapacityStep = 0.125
	fcfg.MaxPhases = 8
	pts := make([]experiments.ParetoPoint, len(children))
	for i, c := range children {
		target, done, err := c.Request.Config.BuildForecastTarget()
		if err != nil {
			t.Fatal(err)
		}
		res := forecast.RunTarget(target, fcfg)
		done()
		life := res.LifetimeMonths()
		if math.IsInf(res.LifetimeSeconds, 1) {
			life = math.Inf(1)
		}
		pts[i] = experiments.ParetoPoint{Lifetime: life, IPC: res.Points[0].MeanIPC}
	}
	trueFrontier := experiments.ParetoFrontier(pts)
	for i, c := range children {
		t.Logf("%-42s life=%.2fmo ipc=%.4f frontier=%v screened=%v",
			c.Label, pts[i].Lifetime, pts[i].IPC, trueFrontier[i], screened[c.Label])
		if trueFrontier[i] && screened[c.Label] {
			t.Errorf("true-frontier config %s was screened", c.Label)
		}
	}
}

// TestSweepPlanValidation pins the plan field's decode rules.
func TestSweepPlanValidation(t *testing.T) {
	if _, err := DecodeSweepSpec([]byte(`{"plan": "psychic"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown plan") {
		t.Fatalf("bad plan accepted: %v", err)
	}
	spec, err := DecodeSweepSpec([]byte(`{"plan": "analytic"}`))
	if err != nil {
		t.Fatal(err)
	}
	ps := spec.planSpec(spec.Base)
	if ps.CalibrationCycles != spec.Base.MeasureCycles/4 {
		t.Fatalf("default calibration window %d, want %d", ps.CalibrationCycles, spec.Base.MeasureCycles/4)
	}
	if ps.TargetCapacity != 0.5 {
		t.Fatalf("target %v", ps.TargetCapacity)
	}
	spec.PlanCalibrationCycles = 12345
	if got := spec.planSpec(spec.Base).CalibrationCycles; got != 12345 {
		t.Fatalf("explicit calibration window %d", got)
	}
}

// TestSweepScreenedRecovery pins recovery semantics: a journaled
// screened child stays screened after a restart — the planner's verdict
// is final, not re-litigated per process.
func TestSweepScreenedRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := newTestManager(t, Options{Workers: 2, Store: st})
	srv := httptest.NewServer(NewHandler(m1, nil))
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(plannerSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sw SweepStatus
	if err := json.Unmarshal(b, &sw); err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, m1, sw.ID)
	srv.Close()
	m1.Close()
	st.Close()

	st2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := newTestManager(t, Options{Workers: 2, Store: st2})
	got, ok := m2.Sweep(sw.ID)
	if !ok {
		t.Fatalf("sweep %s not recovered", sw.ID)
	}
	rst := m2.SweepStatus(got, true)
	if rst.Screened == 0 {
		t.Fatalf("screened children lost in recovery: %+v", rst)
	}
	for _, c := range rst.Children {
		if c.State != StateCompleted && c.State != StateScreened {
			t.Fatalf("recovered child %s in state %s", c.ID, c.State)
		}
	}
}

func waitSweepDone(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		sw, ok := m.Sweep(id)
		if !ok {
			t.Fatalf("sweep %s missing", id)
		}
		if sw.State().Terminal() {
			if sw.State() != SweepCompleted {
				t.Fatalf("sweep ended %s", sw.State())
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
}
