package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
)

// testBody is a small submission: a quick-sized config with short epochs
// so the run closes several of them, and the epoch table enabled so the
// report exercises the full schema.
const testBody = `{
  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000},
  "warmup_cycles": 100000,
  "measure_cycles": 700000,
  "epochs": true
}`

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func postJob(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func waitCompleted(t *testing.T, url, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var jr JobResponse
		if err := json.Unmarshal(b, &jr); err != nil {
			t.Fatalf("poll %s: %v\n%s", id, err, b)
		}
		switch jr.State {
		case StateCompleted:
			return jr
		case StateFailed, StateCanceled:
			t.Fatalf("job %s ended %s: %s", id, jr.State, jr.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not complete", id)
	return JobResponse{}
}

// referenceReport runs the submission through the same engine entry
// points cmd/hybridsim uses and renders it through the shared
// cliutil.RunReport — the byte-identical reference for the served job.
func referenceReport(t *testing.T, body string) []byte {
	t.Helper()
	req, err := DecodeJobRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	h, err := req.Config.NewRunHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if req.Capacity < 1 {
		h.PreAge(req.Capacity)
	}
	s, err := h.MeasureCtx(context.Background(), req.WarmupCycles, req.MeasureCycles, core.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	winner := -1
	if w, ok := h.DuelingWinner(); ok {
		winner = w
	}
	opt := cliutil.RunReportOptions{CPthWinner: winner, Metrics: req.Metrics}
	if req.Epochs {
		opt.Epochs = h.EpochRing().Samples()
	}
	var buf bytes.Buffer
	if err := cliutil.RunReport(req.Config, s, opt).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerEndToEnd(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2, QueueDepth: 8, CacheSize: 8})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	// Submit → 202 with a job ID.
	resp, body := postJob(t, srv.URL, testBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit status %+v", st)
	}
	if resp.Header.Get("Location") != "/v1/jobs/"+st.ID {
		t.Fatalf("Location %q", resp.Header.Get("Location"))
	}

	// Poll to completion; the served report must be byte-identical to the
	// shared-renderer reference (the cmd/hybridsim output path).
	jr := waitCompleted(t, srv.URL, st.ID)
	if jr.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	if jr.ProgressCycles != jr.TotalCycles || jr.TotalCycles != 800_000 {
		t.Fatalf("progress %d/%d", jr.ProgressCycles, jr.TotalCycles)
	}
	// The bare report endpoint must match the shared renderer byte for
	// byte; the envelope embeds the same report (modulo the envelope
	// encoder's re-indentation).
	want := referenceReport(t, testBody)
	rresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d\n%s", rresp.StatusCode, served)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served report differs from the hybridsim render:\n--- served ---\n%s\n--- want ---\n%s", served, want)
	}
	var embedded, reference bytes.Buffer
	if err := json.Compact(&embedded, jr.Report); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&reference, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(embedded.Bytes(), reference.Bytes()) {
		t.Fatalf("embedded report differs from the hybridsim render:\n%s", jr.Report)
	}

	// Epoch stream: all recorded epochs as NDJSON, at least 2.
	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("epochs content type %q", ct)
	}
	var lines []map[string]json.RawMessage
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var line map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("epoch stream returned %d lines, want >= 2", len(lines))
	}
	if jr.Epochs != len(lines) {
		t.Fatalf("status reports %d epochs, stream returned %d", jr.Epochs, len(lines))
	}
	for _, line := range lines {
		for _, key := range []string{"epoch", "cycles", "values"} {
			if _, ok := line[key]; !ok {
				t.Fatalf("epoch line missing %q: %v", key, line)
			}
		}
	}

	// Resubmitting the identical document is served from the cache: 200
	// (not 202), cache_hit set, same report bytes, no second simulation.
	resp2, body2 := postJob(t, srv.URL, testBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d\n%s", resp2.StatusCode, body2)
	}
	var jr2 JobResponse
	if err := json.Unmarshal(body2, &jr2); err != nil {
		t.Fatal(err)
	}
	if !jr2.CacheHit || jr2.State != StateCompleted {
		t.Fatalf("resubmit not a completed cache hit: %+v", jr2.JobStatus)
	}
	rresp2, err := http.Get(srv.URL + "/v1/jobs/" + jr2.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	cachedReport, _ := io.ReadAll(rresp2.Body)
	rresp2.Body.Close()
	if !bytes.Equal(cachedReport, want) {
		t.Fatal("cached report differs from the original render")
	}
	snap := m.Registry().Snapshot()
	if got := snap.Counter("server.cache.hits"); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := snap.Counter("server.jobs.completed"); got != 1 {
		t.Fatalf("jobs completed = %d, want 1 (cache hit must not re-simulate)", got)
	}

	// The cached job's epoch stream serves the stored series.
	sresp2, err := http.Get(srv.URL + "/v1/jobs/" + jr2.ID + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	cached, err := io.ReadAll(sresp2.Body)
	sresp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(bytes.TrimSpace(cached), []byte("\n")) + 1; n != len(lines) {
		t.Fatalf("cached epoch stream has %d lines, want %d", n, len(lines))
	}

	// Content negotiation: text and CSV renders match the report sink.
	for _, tc := range []struct {
		accept string
		format string
	}{{"text/plain", "text"}, {"text/csv", "csv"}} {
		req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID, nil)
		req.Header.Set("Accept", tc.accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(b) == 0 {
			t.Fatalf("%s render: %d (%d bytes)", tc.format, resp.StatusCode, len(b))
		}
		if !bytes.Contains(b, []byte("mean_ipc")) {
			t.Fatalf("%s render missing mean_ipc:\n%s", tc.format, b)
		}
	}

	// Bad submissions are 400s with the offending field named.
	for _, bad := range []string{
		`{"config": {"no_such_knob": 1}}`,
		`{"config": {"policy": "NOPE"}}`,
		`{"measure_cycles": 0}`,
		`not json`,
	} {
		resp, body := postJob(t, srv.URL, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: %d\n%s", bad, resp.StatusCode, body)
		}
	}

	// Unknown job: 404.
	r404, err := http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", r404.StatusCode)
	}

	// /healthz and /metrics respond.
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzb, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || !bytes.Contains(hzb, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", hz.StatusCode, hzb)
	}
	mx, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mxb, _ := io.ReadAll(mx.Body)
	mx.Body.Close()
	if !bytes.Contains(mxb, []byte("server.jobs.submitted")) {
		t.Fatalf("metrics output missing counters:\n%s", mxb)
	}
}

// TestLiveEpochStream follows a running job and must see epochs arrive
// before the job completes — the stream is live, not a post-hoc dump.
func TestLiveEpochStream(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, CacheSize: NoCache})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	body := `{
	  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 100000},
	  "warmup_cycles": 0,
	  "measure_cycles": 3000000
	}`
	resp, b := postJob(t, srv.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	sawLive := false
	lines := 0
	for sc.Scan() {
		lines++
		if j, ok := m.Job(st.ID); ok && !j.State().Terminal() {
			sawLive = true
		}
	}
	if lines < 2 {
		t.Fatalf("stream returned %d lines", lines)
	}
	if !sawLive {
		t.Fatal("no epoch line arrived while the job was still running")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan string, 4)
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1, CacheSize: NoCache})
	m.beforeRun = func(j *Job) {
		entered <- j.ID()
		<-release
	}
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()
	defer close(release)

	// Job 1 occupies the single worker (held inside beforeRun), job 2
	// fills the queue, job 3 must bounce with 429 + Retry-After.
	resp1, b1 := postJob(t, srv.URL, testBody)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d\n%s", resp1.StatusCode, b1)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never claimed job 1")
	}
	resp2, b2 := postJob(t, srv.URL, testBody)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d\n%s", resp2.StatusCode, b2)
	}
	resp3, b3 := postJob(t, srv.URL, testBody)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d, want 429\n%s", resp3.StatusCode, b3)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := m.Registry().Snapshot().Counter("server.queue.rejects"); got != 1 {
		t.Fatalf("queue rejects = %d, want 1", got)
	}
}

func TestSubmitValidatesBeforeQueueing(t *testing.T) {
	if _, err := DecodeJobRequest([]byte(`{"capacity": 1.5}`)); err == nil {
		t.Fatal("capacity > 1 accepted")
	}
	if _, err := DecodeJobRequest([]byte(`{"config": {"llc_sets": 0}}`)); err == nil {
		t.Fatal("zero-set LLC accepted")
	}
}

func TestCacheKeySemantics(t *testing.T) {
	base, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}

	render := base
	render.Epochs = !base.Epochs
	render.Metrics = !base.Metrics
	if render.CacheKey() != base.CacheKey() {
		t.Fatal("rendering options changed the cache key")
	}

	// Engine runs share one key for every shard count (PR 4 bit
	// identity), but must not collide with the sequential run.
	s2, s4 := base, base
	s2.Config.Shards = 2
	s4.Config.Shards = 4
	if s2.CacheKey() != s4.CacheKey() {
		t.Fatal("shards=2 and shards=4 hash differently")
	}
	if s2.CacheKey() == base.CacheKey() {
		t.Fatal("engine and sequential runs share a cache key")
	}

	seed := base
	seed.Config.Seed++
	if seed.CacheKey() == base.CacheKey() {
		t.Fatal("seed change kept the cache key")
	}
	window := base
	window.MeasureCycles++
	if window.CacheKey() == base.CacheKey() {
		t.Fatal("window change kept the cache key")
	}
}

func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	m, err := NewManager(Options{Workers: 2, QueueDepth: 4, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m, nil))

	resp, b := postJob(t, srv.URL, testBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	// Graceful drain lets the in-flight job finish.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, ok := m.Job(st.ID)
	if !ok || j.State() != StateCompleted {
		t.Fatalf("after drain, job state = %v", j.State())
	}

	// Draining refuses new work with 503.
	resp2, b2 := postJob(t, srv.URL, testBody)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d\n%s", resp2.StatusCode, b2)
	}
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzb, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if !bytes.Contains(hzb, []byte("draining")) {
		t.Fatalf("healthz while draining: %s", hzb)
	}

	srv.Close()
	m.Close()

	// No goroutine leaks once the manager and server are down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(),
		buf[:runtime.Stack(buf, true)])
}

// TestDrainDeadlineCancelsInFlight pins the forced path: when the drain
// context expires, running jobs are checkpoint-canceled rather than run
// to completion, and Drain still waits for the workers to settle.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, CacheSize: NoCache})

	req, err := DecodeJobRequest([]byte(`{
	  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 100000},
	  "warmup_cycles": 0,
	  "measure_cycles": 4000000000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
	if s := j.State(); s != StateCanceled {
		t.Fatalf("in-flight job state %v, want canceled", s)
	}
}

// TestPanickingJobFailsCleanly routes the fault-injection panic through
// the cliutil recover barrier: the job fails, the daemon survives. Task
// names are job IDs, so the env hook targets the first job precisely.
func TestPanickingJobFailsCleanly(t *testing.T) {
	t.Setenv(cliutil.PanicTaskEnv, "job-000001")
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, CacheSize: NoCache})
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if err := j.Err(); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %v does not record the panic", err)
	}
	// The worker survived: a follow-up job (different ID, hook does not
	// match) still completes.
	j2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for !j2.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("follow-up job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j2.State() != StateCompleted {
		t.Fatalf("follow-up state %v: %v", j2.State(), j2.Err())
	}
}

// TestJobTimeout pins the per-job deadline: a run exceeding it fails
// with a timeout error instead of running forever.
func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1, QueueDepth: 2, CacheSize: NoCache,
		JobTimeout: 200 * time.Millisecond,
	})
	req, err := DecodeJobRequest([]byte(`{
	  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 100000},
	  "warmup_cycles": 0,
	  "measure_cycles": 4000000000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if err := j.Err(); err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("error %v does not mention the timeout", err)
	}
}

// TestManagerSubmitAfterDrainErrs covers the manager-level draining
// error (the HTTP 503 path's source).
func TestManagerSubmitAfterDrainErrs(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1, CacheSize: NoCache})
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(req); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

func TestSSEEpochStream(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, CacheSize: NoCache})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, b := postJob(t, srv.URL, testBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, srv.URL, st.ID)

	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/epochs", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(body, []byte("data: {")); n < 2 {
		t.Fatalf("SSE stream has %d data events, want >= 2\n%s", n, body)
	}
	if !bytes.Contains(body, []byte("event: done")) {
		t.Fatalf("SSE stream missing the done event:\n%s", body)
	}
}

func TestJobIDsSequential(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 8, CacheSize: NoCache})
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	req2 := req
	req2.Config.Seed++
	j2, err := m.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID() != "job-000001" || j2.ID() != "job-000002" {
		t.Fatalf("ids %q, %q", j1.ID(), j2.ID())
	}
}
