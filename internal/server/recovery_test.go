package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jobstore"
)

func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func getReport(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: %d\n%s", id, resp.StatusCode, b)
	}
	return b
}

// TestRecoveryServesCompletedFromArtifacts is the basic restart
// invariant: a fresh manager over a data directory a previous manager
// wrote serves that manager's completed jobs — same IDs, byte-identical
// reports — without re-running anything, and its in-memory cache is
// warm (a resubmission of the same config is a cache hit).
func TestRecoveryServesCompletedFromArtifacts(t *testing.T) {
	dir := t.TempDir()
	variant := strings.Replace(testBody, `"epoch_cycles": 200000`, `"epoch_cycles": 150000`, 1)

	st1 := openStore(t, dir)
	m1, err := NewManager(Options{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewHandler(m1, nil))
	var ids []string
	var reports [][]byte
	for _, body := range []string{testBody, variant} {
		resp, b := postJob(t, srv1.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d\n%s", resp.StatusCode, b)
		}
		var jst JobStatus
		if err := json.Unmarshal(b, &jst); err != nil {
			t.Fatal(err)
		}
		waitCompleted(t, srv1.URL, jst.ID)
		ids = append(ids, jst.ID)
		reports = append(reports, getReport(t, srv1.URL, jst.ID))
	}
	srv1.Close()
	m1.Close()
	st1.Close()

	// A new process over the same directory.
	st2 := openStore(t, dir)
	m2, err := NewManager(Options{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	srv2 := httptest.NewServer(NewHandler(m2, nil))
	defer srv2.Close()

	snap := m2.Registry().Snapshot()
	if got := snap.Counters["server.jobs.recovered"]; got != 2 {
		t.Fatalf("recovered counter %d, want 2", got)
	}
	for i, id := range ids {
		j, ok := m2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		jst := j.Status()
		if jst.State != StateCompleted || !jst.Recovered || !jst.CacheHit {
			t.Fatalf("recovered job %s: %+v", id, jst)
		}
		if got := getReport(t, srv2.URL, id); !bytes.Equal(got, reports[i]) {
			t.Fatalf("job %s report changed across restart:\n%s\n---\n%s", id, reports[i], got)
		}
	}

	// The recovered artifacts warmed the in-memory cache.
	resp, b := postJob(t, srv2.URL, testBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmission status %d (want 200 cache hit)\n%s", resp.StatusCode, b)
	}
	var jst JobStatus
	if err := json.Unmarshal(b, &jst); err != nil {
		t.Fatal(err)
	}
	if !jst.CacheHit {
		t.Fatal("resubmission missed the recovered cache")
	}
}

// TestRecoveryRerunsInterruptedJob hand-builds a journal whose job never
// finished (the daemon died while it ran) plus one that failed for
// good: the restart re-executes the first from its recorded request —
// producing the same artifact a live run would — and leaves the second
// failed.
func TestRecoveryRerunsInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t, dir)
	reqBlob, _ := json.Marshal(req)
	must := func(e jobstore.Entry) {
		t.Helper()
		if err := st.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	must(jobstore.Entry{Kind: jobstore.KindJob, ID: "job-000001", State: string(StateQueued),
		CacheKey: req.CacheKey(), Request: reqBlob})
	must(jobstore.Entry{Kind: jobstore.KindJob, ID: "job-000001", State: string(StateRunning)})
	must(jobstore.Entry{Kind: jobstore.KindJob, ID: "job-000001", State: jobstore.StateCheckpoint,
		Progress: 250_000, Total: 800_000})
	must(jobstore.Entry{Kind: jobstore.KindJob, ID: "job-000002", State: string(StateQueued),
		CacheKey: "deadbeef", Request: reqBlob})
	must(jobstore.Entry{Kind: jobstore.KindJob, ID: "job-000002", State: string(StateFailed),
		Error: "synthetic permanent failure"})

	m, err := NewManager(Options{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, ok := m.Job("job-000001")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	j.awaitTerminal()
	jst := j.Status()
	if jst.State != StateCompleted || !jst.Recovered {
		t.Fatalf("re-run job: %+v (%v)", jst, j.Err())
	}
	if jst.CacheHit {
		t.Fatal("re-run job claims a cache hit; it must have executed")
	}
	if !st.HasArtifact(req.CacheKey()) {
		t.Fatal("re-run did not write its artifact")
	}
	// The re-run's artifact matches a from-scratch run of the same
	// request bit for bit (determinism makes re-execution ≡ resumption).
	blob, _, err := st.GetArtifact(req.CacheKey(), "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := encodeResult(req.CacheKey(), res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, fresh) {
		t.Fatal("artifact bytes are not canonical")
	}

	jf, ok := m.Job("job-000002")
	if !ok {
		t.Fatal("failed job not recovered")
	}
	if jf.State() != StateFailed {
		t.Fatalf("failed job re-ran into %s", jf.State())
	}
	if err := jf.Err(); err == nil || !strings.Contains(err.Error(), "synthetic") {
		t.Fatalf("failed job lost its error: %v", err)
	}

	// ID sequence resumes past the recovered jobs.
	j3, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID() != "job-000003" {
		t.Fatalf("post-recovery ID %s, want job-000003", j3.ID())
	}
}

// TestSweepCrashRecovery is the kill-restart invariant for batch
// sweeps. A sweep runs to completion; its data directory is then
// doctored into the state a SIGKILL mid-sweep would leave — two
// children lack completion entries and artifacts, the sweep record
// still says running — and a fresh manager is built over it. The
// restart must serve the surviving children byte-identically from their
// artifacts (no re-execution) and re-run the missing ones to the exact
// same artifact bytes, finishing the sweep.
func TestSweepCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	m1, err := NewManager(Options{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewHandler(m1, nil))

	resp, err := http.Post(srv1.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepTestBody))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: %d\n%s", resp.StatusCode, b)
	}
	var submitted SweepStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		t.Fatal(err)
	}
	full := waitSweepState(t, srv1.URL, submitted.ID, SweepCompleted)
	if full.Completed != 4 {
		t.Fatalf("baseline sweep: %+v", full)
	}
	childIDs := make([]string, 0, 4)
	reports := map[string][]byte{}
	keys := map[string]string{}
	for _, c := range full.Children {
		childIDs = append(childIDs, c.ID)
		reports[c.ID] = getReport(t, srv1.URL, c.ID)
		j, _ := m1.Job(c.ID)
		keys[c.ID] = j.CacheKey()
	}
	srv1.Close()
	m1.Close()
	st1.Close()

	artifactBytes := func(id string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "artifacts", keys[id]))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	baseline := map[string][]byte{}
	for _, id := range childIDs {
		baseline[id] = artifactBytes(id)
	}

	// Doctor the directory into a mid-sweep crash: the last two children
	// never completed — drop their completion entries and artifacts, and
	// the sweep's terminal entry.
	interrupted := map[string]bool{childIDs[2]: true, childIDs[3]: true}
	entries, err := jobstore.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	var kept bytes.Buffer
	for _, e := range entries {
		if e.Kind == jobstore.KindSweep && e.State == string(SweepCompleted) {
			continue
		}
		if e.Kind == jobstore.KindJob && interrupted[e.ID] &&
			(e.State == string(StateCompleted) || e.State == jobstore.StateCheckpoint) {
			continue
		}
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		kept.Write(line)
		kept.WriteByte('\n')
	}
	// A torn tail, as a real crash mid-append would leave.
	kept.WriteString(`{"kind":"job","id":"job-0000`)
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), kept.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for id := range interrupted {
		if err := os.Remove(filepath.Join(dir, "artifacts", keys[id])); err != nil {
			t.Fatal(err)
		}
	}

	// Restart over the crash image.
	st2 := openStore(t, dir)
	m2, err := NewManager(Options{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	srv2 := httptest.NewServer(NewHandler(m2, nil))
	defer srv2.Close()

	resumed := waitSweepState(t, srv2.URL, submitted.ID, SweepCompleted)
	if resumed.Completed != 4 || resumed.Failed != 0 {
		t.Fatalf("resumed sweep: %+v", resumed)
	}

	for _, id := range childIDs {
		j, ok := m2.Job(id)
		if !ok {
			t.Fatalf("child %s lost across restart", id)
		}
		jst := j.Status()
		if !jst.Recovered || jst.State != StateCompleted {
			t.Fatalf("child %s: %+v", id, jst)
		}
		if interrupted[id] {
			if jst.CacheHit {
				t.Fatalf("interrupted child %s claims a cache hit; it must have re-run", id)
			}
		} else if !jst.CacheHit {
			t.Fatalf("surviving child %s re-ran instead of loading its artifact", id)
		}
		// Both classes land on identical bytes: reports on the wire and
		// artifacts on disk.
		if got := getReport(t, srv2.URL, id); !bytes.Equal(got, reports[id]) {
			t.Fatalf("child %s report diverged across crash recovery", id)
		}
		if got := artifactBytes(id); !bytes.Equal(got, baseline[id]) {
			t.Fatalf("child %s artifact diverged across crash recovery", id)
		}
	}
}

// TestRecoveryRejectsCorruptJournal pins the failure mode for damage
// that is not a torn tail: the manager refuses to start rather than
// serve from rewritten history.
func TestRecoveryRejectsCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	journal := "{broken json}\n" +
		`{"kind":"job","id":"job-000001","state":"queued"}` + "\n"
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	st := openStore(t, dir)
	if _, err := NewManager(Options{Workers: 1, Store: st}); err == nil {
		t.Fatal("manager started over a corrupt journal")
	}
}

// TestCheckpointEntriesJournaled pins the checkpoint pipeline: with the
// throttle disabled a run journals progress entries between running and
// completed.
func TestCheckpointEntriesJournaled(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m, err := NewManager(Options{Workers: 1, QueueDepth: 2, CacheSize: NoCache,
		Store: st, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j.awaitTerminal()
	if j.State() != StateCompleted {
		t.Fatalf("job %s (%v)", j.State(), j.Err())
	}
	entries, err := jobstore.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts int
	var lastProgress uint64
	for _, e := range entries {
		if e.State == jobstore.StateCheckpoint {
			ckpts++
			if e.Progress < lastProgress {
				t.Fatalf("checkpoint progress went backwards: %d after %d", e.Progress, lastProgress)
			}
			lastProgress = e.Progress
		}
	}
	if ckpts == 0 {
		t.Fatal("no checkpoint entries journaled")
	}
	if lastProgress != req.WarmupCycles+req.MeasureCycles {
		t.Fatalf("final checkpoint at %d, want %d", lastProgress, req.WarmupCycles+req.MeasureCycles)
	}
	// The journal's final state for the job is completed with an
	// artifact digest.
	red := jobstore.Reduce(entries)
	rec, ok := red.Job(j.ID())
	if !ok || rec.State != string(StateCompleted) || rec.ArtifactSHA == "" {
		t.Fatalf("reduced record %+v", rec)
	}
	data, ok, err := st.GetArtifact(rec.CacheKey, rec.ArtifactSHA)
	if err != nil || !ok {
		t.Fatalf("artifact load: ok=%v err=%v", ok, err)
	}
	if _, err := decodeResult(data); err != nil {
		t.Fatal(err)
	}
}
