package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cliutil"
)

// sweepTestBody expands to a 2×2 grid of quick runs: two policies at two
// CPth points, the paper's sweep shape in miniature.
const sweepTestBody = `{
  "name": "grid",
  "base": {
    "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000},
    "warmup_cycles": 100000,
    "measure_cycles": 400000
  },
  "axes": [
    {"field": "policy", "values": ["CA", "CA_RWR"]},
    {"field": "cpth", "values": [30, 40]}
  ],
  "concurrency": 2
}`

func TestSweepSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"unknown-field", `{"axes":[{"field":"bogus","values":[1]}]}`, "unknown field"},
		{"unknown-top-level", `{"axess":[]}`, "unknown field"},
		{"repeated-axis", `{"axes":[{"field":"cpth","values":[1]},{"field":"cpth","values":[2]}]}`, "repeated"},
		{"empty-values", `{"axes":[{"field":"cpth","values":[]}]}`, "no values"},
		{"cap-ceiling", `{"max_children": 5000}`, "ceiling"},
		{"conc-ceiling", `{"concurrency": 5000}`, "ceiling"},
		{"trailing", `{"axes":[]} {}`, "trailing"},
		{"over-cap", `{"max_children": 3, "axes":[{"field":"cpth","values":[1,2,3,4]}]}`, "max_children"},
		{"bad-child", `{"axes":[{"field":"cpth","values":[100]},{"field":"policy","values":["CA"]}]}`, "CPth"},
		{"bad-value-type", `{"axes":[{"field":"cpth","values":["forty"]}]}`, "cpth"},
		{"strict-tournament", `{"axes":[{"field":"tournament","values":[{"candidatez":[]}]}]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := DecodeSweepSpec([]byte(tc.body))
			if err == nil {
				_, err = spec.Expand()
			}
			if err == nil {
				t.Fatalf("accepted %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSweepExpandDeterministic pins the expansion order (first axis
// slowest) and the axis labels — recovery depends on a resumed daemon
// re-expanding a journaled spec into the same children.
func TestSweepExpandDeterministic(t *testing.T) {
	spec, err := DecodeSweepSpec([]byte(sweepTestBody))
	if err != nil {
		t.Fatal(err)
	}
	children, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"policy=CA,cpth=30", "policy=CA,cpth=40",
		"policy=CA_RWR,cpth=30", "policy=CA_RWR,cpth=40",
	}
	if len(children) != len(wantLabels) {
		t.Fatalf("expanded to %d children, want %d", len(children), len(wantLabels))
	}
	for i, c := range children {
		if c.Label != wantLabels[i] {
			t.Errorf("child %d label %q, want %q", i, c.Label, wantLabels[i])
		}
	}
	if children[0].Request.Config.PolicyName != "CA" || children[0].Request.Config.CPth != 30 {
		t.Fatalf("child 0 config %+v", children[0].Request.Config)
	}
	if children[3].Request.Config.PolicyName != "CA_RWR" || children[3].Request.Config.CPth != 40 {
		t.Fatalf("child 3 config %+v", children[3].Request.Config)
	}
	// The base request must not be mutated by expansion.
	if spec.Base.Config.CPth != DefaultJobRequest().Config.CPth {
		t.Fatal("expansion mutated the base request")
	}

	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range children {
		if again[i].Request.CacheKey() != children[i].Request.CacheKey() {
			t.Fatalf("re-expansion changed child %d's cache key", i)
		}
	}
}

// TestSweepTournamentAxisIsolated pins that a tournament axis allocates
// a fresh bracket per child instead of writing through a base pointer
// shared by its siblings.
func TestSweepTournamentAxisIsolated(t *testing.T) {
	spec, err := DecodeSweepSpec([]byte(`{"axes":[{"field":"tournament","values":[
	  {"candidates":[{"policy":"CA","cpth":20},{"policy":"CA","cpth":30}]},
	  {"candidates":[{"policy":"CA","cpth":40},{"policy":"CA","cpth":50}]}
	]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	children, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("expanded to %d children", len(children))
	}
	t0, t1 := children[0].Request.Config.Tournament, children[1].Request.Config.Tournament
	if t0 == nil || t1 == nil || t0 == t1 {
		t.Fatalf("children share a bracket: %p %p", t0, t1)
	}
	if t0.Candidates[0].CPth != 20 || t1.Candidates[0].CPth != 40 {
		t.Fatalf("bracket values leaked across children: %+v %+v", t0, t1)
	}
}

func waitSweepState(t *testing.T, url, id string, want SweepState) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st SweepStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("poll sweep %s: %v\n%s", id, err, b)
		}
		if st.State == want {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %s", id, want)
	return SweepStatus{}
}

func TestSweepEndToEnd(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2, QueueDepth: 8, CacheSize: 8})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepTestBody))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: %d\n%s", resp.StatusCode, b)
	}
	var st SweepStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Fatalf("Location %q", loc)
	}
	if st.TotalChildren != 4 || len(st.Children) != 4 {
		t.Fatalf("submitted sweep reports %d/%d children", st.TotalChildren, len(st.Children))
	}

	final := waitSweepState(t, srv.URL, st.ID, SweepCompleted)
	if final.Completed != 4 || final.Failed != 0 || final.Canceled != 0 {
		t.Fatalf("final counts %+v", final)
	}
	if final.MeanIPC <= 0 {
		t.Fatalf("aggregate mean IPC %v", final.MeanIPC)
	}
	for _, c := range final.Children {
		if c.State != StateCompleted || c.MeanIPC == nil || *c.MeanIPC <= 0 {
			t.Fatalf("child %+v not completed with an IPC", c)
		}
		// Each child is a first-class job: its report is served.
		r, err := http.Get(srv.URL + "/v1/jobs/" + c.ID + "/report")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("child %s report: %d", c.ID, r.StatusCode)
		}
	}

	// The sweep list endpoint carries the same aggregate, without rows.
	resp, err = http.Get(srv.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []SweepStatus
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Completed != 4 || list[0].Children != nil {
		t.Fatalf("sweep list %s", b)
	}

	// Resubmitting the same sweep is all cache hits and completes
	// immediately — children share the jobs' content addresses.
	resp, err = http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepTestBody))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var again SweepStatus
	if err := json.Unmarshal(b, &again); err != nil {
		t.Fatal(err)
	}
	final2 := waitSweepState(t, srv.URL, again.ID, SweepCompleted)
	if final2.CacheHits != 4 {
		t.Fatalf("resubmitted sweep hit the cache %d/4 times", final2.CacheHits)
	}
}

// TestSweepConcurrencyCap pins per-sweep admission pacing: with
// concurrency 1 the scheduler holds the next child until the previous
// one is terminal, regardless of free workers.
func TestSweepConcurrencyCap(t *testing.T) {
	m := newTestManager(t, Options{Workers: 4, QueueDepth: 8, CacheSize: NoCache})
	var violations atomic.Int32
	m.beforeRun = func(j *Job) {
		if j.sweepID == "" {
			return
		}
		// With cap 1, no sibling may be in flight when this child starts.
		for _, other := range m.Jobs() {
			if other.ID() != j.ID() && other.State() == StateRunning {
				violations.Add(1)
			}
		}
	}
	spec, err := DecodeSweepSpec([]byte(`{
	  "base": {"config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000},
	           "warmup_cycles": 50000, "measure_cycles": 200000},
	  "axes": [{"field": "cpth", "values": [20, 30, 40]}],
	  "concurrency": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sw.State() != SweepCompleted {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s", sw.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d children started with a sibling still running", n)
	}
	// Serial admission preserves expansion order.
	ids := sw.Children()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("children out of order: %v", ids)
		}
	}
}

// TestRetryRecoversTransientFailure pins the retry loop: an attempt that
// dies by panic is re-executed after backoff and the job still
// completes, with the attempt count on the wire.
func TestRetryRecoversTransientFailure(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1, QueueDepth: 2, CacheSize: NoCache,
		Retries: 2, RetryBackoff: backoffFast(),
	})
	m.beforeAttempt = func(j *Job, attempt int) error {
		if attempt == 1 {
			panic("injected transient fault")
		}
		return nil
	}
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j.awaitTerminal()
	if j.State() != StateCompleted {
		t.Fatalf("state %v (%v), want completed", j.State(), j.Err())
	}
	if j.Attempts() != 2 {
		t.Fatalf("attempts %d, want 2", j.Attempts())
	}
	if st := j.Status(); st.Attempts != 2 {
		t.Fatalf("wire attempts %d", st.Attempts)
	}
	snap := m.Registry().Snapshot()
	if got := snap.Counters["server.jobs.retried"]; got != 1 {
		t.Fatalf("retried counter %d, want 1", got)
	}
	if got := snap.Counters["server.jobs.completed"]; got != 1 {
		t.Fatalf("completed counter %d, want 1", got)
	}
}

// TestRetryExhaustionFails pins the bound: a job whose every attempt
// dies transiently fails for good after Retries+1 attempts — it does
// not loop forever.
func TestRetryExhaustionFails(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1, QueueDepth: 2, CacheSize: NoCache,
		Retries: 2, RetryBackoff: backoffFast(),
	})
	m.beforeAttempt = func(j *Job, attempt int) error {
		panic(fmt.Sprintf("attempt %d always dies", attempt))
	}
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j.awaitTerminal()
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if j.Attempts() != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", j.Attempts())
	}
	if err := j.Err(); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %v does not record the panic", err)
	}
}

// TestPermanentErrorsDoNotRetry pins the failure classification: a plain
// error return is permanent and fails on the first attempt even with
// retries configured.
func TestPermanentErrorsDoNotRetry(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1, QueueDepth: 2, CacheSize: NoCache,
		Retries: 3, RetryBackoff: backoffFast(),
	})
	m.beforeAttempt = func(j *Job, attempt int) error {
		return fmt.Errorf("deterministic config error")
	}
	req, err := DecodeJobRequest([]byte(testBody))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j.awaitTerminal()
	if j.State() != StateFailed || j.Attempts() != 1 {
		t.Fatalf("state %v after %d attempts, want failed after 1", j.State(), j.Attempts())
	}
}

// TestRetryAfterDerived pins the Retry-After estimate: the floor before
// any observation, backlog-and-duration scaling after, and the 120s
// clamp.
func TestRetryAfterDerived(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2, QueueDepth: 4, CacheSize: NoCache})
	if got := m.RetryAfterSeconds(); got != 1 {
		t.Fatalf("cold estimate %d, want the 1s floor", got)
	}
	m.observeDuration(10 * time.Second)
	// Empty queue: one slot of one 10s job across 2 workers → 5s.
	if got := m.RetryAfterSeconds(); got != 5 {
		t.Fatalf("estimate %d, want 5", got)
	}
	m.observeDuration(10 * time.Hour) // EWMA jumps; the clamp holds
	if got := m.RetryAfterSeconds(); got != 120 {
		t.Fatalf("estimate %d, want the 120s clamp", got)
	}
}

// TestQueueFullRetryAfterHeader pins the wire form: the 429's
// Retry-After is a positive integer number of seconds.
func TestQueueFullRetryAfterHeader(t *testing.T) {
	block := make(chan struct{})
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1, CacheSize: NoCache})
	m.beforeRun = func(*Job) { <-block }
	defer close(block)
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	m.observeDuration(3 * time.Second) // pretend a 3s job history
	var rejected *http.Response
	for i := 0; i < 10; i++ {
		resp, _ := postJob(t, srv.URL, testBody)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
	}
	if rejected == nil {
		t.Fatal("queue never filled")
	}
	secs, err := strconv.Atoi(rejected.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 120 {
		t.Fatalf("Retry-After %q not a clamped integer", rejected.Header.Get("Retry-After"))
	}
	// One worker and a backlog of 1 at ~3s each → more than the 1s floor.
	if secs < 3 {
		t.Fatalf("Retry-After %d ignores the observed duration", secs)
	}
}

func backoffFast() cliutil.Backoff {
	return cliutil.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
}
