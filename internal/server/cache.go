package server

import "sync"

// resultCache is the content-addressed result store: cache key (the
// SHA-256 of the canonical simulation inputs, see JobRequest.CacheKey) →
// completed Result. Entries are immutable, so hits hand out the shared
// pointer. Eviction is FIFO by insertion order — the daemon's working
// sets are parameter sweeps that rarely revisit old points, so recency
// tracking buys nothing over the simpler bound.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*Result
	order   []string
}

// newResultCache builds a cache bounded to capacity entries; a
// non-positive capacity disables caching entirely.
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*Result)}
}

func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	return r, ok
}

func (c *resultCache) put(key string, r *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
