package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/analytic"
)

// This file is the POST /v1/estimate surface: the analytic fast path as
// a synchronous endpoint. Unlike /v1/jobs — whose runs take seconds and
// queue — an estimate answers inline: a cached calibration is an RLock
// and a map probe (sub-millisecond, pinned by cmd/bench -estimate); a
// miss runs the short calibration simulation on the request goroutine
// and content-addresses the result in the jobstore, so no spec is ever
// calibrated twice across restarts.

// DecodeEstimateSpec decodes a POST /v1/estimate body strictly over
// analytic.DefaultSpec — the same decode discipline as /v1/jobs:
// unknown fields and trailing data are rejected, omitted fields keep
// the defaults, and the embedded config passes the full geometry
// allowlist before anything simulates.
func DecodeEstimateSpec(data []byte) (analytic.Spec, error) {
	spec := analytic.DefaultSpec()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("estimate spec: %w", err)
	}
	if dec.More() {
		return spec, fmt.Errorf("estimate spec: trailing data after JSON document")
	}
	return spec, spec.Validate()
}

// EstimateResponse is the POST /v1/estimate JSON body: the estimate,
// the calibration it came from, and cache provenance. Everything except
// CacheHit is a pure function of the spec, so repeated queries render
// byte-identical bodies once the first response primed the cache.
type EstimateResponse struct {
	CacheKey    string                `json:"cache_key"`
	CacheHit    bool                  `json:"cache_hit"`
	Estimate    analytic.Estimate     `json:"estimate"`
	Calibration *analytic.Calibration `json:"calibration,omitempty"`
}

// Estimator exposes the manager's analytic estimator (cmd/bench pins
// its fast-path lookup).
func (m *Manager) Estimator() *analytic.Estimator { return m.est }

// Estimate answers an estimate query: memory cache, then store
// artifact, then a fresh calibration (per-key singleflight, journaled
// nowhere — the artifact IS the durable record, keyed "est-<sha256>" by
// content). New calibrations are refused while draining; cached answers
// are served either way, they cost nothing.
func (m *Manager) Estimate(ctx context.Context, spec analytic.Spec) (EstimateResponse, error) {
	m.estimates.Add(1)
	key := spec.CacheKey()
	if cal, ok := m.est.Calibration(key); ok {
		m.estCacheHits.Add(1)
		return EstimateResponse{CacheKey: key, CacheHit: true,
			Estimate: m.est.EstimateOf(cal), Calibration: cal}, nil
	}
	if m.store != nil {
		if data, ok, err := m.store.GetArtifact(key, ""); ok && err == nil {
			if cal, derr := analytic.DecodeCalibration(data); derr == nil {
				m.est.Put(key, cal)
				m.estCacheHits.Add(1)
				return EstimateResponse{CacheKey: key, CacheHit: true,
					Estimate: m.est.EstimateOf(cal), Calibration: cal}, nil
			} else {
				m.log.Warn("estimate artifact unusable, recalibrating", "key", key, "err", derr)
			}
		}
	}
	if m.Draining() {
		return EstimateResponse{}, ErrDraining
	}
	cal, err := m.est.Do(ctx, key, spec)
	if err != nil {
		return EstimateResponse{}, err
	}
	m.estCalibrations.Add(1)
	if m.store != nil {
		if blob, eerr := analytic.EncodeCalibration(cal); eerr == nil {
			if _, werr := m.store.PutArtifact(key, blob); werr != nil {
				m.log.Error("estimate artifact write failed", "key", key, "err", werr)
			}
		}
	}
	m.log.Info("estimate calibrated", "key", key, "policy", cal.Policy,
		"mix", cal.MixID+1, "young_ipc", cal.YoungIPC, "censored", cal.Censored)
	return EstimateResponse{CacheKey: key, Estimate: m.est.EstimateOf(cal), Calibration: cal}, nil
}
