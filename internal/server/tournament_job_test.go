package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// tournamentBody submits a user-defined tournament bracket as a simd
// job: the "tournament" object rides inside the config exactly as
// cmd/tournament -bracket documents it.
const tournamentBody = `{
  "config": {
    "policy": "TOURNAMENT",
    "llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000,
    "tournament": {
      "candidates": [
        {"policy": "CA_RWR", "cpth": 44},
        {"policy": "SRRIP"},
        {"policy": "BRRIP"}
      ],
      "sampler_divisor": 16
    }
  },
  "warmup_cycles": 100000,
  "measure_cycles": 500000
}`

// TestTournamentBracketJob drives a user-defined bracket through the
// whole service: strict decode, validation, execution, and a completed
// report. This is the acceptance path for "brackets as simd jobs".
func TestTournamentBracketJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 4, CacheSize: 4})
	srv := httptest.NewServer(NewHandler(m, nil))
	defer srv.Close()

	resp, body := postJob(t, srv.URL, tournamentBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	jr := waitCompleted(t, srv.URL, st.ID)
	if len(jr.Report) == 0 {
		t.Fatal("completed bracket job carries no report")
	}
	if !strings.Contains(string(jr.Report), "TOURNAMENT") {
		t.Fatalf("report does not mention the tournament policy:\n%s", jr.Report)
	}
}

// TestTournamentBracketJobStrictDecode pins the strictness and
// validation guarantees for bracket submissions.
func TestTournamentBracketJobStrictDecode(t *testing.T) {
	// Unknown fields inside the bracket object are rejected, same as
	// anywhere else in the document.
	bad := `{"config": {"policy": "TOURNAMENT", "tournament": {"candidates": [
	  {"policy": "CA"}, {"policy": "SRRIP"}], "bogus": 1}}}`
	if _, err := DecodeJobRequest([]byte(bad)); err == nil {
		t.Fatal("unknown bracket field accepted")
	}
	// Invalid brackets fail request validation before queueing.
	invalid := `{"config": {"policy": "TOURNAMENT", "tournament": {"candidates": [
	  {"policy": "CP_SD"}, {"policy": "SRRIP"}]}}}`
	if _, err := DecodeJobRequest([]byte(invalid)); err == nil {
		t.Fatal("ineligible bracket candidate accepted")
	}
	one := `{"config": {"policy": "TOURNAMENT", "tournament": {"candidates": [{"policy": "CA"}]}}}`
	if _, err := DecodeJobRequest([]byte(one)); err == nil {
		t.Fatal("1-candidate bracket accepted")
	}
	// A nil bracket is the default bracket — a valid submission.
	if _, err := DecodeJobRequest([]byte(`{"config": {"policy": "TOURNAMENT"}}`)); err != nil {
		t.Fatalf("default-bracket submission rejected: %v", err)
	}
}

// TestTournamentBracketCacheKey pins that the bracket is part of the
// result's content address: different brackets must never share a
// cached result, identical brackets must.
func TestTournamentBracketCacheKey(t *testing.T) {
	base, err := DecodeJobRequest([]byte(tournamentBody))
	if err != nil {
		t.Fatal(err)
	}
	same, err := DecodeJobRequest([]byte(tournamentBody))
	if err != nil {
		t.Fatal(err)
	}
	if base.CacheKey() != same.CacheKey() {
		t.Fatal("identical bracket submissions hash differently")
	}

	cpth := base
	tc := *base.Config.Tournament
	tc.Candidates = append([]core.TournamentCandidate(nil), tc.Candidates...)
	tc.Candidates[0].CPth = 58
	cpth.Config.Tournament = &tc
	if cpth.CacheKey() == base.CacheKey() {
		t.Fatal("changing a candidate CPth kept the cache key")
	}

	divisor := base
	td := *base.Config.Tournament
	td.SamplerDivisor = 32
	divisor.Config.Tournament = &td
	if divisor.CacheKey() == base.CacheKey() {
		t.Fatal("changing the sampler divisor kept the cache key")
	}

	nilBracket := base
	nilBracket.Config.Tournament = nil
	if nilBracket.CacheKey() == base.CacheKey() {
		t.Fatal("explicit and nil brackets share a cache key")
	}
}
