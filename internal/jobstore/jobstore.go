// Package jobstore is the durability layer of the simd daemon: an
// append-only JSONL journal of job and sweep state transitions plus a
// directory of content-addressed result artifacts. Together they make
// the daemon crash-recoverable — on boot the journal replays into the
// last known state of every job and sweep, terminal results are served
// from their artifacts, and anything that was queued or running is
// re-executed from its recorded request (the simulator is bit-exact
// deterministic, so re-execution is indistinguishable from resumption).
//
// Layout under the root directory:
//
//	journal.jsonl      one JSON object per state transition, append-only
//	artifacts/<key>    result blobs named by their request cache key
//
// Journal writes are synced; artifact writes go through a temp file and
// rename, so a crash never leaves a half-written artifact under its
// final name. A crash can truncate the journal's last line — Replay
// tolerates exactly that (the torn tail is dropped, anything before it
// is intact because every append syncs).
package jobstore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Entry is one journal line: a state transition of a job or a sweep.
// Fields are populated as relevant to the transition; creation entries
// carry the full request/spec document so recovery can re-execute
// without any other source of truth.
type Entry struct {
	Time  time.Time `json:"ts"`
	Kind  string    `json:"kind"` // KindJob or KindSweep
	ID    string    `json:"id"`
	State string    `json:"state"`

	// Job entries.
	Sweep       string          `json:"sweep,omitempty"` // owning sweep, if any
	Label       string          `json:"label,omitempty"` // sweep-child axis label
	CacheKey    string          `json:"cache_key,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Worker      string          `json:"worker,omitempty"` // fleet lease: executing worker ID
	Lease       string          `json:"lease,omitempty"`  // fleet lease: lease token
	Error       string          `json:"error,omitempty"`
	Request     json.RawMessage `json:"request,omitempty"`      // creation: the decoded-and-revalidated submission
	ArtifactSHA string          `json:"artifact_sha,omitempty"` // completion: SHA-256 of the artifact bytes
	Progress    uint64          `json:"progress,omitempty"`     // checkpoint: cycles completed
	Total       uint64          `json:"total,omitempty"`        // checkpoint: cycles requested

	// Sweep entries.
	Spec     json.RawMessage `json:"spec,omitempty"`     // creation: the sweep spec document
	Children []string        `json:"children,omitempty"` // creation: child job IDs in expansion order
}

// Entry kinds.
const (
	KindJob   = "job"
	KindSweep = "sweep"
)

// StateCheckpoint is the journal-only pseudo-state recording run
// progress; it never becomes a job's lifecycle state.
const StateCheckpoint = "checkpoint"

// Store is an open journal + artifact directory. All methods are safe
// for concurrent use.
type Store struct {
	root string

	mu      sync.Mutex
	journal *os.File
}

const (
	journalName  = "journal.jsonl"
	artifactsDir = "artifacts"
)

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, artifactsDir), 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &Store{root: dir, journal: f}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Close closes the journal file. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Close()
}

// Append writes one journal entry and syncs it to stable storage, so
// an entry either survives a crash whole or (the torn tail) not at all.
// An Entry with a zero Time is stamped with the current time.
func (s *Store) Append(e Entry) error {
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("jobstore: marshal entry: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journal.Write(line); err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("jobstore: sync: %w", err)
	}
	return nil
}

// Replay reads the journal from the start and returns every intact
// entry in append order. A torn final line (crash mid-append) is
// dropped silently; corruption anywhere else is an error — it means
// something other than a crash rewrote history.
func Replay(dir string) ([]Entry, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lastComplete := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			// Only the final line may be torn; remember and verify.
			lastComplete = false
			continue
		}
		if !lastComplete {
			return nil, fmt.Errorf("jobstore: corrupt journal line before the tail: %q", line)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobstore: read journal: %w", err)
	}
	return entries, nil
}

// artifactPath maps a cache key to its artifact file. Keys are
// hex-encoded hashes; anything else is rejected to keep file naming
// path-traversal-proof.
func (s *Store) artifactPath(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("jobstore: invalid artifact key %q", key)
	}
	return filepath.Join(s.root, artifactsDir, key), nil
}

// PutArtifact durably stores the result blob under its cache key and
// returns the SHA-256 of the bytes (hex), for the completion journal
// entry. The write is temp-file + rename: a crash leaves either the old
// artifact or the new one, never a torn file. Re-putting an existing
// key is a no-op (artifacts are content-addressed by their inputs, and
// the simulator is deterministic, so the bytes cannot legitimately
// differ).
func (s *Store) PutArtifact(key string, data []byte) (string, error) {
	path, err := s.artifactPath(key)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	sha := hex.EncodeToString(sum[:])
	if _, err := os.Stat(path); err == nil {
		return sha, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return "", fmt.Errorf("jobstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("jobstore: write artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("jobstore: sync artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("jobstore: publish artifact: %w", err)
	}
	return sha, nil
}

// GetArtifact loads the artifact stored under key; ok is false when no
// artifact exists. When wantSHA is non-empty the loaded bytes are hash-
// verified against it — a mismatch (disk corruption, manual tampering)
// is an error, not a silent wrong result.
func (s *Store) GetArtifact(key, wantSHA string) ([]byte, bool, error) {
	path, err := s.artifactPath(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("jobstore: %w", err)
	}
	if wantSHA != "" {
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != wantSHA {
			return nil, false, fmt.Errorf("jobstore: artifact %s hash mismatch: journal says %s, disk holds %s", key, wantSHA, got)
		}
	}
	return data, true, nil
}

// HasArtifact reports whether an artifact exists for key.
func (s *Store) HasArtifact(key string) bool {
	path, err := s.artifactPath(key)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// CountArtifacts returns the number of stored artifacts (a gauge for
// /metrics; walks the directory, so not for hot paths).
func (s *Store) CountArtifacts() int {
	names, err := os.ReadDir(filepath.Join(s.root, artifactsDir))
	if err != nil {
		return 0
	}
	n := 0
	for _, d := range names {
		if !d.IsDir() && !strings.Contains(d.Name(), ".tmp") {
			n++
		}
	}
	return n
}

// JobRecord is the reduced state of one job after journal replay: its
// latest state plus the creation-time fields recovery needs.
type JobRecord struct {
	ID          string
	Sweep       string
	Label       string
	State       string
	CacheKey    string
	Attempt     int
	Worker      string
	Error       string
	Request     json.RawMessage
	ArtifactSHA string
	Progress    uint64
	Total       uint64
}

// SweepRecord is the reduced state of one sweep after journal replay.
type SweepRecord struct {
	ID       string
	State    string
	Spec     json.RawMessage
	Children []string
}

// Reduced is the journal folded into current state: every job and sweep
// under its latest state, in first-appearance order.
type Reduced struct {
	Jobs       []*JobRecord
	Sweeps     []*SweepRecord
	jobIndex   map[string]*JobRecord
	sweepIndex map[string]*SweepRecord
}

// Job looks a reduced job record up by ID.
func (r *Reduced) Job(id string) (*JobRecord, bool) {
	j, ok := r.jobIndex[id]
	return j, ok
}

// Sweep looks a reduced sweep record up by ID.
func (r *Reduced) Sweep(id string) (*SweepRecord, bool) {
	s, ok := r.sweepIndex[id]
	return s, ok
}

// Reduce folds replayed entries into the latest state of every job and
// sweep. Later entries win field-by-field: a checkpoint updates
// progress without clearing the creation request, a completion records
// the artifact hash, and so on.
func Reduce(entries []Entry) *Reduced {
	r := &Reduced{
		jobIndex:   make(map[string]*JobRecord),
		sweepIndex: make(map[string]*SweepRecord),
	}
	for _, e := range entries {
		switch e.Kind {
		case KindJob:
			j, ok := r.jobIndex[e.ID]
			if !ok {
				j = &JobRecord{ID: e.ID}
				r.jobIndex[e.ID] = j
				r.Jobs = append(r.Jobs, j)
			}
			if e.State == StateCheckpoint {
				j.Progress, j.Total = e.Progress, e.Total
				continue
			}
			j.State = e.State
			if e.Sweep != "" {
				j.Sweep = e.Sweep
			}
			if e.Label != "" {
				j.Label = e.Label
			}
			if e.CacheKey != "" {
				j.CacheKey = e.CacheKey
			}
			if e.Attempt > j.Attempt {
				j.Attempt = e.Attempt
			}
			if e.Worker != "" {
				j.Worker = e.Worker
			}
			if e.Error != "" {
				j.Error = e.Error
			}
			if len(e.Request) > 0 {
				j.Request = e.Request
			}
			if e.ArtifactSHA != "" {
				j.ArtifactSHA = e.ArtifactSHA
			}
		case KindSweep:
			s, ok := r.sweepIndex[e.ID]
			if !ok {
				s = &SweepRecord{ID: e.ID}
				r.sweepIndex[e.ID] = s
				r.Sweeps = append(r.Sweeps, s)
			}
			s.State = e.State
			if len(e.Spec) > 0 {
				s.Spec = e.Spec
			}
			if len(e.Children) > 0 {
				s.Children = e.Children
			}
		}
	}
	return r
}
