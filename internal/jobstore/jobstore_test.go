package jobstore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestJournalAppendReplay(t *testing.T) {
	s := openTestStore(t)
	entries := []Entry{
		{Kind: KindSweep, ID: "sweep-000001", State: "running", Spec: []byte(`{"axes":[]}`), Children: []string{"job-000001"}},
		{Kind: KindJob, ID: "job-000001", Sweep: "sweep-000001", State: "queued", CacheKey: "aa", Request: []byte(`{"config":{}}`)},
		{Kind: KindJob, ID: "job-000001", State: "running", Attempt: 1},
		{Kind: KindJob, ID: "job-000001", State: StateCheckpoint, Progress: 500, Total: 1000},
		{Kind: KindJob, ID: "job-000001", State: "completed", ArtifactSHA: "deadbeef"},
		{Kind: KindSweep, ID: "sweep-000001", State: "completed"},
	}
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Replay(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.Kind != e.Kind || g.ID != e.ID || g.State != e.State {
			t.Fatalf("entry %d = %+v, want %+v", i, g, e)
		}
		if g.Time.IsZero() {
			t.Fatalf("entry %d not timestamped", i)
		}
	}

	r := Reduce(got)
	j, ok := r.Job("job-000001")
	if !ok {
		t.Fatal("job missing from reduction")
	}
	if j.State != "completed" || j.Sweep != "sweep-000001" || j.CacheKey != "aa" ||
		j.Attempt != 1 || j.ArtifactSHA != "deadbeef" || len(j.Request) == 0 {
		t.Fatalf("reduced job %+v", j)
	}
	if j.Progress != 500 || j.Total != 1000 {
		t.Fatalf("checkpoint not folded: %+v", j)
	}
	sw, ok := r.Sweep("sweep-000001")
	if !ok {
		t.Fatal("sweep missing from reduction")
	}
	if sw.State != "completed" || len(sw.Children) != 1 || len(sw.Spec) == 0 {
		t.Fatalf("reduced sweep %+v", sw)
	}
}

func TestReplayEmptyAndMissing(t *testing.T) {
	if got, err := Replay(t.TempDir()); err != nil || got != nil {
		t.Fatalf("missing journal: %v, %v", got, err)
	}
	s := openTestStore(t)
	if got, err := Replay(s.Root()); err != nil || len(got) != 0 {
		t.Fatalf("empty journal: %v, %v", got, err)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	s := openTestStore(t)
	for i := 0; i < 3; i++ {
		if err := s.Append(Entry{Kind: KindJob, ID: "job-000001", State: "running", Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a torn, unterminated final line.
	path := filepath.Join(s.Root(), "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ts":"2026-01-01T00:00:00Z","kind":"job","id":"jo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Replay(s.Root())
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(got))
	}
}

func TestReplayRejectsMidJournalCorruption(t *testing.T) {
	s := openTestStore(t)
	if err := s.Append(Entry{Kind: KindJob, ID: "a", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Root(), "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage not json\n")
	f.Close()
	if err := s.Append(Entry{Kind: KindJob, ID: "b", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(s.Root()); err == nil {
		t.Fatal("mid-journal corruption must be an error, not silently skipped")
	}
}

func TestArtifactRoundTripAndVerify(t *testing.T) {
	s := openTestStore(t)
	key := "0123abcd"
	data := []byte(`{"version":1,"summary":{}}`)
	sha, err := s.PutArtifact(key, data)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if sha != hex.EncodeToString(sum[:]) {
		t.Fatalf("returned sha %s", sha)
	}
	if !s.HasArtifact(key) {
		t.Fatal("HasArtifact false after put")
	}
	got, ok, err := s.GetArtifact(key, sha)
	if err != nil || !ok || string(got) != string(data) {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	// Unverified load works too.
	if _, ok, err := s.GetArtifact(key, ""); err != nil || !ok {
		t.Fatalf("unverified get: %v %v", ok, err)
	}
	// Wrong hash is an explicit error.
	if _, _, err := s.GetArtifact(key, "00"); err == nil {
		t.Fatal("hash mismatch not reported")
	}
	// Missing key is a clean miss.
	if _, ok, err := s.GetArtifact("ffff", ""); ok || err != nil {
		t.Fatalf("missing artifact: %v %v", ok, err)
	}
	// Re-putting the same key is a no-op, not an error.
	if _, err := s.PutArtifact(key, data); err != nil {
		t.Fatal(err)
	}
	if n := s.CountArtifacts(); n != 1 {
		t.Fatalf("CountArtifacts = %d", n)
	}
}

func TestArtifactKeyRejectsPathTraversal(t *testing.T) {
	s := openTestStore(t)
	for _, bad := range []string{"", "../escape", "a/b", `a\b`, "x.json"} {
		if _, err := s.PutArtifact(bad, []byte("x")); err == nil {
			t.Errorf("key %q accepted", bad)
		}
		if s.HasArtifact(bad) {
			t.Errorf("HasArtifact(%q) true", bad)
		}
	}
}
