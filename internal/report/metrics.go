package report

import "repro/internal/metrics"

// Bridges from the metrics registry to the report sink: a snapshot (or
// windowed delta) becomes a two-column metric/value table, and the
// per-epoch sample ring becomes a time-series table. Every cmd tool's
// counter output goes through these, so the registry's hierarchical names
// are the report vocabulary.

// SnapshotTable renders a metrics snapshot as a metric/value table, names
// sorted. Counters print as integers, gauges via FormatMetricValue.
func SnapshotTable(title string, s metrics.Snapshot) *Table {
	t := New(title, "metric", "value")
	for _, name := range s.Names() {
		if v, ok := s.Counters[name]; ok {
			t.AddRow(name, FormatCount(v))
			continue
		}
		t.AddRow(name, FormatMetricValue(s.Gauges[name]))
	}
	return t
}

// SeriesTable renders an epoch ring as a time-series table: one row per
// retained sample (oldest first) with the epoch index, its closing cycle
// and the ring's columns.
func SeriesTable(title string, ring *metrics.EpochRing) *Table {
	return SamplesTable(title, ring.Columns(), ring.Samples())
}

// SamplesTable renders epoch samples that have left their ring — a copy
// held by a completed simd job, say — as the same time-series table
// SeriesTable produces, so cached results re-render byte-identically.
func SamplesTable(title string, columns []string, samples []metrics.Sample) *Table {
	cols := append([]string{"epoch", "cycles"}, columns...)
	t := New(title, cols...)
	for _, s := range samples {
		row := make([]interface{}, 0, len(cols))
		row = append(row, s.Epoch, s.Cycles)
		for _, v := range s.Values {
			row = append(row, FormatMetricValue(v))
		}
		t.AddRow(row...)
	}
	return t
}
