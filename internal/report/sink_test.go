package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenReport builds a fixed report exercising every encoder feature:
// typed fields (string, int, uint64, float, bool, +Inf), a plain table, a
// registry-snapshot table and an epoch-series table.
func goldenReport() *Report {
	reg := metrics.NewRegistry()
	var hits, misses uint64 = 4810, 231
	reg.Counter("llc.hits", &hits)
	reg.Counter("llc.misses", &misses)
	reg.GaugeFunc("llc.hit_rate", func() float64 {
		return float64(hits) / float64(hits+misses)
	})

	ring := metrics.NewEpochRing(4, "mean_ipc", "nvm_bytes_written", "cpth")
	ring.Record(0, 2_000_000, 1.25, 8192, 58)
	ring.Record(1, 4_000_000, 1.5, 4096, 37)

	tab := New("policies", "policy", "ipc", "life")
	tab.AddRow("BH", 0.9656, 2)
	tab.AddRow(`CP"SD,x`, float32(0.8619), "inf")

	r := NewReport("golden demo")
	r.AddField("policy", "CP_SD")
	r.AddField("mix", 4)
	r.AddField("nvm_bytes_written", uint64(123456789))
	r.AddField("mean_ipc", 1.23456)
	r.AddField("prefetch", false)
	r.AddField("lifetime_months", math.Inf(1))
	r.AddTable(tab)
	r.AddTable(SnapshotTable("window metrics", reg.Snapshot()))
	r.AddTable(SeriesTable("epoch series", ring))
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenEncodings pins the report schema: any change to the text, CSV
// or JSON encoders shows up as a diff against testdata/.
func TestGoldenEncodings(t *testing.T) {
	for _, tc := range []struct {
		file   string
		format Format
	}{
		{"golden.txt", Text},
		{"golden.csv", CSV},
		{"golden.json", JSON},
	} {
		var buf bytes.Buffer
		if err := goldenReport().Write(&buf, tc.format); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.file, buf.Bytes())
	}
}

// TestJSONParses verifies the hand-assembled JSON is valid and keeps the
// documented shape (typed field values, string table cells).
func TestJSONParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title  string                 `json:"title"`
		Fields map[string]interface{} `json:"fields"`
		Tables []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Title != "golden demo" {
		t.Errorf("title = %q", doc.Title)
	}
	if v, ok := doc.Fields["mean_ipc"].(float64); !ok || v != 1.23456 {
		t.Errorf("mean_ipc = %v (numbers must stay numbers)", doc.Fields["mean_ipc"])
	}
	if doc.Fields["lifetime_months"] != nil {
		t.Errorf("+Inf field = %v, want null", doc.Fields["lifetime_months"])
	}
	if len(doc.Tables) != 3 || len(doc.Tables[0].Rows) != 2 {
		t.Fatalf("tables shape: %+v", doc.Tables)
	}
	if doc.Tables[2].Columns[0] != "epoch" || doc.Tables[2].Columns[1] != "cycles" {
		t.Errorf("series columns = %v", doc.Tables[2].Columns)
	}
}

// TestFormatOf pins the flag-pair mapping the cmds rely on.
func TestFormatOf(t *testing.T) {
	if FormatOf(false, false) != Text || FormatOf(false, true) != CSV ||
		FormatOf(true, false) != JSON || FormatOf(true, true) != JSON {
		t.Fatal("FormatOf mapping changed")
	}
}

// TestCSVStream checks the record-tagged CSV layout: field records first,
// then per-table "table" marker, header and rows.
func TestCSVStream(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "field,policy,CP_SD" {
		t.Errorf("first record %q", lines[0])
	}
	if lines[6] != "table,policies" || lines[7] != "policy,ipc,life" {
		t.Errorf("table marker/header: %q / %q", lines[6], lines[7])
	}
}

func TestFormatMetricValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {12345, "12345"}, {1.5, "1.5000"}, {-3, "-3"}, {0.125, "0.1250"},
	} {
		if got := FormatMetricValue(tc.in); got != tc.want {
			t.Errorf("FormatMetricValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
