package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "policy", "ipc", "life")
	t.AddRow("BH", 0.9656, 2)
	t.AddRow("CP_SD_long_name", float32(0.8619), "inf")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(lines[2], "0.9656") {
		t.Errorf("float formatting wrong: %q", lines[2])
	}
	// Columns align: "ipc" column starts at the same offset in all rows.
	idxHeader := strings.Index(lines[1], "ipc")
	idxRow := strings.Index(lines[2], "0.9656")
	if idxHeader != idxRow {
		t.Errorf("misaligned columns: header at %d, row at %d\n%s", idxHeader, idxRow, out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "policy,ipc,life" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "BH,0.9656,2" {
		t.Errorf("row %q", lines[1])
	}
}

func TestWriteDispatch(t *testing.T) {
	var txt, csvOut bytes.Buffer
	tab := sample()
	if err := tab.Write(&txt, false); err != nil {
		t.Fatal(err)
	}
	if err := tab.Write(&csvOut, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csvOut.String(), "demo") {
		t.Error("CSV should omit the title")
	}
	if !strings.Contains(txt.String(), "demo") {
		t.Error("text should include the title")
	}
}

func TestEmptyTable(t *testing.T) {
	tab := New("", "a")
	if tab.Rows() != 0 {
		t.Fatal("fresh table has rows")
	}
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "a" {
		t.Errorf("empty table render: %q", buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := New("", "x")
	tab.AddRow(`va"l,ue`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"va""l,ue"`) {
		t.Errorf("CSV escaping wrong: %q", buf.String())
	}
}
