package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the shared report sink: every cmd tool assembles a Report
// — a titled set of scalar fields plus zero or more tables — and renders
// it as an aligned text page, CSV or JSON through one encoder set, so the
// output schema is defined here once and pinned by golden-file tests.

// Format selects a report encoding.
type Format int

// Report encodings.
const (
	Text Format = iota
	CSV
	JSON
)

// FormatOf maps the conventional -json/-csv flag pair to a Format (JSON
// wins when both are set).
func FormatOf(jsonOut, csvOut bool) Format {
	switch {
	case jsonOut:
		return JSON
	case csvOut:
		return CSV
	default:
		return Text
	}
}

// Field is one scalar result: a key and a typed value.
type Field struct {
	Key   string
	Value interface{}
}

// Report is a complete tool result: a title, ordered scalar fields and
// ordered tables. The zero value is usable.
type Report struct {
	Title  string
	fields []Field
	tables []*Table
}

// NewReport creates an empty report with the given title.
func NewReport(title string) *Report { return &Report{Title: title} }

// AddField appends a scalar result. Keys should be unique snake_case
// identifiers; insertion order is the output order in every encoding.
func (r *Report) AddField(key string, value interface{}) *Report {
	r.fields = append(r.fields, Field{Key: key, Value: value})
	return r
}

// AddTable appends a table to the report.
func (r *Report) AddTable(t *Table) *Report {
	r.tables = append(r.tables, t)
	return r
}

// Fields returns the report's scalar fields in insertion order.
func (r *Report) Fields() []Field { return r.fields }

// Tables returns the report's tables in insertion order.
func (r *Report) Tables() []*Table { return r.tables }

// Write renders the report in the selected format.
func (r *Report) Write(w io.Writer, f Format) error {
	switch f {
	case CSV:
		return r.WriteCSV(w)
	case JSON:
		return r.WriteJSON(w)
	default:
		return r.WriteText(w)
	}
}

// formatValue renders a field value the way tables render cells, so the
// text and CSV encodings agree with Table.AddRow.
func formatValue(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4f", x)
	case float32:
		return fmt.Sprintf("%.4f", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// WriteText renders the title, an aligned key/value block and each table,
// separated by blank lines.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	if r.Title != "" {
		fmt.Fprintln(&b, r.Title)
	}
	width := 0
	for _, f := range r.fields {
		if len(f.Key) > width {
			width = len(f.Key)
		}
	}
	for _, f := range r.fields {
		fmt.Fprintf(&b, "%-*s  %s\n", width, f.Key, formatValue(f.Value))
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i, t := range r.tables {
		if len(r.fields) > 0 || r.Title != "" || i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the report as a single CSV stream: one
// "field,<key>,<value>" record per scalar, then for each table a
// "table,<title>" record, its header record and its data records.
func (r *Report) WriteCSV(w io.Writer) error {
	for _, f := range r.fields {
		if err := writeCSVRecord(w, []string{"field", f.Key, formatValue(f.Value)}); err != nil {
			return err
		}
	}
	for _, t := range r.tables {
		if err := writeCSVRecord(w, []string{"table", t.Title}); err != nil {
			return err
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as one stable JSON object:
//
//	{"title": ..., "fields": {key: value, ...},
//	 "tables": [{"title": ..., "columns": [...], "rows": [[...], ...]}]}
//
// Field order follows insertion order; field values keep their Go types
// (numbers stay numbers). Table cells are the formatted strings the other
// encodings print. The object is hand-assembled so the key order — the
// schema consumers script against — cannot silently change.
func (r *Report) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"title\": ")
	b.Write(jsonScalar(r.Title))
	b.WriteString(",\n  \"fields\": {")
	for i, f := range r.fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.Write(jsonScalar(f.Key))
		b.WriteString(": ")
		b.Write(jsonScalar(f.Value))
	}
	if len(r.fields) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("},\n  \"tables\": [")
	for i, t := range r.tables {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    {\"title\": ")
		b.Write(jsonScalar(t.Title))
		b.WriteString(", \"columns\": ")
		b.Write(jsonStrings(t.Columns))
		b.WriteString(", \"rows\": [")
		for j, row := range t.rows {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString("\n      ")
			b.Write(jsonStrings(row))
		}
		if len(t.rows) > 0 {
			b.WriteString("\n    ")
		}
		b.WriteString("]}")
	}
	if len(r.tables) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonScalar encodes one scalar value. Non-finite floats (which
// encoding/json rejects) are emitted as nulls; anything unencodable
// falls back to its string form.
func jsonScalar(v interface{}) []byte {
	switch x := v.(type) {
	case float64:
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return []byte("null")
		}
	case float32:
		if math.IsInf(float64(x), 0) || math.IsNaN(float64(x)) {
			return []byte("null")
		}
	}
	out, err := json.Marshal(v)
	if err != nil {
		out, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return out
}

// jsonStrings encodes a string slice on one line.
func jsonStrings(xs []string) []byte {
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range xs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.Write(jsonScalar(s))
	}
	b.WriteByte(']')
	return []byte(b.String())
}

// writeCSVRecord emits one properly escaped CSV record.
func writeCSVRecord(w io.Writer, rec []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// FormatCount renders an integral quantity (counter values in tables).
func FormatCount(v uint64) string { return strconv.FormatUint(v, 10) }

// FormatMetricValue renders a float the way the series and snapshot
// tables print: integral values without a fraction, others with four
// decimals.
func FormatMetricValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}
