// Package report renders experiment results as aligned text tables or CSV
// so every cmd tool produces both human-readable and machine-readable
// output from the same data.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders an aligned text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintln(&b, t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header row + data rows; the title is
// omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Write renders text or CSV depending on asCSV.
func (t *Table) Write(w io.Writer, asCSV bool) error {
	if asCSV {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
