// Package policy implements every insertion policy evaluated in the paper
// (Table III plus the intermediate CA and CA_RWR designs of §IV):
//
//	BH       — NVM-unaware baseline hybrid: global LRU, frame disabling.
//	BH_CP    — BH plus compression and byte disabling: global Fit-LRU.
//	CA       — naive compression-aware: small blocks to NVM, big to SRAM.
//	CA_RWR   — CA plus read/write-reuse steering (Table II).
//	CP_SD    — CA_RWR with the set-dueling threshold (pair it with a
//	           dueling.Controller; Th/Tw select the CP_SD_Th variants).
//	LHybrid  — loop-block-aware state of the art (frame disabling).
//	TAP      — thrashing-aware, more conservative than LHybrid.
//	SRAMOnly — pure-SRAM bounds (16w upper, 4w lower in the paper).
package policy

import (
	"repro/internal/hybrid"
	"repro/internal/nvm"
)

// BH is the baseline hybrid LLC: a single LRU list across all ways,
// oblivious to which ways are NVM, storing uncompressed blocks, with
// frame-granularity disabling (§II-D).
type BH struct{}

// Name implements hybrid.Policy.
func (BH) Name() string { return "BH" }

// Compressed implements hybrid.Policy.
func (BH) Compressed() bool { return false }

// Granularity implements hybrid.Policy.
func (BH) Granularity() nvm.Granularity { return nvm.FrameDisabling }

// Global implements hybrid.Policy.
func (BH) Global() bool { return true }

// Target implements hybrid.Policy; unused for global policies.
func (BH) Target(hybrid.InsertInfo) hybrid.Partition { return hybrid.SRAM }

// MigrateReadReuse implements hybrid.Policy.
func (BH) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy.
func (BH) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (BH) UsesThreshold() bool { return false }

// SRAMOnly models the paper's SRAM LLC bounds; it behaves exactly like BH
// (global LRU) and is intended for configurations with zero NVM ways.
type SRAMOnly struct{ BH }

// Name implements hybrid.Policy.
func (SRAMOnly) Name() string { return "SRAM" }

// BHCP is BH extended with BDI compression and byte disabling but still
// NVM-unaware: the victim is the LRU block among all frames (either part)
// with effective capacity at least the incoming compressed size (§V-B).
type BHCP struct{}

// Name implements hybrid.Policy.
func (BHCP) Name() string { return "BH_CP" }

// Compressed implements hybrid.Policy.
func (BHCP) Compressed() bool { return true }

// Granularity implements hybrid.Policy.
func (BHCP) Granularity() nvm.Granularity { return nvm.ByteDisabling }

// Global implements hybrid.Policy.
func (BHCP) Global() bool { return true }

// Target implements hybrid.Policy; unused for global policies.
func (BHCP) Target(hybrid.InsertInfo) hybrid.Partition { return hybrid.SRAM }

// MigrateReadReuse implements hybrid.Policy.
func (BHCP) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy.
func (BHCP) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (BHCP) UsesThreshold() bool { return false }

// CA is the naive compression-aware policy of §IV-A: small blocks
// (compressed size <= CPth) go to NVM, big blocks to SRAM, with local LRU
// in each part. Pair it with hybrid.FixedThreshold.
type CA struct{}

// Name implements hybrid.Policy.
func (CA) Name() string { return "CA" }

// Compressed implements hybrid.Policy.
func (CA) Compressed() bool { return true }

// Granularity implements hybrid.Policy.
func (CA) Granularity() nvm.Granularity { return nvm.ByteDisabling }

// Global implements hybrid.Policy.
func (CA) Global() bool { return false }

// Target implements hybrid.Policy.
func (CA) Target(info hybrid.InsertInfo) hybrid.Partition {
	if info.Small() {
		return hybrid.NVM
	}
	return hybrid.SRAM
}

// MigrateReadReuse implements hybrid.Policy.
func (CA) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy.
func (CA) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (CA) UsesThreshold() bool { return true }

// CARWR adds read/write-reuse steering to CA (§IV-B, Table II):
//
//	reuse class | small block | big block
//	none        | NVM         | SRAM
//	read        | NVM         | NVM
//	write       | SRAM        | SRAM
//
// plus migration of read-reused SRAM victims to NVM. With a fixed
// threshold this is CA_RWR; with a dueling.Controller it is CP_SD.
type CARWR struct {
	// PolicyName lets the same mechanics present as CA_RWR, CP_SD or
	// CP_SD_Th depending on the threshold provider in use.
	PolicyName string

	// NoMigration ablates the SRAM-victim migration of §IV-B: read-reused
	// blocks evicted from SRAM are discarded instead of moved to NVM.
	NoMigration bool
}

// Name implements hybrid.Policy.
func (p CARWR) Name() string {
	if p.PolicyName == "" {
		return "CA_RWR"
	}
	return p.PolicyName
}

// Compressed implements hybrid.Policy.
func (CARWR) Compressed() bool { return true }

// Granularity implements hybrid.Policy.
func (CARWR) Granularity() nvm.Granularity { return nvm.ByteDisabling }

// Global implements hybrid.Policy.
func (CARWR) Global() bool { return false }

// Target implements hybrid.Policy (Table II).
func (CARWR) Target(info hybrid.InsertInfo) hybrid.Partition {
	switch info.Tag.Reuse {
	case hybrid.ReuseRead:
		return hybrid.NVM
	case hybrid.ReuseWrite:
		return hybrid.SRAM
	default:
		if info.Small() {
			return hybrid.NVM
		}
		return hybrid.SRAM
	}
}

// MigrateReadReuse implements hybrid.Policy.
func (p CARWR) MigrateReadReuse() bool { return !p.NoMigration }

// LHybridMigrate implements hybrid.Policy.
func (CARWR) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (CARWR) UsesThreshold() bool { return true }

// LHybrid is the loop-block-aware state-of-the-art policy (§II-C): blocks
// tagged LB (clean blocks that hit in the LLC) are inserted into NVM,
// everything else into SRAM; SRAM replacement migrates the most recent
// loop-block to NVM. Frame disabling, no compression (Table III).
type LHybrid struct{}

// Name implements hybrid.Policy.
func (LHybrid) Name() string { return "LHybrid" }

// Compressed implements hybrid.Policy.
func (LHybrid) Compressed() bool { return false }

// Granularity implements hybrid.Policy.
func (LHybrid) Granularity() nvm.Granularity { return nvm.FrameDisabling }

// Global implements hybrid.Policy.
func (LHybrid) Global() bool { return false }

// Target implements hybrid.Policy.
func (LHybrid) Target(info hybrid.InsertInfo) hybrid.Partition {
	if info.Tag.LB {
		return hybrid.NVM
	}
	return hybrid.SRAM
}

// MigrateReadReuse implements hybrid.Policy.
func (LHybrid) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy.
func (LHybrid) LHybridMigrate() bool { return true }

// UsesThreshold implements hybrid.Policy.
func (LHybrid) UsesThreshold() bool { return false }

// TAP is the thrashing-aware policy (§II-C): only clean blocks that have
// hit in the LLC more than HThresh times (thrashing blocks) are inserted
// into the NVM part, making it more conservative than LHybrid.
type TAP struct {
	// HThresh is the hit-count threshold; a block needs more than HThresh
	// LLC hits to qualify. The paper's characterisation ("a block needs
	// to show reuse more than once") corresponds to HThresh = 1.
	HThresh uint8
}

// Name implements hybrid.Policy.
func (TAP) Name() string { return "TAP" }

// Compressed implements hybrid.Policy.
func (TAP) Compressed() bool { return false }

// Granularity implements hybrid.Policy.
func (TAP) Granularity() nvm.Granularity { return nvm.FrameDisabling }

// Global implements hybrid.Policy.
func (TAP) Global() bool { return false }

// Target implements hybrid.Policy.
func (p TAP) Target(info hybrid.InsertInfo) hybrid.Partition {
	th := p.HThresh
	if th == 0 {
		th = 1
	}
	if !info.Dirty && info.Tag.Hits > th {
		return hybrid.NVM
	}
	return hybrid.SRAM
}

// MigrateReadReuse implements hybrid.Policy.
func (TAP) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy.
func (TAP) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (TAP) UsesThreshold() bool { return false }
