package policy

// PhaseClass is the MPAR-style three-way classification of a set's
// recent insert stream.
type PhaseClass uint8

// Phase classes.
const (
	// PhaseIrregular is the default: no dominant pattern.
	PhaseIrregular PhaseClass = iota
	// PhaseSpatial marks streaming/scan phases: consecutive inserts into
	// the set touch nearby block addresses (strides of a few cache
	// indexing periods).
	PhaseSpatial
	// PhaseTemporal marks re-referencing phases: inserts revisit block
	// addresses seen recently in the set (evict-refill churn over a
	// small working set).
	PhaseTemporal
)

// String names the phase class.
func (c PhaseClass) String() string {
	switch c {
	case PhaseSpatial:
		return "spatial"
	case PhaseTemporal:
		return "temporal"
	}
	return "irregular"
}

const (
	// phaseRing is the per-set recency window for temporal detection.
	phaseRing = 4
	// phaseDecayCap halves the per-set counters once their total reaches
	// it. Decay is driven by the set's own event count — never by epochs —
	// so each set's state depends only on its own stream and the sharded
	// engine reproduces it exactly.
	phaseDecayCap = 64
	// phaseMajority: a class wins when it explains more than half of the
	// decayed observations and at least phaseMinSamples were seen.
	phaseMinSamples = 8
	// phaseStrideSets bounds a "nearby" delta, in units of the cache's
	// set-indexing period (consecutive addresses that map to the same set
	// differ by exactly one period).
	phaseStrideSets = 4
)

// PhaseDetector classifies each set's miss/insert stream as spatial,
// temporal or irregular, after MPAR's memory-phase predictor. All state
// is per-set and advanced only by Observe, with event-driven decay.
type PhaseDetector struct {
	sets     int
	lastBlk  []uint64            // previous observed block per set
	seen     []bool              // lastBlk valid
	ring     [][phaseRing]uint64 // recent blocks per set (temporal window)
	ringLen  []uint8
	ringPos  []uint8
	spatial  []uint16 // decayed spatial votes per set
	temporal []uint16 // decayed temporal votes per set
	total    []uint16 // decayed observations per set
}

// NewPhaseDetector builds a detector for a cache with the given number
// of sets.
func NewPhaseDetector(sets int) *PhaseDetector {
	return &PhaseDetector{
		sets:     sets,
		lastBlk:  make([]uint64, sets),
		seen:     make([]bool, sets),
		ring:     make([][phaseRing]uint64, sets),
		ringLen:  make([]uint8, sets),
		ringPos:  make([]uint8, sets),
		spatial:  make([]uint16, sets),
		temporal: make([]uint16, sets),
		total:    make([]uint16, sets),
	}
}

// Observe feeds one insert into the set's classifier.
func (d *PhaseDetector) Observe(set int, block uint64) {
	// Temporal: the block was inserted into this set recently (it cycled
	// through the cache and came straight back).
	for i := uint8(0); i < d.ringLen[set]; i++ {
		if d.ring[set][i] == block {
			d.temporal[set]++
			break
		}
	}
	// Spatial: small stride from the previous insert, in units of the
	// set-indexing period (blocks hitting the same set are multiples of
	// the set count apart).
	if d.seen[set] {
		delta := int64(block - d.lastBlk[set])
		if delta < 0 {
			delta = -delta
		}
		if delta != 0 && delta <= int64(phaseStrideSets)*int64(d.sets) {
			d.spatial[set]++
		}
	}
	d.lastBlk[set] = block
	d.seen[set] = true
	d.ring[set][d.ringPos[set]] = block
	d.ringPos[set] = (d.ringPos[set] + 1) % phaseRing
	if d.ringLen[set] < phaseRing {
		d.ringLen[set]++
	}
	d.total[set]++
	if d.total[set] >= phaseDecayCap {
		d.total[set] >>= 1
		d.spatial[set] >>= 1
		d.temporal[set] >>= 1
	}
}

// Classify returns the set's current phase class. Temporal dominance is
// checked first: a tight re-reference loop also has small strides, and
// retaining it matters more than aging it out.
func (d *PhaseDetector) Classify(set int) PhaseClass {
	t := d.total[set]
	if t < phaseMinSamples {
		return PhaseIrregular
	}
	if 2*d.temporal[set] > t {
		return PhaseTemporal
	}
	if 2*d.spatial[set] > t {
		return PhaseSpatial
	}
	return PhaseIrregular
}
