package policy

import (
	"testing"

	"repro/internal/bdi"
	"repro/internal/hybrid"
	"repro/internal/nvm"
)

func rripInfo(set int, block uint64, cb int) hybrid.InsertInfo {
	return hybrid.InsertInfo{Set: set, Block: block, CBSize: cb, CPth: 58}
}

func TestRRIPFamilyTraits(t *testing.T) {
	for _, p := range []hybrid.Policy{NewSRRIP(), NewBRRIP(16), NewPAR(16)} {
		if !p.Compressed() {
			t.Errorf("%s should compress", p.Name())
		}
		if p.Granularity() != nvm.ByteDisabling {
			t.Errorf("%s granularity = %v", p.Name(), p.Granularity())
		}
		if p.Global() {
			t.Errorf("%s should not be global", p.Name())
		}
		if !p.MigrateReadReuse() {
			t.Errorf("%s should migrate read reuse", p.Name())
		}
		if !p.UsesThreshold() {
			t.Errorf("%s should use the threshold", p.Name())
		}
		if _, ok := p.(hybrid.RRIPInserter); !ok {
			t.Errorf("%s should implement RRIPInserter", p.Name())
		}
	}
}

func TestRRIPSteeringMatchesCARWR(t *testing.T) {
	ref := CARWR{}
	p := NewSRRIP()
	cases := []hybrid.InsertInfo{
		info(hybrid.ReuseRead, 64, 58, false, false, 1),
		info(hybrid.ReuseWrite, 20, 58, true, false, 1),
		info(hybrid.ReuseNone, 40, 58, false, false, 0),
		info(hybrid.ReuseNone, 60, 58, false, false, 0),
	}
	for _, c := range cases {
		if p.Target(c) != ref.Target(c) {
			t.Errorf("SRRIP target diverges from CA_RWR for %+v", c)
		}
	}
}

func TestSizeClassRRPV(t *testing.T) {
	cases := []struct {
		base uint8
		cb   int
		want uint8
	}{
		{rrpvLong, bdi.HCRLimit, rrpvShort},       // HCR: one step nearer
		{rrpvLong, bdi.HCRLimit + 1, rrpvLong},    // LCR: unchanged
		{rrpvLong, bdi.BlockSize, rrpvDistant},    // incompressible: one step farther
		{rrpvDistant, bdi.BlockSize, rrpvDistant}, // saturates high
		{0, 8, 0}, // saturates low
	}
	for _, c := range cases {
		if got := sizeClassRRPV(c.base, c.cb); got != c.want {
			t.Errorf("sizeClassRRPV(%d, %d) = %d, want %d", c.base, c.cb, got, c.want)
		}
	}
}

func TestSRRIPInsertRRPV(t *testing.T) {
	p := NewSRRIP()
	if got := p.InsertRRPV(rripInfo(0, 0, 50)); got != rrpvLong {
		t.Errorf("LCR insert RRPV = %d, want %d", got, rrpvLong)
	}
	if got := p.InsertRRPV(rripInfo(0, 0, 20)); got != rrpvShort {
		t.Errorf("HCR insert RRPV = %d, want %d", got, rrpvShort)
	}
	if got := p.InsertRRPV(rripInfo(0, 0, 64)); got != rrpvDistant {
		t.Errorf("incompressible insert RRPV = %d, want %d", got, rrpvDistant)
	}
}

func TestBRRIPThrottlePerSet(t *testing.T) {
	p := NewBRRIP(4)
	// Interleave two sets: each must hit the long insertion independently
	// on its own 32nd insert.
	for set := 0; set < 2; set++ {
		for i := 1; i < brripThrottle; i++ {
			if got := p.InsertRRPV(rripInfo(set, 0, 50)); got != rrpvDistant {
				t.Fatalf("set %d insert %d: RRPV = %d, want distant", set, i, got)
			}
		}
	}
	for set := 0; set < 2; set++ {
		if got := p.InsertRRPV(rripInfo(set, 0, 50)); got != rrpvLong {
			t.Fatalf("set %d 32nd insert: RRPV = %d, want long", set, got)
		}
		if got := p.InsertRRPV(rripInfo(set, 0, 50)); got != rrpvDistant {
			t.Fatalf("set %d counter should wrap, got RRPV %d", set, got)
		}
	}
}

func TestPhaseDetectorSpatial(t *testing.T) {
	const sets = 64
	d := NewPhaseDetector(sets)
	// Unit-stride scan: successive blocks mapping to set 3 are exactly one
	// indexing period apart.
	for i := uint64(0); i < 32; i++ {
		d.Observe(3, 3+i*sets)
	}
	if c := d.Classify(3); c != PhaseSpatial {
		t.Errorf("stride-1 stream classified %v, want spatial", c)
	}
	if c := d.Classify(4); c != PhaseIrregular {
		t.Errorf("untouched set classified %v, want irregular", c)
	}
}

func TestPhaseDetectorTemporal(t *testing.T) {
	const sets = 64
	d := NewPhaseDetector(sets)
	// Evict-refill churn over a 3-block working set (fits the recency
	// ring): every insert after warmup revisits a recent block.
	blocks := []uint64{5, 5 + 64*sets, 5 + 128*sets}
	for i := 0; i < 32; i++ {
		d.Observe(5, blocks[i%len(blocks)])
	}
	if c := d.Classify(5); c != PhaseTemporal {
		t.Errorf("churn stream classified %v, want temporal", c)
	}
}

func TestPhaseDetectorIrregularAndDecay(t *testing.T) {
	const sets = 64
	d := NewPhaseDetector(sets)
	// Widely scattered blocks: neither nearby strides nor re-references.
	b := uint64(7)
	for i := 0; i < 200; i++ {
		d.Observe(7, b)
		b += uint64(sets) * uint64(1000+i*17)
	}
	if c := d.Classify(7); c != PhaseIrregular {
		t.Errorf("scatter stream classified %v, want irregular", c)
	}
	// Counters must stay bounded by the decay cap.
	if d.total[7] >= phaseDecayCap {
		t.Errorf("total counter %d not decayed below cap %d", d.total[7], phaseDecayCap)
	}
}

func TestPhaseDetectorAdapts(t *testing.T) {
	const sets = 64
	d := NewPhaseDetector(sets)
	for i := uint64(0); i < 64; i++ {
		d.Observe(0, i*sets) // scan phase
	}
	if c := d.Classify(0); c != PhaseSpatial {
		t.Fatalf("after scan: %v, want spatial", c)
	}
	blocks := []uint64{1 * sets, 9 * sets, 17 * sets}
	for i := 0; i < 256; i++ {
		d.Observe(0, blocks[i%len(blocks)]*1000)
	}
	if c := d.Classify(0); c != PhaseTemporal {
		t.Errorf("after churn: %v, want temporal (decay should forget the scan)", c)
	}
}

func TestPARInsertRRPVFollowsPhase(t *testing.T) {
	const sets = 64
	p := NewPAR(sets)
	// Scan phase observed through Target (the LLC's insert callback).
	for i := uint64(0); i < 32; i++ {
		p.Target(rripInfo(2, 2+i*sets, 50))
	}
	if got := p.InsertRRPV(rripInfo(2, 0, 50)); got != rrpvDistant {
		t.Errorf("spatial phase insert RRPV = %d, want distant", got)
	}
	// Cold set: irregular → SRRIP default.
	if got := p.InsertRRPV(rripInfo(9, 0, 50)); got != rrpvLong {
		t.Errorf("irregular phase insert RRPV = %d, want long", got)
	}
	// Temporal set.
	blocks := []uint64{6, 6 + 64*sets, 6 + 128*sets}
	for i := 0; i < 32; i++ {
		p.Target(rripInfo(6, blocks[i%len(blocks)], 50))
	}
	if got := p.InsertRRPV(rripInfo(6, 0, 50)); got != rrpvShort {
		t.Errorf("temporal phase insert RRPV = %d, want short", got)
	}
	if p.Detector().Classify(6) != PhaseTemporal {
		t.Error("detector accessor disagrees with classification")
	}
}

func TestPhaseClassString(t *testing.T) {
	if PhaseSpatial.String() != "spatial" || PhaseTemporal.String() != "temporal" || PhaseIrregular.String() != "irregular" {
		t.Error("phase class names wrong")
	}
}
