package policy

import (
	"strings"
	"testing"

	"repro/internal/hybrid"
)

// fixedSelector pins every set to set % n — a deterministic stand-in for
// the dueling controller.
type fixedSelector int

func (n fixedSelector) CandidateFor(set int) int { return set % int(n) }

func TestTournamentResolvesPerSet(t *testing.T) {
	cands := []hybrid.Policy{CARWR{PolicyName: "CP_SD"}, NewSRRIP(), NewBRRIP(8)}
	tr, err := NewTournament("TOURNAMENT", fixedSelector(3), cands)
	if err != nil {
		t.Fatal(err)
	}
	for set := 0; set < 6; set++ {
		want := cands[set%3]
		if got := tr.PolicyFor(set); got != want {
			t.Errorf("set %d resolved %s, want %s", set, got.Name(), want.Name())
		}
	}
	if tr.Name() != "TOURNAMENT" {
		t.Errorf("name = %q", tr.Name())
	}
	if !tr.Compressed() || tr.Global() {
		t.Error("tournament traits must mirror the candidates")
	}
	if !tr.UsesThreshold() {
		t.Error("CP_SD candidate should make the tournament threshold-aware")
	}
	if len(tr.Candidates()) != 3 {
		t.Error("candidate list lost")
	}
	// Target must delegate through the resolved candidate.
	i := info(hybrid.ReuseNone, 40, 58, false, false, 0)
	i.Set = 1 // SRRIP
	if tr.Target(i) != NewSRRIP().Target(i) {
		t.Error("Target does not delegate to the set's candidate")
	}
}

func TestTournamentRejectsBadBrackets(t *testing.T) {
	cases := []struct {
		name  string
		cands []hybrid.Policy
		want  string
	}{
		{"one", []hybrid.Policy{NewSRRIP()}, "at least 2"},
		{"nilcand", []hybrid.Policy{NewSRRIP(), nil}, "nil candidate"},
		{"global", []hybrid.Policy{NewSRRIP(), BHCP{}}, "global"},
		{"compr", []hybrid.Policy{NewSRRIP(), TAP{}}, "compression"},
	}
	for _, c := range cases {
		_, err := NewTournament("T", fixedSelector(len(c.cands)), c.cands)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if _, err := NewTournament("", fixedSelector(2), []hybrid.Policy{NewSRRIP(), NewBRRIP(4)}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTournament("T", nil, []hybrid.Policy{NewSRRIP(), NewBRRIP(4)}); err == nil {
		t.Error("nil selector accepted")
	}
}

func TestTournamentImplementsResolver(t *testing.T) {
	tr, err := NewTournament("T", fixedSelector(2), []hybrid.Policy{CARWR{}, NewSRRIP()})
	if err != nil {
		t.Fatal(err)
	}
	var p hybrid.Policy = tr
	if _, ok := p.(hybrid.SetPolicyResolver); !ok {
		t.Fatal("tournament must implement SetPolicyResolver")
	}
	if _, ok := p.(hybrid.RRIPInserter); ok {
		t.Fatal("tournament must not implement RRIPInserter at the top level (per-set resolution handles it)")
	}
}
