package policy

import (
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/nvm"
)

// Selector maps a set to the index of the candidate policy governing it:
// sampler sets are pinned to one candidate each, follower sets track the
// current tournament winner. dueling.Controller satisfies it; the tiny
// interface keeps this package free of a dueling dependency.
type Selector interface {
	// CandidateFor returns the candidate index for the set. It must be
	// deterministic given the controller state so the set-sharded engine
	// resolves sets identically at any shard count.
	CandidateFor(set int) int
}

// Tournament is the N-way policy-tournament meta-policy: each set runs
// one of the candidate policies — its pinned candidate for sampler sets,
// the adopted epoch winner for the rest — and the LLC resolves every
// per-insert decision through PolicyFor. Whole-cache properties
// (compression, disabling granularity, non-global replacement) are
// checked equal across candidates at construction.
type Tournament struct {
	name  string
	sel   Selector
	cands []hybrid.Policy
	usesT bool
	gran  nvm.Granularity
	compr bool
}

// NewTournament builds the meta-policy over the given candidates. All
// candidates must be non-global, agree on Compressed and Granularity,
// and there must be at least two of them.
func NewTournament(name string, sel Selector, cands []hybrid.Policy) (*Tournament, error) {
	if name == "" {
		return nil, fmt.Errorf("policy: tournament needs a name")
	}
	if sel == nil {
		return nil, fmt.Errorf("policy: tournament %s needs a selector", name)
	}
	if len(cands) < 2 {
		return nil, fmt.Errorf("policy: tournament %s needs at least 2 candidates, got %d", name, len(cands))
	}
	t := &Tournament{
		name:  name,
		sel:   sel,
		cands: cands,
		gran:  cands[0].Granularity(),
		compr: cands[0].Compressed(),
	}
	for _, c := range cands {
		switch {
		case c == nil:
			return nil, fmt.Errorf("policy: tournament %s has a nil candidate", name)
		case c.Global():
			return nil, fmt.Errorf("policy: tournament %s: candidate %s is global (per-set resolution impossible)", name, c.Name())
		case c.Compressed() != t.compr:
			return nil, fmt.Errorf("policy: tournament %s: candidate %s disagrees on compression", name, c.Name())
		case c.Granularity() != t.gran:
			return nil, fmt.Errorf("policy: tournament %s: candidate %s disagrees on disabling granularity", name, c.Name())
		}
		if c.UsesThreshold() {
			t.usesT = true
		}
	}
	return t, nil
}

// PolicyFor implements hybrid.SetPolicyResolver.
func (t *Tournament) PolicyFor(set int) hybrid.Policy {
	return t.cands[t.sel.CandidateFor(set)]
}

// Candidates returns the candidate policies in tournament order.
func (t *Tournament) Candidates() []hybrid.Policy { return t.cands }

// Name implements hybrid.Policy.
func (t *Tournament) Name() string { return t.name }

// Compressed implements hybrid.Policy (agreed across candidates).
func (t *Tournament) Compressed() bool { return t.compr }

// Granularity implements hybrid.Policy (agreed across candidates).
func (t *Tournament) Granularity() nvm.Granularity { return t.gran }

// Global implements hybrid.Policy; tournaments are never global.
func (t *Tournament) Global() bool { return false }

// Target implements hybrid.Policy by delegating to the set's candidate.
// The LLC resolves through PolicyFor directly, so this path only serves
// callers holding the meta-policy as a plain hybrid.Policy.
func (t *Tournament) Target(info hybrid.InsertInfo) hybrid.Partition {
	return t.PolicyFor(info.Set).Target(info)
}

// MigrateReadReuse implements hybrid.Policy. The LLC consults the
// resolved per-set candidate for migration decisions; the meta-policy's
// own answer is never used there.
func (t *Tournament) MigrateReadReuse() bool { return false }

// LHybridMigrate implements hybrid.Policy (see MigrateReadReuse).
func (t *Tournament) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy: true when any candidate
// consults CPth, so threshold plumbing stays live for mixed brackets.
func (t *Tournament) UsesThreshold() bool { return t.usesT }
