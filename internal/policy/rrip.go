package policy

import (
	"repro/internal/bdi"
	"repro/internal/hybrid"
	"repro/internal/nvm"
)

// RRIP re-reference prediction values (2-bit, as in the ChampSim
// exemplars): 0 predicts near-immediate re-reference, 3 distant.
const (
	rrpvShort   = 1 // retained: highly compressible or temporal blocks
	rrpvLong    = 2 // SRRIP's standard "long" insertion
	rrpvDistant = 3 // scan suspects: first eviction candidates
)

// brripThrottle makes BRRIP insert at rrpvLong only every 32nd NVM
// insertion of a set (deterministic, per-set — the bimodal low
// probability of the literature without a random source, so sharded
// execution stays bit-identical).
const brripThrottle = 32

// sizeClassRRPV modulates a base insertion RRPV by the compressed size
// class — the hybrid-ways adaptation of the RRIP family. Highly
// compressed (HCR) blocks fit even heavily aged frames, cost few NVM
// byte-writes to retain and free the most effective capacity, so they
// are predicted one step nearer re-reference; incompressible blocks
// occupy a full frame and are predicted one step more distant.
func sizeClassRRPV(base uint8, cb int) uint8 {
	switch {
	case cb <= bdi.HCRLimit:
		if base > 0 {
			base--
		}
	case cb >= bdi.BlockSize:
		if base < rrpvDistant {
			base++
		}
	}
	return base
}

// rripBase provides the hybrid.Policy surface shared by the RRIP family:
// compression-aware steering identical to CA_RWR (Table II — the paper's
// best placement rule), byte-granularity disabling, and read-reuse
// migration. The family members differ only in the insertion RRPV their
// NVM part uses, which also switches those sets to fit-RRIP victim
// selection (scan resistance the paper's fit-LRU lacks).
type rripBase struct{}

// Compressed implements hybrid.Policy.
func (rripBase) Compressed() bool { return true }

// Granularity implements hybrid.Policy.
func (rripBase) Granularity() nvm.Granularity { return nvm.ByteDisabling }

// Global implements hybrid.Policy.
func (rripBase) Global() bool { return false }

// Target implements hybrid.Policy (Table II steering, as CARWR).
func (rripBase) Target(info hybrid.InsertInfo) hybrid.Partition {
	switch info.Tag.Reuse {
	case hybrid.ReuseRead:
		return hybrid.NVM
	case hybrid.ReuseWrite:
		return hybrid.SRAM
	default:
		if info.Small() {
			return hybrid.NVM
		}
		return hybrid.SRAM
	}
}

// MigrateReadReuse implements hybrid.Policy.
func (rripBase) MigrateReadReuse() bool { return true }

// LHybridMigrate implements hybrid.Policy.
func (rripBase) LHybridMigrate() bool { return false }

// UsesThreshold implements hybrid.Policy.
func (rripBase) UsesThreshold() bool { return true }

// SRRIP is static RRIP adapted to compressed hybrid ways: every NVM
// insertion is predicted "long" (RRPV 2), modulated by the compressed
// size class. It is the thrash-resistant reference point of the family
// and one of DRRIP's two duelled components.
type SRRIP struct {
	rripBase
}

// NewSRRIP builds the SRRIP insertion policy.
func NewSRRIP() *SRRIP { return &SRRIP{} }

// Name implements hybrid.Policy.
func (*SRRIP) Name() string { return "SRRIP" }

// InsertRRPV implements hybrid.RRIPInserter.
func (*SRRIP) InsertRRPV(info hybrid.InsertInfo) uint8 {
	return sizeClassRRPV(rrpvLong, info.CBSize)
}

// BRRIP is bimodal RRIP adapted to compressed hybrid ways: NVM
// insertions are predicted "distant" (RRPV 3) except every 32nd
// insertion of a set, which gets the SRRIP "long" prediction — the
// classic anti-thrashing bimodal throttle, made deterministic with a
// per-set counter so runs are replayable and shard-exact. The size
// class modulates the result as for SRRIP.
type BRRIP struct {
	rripBase
	ctr []uint8 // per-set NVM insertion counter, wraps at brripThrottle
}

// NewBRRIP builds the BRRIP insertion policy for a cache with the given
// number of sets.
func NewBRRIP(sets int) *BRRIP { return &BRRIP{ctr: make([]uint8, sets)} }

// Name implements hybrid.Policy.
func (*BRRIP) Name() string { return "BRRIP" }

// InsertRRPV implements hybrid.RRIPInserter.
func (p *BRRIP) InsertRRPV(info hybrid.InsertInfo) uint8 {
	base := uint8(rrpvDistant)
	p.ctr[info.Set]++
	if p.ctr[info.Set] >= brripThrottle {
		p.ctr[info.Set] = 0
		base = rrpvLong
	}
	return sizeClassRRPV(base, info.CBSize)
}

// PAR is phase-adaptive RRIP (after MPAR): a per-set phase detector
// classifies the recent insert stream as spatial (streaming/scan),
// temporal (re-referencing) or irregular, and the insertion RRPV follows
// the class — distant for scans (their blocks will not return before
// eviction), short for temporal phases, SRRIP's long otherwise. The
// detector state is per-set and event-driven, so PAR is deterministic
// and shard-exact like the rest of the family.
type PAR struct {
	rripBase
	det *PhaseDetector
}

// NewPAR builds the phase-adaptive policy for a cache with the given
// number of sets.
func NewPAR(sets int) *PAR { return &PAR{det: NewPhaseDetector(sets)} }

// Name implements hybrid.Policy.
func (*PAR) Name() string { return "PAR" }

// Detector exposes the phase detector (diagnostics and tests).
func (p *PAR) Detector() *PhaseDetector { return p.det }

// Target implements hybrid.Policy: PAR observes the insert stream here
// (the one policy callback per fresh insert) and then steers like the
// rest of the family.
func (p *PAR) Target(info hybrid.InsertInfo) hybrid.Partition {
	p.det.Observe(info.Set, info.Block)
	return p.rripBase.Target(info)
}

// InsertRRPV implements hybrid.RRIPInserter.
func (p *PAR) InsertRRPV(info hybrid.InsertInfo) uint8 {
	var base uint8
	switch p.det.Classify(info.Set) {
	case PhaseSpatial:
		base = rrpvDistant
	case PhaseTemporal:
		base = rrpvShort
	default:
		base = rrpvLong
	}
	return sizeClassRRPV(base, info.CBSize)
}
