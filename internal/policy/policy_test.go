package policy

import (
	"testing"

	"repro/internal/hybrid"
	"repro/internal/nvm"
)

func info(reuse hybrid.ReuseClass, cb, cpth int, dirty bool, lb bool, hits uint8) hybrid.InsertInfo {
	return hybrid.InsertInfo{
		Dirty:  dirty,
		CBSize: cb,
		CPth:   cpth,
		Tag:    hybrid.BlockTag{Reuse: reuse, LB: lb, Hits: hits},
	}
}

func TestTraitsTableIII(t *testing.T) {
	cases := []struct {
		pol        hybrid.Policy
		name       string
		compressed bool
		gran       nvm.Granularity
		global     bool
	}{
		{BH{}, "BH", false, nvm.FrameDisabling, true},
		{BHCP{}, "BH_CP", true, nvm.ByteDisabling, true},
		{LHybrid{}, "LHybrid", false, nvm.FrameDisabling, false},
		{TAP{}, "TAP", false, nvm.FrameDisabling, false},
		{CA{}, "CA", true, nvm.ByteDisabling, false},
		{CARWR{}, "CA_RWR", true, nvm.ByteDisabling, false},
		{SRAMOnly{}, "SRAM", false, nvm.FrameDisabling, true},
	}
	for _, c := range cases {
		if c.pol.Name() != c.name {
			t.Errorf("name %q, want %q", c.pol.Name(), c.name)
		}
		if c.pol.Compressed() != c.compressed {
			t.Errorf("%s compressed = %v", c.name, c.pol.Compressed())
		}
		if c.pol.Granularity() != c.gran {
			t.Errorf("%s granularity = %v", c.name, c.pol.Granularity())
		}
		if c.pol.Global() != c.global {
			t.Errorf("%s global = %v", c.name, c.pol.Global())
		}
	}
}

func TestCARWRName(t *testing.T) {
	if (CARWR{PolicyName: "CP_SD"}).Name() != "CP_SD" {
		t.Error("custom name not honoured")
	}
}

func TestCATarget(t *testing.T) {
	p := CA{}
	if p.Target(info(hybrid.ReuseNone, 30, 37, false, false, 0)) != hybrid.NVM {
		t.Error("small block should target NVM")
	}
	if p.Target(info(hybrid.ReuseNone, 37, 37, false, false, 0)) != hybrid.NVM {
		t.Error("block at threshold should be small (<=)")
	}
	if p.Target(info(hybrid.ReuseNone, 38, 37, false, false, 0)) != hybrid.SRAM {
		t.Error("big block should target SRAM")
	}
	// CA ignores reuse entirely.
	if p.Target(info(hybrid.ReuseWrite, 30, 37, true, false, 0)) != hybrid.NVM {
		t.Error("CA must ignore reuse class")
	}
}

// TestCARWRTableII checks every row of the paper's decision table.
func TestCARWRTableII(t *testing.T) {
	p := CARWR{}
	const cpth = 37
	cases := []struct {
		reuse hybrid.ReuseClass
		cb    int
		want  hybrid.Partition
	}{
		{hybrid.ReuseNone, 30, hybrid.NVM},   // no reuse, small
		{hybrid.ReuseNone, 64, hybrid.SRAM},  // no reuse, big
		{hybrid.ReuseRead, 30, hybrid.NVM},   // read reuse, small
		{hybrid.ReuseRead, 64, hybrid.NVM},   // read reuse, big -> still NVM
		{hybrid.ReuseWrite, 30, hybrid.SRAM}, // write reuse, small -> still SRAM
		{hybrid.ReuseWrite, 64, hybrid.SRAM}, // write reuse, big
	}
	for _, c := range cases {
		got := p.Target(info(c.reuse, c.cb, cpth, false, false, 0))
		if got != c.want {
			t.Errorf("reuse=%v cb=%d: %v, want %v", c.reuse, c.cb, got, c.want)
		}
	}
	if !p.MigrateReadReuse() {
		t.Error("CA_RWR must migrate read-reused SRAM victims")
	}
}

func TestLHybridTarget(t *testing.T) {
	p := LHybrid{}
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, true, 0)) != hybrid.NVM {
		t.Error("LB should target NVM")
	}
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, false, 0)) != hybrid.SRAM {
		t.Error("NLB should target SRAM")
	}
	if !p.LHybridMigrate() {
		t.Error("LHybrid must use migrating SRAM replacement")
	}
	if p.UsesThreshold() {
		t.Error("LHybrid does not use CPth")
	}
}

func TestTAPTarget(t *testing.T) {
	p := TAP{HThresh: 1}
	// Clean block with >1 hits: thrashing -> NVM.
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, false, 2)) != hybrid.NVM {
		t.Error("clean thrashing block should target NVM")
	}
	// Exactly HThresh hits is not enough ("more than").
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, false, 1)) != hybrid.SRAM {
		t.Error("block with hits == HThresh should target SRAM")
	}
	// Dirty thrashing blocks stay in SRAM.
	if p.Target(info(hybrid.ReuseNone, 64, 0, true, false, 5)) != hybrid.SRAM {
		t.Error("dirty block must never target NVM under TAP")
	}
}

func TestTAPDefaultThreshold(t *testing.T) {
	p := TAP{} // zero value behaves as HThresh=1
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, false, 2)) != hybrid.NVM {
		t.Error("zero-value TAP should behave as HThresh=1")
	}
	if p.Target(info(hybrid.ReuseNone, 64, 0, false, false, 1)) != hybrid.SRAM {
		t.Error("zero-value TAP threshold wrong")
	}
}

func TestTAPMoreConservativeThanLHybrid(t *testing.T) {
	// A block with exactly one LLC hit: LHybrid admits it (LB), TAP not.
	lb := info(hybrid.ReuseNone, 64, 0, false, true, 1)
	if (LHybrid{}).Target(lb) != hybrid.NVM {
		t.Error("LHybrid should admit single-hit loop block")
	}
	if (TAP{HThresh: 1}).Target(lb) != hybrid.SRAM {
		t.Error("TAP should reject single-hit block (§II-C)")
	}
}

func TestThresholdUsage(t *testing.T) {
	if !(CA{}).UsesThreshold() || !(CARWR{}).UsesThreshold() {
		t.Error("compression-aware policies must use CPth")
	}
	for _, p := range []hybrid.Policy{BH{}, BHCP{}, LHybrid{}, TAP{}} {
		if p.UsesThreshold() {
			t.Errorf("%s must not use CPth", p.Name())
		}
	}
}

func TestMigrationTraits(t *testing.T) {
	// Only CA_RWR (and thus CP_SD) migrates read-reused SRAM victims;
	// only LHybrid uses the loop-block migration on SRAM replacement.
	for _, p := range []hybrid.Policy{BH{}, BHCP{}, CA{}, LHybrid{}, TAP{}, SRAMOnly{}} {
		if p.MigrateReadReuse() {
			t.Errorf("%s must not migrate read-reuse victims", p.Name())
		}
	}
	for _, p := range []hybrid.Policy{BH{}, BHCP{}, CA{}, CARWR{}, TAP{}, SRAMOnly{}} {
		if p.LHybridMigrate() {
			t.Errorf("%s must not use LHybrid migration", p.Name())
		}
	}
	if !(CARWR{}).MigrateReadReuse() {
		t.Error("CA_RWR must migrate read-reuse victims")
	}
	if (CARWR{NoMigration: true}).MigrateReadReuse() {
		t.Error("NoMigration ablation must disable migration")
	}
}

func TestGlobalPoliciesTargetUnused(t *testing.T) {
	// Global policies never get Target called by the LLC, but the method
	// must still return a sane value for interface completeness.
	i := info(hybrid.ReuseNone, 64, 64, false, false, 0)
	if (BH{}).Target(i) != hybrid.SRAM || (BHCP{}).Target(i) != hybrid.SRAM ||
		(SRAMOnly{}).Target(i) != hybrid.SRAM {
		t.Error("global policy Target should default to SRAM")
	}
}
