package nvm

import "math"

func wearBits(w float64) uint64 { return math.Float64bits(w) }

// Row-ranged views over the array. The set-sharded engine gives every
// shard a full-geometry array (so all shards draw identical per-byte
// endurance limits from the shared sampler stream) but only ever writes
// the set rows it owns; these helpers let it aggregate and fingerprint
// exactly those rows, in physical set-major order.

// StatsRows computes the ArrayStats aggregates restricted to the physical
// set rows [lo, hi). WearMean and CapacityFraction are normalized over the
// frames of that range only, so disjoint ranges can be recombined by
// frame-count weighting.
func (a *Array) StatsRows(lo, hi int) ArrayStats {
	var st ArrayStats
	if lo < 0 || hi > a.sets || lo >= hi {
		return st
	}
	frames := a.frames[lo*a.ways : hi*a.ways]
	if len(frames) == 0 {
		return st
	}
	have := 0
	for _, f := range frames {
		st.BytesWritten += f.totalWritten
		st.PhaseBytesWritten += f.phaseWritten
		st.FaultyBytes += FrameBytes - f.live
		have += f.EffectiveCapacity()
		if f.dead {
			st.DeadFrames++
		} else {
			st.LiveFrames++
		}
		st.WearMean += f.wear
		if f.wear > st.WearMax {
			st.WearMax = f.wear
		}
	}
	st.WearMean /= float64(len(frames))
	st.CapacityFraction = float64(have) / float64(len(frames)*DataBytes)
	return st
}

// FramesRows returns the physical frames of set rows [lo, hi), set-major.
// Unlike Frame(set, way) it ignores the inter-set remap; callers (the
// shard engine, which never rotates) want the stable physical order.
func (a *Array) FramesRows(lo, hi int) []*Frame {
	return a.frames[lo*a.ways : hi*a.ways]
}

// FaultDigestFrames fingerprints the fault and wear state of a frame
// slice: each frame contributes its 66-bit fault map, its dead flag, its
// live-byte count, its total bytes written and its shared wear level to
// an FNV-1a accumulation. Frame sequences that went through identical
// write histories produce identical digests; the shard-equivalence suite
// compares them across shard counts.
func FaultDigestFrames(frames []*Frame) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, f := range frames {
		mix(f.faulty.lo)
		mix(f.faulty.hi)
		if f.dead {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(f.live))
		mix(f.totalWritten)
		mix(wearBits(f.wear))
	}
	return h
}

// FaultDigestRows fingerprints the physical set rows [lo, hi).
func (a *Array) FaultDigestRows(lo, hi int) uint64 {
	if lo < 0 || hi > a.sets || lo >= hi {
		return FaultDigestFrames(nil)
	}
	return FaultDigestFrames(a.frames[lo*a.ways : hi*a.ways])
}

// FaultDigest fingerprints the whole array (all physical set rows).
func (a *Array) FaultDigest() uint64 { return a.FaultDigestRows(0, a.sets) }
