package nvm

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSnapshotRoundtripFresh(t *testing.T) {
	a := NewArray(8, 4, testModel, stats.NewRNG(3), ByteDisabling)
	b, err := RestoreArray(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if b.Sets() != 8 || b.Ways() != 4 || b.Granularity() != ByteDisabling {
		t.Fatal("geometry lost")
	}
	if b.EffectiveCapacityFraction() != 1.0 {
		t.Fatal("fresh capacity lost")
	}
}

func TestSnapshotRoundtripAged(t *testing.T) {
	a := NewArray(4, 3, testModel, stats.NewRNG(9), ByteDisabling)
	// Age unevenly.
	for i, f := range a.Frames() {
		f.AddWear(float64(200 * (i + 1)))
	}
	a.Counter().Advance(13)
	a.AdvanceSetRemap(2)

	b, err := RestoreArray(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.EffectiveCapacityFraction(), a.EffectiveCapacityFraction(); got != want {
		t.Fatalf("capacity %v != %v", got, want)
	}
	if b.Counter().Value() != a.Counter().Value() {
		t.Fatal("wear-level counter lost")
	}
	if b.SetRemap() != a.SetRemap() {
		t.Fatal("set remap lost")
	}
	// Identical future evolution: applying the same wear to both arrays
	// yields identical capacities and fault maps.
	for i := range a.Frames() {
		a.Frames()[i].AddWear(500)
		b.Frames()[i].AddWear(500)
	}
	for i := range a.Frames() {
		fa, fb := a.Frames()[i], b.Frames()[i]
		if fa.LiveBytes() != fb.LiveBytes() || fa.Dead() != fb.Dead() {
			t.Fatalf("frame %d diverged after restore: %d/%v vs %d/%v",
				i, fa.LiveBytes(), fa.Dead(), fb.LiveBytes(), fb.Dead())
		}
		ma, mb := fa.FaultMap(), fb.FaultMap()
		for bit := 0; bit < FrameBytes; bit++ {
			if ma.Get(bit) != mb.Get(bit) {
				t.Fatalf("frame %d fault map diverged at byte %d", i, bit)
			}
		}
	}
}

func TestSnapshotGobStream(t *testing.T) {
	a := NewArray(4, 2, testModel, stats.NewRNG(5), FrameDisabling)
	a.Frames()[0].AddWear(math.MaxFloat64 / 2) // kill one frame
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.LiveFrames() != a.LiveFrames() {
		t.Fatalf("live frames %d != %d", b.LiveFrames(), a.LiveFrames())
	}
	if !b.Frames()[0].Dead() {
		t.Fatal("dead frame resurrected")
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	if _, err := RestoreArray(ArraySnapshot{Sets: 2, Ways: 2}); err == nil {
		t.Fatal("frame-count mismatch accepted")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

// Property: for arbitrary wear patterns, snapshot/restore preserves
// per-frame capacity and the next-death limit.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed uint64, wears []uint16) bool {
		a := NewArray(2, 2, testModel, stats.NewRNG(seed), ByteDisabling)
		for i, w := range wears {
			if i >= len(a.Frames()) {
				break
			}
			a.Frames()[i].AddWear(float64(w))
		}
		b, err := RestoreArray(a.Snapshot())
		if err != nil {
			return false
		}
		for i := range a.Frames() {
			fa, fb := a.Frames()[i], b.Frames()[i]
			if fa.EffectiveCapacity() != fb.EffectiveCapacity() {
				return false
			}
			na, nb := fa.NextLimit(), fb.NextLimit()
			if na != nb && !(math.IsInf(na, 1) && math.IsInf(nb, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
