package nvm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

var testModel = EnduranceModel{Mean: 1000, CV: 0.2}

func newTestFrame(gran Granularity) *Frame {
	return NewFrame(testModel, stats.NewRNG(42), gran)
}

func TestFrameInitialState(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	if f.LiveBytes() != FrameBytes {
		t.Fatalf("live = %d, want %d", f.LiveBytes(), FrameBytes)
	}
	if f.EffectiveCapacity() != DataBytes {
		t.Fatalf("capacity = %d, want %d", f.EffectiveCapacity(), DataBytes)
	}
	if f.Dead() || f.Wear() != 0 {
		t.Fatal("fresh frame should be alive with zero wear")
	}
	if !f.Fits(64) || !f.Fits(1) {
		t.Fatal("fresh frame should fit any block size")
	}
}

func TestFrameEnduranceSampling(t *testing.T) {
	r := stats.NewRNG(7)
	var m stats.Mean
	for i := 0; i < 200; i++ {
		f := NewFrame(testModel, r, ByteDisabling)
		for _, lim := range f.limits {
			m.Add(lim)
		}
	}
	if math.Abs(m.Mean()-testModel.Mean) > testModel.Mean*0.02 {
		t.Errorf("sampled mean %.1f, want ~%.1f", m.Mean(), testModel.Mean)
	}
	cv := m.StdDev() / m.Mean()
	if math.Abs(cv-testModel.CV) > 0.02 {
		t.Errorf("sampled cv %.3f, want ~%.3f", cv, testModel.CV)
	}
}

func TestByteDisablingProgressive(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	// Crank wear until first death.
	died := f.AdvanceTo(f.NextLimit())
	if died == 0 {
		t.Fatal("advancing to the next limit should kill at least one byte")
	}
	if f.Dead() {
		t.Fatal("byte-disabling frame should survive first byte death")
	}
	if f.LiveBytes() != FrameBytes-died {
		t.Fatalf("live = %d after %d deaths", f.LiveBytes(), died)
	}
	if f.EffectiveCapacity() != f.LiveBytes()-MetaBytes {
		t.Fatalf("capacity %d with %d live", f.EffectiveCapacity(), f.LiveBytes())
	}
	if f.FaultMap().Count() != died {
		t.Fatalf("fault map count %d, want %d", f.FaultMap().Count(), died)
	}
}

func TestFrameDisablingDiesAtFirstFault(t *testing.T) {
	f := newTestFrame(FrameDisabling)
	f.AdvanceTo(f.NextLimit())
	if !f.Dead() {
		t.Fatal("frame-disabling frame should die at first byte fault")
	}
	if f.EffectiveCapacity() != 0 || f.LiveBytes() != 0 {
		t.Fatal("dead frame must report zero capacity")
	}
}

func TestFrameDiesWhenTooSmall(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	f.AddWear(math.MaxFloat64 / 2)
	if !f.Dead() {
		t.Fatal("frame with all bytes worn should be dead")
	}
}

func TestEffectiveCapacityMonotonic(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	prev := f.EffectiveCapacity()
	for !f.Dead() {
		f.AdvanceTo(f.NextLimit())
		c := f.EffectiveCapacity()
		if c > prev {
			t.Fatalf("capacity increased %d -> %d", prev, c)
		}
		prev = c
	}
}

func TestRecordWriteWearAccounting(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	f.RecordWrite(66)
	if f.PhaseWritten() != 66 {
		t.Fatalf("phase written = %d, want 66", f.PhaseWritten())
	}
	if math.Abs(f.Wear()-1.0) > 1e-12 {
		t.Fatalf("wear = %v, want 1.0 (66 bytes over 66 live)", f.Wear())
	}
	f.ResetPhase()
	if f.PhaseWritten() != 0 {
		t.Fatal("ResetPhase did not clear the counter")
	}
	if f.Wear() == 0 {
		t.Fatal("ResetPhase must not clear accumulated wear")
	}
}

func TestRecordWriteOnDeadFrame(t *testing.T) {
	f := newTestFrame(FrameDisabling)
	f.AddWear(math.MaxFloat64 / 2)
	if n := f.RecordWrite(10); n != 0 {
		t.Fatal("write to dead frame should be a no-op")
	}
	if f.PhaseWritten() != 0 {
		t.Fatal("dead frame should not accumulate phase writes")
	}
}

func TestInjectFault(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	f.InjectFault(10)
	f.InjectFault(10) // idempotent
	if f.LiveBytes() != FrameBytes-1 {
		t.Fatalf("live = %d, want %d", f.LiveBytes(), FrameBytes-1)
	}
	if !f.FaultMap().Get(10) {
		t.Fatal("fault map missing injected fault")
	}
	// Later wear-driven deaths must not double count the injected byte.
	f.AddWear(math.MaxFloat64 / 2)
	if f.LiveBytes() != 0 && !f.Dead() {
		t.Fatal("frame should be fully dead")
	}
}

func TestNextLimitSkipsInjected(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	weakest := int(f.order[0])
	f.InjectFault(weakest)
	nl := f.NextLimit()
	if nl <= f.limits[weakest] {
		t.Fatalf("NextLimit %v should skip the injected weakest byte (%v)", nl, f.limits[weakest])
	}
}

func TestAdvanceToIsMonotonic(t *testing.T) {
	f := newTestFrame(ByteDisabling)
	f.AdvanceTo(500)
	w := f.Wear()
	if n := f.AdvanceTo(100); n != 0 || f.Wear() != w {
		t.Fatal("AdvanceTo backwards should be a no-op")
	}
}

func TestWearLevelCounter(t *testing.T) {
	var c WearLevelCounter
	c.Advance(10)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Advance(FrameBytes)
	if c.Value() != 10 {
		t.Fatalf("wraparound: value = %d, want 10", c.Value())
	}
	c.Advance(-12)
	if c.Value() != FrameBytes-2 {
		t.Fatalf("negative advance: value = %d, want %d", c.Value(), FrameBytes-2)
	}
}

func TestScatterGatherIdentity(t *testing.T) {
	var fm FaultMap
	fm.Set(2)
	fm.Set(5)
	ecb := []byte{10, 20, 30, 40, 50}
	recb, mask, err := Scatter(ecb, fm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if MaskBits(mask) != len(ecb) {
		t.Fatalf("write mask has %d bits, want %d", MaskBits(mask), len(ecb))
	}
	got, err := Gather(recb, fm, 3, len(ecb))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ecb {
		if got[i] != ecb[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], ecb[i])
		}
	}
}

func TestScatterSkipsFaultyBytes(t *testing.T) {
	var fm FaultMap
	fm.Set(0)
	fm.Set(1)
	ecb := []byte{0xAA, 0xBB}
	recb, mask, err := Scatter(ecb, fm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Get(0) || mask.Get(1) {
		t.Fatal("write mask covers faulty bytes")
	}
	if recb[2] != 0xAA || recb[3] != 0xBB {
		t.Fatalf("scatter placed bytes at %v, want positions 2,3", recb[:6])
	}
}

func TestScatterRotation(t *testing.T) {
	var fm FaultMap
	ecb := []byte{1, 2, 3}
	recb, _, err := Scatter(ecb, fm, 64)
	if err != nil {
		t.Fatal(err)
	}
	if recb[64] != 1 || recb[65] != 2 || recb[0] != 3 {
		t.Fatalf("rotation wrap failed: %v %v %v", recb[64], recb[65], recb[0])
	}
}

func TestScatterOverflow(t *testing.T) {
	var fm FaultMap
	for i := 0; i < 60; i++ {
		fm.Set(i)
	}
	if _, _, err := Scatter(make([]byte, 10), fm, 0); err == nil {
		t.Fatal("scatter into too-small frame should error")
	}
}

// Property: gather∘scatter is the identity for arbitrary fault maps,
// counters and ECB lengths that fit.
func TestScatterGatherProperty(t *testing.T) {
	f := func(seed uint64, counter uint8, nFaults uint8) bool {
		r := stats.NewRNG(seed)
		var fm FaultMap
		faults := int(nFaults) % 30
		for i := 0; i < faults; i++ {
			fm.Set(r.Intn(FrameBytes))
		}
		live := FrameBytes - fm.Count()
		n := 1 + r.Intn(live)
		ecb := make([]byte, n)
		for i := range ecb {
			ecb[i] = byte(r.Uint32())
		}
		c := int(counter) % FrameBytes
		recb, mask, err := Scatter(ecb, fm, c)
		if err != nil {
			return false
		}
		if MaskBits(mask) != n {
			return false
		}
		got, err := Gather(recb, fm, c, n)
		if err != nil {
			return false
		}
		for i := range ecb {
			if got[i] != ecb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexVectorMatchesPaperExample(t *testing.T) {
	// Fig. 5c analogue: 5-byte ECB into a frame where bytes 2 and 5 are
	// faulty, counter at 0: live positions 0,1,3,4,6 receive ECB 0..4.
	var fm FaultMap
	fm.Set(2)
	fm.Set(5)
	iv, err := BuildIndexVector(fm, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 0, 1: 1, 3: 2, 4: 3, 6: 4}
	for pos, k := range iv {
		if w, ok := want[pos]; ok {
			if k != w {
				t.Errorf("I[%d] = %d, want %d", pos, k, w)
			}
		} else if k != -1 {
			t.Errorf("I[%d] = %d, want don't-care", pos, k)
		}
	}
}

func TestArrayBasics(t *testing.T) {
	a := NewArray(8, 4, testModel, stats.NewRNG(1), ByteDisabling)
	if a.Sets() != 8 || a.Ways() != 4 || len(a.Frames()) != 32 {
		t.Fatal("geometry wrong")
	}
	if a.EffectiveCapacityFraction() != 1.0 {
		t.Fatalf("fresh capacity = %v, want 1", a.EffectiveCapacityFraction())
	}
	if a.LiveFrames() != 32 {
		t.Fatal("all frames should start alive")
	}
	a.Frame(0, 0).RecordWrite(66)
	if a.PhaseBytesWritten() != 66 {
		t.Fatalf("phase bytes = %d", a.PhaseBytesWritten())
	}
	a.ResetPhase()
	if a.PhaseBytesWritten() != 0 {
		t.Fatal("phase counters not cleared")
	}
}

func TestArrayCapacityDrops(t *testing.T) {
	a := NewArray(4, 2, testModel, stats.NewRNG(3), FrameDisabling)
	for _, f := range a.Frames() {
		f.AddWear(math.MaxFloat64 / 2)
	}
	if a.EffectiveCapacityFraction() != 0 || a.LiveFrames() != 0 {
		t.Fatal("fully worn array should have zero capacity")
	}
}

func TestMetadataOverhead(t *testing.T) {
	byteArr := NewArray(16, 12, testModel, stats.NewRNG(1), ByteDisabling)
	frameArr := NewArray(16, 12, testModel, stats.NewRNG(1), FrameDisabling)
	if byteArr.MetadataOverhead() != 16*12*66 {
		t.Fatalf("byte overhead = %d", byteArr.MetadataOverhead())
	}
	if frameArr.MetadataOverhead() != 16*12 {
		t.Fatalf("frame overhead = %d", frameArr.MetadataOverhead())
	}
	// Paper §V-G: fault map = 1 bit/byte = 66 bits per 66*8-bit frame
	// = 12.5% of the NVM data array.
	frac := float64(byteArr.MetadataOverhead()) / float64(byteArr.DataArrayBits())
	if math.Abs(frac-0.125) > 1e-9 {
		t.Fatalf("fault map fraction = %v, want 0.125", frac)
	}
}

func TestGranularityString(t *testing.T) {
	if ByteDisabling.String() != "byte" || FrameDisabling.String() != "frame" {
		t.Error("granularity names wrong")
	}
	if Granularity(9).String() == "" {
		t.Error("unknown granularity should render")
	}
}

func TestArrayPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray(0, ...) did not panic")
		}
	}()
	NewArray(0, 4, testModel, stats.NewRNG(1), ByteDisabling)
}

func BenchmarkRecordWrite(b *testing.B) {
	f := NewFrame(EnduranceModel{Mean: 1e10, CV: 0.2}, stats.NewRNG(1), ByteDisabling)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.RecordWrite(40)
	}
}

func BenchmarkScatter(b *testing.B) {
	var fm FaultMap
	fm.Set(7)
	fm.Set(31)
	ecb := make([]byte, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Scatter(ecb, fm, i%FrameBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSetRemap(t *testing.T) {
	a := NewArray(8, 2, testModel, stats.NewRNG(5), ByteDisabling)
	f00 := a.Frame(0, 0)
	a.AdvanceSetRemap(1)
	if a.SetRemap() != 1 {
		t.Fatalf("remap = %d", a.SetRemap())
	}
	// Logical set 7 now maps to physical row 0.
	if a.Frame(7, 0) != f00 {
		t.Fatal("rotation mapping wrong")
	}
	if a.Frame(0, 0) == f00 {
		t.Fatal("logical set 0 should have moved off physical row 0")
	}
	a.AdvanceSetRemap(8)
	if a.SetRemap() != 1 {
		t.Fatalf("full-cycle rotation: remap = %d", a.SetRemap())
	}
	a.AdvanceSetRemap(-2)
	if a.SetRemap() != 7 {
		t.Fatalf("negative rotation: remap = %d", a.SetRemap())
	}
}

func TestSetRemapPreservesWearIdentity(t *testing.T) {
	a := NewArray(4, 1, testModel, stats.NewRNG(5), ByteDisabling)
	a.Frame(0, 0).RecordWrite(66) // physical row 0 takes wear
	a.AdvanceSetRemap(1)
	// The worn frame is now behind logical set 3.
	if a.Frame(3, 0).PhaseWritten() != 66 {
		t.Fatal("wear did not travel with the physical frame")
	}
	if a.Frame(0, 0).PhaseWritten() != 0 {
		t.Fatal("logical set 0 should see a fresh frame")
	}
}
