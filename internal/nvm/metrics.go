package nvm

import "repro/internal/metrics"

// ArrayStats are the device-level aggregates of an NVM array, computed in
// a single pass over the frames. They expose the wear and fault state the
// array previously kept private to its frames.
type ArrayStats struct {
	BytesWritten      uint64  // bytes ever written, across all frames
	PhaseBytesWritten uint64  // bytes written this phase (resettable)
	LiveFrames        int     // frames still able to hold a block
	DeadFrames        int     // frames disabled for good
	FaultyBytes       int     // disabled bytes across all frames
	CapacityFraction  float64 // remaining effective capacity (0..1)
	WearMean          float64 // mean per-frame shared wear level
	WearMax           float64 // highest per-frame shared wear level
}

// Stats computes the array aggregates in one pass.
func (a *Array) Stats() ArrayStats {
	var st ArrayStats
	if len(a.frames) == 0 {
		return st
	}
	have := 0
	for _, f := range a.frames {
		st.BytesWritten += f.totalWritten
		st.PhaseBytesWritten += f.phaseWritten
		st.FaultyBytes += FrameBytes - f.live
		have += f.EffectiveCapacity()
		if f.dead {
			st.DeadFrames++
		} else {
			st.LiveFrames++
		}
		st.WearMean += f.wear
		if f.wear > st.WearMax {
			st.WearMax = f.wear
		}
	}
	st.WearMean /= float64(len(a.frames))
	st.CapacityFraction = float64(have) / float64(len(a.frames)*DataBytes)
	return st
}

// RegisterMetrics implements metrics.Registrable: it attaches the array's
// wear, fault and rearrangement state under "nvm.array.*". The frame pass
// runs once per snapshot via an OnSnapshot hook; the individual gauges
// read the cached aggregates.
func (a *Array) RegisterMetrics(reg *metrics.Registry) {
	cache := &ArrayStats{}
	vcache := &WearVariation{}
	reg.OnSnapshot(func() {
		*cache = a.Stats()
		*vcache = a.WearVariation()
	})
	reg.CounterFunc("nvm.array.bytes_written", func() uint64 { return cache.BytesWritten })
	reg.GaugeFunc("nvm.array.phase_bytes_written", func() float64 { return float64(cache.PhaseBytesWritten) })
	reg.GaugeFunc("nvm.array.live_frames", func() float64 { return float64(cache.LiveFrames) })
	reg.GaugeFunc("nvm.array.dead_frames", func() float64 { return float64(cache.DeadFrames) })
	reg.GaugeFunc("nvm.array.faulty_bytes", func() float64 { return float64(cache.FaultyBytes) })
	reg.GaugeFunc("nvm.array.capacity_fraction", func() float64 { return cache.CapacityFraction })
	reg.GaugeFunc("nvm.array.wear_mean", func() float64 { return cache.WearMean })
	reg.GaugeFunc("nvm.array.wear_max", func() float64 { return cache.WearMax })
	reg.GaugeFunc("nvm.array.wear_min", func() float64 { return vcache.WearMin })
	reg.GaugeFunc("nvm.array.wear_interset_cov", func() float64 { return vcache.InterSetCoV })
	reg.GaugeFunc("nvm.array.wear_intraset_cov", func() float64 { return vcache.IntraSetCoV })
	reg.GaugeFunc("nvm.array.wear_gini", func() float64 { return vcache.Gini })
	reg.GaugeFunc("nvm.array.set_remap", func() float64 { return float64(a.remap) })
	reg.GaugeFunc("nvm.array.wearlevel_counter", func() float64 { return float64(a.counter.value) })
}
