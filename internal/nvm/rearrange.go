package nvm

import "fmt"

// This file models the block-rearrangement circuitry of Fig. 5: an index
// generator plus a crossbar that scatter an extended compressed block (ECB)
// over the non-faulty bytes of a partially defective frame on writes, and
// gather it back on reads. A global wear-leveling counter rotates the
// starting byte so that, over long periods, writes wear all live bytes of a
// frame evenly (§III-B1).

// WearLevelCounter is the global intra-frame wear-leveling counter shared
// by all sets. Hardware increments it after hours or days; the forecast
// procedure advances it between simulation phases.
type WearLevelCounter struct {
	value int
}

// Value returns the current rotation offset in [0, FrameBytes).
func (c *WearLevelCounter) Value() int { return c.value }

// Advance rotates the counter by n positions.
func (c *WearLevelCounter) Advance(n int) {
	c.value = ((c.value+n)%FrameBytes + FrameBytes) % FrameBytes
}

// IndexVector maps RECB (physical, scattered) byte positions to ECB
// (logical, contiguous) byte indices. Entry -1 means "don't care" (the
// physical byte holds no ECB byte, either because it is faulty or because
// the ECB is shorter than the live capacity).
type IndexVector [FrameBytes]int

// BuildIndexVector computes the index vector from a fault map, the global
// wear-leveling counter and the ECB length, mirroring the parallel
// tree-adder index generator of Fig. 5c. Walking physical positions
// starting at the counter and skipping faulty bytes, the k-th live position
// receives ECB byte k, for k < ecbLen.
func BuildIndexVector(fm FaultMap, counter, ecbLen int) (IndexVector, error) {
	var iv IndexVector
	for i := range iv {
		iv[i] = -1
	}
	live := FrameBytes - fm.Count()
	if ecbLen > live {
		return iv, fmt.Errorf("nvm: ECB of %d bytes exceeds %d live bytes", ecbLen, live)
	}
	k := 0
	for step := 0; step < FrameBytes && k < ecbLen; step++ {
		pos := (counter + step) % FrameBytes
		if fm.Get(pos) {
			continue
		}
		iv[pos] = k
		k++
	}
	return iv, nil
}

// Scatter produces the rearranged ECB (RECB) and the selective write mask
// for one frame write: RECB[pos] = ECB[iv[pos]] for mapped positions; the
// mask has bit set for exactly those positions (Fig. 5c).
func Scatter(ecb []byte, fm FaultMap, counter int) (recb [FrameBytes]byte, mask FaultMap, err error) {
	iv, err := BuildIndexVector(fm, counter, len(ecb))
	if err != nil {
		return recb, mask, err
	}
	for pos, k := range iv {
		if k >= 0 {
			recb[pos] = ecb[k]
			mask.Set(pos)
		}
	}
	return recb, mask, nil
}

// Gather reconstructs the contiguous ECB from a scattered RECB (Fig. 5d).
func Gather(recb [FrameBytes]byte, fm FaultMap, counter, ecbLen int) ([]byte, error) {
	return GatherInto(nil, recb, fm, counter, ecbLen)
}

// GatherInto gathers like Gather but writes the ECB into dst when its
// capacity suffices (allocating otherwise), so steady-state reads perform
// zero allocations. The returned slice aliases dst's storage when reused.
func GatherInto(dst []byte, recb [FrameBytes]byte, fm FaultMap, counter, ecbLen int) ([]byte, error) {
	iv, err := BuildIndexVector(fm, counter, ecbLen)
	if err != nil {
		return nil, err
	}
	if cap(dst) < ecbLen {
		dst = make([]byte, ecbLen)
	}
	ecb := dst[:ecbLen]
	for pos, k := range iv {
		if k >= 0 {
			ecb[k] = recb[pos]
		}
	}
	return ecb, nil
}

// MaskBits returns the number of set bits in the write mask; tests use it
// to confirm selective writing touches exactly len(ECB) bitcell groups.
func MaskBits(m FaultMap) int { return m.Count() }
