package nvm

import (
	"math"
	"sort"
)

// WearVariation is the inter/intra-set wear-variation metric family: how
// unevenly writes have landed across the array. The coloring schemes
// exist to shrink InterSetCoV; Gini and WearMin complete the picture
// (a scheme can flatten the row means while starving one frame).
type WearVariation struct {
	// InterSetCoV is the coefficient of variation (stddev/mean) of the
	// per-row mean frame wear — the set-dimension imbalance the paper's
	// intra-set policies cannot touch. 0 when the mean wear is 0.
	InterSetCoV float64
	// IntraSetCoV is the mean over rows of each row's within-row frame
	// wear CoV — the way-dimension imbalance the insertion policies and
	// the wear-level counter attack.
	IntraSetCoV float64
	// WearMin and WearMax bound the per-frame wear distribution.
	WearMin float64
	WearMax float64
	// Gini is the Gini coefficient of per-frame wear (0 = perfectly
	// level, →1 = all wear on one frame). 0 when total wear is 0.
	Gini float64
}

// RowWearInto fills dst (length sets) with each row's total frame wear,
// iterating frames in set-major order — the one accumulation order both
// the sequential array and the shard router's merged frame slice use,
// so the sums associate identically for every shard count.
func RowWearInto(dst []float64, frames []*Frame, sets, ways int) []float64 {
	for s := 0; s < sets; s++ {
		var t float64
		for w := 0; w < ways; w++ {
			t += frames[s*ways+w].Wear()
		}
		dst[s] = t
	}
	return dst
}

// WearVariationOf computes the metric family over an explicit set-major
// frame slice. Both the sequential array gauges and the shard router's
// merged gauges call exactly this function over frames in the same
// global set-major order, which keeps the merged values bit-identical
// to the sequential ones. A nil/empty slice or mismatched geometry
// yields the zero value.
func WearVariationOf(frames []*Frame, sets, ways int) WearVariation {
	var wv WearVariation
	if len(frames) == 0 || sets < 1 || ways < 1 || sets*ways != len(frames) {
		return wv
	}
	wv.WearMin = math.Inf(1)
	var rowMeanSum float64
	rowMeans := make([]float64, sets)
	for s := 0; s < sets; s++ {
		var sum float64
		for w := 0; w < ways; w++ {
			wear := frames[s*ways+w].Wear()
			sum += wear
			if wear < wv.WearMin {
				wv.WearMin = wear
			}
			if wear > wv.WearMax {
				wv.WearMax = wear
			}
		}
		rowMeans[s] = sum / float64(ways)
		rowMeanSum += rowMeans[s]
	}
	mean := rowMeanSum / float64(sets)
	if mean > 0 {
		var varSum float64
		for _, m := range rowMeans {
			d := m - mean
			varSum += d * d
		}
		wv.InterSetCoV = math.Sqrt(varSum/float64(sets)) / mean
	}
	var intraSum float64
	for s := 0; s < sets; s++ {
		if rowMeans[s] <= 0 {
			continue
		}
		var varSum float64
		for w := 0; w < ways; w++ {
			d := frames[s*ways+w].Wear() - rowMeans[s]
			varSum += d * d
		}
		intraSum += math.Sqrt(varSum/float64(ways)) / rowMeans[s]
	}
	wv.IntraSetCoV = intraSum / float64(sets)
	wv.Gini = giniOfFrames(frames)
	return wv
}

// giniOfFrames computes the Gini coefficient of per-frame wear via the
// sorted-order formula G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n with 1-based
// ranks over ascending x.
func giniOfFrames(frames []*Frame) float64 {
	n := len(frames)
	xs := make([]float64, n)
	var total float64
	for i, f := range frames {
		xs[i] = f.Wear()
		total += xs[i]
	}
	if total <= 0 {
		return 0
	}
	sort.Float64s(xs)
	var weighted float64
	for i, x := range xs {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// WearVariation computes the metric family for the array's own frames.
func (a *Array) WearVariation() WearVariation {
	return WearVariationOf(a.frames, a.sets, a.ways)
}
