// Package nvm models the non-volatile part of the hybrid LLC at the level
// the paper's policies care about: per-byte write endurance drawn from a
// normal distribution (§II-A), a per-frame fault map with byte- or
// frame-granularity disabling (§III-B), intra-frame wear leveling via a
// global rotation counter, and the block-rearrangement circuitry that
// scatters compressed blocks across the non-faulty bytes of a frame
// (Fig. 5).
package nvm

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// FrameBytes is the physical size of an NVM frame: 64 data bytes plus two
// metadata bytes holding the 4-bit compression-encoding field and the
// 11-bit SECDED code (516 data bits -> (527,516); 15 metadata bits round to
// 2 bytes). The fault map consequently holds 66 bits per frame (Fig. 4).
const FrameBytes = 66

// DataBytes is the logical cache-block size stored in a frame.
const DataBytes = 64

// MetaBytes is the per-frame metadata (CE + SECDED) in bytes.
const MetaBytes = FrameBytes - DataBytes

// MinECB is the smallest extended compressed block: a zeros-encoded block
// (1 byte) plus metadata. A frame with fewer live bytes than this is dead.
const MinECB = 1 + MetaBytes

// Granularity selects how hard faults disable storage (§III-B, Table III).
type Granularity uint8

// Disabling granularities.
const (
	// ByteDisabling disables individual faulty bytes; the remaining live
	// bytes keep holding (compressed) blocks. Used by BH_CP and CP_SD.
	ByteDisabling Granularity = iota
	// FrameDisabling disables the whole frame on its first hard fault.
	// Used by BH, LHybrid and TAP in the paper's fault-aware comparison.
	FrameDisabling
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case ByteDisabling:
		return "byte"
	case FrameDisabling:
		return "frame"
	}
	return fmt.Sprintf("Granularity(%d)", uint8(g))
}

// EnduranceModel describes the per-bitcell write endurance distribution:
// a normal with the given mean and coefficient of variation (§II-A).
type EnduranceModel struct {
	Mean float64 // mean writes per byte until failure (paper: 1e10)
	CV   float64 // coefficient of variation sigma/mean (paper: 0.2-0.3)
}

// Sampler draws per-byte endurance limits.
type Sampler interface {
	// TruncNormal returns a normal sample truncated below at lo.
	TruncNormal(mean, stddev, lo float64) float64
}

// Frame is one NVM cache frame: 66 bytes of bitcells with individual
// endurance limits, a fault map, and wear state.
//
// Because the rearrangement circuit plus the global rotation counter spread
// every write uniformly over the frame's live bytes (§III-B1), all bytes
// that are still alive share the same accumulated per-byte wear; a byte
// dies when that shared wear level crosses its sampled endurance limit.
// This is the same analytic treatment as the paper's forecast procedure.
type Frame struct {
	limits [FrameBytes]float64 // per-byte endurance (writes)
	order  [FrameBytes]uint8   // byte indices sorted by ascending limit
	faulty FaultMap
	live   int
	wear   float64 // per-live-byte accumulated writes
	next   int     // index into order of the next byte to die
	gran   Granularity
	dead   bool // frame disabled (always true when live < MinECB)

	// phaseWritten counts bytes written to this frame during the current
	// simulation phase; the forecast turns it into a write rate.
	phaseWritten uint64
	// totalWritten counts bytes written over the frame's whole life; it
	// survives ResetPhase and feeds the metrics registry.
	totalWritten uint64
}

// NewFrame samples per-byte endurance from model using s and returns a
// fully functional frame with the given disabling granularity.
func NewFrame(model EnduranceModel, s Sampler, gran Granularity) *Frame {
	f := &Frame{live: FrameBytes, gran: gran}
	sigma := model.Mean * model.CV
	for i := range f.limits {
		f.limits[i] = s.TruncNormal(model.Mean, sigma, 1)
	}
	idx := make([]int, FrameBytes)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f.limits[idx[a]] < f.limits[idx[b]] })
	for i, v := range idx {
		f.order[i] = uint8(v)
	}
	return f
}

// Granularity returns the frame's disabling granularity.
func (f *Frame) Granularity() Granularity { return f.gran }

// LiveBytes returns the number of non-faulty bytes.
func (f *Frame) LiveBytes() int {
	if f.dead {
		return 0
	}
	return f.live
}

// Dead reports whether the frame can no longer hold any block.
func (f *Frame) Dead() bool { return f.dead }

// EffectiveCapacity returns the number of data bytes a block stored in this
// frame may occupy: the live bytes minus metadata, capped at the block
// size. Zero means the frame is unusable.
func (f *Frame) EffectiveCapacity() int {
	if f.dead {
		return 0
	}
	c := f.live - MetaBytes
	if c < 1 {
		return 0
	}
	if c > DataBytes {
		c = DataBytes
	}
	return c
}

// Fits reports whether a compressed block of cbSize data bytes fits.
func (f *Frame) Fits(cbSize int) bool { return cbSize <= f.EffectiveCapacity() }

// FaultMap returns a copy of the frame's fault map.
func (f *Frame) FaultMap() FaultMap { return f.faulty }

// Wear returns the shared per-live-byte accumulated write count.
func (f *Frame) Wear() float64 { return f.wear }

// NextLimit returns the endurance limit of the next byte to die, or +Inf if
// every byte has already failed.
func (f *Frame) NextLimit() float64 {
	for i := f.next; i < FrameBytes; i++ {
		if !f.faulty.Get(int(f.order[i])) {
			return f.limits[f.order[i]]
		}
	}
	return math.Inf(1)
}

// RecordWrite accounts for a block write of ecbBytes bytes into the frame:
// it bumps the phase byte-write counter and advances the shared wear level
// by ecbBytes spread over the live bytes. Newly failed bytes are disabled
// according to the granularity. It returns the number of bytes that died.
func (f *Frame) RecordWrite(ecbBytes int) int {
	if f.dead || f.live == 0 {
		return 0
	}
	f.phaseWritten += uint64(ecbBytes)
	f.totalWritten += uint64(ecbBytes)
	return f.AddWear(float64(ecbBytes) / float64(f.live))
}

// AddWear advances the shared wear level by delta per-byte writes and
// disables any bytes whose limit is crossed. It returns the number of bytes
// that died.
func (f *Frame) AddWear(delta float64) int {
	if f.dead {
		return 0
	}
	f.wear += delta
	died := 0
	for f.next < FrameBytes && f.limits[f.order[f.next]] <= f.wear {
		bi := int(f.order[f.next])
		f.next++
		if f.faulty.Get(bi) {
			continue // already disabled by fault injection
		}
		f.faulty.Set(bi)
		f.live--
		died++
	}
	if died > 0 {
		if f.gran == FrameDisabling || f.live < MinECB {
			f.dead = true
		}
	}
	return died
}

// AdvanceTo raises the shared wear level to the absolute value w (no-op if
// the frame is already past it) and returns the number of bytes that died.
// The forecast prediction phase uses this to fast-forward aging.
func (f *Frame) AdvanceTo(w float64) int {
	if w <= f.wear {
		return 0
	}
	return f.AddWear(w - f.wear)
}

// PhaseWritten returns bytes written to the frame this simulation phase.
func (f *Frame) PhaseWritten() uint64 { return f.phaseWritten }

// TotalWritten returns bytes ever written to the frame (not reset by
// ResetPhase).
func (f *Frame) TotalWritten() uint64 { return f.totalWritten }

// FaultyBytes returns the number of disabled bytes in the frame.
func (f *Frame) FaultyBytes() int { return FrameBytes - f.live }

// ResetPhase clears the phase byte-write counter.
func (f *Frame) ResetPhase() { f.phaseWritten = 0 }

// Disable forcibly kills the whole frame regardless of granularity: the
// fault-injection layer uses it for frame-kill campaigns. Wear state and
// the fault map keep their current values; only the dead flag changes, so
// a disabled frame reports zero live bytes and zero effective capacity.
func (f *Frame) Disable() { f.dead = true }

// InjectFault forcibly disables byte i (used by fault-injection tests).
func (f *Frame) InjectFault(i int) {
	if f.dead || f.faulty.Get(i) {
		return
	}
	f.faulty.Set(i)
	f.live--
	// Keep order bookkeeping consistent: mark the byte's limit as already
	// passed by swapping it to the front region conceptually; simplest is
	// to recompute next pointer lazily by skipping already-faulty bytes.
	for f.next < FrameBytes && f.faulty.Get(int(f.order[f.next])) {
		f.next++
	}
	if f.gran == FrameDisabling || f.live < MinECB {
		f.dead = true
	}
}

// FaultMap is a 66-bit bitmap; bit i set means byte i is faulty.
type FaultMap struct {
	lo, hi uint64 // bytes 0..63 in lo, 64..65 in hi
}

// Get reports whether byte i is faulty.
func (m FaultMap) Get(i int) bool {
	if i < 64 {
		return m.lo&(1<<uint(i)) != 0
	}
	return m.hi&(1<<uint(i-64)) != 0
}

// Set marks byte i faulty.
func (m *FaultMap) Set(i int) {
	if i < 64 {
		m.lo |= 1 << uint(i)
	} else {
		m.hi |= 1 << uint(i-64)
	}
}

// Count returns the number of faulty bytes.
func (m FaultMap) Count() int {
	return bits.OnesCount64(m.lo) + bits.OnesCount64(m.hi&0x3)
}
