package nvm

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshotting. The paper's forecast procedure explicitly begins each
// simulation phase by "reading the NVM LLC state" — the fault map and wear
// of every frame (§V-A). This file serialises exactly that state so long
// forecasts can be checkpointed and resumed: per-byte endurance limits,
// accumulated wear, fault maps and the wear-leveling counters.

// FrameSnapshot is the persistent state of one frame.
type FrameSnapshot struct {
	Limits  [FrameBytes]float64
	Wear    float64
	FaultLo uint64
	FaultHi uint64
	Dead    bool
}

// ArraySnapshot is the persistent state of an NVM array.
type ArraySnapshot struct {
	Sets, Ways  int
	Granularity Granularity
	Model       EnduranceModel
	Counter     int
	Remap       int
	Frames      []FrameSnapshot
}

// Snapshot captures the array's full wear state.
func (a *Array) Snapshot() ArraySnapshot {
	s := ArraySnapshot{
		Sets: a.sets, Ways: a.ways,
		Granularity: a.gran, Model: a.model,
		Counter: a.counter.Value(), Remap: a.remap,
		Frames: make([]FrameSnapshot, len(a.frames)),
	}
	for i, f := range a.frames {
		s.Frames[i] = FrameSnapshot{
			Limits:  f.limits,
			Wear:    f.wear,
			FaultLo: f.faulty.lo,
			FaultHi: f.faulty.hi,
			Dead:    f.dead,
		}
	}
	return s
}

// RestoreArray reconstructs an array from a snapshot.
func RestoreArray(s ArraySnapshot) (*Array, error) {
	if s.Sets <= 0 || s.Ways < 0 || len(s.Frames) != s.Sets*s.Ways {
		return nil, fmt.Errorf("nvm: inconsistent snapshot geometry %dx%d with %d frames",
			s.Sets, s.Ways, len(s.Frames))
	}
	a := &Array{sets: s.Sets, ways: s.Ways, gran: s.Granularity, model: s.Model, remap: s.Remap}
	a.counter.Advance(s.Counter)
	a.frames = make([]*Frame, len(s.Frames))
	for i, fs := range s.Frames {
		f, err := restoreFrame(fs, s.Granularity)
		if err != nil {
			return nil, fmt.Errorf("nvm: frame %d: %w", i, err)
		}
		a.frames[i] = f
	}
	return a, nil
}

// restoreFrame rebuilds a frame from persistent state, recomputing the
// derived fields (sort order, live count, next-death pointer).
func restoreFrame(s FrameSnapshot, gran Granularity) (*Frame, error) {
	f := &Frame{limits: s.Limits, gran: gran, live: FrameBytes}
	// Rebuild the ascending-limit order.
	idx := make([]int, FrameBytes)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && f.limits[idx[j]] < f.limits[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for i, v := range idx {
		f.order[i] = uint8(v)
	}
	// Replay the fault map.
	f.faulty = FaultMap{lo: s.FaultLo, hi: s.FaultHi}
	live := FrameBytes - f.faulty.Count()
	if live < 0 {
		return nil, fmt.Errorf("invalid fault map")
	}
	f.live = live
	f.wear = s.Wear
	// Advance the next-death pointer past already-dead bytes.
	for f.next < FrameBytes && f.faulty.Get(int(f.order[f.next])) {
		f.next++
	}
	f.dead = s.Dead || (gran == FrameDisabling && live < FrameBytes) || live < MinECB
	return f, nil
}

// WriteSnapshot gob-encodes the array state to w.
func (a *Array) WriteSnapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(a.Snapshot())
}

// ReadSnapshot decodes an array state from r.
func ReadSnapshot(r io.Reader) (*Array, error) {
	var s ArraySnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return RestoreArray(s)
}
