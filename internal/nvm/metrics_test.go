package nvm

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestArrayStatsSinglePass cross-checks the one-pass aggregates against
// the array's per-method answers after real traffic and aging.
func TestArrayStatsSinglePass(t *testing.T) {
	a := NewArray(8, 4, testModel, stats.NewRNG(7), ByteDisabling)
	var written uint64
	for i, f := range a.Frames() {
		n := 10 + i%7
		for j := 0; j < n; j++ {
			f.RecordWrite(40)
		}
		written += uint64(40 * n)
		f.AddWear(testModel.Mean * float64(i) / 16) // age unevenly; kills some
	}
	st := a.Stats()
	if st.BytesWritten != written {
		t.Errorf("BytesWritten %d, want %d", st.BytesWritten, written)
	}
	if st.PhaseBytesWritten != a.PhaseBytesWritten() {
		t.Errorf("PhaseBytesWritten %d, want %d", st.PhaseBytesWritten, a.PhaseBytesWritten())
	}
	if st.LiveFrames != a.LiveFrames() {
		t.Errorf("LiveFrames %d, want %d", st.LiveFrames, a.LiveFrames())
	}
	if st.DeadFrames != len(a.Frames())-a.LiveFrames() {
		t.Errorf("DeadFrames %d", st.DeadFrames)
	}
	if st.DeadFrames == 0 {
		t.Error("aging killed no frames; test exercises nothing")
	}
	if math.Abs(st.CapacityFraction-a.EffectiveCapacityFraction()) > 1e-12 {
		t.Errorf("CapacityFraction %v, want %v", st.CapacityFraction, a.EffectiveCapacityFraction())
	}
	var faulty int
	var wearMax, wearSum float64
	for _, f := range a.Frames() {
		faulty += f.FaultyBytes()
		wearSum += f.Wear()
		if f.Wear() > wearMax {
			wearMax = f.Wear()
		}
	}
	if st.FaultyBytes != faulty {
		t.Errorf("FaultyBytes %d, want %d", st.FaultyBytes, faulty)
	}
	if st.WearMax != wearMax {
		t.Errorf("WearMax %v, want %v", st.WearMax, wearMax)
	}
	if math.Abs(st.WearMean-wearSum/float64(len(a.Frames()))) > 1e-9 {
		t.Errorf("WearMean %v", st.WearMean)
	}
}

// TestArrayRegisterMetrics verifies the nvm.array.* registry subtree: the
// snapshot hook recomputes the aggregates once per snapshot and the
// gauges read the cache.
func TestArrayRegisterMetrics(t *testing.T) {
	a := NewArray(4, 2, testModel, stats.NewRNG(9), ByteDisabling)
	reg := metrics.NewRegistry()
	a.RegisterMetrics(reg)

	a.Frames()[0].RecordWrite(66)
	s1 := reg.Snapshot()
	if s1.Counter("nvm.array.bytes_written") != 66 {
		t.Errorf("bytes_written = %d", s1.Counter("nvm.array.bytes_written"))
	}
	if s1.Gauge("nvm.array.live_frames") != 8 || s1.Gauge("nvm.array.dead_frames") != 0 {
		t.Errorf("frame gauges: %v live, %v dead",
			s1.Gauge("nvm.array.live_frames"), s1.Gauge("nvm.array.dead_frames"))
	}
	if s1.Gauge("nvm.array.capacity_fraction") != 1 {
		t.Errorf("fresh capacity = %v", s1.Gauge("nvm.array.capacity_fraction"))
	}

	// Kill a frame and advance the wear-level machinery; the next
	// snapshot must see all of it.
	a.Frames()[1].AddWear(testModel.Mean * 10)
	a.Counter().Advance(3)
	a.AdvanceSetRemap(1)
	s2 := reg.Snapshot()
	if s2.Gauge("nvm.array.dead_frames") != 1 {
		t.Errorf("dead_frames = %v", s2.Gauge("nvm.array.dead_frames"))
	}
	if s2.Gauge("nvm.array.capacity_fraction") >= 1 {
		t.Error("capacity did not drop after killing a frame")
	}
	if s2.Gauge("nvm.array.wear_max") < testModel.Mean {
		t.Errorf("wear_max = %v", s2.Gauge("nvm.array.wear_max"))
	}
	if s2.Gauge("nvm.array.wearlevel_counter") != 3 || s2.Gauge("nvm.array.set_remap") != 1 {
		t.Errorf("rearrangement gauges: counter %v remap %v",
			s2.Gauge("nvm.array.wearlevel_counter"), s2.Gauge("nvm.array.set_remap"))
	}
	// Delta semantics across the two snapshots: counters subtract.
	if d := s2.Delta(s1); d.Counter("nvm.array.bytes_written") != 0 {
		t.Errorf("bytes_written delta = %d, want 0", d.Counter("nvm.array.bytes_written"))
	}
}

// TestTotalWrittenSurvivesPhaseReset pins the counter split: phaseWritten
// resets, totalWritten accumulates for the frame's life.
func TestTotalWrittenSurvivesPhaseReset(t *testing.T) {
	f := NewFrame(testModel, stats.NewRNG(3), ByteDisabling)
	f.RecordWrite(30)
	f.RecordWrite(36)
	if f.PhaseWritten() != 66 || f.TotalWritten() != 66 {
		t.Fatalf("phase/total = %d/%d", f.PhaseWritten(), f.TotalWritten())
	}
	f.ResetPhase()
	if f.PhaseWritten() != 0 || f.TotalWritten() != 66 {
		t.Fatalf("after reset: phase/total = %d/%d", f.PhaseWritten(), f.TotalWritten())
	}
	if got := f.FaultyBytes(); got != 0 {
		t.Fatalf("fresh frame has %d faulty bytes", got)
	}
	f.InjectFault(5)
	if got := f.FaultyBytes(); got != 1 {
		t.Fatalf("FaultyBytes = %d after one injected fault", got)
	}
}
