package nvm

// Array is the NVM portion of the hybrid LLC data array: sets x ways
// frames, each with independent per-byte endurance. It also owns the
// global wear-leveling counter.
type Array struct {
	sets, ways int
	frames     []*Frame
	counter    WearLevelCounter
	gran       Granularity
	model      EnduranceModel

	// remap is the inter-set rotation offset: logical set s maps to the
	// physical frame row (s + remap) mod sets. Rotating it periodically
	// (a Start-Gap-style scheme) levels wear across the set dimension,
	// complementing the intra-frame counter (§II-A lists sets, frames and
	// bytes as the three wear-leveling dimensions).
	remap int
}

// NewArray builds an NVM array of sets x ways frames with per-byte
// endurance sampled from model.
func NewArray(sets, ways int, model EnduranceModel, s Sampler, gran Granularity) *Array {
	if sets <= 0 || ways < 0 {
		panic("nvm: invalid array geometry")
	}
	a := &Array{sets: sets, ways: ways, gran: gran, model: model}
	a.frames = make([]*Frame, sets*ways)
	for i := range a.frames {
		a.frames[i] = NewFrame(model, s, gran)
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the number of NVM ways per set.
func (a *Array) Ways() int { return a.ways }

// Granularity returns the disabling granularity of the array's frames.
func (a *Array) Granularity() Granularity { return a.gran }

// Model returns the endurance model the array was built with.
func (a *Array) Model() EnduranceModel { return a.model }

// Frame returns the frame backing the logical (set, way) position under
// the current inter-set rotation.
func (a *Array) Frame(set, way int) *Frame {
	phys := set + a.remap
	if phys >= a.sets {
		phys -= a.sets
	}
	return a.frames[phys*a.ways+way]
}

// SetRemap returns the current inter-set rotation offset.
func (a *Array) SetRemap() int { return a.remap }

// AdvanceSetRemap rotates the logical-to-physical set mapping by n rows.
// Callers owning cached frame associations (the LLC) must flush them.
func (a *Array) AdvanceSetRemap(n int) {
	a.remap = ((a.remap+n)%a.sets + a.sets) % a.sets
}

// Frames returns the flat frame slice (set-major). The forecast iterates
// it directly.
func (a *Array) Frames() []*Frame { return a.frames }

// Counter returns the global wear-leveling counter.
func (a *Array) Counter() *WearLevelCounter { return &a.counter }

// EffectiveCapacityFraction returns the array's remaining effective
// capacity as a fraction of its pristine capacity (sets x ways x 64 data
// bytes). This is the paper's aging metric: lifetime is the time for it to
// fall to 0.5.
func (a *Array) EffectiveCapacityFraction() float64 {
	if len(a.frames) == 0 {
		return 0
	}
	var have int
	for _, f := range a.frames {
		have += f.EffectiveCapacity()
	}
	return float64(have) / float64(len(a.frames)*DataBytes)
}

// LiveFrames returns the number of frames that can still hold a block.
func (a *Array) LiveFrames() int {
	n := 0
	for _, f := range a.frames {
		if !f.Dead() {
			n++
		}
	}
	return n
}

// ResetPhase clears every frame's phase byte-write counter.
func (a *Array) ResetPhase() {
	for _, f := range a.frames {
		f.ResetPhase()
	}
}

// PhaseBytesWritten sums bytes written across all frames this phase.
func (a *Array) PhaseBytesWritten() uint64 {
	var total uint64
	for _, f := range a.frames {
		total += f.PhaseWritten()
	}
	return total
}

// MetadataOverhead reports the fault-map storage cost of the array in bits,
// for the §V-G overhead analysis: byte-disabling needs one bit per NVM byte
// (66 per frame); frame-disabling needs one bit per frame.
func (a *Array) MetadataOverhead() int64 {
	switch a.gran {
	case ByteDisabling:
		return int64(len(a.frames)) * FrameBytes
	default:
		return int64(len(a.frames))
	}
}

// DataArrayBits returns the size of the NVM data array in bits (66 bytes
// per frame, as stored: data + CE + SECDED).
func (a *Array) DataArrayBits() int64 {
	return int64(len(a.frames)) * FrameBytes * 8
}
