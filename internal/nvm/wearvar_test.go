package nvm

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// framesWithWear builds byte-disabling frames carrying exact wear levels:
// the endurance mean is far above any fixture wear, so AddWear moves the
// wear gauge without killing bytes.
func framesWithWear(wears ...float64) []*Frame {
	fs := make([]*Frame, len(wears))
	for i, w := range wears {
		f := NewFrame(EnduranceModel{Mean: 1e12, CV: 0}, stats.NewRNG(1), ByteDisabling)
		f.AddWear(w)
		fs[i] = f
	}
	return fs
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestWearVariationHandComputed pins the whole metric family against a
// 2-set x 2-way fixture small enough to verify by hand:
//
//	wears = [1 3 | 5 7]
//	row means        = [2, 6], mean 4 -> inter-set CoV = 2/4 = 0.5
//	row CoVs         = [1/2, 1/6]    -> intra-set CoV = 1/3
//	Gini (sorted 1,3,5,7): 2*(1+6+15+28)/(4*16) - 5/4 = 0.3125
func TestWearVariationHandComputed(t *testing.T) {
	wv := WearVariationOf(framesWithWear(1, 3, 5, 7), 2, 2)
	approx(t, "InterSetCoV", wv.InterSetCoV, 0.5)
	approx(t, "IntraSetCoV", wv.IntraSetCoV, 1.0/3.0)
	approx(t, "WearMin", wv.WearMin, 1)
	approx(t, "WearMax", wv.WearMax, 7)
	approx(t, "Gini", wv.Gini, 0.3125)
}

// TestWearVariationUniform: perfectly level wear zeroes every imbalance
// metric.
func TestWearVariationUniform(t *testing.T) {
	wv := WearVariationOf(framesWithWear(2, 2, 2, 2), 2, 2)
	approx(t, "InterSetCoV", wv.InterSetCoV, 0)
	approx(t, "IntraSetCoV", wv.IntraSetCoV, 0)
	approx(t, "WearMin", wv.WearMin, 2)
	approx(t, "WearMax", wv.WearMax, 2)
	approx(t, "Gini", wv.Gini, 0)
}

// TestWearVariationConcentrated: all wear on one frame of one row — the
// worst case every metric must flag. With n=4 frames the sorted-rank
// Gini is (n-1)/n = 0.75.
func TestWearVariationConcentrated(t *testing.T) {
	wv := WearVariationOf(framesWithWear(0, 0, 0, 8), 2, 2)
	approx(t, "InterSetCoV", wv.InterSetCoV, 1)
	// Row 0 has zero mean wear and is skipped; row 1's CoV is 1, averaged
	// over both rows.
	approx(t, "IntraSetCoV", wv.IntraSetCoV, 0.5)
	approx(t, "WearMin", wv.WearMin, 0)
	approx(t, "WearMax", wv.WearMax, 8)
	approx(t, "Gini", wv.Gini, 0.75)
}

// TestWearVariationEdges pins the degenerate inputs: empty slices,
// mismatched geometry and an all-zero array must yield the zero value
// (no NaN, no Inf) — these feed JSON reports where NaN is not
// representable.
func TestWearVariationEdges(t *testing.T) {
	for name, wv := range map[string]WearVariation{
		"nil frames":  WearVariationOf(nil, 0, 0),
		"zero sets":   WearVariationOf(framesWithWear(1, 2), 0, 2),
		"zero ways":   WearVariationOf(framesWithWear(1, 2), 2, 0),
		"geometry":    WearVariationOf(framesWithWear(1, 2, 3), 2, 2),
		"no wear yet": WearVariationOf(framesWithWear(0, 0, 0, 0), 2, 2),
	} {
		if wv.InterSetCoV != 0 || wv.IntraSetCoV != 0 || wv.Gini != 0 {
			t.Errorf("%s: non-zero imbalance %+v", name, wv)
		}
		for metric, v := range map[string]float64{
			"InterSetCoV": wv.InterSetCoV, "IntraSetCoV": wv.IntraSetCoV,
			"WearMin": wv.WearMin, "WearMax": wv.WearMax, "Gini": wv.Gini,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", name, metric, v)
			}
		}
	}
}

// TestRowWearInto pins the set-major accumulation the shard router's
// merged gauges and the wearmap heat table both rely on.
func TestRowWearInto(t *testing.T) {
	rows := RowWearInto(make([]float64, 2), framesWithWear(1, 3, 5, 7), 2, 2)
	approx(t, "row 0", rows[0], 4)
	approx(t, "row 1", rows[1], 12)
}

// TestArrayWearVariationMatchesOf: the array method is exactly
// WearVariationOf over its own frames — the equality the sequential and
// sharded gauge paths both depend on.
func TestArrayWearVariationMatchesOf(t *testing.T) {
	arr := NewArray(4, 2, EnduranceModel{Mean: 1e6, CV: 0.2}, stats.NewRNG(11), ByteDisabling)
	for i, f := range arr.Frames() {
		f.AddWear(float64(i * i % 13))
	}
	got := arr.WearVariation()
	want := WearVariationOf(arr.Frames(), 4, 2)
	if got != want {
		t.Fatalf("array metrics %+v != explicit %+v", got, want)
	}
}
