package hier

import (
	"testing"

	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testLLC(t testing.TB, pol hybrid.Policy, thr hybrid.ThresholdProvider) *hybrid.LLC {
	t.Helper()
	return hybrid.New(hybrid.Config{
		Sets: 256, SRAMWays: 4, NVMWays: 12,
		Policy: pol, Thresholds: thr,
		Endurance: nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
		Sampler:   stats.NewRNG(5),
	})
}

func testSystem(t testing.TB, pol hybrid.Policy, thr hybrid.ThresholdProvider, mix int) *System {
	t.Helper()
	apps, err := workload.NewMix(mix, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EpochCycles = 200_000
	return New(cfg, testLLC(t, pol, thr), apps)
}

func TestRunAdvancesAllCores(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 0)
	r := s.Run(300_000)
	if r.Cycles < 300_000 {
		t.Fatalf("advanced only %d cycles", r.Cycles)
	}
	for i, c := range s.Cores() {
		if c.Cycles() < 300_000 {
			t.Errorf("core %d at %d cycles", i, c.Cycles())
		}
		if c.Insts() == 0 {
			t.Errorf("core %d retired nothing", i)
		}
	}
	if r.MeanIPC <= 0 {
		t.Fatal("zero IPC")
	}
}

func TestCoreInterleavingStaysTight(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 1)
	s.Run(200_000)
	min, max := ^uint64(0), uint64(0)
	for _, c := range s.Cores() {
		if c.Cycles() < min {
			min = c.Cycles()
		}
		if c.Cycles() > max {
			max = c.Cycles()
		}
	}
	// Cores advance in lockstep within one access worth of cycles.
	if max-min > 1000 {
		t.Errorf("core skew %d cycles", max-min)
	}
}

func TestLLCSeesTraffic(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 0)
	r := s.Run(400_000)
	if r.LLC.GetS == 0 {
		t.Error("no GetS traffic reached the LLC")
	}
	if r.LLC.GetX == 0 {
		t.Error("no GetX traffic reached the LLC")
	}
	if r.LLC.Inserts == 0 {
		t.Error("no L2 victims inserted")
	}
	if r.MemFetches == 0 {
		t.Error("no memory fetches")
	}
	if r.LLC.Hits == 0 {
		t.Error("LLC never hit; workload reuse broken")
	}
}

func TestEpochsClose(t *testing.T) {
	s := testSystem(t, policy.CARWR{PolicyName: "CP_SD"}, nil, 0)
	s.Run(1_000_000)
	if s.Epochs < 4 {
		t.Errorf("closed %d epochs in 1M cycles with 200K epochs", s.Epochs)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		s := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(37), 2)
		r := s.Run(300_000)
		return r.LLC.Hits, r.LLC.NVMBytesWritten, r.MeanIPC
	}
	h1, b1, i1 := run()
	h2, b2, i2 := run()
	if h1 != h2 || b1 != b2 || i1 != i2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", h1, b1, i1, h2, b2, i2)
	}
}

func TestCompressionPoliciesWriteFewerNVMBytes(t *testing.T) {
	// BH writes whole frames; CP_SD writes compressed blocks. On the same
	// mix, per NVM block write, CP_SD must average fewer bytes.
	sBH := testSystem(t, policy.BH{}, nil, 0)
	rBH := sBH.Run(500_000)
	sCP := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(58), 0)
	rCP := sCP.Run(500_000)
	if rBH.LLC.NVMBlockWrites == 0 || rCP.LLC.NVMBlockWrites == 0 {
		t.Skip("insufficient NVM traffic in window")
	}
	avgBH := float64(rBH.LLC.NVMBytesWritten) / float64(rBH.LLC.NVMBlockWrites)
	avgCP := float64(rCP.LLC.NVMBytesWritten) / float64(rCP.LLC.NVMBlockWrites)
	if avgBH != float64(nvm.FrameBytes) {
		t.Errorf("BH average NVM write = %.1f bytes, want %d", avgBH, nvm.FrameBytes)
	}
	if avgCP >= avgBH {
		t.Errorf("compressed writes (%.1f B) not smaller than BH (%.1f B)", avgCP, avgBH)
	}
}

func TestLHybridStarvesNVMWithoutReuse(t *testing.T) {
	// Under LHybrid, only LB blocks enter NVM, so NVM insertions must be
	// a strict subset of BH's.
	sLH := testSystem(t, policy.LHybrid{}, nil, 5)
	rLH := sLH.Run(500_000)
	sBH := testSystem(t, policy.BH{}, nil, 5)
	rBH := sBH.Run(500_000)
	if rLH.LLC.NVMBytesWritten >= rBH.LLC.NVMBytesWritten {
		t.Errorf("LHybrid NVM bytes (%d) should be below BH (%d)",
			rLH.LLC.NVMBytesWritten, rBH.LLC.NVMBytesWritten)
	}
}

func TestTAPMoreConservativeThanLHybrid(t *testing.T) {
	sTAP := testSystem(t, policy.TAP{HThresh: 1}, nil, 0)
	rTAP := sTAP.Run(500_000)
	sLH := testSystem(t, policy.LHybrid{}, nil, 0)
	rLH := sLH.Run(500_000)
	if rTAP.LLC.NVMBytesWritten > rLH.LLC.NVMBytesWritten {
		t.Errorf("TAP NVM bytes (%d) exceed LHybrid (%d)",
			rTAP.LLC.NVMBytesWritten, rLH.LLC.NVMBytesWritten)
	}
}

func TestSRAMOnlyBoundsOrdering(t *testing.T) {
	// 16-way SRAM is the performance upper bound; 4-way SRAM the lower.
	mk := func(sram int) float64 {
		apps, err := workload.NewMix(0, 1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		llc := hybrid.New(hybrid.Config{
			Sets: 256, SRAMWays: sram, NVMWays: 0,
			Policy:  policy.SRAMOnly{},
			Sampler: stats.NewRNG(5),
		})
		cfg := DefaultConfig()
		s := New(cfg, llc, apps)
		s.Run(200_000) // warm up
		return s.Run(600_000).MeanIPC
	}
	up, low := mk(16), mk(4)
	if up <= low {
		t.Errorf("16w SRAM IPC (%.4f) should exceed 4w (%.4f)", up, low)
	}
}

func TestWriteMarksVersionAndDirtiness(t *testing.T) {
	s := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(37), 0)
	r := s.Run(5_000_000)
	if r.LLC.Writebacks == 0 && r.LLC.InPlaceUpdates == 0 {
		t.Error("dirty data never reached the LLC or memory")
	}
}

func TestRunStatsWindowed(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 0)
	r1 := s.Run(200_000)
	r2 := s.Run(200_000)
	if r1.LLC.GetS == 0 || r2.LLC.GetS == 0 {
		t.Fatal("windows lost traffic")
	}
	total := s.LLC().Stats.GetS
	if r1.LLC.GetS+r2.LLC.GetS != total {
		t.Errorf("windowed stats don't sum: %d + %d != %d", r1.LLC.GetS, r2.LLC.GetS, total)
	}
}

func TestPanicsOnNoApps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no apps did not panic")
		}
	}()
	New(DefaultConfig(), testLLC(t, policy.BH{}, nil), nil)
}

func BenchmarkSystemStep(b *testing.B) {
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	s := New(DefaultConfig(), testLLC(b, policy.CARWR{}, hybrid.FixedThreshold(37)), apps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(s.cores[i%len(s.cores)])
	}
}

func TestBankContention(t *testing.T) {
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Banks = 4
	s := New(cfg, testLLC(t, policy.BH{}, nil), apps)
	s.Run(1_000_000)
	if s.BankStallCycles == 0 {
		t.Error("4 cores sharing 4 banks should experience some queueing")
	}
	// Disabled banking: no stalls, and IPC at least as high.
	apps2, _ := workload.NewMix(0, 1, 0.25)
	cfg.Banks = 0
	s2 := New(cfg, testLLC(t, policy.BH{}, nil), apps2)
	r2 := s2.Run(1_000_000)
	if s2.BankStallCycles != 0 {
		t.Error("disabled banking recorded stalls")
	}
	_ = r2
}

func TestBankAcquireSerializes(t *testing.T) {
	apps, _ := workload.NewMix(0, 1, 0.25)
	cfg := DefaultConfig()
	cfg.Banks = 2
	s := New(cfg, testLLC(t, policy.BH{}, nil), apps)
	// Two back-to-back accesses to the same bank at the same time: the
	// second waits for the first's occupancy.
	if w := s.bankAcquire(0, 100, 8); w != 0 {
		t.Fatalf("first access waited %d", w)
	}
	if w := s.bankAcquire(2, 100, 8); w != 8 { // block 2 -> bank 0 too
		t.Fatalf("second access waited %d, want 8", w)
	}
	if w := s.bankAcquire(1, 100, 8); w != 0 { // bank 1 free
		t.Fatalf("other bank waited %d", w)
	}
	if s.BankStallCycles != 8 {
		t.Fatalf("stall cycles %d", s.BankStallCycles)
	}
}
