package hier

import (
	"testing"

	"repro/internal/hybrid"
	"repro/internal/policy"
	"repro/internal/workload"
)

// checkInclusion verifies L1 ⊆ L2 for a core: every valid L1 line's block
// must be present in L2 (the hierarchy maintains inclusive private levels
// so L2 evictions can safely invalidate L1).
func checkInclusion(t *testing.T, c *Core) {
	t.Helper()
	for set := 0; set < c.l1.Sets(); set++ {
		for w := 0; w < c.l1.Ways(); w++ {
			l := c.l1.Line(set, w)
			if !l.Valid {
				continue
			}
			if _, ok := c.l2.Lookup(l.Block); !ok {
				t.Fatalf("L1 block %#x missing from L2 (inclusion broken)", l.Block)
			}
		}
	}
}

func TestL1L2InclusionHolds(t *testing.T) {
	s := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(58), 0)
	for i := 0; i < 10; i++ {
		s.Run(100_000)
		for _, c := range s.Cores() {
			checkInclusion(t, c)
		}
	}
}

func TestInclusionWithPrefetcher(t *testing.T) {
	apps, err := workload.NewMix(1, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Prefetch = true
	cfg.PrefetchDegree = 2
	s := New(cfg, testLLC(t, policy.CARWR{}, hybrid.FixedThreshold(58)), apps)
	for i := 0; i < 5; i++ {
		s.Run(200_000)
		for _, c := range s.Cores() {
			checkInclusion(t, c)
		}
	}
}

// TestNoBlockInTwoPrivateCaches: address spaces are disjoint per core, so
// no block may appear in two different cores' L2s.
func TestNoBlockInTwoPrivateCaches(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 2)
	s.Run(500_000)
	seen := map[uint64]int{}
	for ci, c := range s.Cores() {
		for set := 0; set < c.l2.Sets(); set++ {
			for w := 0; w < c.l2.Ways(); w++ {
				l := c.l2.Line(set, w)
				if !l.Valid {
					continue
				}
				if prev, dup := seen[l.Block]; dup {
					t.Fatalf("block %#x in cores %d and %d", l.Block, prev, ci)
				}
				seen[l.Block] = ci
			}
		}
	}
}

// TestLoopBlockTagLifecycle: a block that is read, evicted to the LLC,
// re-read (becoming LB), then stored to, must lose its LB tag in L2.
func TestLoopBlockTagLifecycle(t *testing.T) {
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	llc := testLLC(t, policy.LHybrid{}, nil)
	s := New(DefaultConfig(), llc, apps)
	core0 := s.Cores()[0]
	block := apps[0].Base() + 12345

	// Fabricate the round trip directly: insert into LLC clean, read it
	// (promotes to LB in the returned tag), store it into L2, then verify
	// a store clears the LB bit.
	llc.Insert(block, false, hybrid.BlockTag{}, nil)
	res := llc.GetS(block)
	if !res.Tag.LB {
		t.Fatal("clean LLC read hit should promote to loop-block")
	}
	core0.l2.Insert(block, false, res.Tag.Pack())
	s.clearLB(core0, block)
	w, ok := core0.l2.Lookup(block)
	if !ok {
		t.Fatal("block missing from L2")
	}
	tag := hybrid.UnpackTag(core0.l2.Line(core0.l2.SetOf(block), w).Flags)
	if tag.LB {
		t.Fatal("store did not clear the loop-block tag")
	}
}

// TestDirtyDataConservation: every store eventually surfaces as a dirty
// line somewhere (L1, L2, LLC) or a memory writeback; with version
// tracking, the content model's versions only advance on stores.
func TestDirtyDataConservation(t *testing.T) {
	s := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(58), 0)
	r := s.Run(3_000_000)
	// GetX transfers plus dirty L2 evictions must be reflected in LLC
	// in-place updates, dirty inserts, or writebacks. Weak conservation
	// check: the system performed stores (MemFetches>0 implies misses,
	// and the workload writes), so some dirty traffic must exist.
	var dirtyLines int
	for _, c := range s.Cores() {
		dirtyLines += int(c.l1.DirtyEvictions + c.l2.DirtyEvictions)
		for set := 0; set < c.l2.Sets(); set++ {
			for w := 0; w < c.l2.Ways(); w++ {
				if l := c.l2.Line(set, w); l.Valid && l.Dirty {
					dirtyLines++
				}
			}
		}
	}
	if dirtyLines == 0 {
		t.Fatal("no dirty lines anywhere despite a writing workload")
	}
	if r.LLC.GetX == 0 {
		t.Fatal("no GetX traffic despite store misses")
	}
}

// TestIPCDecreasesWithMemoryLatency: sanity of the timing model.
func TestIPCDecreasesWithMemoryLatency(t *testing.T) {
	run := func(mem int) float64 {
		apps, err := workload.NewMix(0, 1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Lat.Memory = mem
		s := New(cfg, testLLC(t, policy.BH{}, nil), apps)
		s.Run(300_000)
		return s.Run(1_000_000).MeanIPC
	}
	fast, slow := run(60), run(400)
	if fast <= slow {
		t.Fatalf("IPC with 60-cycle memory (%.4f) should exceed 400-cycle (%.4f)", fast, slow)
	}
}
