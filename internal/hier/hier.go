// Package hier simulates the paper's 4-core memory hierarchy (Table IV):
// per-core private L1 and L2 caches, and a shared non-inclusive hybrid LLC.
// The block movement follows the NVM-friendly mostly-exclusive flow of
// §III-A: an LLC miss fills the private levels directly from memory, L2
// victims (clean or dirty) are written to the LLC if absent, and a GetX
// that hits the LLC invalidates the LLC copy.
//
// Timing is trace-driven: each core advances its own cycle counter by the
// issue cost of the instruction gap plus the load-use latency of the level
// that served the access. Cores are interleaved in global cycle order, so
// the shared LLC observes a realistic cross-core access ordering and the
// set-dueling epochs (2M cycles) elapse in wall-clock cycles.
package hier

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Latencies holds the load-use delays in cycles (Table IV).
type Latencies struct {
	L1Hit      int // 3-cycle load-use
	L2Hit      int
	LLCSRAM    int // 28-cycle load-use (4-cycle data array)
	LLCNVM     int // 32-cycle load-use (8-cycle data array)
	Decompress int // +2 cycles for BDI decompression and rearrangement
	Memory     int // DDR4 round trip
}

// DefaultLatencies returns the paper's values.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 3, L2Hit: 12, LLCSRAM: 28, LLCNVM: 32, Decompress: 2, Memory: 180}
}

// Config describes the private levels and the timing model.
type Config struct {
	L1Sets, L1Ways int // default 128x4 (32 KB)
	L2Sets, L2Ways int // default 128x16 (128 KB)
	EpochCycles    uint64
	IssueWidth     int // effective non-memory IPC (Table IV: up to 8-wide OoO)
	Lat            Latencies

	// Prefetch enables the per-core L2 stride prefetcher; degree is the
	// number of blocks fetched ahead per confirmed stream (default 1).
	Prefetch       bool
	PrefetchDegree int

	// Banks models the LLC's address-interleaved banking (Table IV: 4
	// banks behind a crossbar). Each access occupies its bank's data
	// array — SRAM reads 4 cycles, NVM reads 8, NVM writes 20 — and
	// requests to a busy bank queue, so cores interfere realistically.
	// 0 disables contention modelling.
	Banks int

	// EpochRingCapacity bounds the per-epoch sample series the system
	// retains (0 selects metrics.DefaultEpochRingCapacity).
	EpochRingCapacity int

	// Shards records how many set shards the LLC target is split into
	// (internal/shard's engine plugs in a router target and sets this).
	// The hierarchy front-end itself always runs single-threaded; the
	// knob is carried here so System.Config reflects the execution mode.
	// 0 or 1 means the classic sequential LLC.
	Shards int
}

// DefaultConfig returns the scaled default configuration.
func DefaultConfig() Config {
	return Config{
		L1Sets: 128, L1Ways: 4,
		L2Sets: 128, L2Ways: 16,
		EpochCycles: 2_000_000,
		IssueWidth:  4,
		Lat:         DefaultLatencies(),
		Banks:       4,
	}
}

// Program is the per-core stimulus source: the synthetic application
// models of package workload implement it directly, and package trace
// adapts recorded traces to it (the HyCSim-style trace-driven mode).
type Program interface {
	// Next produces the next memory access.
	Next() workload.Access
	// Owns reports whether a global block address belongs to the program.
	Owns(block uint64) bool
	// BumpVersion records a store to a block, changing its content.
	BumpVersion(block uint64)
	// Content returns the block's current 64-byte contents.
	Content(block uint64) []byte
	// ContentInto writes the block's current 64-byte contents into dst
	// when its capacity suffices (allocating otherwise) and returns the
	// slice; the hierarchy uses it on the per-insert hot path so content
	// generation does not allocate.
	ContentInto(dst []byte, block uint64) []byte
}

// Target is the LLC as seen by the hierarchy front-end: per-core access
// fan-out plus the epoch and metrics plumbing the system needs. The
// sequential engine wraps a *hybrid.LLC (LLCTarget); the set-sharded
// engine of internal/shard plugs in a router that forwards each call to
// the worker owning the block's set. The core index identifies the
// requesting core so routed inserts can be matched with the fetch that
// created the L2 line (two cores may hold the same block privately).
type Target interface {
	// GetS looks a block up with read intent on behalf of core.
	GetS(core int, block uint64) hybrid.AccessResult
	// GetX looks a block up with write intent on behalf of core.
	GetX(core int, block uint64) hybrid.AccessResult
	// Insert hands an L2 victim of core to the LLC.
	Insert(core int, block uint64, dirty bool, tag hybrid.BlockTag, content []byte) hybrid.InsertOutcome
	// CompressionEnabled reports whether inserts need block contents.
	CompressionEnabled() bool
	// Thresholds exposes the CPth provider (for epoch-series sampling).
	Thresholds() hybrid.ThresholdProvider
	// EndEpoch closes a set-dueling epoch. A sharded target must fully
	// quiesce, merge sampler votes and distribute the winner before
	// returning, so the epoch sample recorded next reads settled state.
	EndEpoch()
	// Metrics returns the registry carrying the target's llc.* (and
	// related) counters; the system registers its own on top.
	Metrics() *metrics.Registry
	// Sync blocks until every access issued so far has fully executed.
	// The system calls it before reading the registry outside an epoch
	// boundary. Sequential targets need not do anything.
	Sync()
}

// llcTarget adapts the sequential *hybrid.LLC to the Target interface.
type llcTarget struct{ l *hybrid.LLC }

// LLCTarget wraps a sequential LLC as a Target (the default engine).
func LLCTarget(l *hybrid.LLC) Target { return llcTarget{l} }

func (t llcTarget) GetS(_ int, block uint64) hybrid.AccessResult { return t.l.GetS(block) }
func (t llcTarget) GetX(_ int, block uint64) hybrid.AccessResult { return t.l.GetX(block) }
func (t llcTarget) Insert(_ int, block uint64, dirty bool, tag hybrid.BlockTag, content []byte) hybrid.InsertOutcome {
	return t.l.Insert(block, dirty, tag, content)
}
func (t llcTarget) CompressionEnabled() bool             { return t.l.CompressionEnabled() }
func (t llcTarget) Thresholds() hybrid.ThresholdProvider { return t.l.Thresholds() }
func (t llcTarget) EndEpoch()                            { t.l.EndEpoch() }
func (t llcTarget) Metrics() *metrics.Registry           { return t.l.Metrics() }
func (t llcTarget) Sync()                                {}

// Core is one simulated core: a program plus private caches.
type Core struct {
	idx    int // position in System.cores; the Target fan-out key
	app    Program
	l1, l2 *cache.Cache
	pf     *Prefetcher
	cycles uint64
	insts  uint64
}

// Index returns the core's position in the system (the fan-out key passed
// to the LLC target).
func (c *Core) Index() int { return c.idx }

// Prefetcher returns the core's prefetcher (nil when disabled).
func (c *Core) Prefetcher() *Prefetcher { return c.pf }

// Cycles returns the core's local clock.
func (c *Core) Cycles() uint64 { return c.cycles }

// Insts returns the number of instructions retired.
func (c *Core) Insts() uint64 { return c.insts }

// App returns the program bound to the core.
func (c *Core) App() Program { return c.app }

// L2 exposes the core's L2 for tests.
func (c *Core) L2() *cache.Cache { return c.l2 }

// System is the full simulated machine.
type System struct {
	cfg    Config
	target Target
	// llc is the concrete sequential LLC when the target wraps one; nil
	// when a sharded router is plugged in (use Target then).
	llc   *hybrid.LLC
	cores []*Core
	// compress caches target.CompressionEnabled() (constant per run).
	compress bool

	epochEnd uint64
	// Epochs counts completed set-dueling epochs.
	Epochs int

	// MemFetches counts demand fills from main memory (LLC misses);
	// memory writes are the LLC's Writebacks counter.
	MemFetches uint64

	// bankFree holds, per LLC bank, the cycle at which the bank's data
	// array becomes free again.
	bankFree []uint64
	// BankStallCycles accumulates cycles cores spent queueing for banks.
	BankStallCycles uint64

	// reg is the system-wide metrics registry (shared with the LLC and
	// its subcomponents); ring records the per-epoch series.
	reg  *metrics.Registry
	ring *metrics.EpochRing
	// probe, when set, observes every memory access the system executes
	// (the invariant checker of package check attaches here).
	probe AccessProbe
	// Epoch sampling state: counter readers for the ring's delta
	// columns, their values at the last epoch boundary, and per-core
	// insts/cycles at the last boundary for per-epoch IPC.
	epochRead   []func() uint64
	epochPrev   []uint64
	epochInsts  []uint64
	epochCycles []uint64

	// accesses counts memory accesses executed (one per step); the bench
	// harness divides wall time by its delta for ns/access.
	accesses uint64
	// contentBuf is the per-system scratch the L2-eviction path fills with
	// block contents before handing them to the LLC, so the per-insert
	// content generation allocates nothing. Owned by the system; contents
	// are only valid for the duration of one LLC insert.
	contentBuf [64]byte
	// Run window scratch, reused across calls.
	runInsts  []uint64
	runCycles []uint64
}

// EpochColumns are the per-epoch series recorded by the system, in ring
// order: the across-core mean IPC of the epoch, the LLC hit/miss and NVM
// write deltas, and the CPth chosen at the epoch boundary.
var EpochColumns = []string{"mean_ipc", "hits", "misses", "nvm_block_writes", "nvm_bytes_written", "cpth"}

// epochDeltaCounters are the registry counters sampled as deltas into the
// ring; they align with EpochColumns[1:5].
var epochDeltaCounters = []string{"llc.hits", "llc.misses", "llc.nvm.block_writes", "llc.nvm.bytes_written"}

// New builds a system running the given apps (one per core) against llc.
func New(cfg Config, llc *hybrid.LLC, apps []*workload.App) *System {
	progs := make([]Program, len(apps))
	for i, a := range apps {
		progs[i] = a
	}
	return NewFromPrograms(cfg, llc, progs)
}

// NewFromPrograms builds a system from arbitrary per-core programs (e.g.
// trace replays).
func NewFromPrograms(cfg Config, llc *hybrid.LLC, apps []Program) *System {
	s := NewWithTarget(cfg, LLCTarget(llc), apps)
	s.llc = llc
	return s
}

// NewWithTarget builds a system running the programs against an arbitrary
// LLC target (a sequential LLC adapter or internal/shard's router).
func NewWithTarget(cfg Config, t Target, apps []Program) *System {
	if len(apps) == 0 {
		panic("hier: no applications")
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 4
	}
	if cfg.EpochCycles == 0 {
		cfg.EpochCycles = 2_000_000
	}
	s := &System{cfg: cfg, target: t, epochEnd: cfg.EpochCycles, compress: t.CompressionEnabled()}
	if cfg.Banks > 0 {
		s.bankFree = make([]uint64, cfg.Banks)
	}
	for i, app := range apps {
		c := &Core{
			idx: i,
			app: app,
			l1:  cache.New(cfg.L1Sets, cfg.L1Ways),
			l2:  cache.New(cfg.L2Sets, cfg.L2Ways),
		}
		if cfg.Prefetch {
			c.pf = newPrefetcher(64, cfg.PrefetchDegree)
		}
		s.cores = append(s.cores, c)
	}
	s.registerMetrics(t.Metrics(), cfg.EpochRingCapacity)
	return s
}

// registerMetrics attaches the hierarchy's counters to the LLC's registry
// and sets up the per-epoch sample ring.
func (s *System) registerMetrics(reg *metrics.Registry, ringCap int) {
	s.reg = reg
	reg.Counter("sys.mem_fetches", &s.MemFetches)
	reg.Counter("sys.bank_stall_cycles", &s.BankStallCycles)
	reg.Counter("sys.accesses", &s.accesses)
	reg.CounterFunc("sys.epochs", func() uint64 { return uint64(s.Epochs) })
	for i, c := range s.cores {
		c := c
		prefix := fmt.Sprintf("core%d", i)
		reg.Counter(prefix+".insts", &c.insts)
		reg.Counter(prefix+".cycles", &c.cycles)
		reg.GaugeFunc(prefix+".ipc", func() float64 {
			if c.cycles == 0 {
				return 0
			}
			return float64(c.insts) / float64(c.cycles)
		})
	}

	s.ring = metrics.NewEpochRing(ringCap, EpochColumns...)
	s.epochRead = make([]func() uint64, len(epochDeltaCounters))
	s.epochPrev = make([]uint64, len(epochDeltaCounters))
	for i, name := range epochDeltaCounters {
		read, ok := reg.CounterReader(name)
		if !ok {
			panic("hier: registry is missing " + name)
		}
		s.epochRead[i] = read
	}
	s.epochInsts = make([]uint64, len(s.cores))
	s.epochCycles = make([]uint64, len(s.cores))
}

// Metrics returns the system-wide metrics registry.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// EpochRing returns the ring holding the per-epoch series (EpochColumns).
func (s *System) EpochRing() *metrics.EpochRing { return s.ring }

// EpochSamples returns the retained per-epoch samples, oldest first.
func (s *System) EpochSamples() []metrics.Sample { return s.ring.Samples() }

// recordEpoch samples the just-closed epoch into the ring: per-epoch IPC
// from the cores' deltas, the LLC counter deltas since the previous
// boundary, and the CPth selected for the next epoch.
func (s *System) recordEpoch(cycle uint64) {
	var ipcSum float64
	for i, c := range s.cores {
		di := c.insts - s.epochInsts[i]
		dc := c.cycles - s.epochCycles[i]
		if dc > 0 {
			ipcSum += float64(di) / float64(dc)
		}
		s.epochInsts[i] = c.insts
		s.epochCycles[i] = c.cycles
	}
	var deltas [4]float64
	for i, read := range s.epochRead {
		v := read()
		deltas[i] = float64(v - s.epochPrev[i])
		s.epochPrev[i] = v
	}
	cpth := 0
	if w, ok := s.target.Thresholds().(interface{ Winner() int }); ok {
		cpth = w.Winner()
	} else {
		cpth = s.target.Thresholds().CPthFor(0)
	}
	s.ring.Record(s.Epochs-1, cycle, ipcSum/float64(len(s.cores)),
		deltas[0], deltas[1], deltas[2], deltas[3], float64(cpth))
}

// AccessProbe observes the simulation at access granularity: OnAccess is
// called once after every memory access any core executes, with the whole
// hierarchy in a consistent state. The runtime invariant checker
// (internal/check) is the canonical implementation.
type AccessProbe interface {
	OnAccess()
}

// SetAccessProbe attaches (or, with nil, detaches) the system's access
// probe. One probe is supported; attaching replaces the previous one.
func (s *System) SetAccessProbe(p AccessProbe) { s.probe = p }

// AccessProbe returns the currently attached probe (nil when none).
func (s *System) AccessProbe() AccessProbe { return s.probe }

// LLC returns the shared last-level cache, or nil when the system runs
// against a sharded router target (use Target then).
func (s *System) LLC() *hybrid.LLC { return s.llc }

// Target returns the LLC target the front-end issues accesses to.
func (s *System) Target() Target { return s.target }

// Cores returns the simulated cores.
func (s *System) Cores() []*Core { return s.cores }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Now returns the global wall-clock: the minimum core cycle count, i.e.
// the time up to which all cores have definitely progressed.
func (s *System) Now() uint64 {
	min := s.cores[0].cycles
	for _, c := range s.cores[1:] {
		if c.cycles < min {
			min = c.cycles
		}
	}
	return min
}

// RunStats summarises one Run window. The LLC and MemFetches fields are
// derived from the metrics-registry delta of the window; Metrics carries
// the full delta snapshot for callers that want every counter.
type RunStats struct {
	Cycles     uint64    // wall-clock cycles advanced
	Insts      []uint64  // per-core instructions retired in the window
	IPC        []float64 // per-core IPC in the window
	MeanIPC    float64   // arithmetic mean across cores (paper's metric)
	LLC        hybrid.Stats
	MemFetches uint64
	Metrics    metrics.Snapshot // window delta of every registered metric
}

// Run advances the system by the given number of wall-clock cycles,
// interleaving cores in global cycle order, and returns the statistics of
// the window. Set-dueling epochs are closed as the clock crosses each
// EpochCycles boundary.
func (s *System) Run(cycles uint64) RunStats {
	start := s.Now()
	target := start + cycles
	if s.runInsts == nil {
		s.runInsts = make([]uint64, len(s.cores))
		s.runCycles = make([]uint64, len(s.cores))
	}
	startInsts, startCycles := s.runInsts, s.runCycles
	for i, c := range s.cores {
		startInsts[i] = c.insts
		startCycles[i] = c.cycles
	}
	s.target.Sync()
	before := s.reg.Snapshot()

	for {
		// Advance the core that is furthest behind.
		core := s.cores[0]
		for _, c := range s.cores[1:] {
			if c.cycles < core.cycles {
				core = c
			}
		}
		if core.cycles >= target {
			break
		}
		s.step(core)
		s.closeEpochs()
	}

	s.target.Sync()
	delta := s.reg.Snapshot().Delta(before)
	out := RunStats{
		Cycles:     s.Now() - start,
		Insts:      make([]uint64, len(s.cores)),
		IPC:        make([]float64, len(s.cores)),
		MemFetches: delta.Counter("sys.mem_fetches"),
		LLC:        hybrid.StatsFromSnapshot(delta),
		Metrics:    delta,
	}
	var sum float64
	for i, c := range s.cores {
		out.Insts[i] = c.insts - startInsts[i]
		d := c.cycles - startCycles[i]
		if d > 0 {
			out.IPC[i] = float64(out.Insts[i]) / float64(d)
		}
		sum += out.IPC[i]
	}
	out.MeanIPC = sum / float64(len(s.cores))
	return out
}

// closeEpochs closes set-dueling epochs as the global clock crosses
// EpochCycles boundaries. The target's EndEpoch quiesces a sharded
// engine, so the sample recordEpoch takes reads settled counters.
func (s *System) closeEpochs() {
	for now := s.Now(); now >= s.epochEnd; {
		s.target.EndEpoch()
		s.Epochs++
		s.recordEpoch(s.epochEnd)
		s.epochEnd += s.cfg.EpochCycles
	}
}

// Accesses returns the total number of memory accesses executed.
func (s *System) Accesses() uint64 { return s.accesses }

// StepAccesses executes exactly n memory accesses, advancing the
// furthest-behind core each time, without opening a measurement window —
// no registry snapshots are taken, so the steady-state call is
// allocation-free. Epochs still close as the clock crosses boundaries.
// The alloc-regression tests use it to pin the engines' hot paths.
func (s *System) StepAccesses(n int) {
	for k := 0; k < n; k++ {
		core := s.cores[0]
		for _, c := range s.cores[1:] {
			if c.cycles < core.cycles {
				core = c
			}
		}
		s.step(core)
		s.closeEpochs()
	}
}

// step executes one memory access on a core.
func (s *System) step(c *Core) {
	if s.probe != nil {
		defer s.probe.OnAccess()
	}
	s.accesses++
	acc := c.app.Next()
	lat := &s.cfg.Lat
	c.insts += uint64(acc.Gap) + 1
	c.cycles += uint64((acc.Gap + s.cfg.IssueWidth - 1) / s.cfg.IssueWidth)

	if acc.Write {
		c.app.BumpVersion(acc.Block)
	}

	// L1.
	if l := c.l1.Access(acc.Block, acc.Write); l != nil {
		if acc.Write {
			c.cycles++
			s.clearLB(c, acc.Block)
		} else {
			c.cycles += uint64(lat.L1Hit)
		}
		return
	}

	// L2.
	if l := c.l2.Access(acc.Block, false); l != nil {
		tag := hybrid.UnpackTag(l.Flags)
		if c.pf != nil && tag.Prefetched {
			c.pf.Useful++
			tag.Prefetched = false
			l.Flags = tag.Pack()
		}
		if acc.Write {
			c.cycles++
			// The store modifies the block: it is no longer a loop-block.
			tag = hybrid.UnpackTag(l.Flags)
			tag.LB = false
			l.Flags = tag.Pack()
		} else {
			c.cycles += uint64(lat.L2Hit)
		}
		s.fillL1(c, acc.Block, acc.Write)
		if c.pf != nil {
			s.prefetch(c, c.pf.observe(acc.Block))
		}
		return
	}

	// LLC (GetX for fetches with write permission, GetS otherwise).
	var res hybrid.AccessResult
	if acc.Write {
		res = s.target.GetX(c.idx, acc.Block)
	} else {
		res = s.target.GetS(c.idx, acc.Block)
	}
	switch {
	case res.Hit && res.Part == hybrid.SRAM:
		c.cycles += uint64(lat.LLCSRAM)
		c.cycles += s.bankAcquire(acc.Block, c.cycles, bankOccSRAMRead)
	case res.Hit:
		c.cycles += uint64(lat.LLCNVM)
		if s.compress {
			c.cycles += uint64(lat.Decompress)
		}
		c.cycles += s.bankAcquire(acc.Block, c.cycles, bankOccNVMRead)
	default:
		c.cycles += uint64(lat.Memory)
		s.MemFetches++
	}

	dirty := res.Dirty // GetX transfers dirty ownership to L2
	s.fillL2(c, acc.Block, dirty, res.Tag.Pack())
	s.fillL1(c, acc.Block, acc.Write)
	if c.pf != nil {
		s.prefetch(c, c.pf.observe(acc.Block))
	}
}

// fillL2 inserts a block into a core's L2, sending the L2 victim to the
// LLC per the non-inclusive flow.
func (s *System) fillL2(c *Core, block uint64, dirty bool, flags uint8) {
	ev := c.l2.Insert(block, dirty, flags)
	if !ev.Valid {
		return
	}
	// Maintain L1 inclusion: the victim leaves L1 too, folding its
	// dirtiness into the L2 line being evicted.
	if l1old, ok := c.l1.Invalidate(ev.Block); ok && l1old.Dirty {
		ev.Dirty = true
	}
	tag := hybrid.UnpackTag(ev.Flags)
	if ev.Dirty {
		tag.LB = false // a modified block cannot be a loop-block
	}
	var content []byte
	if s.compress {
		content = s.appOf(ev.Block).ContentInto(s.contentBuf[:], ev.Block)
	}
	out := s.target.Insert(c.idx, ev.Block, ev.Dirty, tag, content)
	if occ := bankWriteOcc(out); occ > 0 {
		// The write itself is off the core's critical path (posted by the
		// L2 eviction), but it occupies the bank and delays later reads.
		s.bankAcquire(ev.Block, c.cycles, occ)
	}
}

// fillL1 inserts a block into a core's L1, folding dirty victims back into
// their (inclusive) L2 lines.
func (s *System) fillL1(c *Core, block uint64, dirty bool) {
	ev := c.l1.Insert(block, dirty, 0)
	if ev.Valid && ev.Dirty {
		if w, ok := c.l2.Lookup(ev.Block); ok {
			l := c.l2.Line(c.l2.SetOf(ev.Block), w)
			l.Dirty = true
			tag := hybrid.UnpackTag(l.Flags)
			tag.LB = false
			l.Flags = tag.Pack()
		}
	}
	if dirty {
		s.clearLB(c, block)
	}
}

// clearLB clears the loop-block tag of a block in L2 after a store.
func (s *System) clearLB(c *Core, block uint64) {
	if w, ok := c.l2.Lookup(block); ok {
		l := c.l2.Line(c.l2.SetOf(block), w)
		tag := hybrid.UnpackTag(l.Flags)
		tag.LB = false
		l.Flags = tag.Pack()
	}
}

// appOf resolves the owner of a global block address.
func (s *System) appOf(block uint64) Program {
	idx := int(block/workload.AppSpacing) - 1
	if idx >= 0 && idx < len(s.cores) && s.cores[idx].app.Owns(block) {
		return s.cores[idx].app
	}
	for _, c := range s.cores {
		if c.app.Owns(block) {
			return c.app
		}
	}
	panic(fmt.Sprintf("hier: no owner for block %#x", block))
}

// Bank data-array occupancies in cycles (Table IV: 4-cycle SRAM D-array,
// 8-cycle NVM D-array, 20-cycle NVM write).
const (
	bankOccSRAMRead  = 4
	bankOccNVMRead   = 8
	bankOccSRAMWrite = 4
	bankOccNVMWrite  = 20
)

// bankAcquire queues an access to the block's bank at time t, occupying
// the bank for occ cycles. It returns the queueing delay the requester
// observes before its access starts.
func (s *System) bankAcquire(block uint64, t uint64, occ int) uint64 {
	if s.bankFree == nil {
		return 0
	}
	b := block % uint64(len(s.bankFree))
	start := t
	var wait uint64
	if s.bankFree[b] > t {
		wait = s.bankFree[b] - t
		start = s.bankFree[b]
		s.BankStallCycles += wait
	}
	s.bankFree[b] = start + uint64(occ)
	return wait
}

// bankWriteOcc maps an insert outcome to the data-array occupancy.
func bankWriteOcc(out hybrid.InsertOutcome) int {
	if !out.Wrote {
		return 0
	}
	if out.Part == hybrid.NVM {
		return bankOccNVMWrite
	}
	return bankOccSRAMWrite
}
