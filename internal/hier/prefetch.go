package hier

// Stride prefetcher. The paper's TAP baseline distinguishes demand-writes
// from prefetch-writes (§II-C), which requires the hierarchy to generate
// prefetch traffic in the first place. This is a region-based stride
// prefetcher at the L2: it tracks the last block and stride per aligned
// 4 KB region and, after two confirmations, prefetches the next blocks of
// the stream into L2. Prefetches are off the core's critical path (no
// cycle cost) but produce real LLC/memory traffic and real L2 pollution.

// prefetchRegionBlocks is the tracking granularity: 64 blocks = 4 KB.
const prefetchRegionBlocks = 64

// strideEntry is one region's prediction state.
type strideEntry struct {
	valid      bool
	region     uint64
	lastBlock  uint64
	stride     int64
	confidence uint8
}

// Prefetcher holds the per-core stride table.
type Prefetcher struct {
	table  []strideEntry
	degree int

	// Issued counts prefetch requests sent below L2; Fills counts the
	// subset that filled L2 (the rest were already present).
	Issued uint64
	Fills  uint64
	// Useful counts prefetched L2 lines that were later hit by demand.
	Useful uint64
}

// newPrefetcher builds a table with the given number of entries and
// prefetch degree.
func newPrefetcher(entries, degree int) *Prefetcher {
	if entries <= 0 {
		entries = 64
	}
	if degree <= 0 {
		degree = 1
	}
	return &Prefetcher{table: make([]strideEntry, entries), degree: degree}
}

// observe updates the stride table with a demand access and returns the
// blocks to prefetch (nil most of the time).
func (p *Prefetcher) observe(block uint64) []uint64 {
	region := block / prefetchRegionBlocks
	e := &p.table[region%uint64(len(p.table))]
	if !e.valid || e.region != region {
		*e = strideEntry{valid: true, region: region, lastBlock: block}
		return nil
	}
	stride := int64(block - e.lastBlock)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
	}
	e.lastBlock = block
	if e.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := block
	for i := 0; i < p.degree; i++ {
		next += uint64(e.stride)
		out = append(out, next)
	}
	return out
}

// prefetch issues prefetches for a core: each target block is looked up in
// L2 and, if absent, fetched (from the LLC or memory) and filled into L2
// tagged as prefetched. Prefetches never invalidate the LLC copy (they
// are read-only GetS requests).
func (s *System) prefetch(c *Core, targets []uint64) {
	for _, block := range targets {
		if !c.app.Owns(block) {
			continue // stream ran off the application's footprint
		}
		c.pf.Issued++
		if _, ok := c.l2.Lookup(block); ok {
			continue
		}
		res := s.target.GetS(c.idx, block)
		if res.Hit {
			s.bankAcquire(block, c.cycles, bankOccNVMRead) // occupy; no core stall
		} else {
			s.MemFetches++
		}
		tag := res.Tag
		tag.Prefetched = true
		c.pf.Fills++
		s.fillL2(c, block, false, tag.Pack())
	}
}
