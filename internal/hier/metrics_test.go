package hier

import (
	"testing"

	"repro/internal/dueling"
	"repro/internal/hybrid"
	"repro/internal/policy"
)

// TestWindowDeltasSumToCumulative is the windowed-accounting invariant:
// two consecutive Run windows' registry deltas must sum exactly to the
// cumulative counters, for every LLC counter (not just the headline ones).
func TestWindowDeltasSumToCumulative(t *testing.T) {
	s := testSystem(t, policy.CARWR{}, hybrid.FixedThreshold(58), 0)
	r1 := s.Run(250_000)
	r2 := s.Run(250_000)
	if r1.LLC.GetS == 0 || r2.LLC.GetS == 0 {
		t.Fatal("windows lost traffic")
	}
	cum := s.LLC().Stats
	for _, name := range hybrid.StatNames() {
		total, ok := s.Metrics().CounterValue(name)
		if !ok {
			t.Fatalf("counter %s not registered", name)
		}
		if sum := r1.Metrics.Counter(name) + r2.Metrics.Counter(name); sum != total {
			t.Errorf("%s: window deltas %d + %d = %d, cumulative %d",
				name, r1.Metrics.Counter(name), r2.Metrics.Counter(name),
				r1.Metrics.Counter(name)+r2.Metrics.Counter(name), total)
		}
	}
	// The registry view and the Stats struct are the same storage.
	if v, _ := s.Metrics().CounterValue("llc.hits"); v != cum.Hits {
		t.Errorf("registry llc.hits %d != Stats.Hits %d", v, cum.Hits)
	}
	// RunStats.LLC is derived from the same delta snapshot.
	if r1.LLC.Hits != r1.Metrics.Counter("llc.hits") {
		t.Errorf("RunStats.LLC.Hits %d != delta llc.hits %d",
			r1.LLC.Hits, r1.Metrics.Counter("llc.hits"))
	}
	// sys.* counters obey the same window accounting.
	fetches, _ := s.Metrics().CounterValue("sys.mem_fetches")
	if r1.MemFetches+r2.MemFetches != fetches {
		t.Errorf("mem fetch windows %d + %d != %d", r1.MemFetches, r2.MemFetches, fetches)
	}
}

// TestEpochRingRecordsSeries checks that closing set-dueling epochs fills
// the ring with consistent samples: indices in order, boundary cycles on
// the epoch grid, hit/miss deltas summing to the cumulative counters, and
// the cpth column tracking the dueling controller's history.
func TestEpochRingRecordsSeries(t *testing.T) {
	d := dueling.New(256, 0, 0)
	s := testSystem(t, policy.CARWR{PolicyName: "CP_SD"}, d, 0)
	s.Run(1_100_000) // 200k epochs -> 5 closed epochs
	if s.Epochs < 4 {
		t.Fatalf("only %d epochs closed", s.Epochs)
	}
	samples := s.EpochSamples()
	if len(samples) != s.Epochs {
		t.Fatalf("ring holds %d samples for %d epochs", len(samples), s.Epochs)
	}
	cols := s.EpochRing().Columns()
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[c] = i
	}
	var hits, misses float64
	for i, sm := range samples {
		if sm.Epoch != i {
			t.Errorf("sample %d has epoch %d", i, sm.Epoch)
		}
		if want := uint64(i+1) * s.Config().EpochCycles; sm.Cycles != want {
			t.Errorf("epoch %d closed at cycle %d, want %d", i, sm.Cycles, want)
		}
		if ipc := sm.Values[idx["mean_ipc"]]; ipc <= 0 {
			t.Errorf("epoch %d mean IPC %v", i, ipc)
		}
		hits += sm.Values[idx["hits"]]
		misses += sm.Values[idx["misses"]]
		if cpth := int(sm.Values[idx["cpth"]]); cpth != d.History[i] {
			t.Errorf("epoch %d cpth %d, dueling history %d", i, cpth, d.History[i])
		}
	}
	// Ring hit/miss deltas cover exactly the cycles up to the last closed
	// epoch boundary; re-running past the boundary must not break the sum.
	stats := s.LLC().Stats
	if hits == 0 || hits > float64(stats.Hits) || misses > float64(stats.Misses) {
		t.Errorf("series sums hits=%v misses=%v vs cumulative %d/%d",
			hits, misses, stats.Hits, stats.Misses)
	}
}

// TestEpochSeriesRetrievableAfterRun: the acceptance criterion that the
// per-epoch series is retrievable without rerunning the simulation.
func TestEpochSeriesRetrievableAfterRun(t *testing.T) {
	s := testSystem(t, policy.BH{}, nil, 1)
	s.Run(700_000)
	series := s.EpochRing().Series("nvm_bytes_written")
	if len(series) != s.Epochs {
		t.Fatalf("series has %d points for %d epochs", len(series), s.Epochs)
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	if sum == 0 {
		t.Error("no NVM bytes recorded across epochs")
	}
	// BH has no dueling controller: the cpth column falls back to the
	// fixed provider's CPthFor(0).
	want := float64(s.LLC().Thresholds().CPthFor(0))
	for _, v := range s.EpochRing().Series("cpth") {
		if v != want {
			t.Errorf("BH cpth column = %v, want fixed %v", v, want)
		}
	}
}
