package hier

import (
	"testing"

	"repro/internal/hybrid"
	"repro/internal/policy"
	"repro/internal/workload"
)

func TestStrideDetection(t *testing.T) {
	p := newPrefetcher(16, 2)
	base := uint64(1000)
	var targets []uint64
	for i := uint64(0); i < 6; i++ {
		targets = p.observe(base + i)
	}
	if len(targets) != 2 {
		t.Fatalf("confirmed stream issued %d prefetches, want 2", len(targets))
	}
	if targets[0] != base+6 || targets[1] != base+7 {
		t.Fatalf("targets %v, want next blocks of the stream", targets)
	}
}

func TestStrideNegative(t *testing.T) {
	p := newPrefetcher(16, 1)
	base := uint64(5050) // stays inside one 4 KB region while stepping down
	var targets []uint64
	for i := 0; i < 6; i++ {
		targets = p.observe(base - uint64(i*2))
	}
	if len(targets) != 1 || targets[0] != base-12 {
		t.Fatalf("negative stride targets %v", targets)
	}
}

func TestNoPrefetchWithoutConfirmation(t *testing.T) {
	p := newPrefetcher(16, 1)
	// Random-looking pattern within a region: strides never repeat.
	blocks := []uint64{100, 103, 101, 110, 102}
	for _, b := range blocks {
		if got := p.observe(b); got != nil {
			t.Fatalf("unconfirmed stream prefetched %v", got)
		}
	}
}

func TestZeroStrideIgnored(t *testing.T) {
	p := newPrefetcher(16, 1)
	for i := 0; i < 5; i++ {
		if got := p.observe(42); got != nil {
			t.Fatal("repeated same-block accesses must not prefetch")
		}
	}
}

func TestPrefetcherEndToEnd(t *testing.T) {
	apps, err := workload.NewMix(0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Prefetch = true
	cfg.PrefetchDegree = 2
	s := New(cfg, testLLC(t, policy.TAP{HThresh: 1}, nil), apps)
	s.Run(2_000_000)
	var issued, fills, useful uint64
	for _, c := range s.Cores() {
		pf := c.Prefetcher()
		if pf == nil {
			t.Fatal("prefetcher not installed")
		}
		issued += pf.Issued
		fills += pf.Fills
		useful += pf.Useful
	}
	if issued == 0 {
		t.Fatal("streaming workloads should trigger prefetches")
	}
	if fills == 0 || fills > issued {
		t.Fatalf("fills=%d issued=%d", fills, issued)
	}
	if useful == 0 {
		t.Error("no prefetch was ever useful; stride streams should hit")
	}
	if err := s.LLC().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchTagBit(t *testing.T) {
	tag := hybrid.BlockTag{Prefetched: true, Reuse: hybrid.ReuseRead, Hits: 3}
	got := hybrid.UnpackTag(tag.Pack())
	if !got.Prefetched || got.Reuse != hybrid.ReuseRead || got.Hits != 3 {
		t.Fatalf("tag roundtrip %+v", got)
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	apps, _ := workload.NewMix(0, 1, 0.25)
	s := New(DefaultConfig(), testLLC(t, policy.BH{}, nil), apps)
	if s.Cores()[0].Prefetcher() != nil {
		t.Fatal("prefetcher should be nil when disabled")
	}
}
