package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(16, 4)
	if c.Sets() != 16 || c.Ways() != 4 {
		t.Fatal("geometry wrong")
	}
	c2 := NewBySize(128*1024, 16)
	if c2.Sets() != 128 {
		t.Fatalf("128KB/16w should have 128 sets, got %d", c2.Sets())
	}
}

func TestNewBySizeTiny(t *testing.T) {
	c := NewBySize(64, 16) // smaller than one set
	if c.Sets() != 1 {
		t.Fatalf("tiny cache should clamp to 1 set, got %d", c.Sets())
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,1) did not panic")
		}
	}()
	New(0, 1)
}

func TestMissThenHit(t *testing.T) {
	c := New(4, 2)
	if l := c.Access(100, false); l != nil {
		t.Fatal("empty cache should miss")
	}
	c.Insert(100, false, 0)
	if l := c.Access(100, false); l == nil {
		t.Fatal("inserted block should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New(4, 2)
	c.Insert(8, false, 0)
	c.Access(8, true)
	w, ok := c.Lookup(8)
	if !ok || !c.Line(c.SetOf(8), w).Dirty {
		t.Fatal("write hit should mark dirty")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, false, 0)
	c.Insert(1, false, 0)
	c.Access(0, false) // 0 becomes MRU; 1 is LRU
	ev := c.Insert(2, true, 0)
	if !ev.Valid || ev.Block != 1 {
		t.Fatalf("evicted %+v, want block 1", ev)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Fatal("MRU block 0 should survive")
	}
}

func TestDirtyEvictionStats(t *testing.T) {
	c := New(1, 1)
	c.Insert(0, true, 0)
	ev := c.Insert(1, false, 0)
	if !ev.Dirty {
		t.Fatal("evicted line should be dirty")
	}
	if c.Evictions != 1 || c.DirtyEvictions != 1 {
		t.Fatalf("eviction stats %d/%d", c.Evictions, c.DirtyEvictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 2)
	c.Insert(4, true, 7)
	old, ok := c.Invalidate(4)
	if !ok || !old.Dirty || old.Flags != 7 {
		t.Fatalf("invalidate returned %+v", old)
	}
	if _, ok := c.Lookup(4); ok {
		t.Fatal("block still present after invalidate")
	}
	if _, ok := c.Invalidate(4); ok {
		t.Fatal("double invalidate should fail")
	}
}

func TestSetMapping(t *testing.T) {
	c := New(8, 2)
	// Blocks in different sets never evict each other.
	for b := uint64(0); b < 8; b++ {
		c.Insert(b, false, 0)
	}
	for b := uint64(0); b < 8; b++ {
		if _, ok := c.Lookup(b); !ok {
			t.Fatalf("block %d missing despite distinct sets", b)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(1, 4)
	for b := uint64(0); b < 4; b++ {
		c.Insert(b, false, 0)
	}
	c.Access(1, false)
	order := c.LRUOrder(0)
	if len(order) != 4 {
		t.Fatalf("order has %d entries", len(order))
	}
	if c.Line(0, order[0]).Block != 1 {
		t.Fatalf("MRU should be block 1, got %d", c.Line(0, order[0]).Block)
	}
	if c.Line(0, order[3]).Block != 0 {
		t.Fatalf("LRU should be block 0, got %d", c.Line(0, order[3]).Block)
	}
}

func TestOccupancy(t *testing.T) {
	c := New(1, 4)
	if c.Occupancy(0) != 0 {
		t.Fatal("fresh cache should be empty")
	}
	c.Insert(0, false, 0)
	c.Insert(1, false, 0)
	if c.Occupancy(0) != 2 {
		t.Fatalf("occupancy = %d", c.Occupancy(0))
	}
}

func TestHitRateAndReset(t *testing.T) {
	c := New(2, 1)
	if c.HitRate() != 0 {
		t.Fatal("no-access hit rate should be 0")
	}
	c.Insert(0, false, 0)
	c.Access(0, false)
	c.Access(1, false)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 || c.HitRate() != 0 {
		t.Fatal("stats not reset")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(1, 3)
	c.Insert(0, false, 0)
	c.Insert(1, false, 0)
	if w := c.VictimWay(0); c.Line(0, w).Valid {
		t.Fatal("victim should be the remaining invalid way")
	}
}

// Property: the cache never holds two copies of a block, and occupancy
// never exceeds associativity.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(4, 3)
		for _, op := range ops {
			block := uint64(op % 64)
			switch (op >> 8) % 3 {
			case 0:
				c.Access(block, op&1 == 1)
			case 1:
				if c.Access(block, false) == nil {
					c.Insert(block, op&1 == 1, 0)
				}
			case 2:
				c.Invalidate(block)
			}
		}
		for set := 0; set < 4; set++ {
			if c.Occupancy(set) > 3 {
				return false
			}
			seen := map[uint64]bool{}
			for w := 0; w < 3; w++ {
				l := c.Line(set, w)
				if !l.Valid {
					continue
				}
				if seen[l.Block] || c.SetOf(l.Block) != set {
					return false
				}
				seen[l.Block] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(1024, 16)
	for i := uint64(0); i < 1024; i++ {
		c.Insert(i, false, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)%1024, false)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New(1024, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i), false, 0)
	}
}
