// Package cache provides generic set-associative cache structures with LRU
// replacement. The private L1 and L2 levels of the simulated hierarchy are
// instances of Cache; the hybrid LLC builds its own structure on top of the
// same LRU bookkeeping because its ways are heterogeneous.
package cache

import "fmt"

// Line is one cache line's bookkeeping state. Data contents are not stored
// at the private levels; the hierarchy keeps authoritative block contents
// in its memory model.
type Line struct {
	Valid bool
	Dirty bool
	// Flags carries policy metadata that must travel with the block, e.g.
	// the LHybrid loop-block tag or the TAP hit counter.
	Flags uint8
	Block uint64 // block address (byte address >> 6)
	last  uint64 // LRU timestamp
}

// Cache is a set-associative, write-back cache with true LRU replacement.
type Cache struct {
	sets, ways int
	lines      []Line // sets*ways, set-major
	tick       uint64

	// Statistics.
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// New returns a cache with the given geometry. sizeBytes = sets*ways*64.
func New(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %dx%d", sets, ways))
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// NewBySize returns a cache of sizeBytes bytes with the given
// associativity and 64-byte lines.
func NewBySize(sizeBytes, ways int) *Cache {
	sets := sizeBytes / (ways * 64)
	if sets == 0 {
		sets = 1
	}
	return New(sets, ways)
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf returns the set index for a block address.
func (c *Cache) SetOf(block uint64) int { return int(block % uint64(c.sets)) }

// line returns the line at (set, way).
func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.ways+way] }

// Line exposes the line at (set, way) for policy inspection.
func (c *Cache) Line(set, way int) *Line { return c.line(set, way) }

// Lookup finds block and returns its way. It does not update LRU state or
// statistics; use Access for the common path.
func (c *Cache) Lookup(block uint64) (way int, ok bool) {
	set := c.SetOf(block)
	for w := 0; w < c.ways; w++ {
		if l := c.line(set, w); l.Valid && l.Block == block {
			return w, true
		}
	}
	return -1, false
}

// Touch marks (set, way) as most recently used.
func (c *Cache) Touch(set, way int) {
	c.tick++
	c.line(set, way).last = c.tick
}

// Access looks up block, updating hit/miss statistics and LRU order on a
// hit. isWrite marks the line dirty on hit. It returns the hit line (nil on
// miss).
func (c *Cache) Access(block uint64, isWrite bool) *Line {
	set := c.SetOf(block)
	for w := 0; w < c.ways; w++ {
		l := c.line(set, w)
		if l.Valid && l.Block == block {
			c.Hits++
			c.Touch(set, w)
			if isWrite {
				l.Dirty = true
			}
			return l
		}
	}
	c.Misses++
	return nil
}

// VictimWay returns the way to replace in set: an invalid way if one
// exists, otherwise the LRU way.
func (c *Cache) VictimWay(set int) int {
	lru, lruTick := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := c.line(set, w)
		if !l.Valid {
			return w
		}
		if l.last < lruTick {
			lru, lruTick = w, l.last
		}
	}
	return lru
}

// Insert fills block into its set, evicting the LRU line if needed.
// It returns the evicted line's previous contents (evicted.Valid reports
// whether a real eviction happened). The new line starts clean with the
// given flags and is made MRU.
func (c *Cache) Insert(block uint64, dirty bool, flags uint8) (evicted Line) {
	set := c.SetOf(block)
	w := c.VictimWay(set)
	l := c.line(set, w)
	evicted = *l
	if evicted.Valid {
		c.Evictions++
		if evicted.Dirty {
			c.DirtyEvictions++
		}
	}
	l.Valid = true
	l.Dirty = dirty
	l.Flags = flags
	l.Block = block
	c.Touch(set, w)
	return evicted
}

// Invalidate removes block from the cache, returning its prior state.
func (c *Cache) Invalidate(block uint64) (old Line, ok bool) {
	set := c.SetOf(block)
	for w := 0; w < c.ways; w++ {
		l := c.line(set, w)
		if l.Valid && l.Block == block {
			old = *l
			l.Valid = false
			l.Dirty = false
			l.Flags = 0
			return old, true
		}
	}
	return Line{}, false
}

// LRUOrder returns the ways of set ordered from MRU to LRU, considering
// only valid lines. Policies that migrate "the most recent X" use this.
func (c *Cache) LRUOrder(set int) []int {
	ways := make([]int, 0, c.ways)
	for w := 0; w < c.ways; w++ {
		if c.line(set, w).Valid {
			ways = append(ways, w)
		}
	}
	// Insertion sort by descending timestamp; associativity is small.
	for i := 1; i < len(ways); i++ {
		for j := i; j > 0 && c.line(set, ways[j]).last > c.line(set, ways[j-1]).last; j-- {
			ways[j], ways[j-1] = ways[j-1], ways[j]
		}
	}
	return ways
}

// Occupancy returns the number of valid lines in set.
func (c *Cache) Occupancy(set int) int {
	n := 0
	for w := 0; w < c.ways; w++ {
		if c.line(set, w).Valid {
			n++
		}
	}
	return n
}

// HitRate returns hits/(hits+misses), 0 when no accesses happened.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// ResetStats clears the statistics counters without touching contents.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions, c.DirtyEvictions = 0, 0, 0, 0
}
