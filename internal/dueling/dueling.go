// Package dueling implements an N-way set-sampling policy tournament.
//
// The mechanism generalizes the paper's Set Dueling for the compression
// threshold CPth (§IV-C) and its rule-based CP_SD_Th variant (§IV-D): a
// fixed share of the cache sets is partitioned into sampler groups, one
// per tournament candidate; every candidate is tested on sets/Divisor
// sets. The remaining (follower) sets use the candidate that performed
// best in the previous epoch. Each sampler group accumulates its number
// of LLC hits and NVM bytes written; at every epoch boundary the winner
// is recomputed.
//
// Candidates are opaque descriptors (Candidate): the controller
// arbitrates them purely on their votes and never interprets what a
// candidate means. The paper's CPth dueling attaches an integer
// threshold per candidate (New / NewWithCandidates); the policy
// tournament of internal/policy attaches a whole insertion policy per
// candidate through the Payload index (NewTournament). The shard
// engine's epoch barrier relies on AddVotes/MergeFrom/AdoptWinner being
// exact integer sums over the per-candidate counters, so an N-way
// tournament merged across shards picks exactly the winner a sequential
// controller would have picked from the combined access stream.
package dueling

import (
	"fmt"

	"repro/internal/metrics"
)

// DefaultCandidates are the CPth values duelled in the paper's evaluation,
// spanning 30 to 64 (§IV-C). 58 admits every compressed block into NVM;
// 64 admits uncompressed blocks too.
var DefaultCandidates = []int{30, 34, 37, 40, 44, 48, 51, 55, 58, 64}

// GroupDivisor is the default number of equal set classes the cache is
// divided into; each candidate occupies one class (N/32 sets, as in the
// paper).
const GroupDivisor = 32

// Candidate describes one tournament competitor. The controller treats
// it as opaque: only the vote counters of its sampler sets matter for
// winner selection.
type Candidate struct {
	// Name labels the candidate in reports and diagnostics (e.g. "CPth40"
	// or "SRRIP").
	Name string
	// CPth is the compression threshold the candidate's sampler sets run
	// and follower sets adopt while it holds the win.
	CPth int
	// Payload is an opaque caller-owned index; the policy tournament maps
	// it to the insertion policy the candidate's sets delegate to. The
	// controller never reads it.
	Payload int
}

// Controller implements hybrid.ThresholdProvider with N-way set-sampling:
// the paper's CPth dueling when candidates differ only in CPth, a policy
// tournament when the caller attaches per-candidate behaviour via
// Payload and CandidateFor.
type Controller struct {
	cands   []Candidate
	divisor int
	group   []int16 // per set: candidate index, or -1 for followers
	hits    []uint64
	bytes   []uint64
	winner  int // candidate index used by follower sets

	// Th is the maximum percentage of hits the rule may sacrifice; Tw is
	// the minimum percentage of NVM bytes-written reduction required to
	// accept that sacrifice (Eq. 1). Th = 0 disables the rule (plain
	// CP_SD).
	Th, Tw float64

	// History records the winning CPth of every closed epoch; IdxHistory
	// records the winning candidate index (the policy-tournament view,
	// where several candidates may share one CPth).
	History    []int
	IdxHistory []int

	// RecordPerEpoch, when set before the run, keeps per-epoch copies of
	// each candidate's hit and byte counters (for Fig 8-style analyses).
	RecordPerEpoch bool
	EpochHits      [][]uint64
	EpochBytes     [][]uint64
}

// New builds a controller for a cache with the given number of sets using
// DefaultCandidates and thresholds th/tw (both 0 for plain CP_SD).
func New(sets int, th, tw float64) *Controller {
	return NewWithCandidates(sets, DefaultCandidates, th, tw)
}

// NewWithCandidates builds a CPth-dueling controller with an explicit
// threshold list. Thresholds must be in ascending order; their number
// must not exceed GroupDivisor.
func NewWithCandidates(sets int, cpths []int, th, tw float64) *Controller {
	for i := 1; i < len(cpths); i++ {
		if cpths[i] <= cpths[i-1] {
			panic("dueling: candidates must be strictly ascending")
		}
	}
	cands := make([]Candidate, len(cpths))
	for i, v := range cpths {
		cands[i] = Candidate{Name: fmt.Sprintf("CPth%d", v), CPth: v, Payload: i}
	}
	return NewTournament(sets, cands, GroupDivisor, th, tw)
}

// NewTournament builds an N-way tournament controller over opaque
// candidates. divisor is the number of equal set classes (each candidate
// samples on sets/divisor sets; 0 selects GroupDivisor); the candidate
// count must not exceed it. th/tw arm the Eq. 1 trade-off rule (0 for
// plain max-hits selection). The initial winner is the last candidate,
// matching the paper's permissive (highest-CPth) start.
func NewTournament(sets int, cands []Candidate, divisor int, th, tw float64) *Controller {
	if divisor == 0 {
		divisor = GroupDivisor
	}
	if len(cands) == 0 || len(cands) > divisor {
		panic(fmt.Sprintf("dueling: %d candidates, want 1..%d", len(cands), divisor))
	}
	c := &Controller{
		cands:   append([]Candidate(nil), cands...),
		divisor: divisor,
		group:   make([]int16, sets),
		hits:    make([]uint64, len(cands)),
		bytes:   make([]uint64, len(cands)),
		winner:  len(cands) - 1,
		Th:      th,
		Tw:      tw,
	}
	for s := range c.group {
		g := s % divisor
		if g < len(cands) {
			c.group[s] = int16(g)
		} else {
			c.group[s] = -1
		}
	}
	return c
}

// Candidates returns the candidate CPth values (the legacy CPth-dueling
// view; see CandidateList for the full descriptors).
func (c *Controller) Candidates() []int {
	out := make([]int, len(c.cands))
	for i, cd := range c.cands {
		out[i] = cd.CPth
	}
	return out
}

// CandidateList returns the tournament's candidate descriptors.
func (c *Controller) CandidateList() []Candidate {
	return append([]Candidate(nil), c.cands...)
}

// Divisor returns the number of set classes the cache is divided into.
func (c *Controller) Divisor() int { return c.divisor }

// Winner returns the CPth currently used by follower sets.
func (c *Controller) Winner() int { return c.cands[c.winner].CPth }

// WinnerIndex returns the index of the candidate follower sets use.
func (c *Controller) WinnerIndex() int { return c.winner }

// WinnerCandidate returns the descriptor of the current winner.
func (c *Controller) WinnerCandidate() Candidate { return c.cands[c.winner] }

// IsSampler reports whether set is a sampler set and for which candidate.
func (c *Controller) IsSampler(set int) (candidate int, ok bool) {
	g := c.group[set]
	if g < 0 {
		return 0, false
	}
	return int(g), true
}

// CandidateFor returns the index of the candidate governing a set: the
// sampled candidate for sampler sets, the current winner for followers.
// The policy tournament resolves per-set insertion behaviour through it.
func (c *Controller) CandidateFor(set int) int {
	if g := c.group[set]; g >= 0 {
		return int(g)
	}
	return c.winner
}

// CPthFor implements hybrid.ThresholdProvider.
func (c *Controller) CPthFor(set int) int {
	return c.cands[c.CandidateFor(set)].CPth
}

// RecordHit implements hybrid.ThresholdProvider.
func (c *Controller) RecordHit(set int) {
	if g := c.group[set]; g >= 0 {
		c.hits[g]++
	}
}

// RecordNVMBytes implements hybrid.ThresholdProvider.
func (c *Controller) RecordNVMBytes(set int, n int) {
	if g := c.group[set]; g >= 0 {
		c.bytes[g] += uint64(n)
	}
}

// EndEpoch implements hybrid.ThresholdProvider: it applies the selection
// rule of §IV-C/§IV-D and resets the epoch counters.
//
// Plain selection picks the candidate with the most hits (ties break to
// the lowest index — the smallest CPth under the ascending legacy
// ordering). The Th/Tw rule then looks for the lowest-index candidate j
// satisfying Eq. (1):
//
//	H(j) > H(i)*(1 - Th/100)  and  W(j) < W(i)*(1 - Tw/100)
//
// where i is the plain winner.
func (c *Controller) EndEpoch() {
	best := 0
	for k := 1; k < len(c.cands); k++ {
		if c.hits[k] > c.hits[best] {
			best = k
		}
	}
	sel := best
	if c.Th > 0 {
		hFloor := float64(c.hits[best]) * (1 - c.Th/100)
		wCeil := float64(c.bytes[best]) * (1 - c.Tw/100)
		for j := 0; j < len(c.cands); j++ {
			if float64(c.hits[j]) > hFloor && float64(c.bytes[j]) < wCeil {
				sel = j
				break
			}
		}
	}
	c.winner = sel
	c.History = append(c.History, c.cands[sel].CPth)
	c.IdxHistory = append(c.IdxHistory, sel)
	if c.RecordPerEpoch {
		c.EpochHits = append(c.EpochHits, append([]uint64(nil), c.hits...))
		c.EpochBytes = append(c.EpochBytes, append([]uint64(nil), c.bytes...))
	}
	for k := range c.hits {
		c.hits[k] = 0
		c.bytes[k] = 0
	}
}

// RegisterMetrics implements metrics.Registrable: the controller's state
// appears under "dueling.*" — the CPth follower sets currently use, the
// winning candidate index, the number of closed epochs, and the open
// epoch's aggregate sampler counters. The per-epoch winner series is
// recorded by the hierarchy's epoch ring (and in History/IdxHistory).
func (c *Controller) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("dueling.cpth", func() float64 { return float64(c.Winner()) })
	reg.GaugeFunc("dueling.winner_idx", func() float64 { return float64(c.WinnerIndex()) })
	reg.CounterFunc("dueling.epochs", func() uint64 { return uint64(len(c.History)) })
	reg.GaugeFunc("dueling.epoch_hits", func() float64 {
		var t uint64
		for _, h := range c.hits {
			t += h
		}
		return float64(t)
	})
	reg.GaugeFunc("dueling.epoch_bytes", func() float64 {
		var t uint64
		for _, b := range c.bytes {
			t += b
		}
		return float64(t)
	})
}

// EpochCounters returns the current (open) epoch's per-candidate hit and
// byte counters, for tests and diagnostics.
func (c *Controller) EpochCounters() (hits, bytes []uint64) {
	return append([]uint64(nil), c.hits...), append([]uint64(nil), c.bytes...)
}

// AddVotes folds external per-candidate vote counters into the open
// epoch. Vote counts are plain sums, so accumulating shard-local sampler
// counters this way and then calling EndEpoch selects exactly the winner
// the sequential controller would have picked from the combined stream.
func (c *Controller) AddVotes(hits, bytes []uint64) {
	if len(hits) != len(c.cands) || len(bytes) != len(c.cands) {
		panic(fmt.Sprintf("dueling: AddVotes arity %d/%d, want %d",
			len(hits), len(bytes), len(c.cands)))
	}
	for k := range c.hits {
		c.hits[k] += hits[k]
		c.bytes[k] += bytes[k]
	}
}

// MergeFrom folds other's open-epoch counters into c and clears them from
// other, without touching either controller's winner or History. The shard
// engine's epoch barrier calls it once per shard, in ascending shard
// order, before closing the global epoch.
func (c *Controller) MergeFrom(other *Controller) {
	if len(other.cands) != len(c.cands) {
		panic("dueling: MergeFrom across different candidate lists")
	}
	for k := range c.hits {
		c.hits[k] += other.hits[k]
		c.bytes[k] += other.bytes[k]
		other.hits[k] = 0
		other.bytes[k] = 0
	}
}

// AdoptWinner copies other's follower choice into c without recording an
// epoch. After the global controller closes an epoch, each shard
// controller adopts its winner so follower sets everywhere use the
// globally selected candidate — exactly what the sequential controller's
// follower sets would see.
func (c *Controller) AdoptWinner(other *Controller) {
	if len(other.cands) != len(c.cands) {
		panic("dueling: AdoptWinner across different candidate lists")
	}
	c.winner = other.winner
}

// OpenVoteTotals sums the open epoch's hit and byte counters across all
// candidates (the values behind the dueling.epoch_hits/epoch_bytes
// gauges), without allocating.
func (c *Controller) OpenVoteTotals() (hits, bytes uint64) {
	for k := range c.hits {
		hits += c.hits[k]
		bytes += c.bytes[k]
	}
	return hits, bytes
}

// SamplerSets returns how many sets sample candidate k.
func (c *Controller) SamplerSets(k int) int {
	n := 0
	for _, g := range c.group {
		if int(g) == k {
			n++
		}
	}
	return n
}
