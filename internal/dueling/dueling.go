// Package dueling implements the paper's Set Dueling mechanism for
// selecting the compression threshold CPth at runtime (§IV-C) and the
// rule-based CP_SD_Th variant that also weighs NVM write traffic (§IV-D).
//
// A fixed share of the cache sets is partitioned into sampler groups, one
// per candidate CPth value; every candidate is tested on N/32 sets. The
// remaining (follower) sets use the threshold of the group that performed
// best in the previous epoch. Each sampler group accumulates its number of
// LLC hits and NVM bytes written; at every epoch boundary the winner is
// recomputed.
package dueling

import (
	"fmt"

	"repro/internal/metrics"
)

// DefaultCandidates are the CPth values duelled in the paper's evaluation,
// spanning 30 to 64 (§IV-C). 58 admits every compressed block into NVM;
// 64 admits uncompressed blocks too.
var DefaultCandidates = []int{30, 34, 37, 40, 44, 48, 51, 55, 58, 64}

// GroupDivisor is the number of equal set classes the cache is divided
// into; each candidate occupies one class (N/32 sets, as in the paper).
const GroupDivisor = 32

// Controller implements hybrid.ThresholdProvider with set dueling.
type Controller struct {
	candidates []int
	group      []int16 // per set: candidate index, or -1 for followers
	hits       []uint64
	bytes      []uint64
	winner     int // candidate index used by follower sets

	// Th is the maximum percentage of hits the rule may sacrifice; Tw is
	// the minimum percentage of NVM bytes-written reduction required to
	// accept that sacrifice (Eq. 1). Th = 0 disables the rule (plain
	// CP_SD).
	Th, Tw float64

	// History records the winning CPth of every closed epoch.
	History []int

	// RecordPerEpoch, when set before the run, keeps per-epoch copies of
	// each candidate's hit and byte counters (for Fig 8-style analyses).
	RecordPerEpoch bool
	EpochHits      [][]uint64
	EpochBytes     [][]uint64
}

// New builds a controller for a cache with the given number of sets using
// DefaultCandidates and thresholds th/tw (both 0 for plain CP_SD).
func New(sets int, th, tw float64) *Controller {
	return NewWithCandidates(sets, DefaultCandidates, th, tw)
}

// NewWithCandidates builds a controller with an explicit candidate list.
// Candidates must be in ascending order; the number of candidates must not
// exceed GroupDivisor.
func NewWithCandidates(sets int, candidates []int, th, tw float64) *Controller {
	if len(candidates) == 0 || len(candidates) > GroupDivisor {
		panic(fmt.Sprintf("dueling: %d candidates, want 1..%d", len(candidates), GroupDivisor))
	}
	for i := 1; i < len(candidates); i++ {
		if candidates[i] <= candidates[i-1] {
			panic("dueling: candidates must be strictly ascending")
		}
	}
	c := &Controller{
		candidates: append([]int(nil), candidates...),
		group:      make([]int16, sets),
		hits:       make([]uint64, len(candidates)),
		bytes:      make([]uint64, len(candidates)),
		winner:     len(candidates) - 1, // start permissive (highest CPth)
		Th:         th,
		Tw:         tw,
	}
	for s := range c.group {
		g := s % GroupDivisor
		if g < len(candidates) {
			c.group[s] = int16(g)
		} else {
			c.group[s] = -1
		}
	}
	return c
}

// Candidates returns the candidate CPth values.
func (c *Controller) Candidates() []int { return c.candidates }

// Winner returns the CPth currently used by follower sets.
func (c *Controller) Winner() int { return c.candidates[c.winner] }

// IsSampler reports whether set is a sampler set and for which candidate.
func (c *Controller) IsSampler(set int) (candidate int, ok bool) {
	g := c.group[set]
	if g < 0 {
		return 0, false
	}
	return int(g), true
}

// CPthFor implements hybrid.ThresholdProvider.
func (c *Controller) CPthFor(set int) int {
	if g := c.group[set]; g >= 0 {
		return c.candidates[g]
	}
	return c.candidates[c.winner]
}

// RecordHit implements hybrid.ThresholdProvider.
func (c *Controller) RecordHit(set int) {
	if g := c.group[set]; g >= 0 {
		c.hits[g]++
	}
}

// RecordNVMBytes implements hybrid.ThresholdProvider.
func (c *Controller) RecordNVMBytes(set int, n int) {
	if g := c.group[set]; g >= 0 {
		c.bytes[g] += uint64(n)
	}
}

// EndEpoch implements hybrid.ThresholdProvider: it applies the selection
// rule of §IV-C/§IV-D and resets the epoch counters.
//
// Plain CP_SD picks the candidate with the most hits. CP_SD_Th then looks
// for the smallest CPth value j satisfying Eq. (1):
//
//	H(j) > H(i)*(1 - Th/100)  and  W(j) < W(i)*(1 - Tw/100)
//
// where i is the plain winner.
func (c *Controller) EndEpoch() {
	best := 0
	for k := 1; k < len(c.candidates); k++ {
		if c.hits[k] > c.hits[best] {
			best = k
		}
	}
	sel := best
	if c.Th > 0 {
		hFloor := float64(c.hits[best]) * (1 - c.Th/100)
		wCeil := float64(c.bytes[best]) * (1 - c.Tw/100)
		for j := 0; j < len(c.candidates); j++ {
			if float64(c.hits[j]) > hFloor && float64(c.bytes[j]) < wCeil {
				sel = j
				break
			}
		}
	}
	c.winner = sel
	c.History = append(c.History, c.candidates[sel])
	if c.RecordPerEpoch {
		c.EpochHits = append(c.EpochHits, append([]uint64(nil), c.hits...))
		c.EpochBytes = append(c.EpochBytes, append([]uint64(nil), c.bytes...))
	}
	for k := range c.hits {
		c.hits[k] = 0
		c.bytes[k] = 0
	}
}

// RegisterMetrics implements metrics.Registrable: the controller's state
// appears under "dueling.*" — the CPth follower sets currently use, the
// number of closed epochs, and the open epoch's aggregate sampler
// counters. The per-epoch winner series is recorded by the hierarchy's
// epoch ring (and in History).
func (c *Controller) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("dueling.cpth", func() float64 { return float64(c.Winner()) })
	reg.CounterFunc("dueling.epochs", func() uint64 { return uint64(len(c.History)) })
	reg.GaugeFunc("dueling.epoch_hits", func() float64 {
		var t uint64
		for _, h := range c.hits {
			t += h
		}
		return float64(t)
	})
	reg.GaugeFunc("dueling.epoch_bytes", func() float64 {
		var t uint64
		for _, b := range c.bytes {
			t += b
		}
		return float64(t)
	})
}

// EpochCounters returns the current (open) epoch's per-candidate hit and
// byte counters, for tests and diagnostics.
func (c *Controller) EpochCounters() (hits, bytes []uint64) {
	return append([]uint64(nil), c.hits...), append([]uint64(nil), c.bytes...)
}

// AddVotes folds external per-candidate vote counters into the open
// epoch. Vote counts are plain sums, so accumulating shard-local sampler
// counters this way and then calling EndEpoch selects exactly the winner
// the sequential controller would have picked from the combined stream.
func (c *Controller) AddVotes(hits, bytes []uint64) {
	if len(hits) != len(c.candidates) || len(bytes) != len(c.candidates) {
		panic(fmt.Sprintf("dueling: AddVotes arity %d/%d, want %d",
			len(hits), len(bytes), len(c.candidates)))
	}
	for k := range c.hits {
		c.hits[k] += hits[k]
		c.bytes[k] += bytes[k]
	}
}

// MergeFrom folds other's open-epoch counters into c and clears them from
// other, without touching either controller's winner or History. The shard
// engine's epoch barrier calls it once per shard, in ascending shard
// order, before closing the global epoch.
func (c *Controller) MergeFrom(other *Controller) {
	if len(other.candidates) != len(c.candidates) {
		panic("dueling: MergeFrom across different candidate lists")
	}
	for k := range c.hits {
		c.hits[k] += other.hits[k]
		c.bytes[k] += other.bytes[k]
		other.hits[k] = 0
		other.bytes[k] = 0
	}
}

// AdoptWinner copies other's follower threshold choice into c without
// recording an epoch. After the global controller closes an epoch, each
// shard controller adopts its winner so follower sets everywhere use the
// globally selected CPth — exactly what the sequential controller's
// follower sets would see.
func (c *Controller) AdoptWinner(other *Controller) {
	if len(other.candidates) != len(c.candidates) {
		panic("dueling: AdoptWinner across different candidate lists")
	}
	c.winner = other.winner
}

// OpenVoteTotals sums the open epoch's hit and byte counters across all
// candidates (the values behind the dueling.epoch_hits/epoch_bytes
// gauges), without allocating.
func (c *Controller) OpenVoteTotals() (hits, bytes uint64) {
	for k := range c.hits {
		hits += c.hits[k]
		bytes += c.bytes[k]
	}
	return hits, bytes
}

// SamplerSets returns how many sets sample candidate k.
func (c *Controller) SamplerSets(k int) int {
	n := 0
	for _, g := range c.group {
		if int(g) == k {
			n++
		}
	}
	return n
}
