package dueling

import (
	"reflect"
	"testing"
)

// Differential proof that the N-way tournament subsumes the legacy CPth
// dueling path: a 2-candidate tournament whose candidates carry the same
// CPth values must be bit-exact with NewWithCandidates on the same event
// stream — same per-set thresholds after every epoch, same winner
// history — both sequentially and with the stream sharded by set and
// folded through MergeFrom/AdoptWinner.

// lcg is a tiny deterministic generator so the vote stream is fixed.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 33
}

func TestTwoCandidateTournamentMatchesLegacySequential(t *testing.T) {
	const sets = 128
	for _, params := range []struct{ th, tw float64 }{{0, 0}, {4, 5}} {
		legacy := NewWithCandidates(sets, []int{44, 58}, params.th, params.tw)
		tourn := NewTournament(sets, []Candidate{
			{Name: "CA_RWR@44", CPth: 44, Payload: 0},
			{Name: "CA_RWR@58", CPth: 58, Payload: 1},
		}, 0, params.th, params.tw)

		rng := lcg(9)
		for epoch := 0; epoch < 20; epoch++ {
			for i := 0; i < 4000; i++ {
				set := int(rng.next() % sets)
				switch rng.next() % 3 {
				case 0:
					legacy.RecordHit(set)
					tourn.RecordHit(set)
				default:
					n := int(rng.next() % 80)
					legacy.RecordNVMBytes(set, n)
					tourn.RecordNVMBytes(set, n)
				}
			}
			legacy.EndEpoch()
			tourn.EndEpoch()
			for s := 0; s < sets; s++ {
				if legacy.CPthFor(s) != tourn.CPthFor(s) {
					t.Fatalf("th=%v: epoch %d set %d: legacy CPth %d, tournament %d",
						params.th, epoch, s, legacy.CPthFor(s), tourn.CPthFor(s))
				}
			}
			if legacy.WinnerIndex() != tourn.WinnerIndex() {
				t.Fatalf("th=%v: epoch %d: winner index %d vs %d",
					params.th, epoch, legacy.WinnerIndex(), tourn.WinnerIndex())
			}
		}
		if !reflect.DeepEqual(legacy.History, tourn.History) {
			t.Fatalf("th=%v: history diverged:\nlegacy %v\ntourn  %v", params.th, legacy.History, tourn.History)
		}
	}
}

func TestTwoCandidateTournamentMatchesLegacySharded(t *testing.T) {
	const sets = 128
	newTourn := func() *Controller {
		return NewTournament(sets, []Candidate{
			{Name: "CA_RWR@44", CPth: 44, Payload: 0},
			{Name: "CA_RWR@58", CPth: 58, Payload: 1},
		}, 0, 4, 5)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		global := newTourn()
		locals := make([]*Controller, shards)
		for i := range locals {
			locals[i] = newTourn()
		}
		ref := NewWithCandidates(sets, []int{44, 58}, 4, 5)
		shardOf := func(set int) int { return set * shards / sets }

		rng := lcg(9)
		for epoch := 0; epoch < 12; epoch++ {
			for i := 0; i < 4000; i++ {
				set := int(rng.next() % sets)
				l := locals[shardOf(set)]
				switch rng.next() % 3 {
				case 0:
					ref.RecordHit(set)
					l.RecordHit(set)
				default:
					n := int(rng.next() % 80)
					ref.RecordNVMBytes(set, n)
					l.RecordNVMBytes(set, n)
				}
			}
			// Epoch barrier: merge in ascending shard order, close the
			// global epoch, adopt the winner everywhere.
			for _, l := range locals {
				global.MergeFrom(l)
			}
			ref.EndEpoch()
			global.EndEpoch()
			for _, l := range locals {
				l.AdoptWinner(global)
			}
			// Every shard's view of every owned set must match the
			// sequential legacy controller.
			for s := 0; s < sets; s++ {
				if got, want := locals[shardOf(s)].CPthFor(s), ref.CPthFor(s); got != want {
					t.Fatalf("shards=%d epoch %d set %d: CPth %d, want %d", shards, epoch, s, got, want)
				}
			}
		}
		if !reflect.DeepEqual(global.History, ref.History) {
			t.Fatalf("shards=%d: history diverged:\nref   %v\ntourn %v", shards, ref.History, global.History)
		}
	}
}
