package dueling

import (
	"reflect"
	"testing"
)

// The shard engine's epoch barrier folds per-shard sampler votes into one
// global controller (MergeFrom), closes the epoch there, and distributes
// the winner back (AdoptWinner). These tables pin the reduction against
// the sequential reference: a single controller fed the combined votes
// must pick the same winner, under the plain max-hits rule, its
// tie-breaking order, and the Th/Tw trade-off rule.

// splitVotes deals per-candidate totals across n shard-local vote vectors
// round-robin, so every shard sees a different partial view.
func splitVotes(total []uint64, n int) [][]uint64 {
	parts := make([][]uint64, n)
	for i := range parts {
		parts[i] = make([]uint64, len(total))
	}
	for c, t := range total {
		for i := uint64(0); i < t; i++ {
			parts[i%uint64(n)][c]++
		}
	}
	return parts
}

func TestMergeFromMatchesSequential(t *testing.T) {
	cands := []int{30, 40, 50, 64}
	cases := []struct {
		name       string
		th, tw     float64
		hits       []uint64
		bytes      []uint64
		wantWinner int // expected CPth after EndEpoch
	}{
		{
			name: "plain max hits",
			hits: []uint64{5, 17, 9, 3}, bytes: []uint64{100, 100, 100, 100},
			wantWinner: 40,
		},
		{
			name: "plain tie breaks to lowest index",
			hits: []uint64{7, 12, 12, 4}, bytes: []uint64{0, 0, 0, 0},
			wantWinner: 40,
		},
		{
			name: "all zero votes keep candidate 0",
			hits: []uint64{0, 0, 0, 0}, bytes: []uint64{0, 0, 0, 0},
			wantWinner: 30,
		},
		{
			name: "Th rule trades hits for byte reduction",
			th:   10, tw: 20,
			// Best hits: candidate 2 (100 hits, 1000 bytes). Candidate 0
			// keeps 95 > 90 hits and writes 500 < 800 bytes -> smallest
			// qualifying CPth wins.
			hits: []uint64{95, 80, 100, 60}, bytes: []uint64{500, 900, 1000, 400},
			wantWinner: 30,
		},
		{
			name: "Th rule falls back to plain winner",
			th:   4, tw: 5,
			// No candidate keeps 96% of the best hits while cutting
			// bytes by 5%, so the plain winner stands.
			hits: []uint64{50, 60, 100, 70}, bytes: []uint64{990, 980, 1000, 995},
			wantWinner: 50,
		},
	}
	for _, tc := range cases {
		for _, shards := range []int{1, 2, 3, 5} {
			// Sequential reference: one controller sees all votes.
			seq := NewWithCandidates(64, cands, tc.th, tc.tw)
			seq.AddVotes(tc.hits, tc.bytes)
			seq.EndEpoch()

			// Sharded: votes split across shard controllers, merged at
			// the barrier in ascending shard order.
			global := NewWithCandidates(64, cands, tc.th, tc.tw)
			locals := make([]*Controller, shards)
			hParts := splitVotes(tc.hits, shards)
			bParts := splitVotes(tc.bytes, shards)
			for i := range locals {
				locals[i] = NewWithCandidates(64, cands, tc.th, tc.tw)
				locals[i].AddVotes(hParts[i], bParts[i])
			}
			for _, l := range locals {
				global.MergeFrom(l)
			}
			global.EndEpoch()
			for _, l := range locals {
				l.AdoptWinner(global)
			}

			if got := global.Winner(); got != tc.wantWinner {
				t.Errorf("%s/%d shards: merged winner %d, want %d", tc.name, shards, got, tc.wantWinner)
			}
			if got, want := global.Winner(), seq.Winner(); got != want {
				t.Errorf("%s/%d shards: merged winner %d != sequential %d", tc.name, shards, got, want)
			}
			if !reflect.DeepEqual(global.History, seq.History) {
				t.Errorf("%s/%d shards: history %v != sequential %v", tc.name, shards, global.History, seq.History)
			}
			for i, l := range locals {
				// Follower sets of every shard must use the adopted global
				// winner; set 63 is a follower (beyond the candidate groups).
				if got, want := l.CPthFor(63), seq.CPthFor(63); got != want {
					t.Errorf("%s/%d shards: shard %d follower CPth %d, want %d", tc.name, shards, i, got, want)
				}
				// MergeFrom must have drained the shard's open counters.
				if h, b := l.OpenVoteTotals(); h != 0 || b != 0 {
					t.Errorf("%s/%d shards: shard %d retains open votes (%d hits, %d bytes)", tc.name, shards, i, h, b)
				}
			}
		}
	}
}

// TestMergeFromAccumulatesAcrossCalls pins that merging is additive: two
// merges from the same shard controller between epochs behave like one
// combined vote stream, and the open totals reflect the running sum.
func TestMergeFromAccumulatesAcrossCalls(t *testing.T) {
	cands := []int{30, 64}
	global := NewWithCandidates(64, cands, 0, 0)
	local := NewWithCandidates(64, cands, 0, 0)

	local.AddVotes([]uint64{3, 1}, []uint64{10, 20})
	global.MergeFrom(local)
	local.AddVotes([]uint64{1, 9}, []uint64{5, 5})
	global.MergeFrom(local)

	h, b := global.OpenVoteTotals()
	if h != 14 || b != 40 {
		t.Fatalf("open totals (%d, %d), want (14, 40)", h, b)
	}
	global.EndEpoch()
	if got := global.Winner(); got != 64 {
		t.Fatalf("winner %d, want 64 (9+1 > 3+1 hits)", got)
	}
}

func TestAddVotesArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddVotes accepted mismatched vote vector lengths")
		}
	}()
	NewWithCandidates(64, []int{30, 64}, 0, 0).AddVotes([]uint64{1}, []uint64{1})
}

func TestMergeFromGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeFrom accepted a controller with a different candidate list")
		}
	}()
	a := NewWithCandidates(64, []int{30, 64}, 0, 0)
	b := NewWithCandidates(64, []int{30, 40, 64}, 0, 0)
	a.MergeFrom(b)
}
