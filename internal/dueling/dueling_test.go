package dueling

import (
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestGroupAssignment(t *testing.T) {
	c := New(1024, 0, 0)
	nc := len(c.Candidates())
	// Each candidate samples exactly N/32 sets.
	for k := 0; k < nc; k++ {
		if n := c.SamplerSets(k); n != 1024/GroupDivisor {
			t.Errorf("candidate %d samples %d sets, want %d", k, n, 1024/GroupDivisor)
		}
	}
	// Remaining sets are followers.
	followers := 0
	for s := 0; s < 1024; s++ {
		if _, ok := c.IsSampler(s); !ok {
			followers++
		}
	}
	if followers != 1024-nc*1024/GroupDivisor {
		t.Errorf("followers = %d", followers)
	}
}

func TestSamplerUsesOwnCandidate(t *testing.T) {
	c := New(64, 0, 0)
	for s := 0; s < 64; s++ {
		if k, ok := c.IsSampler(s); ok {
			if c.CPthFor(s) != c.Candidates()[k] {
				t.Fatalf("sampler set %d uses %d, want candidate %d", s, c.CPthFor(s), c.Candidates()[k])
			}
		} else if c.CPthFor(s) != c.Winner() {
			t.Fatalf("follower set %d uses %d, want winner %d", s, c.CPthFor(s), c.Winner())
		}
	}
}

func TestWinnerByHits(t *testing.T) {
	c := New(64, 0, 0)
	// Give candidate 2 (CPth 37) the most hits via its sampler sets.
	target := 2
	for s := 0; s < 64; s++ {
		if k, ok := c.IsSampler(s); ok && k == target {
			for i := 0; i < 10; i++ {
				c.RecordHit(s)
			}
		} else if ok {
			c.RecordHit(s)
		}
	}
	c.EndEpoch()
	if c.Winner() != c.Candidates()[target] {
		t.Fatalf("winner = %d, want %d", c.Winner(), c.Candidates()[target])
	}
	if len(c.History) != 1 || c.History[0] != c.Candidates()[target] {
		t.Fatalf("history %v", c.History)
	}
}

func TestFollowerCountersIgnored(t *testing.T) {
	c := New(64, 0, 0)
	for s := 0; s < 64; s++ {
		if _, ok := c.IsSampler(s); !ok {
			c.RecordHit(s)
			c.RecordNVMBytes(s, 100)
		}
	}
	hits, bytes := c.EpochCounters()
	for k := range hits {
		if hits[k] != 0 || bytes[k] != 0 {
			t.Fatal("follower activity leaked into sampler counters")
		}
	}
}

func TestEpochCountersReset(t *testing.T) {
	c := New(64, 0, 0)
	c.RecordHit(0) // set 0 samples candidate 0
	c.RecordNVMBytes(0, 42)
	c.EndEpoch()
	hits, bytes := c.EpochCounters()
	if hits[0] != 0 || bytes[0] != 0 {
		t.Fatal("counters not reset at epoch boundary")
	}
}

// TestThRule verifies Eq. (1): with Th set, the smallest CPth whose hits
// are within Th% of the best and whose writes are at least Tw% lower wins.
func TestThRule(t *testing.T) {
	c := NewWithCandidates(GroupDivisor*4, []int{30, 40, 50, 60}, 4, 5)
	feed := func(k int, hits, bytes int) {
		// find a sampler set of candidate k
		for s := 0; s < GroupDivisor*4; s++ {
			if kk, ok := c.IsSampler(s); ok && kk == k {
				for i := 0; i < hits; i++ {
					c.RecordHit(s)
				}
				c.RecordNVMBytes(s, bytes)
				return
			}
		}
		t.Fatalf("no sampler for %d", k)
	}
	// Best hits at CPth=60 (1000 hits, 1000 bytes). CPth=30: hits 970
	// (within 4%), bytes 500 (>5% lower) -> rule selects 30.
	feed(0, 970, 500)
	feed(1, 980, 990) // bytes not low enough
	feed(2, 950, 100) // hits too low
	feed(3, 1000, 1000)
	c.EndEpoch()
	if c.Winner() != 30 {
		t.Fatalf("rule winner = %d, want 30", c.Winner())
	}
}

func TestThRuleFallsBackToBest(t *testing.T) {
	c := NewWithCandidates(GroupDivisor, []int{30, 60}, 2, 5)
	for s := 0; s < GroupDivisor; s++ {
		if k, ok := c.IsSampler(s); ok {
			if k == 1 {
				for i := 0; i < 100; i++ {
					c.RecordHit(s)
				}
				c.RecordNVMBytes(s, 100)
			} else {
				for i := 0; i < 50; i++ { // far below the 2% margin
					c.RecordHit(s)
				}
				c.RecordNVMBytes(s, 10)
			}
		}
	}
	c.EndEpoch()
	if c.Winner() != 60 {
		t.Fatalf("no candidate satisfies the rule; winner = %d, want 60", c.Winner())
	}
}

func TestZeroThIsPlainCPSD(t *testing.T) {
	c := NewWithCandidates(GroupDivisor, []int{30, 60}, 0, 5)
	for s := 0; s < GroupDivisor; s++ {
		if k, ok := c.IsSampler(s); ok && k == 1 {
			c.RecordHit(s)
			c.RecordNVMBytes(s, 1000000)
		}
	}
	c.EndEpoch()
	if c.Winner() != 60 {
		t.Fatal("Th=0 must pick by hits only")
	}
}

func TestPerEpochRecording(t *testing.T) {
	c := New(64, 0, 0)
	c.RecordPerEpoch = true
	c.RecordHit(0)
	c.EndEpoch()
	c.EndEpoch()
	if len(c.EpochHits) != 2 || len(c.EpochBytes) != 2 {
		t.Fatalf("recorded %d/%d epochs", len(c.EpochHits), len(c.EpochBytes))
	}
	if c.EpochHits[0][0] != 1 || c.EpochHits[1][0] != 0 {
		t.Fatal("per-epoch snapshots wrong")
	}
}

func TestInitialWinnerPermissive(t *testing.T) {
	c := New(64, 0, 0)
	if c.Winner() != 64 {
		t.Fatalf("initial winner = %d, want the most permissive 64", c.Winner())
	}
}

func TestPanicsOnBadCandidates(t *testing.T) {
	for _, cand := range [][]int{nil, {30, 30}, {40, 30}, make([]int, 33)} {
		func() {
			defer func() { recover() }()
			NewWithCandidates(64, cand, 0, 0)
			t.Errorf("candidates %v did not panic", cand)
		}()
	}
}

// Property: winner is always one of the candidates, whatever the counter
// pattern.
func TestWinnerAlwaysCandidate(t *testing.T) {
	f := func(hitPattern []uint8, th, tw uint8) bool {
		c := New(128, float64(th%10), float64(tw%10))
		for i, h := range hitPattern {
			set := i % 128
			for j := uint8(0); j < h%16; j++ {
				c.RecordHit(set)
			}
			c.RecordNVMBytes(set, int(h))
		}
		c.EndEpoch()
		for _, cand := range c.Candidates() {
			if c.Winner() == cand {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecordHit(b *testing.B) {
	c := New(1024, 0, 0)
	for i := 0; i < b.N; i++ {
		c.RecordHit(i % 1024)
	}
}

func TestRegisterMetrics(t *testing.T) {
	c := New(256, 4, 5)
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)

	// Feed one sampler set some traffic, then close the epoch.
	var sampler int
	for s := 0; s < 256; s++ {
		if _, ok := c.IsSampler(s); ok {
			sampler = s
			break
		}
	}
	c.RecordHit(sampler)
	c.RecordNVMBytes(sampler, 48)
	s1 := reg.Snapshot()
	if s1.Gauge("dueling.epoch_hits") != 1 || s1.Gauge("dueling.epoch_bytes") != 48 {
		t.Errorf("open-epoch gauges: hits %v bytes %v",
			s1.Gauge("dueling.epoch_hits"), s1.Gauge("dueling.epoch_bytes"))
	}
	if s1.Counter("dueling.epochs") != 0 {
		t.Errorf("epochs = %d before any boundary", s1.Counter("dueling.epochs"))
	}
	c.EndEpoch()
	s2 := reg.Snapshot()
	if s2.Counter("dueling.epochs") != 1 {
		t.Errorf("epochs = %d after one boundary", s2.Counter("dueling.epochs"))
	}
	if s2.Gauge("dueling.epoch_hits") != 0 {
		t.Error("open-epoch counters not reset at the boundary")
	}
	if int(s2.Gauge("dueling.cpth")) != c.Winner() {
		t.Errorf("dueling.cpth gauge %v, winner %d", s2.Gauge("dueling.cpth"), c.Winner())
	}
}
